package space

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ilmath"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(ilmath.V(0, 0), ilmath.V(1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := New(ilmath.V(), ilmath.V()); err == nil {
		t.Error("zero-dimensional space accepted")
	}
	if _, err := New(ilmath.V(5), ilmath.V(3)); err == nil {
		t.Error("empty dimension accepted")
	}
	if _, err := New(ilmath.V(-3, 0), ilmath.V(3, 0)); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
}

func TestRect(t *testing.T) {
	s, err := Rect(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Lower.Equal(ilmath.V(0, 0)) || !s.Upper.Equal(ilmath.V(9, 4)) {
		t.Errorf("Rect bounds wrong: %v", s)
	}
	if _, err := Rect(10, 0); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := Rect(10, -2); err == nil {
		t.Error("negative extent accepted")
	}
}

func TestExtentVolume(t *testing.T) {
	s := MustNew(ilmath.V(-2, 1), ilmath.V(2, 3))
	if s.Extent(0) != 5 || s.Extent(1) != 3 {
		t.Errorf("Extents = %v", s.Extents())
	}
	if s.Volume() != 15 {
		t.Errorf("Volume = %d, want 15", s.Volume())
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d", s.Dim())
	}
}

func TestContains(t *testing.T) {
	s := MustRect(4, 4)
	cases := []struct {
		j    ilmath.Vec
		want bool
	}{
		{ilmath.V(0, 0), true},
		{ilmath.V(3, 3), true},
		{ilmath.V(4, 0), false},
		{ilmath.V(0, -1), false},
		{ilmath.V(0), false}, // wrong dimension
	}
	for _, c := range cases {
		if got := s.Contains(c.j); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.j, got, c.want)
		}
	}
}

func TestLinearizeRoundTrip(t *testing.T) {
	s := MustNew(ilmath.V(-1, 2, 0), ilmath.V(1, 4, 2))
	for r := int64(0); r < s.Volume(); r++ {
		j := s.Delinearize(r)
		if got := s.Linearize(j); got != r {
			t.Fatalf("round trip failed: rank %d -> %v -> %d", r, j, got)
		}
	}
}

func TestLinearizeLexOrder(t *testing.T) {
	s := MustRect(3, 4)
	prev := int64(-1)
	count := 0
	s.Points(func(j ilmath.Vec) bool {
		r := s.Linearize(j)
		if r != prev+1 {
			t.Fatalf("points not visited in lexicographic rank order: %v has rank %d after %d", j, r, prev)
		}
		prev = r
		count++
		return true
	})
	if int64(count) != s.Volume() {
		t.Errorf("visited %d points, want %d", count, s.Volume())
	}
}

func TestPointsEarlyStop(t *testing.T) {
	s := MustRect(10, 10)
	n := 0
	s.Points(func(j ilmath.Vec) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d, want 5", n)
	}
}

func TestNext(t *testing.T) {
	s := MustRect(2, 2)
	j := s.Lower.Clone()
	var seen []int64
	seen = append(seen, s.Linearize(j))
	for s.Next(j) {
		seen = append(seen, s.Linearize(j))
	}
	if len(seen) != 4 {
		t.Fatalf("Next visited %d points, want 4", len(seen))
	}
	for i, r := range seen {
		if r != int64(i) {
			t.Errorf("rank %d at position %d", r, i)
		}
	}
}

func TestLargestDim(t *testing.T) {
	if d := MustRect(16, 16, 16384).LargestDim(); d != 2 {
		t.Errorf("LargestDim = %d, want 2", d)
	}
	if d := MustRect(10000, 1000).LargestDim(); d != 0 {
		t.Errorf("LargestDim = %d, want 0", d)
	}
	// Tie: first wins.
	if d := MustRect(5, 5).LargestDim(); d != 0 {
		t.Errorf("LargestDim tie = %d, want 0", d)
	}
}

func TestLinearizeOutsidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Linearize outside did not panic")
		}
	}()
	MustRect(2, 2).Linearize(ilmath.V(5, 0))
}

func TestDelinearizeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Delinearize out of range did not panic")
		}
	}()
	MustRect(2, 2).Delinearize(4)
}

func TestEqualString(t *testing.T) {
	a := MustNew(ilmath.V(0, 1), ilmath.V(2, 3))
	b := MustNew(ilmath.V(0, 1), ilmath.V(2, 3))
	if !a.Equal(b) {
		t.Error("Equal false for identical spaces")
	}
	if a.Equal(MustRect(3, 3)) {
		t.Error("Equal true for different spaces")
	}
	if a.String() != "[0..2]x[1..3]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestPropLinearizeBijective(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ea, eb, ec := int64(a%5)+1, int64(b%5)+1, int64(c%5)+1
		s := MustRect(ea, eb, ec)
		seen := make(map[int64]bool)
		ok := true
		s.Points(func(j ilmath.Vec) bool {
			r := s.Linearize(j)
			if seen[r] || r < 0 || r >= s.Volume() {
				ok = false
				return false
			}
			seen[r] = true
			return true
		})
		return ok && int64(len(seen)) == s.Volume()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropDelinearizeContains(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		s := MustNew(
			ilmath.V(int64(r.Intn(10)-5), int64(r.Intn(10)-5)),
			ilmath.V(int64(r.Intn(10)+5), int64(r.Intn(10)+5)),
		)
		rank := r.Int63n(s.Volume())
		if !s.Contains(s.Delinearize(rank)) {
			t.Fatalf("Delinearize(%d) outside %v", rank, s)
		}
	}
}
