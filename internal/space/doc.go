// Package space models rectangular iteration spaces J^n of perfectly nested
// loops with constant integer bounds, as defined in Section 2 of the paper:
//
//	J^n = { j = (j_1, …, j_n) | l_i ≤ j_i ≤ u_i }
//
// Points are visited in lexicographic order, matching the sequential
// execution order of the loop nest.
package space
