package space

import (
	"fmt"
	"strings"

	"repro/internal/ilmath"
)

// Space is an n-dimensional rectangular (parallelepiped) iteration space
// with inclusive lower and upper bounds per dimension.
type Space struct {
	Lower ilmath.Vec // l_i, inclusive
	Upper ilmath.Vec // u_i, inclusive
}

// New constructs a Space from inclusive bounds. It returns an error if the
// dimensions disagree or any dimension is empty (l_i > u_i).
func New(lower, upper ilmath.Vec) (*Space, error) {
	if len(lower) != len(upper) {
		return nil, fmt.Errorf("space: bound dimension mismatch %d vs %d", len(lower), len(upper))
	}
	if len(lower) == 0 {
		return nil, fmt.Errorf("space: zero-dimensional space")
	}
	for i := range lower {
		if lower[i] > upper[i] {
			return nil, fmt.Errorf("space: empty dimension %d: [%d, %d]", i, lower[i], upper[i])
		}
	}
	return &Space{Lower: lower.Clone(), Upper: upper.Clone()}, nil
}

// MustNew is New but panics on error, for tests and literals.
func MustNew(lower, upper ilmath.Vec) *Space {
	s, err := New(lower, upper)
	if err != nil {
		panic(err)
	}
	return s
}

// Rect constructs the space {0..size_1-1} × … × {0..size_n-1}, the common
// zero-based loop nest FOR i_d = 0 TO size_d - 1.
func Rect(sizes ...int64) (*Space, error) {
	lo := ilmath.NewVec(len(sizes))
	up := make(ilmath.Vec, len(sizes))
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("space: non-positive extent %d in dimension %d", s, i)
		}
		up[i] = s - 1
	}
	return New(lo, up)
}

// MustRect is Rect but panics on error.
func MustRect(sizes ...int64) *Space {
	s, err := Rect(sizes...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of nested loops n.
func (s *Space) Dim() int { return len(s.Lower) }

// Extent returns the number of points along dimension d: u_d − l_d + 1.
func (s *Space) Extent(d int) int64 { return s.Upper[d] - s.Lower[d] + 1 }

// Extents returns all per-dimension extents.
func (s *Space) Extents() ilmath.Vec {
	e := make(ilmath.Vec, s.Dim())
	for d := range e {
		e[d] = s.Extent(d)
	}
	return e
}

// Volume returns the total number of index points |J^n|.
func (s *Space) Volume() int64 {
	v := int64(1)
	for d := 0; d < s.Dim(); d++ {
		v *= s.Extent(d)
	}
	return v
}

// Contains reports whether point j lies inside the space.
func (s *Space) Contains(j ilmath.Vec) bool {
	if len(j) != s.Dim() {
		return false
	}
	for d := range j {
		if j[d] < s.Lower[d] || j[d] > s.Upper[d] {
			return false
		}
	}
	return true
}

// Linearize maps a point to its rank in lexicographic order, in [0, Volume).
// It panics if j is outside the space.
func (s *Space) Linearize(j ilmath.Vec) int64 {
	if !s.Contains(j) {
		panic(fmt.Sprintf("space: point %v outside %v", j, s))
	}
	var r int64
	for d := 0; d < s.Dim(); d++ {
		r = r*s.Extent(d) + (j[d] - s.Lower[d])
	}
	return r
}

// Delinearize is the inverse of Linearize. It panics if rank is out of range.
func (s *Space) Delinearize(rank int64) ilmath.Vec {
	if rank < 0 || rank >= s.Volume() {
		panic(fmt.Sprintf("space: rank %d out of range [0, %d)", rank, s.Volume()))
	}
	j := make(ilmath.Vec, s.Dim())
	for d := s.Dim() - 1; d >= 0; d-- {
		e := s.Extent(d)
		j[d] = s.Lower[d] + rank%e
		rank /= e
	}
	return j
}

// Points returns an iterator over all points in lexicographic order.
// The yielded vector is reused between iterations; clone it to retain it.
func (s *Space) Points(yield func(ilmath.Vec) bool) {
	j := s.Lower.Clone()
	for {
		if !yield(j) {
			return
		}
		// Advance odometer-style from the innermost dimension.
		d := s.Dim() - 1
		for d >= 0 {
			j[d]++
			if j[d] <= s.Upper[d] {
				break
			}
			j[d] = s.Lower[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Next advances j to the lexicographically next point in s, returning false
// when j was the last point. j must be inside s.
func (s *Space) Next(j ilmath.Vec) bool {
	d := s.Dim() - 1
	for d >= 0 {
		j[d]++
		if j[d] <= s.Upper[d] {
			return true
		}
		j[d] = s.Lower[d]
		d--
	}
	return false
}

// LargestDim returns the index of the dimension with the largest extent
// (first one on ties). The paper maps tiles to processors along this
// dimension in the tiled space.
func (s *Space) LargestDim() int {
	return s.Extents().ArgMax()
}

// Equal reports whether two spaces have identical bounds.
func (s *Space) Equal(o *Space) bool {
	return s.Lower.Equal(o.Lower) && s.Upper.Equal(o.Upper)
}

// String renders the space as "[l1..u1]x[l2..u2]...".
func (s *Space) String() string {
	var b strings.Builder
	for d := 0; d < s.Dim(); d++ {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "[%d..%d]", s.Lower[d], s.Upper[d])
	}
	return b.String()
}
