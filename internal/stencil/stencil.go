package stencil

import (
	"fmt"
	"math"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/space"
)

// Kernel is one uniform-dependence assignment statement.
type Kernel interface {
	// Name identifies the kernel in logs and CLI output.
	Name() string
	// Deps returns the kernel's dependence set.
	Deps() *deps.Set
	// Eval computes the value at point j. get(q) returns the value at a
	// dependence predecessor q = j − d (inside or outside the space; the
	// executor resolves boundary reads).
	Eval(j ilmath.Vec, get func(ilmath.Vec) float64) float64
}

// Boundary supplies values for reads outside the iteration space. The
// default boundary is the constant 1.
type Boundary func(j ilmath.Vec) float64

// ConstBoundary returns a Boundary with a fixed value everywhere.
func ConstBoundary(v float64) Boundary {
	return func(ilmath.Vec) float64 { return v }
}

// Sqrt3D is the paper's Section 5 test kernel:
//
//	A(i,j,k) = √A(i−1,j,k) + √A(i,j−1,k) + √A(i,j,k−1)
//
// chosen by the authors ("square roots and floats") to raise t_c to a
// realistic value.
type Sqrt3D struct{}

// Name implements Kernel.
func (Sqrt3D) Name() string { return "sqrt3d" }

// Deps implements Kernel.
func (Sqrt3D) Deps() *deps.Set { return deps.Stencil3D() }

// Eval implements Kernel.
func (Sqrt3D) Eval(j ilmath.Vec, get func(ilmath.Vec) float64) float64 {
	return math.Sqrt(get(ilmath.V(j[0]-1, j[1], j[2]))) +
		math.Sqrt(get(ilmath.V(j[0], j[1]-1, j[2]))) +
		math.Sqrt(get(ilmath.V(j[0], j[1], j[2]-1)))
}

// Sum2D is the kernel of the paper's Example 1:
//
//	A(i1,i2) = A(i1−1,i2−1) + A(i1−1,i2) + A(i1,i2−1)
type Sum2D struct{}

// Name implements Kernel.
func (Sum2D) Name() string { return "sum2d" }

// Deps implements Kernel.
func (Sum2D) Deps() *deps.Set { return deps.Example1Deps() }

// Eval implements Kernel.
func (Sum2D) Eval(j ilmath.Vec, get func(ilmath.Vec) float64) float64 {
	return get(ilmath.V(j[0]-1, j[1]-1)) +
		get(ilmath.V(j[0]-1, j[1])) +
		get(ilmath.V(j[0], j[1]-1))
}

// Weighted is a generic uniform-dependence kernel: a weighted sum over the
// dependence predecessors, optionally passed through math.Sqrt. It lets
// tests and benchmarks dial t_c and dependence structure freely.
type Weighted struct {
	KernelName string
	D          *deps.Set
	Weights    []float64
	UseSqrt    bool
}

// NewWeighted validates and builds a Weighted kernel.
func NewWeighted(name string, d *deps.Set, weights []float64, useSqrt bool) (*Weighted, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("stencil: empty dependence set")
	}
	if len(weights) != d.Len() {
		return nil, fmt.Errorf("stencil: %d weights for %d dependences", len(weights), d.Len())
	}
	return &Weighted{KernelName: name, D: d, Weights: weights, UseSqrt: useSqrt}, nil
}

// Name implements Kernel.
func (w *Weighted) Name() string { return w.KernelName }

// Deps implements Kernel.
func (w *Weighted) Deps() *deps.Set { return w.D }

// Eval implements Kernel.
func (w *Weighted) Eval(j ilmath.Vec, get func(ilmath.Vec) float64) float64 {
	var s float64
	for i := 0; i < w.D.Len(); i++ {
		v := get(j.Sub(w.D.At(i)))
		if w.UseSqrt {
			v = math.Sqrt(math.Abs(v))
		}
		s += w.Weights[i] * v
	}
	return s
}

// Grid is a dense array over an iteration space, row-major in lexicographic
// point order.
type Grid struct {
	Space *space.Space
	Data  []float64
}

// NewGrid allocates a zeroed grid over s.
func NewGrid(s *space.Space) *Grid {
	return &Grid{Space: s, Data: make([]float64, s.Volume())}
}

// At returns the value at point j. It panics if j is outside the space.
func (g *Grid) At(j ilmath.Vec) float64 { return g.Data[g.Space.Linearize(j)] }

// Set assigns the value at point j.
func (g *Grid) Set(j ilmath.Vec, v float64) { g.Data[g.Space.Linearize(j)] = v }

// RunSequential executes the kernel over the whole space in lexicographic
// (sequential loop) order — the reference semantics every parallel schedule
// must reproduce exactly.
func RunSequential(s *space.Space, k Kernel, b Boundary) (*Grid, error) {
	if s.Dim() != k.Deps().Dim() {
		return nil, fmt.Errorf("stencil: kernel %s has dimension %d, space has %d",
			k.Name(), k.Deps().Dim(), s.Dim())
	}
	if b == nil {
		b = ConstBoundary(1)
	}
	g := NewGrid(s)
	get := func(q ilmath.Vec) float64 {
		if s.Contains(q) {
			return g.At(q)
		}
		return b(q)
	}
	s.Points(func(j ilmath.Vec) bool {
		g.Set(j, k.Eval(j, get))
		return true
	})
	return g, nil
}

// MaxAbsDiff returns the maximum absolute element difference between two
// grids over the same space.
func MaxAbsDiff(a, b *Grid) (float64, error) {
	if !a.Space.Equal(b.Space) {
		return 0, fmt.Errorf("stencil: grids cover different spaces")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}
