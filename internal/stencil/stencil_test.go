package stencil

import (
	"math"
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/space"
)

func TestSqrt3DSmall(t *testing.T) {
	// With boundary 1 everywhere, A(0,0,0) = 3·√1 = 3.
	s := space.MustRect(2, 2, 2)
	g, err := RunSequential(s, Sqrt3D{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.At(ilmath.V(0, 0, 0)); got != 3 {
		t.Errorf("A(0,0,0) = %g, want 3", got)
	}
	// A(1,0,0) = √3 + √1 + √1 = √3 + 2.
	want := math.Sqrt(3) + 2
	if got := g.At(ilmath.V(1, 0, 0)); math.Abs(got-want) > 1e-12 {
		t.Errorf("A(1,0,0) = %g, want %g", got, want)
	}
	// A(1,1,1) depends on three interior values; just check positivity and
	// monotone growth along the diagonal.
	if g.At(ilmath.V(1, 1, 1)) <= g.At(ilmath.V(0, 0, 0)) {
		t.Error("values not growing along the diagonal")
	}
}

func TestSum2DExample1Kernel(t *testing.T) {
	// Boundary 0: A(0,0) = 0; boundary 1: A(0,0) = 3, A(1,1) =
	// A(0,0)+A(0,1)+A(1,0).
	s := space.MustRect(2, 2)
	g, err := RunSequential(s, Sum2D{}, ConstBoundary(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(ilmath.V(0, 0)) != 3 {
		t.Errorf("A(0,0) = %g, want 3", g.At(ilmath.V(0, 0)))
	}
	a01 := g.At(ilmath.V(0, 1)) // = A(-1,0)+A(-1,1)+A(0,0) = 1+1+3 = 5
	if a01 != 5 {
		t.Errorf("A(0,1) = %g, want 5", a01)
	}
	a10 := g.At(ilmath.V(1, 0)) // = 1+3+1 = 5
	if a10 != 5 {
		t.Errorf("A(1,0) = %g, want 5", a10)
	}
	want := 3.0 + 5 + 5
	if g.At(ilmath.V(1, 1)) != want {
		t.Errorf("A(1,1) = %g, want %g", g.At(ilmath.V(1, 1)), want)
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted("w", nil, nil, false); err == nil {
		t.Error("nil deps accepted")
	}
	if _, err := NewWeighted("w", deps.Unit(2), []float64{1}, false); err == nil {
		t.Error("weight count mismatch accepted")
	}
	w, err := NewWeighted("w", deps.Unit(2), []float64{2, 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "w" || w.Deps().Len() != 2 {
		t.Error("accessors wrong")
	}
}

func TestWeightedEval(t *testing.T) {
	w, _ := NewWeighted("lin", deps.Unit(2), []float64{2, 3}, false)
	s := space.MustRect(2, 2)
	g, err := RunSequential(s, w, ConstBoundary(1))
	if err != nil {
		t.Fatal(err)
	}
	// A(0,0) = 2·1 + 3·1 = 5; A(1,0) = 2·5+3·1 = 13; A(0,1) = 2+15 = 17;
	// A(1,1) = 2·17+3·13 = 73.
	cases := map[string]struct {
		j    ilmath.Vec
		want float64
	}{
		"origin": {ilmath.V(0, 0), 5},
		"i":      {ilmath.V(1, 0), 13},
		"j":      {ilmath.V(0, 1), 17},
		"both":   {ilmath.V(1, 1), 73},
	}
	for name, c := range cases {
		if got := g.At(c.j); got != c.want {
			t.Errorf("%s: A(%v) = %g, want %g", name, c.j, got, c.want)
		}
	}
}

func TestWeightedSqrt(t *testing.T) {
	// Weighted with sqrt and unit weights must reproduce Sqrt3D exactly.
	w, _ := NewWeighted("sqrt3d-generic", deps.Stencil3D(), []float64{1, 1, 1}, true)
	s := space.MustRect(3, 3, 3)
	a, err := RunSequential(s, Sqrt3D{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(s, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("generic sqrt kernel differs from Sqrt3D by %g", d)
	}
}

func TestRunSequentialDimensionMismatch(t *testing.T) {
	if _, err := RunSequential(space.MustRect(2, 2), Sqrt3D{}, nil); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(space.MustRect(2, 3))
	g.Set(ilmath.V(1, 2), 7)
	if g.At(ilmath.V(1, 2)) != 7 {
		t.Error("Set/At wrong")
	}
	if len(g.Data) != 6 {
		t.Errorf("data length %d", len(g.Data))
	}
}

func TestMaxAbsDiff(t *testing.T) {
	s := space.MustRect(2, 2)
	a, b := NewGrid(s), NewGrid(s)
	b.Set(ilmath.V(1, 1), -0.5)
	d, err := MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.5 {
		t.Errorf("diff = %g, want 0.5", d)
	}
	if _, err := MaxAbsDiff(a, NewGrid(space.MustRect(3, 3))); err == nil {
		t.Error("space mismatch accepted")
	}
}

// TestSequentialDeterministic: two runs produce identical grids.
func TestSequentialDeterministic(t *testing.T) {
	s := space.MustRect(8, 8, 8)
	a, _ := RunSequential(s, Sqrt3D{}, nil)
	b, _ := RunSequential(s, Sqrt3D{}, nil)
	d, _ := MaxAbsDiff(a, b)
	if d != 0 {
		t.Error("sequential run not deterministic")
	}
}

// TestBoundaryInfluence: boundary value changes must propagate.
func TestBoundaryInfluence(t *testing.T) {
	s := space.MustRect(4, 4, 4)
	a, _ := RunSequential(s, Sqrt3D{}, ConstBoundary(1))
	b, _ := RunSequential(s, Sqrt3D{}, ConstBoundary(4))
	d, _ := MaxAbsDiff(a, b)
	if d == 0 {
		t.Error("boundary value had no effect")
	}
}
