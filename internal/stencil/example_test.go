package stencil_test

import (
	"fmt"
	"log"

	"repro/internal/ilmath"
	"repro/internal/space"
	"repro/internal/stencil"
)

// Example runs the paper's 3-D test kernel sequentially over a small space
// with boundary value 1: the origin computes √1+√1+√1 = 3.
func Example() {
	g, err := stencil.RunSequential(space.MustRect(2, 2, 2), stencil.Sqrt3D{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A(0,0,0) = %g\n", g.At(ilmath.V(0, 0, 0)))
	fmt.Printf("A(1,1,1) = %.4f\n", g.At(ilmath.V(1, 1, 1)))
	// Output:
	// A(0,0,0) = 3
	// A(1,1,1) = 6.6161
}
