// Package stencil defines the computation kernels used by the paper and a
// sequential reference executor used to verify distributed runs.
//
// A kernel is a single assignment statement with uniform dependences,
// Section 2.1: A(j) = E(A(j−d_1), …, A(j−d_m)). Reads that fall outside the
// iteration space take a caller-supplied boundary value.
package stencil
