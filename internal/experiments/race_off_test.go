//go:build !race

package experiments

// raceDetectorEnabled mirrors the race build tag; see race_on_test.go.
const raceDetectorEnabled = false
