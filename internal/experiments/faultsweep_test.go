package experiments

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/sim"
)

func smallFaultSweep() FaultSweep {
	return FaultSweep{
		ID:          "fault-test",
		Grid:        model.Grid3D{I: 8, J: 8, K: 512, PI: 2, PJ: 2},
		Machine:     model.PentiumCluster(),
		Cap:         sim.CapDMA,
		V:           64,
		Seed:        7,
		Intensities: []float64{0, 0.25, 0.5, 1},
	}
}

// TestFaultSweepReplayable: the same (seed, intensities) must give
// bit-identical rows across fresh parallel runs and against the sequential
// reference — the stateless fault model makes worker scheduling invisible.
func TestFaultSweepReplayable(t *testing.T) {
	s := smallFaultSweep()
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != len(seq) {
		t.Fatalf("row counts diverge: %d, %d, %d", len(a), len(b), len(seq))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverges across parallel runs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != seq[i] {
			t.Errorf("row %d diverges from the sequential reference: %+v vs %+v", i, a[i], seq[i])
		}
	}
}

// TestFaultSweepDegrades: at a fixed seed, both schedules must degrade
// monotonically with intensity.
func TestFaultSweepDegrades(t *testing.T) {
	s := smallFaultSweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDegradation(rows); err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.OverlapX <= 1 || last.BlockingX <= 1 {
		t.Errorf("full intensity left a schedule unharmed: overlap ×%f, blocking ×%f",
			last.OverlapX, last.BlockingX)
	}
}

// TestFaultSweepZeroIntensityMatchesBaseline: the intensity-0 row must be
// exactly the fault-free numbers (slowdown exactly 1.0).
func TestFaultSweepZeroIntensityMatchesBaseline(t *testing.T) {
	s := smallFaultSweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	r0 := rows[0]
	if r0.Intensity != 0 {
		t.Fatalf("first row is not the zero-intensity row: %+v", r0)
	}
	if r0.OverlapX != 1 || r0.BlockingX != 1 {
		t.Errorf("zero intensity perturbed the run: overlap ×%v, blocking ×%v", r0.OverlapX, r0.BlockingX)
	}
	ov, err := sim.SimulateGrid(s.Grid, s.V, s.Machine, sim.Overlapped, s.Cap)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := sim.SimulateGrid(s.Grid, s.V, s.Machine, sim.Blocking, sim.CapNone)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Overlap != ov.Makespan || r0.Blocking != bl.Makespan {
		t.Errorf("zero-intensity row (%g, %g) differs from the plain simulation (%g, %g)",
			r0.Overlap, r0.Blocking, ov.Makespan, bl.Makespan)
	}
}

// TestFaultSweepValidation: malformed sweeps are rejected up front.
func TestFaultSweepValidation(t *testing.T) {
	s := smallFaultSweep()
	s.Intensities = []float64{0.5, 0.25}
	if _, err := s.Run(); err == nil {
		t.Error("descending intensities accepted")
	}
	s = smallFaultSweep()
	s.Intensities = nil
	if _, err := s.Run(); err == nil {
		t.Error("empty intensity list accepted")
	}
	s = smallFaultSweep()
	s.V = 0
	if _, err := s.Run(); err == nil {
		t.Error("zero tile height accepted")
	}
}

// TestFaultSweepDeadlineConsistent: on a real sweep the retransmit-budget
// and deadline-budget columns must agree at every intensity, the zero row
// must be clean, and high enough intensity must actually exhaust the cap —
// otherwise the cross-check would pass vacuously.
func TestFaultSweepDeadlineConsistent(t *testing.T) {
	s := smallFaultSweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDeadlineConsistency(rows); err != nil {
		t.Fatal(err)
	}
	r0 := rows[0]
	if r0.WorstResends != 0 || r0.WorstChain != 0 || r0.BudgetHit || r0.DeadlineHit {
		t.Errorf("zero intensity shows retransmit activity: %+v", r0)
	}
	last := rows[len(rows)-1]
	if last.WorstResends == 0 {
		t.Errorf("full intensity produced no retransmits at all: %+v", last)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].WorstResends < rows[i-1].WorstResends {
			t.Errorf("worst resend count shrinks %d→%d as intensity rises %g→%g",
				rows[i-1].WorstResends, rows[i].WorstResends, rows[i-1].Intensity, rows[i].Intensity)
		}
	}
}

// TestFaultSweepDeadlineBudgetHit drives the cross-check columns through
// the non-vacuous branch: the Default plan's 10% loss practically never
// chains 4 losses in a row on a 4-rank grid, so a hot plan (99% loss at
// intensity 1) forces some link to exhaust MaxResend — and the moment it
// does, its retry chain must equal the full deadline budget exactly, making
// BudgetHit and DeadlineHit flip together.
func TestFaultSweepDeadlineBudgetHit(t *testing.T) {
	s := smallFaultSweep()
	hot := fault.Plan{
		Seed: s.Seed, Intensity: 1,
		LossProb: 0.99, MaxResend: 4, TimeoutWire: 3, BackoffFactor: 2,
	}
	worst, chain, budgetHit, deadlineHit := s.deadline(hot)
	if worst != hot.MaxResend {
		t.Fatalf("worst resends = %d under 99%% loss, want the cap %d", worst, hot.MaxResend)
	}
	if !budgetHit || !deadlineHit {
		t.Errorf("cap reached but budgetHit=%v deadlineHit=%v", budgetHit, deadlineHit)
	}
	if want := retryChain(hot, hot.MaxResend); chain != want {
		t.Errorf("worst chain %g != full deadline budget %g", chain, want)
	}
}

// TestCheckDeadlineConsistencyRejects: the checker fires when the two
// budget columns disagree or the budget un-trips at a higher intensity.
func TestCheckDeadlineConsistencyRejects(t *testing.T) {
	good := []FaultRow{
		{Intensity: 0},
		{Intensity: 1, WorstResends: 4, WorstChain: 45, BudgetHit: true, DeadlineHit: true},
	}
	if err := CheckDeadlineConsistency(good); err != nil {
		t.Errorf("consistent rows rejected: %v", err)
	}
	disagree := []FaultRow{
		{Intensity: 1, WorstResends: 4, WorstChain: 45, BudgetHit: true, DeadlineHit: false},
	}
	if err := CheckDeadlineConsistency(disagree); err == nil {
		t.Error("budget/deadline disagreement passed")
	}
	recovers := []FaultRow{
		{Intensity: 0.5, WorstResends: 4, WorstChain: 45, BudgetHit: true, DeadlineHit: true},
		{Intensity: 1},
	}
	if err := CheckDeadlineConsistency(recovers); err == nil {
		t.Error("a budget that un-trips at higher intensity passed")
	}
	if err := CheckDeadlineConsistency(nil); err == nil {
		t.Error("empty sweep passed")
	}
}

// TestCheckDegradationRejects: the checker actually fires on a repair.
func TestCheckDegradationRejects(t *testing.T) {
	good := []FaultRow{
		{Intensity: 0, Overlap: 1, Blocking: 2, OverlapX: 1, BlockingX: 1},
		{Intensity: 1, Overlap: 1.5, Blocking: 3, OverlapX: 1.5, BlockingX: 1.5},
	}
	if err := CheckDegradation(good); err != nil {
		t.Errorf("monotone rows rejected: %v", err)
	}
	bad := []FaultRow{
		{Intensity: 0, Overlap: 1, Blocking: 2, OverlapX: 1, BlockingX: 1},
		{Intensity: 1, Overlap: 0.9, Blocking: 3, OverlapX: 0.9, BlockingX: 1.5},
	}
	if err := CheckDegradation(bad); err == nil {
		t.Error("an intensity step that repairs the overlapped schedule passed")
	}
	if err := CheckDegradation(nil); err == nil {
		t.Error("empty sweep passed")
	}
}
