package experiments

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func smallFaultSweep() FaultSweep {
	return FaultSweep{
		ID:          "fault-test",
		Grid:        model.Grid3D{I: 8, J: 8, K: 512, PI: 2, PJ: 2},
		Machine:     model.PentiumCluster(),
		Cap:         sim.CapDMA,
		V:           64,
		Seed:        7,
		Intensities: []float64{0, 0.25, 0.5, 1},
	}
}

// TestFaultSweepReplayable: the same (seed, intensities) must give
// bit-identical rows across fresh parallel runs and against the sequential
// reference — the stateless fault model makes worker scheduling invisible.
func TestFaultSweepReplayable(t *testing.T) {
	s := smallFaultSweep()
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != len(seq) {
		t.Fatalf("row counts diverge: %d, %d, %d", len(a), len(b), len(seq))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d diverges across parallel runs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != seq[i] {
			t.Errorf("row %d diverges from the sequential reference: %+v vs %+v", i, a[i], seq[i])
		}
	}
}

// TestFaultSweepDegrades: at a fixed seed, both schedules must degrade
// monotonically with intensity.
func TestFaultSweepDegrades(t *testing.T) {
	s := smallFaultSweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDegradation(rows); err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.OverlapX <= 1 || last.BlockingX <= 1 {
		t.Errorf("full intensity left a schedule unharmed: overlap ×%f, blocking ×%f",
			last.OverlapX, last.BlockingX)
	}
}

// TestFaultSweepZeroIntensityMatchesBaseline: the intensity-0 row must be
// exactly the fault-free numbers (slowdown exactly 1.0).
func TestFaultSweepZeroIntensityMatchesBaseline(t *testing.T) {
	s := smallFaultSweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	r0 := rows[0]
	if r0.Intensity != 0 {
		t.Fatalf("first row is not the zero-intensity row: %+v", r0)
	}
	if r0.OverlapX != 1 || r0.BlockingX != 1 {
		t.Errorf("zero intensity perturbed the run: overlap ×%v, blocking ×%v", r0.OverlapX, r0.BlockingX)
	}
	ov, err := sim.SimulateGrid(s.Grid, s.V, s.Machine, sim.Overlapped, s.Cap)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := sim.SimulateGrid(s.Grid, s.V, s.Machine, sim.Blocking, sim.CapNone)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Overlap != ov.Makespan || r0.Blocking != bl.Makespan {
		t.Errorf("zero-intensity row (%g, %g) differs from the plain simulation (%g, %g)",
			r0.Overlap, r0.Blocking, ov.Makespan, bl.Makespan)
	}
}

// TestFaultSweepValidation: malformed sweeps are rejected up front.
func TestFaultSweepValidation(t *testing.T) {
	s := smallFaultSweep()
	s.Intensities = []float64{0.5, 0.25}
	if _, err := s.Run(); err == nil {
		t.Error("descending intensities accepted")
	}
	s = smallFaultSweep()
	s.Intensities = nil
	if _, err := s.Run(); err == nil {
		t.Error("empty intensity list accepted")
	}
	s = smallFaultSweep()
	s.V = 0
	if _, err := s.Run(); err == nil {
		t.Error("zero tile height accepted")
	}
}

// TestCheckDegradationRejects: the checker actually fires on a repair.
func TestCheckDegradationRejects(t *testing.T) {
	good := []FaultRow{
		{Intensity: 0, Overlap: 1, Blocking: 2, OverlapX: 1, BlockingX: 1},
		{Intensity: 1, Overlap: 1.5, Blocking: 3, OverlapX: 1.5, BlockingX: 1.5},
	}
	if err := CheckDegradation(good); err != nil {
		t.Errorf("monotone rows rejected: %v", err)
	}
	bad := []FaultRow{
		{Intensity: 0, Overlap: 1, Blocking: 2, OverlapX: 1, BlockingX: 1},
		{Intensity: 1, Overlap: 0.9, Blocking: 3, OverlapX: 0.9, BlockingX: 1.5},
	}
	if err := CheckDegradation(bad); err == nil {
		t.Error("an intensity step that repairs the overlapped schedule passed")
	}
	if err := CheckDegradation(nil); err == nil {
		t.Error("empty sweep passed")
	}
}
