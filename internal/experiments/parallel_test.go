package experiments

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/sim"
)

// shrinkSweep scales a paper sweep down for fast deterministic tests.
func shrinkSweep(s Sweep, factor int64) Sweep {
	s.Grid.K /= factor
	s.Heights = Ladder(4, s.Grid.K/4)
	return s
}

// TestRunParallelMatchesSequential: the parallel worker-pool Run must
// produce rows deep-equal (bit-identical floats included) to the retained
// sequential reference implementation, for each figure's configuration.
func TestRunParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		sweep  Sweep
		factor int64
	}{
		{"fig9", Fig9(), 64},
		{"fig10", Fig10(), 128},
		{"fig11", Fig11(), 16},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := shrinkSweep(tc.sweep, tc.factor)
			if len(s.Heights) < 3 {
				t.Fatalf("scaled sweep has only %d heights", len(s.Heights))
			}
			par, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			seq, err := s.RunSequential()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par, seq) {
				t.Errorf("parallel rows differ from sequential reference:\npar: %+v\nseq: %+v", par, seq)
			}
		})
	}
}

// TestRunMetricsParallelMatchesSequential: with the phase-accounting pass on,
// the worker-pool Run must still deep-equal the sequential reference — the
// overlap-efficiency columns included — regardless of worker scheduling
// (obs.Analyze iterates tracks in a canonical order, so the float
// accumulation order is fixed).
func TestRunMetricsParallelMatchesSequential(t *testing.T) {
	s := shrinkSweep(Fig9(), 64)
	s.Metrics = true
	par, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("metrics rows differ from sequential reference:\npar: %+v\nseq: %+v", par, seq)
	}
	best := 0
	for i, r := range par {
		if r.OverlapEff <= 0 || r.OverlapEff > 1 || r.BlockingEff < 0 || r.BlockingEff > 1 {
			t.Errorf("V=%d: efficiency out of range: ov %g bl %g", r.V, r.OverlapEff, r.BlockingEff)
		}
		if r.OverlapSim < par[best].OverlapSim {
			best = i
		}
	}
	// At the overlapped schedule's best height it must hide a larger comm
	// fraction than blocking does (at comm-dominated extremes the blocking
	// schedule can accidentally edge ahead — the paper's claim is about the
	// optimum).
	if r := par[best]; r.OverlapEff <= r.BlockingEff {
		t.Errorf("V=%d (optimum): overlapped efficiency %g not above blocking %g",
			r.V, r.OverlapEff, r.BlockingEff)
	}
}

// TestRunSharedCacheIdentical: running through a shared cache (hits on the
// second call) returns the same rows as the first.
func TestRunSharedCacheIdentical(t *testing.T) {
	s := shrinkSweep(Fig9(), 64)
	s.Cache = sim.NewCache()
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	points := s.Cache.Len()
	if want := 2 * len(s.Heights); points != want {
		t.Errorf("cache holds %d points after Run, want %d", points, want)
	}
	second, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Cache.Len() != points {
		t.Errorf("second Run simulated new points: %d -> %d", points, s.Cache.Len())
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached rows differ from fresh rows")
	}
}

// TestOptimumUsesCache: the ladder pass of Optimum revisits every height the
// preceding Run simulated, so with a shared cache the search must only add
// its novel refinement rungs.
func TestOptimumUsesCache(t *testing.T) {
	s := shrinkSweep(Fig9(), 64)
	s.Cache = sim.NewCache()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	afterRun := s.Cache.Len()
	v1, t1, err := s.Optimum(sim.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	grew := s.Cache.Len() - afterRun
	if grew > 13 {
		t.Errorf("Optimum added %d points, refinement should add at most 13", grew)
	}
	// A second identical search is answered fully from the cache.
	before := s.Cache.Len()
	v2, t2, err := s.Optimum(sim.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cache.Len() != before {
		t.Errorf("repeated Optimum simulated %d new points", s.Cache.Len()-before)
	}
	if v1 != v2 || t1 != t2 {
		t.Errorf("repeated Optimum disagrees: (%d, %g) vs (%d, %g)", v1, t1, v2, t2)
	}
}

// TestRefineDedupSorted: clamping to [lo, hi] and integer rounding collapse
// rungs; the emitted list must be strictly increasing with no duplicates
// and stay within bounds.
func TestRefineDedupSorted(t *testing.T) {
	cases := []struct {
		center, lo, hi int64
		n              int
	}{
		{100, 1, 1000, 13},
		{4, 1, 1000, 13},   // 0.5x..1.5x of 4 collapses heavily when rounded
		{100, 90, 110, 13}, // both tails clamp onto the bounds
		{1, 1, 1, 5},       // degenerate range: single height
		{16, 1, 64, 1},     // n below 2 is raised to 2
	}
	for _, tc := range cases {
		vs := Refine(tc.center, tc.lo, tc.hi, tc.n)
		if len(vs) == 0 {
			t.Errorf("Refine(%d,%d,%d,%d) returned no heights", tc.center, tc.lo, tc.hi, tc.n)
			continue
		}
		if !sort.SliceIsSorted(vs, func(i, j int) bool { return vs[i] < vs[j] }) {
			t.Errorf("Refine(%d,%d,%d,%d) not sorted: %v", tc.center, tc.lo, tc.hi, tc.n, vs)
		}
		for i := 1; i < len(vs); i++ {
			if vs[i] == vs[i-1] {
				t.Errorf("Refine(%d,%d,%d,%d) emits duplicate %d: %v", tc.center, tc.lo, tc.hi, tc.n, vs[i], vs)
			}
		}
		for _, v := range vs {
			if v < tc.lo || v > tc.hi {
				t.Errorf("Refine(%d,%d,%d,%d) emits out-of-range %d", tc.center, tc.lo, tc.hi, tc.n, v)
			}
		}
	}
}

// TestRunErrorPropagates: a bad height must fail the whole parallel run
// with the point identified, not deadlock the pool.
func TestRunErrorPropagates(t *testing.T) {
	s := shrinkSweep(Fig9(), 64)
	s.Heights = append(append([]int64{}, s.Heights...), s.Grid.K+1) // out of range
	if _, err := s.Run(); err == nil {
		t.Fatal("Run accepted an out-of-range height")
	}
}
