package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
)

// Sweep is one completion-time-vs-tile-height experiment (one figure).
type Sweep struct {
	ID      string
	Title   string
	Grid    model.Grid3D
	Heights []int64
	Machine model.Machine
	Cap     sim.Capability
	// Cache optionally memoizes simulation points across Run and Optimum
	// calls on the same sweep (the Optimum ladder pass revisits every Run
	// height, and its refinement rungs overlap the ladder). When nil, each
	// call uses a private cache, which still deduplicates within the call.
	Cache *sim.Cache
	// Metrics enables the phase-accounting pass on every simulated point and
	// fills the OverlapEff/BlockingEff columns of the rows. Off by default:
	// the pass costs an interval log per simulation.
	Metrics bool
	// Exact forces every Optimum query onto the exhaustive tier, skipping
	// the analytic fast path (the CLIs expose it as -exact). The tiered
	// search returns the same heights — the fallback guarantees it when
	// certification fails — so this is an escape hatch for auditing, not a
	// correctness knob.
	Exact bool
}

// cache returns the sweep's shared cache, or a fresh private one.
func (s Sweep) cache() *sim.Cache {
	if s.Cache != nil {
		return s.Cache
	}
	return sim.NewCache()
}

// ModeCap returns the hardware capability each schedule is simulated with:
// the sweep's capability for the overlapped schedule, no DMA for blocking
// (the blocking schedule burns CPU for every copy regardless).
func (s Sweep) ModeCap(mode sim.Mode) sim.Capability {
	if mode == sim.Blocking {
		return sim.CapNone
	}
	return s.Cap
}

// SweepRow is one point of a sweep.
type SweepRow struct {
	V             int64
	G             int64
	OverlapSim    float64
	BlockingSim   float64
	OverlapModel  float64
	BlockingModel float64
	// Mean CPU utilization across the cluster, per schedule — the paper's
	// Section 4 argues the overlapped schedule approaches full utilization
	// at the right grain.
	OverlapCPUUtil  float64
	BlockingCPUUtil float64
	// Overlap efficiency (hidden-comm-time / total-comm-time, see
	// obs.Report) per schedule. Zero unless Sweep.Metrics is set.
	OverlapEff  float64
	BlockingEff float64
}

// Ladder returns a geometric ladder of tile heights from lo to hi
// (inclusive-ish), the sweep grid the figures use. A lo below 1 is clamped
// to 1 (a non-positive start would never double its way past hi), and an
// empty range returns nil.
func Ladder(lo, hi int64) []int64 {
	if lo < 1 {
		lo = 1
	}
	var vs []int64
	for v := lo; v <= hi; v *= 2 {
		vs = append(vs, v)
	}
	return vs
}

// Refine returns ~n heights spread multiplicatively around center within
// [lo, hi], for zooming into an optimum. The emitted list is strictly
// increasing: clamping and integer rounding collapse overlapping rungs, so
// duplicates are dropped and the merged list is sorted before returning —
// otherwise the optimum search would simulate the same height repeatedly.
// A degenerate bracket (hi < lo) yields nil; lo == hi yields exactly that
// height.
func Refine(center, lo, hi int64, n int) []int64 {
	if lo < 1 {
		lo = 1 // tile heights start at 1
	}
	if hi < lo {
		return nil
	}
	if n < 2 {
		n = 2
	}
	seen := map[int64]bool{}
	var vs []int64
	for i := 0; i < n; i++ {
		f := 0.5 + float64(i)/float64(n-1) // 0.5x .. 1.5x
		v := int64(float64(center) * f)
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Fig9 is the 16×16×16384 sweep.
func Fig9() Sweep {
	g := model.Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	return Sweep{
		ID: "fig9", Title: "Results for 16x16x16384 space",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

// Fig10 is the 16×16×32768 sweep.
func Fig10() Sweep {
	g := model.Grid3D{I: 16, J: 16, K: 32768, PI: 4, PJ: 4}
	return Sweep{
		ID: "fig10", Title: "Results for 16x16x32768 space",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

// Fig11 is the 32×32×4096 sweep.
func Fig11() Sweep {
	g := model.Grid3D{I: 32, J: 32, K: 4096, PI: 4, PJ: 4}
	return Sweep{
		ID: "fig11", Title: "Results for 32x32x4096 space",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

// simPoint identifies one (height, mode) simulation of a sweep.
type simPoint struct {
	v    int64
	mode sim.Mode
}

// evalPoints simulates every point on a bounded pool of GOMAXPROCS workers,
// each holding its own engine via the cache's simulator pool. Results are
// assembled in input order, so the output is identical regardless of worker
// scheduling (the simulator itself is deterministic). The first simulation
// error — or cancellation of the parent context — stops the remaining work
// promptly: workers observe the cancelled context at their next cache call
// (the granularity of one DES evaluation).
func (s Sweep) evalPoints(parent context.Context, c *sim.Cache, pts []simPoint) ([]sim.Result, error) {
	res := make([]sim.Result, len(pts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				p := pts[i]
				r, err := c.SimulateGridCtx(ctx, s.Grid, p.v, s.Machine, p.mode, s.ModeCap(p.mode),
					sim.GridOpts{Metrics: s.Metrics})
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("%s: V=%d %s: %w", s.ID, p.v, p.mode, err)
						cancel()
					})
					return
				}
				res[i] = r
			}
		}()
	}
feed:
	for i := range pts {
		select {
		case tasks <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()
	// A parent cancellation surfaces as the bare context error, not wrapped
	// in whichever point happened to observe it first.
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// rowAt assembles one SweepRow from the two simulated schedules at height v.
func (s Sweep) rowAt(v int64, ov, bl sim.Result) SweepRow {
	r := SweepRow{
		V:               v,
		G:               s.Grid.TileVolume(v),
		OverlapSim:      ov.Makespan,
		BlockingSim:     bl.Makespan,
		OverlapModel:    s.Grid.PredictOverlap(v, s.Machine),
		BlockingModel:   s.Grid.PredictNonOverlap(v, s.Machine),
		OverlapCPUUtil:  ov.CPUUtilization,
		BlockingCPUUtil: bl.CPUUtilization,
	}
	if ov.Obs != nil {
		r.OverlapEff = ov.Obs.OverlapEfficiency
	}
	if bl.Obs != nil {
		r.BlockingEff = bl.Obs.OverlapEfficiency
	}
	return r
}

// Run evaluates the sweep: simulated and analytic completion times for both
// schedules at every height. The (height, mode) points fan out over a
// bounded worker pool; the rows are assembled in height order and are
// identical to RunSequential's (see TestRunParallelMatchesSequential).
func (s Sweep) Run() ([]SweepRow, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run under a context: cancellation or an expired deadline stops
// the sweep at DES-evaluation granularity and returns ctx.Err(). Points
// already simulated stay in the sweep's cache, so a later uncancelled run
// completes from where the cancelled one stopped, bit-identically.
func (s Sweep) RunCtx(ctx context.Context) ([]SweepRow, error) {
	pts := make([]simPoint, 0, 2*len(s.Heights))
	for _, v := range s.Heights {
		pts = append(pts, simPoint{v, sim.Overlapped}, simPoint{v, sim.Blocking})
	}
	res, err := s.evalPoints(ctx, s.cache(), pts)
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, 0, len(s.Heights))
	for i, v := range s.Heights {
		rows = append(rows, s.rowAt(v, res[2*i], res[2*i+1]))
	}
	return rows, nil
}

// RunSequential is the retained sequential reference implementation of Run:
// one direct simulation after another, no worker pool, no cache. The
// determinism test checks Run against it point for point.
func (s Sweep) RunSequential() ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(s.Heights))
	for _, v := range s.Heights {
		ov, err := sim.SimulateGridWith(s.Grid, v, s.Machine, sim.Overlapped, s.Cap,
			sim.GridOpts{Metrics: s.Metrics})
		if err != nil {
			return nil, fmt.Errorf("%s: V=%d overlapped: %w", s.ID, v, err)
		}
		bl, err := sim.SimulateGridWith(s.Grid, v, s.Machine, sim.Blocking, sim.CapNone,
			sim.GridOpts{Metrics: s.Metrics})
		if err != nil {
			return nil, fmt.Errorf("%s: V=%d blocking: %w", s.ID, v, err)
		}
		rows = append(rows, s.rowAt(v, ov, bl))
	}
	return rows, nil
}

// Format renders the sweep as an aligned text table. Sweeps run with Metrics
// get two extra columns: the overlap efficiency of each schedule.
func Format(s Sweep, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", s.Title, s.ID)
	fmt.Fprintf(&b, "%8s %10s %14s %14s %14s %14s %8s %8s",
		"V", "g", "overlap(sim)", "blocking(sim)", "overlap(model)", "blocking(mod)", "ovCPU%", "blCPU%")
	if s.Metrics {
		fmt.Fprintf(&b, " %8s %8s", "ovEff%", "blEff%")
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10d %14.6f %14.6f %14.6f %14.6f %7.0f%% %7.0f%%",
			r.V, r.G, r.OverlapSim, r.BlockingSim, r.OverlapModel, r.BlockingModel,
			100*r.OverlapCPUUtil, 100*r.BlockingCPUUtil)
		if s.Metrics {
			fmt.Fprintf(&b, " %7.1f%% %7.1f%%", 100*r.OverlapEff, 100*r.BlockingEff)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV writes the sweep rows as comma-separated values with a header, for
// external plotting of the figures. The overlap-efficiency columns are always
// present and hold zeros when the sweep ran without Metrics.
func CSV(w io.Writer, rows []SweepRow) error {
	if _, err := fmt.Fprintln(w, "v,g,overlap_sim_s,blocking_sim_s,overlap_model_s,blocking_model_s,overlap_eff,blocking_eff"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.9g,%.9g,%.9g,%.9g,%.6g,%.6g\n",
			r.V, r.G, r.OverlapSim, r.BlockingSim, r.OverlapModel, r.BlockingModel,
			r.OverlapEff, r.BlockingEff); err != nil {
			return err
		}
	}
	return nil
}

// ShapeReport is the programmatic verdict on whether a sweep reproduces the
// paper's qualitative results.
type ShapeReport struct {
	OverlapAlwaysWins bool  // overlapped below blocking at every height
	UShapedOverlap    bool  // interior optimum for the overlapped curve
	UShapedBlocking   bool  // interior optimum for the blocking curve
	VOptOverlap       int64 // height of the overlapped minimum in the rows
	VOptBlocking      int64
	ImprovementPct    float64 // at the respective minima
}

// OK reports whether every qualitative property holds.
func (r ShapeReport) OK() bool {
	return r.OverlapAlwaysWins && r.UShapedOverlap && r.UShapedBlocking && r.ImprovementPct > 0
}

// CheckShape evaluates the paper's qualitative claims on a completed sweep:
// the overlapped schedule wins everywhere, both curves are U-shaped
// (strictly worse at the sweep's endpoints than at the interior optimum),
// and the improvement at the optima is positive.
func CheckShape(rows []SweepRow) (ShapeReport, error) {
	if len(rows) < 3 {
		return ShapeReport{}, fmt.Errorf("experiments: need at least 3 sweep rows, got %d", len(rows))
	}
	rep := ShapeReport{OverlapAlwaysWins: true}
	ovBest, blBest := 0, 0
	for i, r := range rows {
		if r.OverlapSim >= r.BlockingSim {
			rep.OverlapAlwaysWins = false
		}
		if r.OverlapSim < rows[ovBest].OverlapSim {
			ovBest = i
		}
		if r.BlockingSim < rows[blBest].BlockingSim {
			blBest = i
		}
	}
	last := len(rows) - 1
	rep.UShapedOverlap = ovBest > 0 && ovBest < last &&
		rows[0].OverlapSim > rows[ovBest].OverlapSim && rows[last].OverlapSim > rows[ovBest].OverlapSim
	rep.UShapedBlocking = blBest > 0 && blBest < last &&
		rows[0].BlockingSim > rows[blBest].BlockingSim && rows[last].BlockingSim > rows[blBest].BlockingSim
	rep.VOptOverlap = rows[ovBest].V
	rep.VOptBlocking = rows[blBest].V
	rep.ImprovementPct = 100 * (1 - rows[ovBest].OverlapSim/rows[blBest].BlockingSim)
	return rep, nil
}
