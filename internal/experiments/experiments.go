// Package experiments defines and regenerates every table and figure of the
// paper's evaluation (Section 5): the three tile-height sweeps (Figs. 9-11),
// the summary table (Fig. 12), the worked Examples 1 and 3, and the
// ablations called out in DESIGN.md.
//
// "Experimental" numbers come from the discrete-event cluster simulator
// calibrated to the paper's testbed (model.PentiumCluster); "theoretical"
// numbers come from the eq. 3/4/5 analytic models — mirroring the paper's
// experimental-vs-theoretical comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/sim"
)

// Sweep is one completion-time-vs-tile-height experiment (one figure).
type Sweep struct {
	ID      string
	Title   string
	Grid    model.Grid3D
	Heights []int64
	Machine model.Machine
	Cap     sim.Capability
}

// SweepRow is one point of a sweep.
type SweepRow struct {
	V             int64
	G             int64
	OverlapSim    float64
	BlockingSim   float64
	OverlapModel  float64
	BlockingModel float64
	// Mean CPU utilization across the cluster, per schedule — the paper's
	// Section 4 argues the overlapped schedule approaches full utilization
	// at the right grain.
	OverlapCPUUtil  float64
	BlockingCPUUtil float64
}

// Ladder returns a geometric ladder of tile heights from lo to hi
// (inclusive-ish), the sweep grid the figures use.
func Ladder(lo, hi int64) []int64 {
	var vs []int64
	for v := lo; v <= hi; v *= 2 {
		vs = append(vs, v)
	}
	return vs
}

// Refine returns ~n heights spread multiplicatively around center within
// [lo, hi], deduplicated and sorted, for zooming into an optimum.
func Refine(center, lo, hi int64, n int) []int64 {
	if n < 2 {
		n = 2
	}
	seen := map[int64]bool{}
	var vs []int64
	for i := 0; i < n; i++ {
		f := 0.5 + float64(i)/float64(n-1) // 0.5x .. 1.5x
		v := int64(float64(center) * f)
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Fig9 is the 16×16×16384 sweep.
func Fig9() Sweep {
	g := model.Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	return Sweep{
		ID: "fig9", Title: "Results for 16x16x16384 space",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

// Fig10 is the 16×16×32768 sweep.
func Fig10() Sweep {
	g := model.Grid3D{I: 16, J: 16, K: 32768, PI: 4, PJ: 4}
	return Sweep{
		ID: "fig10", Title: "Results for 16x16x32768 space",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

// Fig11 is the 32×32×4096 sweep.
func Fig11() Sweep {
	g := model.Grid3D{I: 32, J: 32, K: 4096, PI: 4, PJ: 4}
	return Sweep{
		ID: "fig11", Title: "Results for 32x32x4096 space",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

// Run evaluates the sweep: simulated and analytic completion times for both
// schedules at every height.
func (s Sweep) Run() ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(s.Heights))
	for _, v := range s.Heights {
		ov, err := sim.SimulateGrid(s.Grid, v, s.Machine, sim.Overlapped, s.Cap)
		if err != nil {
			return nil, fmt.Errorf("%s: V=%d overlapped: %w", s.ID, v, err)
		}
		bl, err := sim.SimulateGrid(s.Grid, v, s.Machine, sim.Blocking, sim.CapNone)
		if err != nil {
			return nil, fmt.Errorf("%s: V=%d blocking: %w", s.ID, v, err)
		}
		rows = append(rows, SweepRow{
			V:               v,
			G:               s.Grid.TileVolume(v),
			OverlapSim:      ov.Makespan,
			BlockingSim:     bl.Makespan,
			OverlapModel:    s.Grid.PredictOverlap(v, s.Machine),
			BlockingModel:   s.Grid.PredictNonOverlap(v, s.Machine),
			OverlapCPUUtil:  ov.CPUUtilization,
			BlockingCPUUtil: bl.CPUUtilization,
		})
	}
	return rows, nil
}

// Optimum finds the simulated-optimal tile height for the given mode by a
// ladder pass followed by a multiplicative refinement around the best rung.
func (s Sweep) Optimum(mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	runOne := func(v int64) (float64, error) {
		cap := s.Cap
		if mode == sim.Blocking {
			cap = sim.CapNone
		}
		r, err := sim.SimulateGrid(s.Grid, v, s.Machine, mode, cap)
		if err != nil {
			return 0, err
		}
		return r.Makespan, nil
	}
	best := int64(-1)
	bestT := 0.0
	try := func(vs []int64) error {
		for _, v := range vs {
			t, err := runOne(v)
			if err != nil {
				return err
			}
			if best < 0 || t < bestT {
				best, bestT = v, t
			}
		}
		return nil
	}
	if err := try(s.Heights); err != nil {
		return 0, 0, err
	}
	if err := try(Refine(best, 1, s.Grid.K, 13)); err != nil {
		return 0, 0, err
	}
	return best, bestT, nil
}

// Format renders the sweep as an aligned text table.
func Format(s Sweep, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", s.Title, s.ID)
	fmt.Fprintf(&b, "%8s %10s %14s %14s %14s %14s %8s %8s\n",
		"V", "g", "overlap(sim)", "blocking(sim)", "overlap(model)", "blocking(mod)", "ovCPU%", "blCPU%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10d %14.6f %14.6f %14.6f %14.6f %7.0f%% %7.0f%%\n",
			r.V, r.G, r.OverlapSim, r.BlockingSim, r.OverlapModel, r.BlockingModel,
			100*r.OverlapCPUUtil, 100*r.BlockingCPUUtil)
	}
	return b.String()
}

// CSV writes the sweep rows as comma-separated values with a header, for
// external plotting of the figures.
func CSV(w io.Writer, rows []SweepRow) error {
	if _, err := fmt.Fprintln(w, "v,g,overlap_sim_s,blocking_sim_s,overlap_model_s,blocking_model_s"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%.9g,%.9g,%.9g,%.9g\n",
			r.V, r.G, r.OverlapSim, r.BlockingSim, r.OverlapModel, r.BlockingModel); err != nil {
			return err
		}
	}
	return nil
}

// ShapeReport is the programmatic verdict on whether a sweep reproduces the
// paper's qualitative results.
type ShapeReport struct {
	OverlapAlwaysWins bool  // overlapped below blocking at every height
	UShapedOverlap    bool  // interior optimum for the overlapped curve
	UShapedBlocking   bool  // interior optimum for the blocking curve
	VOptOverlap       int64 // height of the overlapped minimum in the rows
	VOptBlocking      int64
	ImprovementPct    float64 // at the respective minima
}

// OK reports whether every qualitative property holds.
func (r ShapeReport) OK() bool {
	return r.OverlapAlwaysWins && r.UShapedOverlap && r.UShapedBlocking && r.ImprovementPct > 0
}

// CheckShape evaluates the paper's qualitative claims on a completed sweep:
// the overlapped schedule wins everywhere, both curves are U-shaped
// (strictly worse at the sweep's endpoints than at the interior optimum),
// and the improvement at the optima is positive.
func CheckShape(rows []SweepRow) (ShapeReport, error) {
	if len(rows) < 3 {
		return ShapeReport{}, fmt.Errorf("experiments: need at least 3 sweep rows, got %d", len(rows))
	}
	rep := ShapeReport{OverlapAlwaysWins: true}
	ovBest, blBest := 0, 0
	for i, r := range rows {
		if r.OverlapSim >= r.BlockingSim {
			rep.OverlapAlwaysWins = false
		}
		if r.OverlapSim < rows[ovBest].OverlapSim {
			ovBest = i
		}
		if r.BlockingSim < rows[blBest].BlockingSim {
			blBest = i
		}
	}
	last := len(rows) - 1
	rep.UShapedOverlap = ovBest > 0 && ovBest < last &&
		rows[0].OverlapSim > rows[ovBest].OverlapSim && rows[last].OverlapSim > rows[ovBest].OverlapSim
	rep.UShapedBlocking = blBest > 0 && blBest < last &&
		rows[0].BlockingSim > rows[blBest].BlockingSim && rows[last].BlockingSim > rows[blBest].BlockingSim
	rep.VOptOverlap = rows[ovBest].V
	rep.VOptBlocking = rows[blBest].V
	rep.ImprovementPct = 100 * (1 - rows[ovBest].OverlapSim/rows[blBest].BlockingSim)
	return rep, nil
}
