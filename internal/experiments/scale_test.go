package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// tinyScale is DefaultScaleSweep shrunk to test size: same shape, same
// fat-tree spec scaled down, a few hundred tiles per point.
func tinyScale() ScaleSweep {
	s := DefaultScaleSweep()
	s.Points = []ScalePoint{{2, 2}, {4, 4}, {6, 6}}
	s.V = 16
	s.Interconnect = topo.FatTree(3, 2, 4, 8, 2e-6, 2)
	return s
}

// TestScaleSweepRuns: the sweep completes, rows come back in point order,
// the overlapped schedule wins at every scale, and the accounting columns
// are populated and in range.
func TestScaleSweepRuns(t *testing.T) {
	s := tinyScale()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Points) {
		t.Fatalf("got %d rows, want %d", len(rows), len(s.Points))
	}
	for i, r := range rows {
		if want := s.Points[i].Ranks(); r.Ranks != want {
			t.Errorf("row %d: ranks %d, want %d", i, r.Ranks, want)
		}
		if r.OverlapEff <= 0 || r.OverlapEff > 1 {
			t.Errorf("%d ranks: overlap efficiency %g out of (0, 1]", r.Ranks, r.OverlapEff)
		}
		if r.OverlapCPUUtil <= 0 || r.OverlapCPUUtil > 1 {
			t.Errorf("%d ranks: cpu utilization %g out of (0, 1]", r.Ranks, r.OverlapCPUUtil)
		}
		if r.LinkBusy <= 0 {
			t.Errorf("%d ranks: fabric carried no traffic (link busy %g)", r.Ranks, r.LinkBusy)
		}
	}
	if err := CheckScale(rows); err != nil {
		t.Error(err)
	}
	out := FormatScale(s, rows)
	if !strings.Contains(out, "ranks") || !strings.Contains(out, "36") {
		t.Errorf("format output missing expected columns:\n%s", out)
	}
	var csv strings.Builder
	if err := ScaleCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rows)+1 {
		t.Errorf("csv has %d lines, want %d", lines, len(rows)+1)
	}
}

// TestScaleSweepDeterministic: two runs (one against a shared cache, one
// cold) produce bit-identical rows — the worker pool and the fabric don't
// leak scheduling nondeterminism into the results.
func TestScaleSweepDeterministic(t *testing.T) {
	s := tinyScale()
	s.Points = s.Points[:2]
	s.Cache = sim.NewCache()
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	s.Cache = nil
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestScaleSweepCancel: a pre-cancelled context surfaces as ctx.Err without
// running the sweep.
func TestScaleSweepCancel(t *testing.T) {
	s := tinyScale()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
