package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// cancelSweep returns a small sweep with a shared cache, sized so a full
// ladder pass issues a few dozen DES evaluations.
func cancelSweep() Sweep {
	g := model.Grid3D{I: 8, J: 8, K: 1024, PI: 4, PJ: 4}
	return Sweep{
		ID: "cancel", Title: "cancellation suite",
		Grid: g, Heights: Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
		Cache: sim.NewCache(),
	}
}

// sweepOps is the table of context-bearing sweep entry points the
// cancellation contract covers. Each op must surface the context error
// unwrapped (errors.Is) without issuing DES work under a dead context.
var sweepOps = []struct {
	name string
	call func(ctx context.Context, s Sweep) error
}{
	{"RunCtx", func(ctx context.Context, s Sweep) error {
		_, err := s.RunCtx(ctx)
		return err
	}},
	{"OptimumCtx", func(ctx context.Context, s Sweep) error {
		_, _, err := s.OptimumCtx(ctx, sim.Overlapped)
		return err
	}},
	{"OptimumDetailCtx", func(ctx context.Context, s Sweep) error {
		_, err := s.OptimumDetailCtx(ctx, sim.Blocking)
		return err
	}},
	{"OptimumExactCtx", func(ctx context.Context, s Sweep) error {
		_, _, err := s.OptimumExactCtx(ctx, sim.Overlapped)
		return err
	}},
	{"OptimumRefinedCtx", func(ctx context.Context, s Sweep) error {
		_, _, err := s.OptimumRefinedCtx(ctx, sim.Overlapped)
		return err
	}},
}

// TestCancelledContextRejectedPromptly: every entry point returns the
// context's own error for an already-dead context and issues zero DES
// evaluations doing so.
func TestCancelledContextRejectedPromptly(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	ctxs := []struct {
		name string
		ctx  context.Context
		want error
	}{
		{"cancelled", cancelled, context.Canceled},
		{"deadline", expired, context.DeadlineExceeded},
	}
	for _, op := range sweepOps {
		for _, tc := range ctxs {
			t.Run(op.name+"/"+tc.name, func(t *testing.T) {
				s := cancelSweep()
				err := op.call(tc.ctx, s)
				if !errors.Is(err, tc.want) {
					t.Fatalf("err = %v, want %v", err, tc.want)
				}
				if st := s.Cache.Stats(); st.Evals != 0 {
					t.Errorf("dead context still ran %d DES evaluations", st.Evals)
				}
			})
		}
	}
}

// TestCancelMidLadder cancels an exhaustive sweep after its first DES
// evaluation lands and checks the run aborts mid-ladder: the returned
// error is context.Canceled and well under the full ladder's evaluations
// ran. The margin is wide — one eval triggers the cancel, dozens remain —
// so the assertion is robust to scheduling noise.
func TestCancelMidLadder(t *testing.T) {
	s := cancelSweep()
	s.Exact = true // force the full ladder so "mid-ladder" has meat
	total := 2 * len(s.Heights)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for s.Cache.Stats().Evals == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := s.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := s.Cache.Stats(); st.Evals >= uint64(total) {
		t.Errorf("cancel did not stop the ladder: %d of %d evaluations ran", st.Evals, total)
	}
}

// TestCancelThenRerunBitIdentical: after a cancelled attempt, the same
// cache answers an uncancelled query bit-identically to a fresh cache —
// cancellation never leaves partial state that changes an answer.
func TestCancelThenRerunBitIdentical(t *testing.T) {
	s := cancelSweep()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for s.Cache.Stats().Evals == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	if _, err := s.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup cancel failed: %v", err)
	}

	rows, err := s.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref := cancelSweep() // pristine cache
	want, err := ref.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("row count %d != %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i] != want[i] {
			t.Errorf("row %d differs after cancelled warm-up: %+v != %+v", i, rows[i], want[i])
		}
	}

	// Same for the optimum query path.
	v1, t1, err := s.OptimumCtx(context.Background(), sim.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	v2, t2, err := ref.OptimumCtx(context.Background(), sim.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || t1 != t2 {
		t.Errorf("optimum after cancel (V=%d t=%g) != fresh (V=%d t=%g)", v1, t1, v2, t2)
	}
}
