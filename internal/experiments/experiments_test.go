package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/sim"
)

// tinySweep is a scaled-down sweep that runs in milliseconds.
func tinySweep() Sweep {
	g := model.Grid3D{I: 8, J: 8, K: 256, PI: 4, PJ: 4}
	return Sweep{
		ID: "tiny", Title: "tiny space",
		Grid: g, Heights: Ladder(4, 64),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
	}
}

func TestLadder(t *testing.T) {
	vs := Ladder(4, 64)
	want := []int64{4, 8, 16, 32, 64}
	if len(vs) != len(want) {
		t.Fatalf("ladder = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Errorf("ladder[%d] = %d", i, vs[i])
		}
	}
}

func TestRefine(t *testing.T) {
	vs := Refine(100, 1, 1000, 11)
	if len(vs) < 5 {
		t.Fatalf("refine too sparse: %v", vs)
	}
	for i := 1; i < len(vs); i++ {
		if vs[i] <= vs[i-1] {
			t.Errorf("refine not strictly sorted: %v", vs)
		}
	}
	if vs[0] < 50 || vs[len(vs)-1] > 150 {
		t.Errorf("refine range wrong: %v", vs)
	}
	// Clamping.
	vs = Refine(2, 1, 1000, 5)
	if vs[0] < 1 {
		t.Errorf("refine below lo: %v", vs)
	}
}

func TestSweepRun(t *testing.T) {
	s := tinySweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Heights) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.OverlapSim <= 0 || r.BlockingSim <= 0 || r.OverlapModel <= 0 || r.BlockingModel <= 0 {
			t.Errorf("non-positive time in row %+v", r)
		}
		if r.OverlapSim >= r.BlockingSim {
			t.Errorf("V=%d: overlap %g not faster than blocking %g", r.V, r.OverlapSim, r.BlockingSim)
		}
		if r.G != s.Grid.TileVolume(r.V) {
			t.Errorf("V=%d: G=%d", r.V, r.G)
		}
	}
}

func TestSweepOptimumInterior(t *testing.T) {
	s := tinySweep()
	vOpt, tOpt, err := s.Optimum(sim.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if vOpt <= s.Heights[0] || vOpt >= s.Grid.K {
		t.Errorf("optimum V=%d not interior", vOpt)
	}
	// The optimum must beat the ladder endpoints.
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tOpt > rows[0].OverlapSim || tOpt > rows[len(rows)-1].OverlapSim {
		t.Errorf("optimum %g worse than sweep endpoints", tOpt)
	}
}

func TestFormat(t *testing.T) {
	s := tinySweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := Format(s, rows)
	if !strings.Contains(out, "tiny space") || !strings.Contains(out, "overlap(sim)") {
		t.Errorf("format missing headers:\n%s", out)
	}
	if strings.Count(out, "\n") != len(rows)+2 {
		t.Errorf("unexpected line count:\n%s", out)
	}
}

func TestFigureDefinitions(t *testing.T) {
	for _, s := range []Sweep{Fig9(), Fig10(), Fig11()} {
		if err := s.Grid.Validate(); err != nil {
			t.Errorf("%s: %v", s.ID, err)
		}
		if s.Grid.PI*s.Grid.PJ != 16 {
			t.Errorf("%s: not 16 processors", s.ID)
		}
		if len(s.Heights) == 0 {
			t.Errorf("%s: no heights", s.ID)
		}
	}
	if Fig9().Grid.K != 16384 || Fig10().Grid.K != 32768 || Fig11().Grid.K != 4096 {
		t.Error("figure spaces wrong")
	}
}

func TestPaperFig12Reference(t *testing.T) {
	rows := PaperFig12()
	if len(rows) != 3 {
		t.Fatal("want 3 paper rows")
	}
	if rows[0].VOpt != 444 || rows[1].VOpt != 538 || rows[2].VOpt != 164 {
		t.Error("paper V_opt values wrong")
	}
	if rows[0].ImprovementPct != 38 {
		t.Error("paper improvement wrong")
	}
}

func TestExamplesText(t *testing.T) {
	out, err := Examples()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Example 1", "Example 3", "400036", "0.4 s", "Improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("examples output missing %q:\n%s", want, out)
		}
	}
}

func TestCapabilityAblation(t *testing.T) {
	a := CapabilityAblation{
		Grid:    model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4},
		V:       8,
		Machine: model.PentiumCluster(),
	}
	r, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in capability: no-DMA >= DMA >= full-duplex. (Blocking vs
	// overlapped-without-DMA can go either way: the overlapped schedule
	// has a longer pipeline skew, and without DMA it only hides wire time
	// — which is the paper's motivation for DMA support in Section 4.)
	if !(r.NoDMA >= r.DMA && r.DMA >= r.FullDuplex) {
		t.Errorf("capability ordering violated: %+v", r)
	}
	// With a DMA engine the overlapped schedule must beat blocking.
	if r.DMA >= r.Blocking {
		t.Errorf("overlap+DMA %g not faster than blocking %g", r.DMA, r.Blocking)
	}
	out := FormatCapability(a, r)
	if !strings.Contains(out, "full-duplex") || !strings.Contains(out, "% of blocking") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestMappingAblation(t *testing.T) {
	a := MappingAblation{
		SpaceSizes: []int64{8, 8, 128},
		TileSides:  ilmath.V(4, 4, 8),
		Machine:    model.PentiumCluster(),
	}
	rows, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The largest-dimension mapping (dim 2) must give the shortest
	// overlapped schedule length P — the UET-UCT optimality the paper
	// invokes — while using the fewest processors (tiles along the mapped
	// dimension share a processor, so mapping the longest dimension needs
	// the least hardware).
	if !(rows[2].P < rows[0].P && rows[2].P < rows[1].P) {
		t.Errorf("largest-dim mapping not P-optimal: %+v", rows)
	}
	if !(rows[2].Procs < rows[0].Procs && rows[2].Procs < rows[1].Procs) {
		t.Errorf("largest-dim mapping not processor-minimal: %+v", rows)
	}
	// With far fewer processors it must stay within 1.5x of the makespan
	// the processor-hungry mappings achieve.
	worst := rows[0].Overlap
	if rows[1].Overlap > worst {
		worst = rows[1].Overlap
	}
	if rows[2].Overlap > 1.5*worst {
		t.Errorf("largest-dim mapping makespan %g not competitive: %+v", rows[2].Overlap, rows)
	}
	out := FormatMapping(a, rows)
	if !strings.Contains(out, "*map dim 2") {
		t.Errorf("format does not mark the paper's choice:\n%s", out)
	}
}

func TestNetworkAblation(t *testing.T) {
	a := NetworkAblation{
		Grid:    model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4},
		V:       8,
		Machine: model.PentiumCluster(),
	}
	r, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The bus can only slow things down.
	if r.BlockingSharedBus < r.BlockingSwitched || r.OverlapSharedBus < r.OverlapSwitched {
		t.Errorf("shared bus faster than switched: %+v", r)
	}
	// Overlap still wins in both networks at this traffic level.
	if r.OverlapSwitched >= r.BlockingSwitched {
		t.Error("overlap lost on switched network")
	}
	out := FormatNetwork(a, r)
	if !strings.Contains(out, "shared-bus") || !strings.Contains(out, "switched") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	s := tinySweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "v,g,overlap_sim_s") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "4,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestCheckShape(t *testing.T) {
	// A ladder spanning the full height range so the optimum is interior.
	s := tinySweep()
	s.Grid.K = 1024
	s.Heights = Ladder(4, s.Grid.K)
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckShape(rows)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("shape check failed on the reference sweep: %+v", rep)
	}
	if rep.ImprovementPct < 10 {
		t.Errorf("improvement %.1f%% too small", rep.ImprovementPct)
	}
	if _, err := CheckShape(rows[:2]); err == nil {
		t.Error("short sweep accepted")
	}
	// A fabricated monotone sweep must fail the U-shape check.
	fake := []SweepRow{
		{V: 1, OverlapSim: 3, BlockingSim: 4},
		{V: 2, OverlapSim: 2, BlockingSim: 3},
		{V: 4, OverlapSim: 1, BlockingSim: 2},
	}
	rep, err = CheckShape(fake)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UShapedOverlap || rep.UShapedBlocking {
		t.Error("monotone sweep reported U-shaped")
	}
}

func TestStragglerAblation(t *testing.T) {
	a := StragglerAblation{
		Grid:      model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4},
		V:         8,
		Machine:   model.PentiumCluster(),
		Straggler: 5,
		Slowdowns: []float64{1.0, 0.5},
	}
	rows, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Speed 1.0 row: no slowdown.
	if rows[0].BlockingSlowdown != 1 || rows[0].OverlapSlowdown != 1 {
		t.Errorf("unit speed slowed down: %+v", rows[0])
	}
	// Half speed: both slower but less than 2x.
	if rows[1].BlockingSlowdown <= 1 || rows[1].OverlapSlowdown <= 1 {
		t.Errorf("straggler did not slow: %+v", rows[1])
	}
	if rows[1].BlockingSlowdown >= 2 || rows[1].OverlapSlowdown >= 2 {
		t.Errorf("one straggler doubled makespan: %+v", rows[1])
	}
	out := FormatStraggler(a, rows)
	if !strings.Contains(out, "slow node = rank 5") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestFig12PipelineScaled(t *testing.T) {
	s := tinySweep()
	s.Grid.K = 1024
	s.Heights = Ladder(4, s.Grid.K/2)
	rows, err := Fig12For([]Sweep{s})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Space != "8x8x1024" {
		t.Errorf("space = %q", r.Space)
	}
	if r.VOpt <= 0 || r.GOpt != 4*r.VOpt {
		t.Errorf("optimum geometry wrong: %+v", r)
	}
	if r.TOptOverlap >= r.TOptBlocking {
		t.Errorf("overlap optimum %g not below blocking %g", r.TOptOverlap, r.TOptBlocking)
	}
	if r.ImprovementPct <= 0 || r.ImprovementPct >= 60 {
		t.Errorf("improvement %.1f%% implausible", r.ImprovementPct)
	}
	if r.DiffPct < 0 || r.DiffPct > 50 {
		t.Errorf("theory/exp diff %.1f%% implausible", r.DiffPct)
	}
	if r.P != s.Grid.POverlap(r.VOpt) {
		t.Errorf("P = %d inconsistent with V_opt", r.P)
	}
}
