// Package experiments defines and regenerates every table and figure of the
// paper's evaluation (Section 5): the three tile-height sweeps (Figs. 9-11),
// the summary table (Fig. 12), the worked Examples 1 and 3, and the
// ablations called out in DESIGN.md.
//
// "Experimental" numbers come from the discrete-event cluster simulator
// calibrated to the paper's testbed (model.PentiumCluster); "theoretical"
// numbers come from the eq. 3/4/5 analytic models — mirroring the paper's
// experimental-vs-theoretical comparison.
package experiments
