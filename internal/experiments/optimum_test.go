package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/estimate"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestTieredOptimumMatchesExactOnFigures is the acceptance gate of the
// tiered-search rework: on the paper's Fig. 9-11 spaces (which also feed
// Fig. 12) and for both schedules, the tiered Optimum must return the
// bit-identical (V, t) the exhaustive search returns, while issuing at
// least 4x fewer DES evaluations per query and at least 5x fewer in
// aggregate — measured with the sim.Cache counters.
func TestTieredOptimumMatchesExactOnFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure spaces")
	}
	if raceDetectorEnabled {
		t.Skip("full-scale DES is prohibitively slow under the race detector; the randomized property test covers the tiered path there")
	}
	type counts struct{ tiered, exact uint64 }
	var mu sync.Mutex // subtests run in parallel
	results := make(map[string]counts)
	var queries []string
	for _, fig := range []Sweep{Fig9(), Fig10(), Fig11()} {
		fig := fig
		for _, mode := range []sim.Mode{sim.Overlapped, sim.Blocking} {
			mode := mode
			name := fmt.Sprintf("%s/%s", fig.ID, mode)
			queries = append(queries, name)
			results[name] = counts{}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				s := fig
				s.Cache = sim.NewCache()
				out, err := s.OptimumDetail(mode)
				if err != nil {
					t.Fatal(err)
				}
				tiered := s.Cache.Stats().Evals
				if out.Tier != estimate.TierCertified {
					t.Errorf("paper grid not certified: %+v", out)
				}

				s.Cache = sim.NewCache()
				vEx, tEx, err := s.OptimumExact(mode)
				if err != nil {
					t.Fatal(err)
				}
				exact := s.Cache.Stats().Evals

				if out.V != vEx || out.T != tEx {
					t.Errorf("tiered (V=%d t=%v) != exact (V=%d t=%v)", out.V, out.T, vEx, tEx)
				}
				if tiered*4 > exact {
					t.Errorf("per-query savings too small: %d tiered vs %d exact evals", tiered, exact)
				}
				mu.Lock()
				results[name] = counts{tiered, exact}
				mu.Unlock()
			})
		}
	}
	// Runs after every parallel subtest above has finished.
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		var tiered, exact uint64
		for _, name := range queries {
			c := results[name]
			if c.exact == 0 {
				return // a subtest failed before recording; it already reported
			}
			tiered += c.tiered
			exact += c.exact
		}
		if tiered*5 > exact {
			t.Errorf("aggregate savings below 5x: %d tiered vs %d exact DES evaluations", tiered, exact)
		}
		t.Logf("DES evaluations across %d queries: tiered %d, exact %d (%.1fx)",
			len(queries), tiered, exact, float64(exact)/float64(tiered))
	})
}

// TestOptimumMatchesSequentialArgminRandomized is the seeded property
// test: across randomized Grid3D/Machine configurations and both modes,
// the tiered Optimum must return exactly the answer obtained by running
// the sequential reference sweep over the same candidate heights and
// taking the earliest argmin. On configurations far from the calibrated
// regime the certification tolerances reject the fast path and the exact
// fallback answers — either way the identity must hold bit-for-bit.
func TestOptimumMatchesSequentialArgminRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 10
	dims := []int64{8, 16, 32}
	for trial := 0; trial < trials; trial++ {
		g := model.Grid3D{
			I:  dims[rng.Intn(len(dims))],
			J:  dims[rng.Intn(len(dims))],
			K:  256 << rng.Intn(3),
			PI: 4, PJ: 4,
		}
		m := model.PentiumCluster()
		scale := func(x float64) float64 { return x * math.Exp(2.2*rng.Float64()-1.1) }
		m.Tc = scale(m.Tc)
		m.Ts = scale(m.Ts)
		m.Tt = scale(m.Tt)
		m.FillMPIBase = scale(m.FillMPIBase)
		m.FillMPIPerByte = scale(m.FillMPIPerByte)
		m.FillKernelBase = scale(m.FillKernelBase)
		m.FillKernelPerByte = scale(m.FillKernelPerByte)
		s := Sweep{
			ID: fmt.Sprintf("prop%d", trial), Title: "property",
			Grid: g, Heights: Ladder(4, g.K/4),
			Machine: m, Cap: sim.CapDMA,
			Cache: sim.NewCache(),
		}
		ref := s
		ref.Heights = s.OptimumHeights()
		ref.Cache = nil
		rows, err := ref.RunSequential()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, mode := range []sim.Mode{sim.Overlapped, sim.Blocking} {
			wantV, wantT := int64(-1), 0.0
			for _, r := range rows {
				tt := r.OverlapSim
				if mode == sim.Blocking {
					tt = r.BlockingSim
				}
				if wantV < 0 || tt < wantT {
					wantV, wantT = r.V, tt
				}
			}
			out, err := s.OptimumDetail(mode)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, mode, err)
			}
			if out.V != wantV || out.T != wantT {
				t.Errorf("trial %d %s (grid %+v): tiered V=%d t=%v != reference V=%d t=%v (outcome %+v)",
					trial, mode, g, out.V, out.T, wantV, wantT, out)
			}
		}
	}
}

// TestLadderEdgeCases: clamping and degenerate ranges (the lo <= 0 input
// used to loop forever: 0*2 == 0).
func TestLadderEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi int64
		want   []int64
	}{
		{"zero lo", 0, 8, []int64{1, 2, 4, 8}},
		{"negative lo", -5, 4, []int64{1, 2, 4}},
		{"lo == hi", 16, 16, []int64{16}},
		{"hi below lo", 16, 8, nil},
		{"hi zero", 1, 0, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Ladder(tc.lo, tc.hi)
			if len(got) != len(tc.want) {
				t.Fatalf("Ladder(%d, %d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("Ladder(%d, %d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
				}
			}
		})
	}
}

// TestRefineEdgeCases: degenerate brackets and tiny counts stay inside
// [lo, hi], deduped and strictly increasing.
func TestRefineEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		center, lo, hi int64
		n              int
	}{
		{"lo == hi", 100, 64, 64, 7},
		{"n == 1", 100, 1, 1000, 1},
		{"n == 0", 100, 1, 1000, 0},
		{"center below lo", 2, 10, 1000, 9},
		{"center above hi", 5000, 1, 1000, 9},
		{"center zero", 0, 1, 1000, 5},
		{"lo zero", 10, 0, 1000, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := Refine(tc.center, tc.lo, tc.hi, tc.n)
			if len(vs) == 0 {
				t.Fatalf("Refine(%d, %d, %d, %d) empty", tc.center, tc.lo, tc.hi, tc.n)
			}
			lo := tc.lo
			if lo < 1 {
				lo = 1
			}
			for i, v := range vs {
				if v < lo || v > tc.hi {
					t.Errorf("candidate %d outside [%d, %d]: %v", v, lo, tc.hi, vs)
				}
				if i > 0 && v <= vs[i-1] {
					t.Errorf("not strictly increasing: %v", vs)
				}
			}
		})
	}
	if vs := Refine(100, 64, 64, 7); len(vs) != 1 || vs[0] != 64 {
		t.Errorf("degenerate bracket: %v, want [64]", vs)
	}
	if vs := Refine(100, 64, 32, 7); vs != nil {
		t.Errorf("inverted bracket: %v, want nil", vs)
	}
}
