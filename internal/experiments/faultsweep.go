package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/sim"
)

// FaultSweep degrades one (grid, tile height) configuration under an
// increasing fault intensity at a fixed seed: the same stragglers, lossy
// links and pauses hit both schedules, only harder as intensity grows.
// The row set answers the robustness question the fault model exists for:
// does the overlapped schedule keep its advantage when the cluster
// misbehaves, and how gracefully does each schedule degrade?
type FaultSweep struct {
	ID      string
	Grid    model.Grid3D
	Machine model.Machine
	Cap     sim.Capability
	// V is the tile height both schedules run at — typically each sweep's
	// optimum, so degradation is measured from the best configuration.
	V    int64
	Seed uint64
	// Intensities must be ascending; 0 reproduces the fault-free numbers.
	Intensities []float64
	// Cache optionally memoizes points across runs (keyed on the plan).
	Cache *sim.Cache
}

// FaultRow is one intensity step of a degradation sweep.
type FaultRow struct {
	Intensity float64
	Overlap   float64 // makespan, seconds
	Blocking  float64
	OverlapX  float64 // slowdown vs the fault-free makespan (1.0 = unharmed)
	BlockingX float64

	// Deadline cross-check columns, derived from the fault plan alone
	// (no simulation): WorstResends is the largest per-link retransmit
	// count over every ordered rank pair, WorstChain that link's
	// accumulated retry delay as a multiple of one nominal wire time.
	// BudgetHit marks intensities where some link exhausts MaxResend;
	// DeadlineHit marks intensities where WorstChain reaches the full
	// retry-chain delay a runtime deadline would be provisioned for.
	// CheckDeadlineConsistency asserts the two flags agree.
	WorstResends int
	WorstChain   float64
	BudgetHit    bool
	DeadlineHit  bool
}

func (s FaultSweep) cache() *sim.Cache {
	if s.Cache != nil {
		return s.Cache
	}
	return sim.NewCache()
}

// modeCap mirrors Sweep.modeCap: blocking always burns the CPU for copies.
func (s FaultSweep) modeCap(mode sim.Mode) sim.Capability {
	if mode == sim.Blocking {
		return sim.CapNone
	}
	return s.Cap
}

// faultPoint is one (plan, mode) simulation of the sweep.
type faultPoint struct {
	fp   fault.Plan
	mode sim.Mode
}

// points lays out the simulations a sweep needs: the fault-free baseline
// pair first, then an (overlapped, blocking) pair per intensity.
func (s FaultSweep) points() []faultPoint {
	pts := make([]faultPoint, 0, 2+2*len(s.Intensities))
	pts = append(pts,
		faultPoint{fault.Plan{}, sim.Overlapped},
		faultPoint{fault.Plan{}, sim.Blocking})
	for _, in := range s.Intensities {
		fp := fault.Default(s.Seed, in)
		pts = append(pts, faultPoint{fp, sim.Overlapped}, faultPoint{fp, sim.Blocking})
	}
	return pts
}

// rows assembles the row set from results laid out by points().
func (s FaultSweep) rows(res []sim.Result) []FaultRow {
	baseOv, baseBl := res[0].Makespan, res[1].Makespan
	rows := make([]FaultRow, len(s.Intensities))
	for i, in := range s.Intensities {
		ov, bl := res[2+2*i].Makespan, res[3+2*i].Makespan
		rows[i] = FaultRow{
			Intensity: in,
			Overlap:   ov, Blocking: bl,
			OverlapX: ov / baseOv, BlockingX: bl / baseBl,
		}
		rows[i].WorstResends, rows[i].WorstChain, rows[i].BudgetHit, rows[i].DeadlineHit =
			s.deadline(fault.Default(s.Seed, in))
	}
	return rows
}

// retryChain is the accumulated retransmission delay of a k-attempt-deep
// retry chain, in multiples of one nominal wire time: Σ_{i<k} RetryDelay(1, i).
// Each term is positive, so the chain is strictly increasing in k — which is
// exactly why "out of resends" and "out of deadline" coincide.
func retryChain(fp fault.Plan, k int) float64 {
	var d float64
	for i := 0; i < k; i++ {
		d += fp.RetryDelay(1, i)
	}
	return d
}

// deadline derives the cross-check columns for one fault plan. The scan
// covers every ordered rank pair — a superset of the links the schedule
// actually uses, deliberately: the check is about the fault plan's
// retransmit arithmetic, not the traffic pattern, and the superset keeps it
// independent of tile geometry. A link exhausts the retransmit budget when
// Resends hits MaxResend; the matching deadline budget is the delay of a
// full retry chain, so DeadlineHit compares the worst observed chain
// against retryChain(fp, MaxResend).
func (s FaultSweep) deadline(fp fault.Plan) (worstResends int, worstChain float64, budgetHit, deadlineHit bool) {
	ranks := s.Grid.PI * s.Grid.PJ
	for from := int64(0); from < ranks; from++ {
		for to := int64(0); to < ranks; to++ {
			if to == from {
				continue
			}
			if k := fp.Resends(from, to); k > worstResends {
				worstResends = k
			}
		}
	}
	worstChain = retryChain(fp, worstResends)
	if fp.MaxResend > 0 {
		budgetHit = worstResends == fp.MaxResend
		deadlineHit = worstChain >= retryChain(fp, fp.MaxResend)
	}
	return worstResends, worstChain, budgetHit, deadlineHit
}

func (s FaultSweep) validate() error {
	if s.V <= 0 {
		return fmt.Errorf("experiments: fault sweep %s: non-positive tile height %d", s.ID, s.V)
	}
	if len(s.Intensities) == 0 {
		return fmt.Errorf("experiments: fault sweep %s has no intensities", s.ID)
	}
	for i := 1; i < len(s.Intensities); i++ {
		if s.Intensities[i] < s.Intensities[i-1] {
			return fmt.Errorf("experiments: fault sweep %s: intensities not ascending at %d", s.ID, i)
		}
	}
	return nil
}

// Run evaluates the sweep on a bounded worker pool, like Sweep.Run. The
// fault model is stateless in simulation order, so the rows are identical
// to RunSequential's regardless of worker scheduling.
func (s FaultSweep) Run() ([]FaultRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c := s.cache()
	pts := s.points()
	res := make([]sim.Result, len(pts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				p := pts[i]
				r, err := c.SimulateGridFault(s.Grid, s.V, s.Machine, p.mode, s.modeCap(p.mode), sim.Switched, p.fp)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("%s: intensity %g %s: %w", s.ID, p.fp.Intensity, p.mode, err)
						cancel()
					})
					return
				}
				res[i] = r
			}
		}()
	}
feed:
	for i := range pts {
		select {
		case tasks <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s.rows(res), nil
}

// RunSequential is the retained sequential reference: one direct
// simulation after another, no pool, no cache. The replayability test
// checks Run against it row for row.
func (s FaultSweep) RunSequential() ([]FaultRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	pts := s.points()
	res := make([]sim.Result, len(pts))
	for i, p := range pts {
		r, err := sim.SimulateGridFault(s.Grid, s.V, s.Machine, p.mode, s.modeCap(p.mode), sim.Switched, p.fp)
		if err != nil {
			return nil, fmt.Errorf("%s: intensity %g %s: %w", s.ID, p.fp.Intensity, p.mode, err)
		}
		res[i] = r
	}
	return s.rows(res), nil
}

// CheckDegradation asserts graceful degradation on a completed sweep: no
// intensity step may repair a schedule (makespans monotonically
// non-decreasing in intensity, and never below the fault-free baseline).
// The fault model is built so per-activity durations are monotone in
// intensity at a fixed seed, which is what makes this assertable at all.
func CheckDegradation(rows []FaultRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty degradation sweep")
	}
	for i, r := range rows {
		if r.OverlapX < 1 || r.BlockingX < 1 {
			return fmt.Errorf("experiments: intensity %g beats the fault-free baseline (overlap ×%.6f, blocking ×%.6f)",
				r.Intensity, r.OverlapX, r.BlockingX)
		}
		if i == 0 {
			continue
		}
		prev := rows[i-1]
		if r.Overlap < prev.Overlap {
			return fmt.Errorf("experiments: overlapped makespan improves from %g to %g as intensity rises %g→%g",
				prev.Overlap, r.Overlap, prev.Intensity, r.Intensity)
		}
		if r.Blocking < prev.Blocking {
			return fmt.Errorf("experiments: blocking makespan improves from %g to %g as intensity rises %g→%g",
				prev.Blocking, r.Blocking, prev.Intensity, r.Intensity)
		}
	}
	return nil
}

// CheckDeadlineConsistency cross-checks the retransmit budget against the
// deadline budget on a completed sweep: an intensity must exhaust the
// retransmit cap (some link reaches MaxResend) exactly when its worst retry
// chain reaches the delay a runtime deadline would be provisioned for. Both
// flags come from the same fault plan but through different arithmetic —
// attempt counting versus accumulated backoff delay — so agreement is a
// real invariant, not a tautology: it holds because the retry chain is a
// strictly increasing prefix sum. The check also asserts that tripping the
// budget is monotone in intensity (Resends is monotone at a fixed seed), so
// there is a single smallest intensity past which the runtime deadline
// fires.
func CheckDeadlineConsistency(rows []FaultRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty deadline sweep")
	}
	for i, r := range rows {
		if r.BudgetHit != r.DeadlineHit {
			return fmt.Errorf("experiments: intensity %g: retransmit budget hit=%v but deadline hit=%v (worst chain %.3f× wire over %d resends)",
				r.Intensity, r.BudgetHit, r.DeadlineHit, r.WorstChain, r.WorstResends)
		}
		if i == 0 {
			continue
		}
		prev := rows[i-1]
		if prev.BudgetHit && !r.BudgetHit {
			return fmt.Errorf("experiments: retransmit budget recovers as intensity rises %g→%g",
				prev.Intensity, r.Intensity)
		}
		if r.WorstChain < prev.WorstChain {
			return fmt.Errorf("experiments: worst retry chain shrinks from %.3f× to %.3f× as intensity rises %g→%g",
				prev.WorstChain, r.WorstChain, prev.Intensity, r.Intensity)
		}
	}
	return nil
}

// FormatFaultSweep renders the degradation sweep as an aligned text table.
func FormatFaultSweep(s FaultSweep, rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degradation sweep %s: %dx%dx%d on %dx%d, V=%d, seed=%d\n",
		s.ID, s.Grid.I, s.Grid.J, s.Grid.K, s.Grid.PI, s.Grid.PJ, s.V, s.Seed)
	fmt.Fprintf(&b, "%10s %14s %14s %10s %10s\n",
		"intensity", "overlap(s)", "blocking(s)", "overlap×", "blocking×")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %14.6f %14.6f %9.3f× %9.3f×\n",
			r.Intensity, r.Overlap, r.Blocking, r.OverlapX, r.BlockingX)
	}
	return b.String()
}

// FormatFaultDeadline renders the deadline cross-check columns of a sweep:
// the worst per-link retransmit count, the matching retry-chain delay (as a
// multiple of one wire time), and whether each intensity exhausts the
// retransmit budget / trips the provisioned deadline.
func FormatFaultDeadline(s FaultSweep, rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Deadline cross-check %s: seed=%d\n", s.ID, s.Seed)
	fmt.Fprintf(&b, "%10s %8s %12s %10s %10s\n",
		"intensity", "resends", "chain(×wire)", "budget", "deadline")
	hit := func(v bool) string {
		if v {
			return "HIT"
		}
		return "ok"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %8d %12.3f %10s %10s\n",
			r.Intensity, r.WorstResends, r.WorstChain, hit(r.BudgetHit), hit(r.DeadlineHit))
	}
	return b.String()
}
