package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/sim"
)

// FaultSweep degrades one (grid, tile height) configuration under an
// increasing fault intensity at a fixed seed: the same stragglers, lossy
// links and pauses hit both schedules, only harder as intensity grows.
// The row set answers the robustness question the fault model exists for:
// does the overlapped schedule keep its advantage when the cluster
// misbehaves, and how gracefully does each schedule degrade?
type FaultSweep struct {
	ID      string
	Grid    model.Grid3D
	Machine model.Machine
	Cap     sim.Capability
	// V is the tile height both schedules run at — typically each sweep's
	// optimum, so degradation is measured from the best configuration.
	V    int64
	Seed uint64
	// Intensities must be ascending; 0 reproduces the fault-free numbers.
	Intensities []float64
	// Cache optionally memoizes points across runs (keyed on the plan).
	Cache *sim.Cache
}

// FaultRow is one intensity step of a degradation sweep.
type FaultRow struct {
	Intensity float64
	Overlap   float64 // makespan, seconds
	Blocking  float64
	OverlapX  float64 // slowdown vs the fault-free makespan (1.0 = unharmed)
	BlockingX float64
}

func (s FaultSweep) cache() *sim.Cache {
	if s.Cache != nil {
		return s.Cache
	}
	return sim.NewCache()
}

// modeCap mirrors Sweep.modeCap: blocking always burns the CPU for copies.
func (s FaultSweep) modeCap(mode sim.Mode) sim.Capability {
	if mode == sim.Blocking {
		return sim.CapNone
	}
	return s.Cap
}

// faultPoint is one (plan, mode) simulation of the sweep.
type faultPoint struct {
	fp   fault.Plan
	mode sim.Mode
}

// points lays out the simulations a sweep needs: the fault-free baseline
// pair first, then an (overlapped, blocking) pair per intensity.
func (s FaultSweep) points() []faultPoint {
	pts := make([]faultPoint, 0, 2+2*len(s.Intensities))
	pts = append(pts,
		faultPoint{fault.Plan{}, sim.Overlapped},
		faultPoint{fault.Plan{}, sim.Blocking})
	for _, in := range s.Intensities {
		fp := fault.Default(s.Seed, in)
		pts = append(pts, faultPoint{fp, sim.Overlapped}, faultPoint{fp, sim.Blocking})
	}
	return pts
}

// rows assembles the row set from results laid out by points().
func (s FaultSweep) rows(res []sim.Result) []FaultRow {
	baseOv, baseBl := res[0].Makespan, res[1].Makespan
	rows := make([]FaultRow, len(s.Intensities))
	for i, in := range s.Intensities {
		ov, bl := res[2+2*i].Makespan, res[3+2*i].Makespan
		rows[i] = FaultRow{
			Intensity: in,
			Overlap:   ov, Blocking: bl,
			OverlapX: ov / baseOv, BlockingX: bl / baseBl,
		}
	}
	return rows
}

func (s FaultSweep) validate() error {
	if s.V <= 0 {
		return fmt.Errorf("experiments: fault sweep %s: non-positive tile height %d", s.ID, s.V)
	}
	if len(s.Intensities) == 0 {
		return fmt.Errorf("experiments: fault sweep %s has no intensities", s.ID)
	}
	for i := 1; i < len(s.Intensities); i++ {
		if s.Intensities[i] < s.Intensities[i-1] {
			return fmt.Errorf("experiments: fault sweep %s: intensities not ascending at %d", s.ID, i)
		}
	}
	return nil
}

// Run evaluates the sweep on a bounded worker pool, like Sweep.Run. The
// fault model is stateless in simulation order, so the rows are identical
// to RunSequential's regardless of worker scheduling.
func (s FaultSweep) Run() ([]FaultRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c := s.cache()
	pts := s.points()
	res := make([]sim.Result, len(pts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				p := pts[i]
				r, err := c.SimulateGridFault(s.Grid, s.V, s.Machine, p.mode, s.modeCap(p.mode), sim.Switched, p.fp)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("%s: intensity %g %s: %w", s.ID, p.fp.Intensity, p.mode, err)
						cancel()
					})
					return
				}
				res[i] = r
			}
		}()
	}
feed:
	for i := range pts {
		select {
		case tasks <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s.rows(res), nil
}

// RunSequential is the retained sequential reference: one direct
// simulation after another, no pool, no cache. The replayability test
// checks Run against it row for row.
func (s FaultSweep) RunSequential() ([]FaultRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	pts := s.points()
	res := make([]sim.Result, len(pts))
	for i, p := range pts {
		r, err := sim.SimulateGridFault(s.Grid, s.V, s.Machine, p.mode, s.modeCap(p.mode), sim.Switched, p.fp)
		if err != nil {
			return nil, fmt.Errorf("%s: intensity %g %s: %w", s.ID, p.fp.Intensity, p.mode, err)
		}
		res[i] = r
	}
	return s.rows(res), nil
}

// CheckDegradation asserts graceful degradation on a completed sweep: no
// intensity step may repair a schedule (makespans monotonically
// non-decreasing in intensity, and never below the fault-free baseline).
// The fault model is built so per-activity durations are monotone in
// intensity at a fixed seed, which is what makes this assertable at all.
func CheckDegradation(rows []FaultRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty degradation sweep")
	}
	for i, r := range rows {
		if r.OverlapX < 1 || r.BlockingX < 1 {
			return fmt.Errorf("experiments: intensity %g beats the fault-free baseline (overlap ×%.6f, blocking ×%.6f)",
				r.Intensity, r.OverlapX, r.BlockingX)
		}
		if i == 0 {
			continue
		}
		prev := rows[i-1]
		if r.Overlap < prev.Overlap {
			return fmt.Errorf("experiments: overlapped makespan improves from %g to %g as intensity rises %g→%g",
				prev.Overlap, r.Overlap, prev.Intensity, r.Intensity)
		}
		if r.Blocking < prev.Blocking {
			return fmt.Errorf("experiments: blocking makespan improves from %g to %g as intensity rises %g→%g",
				prev.Blocking, r.Blocking, prev.Intensity, r.Intensity)
		}
	}
	return nil
}

// FormatFaultSweep renders the degradation sweep as an aligned text table.
func FormatFaultSweep(s FaultSweep, rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degradation sweep %s: %dx%dx%d on %dx%d, V=%d, seed=%d\n",
		s.ID, s.Grid.I, s.Grid.J, s.Grid.K, s.Grid.PI, s.Grid.PJ, s.V, s.Seed)
	fmt.Fprintf(&b, "%10s %14s %14s %10s %10s\n",
		"intensity", "overlap(s)", "blocking(s)", "overlap×", "blocking×")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %14.6f %14.6f %9.3f× %9.3f×\n",
			r.Intensity, r.Overlap, r.Blocking, r.OverlapX, r.BlockingX)
	}
	return b.String()
}
