package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/sim"
)

// RecoverySweep crosses checkpoint interval with fault intensity and models
// the expected completion time of a supervised run (internal/supervise) on
// one (grid, tile height) configuration: the classic Young/Daly tradeoff.
// Checkpointing often costs time up front; crashing costs the rework
// between the last snapshot boundary and the failure point plus a restart.
// Small intervals overpay the first, large intervals the second, so at any
// positive failure rate the completion curve over intervals is a tradeoff
// with an interior sweet spot that moves toward shorter intervals as the
// cluster gets less reliable.
//
// The compute-time inputs come from the DES: the fault-free makespan
// anchors the inflation column, and each intensity's degraded makespan (the
// same seeded fault plan the degradation sweep uses) supplies the useful
// work time that failures interrupt. The recovery arithmetic on top is
// deliberately the expectation model, not a crash simulation — it is the
// curve an operator consults to pick -checkpoint-every before a run.
type RecoverySweep struct {
	ID      string
	Grid    model.Grid3D
	Machine model.Machine
	Cap     sim.Capability
	// V is the tile height, typically the overlapped optimum.
	V    int64
	Seed uint64
	// Intervals are the checkpoint intervals to cross, in tiles (the unit
	// -checkpoint-every takes). Ascending.
	Intervals []int64
	// Intensities are the fault intensities to cross, ascending; include 0
	// for the checkpoint-overhead-only column.
	Intensities []float64
	// CkCost is the wall time of writing one checkpoint generation, in
	// seconds (0 defaults to faultfree/200: snapshots are cheap but not
	// free).
	CkCost float64
	// Restart is the per-incident recovery cost in seconds — detection,
	// backoff and world rebuild, i.e. the supervisor's MTTR floor (0
	// defaults to faultfree/50).
	Restart float64
	// MTBF is the mean time between rank failures at intensity 1, in
	// seconds of useful work (0 defaults to faultfree/2: about two crashes
	// per run at full intensity). Intensity x scales the failure rate to
	// x/MTBF.
	MTBF float64
	// Cache optionally memoizes the DES points across runs.
	Cache *sim.Cache
}

// RecoveryRow is one (intensity, interval) cell of the tradeoff.
type RecoveryRow struct {
	Intensity float64
	Interval  int64 // tiles between checkpoints
	// FaultFree is the no-fault no-checkpoint DES makespan (seconds); the
	// inflation denominator, identical on every row.
	FaultFree float64
	// Faulty is the DES makespan under this intensity's fault plan, without
	// any recovery machinery (seconds).
	Faulty float64
	// CkOverhead = ceil(tiles/interval) × CkCost (seconds).
	CkOverhead float64
	// ExpFailures = intensity × Faulty / MTBF.
	ExpFailures float64
	// Rework = ExpFailures × (interval/2 × step + Restart): half an
	// interval of recomputation per crash on average, plus the rebuild
	// (seconds).
	Rework float64
	// Completion = Faulty + CkOverhead + Rework (seconds).
	Completion float64
	// InflationX = Completion / FaultFree.
	InflationX float64
	// YoungOpt is Young's approximation of the optimal interval,
	// √(2·CkCost·MTBF/intensity)/step, in tiles (0 at intensity 0).
	YoungOpt float64
}

func (s RecoverySweep) cache() *sim.Cache {
	if s.Cache != nil {
		return s.Cache
	}
	return sim.NewCache()
}

func (s RecoverySweep) validate() error {
	if s.V <= 0 {
		return fmt.Errorf("experiments: recovery sweep %s: non-positive tile height %d", s.ID, s.V)
	}
	if len(s.Intervals) == 0 || len(s.Intensities) == 0 {
		return fmt.Errorf("experiments: recovery sweep %s needs intervals and intensities", s.ID)
	}
	for i, iv := range s.Intervals {
		if iv <= 0 {
			return fmt.Errorf("experiments: recovery sweep %s: non-positive interval %d", s.ID, iv)
		}
		if i > 0 && iv <= s.Intervals[i-1] {
			return fmt.Errorf("experiments: recovery sweep %s: intervals not strictly ascending at %d", s.ID, i)
		}
	}
	for i, x := range s.Intensities {
		if x < 0 {
			return fmt.Errorf("experiments: recovery sweep %s: negative intensity %g", s.ID, x)
		}
		if i > 0 && x < s.Intensities[i-1] {
			return fmt.Errorf("experiments: recovery sweep %s: intensities not ascending at %d", s.ID, i)
		}
	}
	if s.CkCost < 0 || s.Restart < 0 || s.MTBF < 0 {
		return fmt.Errorf("experiments: recovery sweep %s: negative cost parameter", s.ID)
	}
	return nil
}

// Run evaluates the sweep: one DES point per intensity (plus the fault-free
// anchor), then the recovery expectation per interval on top.
func (s RecoverySweep) Run() ([]RecoveryRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c := s.cache()
	base, err := c.SimulateGridFault(s.Grid, s.V, s.Machine, sim.Overlapped, s.Cap, sim.Switched, fault.Plan{})
	if err != nil {
		return nil, fmt.Errorf("%s: fault-free anchor: %w", s.ID, err)
	}
	t0 := base.Makespan
	ckCost, restart, mtbf := s.CkCost, s.Restart, s.MTBF
	if ckCost == 0 {
		ckCost = t0 / 200
	}
	if restart == 0 {
		restart = t0 / 50
	}
	if mtbf == 0 {
		mtbf = t0 / 2
	}
	tiles := s.Grid.KTiles(s.V)
	rows := make([]RecoveryRow, 0, len(s.Intensities)*len(s.Intervals))
	for _, x := range s.Intensities {
		fp := fault.Plan{}
		if x > 0 {
			fp = fault.Default(s.Seed, x)
		}
		r, err := c.SimulateGridFault(s.Grid, s.V, s.Machine, sim.Overlapped, s.Cap, sim.Switched, fp)
		if err != nil {
			return nil, fmt.Errorf("%s: intensity %g: %w", s.ID, x, err)
		}
		faulty := r.Makespan
		step := faulty / float64(tiles)
		failures := x * faulty / mtbf
		for _, iv := range s.Intervals {
			row := RecoveryRow{
				Intensity:   x,
				Interval:    iv,
				FaultFree:   t0,
				Faulty:      faulty,
				CkOverhead:  float64((tiles+iv-1)/iv) * ckCost,
				ExpFailures: failures,
			}
			row.Rework = failures * (float64(iv)/2*step + restart)
			row.Completion = faulty + row.CkOverhead + row.Rework
			row.InflationX = row.Completion / t0
			if x > 0 {
				row.YoungOpt = math.Sqrt(2*ckCost*mtbf/x) / step
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// BestIntervals returns, per intensity in row order, the interval with the
// lowest modeled completion time (ties to the shorter interval).
func BestIntervals(rows []RecoveryRow) map[float64]int64 {
	best := make(map[float64]int64)
	bestC := make(map[float64]float64)
	for _, r := range rows {
		if c, ok := bestC[r.Intensity]; !ok || r.Completion < c {
			bestC[r.Intensity] = r.Completion
			best[r.Intensity] = r.Interval
		}
	}
	return best
}

// CheckRecoveryTradeoff asserts the Young/Daly signature on a completed
// sweep: completion never beats the fault-free anchor; at a fixed interval
// completion is non-decreasing in intensity; at intensity 0 longer
// intervals only help (checkpoint overhead is all there is); and the best
// interval is non-increasing as intensity rises — a souring cluster is
// never a reason to checkpoint less often. The last property holds because
// raising the failure rate adds a cost that grows with the interval, which
// can only move the minimum leftward.
func CheckRecoveryTradeoff(rows []RecoveryRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("experiments: empty recovery sweep")
	}
	byCell := make(map[int64][]RecoveryRow)
	var order []float64
	var ivOrder []int64
	seen := make(map[float64]bool)
	for _, r := range rows {
		if r.InflationX < 1 {
			return fmt.Errorf("experiments: intensity %g interval %d beats the fault-free anchor (×%.6f)",
				r.Intensity, r.Interval, r.InflationX)
		}
		if _, ok := byCell[r.Interval]; !ok {
			ivOrder = append(ivOrder, r.Interval)
		}
		byCell[r.Interval] = append(byCell[r.Interval], r)
		if !seen[r.Intensity] {
			seen[r.Intensity] = true
			order = append(order, r.Intensity)
		}
	}
	for _, iv := range ivOrder {
		col := byCell[iv]
		for i := 1; i < len(col); i++ {
			if col[i].Completion < col[i-1].Completion {
				return fmt.Errorf("experiments: interval %d: completion improves %g→%g as intensity rises %g→%g",
					iv, col[i-1].Completion, col[i].Completion, col[i-1].Intensity, col[i].Intensity)
			}
		}
	}
	var prevZero *RecoveryRow
	for i := range rows {
		r := &rows[i]
		if r.Intensity != 0 {
			continue
		}
		if prevZero != nil && r.Completion > prevZero.Completion {
			return fmt.Errorf("experiments: at intensity 0 a longer interval costs more (%d: %g vs %d: %g)",
				r.Interval, r.Completion, prevZero.Interval, prevZero.Completion)
		}
		prevZero = r
	}
	best := BestIntervals(rows)
	for i := 1; i < len(order); i++ {
		if best[order[i]] > best[order[i-1]] {
			return fmt.Errorf("experiments: best interval lengthens %d→%d as intensity rises %g→%g",
				best[order[i-1]], best[order[i]], order[i-1], order[i])
		}
	}
	return nil
}

// FormatRecovery renders the tradeoff as one block per intensity.
func FormatRecovery(s RecoverySweep, rows []RecoveryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery sweep %s: %dx%dx%d on %dx%d, V=%d, seed=%d\n",
		s.ID, s.Grid.I, s.Grid.J, s.Grid.K, s.Grid.PI, s.Grid.PJ, s.V, s.Seed)
	if len(rows) > 0 {
		fmt.Fprintf(&b, "fault-free anchor: %.6fs\n", rows[0].FaultFree)
	}
	best := BestIntervals(rows)
	var lastIntensity float64 = -1
	for _, r := range rows {
		if r.Intensity != lastIntensity {
			lastIntensity = r.Intensity
			fmt.Fprintf(&b, "intensity %.2f (faulty %.6fs, E[failures]=%.2f, Young≈%.1f tiles)\n",
				r.Intensity, r.Faulty, r.ExpFailures, r.YoungOpt)
			fmt.Fprintf(&b, "%14s %12s %12s %14s %10s\n",
				"interval(tiles)", "ck_ovh(s)", "rework(s)", "completion(s)", "inflation")
		}
		mark := " "
		if best[r.Intensity] == r.Interval {
			mark = "*"
		}
		fmt.Fprintf(&b, "%13d%s %12.6f %12.6f %14.6f %9.3f×\n",
			r.Interval, mark, r.CkOverhead, r.Rework, r.Completion, r.InflationX)
	}
	return b.String()
}

// RecoveryCSV writes the sweep in the repo's sweep CSV conventions:
// lower_snake headers, seconds at %.9g, ratios at %.6g.
func RecoveryCSV(w io.Writer, rows []RecoveryRow) error {
	if _, err := fmt.Fprintln(w, "intensity,interval_tiles,faultfree_s,faulty_s,ck_overhead_s,expected_failures,rework_s,completion_s,inflation_x,young_opt_tiles"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%.6g,%d,%.9g,%.9g,%.9g,%.6g,%.9g,%.9g,%.6g,%.6g\n",
			r.Intensity, r.Interval, r.FaultFree, r.Faulty, r.CkOverhead,
			r.ExpFailures, r.Rework, r.Completion, r.InflationX, r.YoungOpt); err != nil {
			return err
		}
	}
	return nil
}
