package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/space"
)

// CapabilityAblation measures how much of the overlapped schedule's win
// comes from each level of hardware support (Fig. 3a/b/c): no DMA (kernel
// copies on the CPU, only the wire overlaps), one DMA engine, full-duplex
// DMA. The blocking baseline is included for reference.
type CapabilityAblation struct {
	Grid    model.Grid3D
	V       int64
	Machine model.Machine
}

// CapabilityResult holds makespans per configuration.
type CapabilityResult struct {
	Blocking   float64
	NoDMA      float64
	DMA        float64
	FullDuplex float64
}

// Run executes the four configurations.
func (a CapabilityAblation) Run() (CapabilityResult, error) {
	var res CapabilityResult
	bl, err := sim.SimulateGrid(a.Grid, a.V, a.Machine, sim.Blocking, sim.CapNone)
	if err != nil {
		return res, err
	}
	res.Blocking = bl.Makespan
	for _, c := range []struct {
		cap sim.Capability
		dst *float64
	}{
		{sim.CapNone, &res.NoDMA},
		{sim.CapDMA, &res.DMA},
		{sim.CapFullDuplex, &res.FullDuplex},
	} {
		r, err := sim.SimulateGrid(a.Grid, a.V, a.Machine, sim.Overlapped, c.cap)
		if err != nil {
			return res, err
		}
		*c.dst = r.Makespan
	}
	return res, nil
}

// FormatCapability renders the ablation.
func FormatCapability(a CapabilityAblation, r CapabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overlap-capability ablation: %dx%dx%d, V=%d\n", a.Grid.I, a.Grid.J, a.Grid.K, a.V)
	rows := []struct {
		name string
		t    float64
	}{
		{"blocking (baseline)", r.Blocking},
		{"overlapped, no DMA", r.NoDMA},
		{"overlapped, one DMA engine", r.DMA},
		{"overlapped, full-duplex DMA", r.FullDuplex},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-28s %10.6f s  (%.0f%% of blocking)\n",
			row.name, row.t, 100*row.t/r.Blocking)
	}
	return b.String()
}

// MappingAblation compares the paper's largest-dimension processor mapping
// against mapping along each other dimension of the tiled space, for a 3-D
// stencil problem (core-planned, unit tile deps). With tile sides held
// fixed, the largest-dimension mapping minimizes the schedule length P (the
// UET-UCT optimality result) and uses the fewest processors — alternative
// mappings can only approach its makespan by spending many times more
// hardware.
type MappingAblation struct {
	SpaceSizes []int64
	TileSides  ilmath.Vec
	Machine    model.Machine
}

// MappingResult is one mapping choice's outcome.
type MappingResult struct {
	MapDim     int
	P          int64 // overlapped schedule length
	Procs      int64
	Overlap    float64 // simulated overlapped makespan
	NonOverlap float64 // simulated blocking makespan
}

// Run evaluates every mapping dimension.
func (a MappingAblation) Run() ([]MappingResult, error) {
	sp, err := space.Rect(a.SpaceSizes...)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(sp, deps.Unit(len(a.SpaceSizes)))
	if err != nil {
		return nil, err
	}
	out := make([]MappingResult, 0, sp.Dim())
	for d := 0; d < sp.Dim(); d++ {
		dim := d
		plan, err := p.Plan(a.Machine, core.PlanOptions{TileSides: a.TileSides.Clone(), MapDim: &dim})
		if err != nil {
			return nil, err
		}
		pred, err := plan.Predict()
		if err != nil {
			return nil, err
		}
		simr, err := plan.Simulate(sim.CapDMA)
		if err != nil {
			return nil, err
		}
		out = append(out, MappingResult{
			MapDim:     d,
			P:          pred.POverlap,
			Procs:      plan.Mapping.NumProcs(),
			Overlap:    simr.Overlap.Makespan,
			NonOverlap: simr.NonOverlap.Makespan,
		})
	}
	return out, nil
}

// FormatMapping renders the ablation, marking the largest-dimension choice.
func FormatMapping(a MappingAblation, rows []MappingResult) string {
	sp, _ := space.Rect(a.SpaceSizes...)
	largest := sp.LargestDim()
	var b strings.Builder
	fmt.Fprintf(&b, "Mapping-dimension ablation: space %v, tiles %v\n", a.SpaceSizes, a.TileSides)
	for _, r := range rows {
		mark := " "
		if r.MapDim == largest {
			mark = "*" // the paper's (UET-UCT optimal) choice
		}
		fmt.Fprintf(&b, " %smap dim %d: P=%4d procs=%4d overlap=%10.6fs blocking=%10.6fs\n",
			mark, r.MapDim, r.P, r.Procs, r.Overlap, r.NonOverlap)
	}
	return b.String()
}

// NetworkAblation compares the switched interconnect against a shared-bus
// medium (hub-era Ethernet): bus contention serializes every wire transfer
// in the cluster, eroding the overlapping schedule's advantage as processor
// count and traffic grow.
type NetworkAblation struct {
	Grid    model.Grid3D
	V       int64
	Machine model.Machine
}

// NetworkResult holds makespans per (schedule, network) cell.
type NetworkResult struct {
	BlockingSwitched  float64
	OverlapSwitched   float64
	BlockingSharedBus float64
	OverlapSharedBus  float64
}

// Run executes the four cells.
func (a NetworkAblation) Run() (NetworkResult, error) {
	var res NetworkResult
	cells := []struct {
		mode sim.Mode
		cap  sim.Capability
		net  sim.Network
		dst  *float64
	}{
		{sim.Blocking, sim.CapNone, sim.Switched, &res.BlockingSwitched},
		{sim.Overlapped, sim.CapDMA, sim.Switched, &res.OverlapSwitched},
		{sim.Blocking, sim.CapNone, sim.SharedBus, &res.BlockingSharedBus},
		{sim.Overlapped, sim.CapDMA, sim.SharedBus, &res.OverlapSharedBus},
	}
	for _, c := range cells {
		r, err := sim.SimulateGridNet(a.Grid, a.V, a.Machine, c.mode, c.cap, c.net)
		if err != nil {
			return res, err
		}
		*c.dst = r.Makespan
	}
	return res, nil
}

// FormatNetwork renders the ablation.
func FormatNetwork(a NetworkAblation, r NetworkResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interconnect ablation: %dx%dx%d, V=%d\n", a.Grid.I, a.Grid.J, a.Grid.K, a.V)
	fmt.Fprintf(&b, "  %-12s %14s %14s %12s\n", "network", "blocking", "overlapped", "improvement")
	fmt.Fprintf(&b, "  %-12s %13.6fs %13.6fs %11.1f%%\n", "switched",
		r.BlockingSwitched, r.OverlapSwitched, 100*(1-r.OverlapSwitched/r.BlockingSwitched))
	fmt.Fprintf(&b, "  %-12s %13.6fs %13.6fs %11.1f%%\n", "shared-bus",
		r.BlockingSharedBus, r.OverlapSharedBus, 100*(1-r.OverlapSharedBus/r.BlockingSharedBus))
	return b.String()
}

// StragglerAblation measures each schedule's sensitivity to one slow node:
// the pipelined overlap schedule routes every wavefront through every
// processor column, so a single straggler throttles the whole cluster in
// both schedules — but the blocking schedule, already paying serial
// communication, hides a mild straggler better.
type StragglerAblation struct {
	Grid      model.Grid3D
	V         int64
	Machine   model.Machine
	Straggler int64     // rank of the slow node
	Slowdowns []float64 // speed factors to test, e.g. 1.0, 0.75, 0.5
}

// StragglerRow is one slowdown level's outcome.
type StragglerRow struct {
	Speed            float64
	Blocking         float64
	Overlap          float64
	BlockingSlowdown float64 // vs the homogeneous makespan
	OverlapSlowdown  float64
}

// Run executes the ablation.
func (a StragglerAblation) Run() ([]StragglerRow, error) {
	run := func(mode sim.Mode, cap sim.Capability, speed float64) (float64, error) {
		cfg, err := sim.GridConfig(a.Grid, a.V, a.Machine, mode, cap)
		if err != nil {
			return 0, err
		}
		if speed != 1 {
			cfg.NodeSpeed = func(rank int64) float64 {
				if rank == a.Straggler {
					return speed
				}
				return 1
			}
		}
		r, err := sim.Simulate(cfg)
		if err != nil {
			return 0, err
		}
		return r.Makespan, nil
	}
	baseBl, err := run(sim.Blocking, sim.CapNone, 1)
	if err != nil {
		return nil, err
	}
	baseOv, err := run(sim.Overlapped, sim.CapDMA, 1)
	if err != nil {
		return nil, err
	}
	rows := make([]StragglerRow, 0, len(a.Slowdowns))
	for _, s := range a.Slowdowns {
		bl, err := run(sim.Blocking, sim.CapNone, s)
		if err != nil {
			return nil, err
		}
		ov, err := run(sim.Overlapped, sim.CapDMA, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StragglerRow{
			Speed:            s,
			Blocking:         bl,
			Overlap:          ov,
			BlockingSlowdown: bl / baseBl,
			OverlapSlowdown:  ov / baseOv,
		})
	}
	return rows, nil
}

// FormatStraggler renders the ablation.
func FormatStraggler(a StragglerAblation, rows []StragglerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Straggler ablation: %dx%dx%d, V=%d, slow node = rank %d\n",
		a.Grid.I, a.Grid.J, a.Grid.K, a.V, a.Straggler)
	fmt.Fprintf(&b, "  %8s %12s %12s %10s %10s\n", "speed", "blocking", "overlapped", "bl slow", "ov slow")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %8.2f %11.6fs %11.6fs %9.2fx %9.2fx\n",
			r.Speed, r.Blocking, r.Overlap, r.BlockingSlowdown, r.OverlapSlowdown)
	}
	return b.String()
}
