package experiments

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func testRecoverySweep() RecoverySweep {
	return RecoverySweep{
		ID:          "rec-test",
		Grid:        model.Grid3D{I: 8, J: 8, K: 512, PI: 2, PJ: 2},
		Machine:     model.PentiumCluster(),
		Cap:         sim.CapFullDuplex,
		V:           32,
		Seed:        7,
		Intervals:   []int64{1, 2, 4, 8},
		Intensities: []float64{0, 0.25, 0.5, 1.0},
	}
}

func TestRecoverySweepTradeoff(t *testing.T) {
	s := testRecoverySweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Intervals)*len(s.Intensities) {
		t.Fatalf("got %d rows, want %d", len(rows), len(s.Intervals)*len(s.Intensities))
	}
	if err := CheckRecoveryTradeoff(rows); err != nil {
		t.Fatalf("tradeoff shape: %v\n%s", err, FormatRecovery(s, rows))
	}
	// The anchor is shared and every completion inflates it.
	for _, r := range rows {
		if r.FaultFree != rows[0].FaultFree {
			t.Fatalf("fault-free anchor varies across rows: %g vs %g", r.FaultFree, rows[0].FaultFree)
		}
		if r.InflationX < 1 {
			t.Fatalf("inflation %g < 1 at intensity %g interval %d", r.InflationX, r.Intensity, r.Interval)
		}
	}
	// The Young/Daly signature proper: under the heaviest faults the best
	// interval must not be longer than under none, and at intensity 0 there
	// is no rework at all.
	best := BestIntervals(rows)
	if best[1.0] > best[0] {
		t.Errorf("best interval grew under faults: %d at x=1 vs %d at x=0", best[1.0], best[0])
	}
	for _, r := range rows {
		if r.Intensity == 0 && (r.Rework != 0 || r.ExpFailures != 0 || r.YoungOpt != 0) {
			t.Errorf("intensity 0 row carries failure terms: %+v", r)
		}
		if r.Intensity > 0 && r.YoungOpt <= 0 {
			t.Errorf("missing Young estimate at intensity %g", r.Intensity)
		}
	}
}

func TestRecoverySweepDeterministic(t *testing.T) {
	s := testRecoverySweep()
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("recovery sweep is not deterministic across runs")
	}
}

func TestRecoveryCSVConventions(t *testing.T) {
	s := testRecoverySweep()
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RecoveryCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty CSV")
	}
	header := sc.Text()
	if header != "intensity,interval_tiles,faultfree_s,faulty_s,ck_overhead_s,expected_failures,rework_s,completion_s,inflation_x,young_opt_tiles" {
		t.Fatalf("header drifted: %s", header)
	}
	for _, col := range strings.Split(header, ",") {
		if col != strings.ToLower(col) || strings.ContainsAny(col, " -") {
			t.Errorf("header column %q is not lower_snake", col)
		}
	}
	n := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != 10 {
			t.Fatalf("row %d has %d fields: %s", n, len(fields), sc.Text())
		}
		n++
	}
	if n != len(rows) {
		t.Fatalf("CSV has %d data rows, want %d", n, len(rows))
	}
}

func TestRecoverySweepValidate(t *testing.T) {
	bad := testRecoverySweep()
	bad.Intervals = []int64{4, 2}
	if _, err := bad.Run(); err == nil {
		t.Error("descending intervals accepted")
	}
	bad = testRecoverySweep()
	bad.Intensities = []float64{0.5, 0.25}
	if _, err := bad.Run(); err == nil {
		t.Error("descending intensities accepted")
	}
	bad = testRecoverySweep()
	bad.V = 0
	if _, err := bad.Run(); err == nil {
		t.Error("zero tile height accepted")
	}
}
