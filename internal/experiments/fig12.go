package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
	"repro/internal/sim"
)

// Fig12Row reproduces one column of the paper's Fig. 12 summary table.
type Fig12Row struct {
	Space          string
	VOpt           int64   // simulated-optimal tile height (paper: V_optimal)
	GOpt           int64   // tile volume at the optimum (paper: g_optimal)
	TOptOverlap    float64 // simulated optimal overlapped time (paper: experimental)
	TFillMPIBuf    float64 // per-message MPI buffer fill at the optimum's packet size
	P              int64   // exact overlapped schedule length at the optimum
	TOverlapTheory float64 // eq. 4/5 prediction at the optimum
	DiffPct        float64 // |theory − sim| / sim
	TOptBlocking   float64 // simulated optimal blocking time
	VOptBlocking   int64
	ImprovementPct float64 // 1 − overlap/blocking at the respective optima
}

// PaperFig12 returns the values printed in the paper's Fig. 12, for
// side-by-side comparison in EXPERIMENTS.md and the CLI.
func PaperFig12() []Fig12Row {
	return []Fig12Row{
		{Space: "16x16x16384", VOpt: 444, GOpt: 7104, TOptOverlap: 0.233923,
			TFillMPIBuf: 0.627e-3, P: 53, TOverlapTheory: 0.24, DiffPct: 2.5,
			TOptBlocking: 0.376637, ImprovementPct: 38},
		{Space: "16x16x32768", VOpt: 538, GOpt: 8608, TOptOverlap: 0.467929,
			TFillMPIBuf: 0.745e-3, P: 76, TOverlapTheory: 0.507, DiffPct: 7,
			TOptBlocking: 0.694516, ImprovementPct: 33},
		{Space: "32x32x4096", VOpt: 164, GOpt: 10496, TOptOverlap: 0.219059,
			TFillMPIBuf: 0.37e-3, P: 41, TOverlapTheory: 0.25, DiffPct: 12,
			TOptBlocking: 0.324069, ImprovementPct: 32},
	}
}

// Fig12 regenerates the summary table on the simulated cluster: for each of
// the three spaces it finds the simulated optima of both schedules, then
// evaluates the analytic model at the overlapped optimum (the paper's
// theoretical column).
func Fig12() ([]Fig12Row, error) {
	return Fig12For([]Sweep{Fig9(), Fig10(), Fig11()})
}

// Fig12For runs the Fig. 12 pipeline over arbitrary sweeps (scaled-down
// variants in tests).
func Fig12For(sweeps []Sweep) ([]Fig12Row, error) {
	rows := make([]Fig12Row, 0, len(sweeps))
	for _, s := range sweeps {
		if s.Cache == nil {
			// Share one memo between the two optimum searches and within
			// each search's ladder+refine passes.
			s.Cache = sim.NewCache()
		}
		vOv, tOv, err := s.OptimumRefined(sim.Overlapped)
		if err != nil {
			return nil, err
		}
		vBl, tBl, err := s.OptimumRefined(sim.Blocking)
		if err != nil {
			return nil, err
		}
		theory := s.Grid.PredictOverlap(vOv, s.Machine)
		faceBytes := s.Grid.FaceBytesI(vOv, s.Machine.BytesPerElem)
		rows = append(rows, Fig12Row{
			Space:          fmt.Sprintf("%dx%dx%d", s.Grid.I, s.Grid.J, s.Grid.K),
			VOpt:           vOv,
			GOpt:           s.Grid.TileVolume(vOv),
			TOptOverlap:    tOv,
			TFillMPIBuf:    s.Machine.FillMPI(faceBytes),
			P:              s.Grid.POverlap(vOv),
			TOverlapTheory: theory,
			DiffPct:        100 * math.Abs(theory-tOv) / tOv,
			TOptBlocking:   tBl,
			VOptBlocking:   vBl,
			ImprovementPct: 100 * (1 - tOv/tBl),
		})
	}
	return rows, nil
}

// FormatFig12 renders rows side by side with the paper's values.
func FormatFig12(rows []Fig12Row) string {
	paper := PaperFig12()
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %18s %18s %18s\n", "", "i", "ii", "iii")
	line := func(label string, f func(r Fig12Row) string) {
		fmt.Fprintf(&b, "%-14s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, " %18s", f(r))
		}
		b.WriteByte('\n')
	}
	idx := func(r Fig12Row) int {
		for i, p := range paper {
			if p.Space == r.Space {
				return i
			}
		}
		return -1
	}
	line("space", func(r Fig12Row) string { return r.Space })
	line("V_opt", func(r Fig12Row) string {
		return fmt.Sprintf("%d (paper %d)", r.VOpt, paper[idx(r)].VOpt)
	})
	line("g_opt", func(r Fig12Row) string { return fmt.Sprintf("%d", r.GOpt) })
	line("t_opt overlap", func(r Fig12Row) string {
		return fmt.Sprintf("%.4fs (p %.3f)", r.TOptOverlap, paper[idx(r)].TOptOverlap)
	})
	line("T_fill_MPI", func(r Fig12Row) string { return fmt.Sprintf("%.3fms", r.TFillMPIBuf*1e3) })
	line("P(g)", func(r Fig12Row) string { return fmt.Sprintf("%d (paper %d)", r.P, paper[idx(r)].P) })
	line("t_opt theory", func(r Fig12Row) string {
		return fmt.Sprintf("%.4fs (p %.3f)", r.TOverlapTheory, paper[idx(r)].TOverlapTheory)
	})
	line("diff th/exp", func(r Fig12Row) string {
		return fmt.Sprintf("%.1f%% (p %.1f%%)", r.DiffPct, paper[idx(r)].DiffPct)
	})
	line("t_opt blocking", func(r Fig12Row) string {
		return fmt.Sprintf("%.4fs (p %.3f)", r.TOptBlocking, paper[idx(r)].TOptBlocking)
	})
	line("improvement", func(r Fig12Row) string {
		return fmt.Sprintf("%.0f%% (paper %.0f%%)", r.ImprovementPct, paper[idx(r)].ImprovementPct)
	})
	return b.String()
}

// Examples renders the worked Examples 1 and 3 of the paper from the model
// package, with the paper's reference values.
func Examples() (string, error) {
	e1, err := model.Example1()
	if err != nil {
		return "", err
	}
	e3, err := model.Example3()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Example 1 (non-overlapping, Section 3)\n")
	fmt.Fprintf(&b, "  g = %d, V_comm = %d, P = %d, Π = %v\n", e1.G, e1.VComm, e1.P, e1.SchedulePi)
	fmt.Fprintf(&b, "  T = %.0f·t_c = %.6f s   (paper: 400036·t_c = 0.4 s)\n", e1.TotalInTc, e1.Total)
	fmt.Fprintf(&b, "Example 3 (overlapping, Section 4)\n")
	fmt.Fprintf(&b, "  g = %d, V_comm = %d, P = %d, Π = %v\n", e3.G, e3.VComm, e3.P, e3.SchedulePi)
	fmt.Fprintf(&b, "  T = %.0f·t_c = %.6f s   (paper: ≈0.24 s)\n", e3.TotalInTc, e3.Total)
	fmt.Fprintf(&b, "Improvement: %.1f%%\n", 100*(1-e3.Total/e1.Total))

	// Cross-check on the simulated 100-strip cluster deployment (the
	// message pattern of the real 2-D executor: s1+1 values per tile).
	m := model.Example1Machine()
	g2 := sim.Example1Grid2D()
	bl, err := g2.Simulate(m, sim.Blocking, sim.CapNone)
	if err != nil {
		return "", err
	}
	ov, err := g2.Simulate(m, sim.Overlapped, sim.CapDMA)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Simulated on the 100-strip cluster deployment:\n")
	fmt.Fprintf(&b, "  blocking %.6f s, overlapped %.6f s, improvement %.1f%%\n",
		bl.Makespan, ov.Makespan, 100*(1-ov.Makespan/bl.Makespan))
	return b.String(), nil
}
