package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ScaleSweep is the rank-scaling experiment: the paper's 16-node comparison
// of the overlapped and blocking schedules, repeated while the simulated
// cluster grows to thousands of ranks behind a hierarchical interconnect
// (DESIGN.md §12). Scaling is weak — the per-rank tile footprint stays
// fixed while the processor grid grows — so a flat non-blocking machine
// would keep the makespan constant and every change in the curve is the
// topology's doing (uplink hops, contention at the oversubscribed tiers).
type ScaleSweep struct {
	ID     string
	Title  string
	Points []ScalePoint
	// TileI/TileJ are the per-rank tile footprint in the i and j
	// dimensions: point {PI, PJ} simulates a TileI·PI × TileJ·PJ × K
	// space on a PI×PJ processor grid.
	TileI, TileJ int64
	// K fixes the k extent of every point when nonzero. When zero, each
	// point gets StepsFactor·(PI+PJ) tile heights of k — the wavefront
	// takes PI+PJ−2 tile times to fill the processor grid, so scaling the
	// depth with the grid keeps every point in the steady-state regime
	// the paper's comparison is about (a fixed shallow K at 10000 ranks
	// would measure pipeline fill, where neither schedule overlaps
	// anything).
	K int64
	// StepsFactor is the k-tile count per unit of wavefront depth under
	// automatic K (zero means 2).
	StepsFactor int64
	V           int64
	Machine     model.Machine
	Cap         sim.Capability
	// Interconnect is the switch hierarchy every point is simulated under.
	// The fabric sizes itself to each point's rank count, so one spec
	// serves the whole sweep.
	Interconnect topo.Spec
	// Cache optionally memoizes points across runs (see Sweep.Cache).
	Cache *sim.Cache
}

// ScalePoint is one processor-grid size of the sweep (PI·PJ ranks).
type ScalePoint struct {
	PI, PJ int64
}

// Ranks returns the point's world size.
func (p ScalePoint) Ranks() int64 { return p.PI * p.PJ }

// ScaleRow is one completed point: both schedules' makespans plus the
// overlap and link accounting of the overlapped run.
type ScaleRow struct {
	Ranks       int64
	Grid        model.Grid3D
	OverlapSim  float64
	BlockingSim float64
	// Mean CPU utilization per schedule.
	OverlapCPUUtil  float64
	BlockingCPUUtil float64
	// OverlapEff is the overlapped schedule's overlap efficiency
	// (hidden-comm / total-comm, see obs.Report).
	OverlapEff float64
	// LinkBusy and LinkQueueWait sum the fabric-link busy and queue-wait
	// time over every hierarchy level of the overlapped run — the direct
	// measure of uplink contention at scale.
	LinkBusy      float64
	LinkQueueWait float64
}

// ImprovementPct is the overlapped schedule's gain over blocking at this
// scale, in percent.
func (r ScaleRow) ImprovementPct() float64 {
	if r.BlockingSim == 0 {
		return 0
	}
	return 100 * (1 - r.OverlapSim/r.BlockingSim)
}

// DefaultScaleSweep is the configuration EXPERIMENTS.md's scaling table is
// generated from: 1024, 4096 and 10000 ranks on a two-tier fat tree (25
// nodes per edge switch, 20 edge switches per aggregation switch, 4×/8×
// uplink bandwidth, 2 µs per hop, 2-way ECMP), weak-scaled from the paper's
// calibrated Pentium cluster with a 4×4 per-rank tile at V=64 and a k
// extent of 2·(PI+PJ) tile heights per point.
func DefaultScaleSweep() ScaleSweep {
	return ScaleSweep{
		ID:     "scale",
		Title:  "Weak scaling on a two-tier fat tree (4x4 tile per rank, V=64, K=2(PI+PJ)V)",
		Points: []ScalePoint{{32, 32}, {64, 64}, {100, 100}},
		TileI:  4, TileJ: 4,
		V:            64,
		Machine:      model.PentiumCluster(),
		Cap:          sim.CapDMA,
		Interconnect: topo.FatTree(25, 20, 4, 8, 2e-6, 2),
	}
}

// cache returns the sweep's shared cache, or a fresh private one.
func (s ScaleSweep) cache() *sim.Cache {
	if s.Cache != nil {
		return s.Cache
	}
	return sim.NewCache()
}

// GridAt expands one point into its weak-scaled iteration space (see the K
// field for the depth rule).
func (s ScaleSweep) GridAt(p ScalePoint) model.Grid3D {
	k := s.K
	if k == 0 {
		f := s.StepsFactor
		if f <= 0 {
			f = 2
		}
		k = f * (p.PI + p.PJ) * s.V
	}
	return model.Grid3D{
		I: s.TileI * p.PI, J: s.TileJ * p.PJ, K: k,
		PI: p.PI, PJ: p.PJ,
	}
}

// modeCap mirrors Sweep.ModeCap: blocking always runs without DMA.
func (s ScaleSweep) modeCap(mode sim.Mode) sim.Capability {
	if mode == sim.Blocking {
		return sim.CapNone
	}
	return s.Cap
}

// Run evaluates every point under both schedules. The (point, mode) pairs
// fan out over a bounded worker pool exactly like Sweep.Run; rows come back
// in input order regardless of worker scheduling.
func (s ScaleSweep) Run() ([]ScaleRow, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run under a context (cancellation semantics as in Sweep.RunCtx).
func (s ScaleSweep) RunCtx(ctx context.Context) ([]ScaleRow, error) {
	type task struct {
		p    ScalePoint
		mode sim.Mode
	}
	tasks := make([]task, 0, 2*len(s.Points))
	for _, p := range s.Points {
		tasks = append(tasks, task{p, sim.Overlapped}, task{p, sim.Blocking})
	}
	res := make([]sim.Result, len(tasks))
	c := s.cache()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	feed := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				t := tasks[i]
				r, err := c.SimulateGridCtx(cctx, s.GridAt(t.p), s.V, s.Machine, t.mode, s.modeCap(t.mode),
					sim.GridOpts{Interconnect: s.Interconnect, Metrics: true})
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("%s: %d ranks %s: %w", s.ID, t.p.Ranks(), t.mode, err)
						cancel()
					})
					return
				}
				res[i] = r
			}
		}()
	}
send:
	for i := range tasks {
		select {
		case feed <- i:
		case <-cctx.Done():
			break send
		}
	}
	close(feed)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	rows := make([]ScaleRow, 0, len(s.Points))
	for i, p := range s.Points {
		rows = append(rows, s.rowAt(p, res[2*i], res[2*i+1]))
	}
	return rows, nil
}

// rowAt assembles one ScaleRow from the two schedules at one point.
func (s ScaleSweep) rowAt(p ScalePoint, ov, bl sim.Result) ScaleRow {
	r := ScaleRow{
		Ranks:           p.Ranks(),
		Grid:            s.GridAt(p),
		OverlapSim:      ov.Makespan,
		BlockingSim:     bl.Makespan,
		OverlapCPUUtil:  ov.CPUUtilization,
		BlockingCPUUtil: bl.CPUUtilization,
	}
	if ov.Obs != nil {
		r.OverlapEff = ov.Obs.OverlapEfficiency
		for _, ll := range ov.Obs.LinkLevels {
			r.LinkBusy += ll.Busy
			r.LinkQueueWait += ll.QueueWait
		}
	}
	return r
}

// FormatScale renders the sweep as an aligned text table.
func FormatScale(s ScaleSweep, rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, interconnect %v)\n", s.Title, s.ID, s.Interconnect)
	fmt.Fprintf(&b, "%7s %16s %14s %14s %8s %7s %8s %12s %12s\n",
		"ranks", "space", "overlap(sim)", "blocking(sim)", "improve", "ovCPU%", "ovEff%", "link-busy-s", "link-wait-s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %16s %14.6f %14.6f %7.1f%% %6.0f%% %7.1f%% %12.4f %12.4f\n",
			r.Ranks, fmt.Sprintf("%dx%dx%d", r.Grid.I, r.Grid.J, r.Grid.K),
			r.OverlapSim, r.BlockingSim, r.ImprovementPct(),
			100*r.OverlapCPUUtil, 100*r.OverlapEff, r.LinkBusy, r.LinkQueueWait)
	}
	return b.String()
}

// ScaleCSV writes the rows as comma-separated values with a header.
func ScaleCSV(w io.Writer, rows []ScaleRow) error {
	if _, err := fmt.Fprintln(w, "ranks,i,j,k,overlap_sim_s,blocking_sim_s,improvement_pct,overlap_cpu_util,overlap_eff,link_busy_s,link_queue_wait_s"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.9g,%.9g,%.6g,%.6g,%.6g,%.9g,%.9g\n",
			r.Ranks, r.Grid.I, r.Grid.J, r.Grid.K, r.OverlapSim, r.BlockingSim,
			r.ImprovementPct(), r.OverlapCPUUtil, r.OverlapEff, r.LinkBusy, r.LinkQueueWait); err != nil {
			return err
		}
	}
	return nil
}

// CheckScale evaluates the sweep's qualitative claim: the overlapped
// schedule keeps a positive edge over blocking at every rank count.
func CheckScale(rows []ScaleRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("scale: no rows")
	}
	for _, r := range rows {
		if r.OverlapSim >= r.BlockingSim {
			return fmt.Errorf("scale: overlap lost its edge at %d ranks (%.6fs vs %.6fs)",
				r.Ranks, r.OverlapSim, r.BlockingSim)
		}
	}
	return nil
}
