package experiments

import (
	"context"
	"sort"

	"repro/internal/estimate"
	"repro/internal/sim"
)

// This file is the sweep-level optimum search. Since the tiered-estimator
// rework it comes in three flavors:
//
//   - Optimum / OptimumDetail: the tiered search (internal/estimate) at
//     ladder granularity over OptimumHeights. The analytic closed form
//     seeds a bracket, a few targeted DES probes localize the minimum, and
//     a certification step either vouches for the answer or falls back to
//     OptimumExact — so the result is always the exact ladder argmin,
//     usually at a fraction of the DES evaluations.
//   - OptimumExact: the exhaustive reference — every OptimumHeights rung
//     simulated on the parallel worker pool, earliest minimum wins.
//   - OptimumRefined: Optimum plus the multiplicative refinement pass
//     around the winning rung, the search the CLIs and figures print
//     (finer-than-ladder granularity, same answers as before the rework).
//
// Every flavor has a Ctx variant that aborts at DES-evaluation granularity
// when the context is cancelled or its deadline expires — the contract the
// planning service relies on to shed abandoned queries. The context-free
// forms run under context.Background().

// OptimumHeights returns the candidate ladder the optimum search ranges
// over: the sweep's own Heights extended with the full geometric ladder
// 1..K, deduped and sorted. The figures' sweeps span Ladder(4, K/4), so
// the extension only adds extreme rungs that never win; extending the
// range keeps the optimum search meaningful for sweeps defined on a
// narrow window (e.g. the autotune example).
func (s Sweep) OptimumHeights() []int64 {
	merged := append(append([]int64(nil), s.Heights...), Ladder(1, s.Grid.K)...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	w := 0
	for i, v := range merged {
		if i == 0 || v != merged[w-1] {
			merged[w] = v
			w++
		}
	}
	return merged[:w]
}

// Optimum finds the simulated-optimal tile height among OptimumHeights for
// the given mode via the tiered search: identical to OptimumExact's
// answer, but typically a handful of DES probes instead of a full ladder
// sweep. Set Sweep.Exact to force the exhaustive tier.
func (s Sweep) Optimum(mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	return s.OptimumCtx(context.Background(), mode)
}

// OptimumCtx is Optimum under a context.
func (s Sweep) OptimumCtx(ctx context.Context, mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	out, err := s.OptimumDetailCtx(ctx, mode)
	if err != nil {
		return 0, 0, err
	}
	return out.V, out.T, nil
}

// OptimumDetail is Optimum with the full estimate.Outcome: which tier
// answered, how many probes the tiered stage issued, and why the exact
// tier ran if it did.
func (s Sweep) OptimumDetail(mode sim.Mode) (estimate.Outcome, error) {
	return s.OptimumDetailCtx(context.Background(), mode)
}

// OptimumDetailCtx is OptimumDetail under a context: a cancelled or expired
// ctx aborts the search between DES probes with ctx.Err().
func (s Sweep) OptimumDetailCtx(ctx context.Context, mode sim.Mode) (estimate.Outcome, error) {
	c := s.cache()
	heights := s.OptimumHeights()
	if s.Exact {
		v, t, err := s.optimumExact(ctx, c, mode, heights)
		if err != nil {
			return estimate.Outcome{}, err
		}
		return estimate.Outcome{V: v, T: t, Tier: estimate.TierExact, FallbackReason: "forced"}, nil
	}
	cfg := estimate.ForGrid(ctx, s.Grid, s.Machine, mode, s.ModeCap(mode), c, heights)
	cfg.Exact = func() (int64, float64, error) {
		return s.optimumExact(ctx, c, mode, heights)
	}
	return estimate.Optimum(ctx, cfg)
}

// OptimumExact is the exhaustive reference search: every OptimumHeights
// rung simulated (on the parallel worker pool), earliest height of minimal
// makespan wins — the same scan order and tie-break as RunSequential plus
// an argmin.
func (s Sweep) OptimumExact(mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	return s.OptimumExactCtx(context.Background(), mode)
}

// OptimumExactCtx is OptimumExact under a context.
func (s Sweep) OptimumExactCtx(ctx context.Context, mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	return s.optimumExact(ctx, s.cache(), mode, s.OptimumHeights())
}

func (s Sweep) optimumExact(ctx context.Context, c *sim.Cache, mode sim.Mode, heights []int64) (int64, float64, error) {
	rs, err := s.evalHeights(ctx, c, mode, heights)
	if err != nil {
		return 0, 0, err
	}
	best, bestT := int64(-1), 0.0
	considerHeights(heights, rs, &best, &bestT)
	return best, bestT, nil
}

// OptimumRefined sharpens Optimum below ladder granularity: the
// multiplicative Refine window around the winning rung is evaluated and
// the overall earliest minimum returned. This is the search the figures,
// traces and examples print; on the paper's grids its answers are
// unchanged from the pre-tiered implementation (the tiered ladder stage
// picks the same rung the exhaustive ladder pass did). Refinement rungs
// that duplicate ladder rungs are skipped — they could never win the
// strict-improvement comparison.
func (s Sweep) OptimumRefined(mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	return s.OptimumRefinedCtx(context.Background(), mode)
}

// OptimumRefinedCtx is OptimumRefined under a context.
func (s Sweep) OptimumRefinedCtx(ctx context.Context, mode sim.Mode) (vOpt int64, tOpt float64, err error) {
	if s.Cache == nil {
		s.Cache = sim.NewCache() // share the ladder stage's probes with the refine pass
	}
	c := s.Cache
	out, err := s.OptimumDetailCtx(ctx, mode)
	if err != nil {
		return 0, 0, err
	}
	best, bestT := out.V, out.T
	seen := make(map[int64]bool)
	for _, v := range s.OptimumHeights() {
		seen[v] = true
	}
	var refined []int64
	for _, v := range Refine(best, 1, s.Grid.K, 13) {
		if !seen[v] {
			refined = append(refined, v)
		}
	}
	rs, err := s.evalHeights(ctx, c, mode, refined)
	if err != nil {
		return 0, 0, err
	}
	considerHeights(refined, rs, &best, &bestT)
	return best, bestT, nil
}

// evalHeights simulates one mode at each height on the worker pool.
func (s Sweep) evalHeights(ctx context.Context, c *sim.Cache, mode sim.Mode, heights []int64) ([]sim.Result, error) {
	pts := make([]simPoint, len(heights))
	for i, v := range heights {
		pts[i] = simPoint{v, mode}
	}
	return s.evalPoints(ctx, c, pts)
}

// considerHeights scans heights in input order with a strict-improvement
// update, matching the sequential search exactly: the earliest height of
// minimal makespan wins.
func considerHeights(heights []int64, rs []sim.Result, best *int64, bestT *float64) {
	for i, v := range heights {
		if t := rs[i].Makespan; *best < 0 || t < *bestT {
			*best, *bestT = v, t
		}
	}
}
