//go:build race

package experiments

// raceDetectorEnabled mirrors the race build tag so tests whose workload
// is prohibitive under the detector (full-scale figure sweeps) can skip
// themselves; the scaled-down tests keep the same code paths covered.
const raceDetectorEnabled = true
