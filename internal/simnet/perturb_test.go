package simnet

import "testing"

// buildChain registers a two-resource pipeline: a (on r1) -> b (on r2).
func buildChain(e *Engine) {
	r1 := e.NewResource("r1")
	r2 := e.NewResource("r2")
	a := e.NewActivity(r1, 2, "a")
	b := e.NewActivity(r2, 3, "b")
	e.AddDep(a, b)
}

func TestPerturbScalesDurations(t *testing.T) {
	e := NewEngine()
	buildChain(e)
	base, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != 5 {
		t.Fatalf("unperturbed makespan = %g, want 5", base.Makespan)
	}

	e.Reset()
	e.SetPerturb(func(r *Resource, d float64) float64 {
		if r.Name == "r1" {
			return 2 * d
		}
		return d
	})
	buildChain(e)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 7 { // 2*2 on r1, +3 on r2
		t.Errorf("perturbed makespan = %g, want 7", res.Makespan)
	}
}

func TestResetClearsPerturb(t *testing.T) {
	e := NewEngine()
	e.SetPerturb(func(r *Resource, d float64) float64 { return 100 * d })
	buildChain(e)
	if res, err := e.Run(); err != nil || res.Makespan != 500 {
		t.Fatalf("perturbed run: makespan %g err %v, want 500", res.Makespan, err)
	}
	e.Reset()
	buildChain(e)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 5 {
		t.Errorf("post-Reset makespan = %g, want 5 (hook must not survive Reset)", res.Makespan)
	}
}

func TestPerturbInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative perturbed duration did not panic")
		}
	}()
	e := NewEngine()
	e.SetPerturb(func(r *Resource, d float64) float64 { return -1 })
	r := e.NewResource("r")
	e.NewActivity(r, 1, "a")
}
