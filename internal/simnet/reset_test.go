package simnet

import "testing"

// buildPipeline registers a two-resource pipelined graph and returns the
// expected makespan: n stages of work 1 on cpu feeding work 2 on nic.
func buildPipeline(e *Engine, n int) float64 {
	cpu := e.NewResource("cpu")
	nic := e.NewResource("nic")
	var prev *Activity
	for i := 0; i < n; i++ {
		c := e.NewActivity(cpu, 1, "c")
		if prev != nil {
			e.AddDep(prev, c)
		}
		x := e.NewActivity(nic, 2, "x")
		e.AddDep(c, x)
		prev = c
	}
	// cpu chain takes n, the last transmit finishes 2 after the last
	// compute, and the nic is the bottleneck once it fills: 1 + 2n.
	return float64(1 + 2*n)
}

// TestEngineReset: a Reset engine reproduces a fresh engine's results
// exactly, across several reuse generations and changing graph sizes.
func TestEngineReset(t *testing.T) {
	reused := NewEngine()
	for gen, n := range []int{5, 17, 3, 64} {
		reused.Reset()
		want := buildPipeline(reused, n)
		got, err := reused.Run()
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		fresh := NewEngine()
		buildPipeline(fresh, n)
		ref, err := fresh.Run()
		if err != nil {
			t.Fatalf("gen %d fresh: %v", gen, err)
		}
		if got.Makespan != ref.Makespan || got.Makespan != want {
			t.Errorf("gen %d: makespan %g (fresh %g, want %g)", gen, got.Makespan, ref.Makespan, want)
		}
		if got.Utilization["nic"] != ref.Utilization["nic"] {
			t.Errorf("gen %d: utilization drifted across reuse", gen)
		}
	}
}

// TestResetAbandonsTrace: a trace handed out by Run survives the engine's
// next generation untouched.
func TestResetAbandonsTrace(t *testing.T) {
	e := NewEngine()
	e.KeepTrace(true)
	buildPipeline(e, 2)
	r1, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Trace) != 4 {
		t.Fatalf("trace has %d entries, want 4", len(r1.Trace))
	}
	snapshot := append([]TraceEntry(nil), r1.Trace...)
	e.Reset()
	e.KeepTrace(true)
	buildPipeline(e, 3)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if r1.Trace[i] != snapshot[i] {
			t.Fatalf("entry %d of the first run's trace was clobbered by reuse", i)
		}
	}
}

// TestKeepUtilizationOff: with utilization reporting off, Run leaves the
// map nil and BusyTime still carries the data.
func TestKeepUtilizationOff(t *testing.T) {
	e := NewEngine()
	e.KeepUtilization(false)
	cpu := e.NewResource("cpu")
	e.NewActivity(cpu, 3, "w")
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization != nil {
		t.Error("Utilization map built despite KeepUtilization(false)")
	}
	if cpu.BusyTime() != 3 {
		t.Errorf("BusyTime = %g, want 3", cpu.BusyTime())
	}
}
