// Package simnet is a deterministic discrete-event simulator for
// activity graphs over serially-shared resources.
//
// It substitutes for the paper's physical cluster: processors' CPUs, DMA
// engines and NIC links are Resources; the phases of every tile execution
// (MPI buffer fills, computation, kernel copies, wire transmission) are
// Activities with precedence edges. The engine computes the exact start and
// finish time of every activity under FIFO resource scheduling, giving the
// makespan of a schedule without running wall-clock experiments — and,
// unlike wall-clock runs, perfectly reproducibly.
//
// The model: an Activity occupies exactly one Resource for a fixed duration
// and may start only after all its predecessors have finished. A Resource
// executes one activity at a time, picking among ready activities the one
// that became ready first (ties broken by creation order).
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Resource is a serially-shared facility (a CPU, a DMA engine, a NIC port).
type Resource struct {
	ID   int
	Name string

	busy    bool
	freeAt  float64
	pending actHeap
	lastAct *Activity // most recently completed activity, for critical paths
	// busyTime accumulates total occupancy for utilization reporting.
	busyTime float64
}

// Activity is a unit of work bound to one resource.
type Activity struct {
	ID       int
	Label    string
	Res      *Resource
	Duration float64

	// Start and End are filled in by Run.
	Start, End float64

	npreds  int
	succs   []*Activity
	ready   float64 // max end time of completed predecessors
	started bool
	done    bool

	// Critical-path bookkeeping (see critpath.go).
	readyPred *Activity // the predecessor whose completion set `ready`
	critPred  *Activity
	critKind  CritKind
}

// Engine owns the resources and activities of one simulation.
type Engine struct {
	resources  []*Resource
	activities []*Activity
	trace      []TraceEntry
	keepTrace  bool
}

// TraceEntry records one executed activity for Gantt rendering.
type TraceEntry struct {
	Resource string
	Label    string
	Start    float64
	End      float64
}

// NewEngine returns an empty simulation.
func NewEngine() *Engine { return &Engine{} }

// KeepTrace enables recording of a full execution trace (off by default to
// keep large sweeps cheap).
func (e *Engine) KeepTrace(on bool) { e.keepTrace = on }

// NewResource registers a serially-shared resource.
func (e *Engine) NewResource(name string) *Resource {
	r := &Resource{ID: len(e.resources), Name: name}
	e.resources = append(e.resources, r)
	return r
}

// NewActivity registers an activity of the given duration on resource r.
// Durations must be non-negative; zero-duration activities are permitted
// (useful as synchronization points).
func (e *Engine) NewActivity(r *Resource, duration float64, label string) *Activity {
	if r == nil {
		panic("simnet: nil resource")
	}
	if duration < 0 || math.IsNaN(duration) {
		panic(fmt.Sprintf("simnet: invalid duration %g for %q", duration, label))
	}
	a := &Activity{ID: len(e.activities), Label: label, Res: r, Duration: duration}
	e.activities = append(e.activities, a)
	return a
}

// AddDep declares that 'before' must finish before 'after' may start.
func (e *Engine) AddDep(before, after *Activity) {
	if before == nil || after == nil {
		panic("simnet: nil activity in dependency")
	}
	before.succs = append(before.succs, after)
	after.npreds++
}

// completion is an entry in the event heap.
type completion struct {
	t   float64
	seq int
	act *Activity
}

type eventHeap []completion

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// actHeap orders ready activities by (ready time, ID).
type actHeap []*Activity

func (h actHeap) Len() int { return len(h) }
func (h actHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].ID < h[j].ID
}
func (h actHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *actHeap) Push(x any)   { *h = append(*h, x.(*Activity)) }
func (h *actHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Result summarizes a completed simulation.
type Result struct {
	Makespan float64
	// Utilization maps resource name to busy-time / makespan.
	Utilization map[string]float64
	Trace       []TraceEntry
}

// Run executes the simulation to completion and returns the makespan. It
// returns an error if not every activity could run, which indicates a
// dependency cycle (a deadlocked schedule).
func (e *Engine) Run() (Result, error) {
	var events eventHeap
	seq := 0
	now := 0.0

	startOn := func(r *Resource) {
		for !r.busy && r.pending.Len() > 0 {
			a := heap.Pop(&r.pending).(*Activity)
			start := a.ready
			a.critPred = a.readyPred
			a.critKind = CritDependency
			if a.readyPred == nil {
				a.critKind = CritStart
			}
			if r.freeAt > start {
				start = r.freeAt
				if r.lastAct != nil {
					a.critPred = r.lastAct
					a.critKind = CritResource
				}
			}
			if start < now {
				start = now
			}
			a.Start = start
			a.End = start + a.Duration
			a.started = true
			r.busy = true
			heap.Push(&events, completion{t: a.End, seq: seq, act: a})
			seq++
		}
	}

	// Seed: all activities with no predecessors are ready at t=0.
	for _, a := range e.activities {
		if a.npreds == 0 {
			a.ready = 0
			heap.Push(&a.Res.pending, a)
		}
	}
	for _, r := range e.resources {
		startOn(r)
	}

	completed := 0
	for events.Len() > 0 {
		ev := heap.Pop(&events).(completion)
		a := ev.act
		now = ev.t
		a.done = true
		completed++
		r := a.Res
		r.busy = false
		r.freeAt = a.End
		r.lastAct = a
		r.busyTime += a.Duration
		if e.keepTrace {
			e.trace = append(e.trace, TraceEntry{Resource: r.Name, Label: a.Label, Start: a.Start, End: a.End})
		}
		for _, s := range a.succs {
			s.npreds--
			if a.End > s.ready {
				s.ready = a.End
				s.readyPred = a
			}
			if s.npreds == 0 {
				heap.Push(&s.Res.pending, s)
			}
		}
		// The freed resource and any resources that gained ready work may
		// start something. Trying all successors' resources plus r covers
		// every resource whose pending set changed.
		startOn(r)
		for _, s := range a.succs {
			startOn(s.Res)
		}
	}

	if completed != len(e.activities) {
		return Result{}, fmt.Errorf("simnet: deadlock, only %d of %d activities completed (dependency cycle?)",
			completed, len(e.activities))
	}
	res := Result{Makespan: now, Utilization: make(map[string]float64, len(e.resources)), Trace: e.trace}
	for _, r := range e.resources {
		if now > 0 {
			res.Utilization[r.Name] = r.busyTime / now
		} else {
			res.Utilization[r.Name] = 0
		}
	}
	return res, nil
}

// NumActivities returns how many activities have been registered.
func (e *Engine) NumActivities() int { return len(e.activities) }

// NumResources returns how many resources have been registered.
func (e *Engine) NumResources() int { return len(e.resources) }
