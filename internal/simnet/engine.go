package simnet

import (
	"fmt"
	"math"
)

// Resource is a serially-shared facility (a CPU, a DMA engine, a NIC port).
type Resource struct {
	ID   int
	Name string

	busy    bool
	freeAt  float64
	pending actHeap
	lastAct *Activity // most recently completed activity, for critical paths
	// busyTime accumulates total occupancy for utilization reporting.
	busyTime float64
}

// BusyTime returns the total time the resource spent executing activities
// in the last Run. Dividing by the makespan gives its utilization without
// materializing the Result.Utilization map.
func (r *Resource) BusyTime() float64 { return r.busyTime }

// Activity is a unit of work bound to one resource.
type Activity struct {
	ID       int
	Label    string
	Res      *Resource
	Duration float64

	// Start and End are filled in by Run.
	Start, End float64

	npreds int
	// Successors live in the engine's CSR array: succList[succOff:succOff+succN].
	succOff, succN int32
	ready          float64 // max end time of completed predecessors
	started        bool
	done           bool

	// Critical-path bookkeeping (see critpath.go).
	readyPred *Activity // the predecessor whose completion set `ready`
	critPred  *Activity
	critKind  CritKind
}

// edge is one precedence constraint, buffered until Run builds the CSR
// successor lists.
type edge struct {
	before, after *Activity
}

// Slab sizes: large enough that slab bookkeeping is negligible, small
// enough that a tiny simulation doesn't waste memory.
const (
	actSlabSize = 4096
	resSlabSize = 64
)

// Engine owns the resources and activities of one simulation.
type Engine struct {
	resources  []*Resource
	activities []*Activity

	// Chunked arenas backing the pointers above. Chunks are never
	// reallocated, so &slab[i] stays valid while the graph grows; Reset
	// rewinds the counters and reuses the same chunks.
	actSlabs [][]Activity
	resSlabs [][]Resource

	edges    []edge
	succList []*Activity
	events   eventHeap

	trace     []TraceEntry
	keepTrace bool
	skipUtil  bool
	perturb   PerturbFunc

	// intervals is the string-free activity log behind KeepIntervals. Unlike
	// trace it is reused across Resets: callers consume it synchronously
	// (Intervals is invalidated by the next Reset), so the backing array can
	// be recycled instead of abandoned.
	intervals     []Interval
	keepIntervals bool
}

// PerturbFunc rescales an activity's nominal duration at registration time
// — the engine's fault-injection hook. It receives the resource the
// activity is bound to and the nominal duration and returns the perturbed
// duration, which must remain non-negative and finite. Builders install one
// via SetPerturb to model stragglers, slow links or jittered transfers
// without changing the graph structure.
type PerturbFunc func(r *Resource, duration float64) float64

// TraceEntry records one executed activity for Gantt rendering.
type TraceEntry struct {
	Resource string
	Label    string
	Start    float64
	End      float64
	// Ready is when the activity's last dataflow predecessor finished (0 for
	// chain heads): Start − Ready is how long it queued for its resource.
	Ready float64
}

// Interval records one executed activity for metrics accounting: which
// resource ran it and when. Unlike TraceEntry it carries no strings, so the
// log stays cheap enough for untraced sweep simulations (see KeepIntervals).
type Interval struct {
	Res *Resource
	// Ready is when the activity's last dataflow predecessor finished;
	// Start − Ready is the time spent queued behind the resource.
	Ready      float64
	Start, End float64
}

// NewEngine returns an empty simulation.
func NewEngine() *Engine { return &Engine{} }

// Reset rewinds the engine so it can build and run a fresh simulation while
// reusing every slab, heap and edge buffer of the previous one. Any Trace
// slice handed out by the previous Run is abandoned to its caller (never
// overwritten). Resource and Activity pointers from before the Reset must
// not be used afterwards.
func (e *Engine) Reset() {
	e.resources = e.resources[:0]
	e.activities = e.activities[:0]
	e.edges = e.edges[:0]
	e.succList = e.succList[:0]
	e.events = e.events[:0]
	if len(e.trace) > 0 {
		e.trace = nil // the previous caller owns it now
	}
	e.intervals = e.intervals[:0]
	e.keepTrace = false
	e.keepIntervals = false
	e.skipUtil = false
	e.perturb = nil
}

// SetPerturb installs (or, with nil, removes) the duration perturbation
// hook applied to every subsequently registered activity. Reset removes the
// hook, so a reused engine starts each simulation unperturbed.
func (e *Engine) SetPerturb(f PerturbFunc) { e.perturb = f }

// KeepTrace enables recording of a full execution trace (off by default to
// keep large sweeps cheap).
func (e *Engine) KeepTrace(on bool) { e.keepTrace = on }

// KeepIntervals enables recording of the string-free per-activity interval
// log (off by default). It is the cheap sibling of KeepTrace for metrics
// accounting: no labels or resource names are materialized, and the backing
// array is recycled across Resets. Read the log with Intervals after Run.
func (e *Engine) KeepIntervals(on bool) { e.keepIntervals = on }

// Intervals returns the interval log of the last Run (nil unless
// KeepIntervals was on). The returned slice is owned by the engine and is
// invalidated by the next Reset: callers must finish aggregating before
// reusing the engine.
func (e *Engine) Intervals() []Interval { return e.intervals }

// KeepUtilization controls whether Run materializes the Result.Utilization
// map (on by default). Sweep-style callers that read Resource.BusyTime
// directly turn it off to avoid per-run map and string churn.
func (e *Engine) KeepUtilization(on bool) { e.skipUtil = !on }

// Reserve pre-sizes the engine's bookkeeping for a graph of about the given
// number of activities and dependence edges, so a builder that knows its
// tile and message counts up front avoids regrowth entirely.
func (e *Engine) Reserve(activities, deps int) {
	if n := len(e.activities) + activities; cap(e.activities) < n {
		grown := make([]*Activity, len(e.activities), n)
		copy(grown, e.activities)
		e.activities = grown
	}
	if n := len(e.edges) + deps; cap(e.edges) < n {
		grown := make([]edge, len(e.edges), n)
		copy(grown, e.edges)
		e.edges = grown
	}
}

// NewResource registers a serially-shared resource.
func (e *Engine) NewResource(name string) *Resource {
	n := len(e.resources)
	chunk, idx := n/resSlabSize, n%resSlabSize
	if chunk == len(e.resSlabs) {
		e.resSlabs = append(e.resSlabs, make([]Resource, resSlabSize))
	}
	r := &e.resSlabs[chunk][idx]
	pending := r.pending[:0] // keep the ready-heap's backing array across Resets
	*r = Resource{ID: n, Name: name, pending: pending}
	e.resources = append(e.resources, r)
	return r
}

// NewActivity registers an activity of the given duration on resource r.
// Durations must be non-negative; zero-duration activities are permitted
// (useful as synchronization points).
func (e *Engine) NewActivity(r *Resource, duration float64, label string) *Activity {
	if r == nil {
		panic("simnet: nil resource")
	}
	if duration < 0 || math.IsNaN(duration) {
		panic(fmt.Sprintf("simnet: invalid duration %g for %q", duration, label))
	}
	if e.perturb != nil {
		duration = e.perturb(r, duration)
		if duration < 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
			panic(fmt.Sprintf("simnet: perturbed duration %g for %q is invalid", duration, label))
		}
	}
	n := len(e.activities)
	chunk, idx := n/actSlabSize, n%actSlabSize
	if chunk == len(e.actSlabs) {
		e.actSlabs = append(e.actSlabs, make([]Activity, actSlabSize))
	}
	a := &e.actSlabs[chunk][idx]
	*a = Activity{ID: n, Label: label, Res: r, Duration: duration}
	e.activities = append(e.activities, a)
	return a
}

// AddDep declares that 'before' must finish before 'after' may start.
func (e *Engine) AddDep(before, after *Activity) {
	if before == nil || after == nil {
		panic("simnet: nil activity in dependency")
	}
	e.edges = append(e.edges, edge{before, after})
	after.npreds++
}

// buildSuccs compacts the edge list into the CSR successor array: one pass
// counts out-degrees, a prefix sum assigns offsets, a second pass fills.
func (e *Engine) buildSuccs() {
	for i := range e.edges {
		e.edges[i].before.succN++
	}
	var off int32
	for _, a := range e.activities {
		a.succOff = off
		off += a.succN
		a.succN = 0
	}
	if cap(e.succList) < len(e.edges) {
		e.succList = make([]*Activity, len(e.edges))
	} else {
		e.succList = e.succList[:len(e.edges)]
	}
	for _, ed := range e.edges {
		b := ed.before
		e.succList[b.succOff+b.succN] = ed.after
		b.succN++
	}
}

// succs returns a's successor list.
func (e *Engine) succs(a *Activity) []*Activity {
	return e.succList[a.succOff : a.succOff+a.succN]
}

// completion is an entry in the event heap.
type completion struct {
	t   float64
	seq int
	act *Activity
}

// eventHeap is a binary min-heap over (time, sequence). The push/pop
// functions are hand-rolled instead of container/heap because the latter
// boxes every pushed element into an interface — one allocation per
// scheduled event, the dominant churn of large sweeps.
type eventHeap []completion

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *eventHeap) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// actHeap orders ready activities by (ready time, ID); same hand-rolled
// heap as eventHeap for the same allocation reason.
type actHeap []*Activity

func (h actHeap) less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].ID < h[j].ID
}

func (h *actHeap) push(a *Activity) {
	*h = append(*h, a)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *actHeap) pop() *Activity {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil // let the engine's Reset-retained backing array release it
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Result summarizes a completed simulation.
type Result struct {
	Makespan float64
	// Utilization maps resource name to busy-time / makespan. It is nil
	// when KeepUtilization(false) was set; read Resource.BusyTime instead.
	Utilization map[string]float64
	Trace       []TraceEntry
}

// Run executes the simulation to completion and returns the makespan. It
// returns an error if not every activity could run, which indicates a
// dependency cycle (a deadlocked schedule). Run consumes the dependence
// counts, so it may be called only once per build; call Reset and rebuild
// to simulate again.
func (e *Engine) Run() (Result, error) {
	e.buildSuccs()
	e.events = e.events[:0]
	events := &e.events
	seq := 0
	now := 0.0

	startOn := func(r *Resource) {
		for !r.busy && len(r.pending) > 0 {
			a := r.pending.pop()
			start := a.ready
			a.critPred = a.readyPred
			a.critKind = CritDependency
			if a.readyPred == nil {
				a.critKind = CritStart
			}
			if r.freeAt > start {
				start = r.freeAt
				if r.lastAct != nil {
					a.critPred = r.lastAct
					a.critKind = CritResource
				}
			}
			if start < now {
				start = now
			}
			a.Start = start
			a.End = start + a.Duration
			a.started = true
			r.busy = true
			events.push(completion{t: a.End, seq: seq, act: a})
			seq++
		}
	}

	// Seed: all activities with no predecessors are ready at t=0.
	for _, a := range e.activities {
		if a.npreds == 0 {
			a.ready = 0
			a.Res.pending.push(a)
		}
	}
	for _, r := range e.resources {
		startOn(r)
	}

	completed := 0
	for len(*events) > 0 {
		ev := events.pop()
		a := ev.act
		now = ev.t
		a.done = true
		completed++
		r := a.Res
		r.busy = false
		r.freeAt = a.End
		r.lastAct = a
		r.busyTime += a.Duration
		if e.keepTrace {
			e.trace = append(e.trace, TraceEntry{Resource: r.Name, Label: a.Label, Start: a.Start, End: a.End, Ready: a.ready})
		}
		if e.keepIntervals {
			e.intervals = append(e.intervals, Interval{Res: r, Ready: a.ready, Start: a.Start, End: a.End})
		}
		succs := e.succs(a)
		for _, s := range succs {
			s.npreds--
			if a.End > s.ready {
				s.ready = a.End
				s.readyPred = a
			}
			if s.npreds == 0 {
				s.Res.pending.push(s)
			}
		}
		// The freed resource and any resources that gained ready work may
		// start something. Trying all successors' resources plus r covers
		// every resource whose pending set changed.
		startOn(r)
		for _, s := range succs {
			startOn(s.Res)
		}
	}

	if completed != len(e.activities) {
		return Result{}, fmt.Errorf("simnet: deadlock, only %d of %d activities completed (dependency cycle?)",
			completed, len(e.activities))
	}
	res := Result{Makespan: now, Trace: e.trace}
	if !e.skipUtil {
		res.Utilization = make(map[string]float64, len(e.resources))
		for _, r := range e.resources {
			if now > 0 {
				res.Utilization[r.Name] = r.busyTime / now
			} else {
				res.Utilization[r.Name] = 0
			}
		}
	}
	return res, nil
}

// NumActivities returns how many activities have been registered.
func (e *Engine) NumActivities() int { return len(e.activities) }

// NumResources returns how many resources have been registered.
func (e *Engine) NumResources() int { return len(e.resources) }
