package simnet

// Critical-path extraction: after Run, every activity knows which single
// predecessor determined its start time — either a dependency (the last
// dataflow predecessor to finish) or the previous occupant of its resource
// (contention). Walking those edges back from the last-finishing activity
// yields the chain that fixes the makespan, separating "the schedule is
// dependence-bound" from "a resource is saturated".

// CritKind classifies why an activity started when it did.
type CritKind int

const (
	// CritStart marks a chain head: the activity started at time 0.
	CritStart CritKind = iota
	// CritDependency: the activity waited for a dataflow predecessor.
	CritDependency
	// CritResource: the activity waited for its resource to free up.
	CritResource
)

func (k CritKind) String() string {
	switch k {
	case CritStart:
		return "start"
	case CritDependency:
		return "dependency"
	case CritResource:
		return "resource"
	default:
		return "unknown"
	}
}

// CritStep is one element of a critical path.
type CritStep struct {
	Label    string
	Resource string
	Start    float64
	End      float64
	Kind     CritKind // why this step could not start earlier
}

// CriticalPath returns the chain of activities fixing the makespan, in
// execution order. It must be called after Run; it returns nil on an empty
// or unrun engine.
func (e *Engine) CriticalPath() []CritStep {
	var last *Activity
	for _, a := range e.activities {
		if !a.done {
			return nil
		}
		if last == nil || a.End > last.End {
			last = a
		}
	}
	if last == nil {
		return nil
	}
	var rev []*Activity
	for a := last; a != nil; a = a.critPred {
		rev = append(rev, a)
	}
	out := make([]CritStep, len(rev))
	for i := range rev {
		a := rev[len(rev)-1-i]
		out[i] = CritStep{
			Label:    a.Label,
			Resource: a.Res.Name,
			Start:    a.Start,
			End:      a.End,
			Kind:     a.critKind,
		}
	}
	return out
}

// CriticalPathStats summarizes a critical path: total time attributable to
// dependency waits versus resource contention versus the work itself.
type CriticalPathStats struct {
	Steps          int
	WorkTime       float64 // Σ durations along the path
	DependencyHops int
	ResourceHops   int
}

// Stats aggregates a critical path.
func Stats(path []CritStep) CriticalPathStats {
	var s CriticalPathStats
	s.Steps = len(path)
	for _, p := range path {
		s.WorkTime += p.End - p.Start
		switch p.Kind {
		case CritDependency:
			s.DependencyHops++
		case CritResource:
			s.ResourceHops++
		}
	}
	return s
}
