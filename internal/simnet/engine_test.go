package simnet

import (
	"math"
	"testing"
)

func TestSingleActivity(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	e.NewActivity(cpu, 5, "work")
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 5 {
		t.Errorf("makespan = %g, want 5", r.Makespan)
	}
	if r.Utilization["cpu"] != 1.0 {
		t.Errorf("utilization = %g, want 1", r.Utilization["cpu"])
	}
}

func TestChainSerializes(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	a := e.NewActivity(cpu, 2, "a")
	b := e.NewActivity(cpu, 3, "b")
	c := e.NewActivity(cpu, 4, "c")
	e.AddDep(a, b)
	e.AddDep(b, c)
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 9 {
		t.Errorf("makespan = %g, want 9", r.Makespan)
	}
	if a.End != 2 || b.Start != 2 || b.End != 5 || c.Start != 5 {
		t.Errorf("chain times wrong: a=[%g,%g] b=[%g,%g] c=[%g,%g]",
			a.Start, a.End, b.Start, b.End, c.Start, c.End)
	}
}

func TestParallelResourcesOverlap(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	nic := e.NewResource("nic")
	a := e.NewActivity(cpu, 10, "compute")
	b := e.NewActivity(nic, 7, "transfer")
	_ = a
	_ = b
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 10 {
		t.Errorf("makespan = %g, want 10 (independent resources overlap)", r.Makespan)
	}
}

func TestSameResourceSerializesIndependentWork(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	e.NewActivity(cpu, 4, "x")
	e.NewActivity(cpu, 6, "y")
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 10 {
		t.Errorf("makespan = %g, want 10 (serialized on one resource)", r.Makespan)
	}
}

func TestFIFOByReadyTime(t *testing.T) {
	// b becomes ready at 1 (after a on another resource), c at 0.
	// The shared resource must run c first.
	e := NewEngine()
	r1 := e.NewResource("r1")
	shared := e.NewResource("shared")
	a := e.NewActivity(r1, 1, "a")
	b := e.NewActivity(shared, 5, "b")
	c := e.NewActivity(shared, 5, "c")
	e.AddDep(a, b)
	_, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Start != 0 {
		t.Errorf("c.Start = %g, want 0 (ready first)", c.Start)
	}
	if b.Start != 5 {
		t.Errorf("b.Start = %g, want 5", b.Start)
	}
}

func TestTieBreakByCreationOrder(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	x := e.NewActivity(cpu, 1, "x")
	y := e.NewActivity(cpu, 1, "y")
	_, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if x.Start != 0 || y.Start != 1 {
		t.Errorf("creation-order tie-break violated: x@%g y@%g", x.Start, y.Start)
	}
}

func TestDiamondDependency(t *testing.T) {
	// a -> b, a -> c, {b,c} -> d; b and c on distinct resources.
	e := NewEngine()
	r0 := e.NewResource("r0")
	r1 := e.NewResource("r1")
	r2 := e.NewResource("r2")
	a := e.NewActivity(r0, 1, "a")
	b := e.NewActivity(r1, 3, "b")
	c := e.NewActivity(r2, 5, "c")
	d := e.NewActivity(r0, 1, "d")
	e.AddDep(a, b)
	e.AddDep(a, c)
	e.AddDep(b, d)
	e.AddDep(c, d)
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != 6 {
		t.Errorf("d.Start = %g, want 6 (after slower branch)", d.Start)
	}
	if r.Makespan != 7 {
		t.Errorf("makespan = %g, want 7", r.Makespan)
	}
}

func TestCycleDetection(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	a := e.NewActivity(cpu, 1, "a")
	b := e.NewActivity(cpu, 1, "b")
	e.AddDep(a, b)
	e.AddDep(b, a)
	if _, err := e.Run(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestZeroDurationActivities(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	a := e.NewActivity(cpu, 0, "sync")
	b := e.NewActivity(cpu, 2, "work")
	e.AddDep(a, b)
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 2 {
		t.Errorf("makespan = %g, want 2", r.Makespan)
	}
}

func TestEmptyEngine(t *testing.T) {
	e := NewEngine()
	e.NewResource("cpu")
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 0 {
		t.Errorf("makespan = %g, want 0", r.Makespan)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	for name, f := range map[string]func(){
		"nil resource":      func() { e.NewActivity(nil, 1, "x") },
		"negative duration": func() { e.NewActivity(cpu, -1, "x") },
		"nan duration":      func() { e.NewActivity(cpu, math.NaN(), "x") },
		"nil dep":           func() { e.AddDep(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTraceRecording(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	e.KeepTrace(true)
	a := e.NewActivity(cpu, 2, "first")
	b := e.NewActivity(cpu, 3, "second")
	e.AddDep(a, b)
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) != 2 {
		t.Fatalf("trace has %d entries, want 2", len(r.Trace))
	}
	if r.Trace[0].Label != "first" || r.Trace[1].Label != "second" {
		t.Errorf("trace order wrong: %+v", r.Trace)
	}
	if r.Trace[1].Start != 2 || r.Trace[1].End != 5 {
		t.Errorf("trace times wrong: %+v", r.Trace[1])
	}
}

func TestUtilization(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	nic := e.NewResource("nic")
	a := e.NewActivity(cpu, 4, "compute")
	b := e.NewActivity(nic, 4, "send")
	e.AddDep(a, b)
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization["cpu"] != 0.5 || r.Utilization["nic"] != 0.5 {
		t.Errorf("utilization = %v, want 0.5 each", r.Utilization)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (*Engine, []*Activity) {
		e := NewEngine()
		cpus := []*Resource{e.NewResource("c0"), e.NewResource("c1")}
		var acts []*Activity
		for i := 0; i < 50; i++ {
			a := e.NewActivity(cpus[i%2], float64(1+i%7), "a")
			acts = append(acts, a)
			if i > 0 && i%3 == 0 {
				e.AddDep(acts[i-1], a)
			}
			if i > 4 && i%5 == 0 {
				e.AddDep(acts[i-4], a)
			}
		}
		return e, acts
	}
	e1, a1 := build()
	e2, a2 := build()
	r1, err := e1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("non-deterministic makespan: %g vs %g", r1.Makespan, r2.Makespan)
	}
	for i := range a1 {
		if a1[i].Start != a2[i].Start || a1[i].End != a2[i].End {
			t.Fatalf("non-deterministic activity %d", i)
		}
	}
}

// TestPipelineOverlapCanonical builds the paper's canonical 3-stage pipeline
// shape: N steps where CPU work of step k overlaps the NIC transfer of step
// k−1's output. With cpu=c per step and wire=w per step (w < c), the
// makespan must be N·c + w (the last transfer peeking out), versus the
// serialized N·(c+w).
func TestPipelineOverlapCanonical(t *testing.T) {
	const n = 10
	e := NewEngine()
	cpu := e.NewResource("cpu")
	nic := e.NewResource("nic")
	var prevCompute *Activity
	var lastSend *Activity
	for k := 0; k < n; k++ {
		c := e.NewActivity(cpu, 5, "compute")
		if prevCompute != nil {
			e.AddDep(prevCompute, c)
			s := e.NewActivity(nic, 3, "send")
			e.AddDep(prevCompute, s)
			lastSend = s
		}
		prevCompute = c
	}
	// Final send of the last compute.
	s := e.NewActivity(nic, 3, "send")
	e.AddDep(prevCompute, s)
	lastSend = s
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n*5 + 3)
	if r.Makespan != want {
		t.Errorf("makespan = %g, want %g (pipelined)", r.Makespan, want)
	}
	if lastSend.End != want {
		t.Errorf("last send ends at %g", lastSend.End)
	}
}
