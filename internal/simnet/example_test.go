package simnet_test

import (
	"fmt"
	"log"

	"repro/internal/simnet"
)

// Example builds the canonical overlap pattern: a CPU computing tiles
// back-to-back while a NIC ships each tile's result concurrently. The
// makespan is N·compute + one trailing send — not N·(compute+send).
func Example() {
	e := simnet.NewEngine()
	cpu := e.NewResource("cpu")
	nic := e.NewResource("nic")
	var prev *simnet.Activity
	for k := 0; k < 4; k++ {
		c := e.NewActivity(cpu, 10, fmt.Sprintf("compute%d", k))
		if prev != nil {
			e.AddDep(prev, c)
		}
		s := e.NewActivity(nic, 3, fmt.Sprintf("send%d", k))
		e.AddDep(c, s)
		prev = c
	}
	r, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %.0f (serialized would be %.0f)\n", r.Makespan, 4*13.0)
	path := e.CriticalPath()
	fmt.Printf("critical path ends with %q\n", path[len(path)-1].Label)
	// Output:
	// makespan 43 (serialized would be 52)
	// critical path ends with "send3"
}
