// Package simnet is a deterministic discrete-event simulator for
// activity graphs over serially-shared resources.
//
// It substitutes for the paper's physical cluster: processors' CPUs, DMA
// engines and NIC links are Resources; the phases of every tile execution
// (MPI buffer fills, computation, kernel copies, wire transmission) are
// Activities with precedence edges. The engine computes the exact start and
// finish time of every activity under FIFO resource scheduling, giving the
// makespan of a schedule without running wall-clock experiments — and,
// unlike wall-clock runs, perfectly reproducibly.
//
// The model: an Activity occupies exactly one Resource for a fixed duration
// and may start only after all its predecessors have finished. A Resource
// executes one activity at a time, picking among ready activities the one
// that became ready first (ties broken by creation order).
//
// # Hierarchical fabrics
//
// Beyond per-node port resources, a Fabric models the switch hierarchy
// between nodes (topo.Spec: edge/aggregation tiers of a fat tree, per-level
// bandwidth and latency, a fixed number of parallel uplinks per switch).
// Every uplink and downlink is an ordinary Resource, so link contention at
// an oversubscribed tier falls out of the same FIFO scheduling that models
// CPU and NIC contention — no special queueing code. Route computes the
// up-then-down hop sequence of a message from the lowest common ancestor of
// its endpoints (LCA routing), spreading flows across parallel uplinks by a
// deterministic hash of the endpoint pair (ECMP without randomness, see
// topo.Spec.UplinkIndex). A message between nodes under the same edge
// switch takes zero fabric hops: the hierarchy is pay-as-you-go, and the
// zero topo.Spec reproduces the flat single-switch machine exactly.
// DESIGN.md §12 develops the model and its determinism argument.
//
// The engine is allocation-lean: activities and resources live in chunked
// slabs owned by the Engine (pointers stay valid as the graph grows),
// dependence edges accumulate in one flat list that Run compacts into a
// CSR-style successor array via a two-pass degree count, and Reset lets a
// caller reuse one Engine — and all of its backing memory — across many
// simulations (one engine per sweep worker). The Fabric follows the same
// discipline: its links are slab resources, sized once from the world size
// and the spec, and Route appends into a caller-owned buffer so
// steady-state routing allocates nothing — the per-rank allocation budget
// stays flat from 100 to 10000 ranks (BenchmarkScaleAllocBudget locks it).
package simnet
