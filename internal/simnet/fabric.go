package simnet

import (
	"fmt"

	"repro/internal/topo"
)

// Hop is one switch-to-switch stage of a routed transfer: the link resource
// it occupies, the link's bandwidth factor relative to a node link (a
// message of node-link wire time t holds the resource for t/BW), and the
// fixed per-traversal latency to add on top.
type Hop struct {
	Res     *Resource
	BW      float64
	Latency float64
}

// Fabric materializes a hierarchical interconnect (topo.Spec) as engine
// resources: per level, every switch gets its group of parallel uplinks and
// an equal group of downlinks (switch ports are full-duplex; contention is
// per direction). A transfer between nodes under different edge switches
// climbs the sender-side uplinks to the lowest common level and descends
// the receiver-side downlinks — each hop a serially-shared Resource, so
// uplink contention emerges from the discrete-event engine exactly like CPU
// or NIC contention does.
//
// A Fabric is built per simulation (its resources die with the engine's
// Reset) and is allocation-lean: one slice per level per direction, no
// per-message allocation — Route appends into a caller-owned hop buffer.
type Fabric struct {
	spec  topo.Spec
	nodes int64
	// up[l] and down[l] hold the level-l link resources, indexed by
	// switch*Uplinks+k. Built bottom-up, so iteration order (and therefore
	// resource ID assignment) is deterministic.
	up   [][]*Resource
	down [][]*Resource
}

// NewFabric registers the link resources of spec for a machine of `nodes`
// compute nodes on the engine. Resource names are rendered only when named
// is set (labels cost allocations metric-only sweeps refuse to pay); the
// synthesized names ("up0.3", "down1.0") match what internal/obs
// classifies. A flat spec yields a Fabric that routes every pair in zero
// hops.
func NewFabric(e *Engine, spec topo.Spec, nodes int64, named bool) (*Fabric, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("simnet: fabric needs a positive node count, got %d", nodes)
	}
	f := &Fabric{spec: spec, nodes: nodes}
	if spec.Flat() {
		return f, nil
	}
	f.up = make([][]*Resource, spec.Levels)
	f.down = make([][]*Resource, spec.Levels)
	for l := 0; l < spec.Levels; l++ {
		sw := spec.Switches(l, nodes)
		k := int64(spec.L[l].Uplinks)
		f.up[l] = make([]*Resource, sw*k)
		f.down[l] = make([]*Resource, sw*k)
		for s := int64(0); s < sw; s++ {
			for u := int64(0); u < k; u++ {
				f.up[l][s*k+u] = e.NewResource(linkName(named, "up", l, s*k+u))
				f.down[l][s*k+u] = e.NewResource(linkName(named, "down", l, s*k+u))
			}
		}
	}
	return f, nil
}

// linkName renders "up<level>.<index>" where index is the link's position in
// its level's direction group (switch×Uplinks+uplink), or "" for unnamed
// builds. internal/obs parses exactly this shape back.
func linkName(named bool, dir string, level int, index int64) string {
	if !named {
		return ""
	}
	return fmt.Sprintf("%s%d.%d", dir, level, index)
}

// Spec returns the interconnect description the fabric was built from.
func (f *Fabric) Spec() topo.Spec { return f.spec }

// NumLinks returns how many link resources the fabric registered.
func (f *Fabric) NumLinks() int {
	n := 0
	for l := range f.up {
		n += len(f.up[l]) + len(f.down[l])
	}
	return n
}

// Route appends the switch hops of a from→to transfer to hops and returns
// the extended slice: uplinks of levels 0..common−1 on the sender side,
// then downlinks of levels common−1..0 on the receiver side. Same-edge
// pairs (and every pair on a flat fabric) append nothing — the transfer is
// node-port-to-node-port, exactly the old single-switch model. Route is
// deterministic: the same pair always yields the same hop sequence over the
// same uplink choices.
func (f *Fabric) Route(from, to int64, hops []Hop) []Hop {
	if f.spec.Flat() || from == to {
		return hops
	}
	common := f.spec.CommonLevel(from, to)
	for l := 0; l < common; l++ {
		lv := f.spec.L[l]
		k := int64(lv.Uplinks)
		sw := f.spec.SwitchOf(l, from)
		u := int64(f.spec.UplinkIndex(l, from, to))
		hops = append(hops, Hop{Res: f.up[l][sw*k+u], BW: lv.BW, Latency: lv.Latency})
	}
	for l := common - 1; l >= 0; l-- {
		lv := f.spec.L[l]
		k := int64(lv.Uplinks)
		sw := f.spec.SwitchOf(l, to)
		u := int64(f.spec.UplinkIndex(l, from, to))
		hops = append(hops, Hop{Res: f.down[l][sw*k+u], BW: lv.BW, Latency: lv.Latency})
	}
	return hops
}

// Links visits every link resource in deterministic order (level by level,
// uplinks before downlinks, switch-major), passing the level, direction and
// the link's index within its level's direction group. The observability
// report uses it to synthesize per-level tracks for unnamed builds.
func (f *Fabric) Links(visit func(level int, up bool, index int, r *Resource)) {
	for l := range f.up {
		for i, r := range f.up[l] {
			visit(l, true, i, r)
		}
		for i, r := range f.down[l] {
			visit(l, false, i, r)
		}
	}
}
