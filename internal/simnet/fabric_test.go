package simnet

import (
	"testing"

	"repro/internal/topo"
)

// TestFabricRouteShape checks hop sequences against the fat-tree routing
// rules: climb sender-side uplinks to the lowest common level, descend
// receiver-side downlinks.
func TestFabricRouteShape(t *testing.T) {
	e := NewEngine()
	// 4 nodes per edge switch, 2 edge switches per aggregation switch.
	f, err := NewFabric(e, topo.FatTree(4, 2, 2, 4, 1e-6, 1), 16, true)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		from, to int64
		names    []string
	}{
		{0, 3, nil},                          // same edge switch: no hops
		{0, 4, []string{"up0.0", "down0.1"}}, // same pod, different edge
		{0, 9, []string{"up0.0", "up1.0", "down1.1", "down0.2"}}, // across the core
		{9, 0, []string{"up0.2", "up1.1", "down1.0", "down0.0"}}, // reverse path uses its own links
	}
	for _, c := range cases {
		hops := f.Route(c.from, c.to, nil)
		if len(hops) != len(c.names) {
			t.Fatalf("Route(%d,%d): %d hops, want %d", c.from, c.to, len(hops), len(c.names))
		}
		for i, h := range hops {
			if h.Res.Name != c.names[i] {
				t.Errorf("Route(%d,%d) hop %d = %q, want %q", c.from, c.to, i, h.Res.Name, c.names[i])
			}
		}
	}
	// Level-0 hops carry level-0 parameters, level-1 hops level-1's.
	hops := f.Route(0, 9, nil)
	if hops[0].BW != 2 || hops[1].BW != 4 {
		t.Errorf("hop bandwidth factors = %g, %g; want 2, 4", hops[0].BW, hops[1].BW)
	}
}

// TestFabricFlat checks the zero spec builds no links and routes in zero
// hops — the old single-switch machine.
func TestFabricFlat(t *testing.T) {
	e := NewEngine()
	f, err := NewFabric(e, topo.Flat(), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumLinks() != 0 {
		t.Errorf("flat fabric has %d links, want 0", f.NumLinks())
	}
	if hops := f.Route(0, 7, nil); len(hops) != 0 {
		t.Errorf("flat route has %d hops, want 0", len(hops))
	}
	if e.NumResources() != 0 {
		t.Errorf("flat fabric registered %d resources, want 0", e.NumResources())
	}
}

// TestFabricContentionGolden runs two simultaneous cross-switch transfers
// through a shared uplink and asserts the exact event times: the golden
// small-scale check that uplink contention serializes flows the way the
// two-level model says it should.
//
// Topology: 4 nodes, 2 per edge switch, one uplink of bandwidth 2× and
// latency 1s per hop. Node-link wire time is 4s, so each switch hop takes
// 4/2 + 1 = 3s. Transfers 0→2 and 1→3 both climb up0.0 and descend
// down0.1.
func TestFabricContentionGolden(t *testing.T) {
	e := NewEngine()
	f, err := NewFabric(e, topo.TwoLevel(2, 2, 1.0, 1), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	const wire = 4.0
	tx := []*Resource{e.NewResource("tx0"), e.NewResource("tx1")}
	rx := []*Resource{nil, nil, e.NewResource("rx2"), e.NewResource("rx3")}

	send := func(from, to int64) *Activity {
		prev := e.NewActivity(tx[from], wire, "wire-tx")
		for _, h := range f.Route(from, to, nil) {
			a := e.NewActivity(h.Res, wire/h.BW+h.Latency, "hop")
			e.AddDep(prev, a)
			prev = a
		}
		a := e.NewActivity(rx[to], wire, "wire-rx")
		e.AddDep(prev, a)
		return a
	}
	a := send(0, 2)
	b := send(1, 3)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Flow A: tx [0,4], up [4,7], down [7,10], rx [10,14].
	if a.Start != 10 || a.End != 14 {
		t.Errorf("flow A rx ran [%g,%g], want [10,14]", a.Start, a.End)
	}
	// Flow B queues behind A on the shared uplink: tx [0,4], up [7,10]
	// (3s of contention wait), down [10,13], rx [13,17].
	if b.Start != 13 || b.End != 17 {
		t.Errorf("flow B rx ran [%g,%g], want [13,17]", b.Start, b.End)
	}
	if res.Makespan != 17 {
		t.Errorf("makespan = %g, want 17", res.Makespan)
	}
	// The shared uplink carried both flows for 3s each.
	up := f.up[0][0]
	if up.BusyTime() != 6 {
		t.Errorf("uplink busy time = %g, want 6", up.BusyTime())
	}
}
