package simnet

import "testing"

// TestIntervalsMatchTrace: the string-free interval log must describe the
// exact same executions as the full trace — same resource, same ready time,
// same [start, end) — entry for entry (both are appended in completion
// order).
func TestIntervalsMatchTrace(t *testing.T) {
	e := NewEngine()
	e.KeepTrace(true)
	e.KeepIntervals(true)
	cpu := e.NewResource("cpu")
	nic := e.NewResource("nic")
	a := e.NewActivity(cpu, 2, "a")
	b := e.NewActivity(nic, 3, "b")
	e.NewActivity(cpu, 1, "c") // contends with a for the cpu
	e.AddDep(a, b)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	iv := e.Intervals()
	if len(iv) != len(res.Trace) || len(iv) != 3 {
		t.Fatalf("got %d intervals, %d trace entries, want 3", len(iv), len(res.Trace))
	}
	for i, entry := range res.Trace {
		got := iv[i]
		if got.Res.Name != entry.Resource || got.Start != entry.Start ||
			got.End != entry.End || got.Ready != entry.Ready {
			t.Errorf("interval %d = {%s %g [%g,%g]}, trace = {%s %g [%g,%g]}",
				i, got.Res.Name, got.Ready, got.Start, got.End,
				entry.Resource, entry.Ready, entry.Start, entry.End)
		}
	}
	// c became ready at 0 but queued behind a on the cpu: its queue wait
	// (Start − Ready) must be a's full duration.
	var cIv *Interval
	for i := range iv {
		if iv[i].Res == cpu && iv[i].Ready == 0 && iv[i].Start > 0 {
			cIv = &iv[i]
		}
	}
	if cIv == nil || cIv.Start-cIv.Ready != 2 {
		t.Errorf("contended activity queue wait wrong: %+v", cIv)
	}
	// b's ready time is a's end.
	if got := iv[len(iv)-1]; got.Res != nic || got.Ready != 2 || got.Start != 2 || got.End != 5 {
		t.Errorf("dependent interval = %+v, want nic ready=2 [2,5]", got)
	}
	if res.Makespan != 5 {
		t.Errorf("makespan = %g, want 5", res.Makespan)
	}
}

// TestIntervalsRecycledAcrossReset: Reset must rewind the interval log (the
// buffer is recycled, not abandoned) and turn recording off again.
func TestIntervalsRecycledAcrossReset(t *testing.T) {
	e := NewEngine()
	e.KeepIntervals(true)
	r := e.NewResource("")
	e.NewActivity(r, 1, "")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Intervals()) != 1 {
		t.Fatalf("got %d intervals, want 1", len(e.Intervals()))
	}
	e.Reset()
	if len(e.Intervals()) != 0 {
		t.Error("Reset did not rewind the interval log")
	}
	r = e.NewResource("")
	e.NewActivity(r, 1, "")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(e.Intervals()) != 0 {
		t.Error("Reset did not turn interval recording off")
	}
}
