package simnet

import "testing"

func TestCriticalPathChain(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	a := e.NewActivity(cpu, 2, "a")
	b := e.NewActivity(cpu, 3, "b")
	c := e.NewActivity(cpu, 4, "c")
	e.AddDep(a, b)
	e.AddDep(b, c)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	path := e.CriticalPath()
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3: %+v", len(path), path)
	}
	if path[0].Label != "a" || path[2].Label != "c" {
		t.Errorf("path order wrong: %+v", path)
	}
	if path[0].Kind != CritStart {
		t.Errorf("chain head kind = %v", path[0].Kind)
	}
	if path[1].Kind != CritDependency || path[2].Kind != CritDependency {
		t.Errorf("chain kinds = %v, %v", path[1].Kind, path[2].Kind)
	}
	s := Stats(path)
	if s.WorkTime != 9 || s.Steps != 3 || s.DependencyHops != 2 || s.ResourceHops != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCriticalPathDiamondPicksSlowBranch(t *testing.T) {
	e := NewEngine()
	r0 := e.NewResource("r0")
	r1 := e.NewResource("r1")
	r2 := e.NewResource("r2")
	a := e.NewActivity(r0, 1, "a")
	fast := e.NewActivity(r1, 2, "fast")
	slow := e.NewActivity(r2, 7, "slow")
	d := e.NewActivity(r0, 1, "d")
	e.AddDep(a, fast)
	e.AddDep(a, slow)
	e.AddDep(fast, d)
	e.AddDep(slow, d)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	path := e.CriticalPath()
	labels := make([]string, len(path))
	for i, p := range path {
		labels[i] = p.Label
	}
	want := []string{"a", "slow", "d"}
	if len(labels) != 3 || labels[0] != want[0] || labels[1] != want[1] || labels[2] != want[2] {
		t.Errorf("path = %v, want %v", labels, want)
	}
}

func TestCriticalPathResourceContention(t *testing.T) {
	// Two independent activities on one resource: the second's start is
	// fixed by contention, not dependency.
	e := NewEngine()
	cpu := e.NewResource("cpu")
	e.NewActivity(cpu, 5, "first")
	e.NewActivity(cpu, 5, "second")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	path := e.CriticalPath()
	if len(path) != 2 {
		t.Fatalf("path = %+v", path)
	}
	if path[1].Kind != CritResource {
		t.Errorf("second activity kind = %v, want resource", path[1].Kind)
	}
	s := Stats(path)
	if s.ResourceHops != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCriticalPathBeforeRun(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu")
	e.NewActivity(cpu, 1, "x")
	if e.CriticalPath() != nil {
		t.Error("critical path available before Run")
	}
}

func TestCriticalPathEmptyEngine(t *testing.T) {
	e := NewEngine()
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.CriticalPath() != nil {
		t.Error("critical path on empty engine not nil")
	}
}

func TestCritKindStrings(t *testing.T) {
	if CritStart.String() != "start" || CritDependency.String() != "dependency" ||
		CritResource.String() != "resource" || CritKind(9).String() != "unknown" {
		t.Error("kind strings wrong")
	}
}

// TestCriticalPathCoversMakespan: the last step of the path ends at the
// makespan and the path is time-monotone.
func TestCriticalPathCoversMakespan(t *testing.T) {
	e := NewEngine()
	r0 := e.NewResource("r0")
	r1 := e.NewResource("r1")
	var prev *Activity
	for i := 0; i < 20; i++ {
		a := e.NewActivity(r0, float64(1+i%3), "a")
		b := e.NewActivity(r1, float64(2-i%2), "b")
		e.AddDep(a, b)
		if prev != nil {
			e.AddDep(prev, a)
		}
		prev = b
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := e.CriticalPath()
	if path[len(path)-1].End != res.Makespan {
		t.Errorf("path ends at %g, makespan %g", path[len(path)-1].End, res.Makespan)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Start < path[i-1].End-1e-12 {
			t.Errorf("path not monotone at %d: %+v -> %+v", i, path[i-1], path[i])
		}
	}
}
