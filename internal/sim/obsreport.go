package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// obsReport aggregates the engine's string-free interval log into the phase
// accounting of Result.Obs. Resource names are synthesized here rather than
// read off the resources because metrics-only runs build unnamed resources
// (labels cost allocations the sweeps refuse to pay); the synthesized names
// match what a traced build would have used, so obs.TracksFromTrace on a
// traced run of the same config yields the identical report — up to
// resources that never executed anything (idle fabric links of a sparse
// traffic pattern): this report lists them with zero busy time, while a
// trace never mentions them.
func (b *builder) obsReport(makespan float64) *obs.Report {
	ivs := b.eng.Intervals()
	idx := make(map[*simnet.Resource]int, 3*len(b.nodes)+1)
	var tracks []obs.Track
	add := func(r *simnet.Resource, name string, kind obs.ResourceKind, node int64, level int) {
		if _, ok := idx[r]; ok {
			return
		}
		idx[r] = len(tracks)
		tracks = append(tracks, obs.Track{Name: name, Kind: kind, Node: node, Level: level})
	}
	for p := range b.nodes {
		n := &b.nodes[p]
		add(n.cpu, fmt.Sprintf("cpu%d", p), obs.KindCPU, int64(p), 0)
		if n.commIn == n.commOut {
			add(n.commIn, fmt.Sprintf("comm%d", p), obs.KindNIC, int64(p), 0)
		} else {
			add(n.commIn, fmt.Sprintf("rx%d", p), obs.KindNICIn, int64(p), 0)
			add(n.commOut, fmt.Sprintf("tx%d", p), obs.KindNICOut, int64(p), 0)
		}
	}
	if b.bus != nil {
		add(b.bus, "bus", obs.KindBus, -1, 0)
	}
	if b.fabric != nil {
		b.fabric.Links(func(level int, up bool, index int, r *simnet.Resource) {
			dir, kind := "up", obs.KindUplink
			if !up {
				dir, kind = "down", obs.KindDownlink
			}
			add(r, fmt.Sprintf("%s%d.%d", dir, level, index), kind, int64(index), level)
		})
	}
	// Bucket-fill the per-track interval slices out of one backing array
	// (count pass, then carve, then fill) — the log can hold millions of
	// entries and per-track append growth would double-copy most of them.
	counts := make([]int, len(tracks))
	for i := range ivs {
		counts[idx[ivs[i].Res]]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	backing := make([]obs.Interval, 0, total)
	for t := range tracks {
		n := len(backing)
		tracks[t].Intervals = backing[n : n : n+counts[t]]
		backing = backing[:n+counts[t]]
	}
	for i := range ivs {
		t := idx[ivs[i].Res]
		tracks[t].Intervals = append(tracks[t].Intervals, obs.Interval{
			Ready: ivs[i].Ready, Start: ivs[i].Start, End: ivs[i].End,
		})
	}
	rep := obs.Analyze(makespan, tracks)
	rep.Retransmits = b.retransmits
	rep.Pauses = b.pauseCount
	if len(b.linkRetx) > 0 {
		rep.LinkRetransmits = make(map[string]int, len(b.linkRetx))
		for k, v := range b.linkRetx {
			rep.LinkRetransmits[fmt.Sprintf("p%d->p%d", k/b.numProcs, k%b.numProcs)] = v
		}
	}
	return rep
}
