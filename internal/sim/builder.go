package sim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ilmath"
	"repro/internal/simnet"
)

// builder constructs the simnet activity graph for one Config.
//
// All bookkeeping is integer-indexed: a tile is identified by its
// lexicographic rank in the tile space (the coordinates packed into one
// int64 via the space's extents), processors by their rank, and the
// inbox/outbox indexes are flat (proc, step)-addressed slices whose buckets
// are carved out of a single backing array sized numTiles × deps up front.
// Messages live in a chunked arena. Human-readable activity labels are only
// materialized when Config.Trace is set; untraced sweeps run label-free.
type builder struct {
	cfg    Config
	eng    *simnet.Engine
	nodes  []node
	bus    *simnet.Resource // the single medium in SharedBus mode
	fabric *simnet.Fabric   // hierarchical links, nil when Interconnect is flat
	hops   []simnet.Hop     // reusable route buffer (wire() is serial)
	trace  bool
	// fp is the active fault plan, nil when Config.Fault is absent or has
	// zero intensity — the fault-free build path stays byte-identical.
	fp *fault.Plan

	numProcs int64
	steps    int64 // tiles per processor (extent of the mapping dimension)
	numTiles int
	numMsgs  int

	// tiles[p*steps+s] describes the tile processor p runs at local step s.
	tiles []tileInfo
	// inbox[p*steps+s] lists messages consumed by that tile; outbox the
	// messages it produces. Bucket capacity is deps.Len() each.
	inbox  [][]*message
	outbox [][]*message
	// computeActs[tileRank] is the A2 activity of each tile.
	computeActs []*simnet.Activity
	msgs        msgArena
	// pending holds consumption edges whose producing message had not been
	// issued yet at construction time.
	pending []pendingEdge

	// Fault counters for the metrics report, tallied during construction
	// (the perturbations are deterministic, so build-time counts equal
	// run-time counts). linkRetx is keyed fromProc*numProcs+toProc and
	// allocated lazily — fault-free builds never touch it.
	retransmits int
	pauseCount  int
	linkRetx    map[int64]int
}

// tileInfo is the precomputed per-tile record the emission passes run on,
// so they never touch coordinate vectors (except for trace labels).
type tileInfo struct {
	rank   int64      // lexicographic rank in the tile space
	volume int64      // iteration points (boundary tiles may be smaller)
	exists bool       // the (proc, step) slot holds a tile of the space
	coord  ilmath.Vec // populated only when tracing, for labels
}

// msgArena allocates messages in chunked slabs: pointers stay stable while
// the arena grows, and the whole graph's messages amount to a handful of
// allocations instead of one per dependence edge.
type msgArena struct {
	chunks [][]message
	n      int
}

const msgChunkSize = 512

func (a *msgArena) alloc() *message {
	chunk, idx := a.n/msgChunkSize, a.n%msgChunkSize
	if chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]message, msgChunkSize))
	}
	a.n++
	return &a.chunks[chunk][idx]
}

func newBuilder(cfg Config, eng *simnet.Engine) *builder {
	b := &builder{cfg: cfg, eng: eng, trace: cfg.Trace}
	if cfg.Fault != nil && cfg.Fault.Active() {
		b.fp = cfg.Fault
	}
	return b
}

// speed returns node p's CPU speed factor (1.0 when homogeneous).
func (b *builder) speed(p int64) float64 {
	if b.cfg.NodeSpeed == nil {
		return 1
	}
	return b.cfg.NodeSpeed(p)
}

// procRank computes Map.ProcRank(tc) without materializing the projected
// processor coordinate: it linearizes tc over the processor space, skipping
// the mapping dimension.
func (b *builder) procRank(tc ilmath.Vec) int64 {
	m := b.cfg.Topo.Map
	if len(tc) == 1 {
		return 0
	}
	ps := m.ProcSpace
	var r int64
	pi := 0
	for d := 0; d < len(tc); d++ {
		if d == m.MapDim {
			continue
		}
		r = r*ps.Extent(pi) + (tc[d] - ps.Lower[pi])
		pi++
	}
	return r
}

func (b *builder) build() error {
	b.eng.KeepTrace(b.trace)
	b.eng.KeepUtilization(b.trace)
	b.eng.KeepIntervals(b.cfg.Metrics)
	if err := b.makeNodes(); err != nil {
		return err
	}
	b.collectMessages()
	// Pre-size the engine: each tile emits one compute plus a few activities
	// and edges per message (at most 6 activities and ~12 edges per message
	// across both modes, bus stage included). A hierarchical interconnect
	// adds up to 2·Levels hop activities (one edge each) per message. An
	// active fault plan can add a pause per tile and up to 2·MaxResend
	// activities (retransmission + timeout) per message.
	acts, edges := b.numTiles+6*b.numMsgs+1, 2*b.numTiles+12*b.numMsgs
	if lv := b.cfg.Interconnect.Levels; lv > 0 {
		acts += 2 * lv * b.numMsgs
		edges += 2 * lv * b.numMsgs
	}
	if b.fp != nil {
		acts += b.numTiles + 2*b.fp.MaxResend*b.numMsgs
		edges += b.numTiles + 2*b.fp.MaxResend*b.numMsgs
	}
	b.eng.Reserve(acts, edges)
	switch b.cfg.Mode {
	case Blocking:
		b.buildBlocking()
	case Overlapped:
		b.buildOverlapped()
	}
	return nil
}

// makeNodes creates the per-processor resources according to the hardware
// capability, plus the hierarchical fabric's link resources when the
// interconnect is not flat. Resource names are only rendered when tracing;
// the engine identifies resources by pointer.
func (b *builder) makeNodes() error {
	n := b.cfg.Topo.Map.NumProcs()
	b.numProcs = n
	b.nodes = make([]node, n)
	if !b.cfg.Interconnect.Flat() {
		f, err := simnet.NewFabric(b.eng, b.cfg.Interconnect, n, b.trace)
		if err != nil {
			return err
		}
		b.fabric = f
	}
	rname := func(format string, p int64) string {
		if !b.trace {
			return ""
		}
		return fmt.Sprintf(format, p)
	}
	if b.cfg.Network == SharedBus {
		busName := ""
		if b.trace {
			busName = "bus"
		}
		b.bus = b.eng.NewResource(busName)
	}
	for p := int64(0); p < n; p++ {
		cpu := b.eng.NewResource(rname("cpu%d", p))
		var in, out *simnet.Resource
		switch b.cfg.Cap {
		case CapFullDuplex:
			in = b.eng.NewResource(rname("rx%d", p))
			out = b.eng.NewResource(rname("tx%d", p))
		default: // CapNone, CapDMA: one half-duplex comm channel
			ch := b.eng.NewResource(rname("comm%d", p))
			in, out = ch, ch
		}
		b.nodes[p] = node{cpu: cpu, commIn: in, commOut: out}
	}
	if b.fp != nil {
		b.installPerturb()
	}
	return nil
}

// installPerturb registers the engine-level duration hook carrying the
// fault plan's per-resource factors: CPU straggler factors on each
// processor's CPU, link slowdown factors on each communication port (rx
// port 2p, tx port 2p+1, shared bus −1). Per-message jitter and
// retransmissions are handled structurally in wire(); resources without a
// factor — fabric links among them — pass through unchanged.
func (b *builder) installPerturb() {
	factors := make(map[*simnet.Resource]float64, 3*len(b.nodes)+1)
	for p := range b.nodes {
		n := &b.nodes[p]
		factors[n.cpu] = b.fp.CPUFactor(int64(p))
		// With a single half-duplex channel commIn == commOut: the rx-port
		// factor is assigned first and the tx write below overwrites it, so
		// the shared channel deterministically carries the tx-port factor.
		factors[n.commIn] = b.fp.LinkFactor(2 * int64(p))
		factors[n.commOut] = b.fp.LinkFactor(2*int64(p) + 1)
	}
	if b.bus != nil {
		factors[b.bus] = b.fp.LinkFactor(-1)
	}
	b.eng.SetPerturb(func(r *simnet.Resource, d float64) float64 {
		if f, ok := factors[r]; ok {
			return d * f
		}
		return d
	})
}

// collectMessages enumerates every tile and every tiled dependence, filling
// the per-tile records and creating a message for each cross-processor edge,
// indexed by the sender's and receiver's (proc, step) slots.
func (b *builder) collectMessages() {
	topo := b.cfg.Topo
	ts := topo.TileSpace
	m := topo.Map
	b.steps = m.TilesPerProc()
	nSlots := int(b.numProcs * b.steps)
	nDeps := b.cfg.Deps.Len()
	depVecs := b.cfg.Deps.Vectors()

	b.tiles = make([]tileInfo, nSlots)
	b.computeActs = make([]*simnet.Activity, ts.Volume())
	// One backing array for every inbox and outbox bucket: a tile has at
	// most one in-edge and one out-edge per dependence vector.
	backing := make([]*message, 2*nSlots*nDeps)
	b.inbox = make([][]*message, nSlots)
	b.outbox = make([][]*message, nSlots)
	for i := 0; i < nSlots; i++ {
		in := i * nDeps
		out := (nSlots + i) * nDeps
		b.inbox[i] = backing[in : in : in+nDeps]
		b.outbox[i] = backing[out : out : out+nDeps]
	}

	mapDim := m.MapDim
	mapLower := ts.Lower[mapDim]
	from := make(ilmath.Vec, ts.Dim())
	ts.Points(func(tc ilmath.Vec) bool {
		b.numTiles++
		toProc := b.procRank(tc)
		toStep := tc[mapDim] - mapLower
		slot := toProc*b.steps + toStep
		ti := &b.tiles[slot]
		ti.rank = ts.Linearize(tc)
		ti.volume = topo.TileVolume(tc)
		ti.exists = true
		if b.trace {
			ti.coord = tc.Clone()
		}
		for i := 0; i < nDeps; i++ {
			d := depVecs[i]
			for j := range tc {
				from[j] = tc[j] - d[j]
			}
			if !ts.Contains(from) {
				continue
			}
			fromProc := b.procRank(from)
			if fromProc == toProc {
				continue // intra-processor dependence: no message
			}
			bytes := topo.MsgBytes(from, tc)
			if bytes <= 0 {
				continue // empty transfer (e.g. an empty tile of a skewed
				// tiling's bounding box): no message, no dependence edge
			}
			msg := b.msgs.alloc()
			*msg = message{
				fromRank: ts.Linearize(from),
				toRank:   ti.rank,
				fromProc: fromProc,
				toProc:   toProc,
				bytes:    bytes,
			}
			if b.trace {
				msg.from = from.Clone()
				msg.to = tc.Clone()
			}
			b.numMsgs++
			fromStep := from[mapDim] - mapLower
			fromSlot := fromProc*b.steps + fromStep
			b.outbox[fromSlot] = append(b.outbox[fromSlot], msg)
			b.inbox[slot] = append(b.inbox[slot], msg)
		}
		return true
	})
}

// inboxAt returns the messages consumed by processor p's step-s tile;
// out-of-range steps (the s+1 lookahead past the last step) yield nil.
func (b *builder) inboxAt(p, s int64) []*message {
	if s < 0 || s >= b.steps {
		return nil
	}
	return b.inbox[p*b.steps+s]
}

// mlabel renders a message-activity label ("prefixFROM->TO", or "<-" with
// the operands swapped) only when tracing.
func (b *builder) mlabel(prefix string, m *message, recv bool) string {
	if !b.trace {
		return ""
	}
	if recv {
		return fmt.Sprintf("%s%v<-%v", prefix, m.to, m.from)
	}
	return fmt.Sprintf("%s%v->%v", prefix, m.from, m.to)
}

// tlabel renders a tile-activity label only when tracing.
func (b *builder) tlabel(prefix string, ti *tileInfo) string {
	if !b.trace {
		return ""
	}
	return fmt.Sprintf("%s%v", prefix, ti.coord)
}

// plabel renders a pause-activity label only when tracing.
func (b *builder) plabel(p, s int64) string {
	if !b.trace {
		return ""
	}
	return fmt.Sprintf("pause p%d s%d", p, s)
}

// pause chains the fault plan's transient node pause (if any) onto
// processor p's CPU program order ahead of its step-s tile work.
func (b *builder) pause(p, s int64, chain func(int64, *simnet.Activity) *simnet.Activity) {
	if b.fp == nil {
		return
	}
	if d := b.fp.Pause(p, s); d > 0 {
		b.pauseCount++
		chain(p, b.eng.NewActivity(b.nodes[p].cpu, d, b.plabel(p, s)))
	}
}

// buildBlocking emits the ProcB structure of Section 5: for every local
// step, blocking receives (CPU copies in), compute, blocking sends (CPU
// copies out). The wire transfer itself rides the comm channels.
//
// Per message: sender CPU does A1+B3 as one "send" op, then B4 occupies the
// sender's tx channel and B1 the receiver's rx channel; the receiver's CPU
// "recv" op (B2+A3) runs when the data has arrived and it is that
// processor's turn in its program order.
func (b *builder) buildBlocking() {
	mch := b.cfg.Machine
	prevCPU := make([]*simnet.Activity, len(b.nodes))

	chain := func(p int64, a *simnet.Activity) *simnet.Activity {
		if prevCPU[p] != nil {
			b.eng.AddDep(prevCPU[p], a)
		}
		prevCPU[p] = a
		return a
	}

	for s := int64(0); s < b.steps; s++ {
		for p := int64(0); p < b.numProcs; p++ {
			slot := p*b.steps + s
			ti := &b.tiles[slot]
			if !ti.exists {
				continue
			}
			cpu := b.nodes[p].cpu
			b.pause(p, s, chain)
			// Blocking receives: copy kernel→user (B2) and prepare the MPI
			// buffer (A3) on the CPU, after the data hit the wire's end.
			for _, m := range b.inbox[slot] {
				recv := b.eng.NewActivity(cpu,
					(mch.FillKernel(m.bytes)+mch.FillMPI(m.bytes))/b.speed(p),
					b.mlabel("recv", m, true))
				chain(p, recv)
				b.eng.AddDep(b.ensureWire(m), recv)
				m.dataReady = recv
			}
			// Compute.
			comp := b.eng.NewActivity(cpu,
				float64(ti.volume)*mch.Tc/b.speed(p),
				b.tlabel("compute", ti))
			chain(p, comp)
			b.computeActs[ti.rank] = comp
			// Blocking sends: fill MPI buffer (A1) + kernel copy (B3) on
			// CPU, then the wire stages.
			for _, m := range b.outbox[slot] {
				send := b.eng.NewActivity(cpu,
					(mch.FillMPI(m.bytes)+mch.FillKernel(m.bytes))/b.speed(p),
					b.mlabel("send", m, false))
				chain(p, send)
				b.eng.AddDep(comp, send)
				b.queueWire(m, send)
			}
		}
	}
	// Consumption edges are implicit: each tile's inbound receive ops
	// precede its compute in the same step's CPU chain, and the inbox is
	// indexed by the consuming step, so no cross-step edges remain.
}

// buildOverlapped emits the ProcNB structure: at local step s the CPU does
// A1 (sends of step s−1 results), A2 (compute), A3 (posting receives for
// step s+1); kernel copies ride the DMA engines (or the CPU when the node
// has none) and the wire rides the comm channels.
func (b *builder) buildOverlapped() {
	mch := b.cfg.Machine
	prevCPU := make([]*simnet.Activity, len(b.nodes))

	chain := func(p int64, a *simnet.Activity) *simnet.Activity {
		if prevCPU[p] != nil {
			b.eng.AddDep(prevCPU[p], a)
		}
		prevCPU[p] = a
		return a
	}

	postRecv := func(p int64, m *message) {
		a := b.eng.NewActivity(b.nodes[p].cpu, mch.FillMPI(m.bytes)/b.speed(p),
			b.mlabel("irecv", m, true))
		chain(p, a)
		m.posted = a
	}

	issueSend := func(p int64, m *message) {
		// A1: CPU fills the MPI send buffer.
		a1 := b.eng.NewActivity(b.nodes[p].cpu, mch.FillMPI(m.bytes)/b.speed(p),
			b.mlabel("isend", m, false))
		chain(p, a1)
		// The data being sent was produced by the 'from' tile's compute.
		if comp := b.computeActs[m.fromRank]; comp != nil {
			b.eng.AddDep(comp, a1)
		}
		// B3: kernel copy, on DMA or CPU depending on capability.
		b3res := b.nodes[p].commOut
		b3dur := mch.FillKernel(m.bytes)
		if b.cfg.Cap == CapNone {
			b3res = b.nodes[p].cpu
			b3dur /= b.speed(p)
		}
		b3 := b.eng.NewActivity(b3res, b3dur, b.mlabel("kcopy-tx", m, false))
		b.eng.AddDep(a1, b3)
		// B4 wire out, then B1 wire in at the receiver (or one shared-bus
		// occupancy).
		b1 := b.wire(m, b3)
		// B2: receiver kernel→MPI-buffer copy; requires the posted receive.
		b2res := b.nodes[m.toProc].commIn
		b2dur := mch.FillKernel(m.bytes)
		if b.cfg.Cap == CapNone {
			b2res = b.nodes[m.toProc].cpu
			b2dur /= b.speed(m.toProc)
		}
		b2 := b.eng.NewActivity(b2res, b2dur, b.mlabel("kcopy-rx", m, true))
		b.eng.AddDep(b1, b2)
		if m.posted != nil {
			b.eng.AddDep(m.posted, b2)
		}
		m.dataReady = b2
		m.sendQueued = true
	}

	for s := int64(0); s < b.steps; s++ {
		for p := int64(0); p < b.numProcs; p++ {
			slot := p*b.steps + s
			ti := &b.tiles[slot]
			if !ti.exists {
				continue
			}
			cpu := b.nodes[p].cpu
			b.pause(p, s, chain)
			// Prologue at s = 0: post receives for this first tile's own
			// inputs (the pseudocode pre-posts them before the loop).
			if s == 0 {
				for _, m := range b.inbox[slot] {
					postRecv(p, m)
				}
			}
			// A1 phase: send the results produced at step s−1.
			if s > 0 {
				for _, m := range b.outbox[slot-1] {
					issueSend(p, m)
				}
			}
			// A2: compute, gated on all inbound data for this tile.
			comp := b.eng.NewActivity(cpu,
				float64(ti.volume)*mch.Tc/b.speed(p),
				b.tlabel("compute", ti))
			chain(p, comp)
			b.computeActs[ti.rank] = comp
			for _, m := range b.inbox[slot] {
				if m.dataReady == nil {
					// Sender has not issued yet (sender's issuing step is
					// after ours in construction order); defer via a
					// placeholder resolved below.
					b.deferConsume(m, comp)
				} else {
					b.eng.AddDep(m.dataReady, comp)
				}
			}
			// A3 phase: post receives for step s+1's inputs.
			for _, m := range b.inboxAt(p, s+1) {
				postRecv(p, m)
			}
		}
	}
	// Epilogue: results of the last local step still have to be sent.
	for p := int64(0); p < b.numProcs; p++ {
		for _, m := range b.outbox[p*b.steps+b.steps-1] {
			if !m.sendQueued {
				issueSend(p, m)
			}
		}
	}
	b.resolveDeferred()
}

// deferred consumption edges: compute activities waiting for messages whose
// send pipeline had not been constructed yet at the time the compute was
// emitted (construction order is by step, then processor; a message's
// sender may come later in the same step's processor sweep).
type pendingEdge struct {
	m    *message
	comp *simnet.Activity
}

func (b *builder) deferConsume(m *message, comp *simnet.Activity) {
	b.pending = append(b.pending, pendingEdge{m: m, comp: comp})
}

func (b *builder) resolveDeferred() {
	ts := b.cfg.Topo.TileSpace
	for _, pe := range b.pending {
		if pe.m.dataReady == nil {
			panic(fmt.Sprintf("sim: message %v->%v never issued",
				ts.Delinearize(pe.m.fromRank), ts.Delinearize(pe.m.toRank)))
		}
		b.eng.AddDep(pe.m.dataReady, pe.comp)
	}
	b.pending = nil
}

// wire emits the transmission stage(s) of a message after predecessor pred
// and returns the arrival activity the receiver side can depend on. On a
// switched network this is B4 (sender tx port) followed by B1 (receiver rx
// port); on a shared bus it is a single occupancy of the one medium.
//
// Under an active fault plan the tx stage becomes a retransmission chain:
// each lost attempt burns its (jittered) wire time on the tx port, then the
// port sits on the retransmission timer (timeout × backoff^attempt) before
// re-occupying itself with the next attempt. Only the final, successful
// attempt feeds the bus/rx stages. The plan caps the attempt count, so the
// chain is finite and the loss model degrades rather than deadlocks.
func (b *builder) wire(m *message, pred *simnet.Activity) *simnet.Activity {
	tx := b.nodes[m.fromProc].commOut
	base := b.cfg.Machine.Wire(m.bytes)
	resends := 0
	if b.fp != nil {
		resends = b.fp.Resends(m.fromRank, m.toRank)
		if resends > 0 {
			b.retransmits += resends
			if b.linkRetx == nil {
				b.linkRetx = make(map[int64]int)
			}
			b.linkRetx[m.fromProc*b.numProcs+m.toProc] += resends
		}
	}
	var b4, prev *simnet.Activity
	for attempt := 0; attempt <= resends; attempt++ {
		dur := base
		if b.fp != nil {
			dur *= b.fp.WireFactor(m.fromRank, m.toRank, attempt)
		}
		a := b.eng.NewActivity(tx, dur, b.mlabel("wire-tx", m, false))
		if prev != nil {
			b.eng.AddDep(prev, a)
		} else {
			if pred != nil {
				b.eng.AddDep(pred, a)
			}
			b4 = a // the first attempt is what the sender CPU op gates
		}
		prev = a
		if attempt < resends {
			// Lost attempt: the sender's NIC waits out the retransmission
			// timeout (with exponential backoff) before trying again.
			to := b.eng.NewActivity(tx, b.fp.RetryDelay(base, attempt),
				b.mlabel("retx-timeout", m, false))
			b.eng.AddDep(a, to)
			prev = to
		}
	}
	last := prev
	if b.fabric != nil {
		// Hierarchical interconnect: the message climbs the sender-side
		// uplinks and descends the receiver-side downlinks between the tx
		// and rx ports. Each hop occupies its link for the unjittered wire
		// time scaled by the link's bandwidth factor, plus the per-hop
		// latency (fault jitter and loss live on the node ports; the fabric
		// is the deterministic part of the path).
		b.hops = b.fabric.Route(m.fromProc, m.toProc, b.hops[:0])
		for _, h := range b.hops {
			a := b.eng.NewActivity(h.Res, base/h.BW+h.Latency,
				b.mlabel("wire-hop", m, false))
			b.eng.AddDep(last, a)
			last = a
		}
	}
	if b.cfg.Network == SharedBus {
		// The shared medium is an extra arbitration stage between the tx
		// and rx ports: every message in the cluster serializes through it.
		w := b.eng.NewActivity(b.bus, b.cfg.Machine.Wire(m.bytes),
			b.mlabel("wire-bus", m, false))
		b.eng.AddDep(last, w)
		last = w
	}
	b1 := b.eng.NewActivity(b.nodes[m.toProc].commIn, b.cfg.Machine.Wire(m.bytes),
		b.mlabel("wire-rx", m, true))
	b.eng.AddDep(last, b1)
	m.wireIn = b1
	m.wireOut = b4
	return b1
}

// ensureWire lazily creates the wire pipeline of a blocking-mode message
// and returns the arrival activity. The sender CPU op is attached later via
// queueWire.
func (b *builder) ensureWire(m *message) *simnet.Activity {
	if m.wireIn != nil {
		return m.wireIn
	}
	return b.wire(m, nil)
}

// queueWire attaches the sender's CPU send op as the predecessor of the
// message's wire pipeline.
func (b *builder) queueWire(m *message, send *simnet.Activity) {
	b.ensureWire(m)
	b.eng.AddDep(send, m.wireOut)
	m.sendQueued = true
}
