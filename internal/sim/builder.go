package sim

import (
	"fmt"

	"repro/internal/ilmath"
	"repro/internal/simnet"
)

// builder constructs the simnet activity graph for one Config.
type builder struct {
	cfg      Config
	eng      *simnet.Engine
	nodes    []node
	bus      *simnet.Resource // the single medium in SharedBus mode
	numTiles int

	// msgs indexes every cross-processor message by "from>to" tile pair.
	msgs map[string]*message
	// inbox[proc][localStep] lists messages consumed by that tile.
	inbox map[int64]map[int64][]*message
	// outbox[proc][localStep] lists messages produced by that tile.
	outbox map[int64]map[int64][]*message
	// computeActs[tileKey] is the A2 activity of each tile.
	computeActs map[string]*simnet.Activity
	// pending holds consumption edges whose producing message had not been
	// issued yet at construction time.
	pending []pendingEdge
}

func newBuilder(cfg Config) *builder {
	return &builder{
		cfg:         cfg,
		eng:         simnet.NewEngine(),
		msgs:        make(map[string]*message),
		inbox:       make(map[int64]map[int64][]*message),
		outbox:      make(map[int64]map[int64][]*message),
		computeActs: make(map[string]*simnet.Activity),
	}
}

// speed returns node p's CPU speed factor (1.0 when homogeneous).
func (b *builder) speed(p int64) float64 {
	if b.cfg.NodeSpeed == nil {
		return 1
	}
	return b.cfg.NodeSpeed(p)
}

func msgKey(from, to ilmath.Vec) string { return from.String() + ">" + to.String() }

func (b *builder) build() error {
	b.eng.KeepTrace(b.cfg.Trace)
	b.makeNodes()
	b.collectMessages()
	switch b.cfg.Mode {
	case Blocking:
		b.buildBlocking()
	case Overlapped:
		b.buildOverlapped()
	}
	return nil
}

// makeNodes creates the per-processor resources according to the hardware
// capability.
func (b *builder) makeNodes() {
	n := b.cfg.Topo.Map.NumProcs()
	b.nodes = make([]node, n)
	if b.cfg.Network == SharedBus {
		b.bus = b.eng.NewResource("bus")
	}
	for p := int64(0); p < n; p++ {
		cpu := b.eng.NewResource(fmt.Sprintf("cpu%d", p))
		var in, out *simnet.Resource
		switch b.cfg.Cap {
		case CapFullDuplex:
			in = b.eng.NewResource(fmt.Sprintf("rx%d", p))
			out = b.eng.NewResource(fmt.Sprintf("tx%d", p))
		default: // CapNone, CapDMA: one half-duplex comm channel
			ch := b.eng.NewResource(fmt.Sprintf("comm%d", p))
			in, out = ch, ch
		}
		b.nodes[p] = node{cpu: cpu, commIn: in, commOut: out}
	}
}

// collectMessages enumerates every tile and every tiled dependence, creating
// a message record for each cross-processor edge and indexing it by the
// sender's and receiver's local steps.
func (b *builder) collectMessages() {
	topo := b.cfg.Topo
	topo.TileSpace.Points(func(tc ilmath.Vec) bool {
		b.numTiles++
		toProc := topo.Map.ProcRank(tc)
		toStep := topo.Map.LocalStep(tc)
		for i := 0; i < b.cfg.Deps.Len(); i++ {
			d := b.cfg.Deps.At(i)
			from := tc.Sub(d)
			if !topo.TileSpace.Contains(from) {
				continue
			}
			fromProc := topo.Map.ProcRank(from)
			if fromProc == toProc {
				continue // intra-processor dependence: no message
			}
			if topo.MsgBytes(from, tc) <= 0 {
				continue // empty transfer (e.g. an empty tile of a skewed
				// tiling's bounding box): no message, no dependence edge
			}
			m := &message{
				from:     from.Clone(),
				to:       tc.Clone(),
				fromProc: fromProc,
				toProc:   toProc,
				bytes:    topo.MsgBytes(from, tc),
			}
			b.msgs[msgKey(m.from, m.to)] = m
			fromStep := topo.Map.LocalStep(m.from)
			addToIndex(b.outbox, fromProc, fromStep, m)
			addToIndex(b.inbox, toProc, toStep, m)
		}
		return true
	})
}

func addToIndex(idx map[int64]map[int64][]*message, proc, step int64, m *message) {
	if idx[proc] == nil {
		idx[proc] = make(map[int64][]*message)
	}
	idx[proc][step] = append(idx[proc][step], m)
}

// buildBlocking emits the ProcB structure of Section 5: for every local
// step, blocking receives (CPU copies in), compute, blocking sends (CPU
// copies out). The wire transfer itself rides the comm channels.
//
// Per message: sender CPU does A1+B3 as one "send" op, then B4 occupies the
// sender's tx channel and B1 the receiver's rx channel; the receiver's CPU
// "recv" op (B2+A3) runs when the data has arrived and it is that
// processor's turn in its program order.
func (b *builder) buildBlocking() {
	mch := b.cfg.Machine
	topo := b.cfg.Topo
	steps := topo.Map.TilesPerProc()
	prevCPU := make([]*simnet.Activity, len(b.nodes))

	chain := func(p int64, a *simnet.Activity) *simnet.Activity {
		if prevCPU[p] != nil {
			b.eng.AddDep(prevCPU[p], a)
		}
		prevCPU[p] = a
		return a
	}

	for s := int64(0); s < steps; s++ {
		b.forEachProc(func(p int64, proc ilmath.Vec) {
			tc := topo.Map.TileCoord(proc, s)
			if !topo.TileSpace.Contains(tc) {
				return
			}
			cpu := b.nodes[p].cpu
			// Blocking receives: copy kernel→user (B2) and prepare the MPI
			// buffer (A3) on the CPU, after the data hit the wire's end.
			for _, m := range b.inbox[p][s] {
				recv := b.eng.NewActivity(cpu,
					(mch.FillKernel(m.bytes)+mch.FillMPI(m.bytes))/b.speed(p),
					fmt.Sprintf("recv%v<-%v", m.to, m.from))
				chain(p, recv)
				b.eng.AddDep(b.ensureWire(m), recv)
				m.dataReady = recv
			}
			// Compute.
			comp := b.eng.NewActivity(cpu,
				float64(topo.TileVolume(tc))*mch.Tc/b.speed(p),
				fmt.Sprintf("compute%v", tc))
			chain(p, comp)
			b.computeActs[tc.String()] = comp
			// Blocking sends: fill MPI buffer (A1) + kernel copy (B3) on
			// CPU, then the wire stages.
			for _, m := range b.outbox[p][s] {
				send := b.eng.NewActivity(cpu,
					(mch.FillMPI(m.bytes)+mch.FillKernel(m.bytes))/b.speed(p),
					fmt.Sprintf("send%v->%v", m.from, m.to))
				chain(p, send)
				b.eng.AddDep(comp, send)
				b.queueWire(m, send)
			}
		})
	}
	// Consumption edges are implicit: each tile's inbound receive ops
	// precede its compute in the same step's CPU chain, and the inbox is
	// indexed by the consuming step, so no cross-step edges remain.
}

// buildOverlapped emits the ProcNB structure: at local step s the CPU does
// A1 (sends of step s−1 results), A2 (compute), A3 (posting receives for
// step s+1); kernel copies ride the DMA engines (or the CPU when the node
// has none) and the wire rides the comm channels.
func (b *builder) buildOverlapped() {
	mch := b.cfg.Machine
	topo := b.cfg.Topo
	steps := topo.Map.TilesPerProc()
	prevCPU := make([]*simnet.Activity, len(b.nodes))
	// recvPosted[key of message] = the A3 activity that posted its buffer.
	recvPosted := make(map[string]*simnet.Activity)

	chain := func(p int64, a *simnet.Activity) *simnet.Activity {
		if prevCPU[p] != nil {
			b.eng.AddDep(prevCPU[p], a)
		}
		prevCPU[p] = a
		return a
	}

	postRecv := func(p int64, m *message) {
		a := b.eng.NewActivity(b.nodes[p].cpu, mch.FillMPI(m.bytes)/b.speed(p),
			fmt.Sprintf("irecv%v<-%v", m.to, m.from))
		chain(p, a)
		recvPosted[msgKey(m.from, m.to)] = a
	}

	issueSend := func(p int64, m *message) {
		// A1: CPU fills the MPI send buffer.
		a1 := b.eng.NewActivity(b.nodes[p].cpu, mch.FillMPI(m.bytes)/b.speed(p),
			fmt.Sprintf("isend%v->%v", m.from, m.to))
		chain(p, a1)
		// The data being sent was produced by the 'from' tile's compute.
		if comp := b.computeActs[m.from.String()]; comp != nil {
			b.eng.AddDep(comp, a1)
		}
		// B3: kernel copy, on DMA or CPU depending on capability.
		b3res := b.nodes[p].commOut
		b3dur := mch.FillKernel(m.bytes)
		if b.cfg.Cap == CapNone {
			b3res = b.nodes[p].cpu
			b3dur /= b.speed(p)
		}
		b3 := b.eng.NewActivity(b3res, b3dur,
			fmt.Sprintf("kcopy-tx%v->%v", m.from, m.to))
		b.eng.AddDep(a1, b3)
		// B4 wire out, then B1 wire in at the receiver (or one shared-bus
		// occupancy).
		b1 := b.wire(m, b3)
		// B2: receiver kernel→MPI-buffer copy; requires the posted receive.
		b2res := b.nodes[m.toProc].commIn
		b2dur := mch.FillKernel(m.bytes)
		if b.cfg.Cap == CapNone {
			b2res = b.nodes[m.toProc].cpu
			b2dur /= b.speed(m.toProc)
		}
		b2 := b.eng.NewActivity(b2res, b2dur,
			fmt.Sprintf("kcopy-rx%v<-%v", m.to, m.from))
		b.eng.AddDep(b1, b2)
		if post := recvPosted[msgKey(m.from, m.to)]; post != nil {
			b.eng.AddDep(post, b2)
		}
		m.dataReady = b2
		m.sendQueued = true
	}

	for s := int64(0); s < steps; s++ {
		b.forEachProc(func(p int64, proc ilmath.Vec) {
			tc := topo.Map.TileCoord(proc, s)
			if !topo.TileSpace.Contains(tc) {
				return
			}
			cpu := b.nodes[p].cpu
			// Prologue at s = 0: post receives for this first tile's own
			// inputs (the pseudocode pre-posts them before the loop).
			if s == 0 {
				for _, m := range b.inbox[p][0] {
					postRecv(p, m)
				}
			}
			// A1 phase: send the results produced at step s−1.
			if s > 0 {
				for _, m := range b.outbox[p][s-1] {
					issueSend(p, m)
				}
			}
			// A2: compute, gated on all inbound data for this tile.
			comp := b.eng.NewActivity(cpu,
				float64(topo.TileVolume(tc))*mch.Tc/b.speed(p),
				fmt.Sprintf("compute%v", tc))
			chain(p, comp)
			b.computeActs[tc.String()] = comp
			for _, m := range b.inbox[p][s] {
				if m.dataReady == nil {
					// Sender has not issued yet (sender's issuing step is
					// after ours in construction order); defer via a
					// placeholder resolved below.
					b.deferConsume(m, comp)
				} else {
					b.eng.AddDep(m.dataReady, comp)
				}
			}
			// A3 phase: post receives for step s+1's inputs.
			for _, m := range b.inbox[p][s+1] {
				postRecv(p, m)
			}
		})
	}
	// Epilogue: results of the last local step still have to be sent.
	b.forEachProc(func(p int64, proc ilmath.Vec) {
		for _, m := range b.outbox[p][steps-1] {
			if !m.sendQueued {
				issueSend(p, m)
			}
		}
	})
	b.resolveDeferred()
}

// deferred consumption edges: compute activities waiting for messages whose
// send pipeline had not been constructed yet at the time the compute was
// emitted (construction order is by step, then processor; a message's
// sender may come later in the same step's processor sweep).
type pendingEdge struct {
	m    *message
	comp *simnet.Activity
}

func (b *builder) deferConsume(m *message, comp *simnet.Activity) {
	b.pending = append(b.pending, pendingEdge{m: m, comp: comp})
}

func (b *builder) resolveDeferred() {
	for _, pe := range b.pending {
		if pe.m.dataReady == nil {
			panic(fmt.Sprintf("sim: message %v->%v never issued", pe.m.from, pe.m.to))
		}
		b.eng.AddDep(pe.m.dataReady, pe.comp)
	}
	b.pending = nil
}

// wire emits the transmission stage(s) of a message after predecessor pred
// and returns the arrival activity the receiver side can depend on. On a
// switched network this is B4 (sender tx port) followed by B1 (receiver rx
// port); on a shared bus it is a single occupancy of the one medium.
func (b *builder) wire(m *message, pred *simnet.Activity) *simnet.Activity {
	b4 := b.eng.NewActivity(b.nodes[m.fromProc].commOut, b.cfg.Machine.Wire(m.bytes),
		fmt.Sprintf("wire-tx%v->%v", m.from, m.to))
	if pred != nil {
		b.eng.AddDep(pred, b4)
	}
	last := b4
	if b.cfg.Network == SharedBus {
		// The shared medium is an extra arbitration stage between the tx
		// and rx ports: every message in the cluster serializes through it.
		w := b.eng.NewActivity(b.bus, b.cfg.Machine.Wire(m.bytes),
			fmt.Sprintf("wire-bus%v->%v", m.from, m.to))
		b.eng.AddDep(last, w)
		last = w
	}
	b1 := b.eng.NewActivity(b.nodes[m.toProc].commIn, b.cfg.Machine.Wire(m.bytes),
		fmt.Sprintf("wire-rx%v<-%v", m.to, m.from))
	b.eng.AddDep(last, b1)
	m.wireIn = b1
	m.wireOut = b4
	return b1
}

// ensureWire lazily creates the wire pipeline of a blocking-mode message
// and returns the arrival activity. The sender CPU op is attached later via
// queueWire.
func (b *builder) ensureWire(m *message) *simnet.Activity {
	if m.wireIn != nil {
		return m.wireIn
	}
	return b.wire(m, nil)
}

// queueWire attaches the sender's CPU send op as the predecessor of the
// message's wire pipeline.
func (b *builder) queueWire(m *message, send *simnet.Activity) {
	b.ensureWire(m)
	b.eng.AddDep(send, m.wireOut)
	m.sendQueued = true
}

// forEachProc visits processors in rank order.
func (b *builder) forEachProc(f func(rank int64, proc ilmath.Vec)) {
	ps := b.cfg.Topo.Map.ProcSpace
	ps.Points(func(pc ilmath.Vec) bool {
		f(ps.Linearize(pc), pc.Clone())
		return true
	})
}
