package sim

import (
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/space"
)

// testMachine returns a machine with simple round numbers for hand
// verification.
func testMachine() model.Machine {
	return model.Machine{
		Tc:           1, // 1 s per point: compute dominates visibly
		Ts:           2,
		Tt:           0.001,
		BytesPerElem: 4,
		FillMPIBase:  0.5, FillMPIPerByte: 0,
		FillKernelBase: 0.25, FillKernelPerByte: 0,
	}
}

// smallGrid is a 4x4x8-point space on a 2x2 processor grid.
func smallGrid() model.Grid3D {
	return model.Grid3D{I: 4, J: 4, K: 8, PI: 2, PJ: 2}
}

func TestGridTopologyValidation(t *testing.T) {
	c := smallGrid()
	if _, err := GridTopology(c, 0, 4); err == nil {
		t.Error("zero tile height accepted")
	}
	if _, err := GridTopology(c, 9, 4); err == nil {
		t.Error("tile height > K accepted")
	}
	if _, err := GridTopology(c, 2, 0); err == nil {
		t.Error("zero element size accepted")
	}
	if _, err := GridTopology(model.Grid3D{I: 3, J: 4, K: 8, PI: 2, PJ: 2}, 2, 4); err == nil {
		t.Error("non-dividing processor grid accepted")
	}
}

func TestGridTopologyGeometry(t *testing.T) {
	topo, err := GridTopology(smallGrid(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.TileSpace.Volume() != 2*2*4 {
		t.Errorf("tile space volume = %d, want 16", topo.TileSpace.Volume())
	}
	if topo.Map.NumProcs() != 4 {
		t.Errorf("procs = %d, want 4", topo.Map.NumProcs())
	}
	// Interior tile: 2x2x2 = 8 points.
	if g := topo.TileVolume(ilmath.V(0, 0, 0)); g != 8 {
		t.Errorf("tile volume = %d, want 8", g)
	}
	// Face bytes: j×k face = 2·2·4 = 16 bytes.
	if bts := topo.MsgBytes(ilmath.V(0, 0, 0), ilmath.V(1, 0, 0)); bts != 16 {
		t.Errorf("i-face bytes = %d, want 16", bts)
	}
	if bts := topo.MsgBytes(ilmath.V(0, 0, 0), ilmath.V(0, 1, 0)); bts != 16 {
		t.Errorf("j-face bytes = %d, want 16", bts)
	}
}

func TestGridTopologyPartialLastTile(t *testing.T) {
	// K = 8, v = 3: tiles of height 3, 3, 2.
	topo, err := GridTopology(smallGrid(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.TileSpace.Extent(2) != 3 {
		t.Fatalf("k tiles = %d, want 3", topo.TileSpace.Extent(2))
	}
	if g := topo.TileVolume(ilmath.V(0, 0, 0)); g != 2*2*3 {
		t.Errorf("full tile volume = %d", g)
	}
	if g := topo.TileVolume(ilmath.V(0, 0, 2)); g != 2*2*2 {
		t.Errorf("partial tile volume = %d, want 8", g)
	}
	// Total volume conserved.
	var total int64
	topo.TileSpace.Points(func(tc ilmath.Vec) bool {
		total += topo.TileVolume(tc)
		return true
	})
	if total != 4*4*8 {
		t.Errorf("total tile volume = %d, want 128", total)
	}
}

func TestSimulateSingleProcessorNoComm(t *testing.T) {
	// 1x1 processor grid: no messages; makespan = total compute.
	c := model.Grid3D{I: 2, J: 2, K: 4, PI: 1, PJ: 1}
	m := testMachine()
	for _, mode := range []Mode{Blocking, Overlapped} {
		r, err := SimulateGrid(c, 2, m, mode, CapDMA)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumMessages != 0 {
			t.Errorf("%v: %d messages on single processor", mode, r.NumMessages)
		}
		want := float64(2*2*4) * m.Tc
		if r.Makespan != want {
			t.Errorf("%v: makespan = %g, want %g", mode, r.Makespan, want)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := Config{}
	if _, err := Simulate(cfg); err == nil {
		t.Error("empty config accepted")
	}
	good, err := GridConfig(smallGrid(), 2, testMachine(), Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Mode = Mode(99)
	if _, err := Simulate(bad); err == nil {
		t.Error("bad mode accepted")
	}
	bad = good
	bad.Cap = Capability(99)
	if _, err := Simulate(bad); err == nil {
		t.Error("bad capability accepted")
	}
	bad = good
	bad.Deps = deps.MustNewSet(ilmath.V(2, 0, 0))
	if _, err := Simulate(bad); err == nil {
		t.Error("non-0/1 tiled dependence accepted")
	}
	bad = good
	bad.Machine.Tc = -1
	if _, err := Simulate(bad); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestBlockingMatchesHandComputation(t *testing.T) {
	// 1x2 processor grid (PI=1, PJ=2), K=2, v=2: one tile per processor.
	// P0 owns tile (0,0,0); P1 owns (0,1,0) and needs P0's j-face.
	// Machine: compute = 8 points ·1 s; fills: MPI 0.5 + kernel 0.25 per
	// message; wire = 16 B · 0.001 = 0.016 per side.
	// Timeline: P0 computes [0,8], send copy [8, 8.75], wire tx
	// [8.75, 8.766], wire rx [8.766, 8.782], P1 recv copy (after wire)
	// [8.782, 9.532], P1 compute [9.532, 17.532].
	c := model.Grid3D{I: 2, J: 4, K: 2, PI: 1, PJ: 2}
	m := testMachine()
	r, err := SimulateGrid(c, 2, m, Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumMessages != 1 {
		t.Fatalf("messages = %d, want 1", r.NumMessages)
	}
	want := 8.0 + 0.75 + 0.016 + 0.016 + 0.75 + 8.0
	if !almost(r.Makespan, want) {
		t.Errorf("makespan = %g, want %g", r.Makespan, want)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestOverlappedPipelinesAcrossSteps(t *testing.T) {
	// Single processor pair in j, many k tiles: the overlapped schedule
	// must hide the communication behind compute, approaching
	// makespan ≈ offset + steps·computePerTile when compute dominates.
	c := model.Grid3D{I: 2, J: 4, K: 32, PI: 1, PJ: 2}
	m := testMachine()
	ov, err := SimulateGrid(c, 2, m, Overlapped, CapFullDuplex)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := SimulateGrid(c, 2, m, Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Makespan >= bl.Makespan {
		t.Errorf("overlapped %g not faster than blocking %g", ov.Makespan, bl.Makespan)
	}
	// Lower bound: one processor's pure compute work.
	minWork := float64(2 * 2 * 32) // points per processor · 1 s
	if ov.Makespan < minWork {
		t.Errorf("makespan %g below single-processor compute %g: impossible", ov.Makespan, minWork)
	}
}

func TestOverlapBeatsBlockingOnPaperGrid(t *testing.T) {
	// A scaled-down version of the paper's experiment i: overlap must win
	// and CPU utilization must rise.
	c := model.Grid3D{I: 8, J: 8, K: 256, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	v := int64(16)
	bl, err := SimulateGrid(c, v, m, Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := SimulateGrid(c, v, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Makespan >= bl.Makespan {
		t.Errorf("overlapped %g >= blocking %g", ov.Makespan, bl.Makespan)
	}
	// Utilization is time-busy/makespan; blocking CPUs are "busy" doing
	// copies too, so only sanity bounds are meaningful here.
	for name, u := range map[string]float64{"overlap": ov.CPUUtilization, "blocking": bl.CPUUtilization} {
		if u <= 0 || u > 1 {
			t.Errorf("%s CPU utilization %g out of (0,1]", name, u)
		}
	}
}

func TestCapabilityOrdering(t *testing.T) {
	// More overlap capability can never hurt: none >= dma >= full-duplex
	// in makespan.
	c := model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	v := int64(8)
	makespan := map[Capability]float64{}
	for _, cap := range []Capability{CapNone, CapDMA, CapFullDuplex} {
		r, err := SimulateGrid(c, v, m, Overlapped, cap)
		if err != nil {
			t.Fatal(err)
		}
		makespan[cap] = r.Makespan
	}
	if makespan[CapNone] < makespan[CapDMA] || makespan[CapDMA] < makespan[CapFullDuplex] {
		t.Errorf("capability ordering violated: none=%g dma=%g duplex=%g",
			makespan[CapNone], makespan[CapDMA], makespan[CapFullDuplex])
	}
}

func TestDeterministicRepeats(t *testing.T) {
	c := smallGrid()
	m := model.PentiumCluster()
	r1, err := SimulateGrid(c, 2, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateGrid(c, 2, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("non-deterministic: %g vs %g", r1.Makespan, r2.Makespan)
	}
}

func TestMessageCountMatchesTopology(t *testing.T) {
	// 2x2 processor grid, kt tiles each: cross messages = per k-tile,
	// i-direction: 1 proc boundary × 2 j-procs; j-direction likewise.
	c := smallGrid() // 2x2 procs
	r, err := SimulateGrid(c, 2, testMachine(), Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	kt := int64(4)
	want := int(kt * (2 + 2)) // (PI-1)*PJ + PI*(PJ-1) = 2+2 per k layer
	if r.NumMessages != want {
		t.Errorf("messages = %d, want %d", r.NumMessages, want)
	}
	if r.NumTiles != 16 {
		t.Errorf("tiles = %d, want 16", r.NumTiles)
	}
}

// TestWavefrontLowerBound: the makespan can never beat the critical path
// lower bound of the dependence chain: the last tile transitively depends on
// (PI-1)+(PJ-1)+(KT-1) predecessors' computes.
func TestWavefrontLowerBound(t *testing.T) {
	c := model.Grid3D{I: 8, J: 8, K: 16, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	v := int64(4)
	g := float64(c.TileVolume(v)) * m.Tc
	chainLen := float64((c.PI - 1) + (c.PJ - 1) + (c.KTiles(v) - 1) + 1)
	lower := chainLen * g
	for _, mode := range []Mode{Blocking, Overlapped} {
		r, err := SimulateGrid(c, v, m, mode, CapFullDuplex)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < lower {
			t.Errorf("%v makespan %g below dependence-chain lower bound %g", mode, r.Makespan, lower)
		}
	}
}

// TestGenericTopology2D drives Simulate directly with a 2-D tiled space
// (the Example 1 shape) including a diagonal tiled dependence, checking the
// builder handles non-axis deps and 2-D mappings.
func TestGenericTopology2D(t *testing.T) {
	ts := space.MustRect(6, 3)
	m, err := schedule.NewMapping(ts, 0) // map along dim 0 (largest)
	if err != nil {
		t.Fatal(err)
	}
	topo := Topology{
		TileSpace:  ts,
		Map:        m,
		TileVolume: func(tc ilmath.Vec) int64 { return 100 },
		MsgBytes:   func(from, to ilmath.Vec) int64 { return 80 },
	}
	cfg := Config{
		Topo:    topo,
		Deps:    deps.MustNewSet(ilmath.V(1, 0), ilmath.V(0, 1), ilmath.V(1, 1)),
		Machine: model.Example1Machine(),
		Mode:    Overlapped,
		Cap:     CapDMA,
	}
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumTiles != 18 {
		t.Errorf("tiles = %d, want 18", r.NumTiles)
	}
	// Cross messages: (0,1) deps: 6·2 = 12; (1,1) deps: 5·2 = 10. The (1,0)
	// deps are intra-processor.
	if r.NumMessages != 22 {
		t.Errorf("messages = %d, want 22", r.NumMessages)
	}
	if r.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	// Also runs under blocking mode without deadlock.
	cfg.Mode = Blocking
	if _, err := Simulate(cfg); err != nil {
		t.Errorf("blocking with diagonal deps: %v", err)
	}
}

func TestTraceProducesEntries(t *testing.T) {
	cfg, err := GridConfig(smallGrid(), 2, testMachine(), Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = true
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Error("no trace entries despite Trace=true")
	}
	// Trace must include compute, isend, irecv, wire and kcopy activities.
	kinds := map[string]bool{}
	for _, e := range r.Trace {
		for _, k := range []string{"compute", "isend", "irecv", "wire", "kcopy"} {
			if len(e.Label) >= len(k) && e.Label[:len(k)] == k {
				kinds[k] = true
			}
		}
	}
	for _, k := range []string{"compute", "isend", "irecv", "wire", "kcopy"} {
		if !kinds[k] {
			t.Errorf("trace missing %q activities", k)
		}
	}
}

func TestModeCapabilityStrings(t *testing.T) {
	if Blocking.String() != "blocking" || Overlapped.String() != "overlapped" {
		t.Error("mode strings wrong")
	}
	if CapNone.String() != "no-dma" || CapDMA.String() != "dma" || CapFullDuplex.String() != "full-duplex" {
		t.Error("capability strings wrong")
	}
	if Mode(9).String() == "" || Capability(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestSharedBusSlowerOrEqual(t *testing.T) {
	// Bus contention can only hurt: shared-bus makespan >= switched, for
	// both schedules.
	c := model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	for _, mode := range []Mode{Blocking, Overlapped} {
		sw, err := SimulateGridNet(c, 8, m, mode, CapDMA, Switched)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := SimulateGridNet(c, 8, m, mode, CapDMA, SharedBus)
		if err != nil {
			t.Fatal(err)
		}
		if sb.Makespan < sw.Makespan {
			t.Errorf("%v: shared bus %g faster than switched %g", mode, sb.Makespan, sw.Makespan)
		}
	}
}

func TestSharedBusSingleMessageExtraStage(t *testing.T) {
	// With a single message in flight the bus adds exactly one extra wire
	// stage (the medium arbitration) to the end-to-end path.
	c := model.Grid3D{I: 2, J: 4, K: 2, PI: 1, PJ: 2}
	m := testMachine()
	sw, err := SimulateGridNet(c, 2, m, Blocking, CapNone, Switched)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SimulateGridNet(c, 2, m, Blocking, CapNone, SharedBus)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sb.Makespan - sw.Makespan; !almost(diff, m.Wire(16)) {
		t.Errorf("bus - switched = %g, want one wire stage %g", diff, m.Wire(16))
	}
}

func TestSharedBusErodesOverlapGain(t *testing.T) {
	// With many processors contending for one medium, the overlapping
	// schedule's relative advantage shrinks versus the switched network.
	c := model.Grid3D{I: 16, J: 16, K: 256, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	m.Tt *= 10 // a slow shared medium (the paper's 10 Mbps Ethernet era)
	v := int64(16)
	gain := func(net Network) float64 {
		ov, err := SimulateGridNet(c, v, m, Overlapped, CapDMA, net)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := SimulateGridNet(c, v, m, Blocking, CapNone, net)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - ov.Makespan/bl.Makespan
	}
	if gSwitched, gBus := gain(Switched), gain(SharedBus); gBus >= gSwitched {
		t.Errorf("bus gain %.2f not below switched gain %.2f", gBus, gSwitched)
	}
}

func TestNetworkValidation(t *testing.T) {
	cfg, err := GridConfig(smallGrid(), 2, testMachine(), Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Network = Network(9)
	if _, err := Simulate(cfg); err == nil {
		t.Error("bad network model accepted")
	}
	if Switched.String() != "switched" || SharedBus.String() != "shared-bus" {
		t.Error("network strings wrong")
	}
	if Network(9).String() == "" {
		t.Error("unknown network string empty")
	}
}

func TestCritPathPopulatedWithTrace(t *testing.T) {
	cfg, err := GridConfig(smallGrid(), 2, testMachine(), Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = true
	r, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CritPath) == 0 {
		t.Fatal("no critical path despite Trace=true")
	}
	if last := r.CritPath[len(r.CritPath)-1]; last.End != r.Makespan {
		t.Errorf("critical path ends at %g, makespan %g", last.End, r.Makespan)
	}
	// Without trace, no critical path is extracted.
	cfg.Trace = false
	r, err = Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.CritPath != nil {
		t.Error("critical path populated without Trace")
	}
}

func TestNodeSpeedValidation(t *testing.T) {
	cfg, err := GridConfig(smallGrid(), 2, testMachine(), Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeSpeed = func(rank int64) float64 { return 0 }
	if _, err := Simulate(cfg); err == nil {
		t.Error("zero node speed accepted")
	}
}

func TestStragglerSlowsCluster(t *testing.T) {
	// One node at half speed: the wavefront pipeline must slow down, and
	// by less than 2x (only that node's work is slower).
	c := model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	base, err := SimulateGrid(c, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := GridConfig(c, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeSpeed = func(rank int64) float64 {
		if rank == 5 {
			return 0.5
		}
		return 1
	}
	slow, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= base.Makespan {
		t.Errorf("straggler did not slow the cluster: %g vs %g", slow.Makespan, base.Makespan)
	}
	if slow.Makespan >= 2*base.Makespan {
		t.Errorf("one straggler doubled the makespan: %g vs %g", slow.Makespan, base.Makespan)
	}
}

func TestUniformSpeedScalesComputeBoundRun(t *testing.T) {
	// All nodes at half speed in a compute-bound setting: makespan scales
	// by close to 2x (communication stages are unscaled, so slightly less
	// on the comm-influenced parts).
	c := model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4}
	m := testMachine() // compute dominates strongly (1 s per point)
	base, err := SimulateGrid(c, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := GridConfig(c, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NodeSpeed = func(int64) float64 { return 0.5 }
	slow, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow.Makespan / base.Makespan
	if ratio < 1.9 || ratio > 2.05 {
		t.Errorf("uniform half speed ratio = %g, want ≈2", ratio)
	}
}
