// Package sim executes tiled schedules on the simnet discrete-event cluster
// simulator, reproducing the paper's Section 5 experiments deterministically.
//
// It builds, for every tile, the phase decomposition of Fig. 4:
//
//	A1 = T_fill_MPI_buffer(send)    — CPU, non-overlappable
//	A2 = T_compute                  — CPU
//	A3 = T_fill_MPI_buffer(receive) — CPU, non-overlappable
//	B1 = T_receive (wire, rx side)  — NIC in
//	B2 = T_fill_kernel_buffer(recv) — DMA (or CPU without DMA)
//	B3 = T_fill_kernel_buffer(send) — DMA (or CPU without DMA)
//	B4 = T_transmit (wire, tx side) — NIC out
//
// and wires them into an activity DAG according to either the blocking
// receive→compute→send triplet of Section 3 (ProcB) or the pipelined
// send/compute/receive overlap of Section 4 (ProcNB).
package sim
