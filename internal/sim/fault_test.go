package sim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
)

var faultTestGrid = model.Grid3D{I: 8, J: 8, K: 512, PI: 2, PJ: 2}

func faultedConfig(t *testing.T, mode Mode, cap Capability, fp fault.Plan) Config {
	t.Helper()
	cfg, err := GridConfig(faultTestGrid, 64, model.PentiumCluster(), mode, cap)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Active() {
		cfg.Fault = &fp
	}
	return cfg
}

// TestFaultReplayable: the same (seed, intensity) must give bit-identical
// makespans across fresh simulators and across Engine.Reset reuse, with an
// unrelated simulation interleaved on the same engine.
func TestFaultReplayable(t *testing.T) {
	fp := fault.Default(17, 0.8)
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg := faultedConfig(t, mode, CapDMA, fp)
		fresh, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm := NewSimulator()
		first, err := sm.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave a different (fault-free) simulation, then replay.
		if _, err := sm.Simulate(faultedConfig(t, mode, CapDMA, fault.Plan{})); err != nil {
			t.Fatal(err)
		}
		replay, err := sm.Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first.Makespan != fresh.Makespan || replay.Makespan != fresh.Makespan {
			t.Errorf("%v: makespans diverge: fresh %v, reused-engine %v, after-reset %v",
				mode, fresh.Makespan, first.Makespan, replay.Makespan)
		}
	}
}

// TestFaultZeroIntensityIdentical: a zero-intensity plan must leave the
// whole Result bit-identical to the fault-free simulation.
func TestFaultZeroIntensityIdentical(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		for _, cap := range []Capability{CapNone, CapDMA, CapFullDuplex} {
			base, err := Simulate(faultedConfig(t, mode, cap, fault.Plan{}))
			if err != nil {
				t.Fatal(err)
			}
			zero := fault.Default(99, 0)
			cfg := faultedConfig(t, mode, cap, zero)
			cfg.Fault = &zero // force the plan through even though inactive
			got, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != base.Makespan ||
				got.CPUUtilization != base.CPUUtilization ||
				got.NumTiles != base.NumTiles ||
				got.NumMessages != base.NumMessages {
				t.Errorf("%v/%v: zero-intensity plan changed the result: %+v vs %+v",
					mode, cap, got, base)
			}
		}
	}
}

// TestFaultMakespanNotBelowBaseline: faults only add work, so a faulted
// makespan can never beat the fault-free one.
func TestFaultMakespanNotBelowBaseline(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		base, err := Simulate(faultedConfig(t, mode, CapDMA, fault.Plan{}))
		if err != nil {
			t.Fatal(err)
		}
		for _, intensity := range []float64{0.25, 0.5, 1} {
			r, err := Simulate(faultedConfig(t, mode, CapDMA, fault.Default(3, intensity)))
			if err != nil {
				t.Fatal(err)
			}
			if r.Makespan < base.Makespan {
				t.Errorf("%v intensity %g: faulted makespan %g below fault-free %g",
					mode, intensity, r.Makespan, base.Makespan)
			}
		}
	}
}

// TestFaultRetransmitsGrowGraph: message loss must materialize as extra
// retransmission/timeout activities in the DAG.
func TestFaultRetransmitsGrowGraph(t *testing.T) {
	base, msgs, err := BuildStats(faultedConfig(t, Overlapped, CapDMA, fault.Plan{}))
	if err != nil {
		t.Fatal(err)
	}
	lossy := fault.Default(5, 1)
	lossy.LossProb = 0.5 // every other attempt lost on average
	faulted, fmsgs, err := BuildStats(faultedConfig(t, Overlapped, CapDMA, lossy))
	if err != nil {
		t.Fatal(err)
	}
	if fmsgs != msgs {
		t.Errorf("message count changed under faults: %d vs %d", fmsgs, msgs)
	}
	if faulted <= base {
		t.Errorf("lossy plan built %d activities, want more than the fault-free %d", faulted, base)
	}
}

// TestFaultCachedMatchesDirect: the memo cache keyed on the plan must hand
// back the same result as a direct simulation, and an inactive plan must
// share its entry with the plain path.
func TestFaultCachedMatchesDirect(t *testing.T) {
	c := NewCache()
	m := model.PentiumCluster()
	fp := fault.Default(23, 0.5)
	direct, err := SimulateGridFault(faultTestGrid, 64, m, Overlapped, CapDMA, Switched, fp)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := c.SimulateGridFault(faultTestGrid, 64, m, Overlapped, CapDMA, Switched, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Makespan != direct.Makespan {
		t.Errorf("cached %v != direct %v", cached.Makespan, direct.Makespan)
	}
	if _, err := c.SimulateGrid(faultTestGrid, 64, m, Overlapped, CapDMA); err != nil {
		t.Fatal(err)
	}
	n := c.Len()
	// An inactive plan canonicalizes onto the plain entry: no new key.
	if _, err := c.SimulateGridFault(faultTestGrid, 64, m, Overlapped, CapDMA, Switched, fault.Default(23, 0)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != n {
		t.Errorf("inactive plan created a new cache entry (%d -> %d)", n, c.Len())
	}
}
