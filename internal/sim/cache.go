package sim

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/topo"
)

// cacheKey identifies one grid simulation point. Every field is a plain
// comparable value (fault.Plan included), so two requests for the same
// point — e.g. a ladder rung revisited by the refinement pass of an optimum
// search, or a sweep height re-simulated by a later Optimum call — collapse
// onto one entry.
type cacheKey struct {
	grid         model.Grid3D
	v            int64
	machine      model.Machine
	mode         Mode
	cap          Capability
	net          Network
	interconnect topo.Spec
	fault        fault.Plan
	metrics      bool
	trace        bool
}

// shardIndex hashes the cheap discriminating key fields (FNV-1a over the
// grid shape, height, and flags) to pick a shard. Machine and fault-plan
// fields are left out of the hash on purpose: same-point-different-machine
// requests merely share a shard, never an entry, and the grid/height fields
// are what actually vary inside one serving process.
func (k *cacheKey) shardIndex() int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mix(uint64(k.grid.I))
	mix(uint64(k.grid.J))
	mix(uint64(k.grid.K))
	mix(uint64(k.grid.PI))
	mix(uint64(k.grid.PJ))
	mix(uint64(k.v))
	mix(uint64(k.mode)<<8 | uint64(k.cap)<<4 | uint64(k.net)<<2)
	if lv := k.interconnect.Levels; lv > 0 {
		mix(uint64(lv)<<16 | uint64(k.interconnect.L[0].Radix))
	}
	if k.metrics {
		mix(1)
	}
	if k.trace {
		mix(2)
	}
	return int(h % cacheShards)
}

// cacheShards is the fixed shard count: enough to keep GOMAXPROCS sweep
// workers off each other's locks, small enough that per-shard overhead is
// noise.
const cacheShards = 16

// cacheEntry is one stored simulation result on its shard's LRU list.
type cacheEntry struct {
	key        cacheKey
	r          Result
	stamp      uint64      // global recency clock value at last use
	prev, next *cacheEntry // intrusive LRU links; head side is most recent
}

// inflightCall coalesces concurrent misses on one key: the first caller
// (the leader) runs the engine, everyone else waits on done and shares the
// leader's result. The leader always runs its evaluation to completion —
// even if its own context is cancelled mid-run — so waiters never observe a
// half-finished entry and the cache stays consistent under cancellation.
type inflightCall struct {
	done chan struct{}
	r    Result
	err  error
}

// cacheShard is one lock domain of the cache: a result map, the shard-local
// LRU order of those results, and the in-flight calls keyed there.
type cacheShard struct {
	mu       sync.Mutex
	m        map[cacheKey]*cacheEntry
	inflight map[cacheKey]*inflightCall
	lru      cacheEntry // sentinel ring: lru.next is most recent
}

func (s *cacheShard) init() {
	s.m = make(map[cacheKey]*cacheEntry)
	s.inflight = make(map[cacheKey]*inflightCall)
	s.lru.prev, s.lru.next = &s.lru, &s.lru
}

// pushFront links e as the shard's most recently used entry.
func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = &s.lru
	e.next = s.lru.next
	e.prev.next = e
	e.next.prev = e
}

// unlink removes e from the LRU ring.
func (s *cacheShard) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// touch moves an existing entry to the front of the shard's LRU ring.
func (s *cacheShard) touch(e *cacheEntry) {
	s.unlink(e)
	s.pushFront(e)
}

// Cache memoizes grid simulation results keyed on (grid, V, machine, mode,
// capability, network, interconnect hierarchy, fault plan, metrics/trace
// flags). The simulator is
// deterministic, so a cached Result is bit-identical to a fresh run. A
// Cache is safe for concurrent use and keeps a pool of Simulators so
// misses reuse engine memory instead of allocating fresh engines.
//
// The key space is split over a fixed number of shards so concurrent
// lookups from a sweep's worker pool (or a planning server's request
// handlers) do not serialize on one lock. Concurrent misses on the same
// key coalesce: exactly one caller runs the engine and every waiter shares
// its result, so Evals counts real engine executions exactly.
//
// A cache built with NewCacheBounded additionally enforces a global entry
// bound with LRU eviction: every use stamps its entry from a global recency
// clock, and an insert that overflows the bound evicts the globally oldest
// of the per-shard oldest entries, so a long-running process serving many
// distinct planning points holds memory constant instead of growing without
// limit.
type Cache struct {
	shards     [cacheShards]cacheShard
	maxEntries int64 // 0 = unbounded
	entries    atomic.Int64
	clock      atomic.Uint64 // global recency clock; see cacheEntry.stamp
	pool       sync.Pool

	hits      atomic.Uint64
	misses    atomic.Uint64
	evals     atomic.Uint64
	evictions atomic.Uint64
	coalesced atomic.Uint64
}

// CacheStats is a point-in-time snapshot of a Cache's counters, in the
// style of the obs package's report structs: plain exported numbers, safe
// to copy and compare. Hits and Misses count lookups (every lookup is
// exactly one of the two, coalesced waiters counting as misses); Evals
// counts actual simulator executions and is exact — concurrent misses on
// one key coalesce onto a single evaluation, counted once. Evals can trail
// Misses both through coalescing and because a malformed point fails
// validation before reaching the engine. Coalesced counts the waiters that
// shared another caller's in-flight evaluation; Evictions counts entries
// dropped to honor the bound of a NewCacheBounded cache. The optimum-search
// tests use Evals to assert how much DES work a query really cost.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evals     uint64
	Coalesced uint64
	Evictions uint64
	Entries   int
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evals:     c.evals.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// NewCache returns an empty, unbounded simulation cache — the right choice
// for one-shot CLI sweeps, where the working set is the sweep itself.
func NewCache() *Cache {
	return NewCacheBounded(0)
}

// NewCacheBounded returns an empty cache that never holds more than
// maxEntries results: inserting past the bound evicts least-recently-used
// entries (counted in CacheStats.Evictions). maxEntries <= 0 means
// unbounded. Long-running services must bound their cache — a planning
// server's key space is as unbounded as its request stream.
func NewCacheBounded(maxEntries int) *Cache {
	c := &Cache{
		maxEntries: int64(maxEntries),
		pool:       sync.Pool{New: func() any { return NewSimulator() }},
	}
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

// MaxEntries returns the configured entry bound (0 = unbounded).
func (c *Cache) MaxEntries() int { return int(c.maxEntries) }

// Len returns how many distinct points are currently stored.
func (c *Cache) Len() int {
	return int(c.entries.Load())
}

// SimulateGrid is the memoized SimulateGrid: a hit returns the stored
// Result, a miss simulates (reusing a pooled engine) and stores it.
func (c *Cache) SimulateGrid(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability) (Result, error) {
	return c.SimulateGridNet(g, v, m, mode, cap, Switched)
}

// SimulateGridNet is SimulateGrid with an explicit interconnect model.
func (c *Cache) SimulateGridNet(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, net Network) (Result, error) {
	return c.SimulateGridFault(g, v, m, mode, cap, net, fault.Plan{})
}

// SimulateGridFault is SimulateGridNet with a fault-injection plan. An
// inactive plan (zero intensity) is canonicalized to the zero plan, so a
// fault-free request through this path shares its cache entry — and its
// byte-identical result — with the plain SimulateGrid path.
func (c *Cache) SimulateGridFault(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, net Network, fp fault.Plan) (Result, error) {
	return c.SimulateGridWith(g, v, m, mode, cap, GridOpts{Net: net, Fault: fp})
}

// SimulateGridWith is the memoized SimulateGridWith. The metrics and trace
// flags are part of the cache key — those Results carry the extra Obs report
// / labeled trace, so they cannot share an entry with the plain one — and
// cache hits return the same *obs.Report pointer and Trace slice, which
// callers must treat as read-only.
func (c *Cache) SimulateGridWith(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, o GridOpts) (Result, error) {
	return c.SimulateGridCtx(context.Background(), g, v, m, mode, cap, o)
}

// SimulateGridCtx is SimulateGridWith under a context. Cancellation is
// honored at the admission points — before an evaluation starts, and while
// waiting on another caller's coalesced evaluation — so a cancelled sweep
// stops issuing DES work promptly. An evaluation that has already started
// runs to completion and is stored: its cost is bounded (one grid point),
// coalesced waiters may depend on it, and a completed result left in the
// cache keeps later uncancelled queries bit-identical.
func (c *Cache) SimulateGridCtx(ctx context.Context, g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, o GridOpts) (Result, error) {
	if !o.Fault.Active() {
		o.Fault = fault.Plan{}
	}
	key := cacheKey{grid: g, v: v, machine: m, mode: mode, cap: cap, net: o.Net,
		interconnect: o.Interconnect, fault: o.Fault, metrics: o.Metrics, trace: o.Trace}
	sh := &c.shards[key.shardIndex()]

	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		e.stamp = c.clock.Add(1)
		sh.touch(e)
		r := e.r
		sh.mu.Unlock()
		c.hits.Add(1)
		return r, nil
	}
	c.misses.Add(1)
	if call, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		return c.await(ctx, call)
	}
	if err := ctx.Err(); err != nil {
		// Not yet committed to leading an evaluation: bail before the
		// engine runs rather than after.
		sh.mu.Unlock()
		return Result{}, err
	}
	call := &inflightCall{done: make(chan struct{})}
	sh.inflight[key] = call
	sh.mu.Unlock()

	call.r, call.err = c.eval(key, o)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if call.err == nil {
		e := &cacheEntry{key: key, r: call.r, stamp: c.clock.Add(1)}
		sh.m[key] = e
		sh.pushFront(e)
		c.entries.Add(1)
	}
	sh.mu.Unlock()
	close(call.done)
	c.enforceBound()
	return call.r, call.err
}

// await blocks until a coalesced in-flight evaluation completes or ctx is
// cancelled. A result that is ready wins over a simultaneous cancellation.
func (c *Cache) await(ctx context.Context, call *inflightCall) (Result, error) {
	select {
	case <-call.done:
		return call.r, call.err
	case <-ctx.Done():
		select {
		case <-call.done:
			return call.r, call.err
		default:
		}
		return Result{}, ctx.Err()
	}
}

// eval runs one simulation through validation and the pooled engine.
func (c *Cache) eval(key cacheKey, o GridOpts) (Result, error) {
	cfg, err := GridConfig(key.grid, key.v, key.machine, key.mode, key.cap)
	if err != nil {
		return Result{}, err
	}
	cfg.Network = o.Net
	cfg.Interconnect = o.Interconnect
	if o.Fault.Active() {
		fp := o.Fault
		cfg.Fault = &fp
	}
	cfg.Metrics = o.Metrics
	cfg.Trace = o.Trace
	c.evals.Add(1)
	sm := c.pool.Get().(*Simulator)
	r, err := sm.Simulate(cfg)
	c.pool.Put(sm)
	return r, err
}

// enforceBound evicts least-recently-used entries until the global entry
// count is back under the bound. Called with no locks held: each pass
// scans the per-shard oldest entries (locking one shard at a time, so
// concurrent evictors cannot deadlock) and removes the globally oldest.
// Racing touches can promote a chosen victim between the scan and the
// removal; the re-check under the victim shard's lock then skips it and
// the loop re-scans, so the policy is an approximate LRU under contention
// and an exact one single-threaded. The bound itself is never exceeded for
// longer than the eviction takes — an insert that overflows runs this
// before returning.
func (c *Cache) enforceBound() {
	if c.maxEntries <= 0 {
		return
	}
	for c.entries.Load() > c.maxEntries {
		var (
			victimShard *cacheShard
			victim      *cacheEntry
			victimStamp uint64
		)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			if e := sh.lru.prev; e != &sh.lru && (victim == nil || e.stamp < victimStamp) {
				victimShard, victim, victimStamp = sh, e, e.stamp
			}
			sh.mu.Unlock()
		}
		if victim == nil {
			return // raced with concurrent evictors; nothing left to drop
		}
		victimShard.mu.Lock()
		if cur, ok := victimShard.m[victim.key]; ok && cur == victim && victim.stamp == victimStamp {
			victimShard.unlink(victim)
			delete(victimShard.m, victim.key)
			c.entries.Add(-1)
			c.evictions.Add(1)
		}
		victimShard.mu.Unlock()
	}
}
