package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/model"
)

// cacheKey identifies one grid simulation point. Every field is a plain
// comparable value (fault.Plan included), so two requests for the same
// point — e.g. a ladder rung revisited by the refinement pass of an optimum
// search, or a sweep height re-simulated by a later Optimum call — collapse
// onto one entry.
type cacheKey struct {
	grid    model.Grid3D
	v       int64
	machine model.Machine
	mode    Mode
	cap     Capability
	net     Network
	fault   fault.Plan
	metrics bool
	trace   bool
}

// Cache memoizes grid simulation results keyed on (grid, V, machine, mode,
// capability, network). The simulator is deterministic, so a cached Result
// is bit-identical to a fresh run. A Cache is safe for concurrent use and
// keeps a pool of Simulators so concurrent misses reuse engine memory
// instead of allocating fresh engines.
type Cache struct {
	mu   sync.RWMutex
	m    map[cacheKey]Result
	pool sync.Pool

	hits   atomic.Uint64
	misses atomic.Uint64
	evals  atomic.Uint64
}

// CacheStats is a point-in-time snapshot of a Cache's counters, in the
// style of the obs package's report structs: plain exported numbers, safe
// to copy and compare. Hits and Misses count lookups; Evals counts actual
// simulator executions. Evals can trail Misses (a malformed point fails
// validation before reaching the engine) or, transiently, exceed the entry
// count (concurrent misses on one key each run the engine and store
// identical results). The optimum-search tests use Evals to assert how
// much DES work a query really cost.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Evals   uint64
	Entries int
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Evals:   c.evals.Load(),
		Entries: c.Len(),
	}
}

// NewCache returns an empty simulation cache.
func NewCache() *Cache {
	return &Cache{
		m:    make(map[cacheKey]Result),
		pool: sync.Pool{New: func() any { return NewSimulator() }},
	}
}

// Len returns how many distinct points have been simulated.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// SimulateGrid is the memoized SimulateGrid: a hit returns the stored
// Result, a miss simulates (reusing a pooled engine) and stores it.
func (c *Cache) SimulateGrid(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability) (Result, error) {
	return c.SimulateGridNet(g, v, m, mode, cap, Switched)
}

// SimulateGridNet is SimulateGrid with an explicit interconnect model.
func (c *Cache) SimulateGridNet(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, net Network) (Result, error) {
	return c.SimulateGridFault(g, v, m, mode, cap, net, fault.Plan{})
}

// SimulateGridFault is SimulateGridNet with a fault-injection plan. An
// inactive plan (zero intensity) is canonicalized to the zero plan, so a
// fault-free request through this path shares its cache entry — and its
// byte-identical result — with the plain SimulateGrid path.
func (c *Cache) SimulateGridFault(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, net Network, fp fault.Plan) (Result, error) {
	return c.SimulateGridWith(g, v, m, mode, cap, GridOpts{Net: net, Fault: fp})
}

// SimulateGridWith is the memoized SimulateGridWith. The metrics and trace
// flags are part of the cache key — those Results carry the extra Obs report
// / labeled trace, so they cannot share an entry with the plain one — and
// cache hits return the same *obs.Report pointer and Trace slice, which
// callers must treat as read-only.
func (c *Cache) SimulateGridWith(g model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, o GridOpts) (Result, error) {
	if !o.Fault.Active() {
		o.Fault = fault.Plan{}
	}
	key := cacheKey{grid: g, v: v, machine: m, mode: mode, cap: cap, net: o.Net,
		fault: o.Fault, metrics: o.Metrics, trace: o.Trace}
	c.mu.RLock()
	r, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return r, nil
	}
	c.misses.Add(1)
	cfg, err := GridConfig(g, v, m, mode, cap)
	if err != nil {
		return Result{}, err
	}
	cfg.Network = o.Net
	if o.Fault.Active() {
		fp := o.Fault
		cfg.Fault = &fp
	}
	cfg.Metrics = o.Metrics
	cfg.Trace = o.Trace
	c.evals.Add(1)
	sm := c.pool.Get().(*Simulator)
	r, err = sm.Simulate(cfg)
	c.pool.Put(sm)
	if err != nil {
		return Result{}, err
	}
	// Concurrent misses on the same key store identical values, so the last
	// writer winning is harmless.
	c.mu.Lock()
	c.m[key] = r
	c.mu.Unlock()
	return r, nil
}
