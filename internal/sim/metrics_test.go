package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
)

var metricsGrid = model.Grid3D{I: 8, J: 8, K: 128, PI: 4, PJ: 4}

func metricsConfig(t *testing.T, v int64, mode Mode, cap Capability) Config {
	t.Helper()
	cfg, err := GridConfig(metricsGrid, v, model.PentiumCluster(), mode, cap)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = true
	return cfg
}

// TestMetricsAccountingIdentity: in a zero-fault run the per-resource phase
// totals must satisfy the accounting identity Idle == Makespan − Busy exactly
// (bit-exact float equality, no tolerance — the subtraction form is the one
// float64 can honor; the re-added sum can tie at a half-ulp) for every
// resource, and the report's mean CPU utilization must agree with the
// Result's independently computed CPUUtilization.
func TestMetricsAccountingIdentity(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		for _, cap := range []Capability{CapNone, CapDMA, CapFullDuplex} {
			res, err := Simulate(metricsConfig(t, 16, mode, cap))
			if err != nil {
				t.Fatal(err)
			}
			r := res.Obs
			if r == nil {
				t.Fatalf("%v/%v: Metrics set but Obs is nil", mode, cap)
			}
			if r.Makespan != res.Makespan {
				t.Errorf("%v/%v: report makespan %g != result %g", mode, cap, r.Makespan, res.Makespan)
			}
			if len(r.Resources) == 0 {
				t.Fatalf("%v/%v: no resource rows", mode, cap)
			}
			for _, st := range r.Resources {
				if st.Idle != res.Makespan-st.Busy {
					t.Errorf("%v/%v %s: idle %g != makespan %g - busy %g",
						mode, cap, st.Name, st.Idle, res.Makespan, st.Busy)
				}
				if st.Busy < 0 || st.Busy > res.Makespan || st.QueueWait < 0 {
					t.Errorf("%v/%v %s: implausible stats %+v", mode, cap, st.Name, st)
				}
			}
			if d := math.Abs(r.MeanCPUUtilization - res.CPUUtilization); d > 1e-9 {
				t.Errorf("%v/%v: report util %g vs result util %g",
					mode, cap, r.MeanCPUUtilization, res.CPUUtilization)
			}
			if r.Retransmits != 0 || r.Pauses != 0 || r.LinkRetransmits != nil {
				t.Errorf("%v/%v: fault counters nonzero in fault-free run: %+v",
					mode, cap, r)
			}
		}
	}
}

// TestMetricsMatchTrace: the interval-log report (synthesized resource
// names, metrics-only machinery) must deep-equal the report rebuilt from the
// labeled trace of the same run — the two accounting paths agree entry for
// entry.
func TestMetricsMatchTrace(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		for _, cap := range []Capability{CapDMA, CapFullDuplex} {
			cfg := metricsConfig(t, 16, mode, cap)
			cfg.Trace = true
			res, err := Simulate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fromTrace := obs.Analyze(res.Makespan, obs.TracksFromTrace(res.Trace))
			// The trace never mentions resources that ran nothing (e.g. the
			// corner nodes' unused rx/tx ports), while the interval report
			// lists every built resource; compare modulo those all-idle rows.
			got := *res.Obs
			got.Resources = nil
			for _, st := range res.Obs.Resources {
				if st.Activities > 0 {
					got.Resources = append(got.Resources, st)
				}
			}
			if !reflect.DeepEqual(&got, fromTrace) {
				t.Errorf("%v/%v: interval report and trace report diverge:\n%+v\nvs\n%+v",
					mode, cap, &got, fromTrace)
			}
		}
	}
}

// TestMetricsSharedBus: the bus resource must appear in the report and take
// part in the comm accounting.
func TestMetricsSharedBus(t *testing.T) {
	cfg := metricsConfig(t, 16, Overlapped, CapDMA)
	cfg.Network = SharedBus
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bus *obs.ResourceStats
	for i := range res.Obs.Resources {
		if res.Obs.Resources[i].Kind == obs.KindBus {
			bus = &res.Obs.Resources[i]
		}
	}
	if bus == nil || bus.Busy <= 0 {
		t.Fatalf("bus missing or idle in shared-bus report: %+v", bus)
	}
}

// TestOverlapEfficiencyOverlappedBeatsBlocking: at the overlapped schedule's
// optimal tile height, the pipelined schedule must hide a strictly larger
// fraction of its communication time than the blocking one — that hiding is
// the paper's entire mechanism.
func TestOverlapEfficiencyOverlappedBeatsBlocking(t *testing.T) {
	m := model.PentiumCluster()
	vOpt, _, err := metricsGrid.OptimalVOverlapAnalytic(m)
	if err != nil {
		t.Fatal(err)
	}
	v := int64(math.Round(vOpt))
	if v < 1 {
		v = 1
	}
	if v > metricsGrid.K {
		v = metricsGrid.K
	}
	ov, err := SimulateGridWith(metricsGrid, v, m, Overlapped, CapDMA, GridOpts{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := SimulateGridWith(metricsGrid, v, m, Blocking, CapDMA, GridOpts{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if ov.Obs.OverlapEfficiency <= bl.Obs.OverlapEfficiency {
		t.Errorf("at v=%d overlapped efficiency %.3f not above blocking %.3f",
			v, ov.Obs.OverlapEfficiency, bl.Obs.OverlapEfficiency)
	}
	if ov.Obs.OverlapEfficiency <= 0.5 {
		t.Errorf("overlapped schedule at its optimum hides only %.1f%% of comm",
			100*ov.Obs.OverlapEfficiency)
	}
}

// TestMetricsFaultCounters: an active fault plan's injected events must show
// up in the report, and the per-link breakdown must sum to the total.
func TestMetricsFaultCounters(t *testing.T) {
	// Seed 3 is chosen to deterministically yield both losses and pauses at
	// this intensity on this grid (some seeds produce neither by chance).
	fp := fault.Default(3, 0.9)
	res, err := SimulateGridWith(model.Grid3D{I: 8, J: 8, K: 512, PI: 2, PJ: 2},
		64, model.PentiumCluster(), Overlapped, CapDMA,
		GridOpts{Fault: fp, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Obs
	if r.Retransmits == 0 {
		t.Error("high-intensity loss plan produced no retransmits")
	}
	sum := 0
	for _, n := range r.LinkRetransmits {
		sum += n
	}
	if sum != r.Retransmits {
		t.Errorf("per-link retransmits sum %d != total %d", sum, r.Retransmits)
	}
	if r.Pauses == 0 {
		t.Error("high-intensity pause plan produced no pauses")
	}
}

// TestCacheMetricsKey: the metrics flag is part of the cache key (a metrics
// Result carries the Obs report the plain one lacks), and a metrics hit
// returns the identical shared report.
func TestCacheMetricsKey(t *testing.T) {
	c := NewCache()
	m := model.PentiumCluster()
	plain, err := c.SimulateGridWith(metricsGrid, 16, m, Overlapped, CapDMA, GridOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Obs != nil {
		t.Error("plain cached run unexpectedly carries a report")
	}
	with, err := c.SimulateGridWith(metricsGrid, 16, m, Overlapped, CapDMA, GridOpts{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Obs == nil {
		t.Fatal("metrics cached run missing its report")
	}
	if with.Makespan != plain.Makespan {
		t.Errorf("metrics pass changed the makespan: %g vs %g", with.Makespan, plain.Makespan)
	}
	hit, err := c.SimulateGridWith(metricsGrid, 16, m, Overlapped, CapDMA, GridOpts{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if hit.Obs != with.Obs {
		t.Error("cache hit rebuilt the report instead of sharing it")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
}
