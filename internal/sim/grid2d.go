package sim

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/space"
)

// Grid2D describes the Example-1 deployment the 2-D runner implements: an
// I1×I2 iteration space with dependences {(1,1),(1,0),(0,1)}, each of P
// ranks owning a strip of I2/P columns, tiles of S1 rows marching up the
// strip. Mapping is along dimension 0; messages flow only to the next
// strip, carrying S1+1 values per tile (face plus the diagonal's corner),
// exactly like runner.Run2D.
type Grid2D struct {
	I1, I2 int64 // iteration space extents
	P      int64 // ranks (strips); must divide I2
	S1     int64 // tile height along dim 0
}

// Validate checks the configuration.
func (c Grid2D) Validate() error {
	if c.I1 <= 0 || c.I2 <= 0 || c.P <= 0 || c.S1 <= 0 {
		return fmt.Errorf("sim: non-positive Grid2D parameter %+v", c)
	}
	if c.I2%c.P != 0 {
		return fmt.Errorf("sim: %d ranks do not divide %d columns", c.P, c.I2)
	}
	if c.S1 > c.I1 {
		return fmt.Errorf("sim: tile height %d exceeds %d rows", c.S1, c.I1)
	}
	return nil
}

// Tiles1 returns the number of tiles along dim 0 (the last may be partial).
func (c Grid2D) Tiles1() int64 { return (c.I1 + c.S1 - 1) / c.S1 }

// StripWidth returns the columns per rank.
func (c Grid2D) StripWidth() int64 { return c.I2 / c.P }

// Topology builds the simulator topology for the strip deployment.
func (c Grid2D) Topology(bytesPerElem int64) (Topology, error) {
	if err := c.Validate(); err != nil {
		return Topology{}, err
	}
	if bytesPerElem <= 0 {
		return Topology{}, fmt.Errorf("sim: non-positive element size")
	}
	ts, err := space.Rect(c.Tiles1(), c.P)
	if err != nil {
		return Topology{}, err
	}
	m, err := schedule.NewMapping(ts, 0) // tiles along dim 0 share a rank
	if err != nil {
		return Topology{}, err
	}
	height := func(t int64) int64 {
		if t == c.Tiles1()-1 {
			return c.I1 - c.S1*(c.Tiles1()-1)
		}
		return c.S1
	}
	w := c.StripWidth()
	return Topology{
		TileSpace: ts,
		Map:       m,
		TileVolume: func(tc ilmath.Vec) int64 {
			return height(tc[0]) * w
		},
		MsgBytes: func(from, to ilmath.Vec) int64 {
			// The face message to the next strip: the tile's rows plus the
			// diagonal's corner value, as the runner packs it.
			return (height(from[0]) + 1) * bytesPerElem
		},
	}, nil
}

// Config assembles a full simulation request for the strip deployment. The
// tiled dependences are those of the Example-1 tiled space: (1,0) within a
// strip, (0,1) to the next strip, (1,1) diagonal (the corner the runner
// folds into the face message).
func (c Grid2D) Config(m model.Machine, mode Mode, cap Capability) (Config, error) {
	topo, err := c.Topology(m.BytesPerElem)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Topo:    topo,
		Deps:    deps.MustNewSet(ilmath.V(1, 0), ilmath.V(0, 1)),
		Machine: m,
		Mode:    mode,
		Cap:     cap,
	}, nil
}

// Simulate runs one (mode, capability) cell.
func (c Grid2D) Simulate(m model.Machine, mode Mode, cap Capability) (Result, error) {
	cfg, err := c.Config(m, mode, cap)
	if err != nil {
		return Result{}, err
	}
	return Simulate(cfg)
}

// Example1Grid2D returns the paper's Example 1 deployment: the 10000×1000
// space with 10×10 tiles on 100 strips (one strip per tile column, the
// paper's "all tiles along i₁ to the same processor").
func Example1Grid2D() Grid2D {
	return Grid2D{I1: 10000, I2: 1000, P: 100, S1: 10}
}
