package sim

import (
	"testing"

	"repro/internal/ilmath"
	"repro/internal/model"
)

func TestGrid2DValidate(t *testing.T) {
	good := Grid2D{I1: 100, I2: 40, P: 4, S1: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for name, bad := range map[string]Grid2D{
		"zero I1":      {I1: 0, I2: 40, P: 4, S1: 10},
		"non-dividing": {I1: 100, I2: 41, P: 4, S1: 10},
		"S1 too tall":  {I1: 100, I2: 40, P: 4, S1: 101},
	} {
		if bad.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGrid2DGeometry(t *testing.T) {
	c := Grid2D{I1: 57, I2: 40, P: 4, S1: 10}
	if c.Tiles1() != 6 {
		t.Errorf("Tiles1 = %d, want 6", c.Tiles1())
	}
	if c.StripWidth() != 10 {
		t.Errorf("StripWidth = %d", c.StripWidth())
	}
	topo, err := c.Topology(8)
	if err != nil {
		t.Fatal(err)
	}
	// Full tile: 10 rows × 10 cols; partial last tile: 7 rows.
	if g := topo.TileVolume(ilmath.V(0, 0)); g != 100 {
		t.Errorf("full tile volume = %d", g)
	}
	if g := topo.TileVolume(ilmath.V(5, 0)); g != 70 {
		t.Errorf("partial tile volume = %d, want 70", g)
	}
	// Message: (height+1)·8 bytes.
	if b := topo.MsgBytes(ilmath.V(0, 0), ilmath.V(0, 1)); b != 11*8 {
		t.Errorf("face bytes = %d, want 88", b)
	}
	if b := topo.MsgBytes(ilmath.V(5, 0), ilmath.V(5, 1)); b != 8*8 {
		t.Errorf("partial face bytes = %d, want 64", b)
	}
}

func TestGrid2DSimulateOverlapWins(t *testing.T) {
	c := Grid2D{I1: 1000, I2: 100, P: 10, S1: 10}
	m := model.Example1Machine()
	ov, err := c.Simulate(m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := c.Simulate(m, Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Makespan >= bl.Makespan {
		t.Errorf("overlap %g not faster than blocking %g", ov.Makespan, bl.Makespan)
	}
	// Messages: (P-1) strip boundaries × Tiles1 messages each.
	want := int(int64(9) * c.Tiles1())
	if ov.NumMessages != want {
		t.Errorf("messages = %d, want %d", ov.NumMessages, want)
	}
}

// TestGrid2DExample1FullScale simulates the paper's Example 1 deployment
// and compares against the analytic eq. 3/4 walk-through: same ballpark
// (the model assumes steady state; the simulation includes the 100-strip
// pipeline fill).
func TestGrid2DExample1FullScale(t *testing.T) {
	c := Example1Grid2D()
	m := model.Example1Machine()
	ov, err := c.Simulate(m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := c.Simulate(m, Blocking, CapNone)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: 0.400036 s and 0.273 s. The simulated values must be
	// within 35% of those (strip messages carry s1+1 = 11 points vs the
	// model's formula-(2) 20, and pipeline fill adds steps).
	if rel(bl.Makespan, 0.400036) > 0.35 {
		t.Errorf("blocking sim %g vs model 0.400 diverge", bl.Makespan)
	}
	if rel(ov.Makespan, 0.273144) > 0.35 {
		t.Errorf("overlap sim %g vs model 0.273 diverge", ov.Makespan)
	}
	if ov.Makespan >= bl.Makespan {
		t.Error("overlap lost at full scale")
	}
	imp := 1 - ov.Makespan/bl.Makespan
	if imp < 0.15 || imp > 0.55 {
		t.Errorf("improvement %.0f%% outside plausible band", imp*100)
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}
