package sim

import (
	"sync"
	"testing"

	"repro/internal/model"
)

func cacheTestGrid() (model.Grid3D, model.Machine) {
	return model.Grid3D{I: 8, J: 8, K: 64, PI: 4, PJ: 4}, model.PentiumCluster()
}

func TestCacheStatsCounting(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCache()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zeros", st)
	}

	// First request: a miss that evaluates and stores.
	r1, err := c.SimulateGrid(g, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st != (CacheStats{Misses: 1, Evals: 1, Entries: 1}) {
		t.Errorf("after one miss: %+v", st)
	}

	// Same point again: a hit, no new evaluation, bit-identical result.
	r2, err := c.SimulateGrid(g, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("hit returned different makespan: %g vs %g", r1.Makespan, r2.Makespan)
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 1, Evals: 1, Entries: 1}) {
		t.Errorf("after hit: %+v", st)
	}

	// The metrics flag is part of the key: same point with metrics on is a
	// distinct entry, so another miss and evaluation.
	if _, err := c.SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{Metrics: true}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 2, Evals: 2, Entries: 2}) {
		t.Errorf("after metrics-flag miss: %+v", st)
	}

	// A malformed point fails validation before reaching the engine: the
	// miss is counted, the evaluation is not.
	bad := g
	bad.I = 7 // PI=4 does not divide 7
	if _, err := c.SimulateGrid(bad, 8, m, Overlapped, CapDMA); err == nil {
		t.Fatal("malformed grid accepted")
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 3, Evals: 2, Entries: 2}) {
		t.Errorf("after failed validation: %+v", st)
	}
}

// TestCacheStatsConcurrent hammers one cache from many goroutines (run
// under -race in make check): the counters must account for every lookup,
// and every hit+miss must sum to the number of requests.
func TestCacheStatsConcurrent(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCache()
	const workers, iters = 8, 20
	heights := []int64{4, 8, 16, 32}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := heights[i%len(heights)]
				if _, err := c.SimulateGrid(g, v, m, Overlapped, CapDMA); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Errorf("hits+misses = %d+%d, want %d requests", st.Hits, st.Misses, workers*iters)
	}
	if st.Entries != len(heights) {
		t.Errorf("entries = %d, want %d", st.Entries, len(heights))
	}
	// Concurrent misses on a key may each evaluate, but never more than one
	// evaluation per (worker, distinct key) pair.
	if st.Evals < uint64(len(heights)) || st.Evals > workers*uint64(len(heights)) {
		t.Errorf("evals = %d outside [%d, %d]", st.Evals, len(heights), workers*len(heights))
	}
}
