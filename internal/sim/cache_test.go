package sim

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/model"
)

func cacheTestGrid() (model.Grid3D, model.Machine) {
	return model.Grid3D{I: 8, J: 8, K: 64, PI: 4, PJ: 4}, model.PentiumCluster()
}

func TestCacheStatsCounting(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCache()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zeros", st)
	}

	// First request: a miss that evaluates and stores.
	r1, err := c.SimulateGrid(g, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st != (CacheStats{Misses: 1, Evals: 1, Entries: 1}) {
		t.Errorf("after one miss: %+v", st)
	}

	// Same point again: a hit, no new evaluation, bit-identical result.
	r2, err := c.SimulateGrid(g, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("hit returned different makespan: %g vs %g", r1.Makespan, r2.Makespan)
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 1, Evals: 1, Entries: 1}) {
		t.Errorf("after hit: %+v", st)
	}

	// The metrics flag is part of the key: same point with metrics on is a
	// distinct entry, so another miss and evaluation.
	if _, err := c.SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{Metrics: true}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 2, Evals: 2, Entries: 2}) {
		t.Errorf("after metrics-flag miss: %+v", st)
	}

	// A malformed point fails validation before reaching the engine: the
	// miss is counted, the evaluation is not.
	bad := g
	bad.I = 7 // PI=4 does not divide 7
	if _, err := c.SimulateGrid(bad, 8, m, Overlapped, CapDMA); err == nil {
		t.Fatal("malformed grid accepted")
	}
	if st := c.Stats(); st != (CacheStats{Hits: 1, Misses: 3, Evals: 2, Entries: 2}) {
		t.Errorf("after failed validation: %+v", st)
	}
}

// TestCacheStatsConcurrent hammers one cache from many goroutines (run
// under -race in make check): the counters must account for every lookup,
// and every hit+miss must sum to the number of requests.
func TestCacheStatsConcurrent(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCache()
	const workers, iters = 8, 20
	heights := []int64{4, 8, 16, 32}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := heights[i%len(heights)]
				if _, err := c.SimulateGrid(g, v, m, Overlapped, CapDMA); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Errorf("hits+misses = %d+%d, want %d requests", st.Hits, st.Misses, workers*iters)
	}
	if st.Entries != len(heights) {
		t.Errorf("entries = %d, want %d", st.Entries, len(heights))
	}
	// Coalescing makes Evals exact: one engine run per distinct key, no
	// matter how the workers collide.
	if st.Evals != uint64(len(heights)) {
		t.Errorf("evals = %d, want exactly %d (one per distinct key)", st.Evals, len(heights))
	}
}

// TestCacheCoalescesConcurrentMisses is the regression test for the
// duplicate-eval bug the pre-coalescing cache documented in CacheStats:
// N goroutines hammering one cold key must produce exactly one engine
// evaluation, with every other caller counted as coalesced and all results
// bit-identical.
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCache()
	const workers = 16
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		spans   []float64
		release = make(chan struct{})
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release // line everyone up on the same cold key
			r, err := c.SimulateGrid(g, 16, m, Overlapped, CapDMA)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			spans = append(spans, r.Makespan)
			mu.Unlock()
		}()
	}
	close(release)
	wg.Wait()
	st := c.Stats()
	if st.Evals != 1 {
		t.Errorf("evals = %d, want 1: concurrent misses on one key must coalesce", st.Evals)
	}
	if st.Hits+st.Misses != workers {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, workers)
	}
	if st.Coalesced+st.Evals != st.Misses {
		t.Errorf("coalesced(%d)+evals(%d) != misses(%d)", st.Coalesced, st.Evals, st.Misses)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	for _, s := range spans[1:] {
		if s != spans[0] {
			t.Fatalf("coalesced results differ: %g vs %g", s, spans[0])
		}
	}
}

// TestCacheBoundEviction fills a bounded cache past its limit and checks
// the bound holds, evictions are counted, and an evicted point re-evaluates
// to a bit-identical result.
func TestCacheBoundEviction(t *testing.T) {
	g, m := cacheTestGrid()
	const bound = 3
	c := NewCacheBounded(bound)
	heights := []int64{2, 4, 8, 16, 32, 64}
	first := make(map[int64]float64)
	for _, v := range heights {
		r, err := c.SimulateGrid(g, v, m, Overlapped, CapDMA)
		if err != nil {
			t.Fatal(err)
		}
		first[v] = r.Makespan
		if n := c.Len(); n > bound {
			t.Fatalf("cache holds %d entries, bound is %d", n, bound)
		}
	}
	st := c.Stats()
	if st.Evictions != uint64(len(heights)-bound) {
		t.Errorf("evictions = %d, want %d", st.Evictions, len(heights)-bound)
	}
	if st.Entries != bound {
		t.Errorf("entries = %d, want %d", st.Entries, bound)
	}
	// An evicted point re-simulates (another eval) to the same bits.
	r, err := c.SimulateGrid(g, heights[0], m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != first[heights[0]] {
		t.Errorf("re-evaluated makespan %g != original %g", r.Makespan, first[heights[0]])
	}
	if got := c.Stats().Evals; got != uint64(len(heights)+1) {
		t.Errorf("evals = %d, want %d (evicted entry re-evaluated)", got, len(heights)+1)
	}
}

// TestCacheBoundLRUOrder checks the recency policy: touching an old entry
// saves it from the next eviction.
func TestCacheBoundLRUOrder(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCacheBounded(2)
	for _, v := range []int64{2, 4} {
		if _, err := c.SimulateGrid(g, v, m, Overlapped, CapDMA); err != nil {
			t.Fatal(err)
		}
	}
	// Touch V=2 so V=4 is now least recent; inserting V=8 must evict V=4.
	if _, err := c.SimulateGrid(g, 2, m, Overlapped, CapDMA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SimulateGrid(g, 8, m, Overlapped, CapDMA); err != nil {
		t.Fatal(err)
	}
	pre := c.Stats()
	if _, err := c.SimulateGrid(g, 2, m, Overlapped, CapDMA); err != nil {
		t.Fatal(err)
	}
	if post := c.Stats(); post.Hits != pre.Hits+1 {
		t.Errorf("V=2 should have survived eviction (hits %d -> %d)", pre.Hits, post.Hits)
	}
	if _, err := c.SimulateGrid(g, 4, m, Overlapped, CapDMA); err != nil {
		t.Fatal(err)
	}
	if post := c.Stats(); post.Misses != pre.Misses+1 {
		t.Errorf("V=4 should have been evicted (misses %d -> %d)", pre.Misses, post.Misses)
	}
}

// TestCacheCtxCancelled: a context cancelled before the call must refuse to
// start an evaluation, and the cache must stay consistent for later
// uncancelled queries.
func TestCacheCtxCancelled(t *testing.T) {
	g, m := cacheTestGrid()
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.SimulateGridCtx(ctx, g, 8, m, Overlapped, CapDMA, GridOpts{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Evals != 0 {
		t.Errorf("cancelled call ran the engine: evals = %d", st.Evals)
	}
	// The same point, uncancelled, still works and matches a fresh cache.
	r, err := c.SimulateGridCtx(context.Background(), g, 8, m, Overlapped, CapDMA, GridOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewCache().SimulateGrid(g, 8, m, Overlapped, CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != want.Makespan {
		t.Errorf("post-cancel result %g != fresh %g", r.Makespan, want.Makespan)
	}
}
