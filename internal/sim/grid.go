package sim

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/fault"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/space"
	"repro/internal/topo"
)

// GridTopology builds the Topology of the paper's Section 5 experiments: a
// model.Grid3D iteration space with tiles (I/PI)×(J/PJ)×v, mapped along the
// k axis (the largest dimension), with exact handling of the partial last
// tile when v does not divide K.
func GridTopology(c model.Grid3D, v int64, bytesPerElem int64) (Topology, error) {
	if err := c.Validate(); err != nil {
		return Topology{}, err
	}
	if v <= 0 || v > c.K {
		return Topology{}, fmt.Errorf("sim: tile height %d out of range (0, %d]", v, c.K)
	}
	if bytesPerElem <= 0 {
		return Topology{}, fmt.Errorf("sim: non-positive element size %d", bytesPerElem)
	}
	ti, tj := c.TileI(), c.TileJ()
	kt := c.KTiles(v)
	ts, err := space.Rect(c.PI, c.PJ, kt)
	if err != nil {
		return Topology{}, err
	}
	const mapDim = 2
	m, err := schedule.NewMapping(ts, mapDim)
	if err != nil {
		return Topology{}, err
	}
	// height of the k-extent of tile tc (the last k tile may be partial).
	height := func(tc ilmath.Vec) int64 {
		if tc[2] == kt-1 {
			return c.K - v*(kt-1)
		}
		return v
	}
	topo := Topology{
		TileSpace: ts,
		Map:       m,
		TileVolume: func(tc ilmath.Vec) int64 {
			return ti * tj * height(tc)
		},
		MsgBytes: func(from, to ilmath.Vec) int64 {
			// The message carries the tile face of the producing tile
			// perpendicular to the dependence direction.
			h := height(from)
			switch {
			case to[0] == from[0]+1: // i-direction: j×k face
				return tj * h * bytesPerElem
			case to[1] == from[1]+1: // j-direction: i×k face
				return ti * h * bytesPerElem
			default: // k-direction (intra-processor; not used as a message)
				return ti * tj * bytesPerElem
			}
		},
	}
	return topo, nil
}

// GridConfig assembles a full simulation Config for a Grid3D experiment.
func GridConfig(c model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability) (Config, error) {
	topo, err := GridTopology(c, v, m.BytesPerElem)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Topo:    topo,
		Deps:    deps.Stencil3D(),
		Machine: m,
		Mode:    mode,
		Cap:     cap,
	}, nil
}

// SimulateGrid is the one-call entry point used by the benchmark harness:
// simulate one (experiment, tile height, mode) combination on a switched
// network and return the makespan in seconds.
func SimulateGrid(c model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability) (Result, error) {
	return SimulateGridNet(c, v, m, mode, cap, Switched)
}

// SimulateGridNet is SimulateGrid with an explicit interconnect model.
func SimulateGridNet(c model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, net Network) (Result, error) {
	return SimulateGridWith(c, v, m, mode, cap, GridOpts{Net: net})
}

// SimulateGridFault is SimulateGridNet under a fault-injection plan. An
// inactive plan leaves the result byte-identical to SimulateGridNet's.
func SimulateGridFault(c model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, net Network, fp fault.Plan) (Result, error) {
	return SimulateGridWith(c, v, m, mode, cap, GridOpts{Net: net, Fault: fp})
}

// GridOpts bundles the optional knobs of a grid simulation: the interconnect
// model (zero value: switched), the switch hierarchy (zero value: flat), a
// fault plan (zero value: fault-free), the phase-accounting metrics pass and
// the full labeled trace (both off by default).
type GridOpts struct {
	Net          Network
	Interconnect topo.Spec
	Fault        fault.Plan
	Metrics      bool
	Trace        bool
}

// SimulateGridWith is SimulateGrid with the full option set; the other
// SimulateGrid* entry points are shorthands for common opt subsets.
func SimulateGridWith(c model.Grid3D, v int64, m model.Machine, mode Mode, cap Capability, o GridOpts) (Result, error) {
	cfg, err := GridConfig(c, v, m, mode, cap)
	if err != nil {
		return Result{}, err
	}
	cfg.Network = o.Net
	cfg.Interconnect = o.Interconnect
	if o.Fault.Active() {
		fp := o.Fault
		cfg.Fault = &fp
	}
	cfg.Metrics = o.Metrics
	cfg.Trace = o.Trace
	return Simulate(cfg)
}
