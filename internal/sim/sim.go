package sim

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/fault"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/simnet"
	"repro/internal/space"
	"repro/internal/topo"
)

// Mode selects which of the paper's two execution schemes to simulate.
type Mode int

const (
	// Blocking is the non-overlapping schedule of Section 3: each step is a
	// serial receive→compute→send triplet using blocking primitives; all
	// copies burn CPU.
	Blocking Mode = iota
	// Overlapped is the pipelined schedule of Section 4 using non-blocking
	// primitives: at step k the CPU computes tile k while the communication
	// hardware sends tile k−1's results and receives tile k+1's inputs.
	Overlapped
)

func (m Mode) String() string {
	switch m {
	case Blocking:
		return "blocking"
	case Overlapped:
		return "overlapped"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Capability describes how much communication the node hardware can run
// concurrently with the CPU (Fig. 3 of the paper).
type Capability int

const (
	// CapNone: no DMA support — kernel buffer copies execute on the CPU and
	// only the wire time itself is off-CPU (Fig. 3a with minimal overlap).
	CapNone Capability = iota
	// CapDMA: a single DMA/comm engine per node performs kernel copies and
	// shares one half-duplex channel for tx and rx (Fig. 3b).
	CapDMA
	// CapFullDuplex: independent rx and tx engines (multichannel DMA I/O,
	// Fig. 3c) — sends and receives themselves overlap.
	CapFullDuplex
)

func (c Capability) String() string {
	switch c {
	case CapNone:
		return "no-dma"
	case CapDMA:
		return "dma"
	case CapFullDuplex:
		return "full-duplex"
	default:
		return fmt.Sprintf("Capability(%d)", int(c))
	}
}

// Network selects the interconnect contention model.
type Network int

const (
	// Switched gives every node its own full-bandwidth port (a switched
	// FastEthernet, the default): wire transfers of different node pairs
	// proceed concurrently.
	Switched Network = iota
	// SharedBus serializes every wire transfer in the whole cluster on one
	// medium — a hub/coax Ethernet. The paper's Example 1 cites 10 Mbps
	// Ethernet; this mode shows how bus contention erodes (and with enough
	// processors erases) the overlapping schedule's advantage.
	SharedBus
)

func (n Network) String() string {
	switch n {
	case Switched:
		return "switched"
	case SharedBus:
		return "shared-bus"
	default:
		return fmt.Sprintf("Network(%d)", int(n))
	}
}

// Topology describes the tiled computation to simulate, independent of the
// machine model: the tiled space, the processor mapping, the computation
// volume of each tile and the message size of each tile-to-tile dependence.
type Topology struct {
	TileSpace *space.Space
	Map       *schedule.Mapping
	// TileVolume returns the number of iteration points of tile tc
	// (boundary tiles may be smaller than interior ones).
	TileVolume func(tc ilmath.Vec) int64
	// MsgBytes returns the message size in bytes for the data flowing from
	// tile 'from' to tile 'to' (to = from + d for a tiled dependence d).
	MsgBytes func(from, to ilmath.Vec) int64
}

// Config is a full simulation request.
type Config struct {
	Topo    Topology
	Deps    *deps.Set // tiled dependence vectors (0/1 components)
	Machine model.Machine
	Mode    Mode
	Cap     Capability
	Network Network
	// Interconnect describes the switch hierarchy between the nodes. The
	// zero value is the flat single-switch machine (every pair one
	// port-to-port transfer, the model all earlier experiments used). A
	// hierarchical spec routes each cross-switch message over per-level
	// uplink/downlink resources (simnet.Fabric), so uplink contention and
	// per-hop latency emerge from the discrete-event engine. Requires
	// Network == Switched: the SharedBus medium already is the degenerate
	// one-link topology.
	Interconnect topo.Spec
	Trace        bool
	// NodeSpeed optionally scales per-node CPU performance: rank r's
	// CPU-resident work takes duration/NodeSpeed(r). nil means homogeneous
	// (all 1.0). Models stragglers in the otherwise identical cluster.
	NodeSpeed func(rank int64) float64
	// Fault optionally injects deterministic, seeded perturbations into
	// the simulated cluster: CPU stragglers, link slowdowns, per-message
	// wire jitter, message loss with timeout/backoff retransmits, and
	// transient node pauses. nil — or a plan with zero intensity — leaves
	// the simulation byte-identical to the fault-free one.
	Fault *fault.Plan
	// Metrics enables the phase-accounting pass: the engine records a
	// string-free per-activity interval log and Simulate aggregates it into
	// Result.Obs (busy/idle/queue-wait per resource, overlap efficiency,
	// fault counters). Cheaper than Trace — no labels are materialized —
	// but still adds one log append per activity; sweeps leave it off
	// unless they report the metrics.
	Metrics bool
}

// Result of one simulation.
type Result struct {
	// Result carries the makespan plus, when Config.Trace is set, the full
	// execution trace and the per-resource Utilization map (nil otherwise —
	// untraced sweeps skip the map churn; CPUUtilization is always set).
	simnet.Result
	NumTiles    int
	NumMessages int
	// CPUUtilization is the mean utilization across all CPU resources — the
	// paper's "100% processor utilization" claim for the overlapped
	// schedule is checked against this.
	CPUUtilization float64
	// CritPath is the chain of activities fixing the makespan (populated
	// only when Config.Trace is set); see simnet.CriticalPath.
	CritPath []simnet.CritStep
	// Obs is the phase-accounting report (populated only when
	// Config.Metrics is set): per-resource busy/idle/queue-wait, overlap
	// efficiency, and fault counters. Cached Results share one Report;
	// treat it as read-only.
	Obs *obs.Report
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Topo.TileSpace == nil || c.Topo.Map == nil {
		return fmt.Errorf("sim: topology missing tile space or mapping")
	}
	if c.Topo.TileVolume == nil || c.Topo.MsgBytes == nil {
		return fmt.Errorf("sim: topology missing TileVolume or MsgBytes")
	}
	if c.Deps == nil || c.Deps.Dim() != c.Topo.TileSpace.Dim() {
		return fmt.Errorf("sim: dependence set missing or of wrong dimension")
	}
	for _, d := range c.Deps.Vectors() {
		for _, x := range d {
			if x != 0 && x != 1 {
				return fmt.Errorf("sim: tiled dependence %v has non-0/1 component", d)
			}
		}
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Mode != Blocking && c.Mode != Overlapped {
		return fmt.Errorf("sim: unknown mode %d", int(c.Mode))
	}
	if c.Cap != CapNone && c.Cap != CapDMA && c.Cap != CapFullDuplex {
		return fmt.Errorf("sim: unknown capability %d", int(c.Cap))
	}
	if c.Network != Switched && c.Network != SharedBus {
		return fmt.Errorf("sim: unknown network model %d", int(c.Network))
	}
	if err := c.Interconnect.Validate(); err != nil {
		return err
	}
	if !c.Interconnect.Flat() && c.Network != Switched {
		return fmt.Errorf("sim: hierarchical interconnect %v requires the switched network model", c.Interconnect)
	}
	if c.NodeSpeed != nil {
		for p := int64(0); p < c.Topo.Map.NumProcs(); p++ {
			if s := c.NodeSpeed(p); s <= 0 {
				return fmt.Errorf("sim: non-positive speed %g for node %d", s, p)
			}
		}
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// node bundles the per-processor resources.
type node struct {
	cpu     *simnet.Resource
	commIn  *simnet.Resource
	commOut *simnet.Resource
}

// message tracks the activity pipeline of one tile-to-tile transfer. Tiles
// are identified by their rank in the tile space; the coordinate vectors
// are only retained for labels when tracing.
type message struct {
	fromRank   int64
	toRank     int64
	fromProc   int64
	toProc     int64
	bytes      int64
	from, to   ilmath.Vec       // populated only when Config.Trace is set
	dataReady  *simnet.Activity // last stage (B2); compute at 'to' depends on it
	wireIn     *simnet.Activity // B1, used by blocking receive copy
	wireOut    *simnet.Activity // B4, gated on the sender's CPU send op
	posted     *simnet.Activity // overlapped A3 that posted the receive buffer
	sendQueued bool
}

// Simulator runs simulations while reusing one discrete-event engine — and
// all of its slab, heap and edge memory — across runs. A sweep worker keeps
// one Simulator per goroutine; a Simulator itself is not safe for
// concurrent use.
type Simulator struct {
	eng *simnet.Engine
}

// NewSimulator returns a Simulator with a fresh reusable engine.
func NewSimulator() *Simulator {
	return &Simulator{eng: simnet.NewEngine()}
}

// Simulate runs the configured schedule on the simulated cluster, reusing
// the Simulator's engine memory.
func (sm *Simulator) Simulate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	sm.eng.Reset()
	b := newBuilder(cfg, sm.eng)
	if err := b.build(); err != nil {
		return Result{}, err
	}
	res, err := sm.eng.Run()
	if err != nil {
		return Result{}, err
	}
	cpuUtil := 0.0
	if res.Makespan > 0 {
		for i := range b.nodes {
			cpuUtil += b.nodes[i].cpu.BusyTime()
		}
		cpuUtil /= res.Makespan * float64(len(b.nodes))
	}
	out := Result{
		Result:         res,
		NumTiles:       b.numTiles,
		NumMessages:    b.numMsgs,
		CPUUtilization: cpuUtil,
	}
	if cfg.Trace {
		out.CritPath = sm.eng.CriticalPath()
	}
	if cfg.Metrics {
		out.Obs = b.obsReport(res.Makespan)
	}
	return out, nil
}

// Simulate runs the configured schedule on the simulated cluster with a
// one-shot engine. Callers running many simulations should hold a Simulator
// (or use a Cache) to amortize the engine's memory.
func Simulate(cfg Config) (Result, error) {
	return NewSimulator().Simulate(cfg)
}

// BuildStats constructs the activity graph for cfg without running it and
// reports its size. It exists so builder-layer performance (BenchmarkSimBuild)
// is measurable separately from engine-layer performance.
func BuildStats(cfg Config) (activities, messages int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	b := newBuilder(cfg, simnet.NewEngine())
	if err := b.build(); err != nil {
		return 0, 0, err
	}
	return b.eng.NumActivities(), b.numMsgs, nil
}
