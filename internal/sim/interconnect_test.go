package sim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/topo"
)

// TestInterconnectSameSwitchIdentity: a hierarchy whose edge switch holds
// every processor routes every message in zero hops, so the result is
// bit-identical to the flat machine.
func TestInterconnectSameSwitchIdentity(t *testing.T) {
	g := model.Grid3D{I: 8, J: 8, K: 64, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	for _, mode := range []Mode{Blocking, Overlapped} {
		flat, err := SimulateGridWith(g, 8, m, mode, CapDMA, GridOpts{})
		if err != nil {
			t.Fatal(err)
		}
		wide, err := SimulateGridWith(g, 8, m, mode, CapDMA, GridOpts{
			Interconnect: topo.TwoLevel(16, 4, 1e-6, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if wide.Makespan != flat.Makespan {
			t.Errorf("%v: same-switch hierarchy makespan %g != flat %g",
				mode, wide.Makespan, flat.Makespan)
		}
	}
}

// TestInterconnectSlowsCrossSwitchTraffic: splitting the 16 processors over
// edge switches forces cross-switch messages through uplink hops, so the
// makespan can only grow relative to the flat machine; thinner uplinks grow
// it further.
func TestInterconnectSlowsCrossSwitchTraffic(t *testing.T) {
	g := model.Grid3D{I: 8, J: 8, K: 64, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	flat, err := SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{
		Interconnect: topo.TwoLevel(4, 4, 1e-5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	thin, err := SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{
		Interconnect: topo.TwoLevel(4, 0.25, 1e-5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan <= flat.Makespan {
		t.Errorf("hierarchical makespan %g not above flat %g", fast.Makespan, flat.Makespan)
	}
	if thin.Makespan <= fast.Makespan {
		t.Errorf("quarter-bandwidth uplinks (%g) not slower than 4x uplinks (%g)",
			thin.Makespan, fast.Makespan)
	}
}

// TestInterconnectValidate: a hierarchical spec on the shared-bus network is
// rejected (the bus already is the degenerate one-link topology), as is a
// malformed spec.
func TestInterconnectValidate(t *testing.T) {
	g := model.Grid3D{I: 4, J: 4, K: 8, PI: 2, PJ: 2}
	m := model.PentiumCluster()
	_, err := SimulateGridWith(g, 2, m, Blocking, CapDMA, GridOpts{
		Net:          SharedBus,
		Interconnect: topo.TwoLevel(2, 1, 0, 1),
	})
	if err == nil {
		t.Error("hierarchical interconnect on shared bus not rejected")
	}
	_, err = SimulateGridWith(g, 2, m, Blocking, CapDMA, GridOpts{
		Interconnect: topo.Spec{Levels: 1}, // zero radix
	})
	if err == nil {
		t.Error("malformed interconnect spec not rejected")
	}
}

// TestInterconnectObsReport checks the per-level link accounting: a
// metrics-only run reports LinkLevels with real busy time, and the report is
// identical to the one rebuilt from a traced run's named resources — the
// synthesized link names round-trip through obs.classify.
func TestInterconnectObsReport(t *testing.T) {
	g := model.Grid3D{I: 8, J: 8, K: 64, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	spec := topo.FatTree(4, 2, 2, 4, 1e-5, 2)
	res, err := SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{
		Interconnect: spec, Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Obs
	if rep == nil {
		t.Fatal("metrics run returned no obs report")
	}
	if len(rep.LinkLevels) != spec.Levels {
		t.Fatalf("got %d link levels, want %d", len(rep.LinkLevels), spec.Levels)
	}
	for _, ll := range rep.LinkLevels {
		if ll.Busy <= 0 || ll.Activities == 0 {
			t.Errorf("level %d carried no traffic: %+v", ll.Level, ll)
		}
		if ll.Idle != float64(ll.Links)*rep.Makespan-ll.Busy {
			t.Errorf("level %d idle identity violated: %+v", ll.Level, ll)
		}
	}

	traced, err := SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{
		Interconnect: spec, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := obs.Analyze(traced.Makespan, obs.TracksFromTrace(traced.Trace))
	// The trace never mentions resources that executed nothing, so the
	// metrics report may list extra all-idle links; every resource the
	// traced report does have must match the metrics one exactly.
	byName := make(map[string]obs.ResourceStats, len(rep.Resources))
	for _, st := range rep.Resources {
		byName[st.Name] = st
	}
	for _, st := range rep2.Resources {
		if got, ok := byName[st.Name]; !ok {
			t.Errorf("traced resource %q missing from metrics report", st.Name)
		} else if got != st {
			t.Errorf("resource %q differs: metrics %+v, traced %+v", st.Name, got, st)
		}
	}
	if len(rep2.LinkLevels) != len(rep.LinkLevels) {
		t.Fatalf("link level count differs: %d vs %d", len(rep.LinkLevels), len(rep2.LinkLevels))
	}
	for i := range rep.LinkLevels {
		a, b := rep.LinkLevels[i], rep2.LinkLevels[i]
		// Links (and therefore Idle) can differ by the idle links the trace
		// omits; the traffic aggregates must agree exactly.
		if a.Busy != b.Busy || a.QueueWait != b.QueueWait ||
			a.Activities != b.Activities || a.MaxBusy != b.MaxBusy {
			t.Errorf("link level %d traffic differs: metrics %+v, traced %+v", i, a, b)
		}
	}
}

// TestInterconnectCacheKey: the hierarchy is part of the cache key — the
// same grid point under different specs must not collapse onto one entry.
func TestInterconnectCacheKey(t *testing.T) {
	g := model.Grid3D{I: 8, J: 8, K: 64, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	c := NewCache()
	flat, err := c.SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := c.SimulateGridWith(g, 8, m, Overlapped, CapDMA, GridOpts{
		Interconnect: topo.TwoLevel(4, 0.25, 1e-5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Makespan == hier.Makespan {
		t.Error("distinct interconnects returned one makespan: cache key ignores the spec")
	}
	if st := c.Stats(); st.Evals != 2 || st.Entries != 2 {
		t.Errorf("cache stats %+v, want 2 evals and 2 entries", st)
	}
}
