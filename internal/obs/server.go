package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry aggregates the CommMetrics of every rank hosted by this process
// (one for a real tilenode, several for an in-process cluster) behind a
// single snapshot, expvar variable, and HTTP endpoint.
type Registry struct {
	mu    sync.Mutex
	ranks map[int]*CommMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ranks: make(map[int]*CommMetrics)}
}

// Register adds (or replaces) the collector for its rank.
func (r *Registry) Register(m *CommMetrics) {
	r.mu.Lock()
	r.ranks[m.rank] = m
	r.mu.Unlock()
}

// Snapshot returns one CommSnapshot per registered rank, ordered by rank.
func (r *Registry) Snapshot() []CommSnapshot {
	r.mu.Lock()
	metrics := make([]*CommMetrics, 0, len(r.ranks))
	for _, m := range r.ranks {
		metrics = append(metrics, m)
	}
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].rank < metrics[j].rank })
	out := make([]CommSnapshot, len(metrics))
	for i, m := range metrics {
		out[i] = m.Snapshot()
	}
	return out
}

// WriteJSON writes the registry snapshot as indented JSON — the teardown
// dump format and the /metrics.json response body.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Ranks []CommSnapshot `json:"ranks"`
	}{r.Snapshot()})
}

// expvar.Publish panics on duplicate names and offers no unpublish, so the
// process-wide "tilecomm" variable is published once and indirects through
// an atomic pointer to whichever registry called Publish most recently.
var (
	publishOnce  sync.Once
	publishedReg atomic.Pointer[Registry]
)

// Publish makes this registry the source of the process-wide "tilecomm"
// expvar variable (shown under /debug/vars). Safe to call repeatedly and
// from multiple registries; the latest call wins.
func (r *Registry) Publish() {
	publishedReg.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("tilecomm", expvar.Func(func() any {
			if reg := publishedReg.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	})
}

// Serve starts an HTTP server on addr (host:port; use ":0" for an
// OS-assigned port) exposing
//
//	/debug/vars     expvar, including the "tilecomm" registry snapshot
//	/debug/pprof/   live profiling (net/http/pprof)
//	/metrics.json   the registry snapshot alone, indented
//
// It returns the bound address and a shutdown function. The registry is
// Published as a side effect.
func (r *Registry) Serve(addr string) (string, func() error, error) {
	r.Publish()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
