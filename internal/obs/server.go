package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry aggregates the CommMetrics of every rank hosted by this process
// (one for a real tilenode, several for an in-process cluster) and at most
// one ServiceMetrics (for a planning service) behind a single snapshot,
// expvar variable, and HTTP endpoint.
type Registry struct {
	mu       sync.Mutex
	ranks    map[int]*CommMetrics
	service  *ServiceMetrics
	recovery *RecoveryMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ranks: make(map[int]*CommMetrics)}
}

// Register adds (or replaces) the collector for its rank.
func (r *Registry) Register(m *CommMetrics) {
	r.mu.Lock()
	r.ranks[m.rank] = m
	r.mu.Unlock()
}

// RegisterService attaches a planning service's metrics; its snapshot
// appears as the "service" section of WriteJSON and the expvar variable.
// At most one service is tracked; the latest call wins.
func (r *Registry) RegisterService(s *ServiceMetrics) {
	r.mu.Lock()
	r.service = s
	r.mu.Unlock()
}

// RegisterRecovery attaches a supervisor's recovery metrics; the snapshot
// appears as the "recovery" section of WriteJSON and the expvar variable.
// At most one is tracked; the latest call wins.
func (r *Registry) RegisterRecovery(m *RecoveryMetrics) {
	r.mu.Lock()
	r.recovery = m
	r.mu.Unlock()
}

// Snapshot returns one CommSnapshot per registered rank, ordered by rank.
func (r *Registry) Snapshot() []CommSnapshot {
	r.mu.Lock()
	metrics := make([]*CommMetrics, 0, len(r.ranks))
	for _, m := range r.ranks {
		metrics = append(metrics, m)
	}
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].rank < metrics[j].rank })
	out := make([]CommSnapshot, len(metrics))
	for i, m := range metrics {
		out[i] = m.Snapshot()
	}
	return out
}

// snapshotAll is the full dump: comm ranks plus the service section when a
// service is registered.
func (r *Registry) snapshotAll() any {
	r.mu.Lock()
	svc := r.service
	rec := r.recovery
	r.mu.Unlock()
	dump := struct {
		Ranks    []CommSnapshot    `json:"ranks"`
		Service  *ServiceSnapshot  `json:"service,omitempty"`
		Recovery *RecoverySnapshot `json:"recovery,omitempty"`
	}{Ranks: r.Snapshot()}
	if svc != nil {
		s := svc.Snapshot()
		dump.Service = &s
	}
	if rec != nil {
		s := rec.Snapshot()
		dump.Recovery = &s
	}
	return dump
}

// WriteJSON writes the registry snapshot as indented JSON — the teardown
// dump format and the /metrics.json response body. When a ServiceMetrics
// is registered its per-tenant counters appear under "service".
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotAll())
}

// expvar.Publish panics on duplicate names and offers no unpublish, so the
// process-wide "tilecomm" variable is published once and indirects through
// an atomic pointer to whichever registry called Publish most recently.
var (
	publishOnce  sync.Once
	publishedReg atomic.Pointer[Registry]
)

// Publish makes this registry the source of the process-wide "tilecomm"
// expvar variable (shown under /debug/vars). Safe to call repeatedly and
// from multiple registries; the latest call wins.
func (r *Registry) Publish() {
	publishedReg.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("tilecomm", expvar.Func(func() any {
			if reg := publishedReg.Load(); reg != nil {
				return reg.snapshotAll()
			}
			return nil
		}))
	})
}

// DebugMux returns a mux serving the registry's debug surface:
//
//	/debug/vars     expvar, including the "tilecomm" registry snapshot
//	/debug/pprof/   live profiling (net/http/pprof)
//	/metrics.json   the registry snapshot alone, indented
//
// Servers that host their own API (cmd/tileserve) mount this alongside
// their handlers instead of running a second listener.
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// MetricsServer is a running debug/metrics HTTP server. Shut it down
// gracefully with Shutdown (drains in-flight scrapes) or abruptly with
// Close.
type MetricsServer struct {
	// Addr is the bound listen address (host:port).
	Addr string
	srv  *http.Server
}

// Shutdown stops accepting connections and waits for in-flight requests
// to finish, up to ctx's deadline.
func (s *MetricsServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close abruptly closes the listener and every active connection.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// HTTPTimeouts returns the timeout profile every HTTP server in this repo
// uses. Headers and request bodies are small, so reads are tight; the
// write timeout must outlast /debug/pprof/profile's 30-second default
// sample window, so it is generous rather than disabled.
func HTTPTimeouts(srv *http.Server) {
	srv.ReadHeaderTimeout = 5 * time.Second
	srv.ReadTimeout = 15 * time.Second
	srv.WriteTimeout = 90 * time.Second
	srv.IdleTimeout = 2 * time.Minute
}

// Start launches an HTTP server on addr (host:port; use ":0" for an
// OS-assigned port) serving DebugMux with the standard timeout profile.
// The registry is Published as a side effect.
func (r *Registry) Start(addr string) (*MetricsServer, error) {
	r.Publish()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: r.DebugMux()}
	HTTPTimeouts(srv)
	go srv.Serve(ln)
	return &MetricsServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Serve is the legacy form of Start: it returns the bound address and an
// abrupt-stop function. Prefer Start, whose handle can also drain
// gracefully.
func (r *Registry) Serve(addr string) (string, func() error, error) {
	s, err := r.Start(addr)
	if err != nil {
		return "", nil, err
	}
	return s.Addr, s.Close, nil
}
