package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServiceMetricsSnapshot: counters land in the right tenant row, the
// totals sum across tenants, and rows come out sorted by tenant name.
func TestServiceMetricsSnapshot(t *testing.T) {
	sm := NewServiceMetrics()
	b := sm.Tenant("bravo")
	a := sm.Tenant("alpha")
	a.Admitted.Add(3)
	a.Completed.Add(2)
	a.Cancelled.Add(1)
	b.Admitted.Add(1)
	b.Shed.Add(4)
	b.Coalesced.Add(1)
	b.Completed.Add(1)

	snap := sm.Snapshot()
	if len(snap.Tenants) != 2 || snap.Tenants[0].Tenant != "alpha" || snap.Tenants[1].Tenant != "bravo" {
		t.Fatalf("tenants not sorted: %+v", snap.Tenants)
	}
	if snap.Tenants[0].Admitted != 3 || snap.Tenants[0].Cancelled != 1 {
		t.Errorf("alpha row %+v", snap.Tenants[0])
	}
	if snap.Tenants[1].Shed != 4 || snap.Tenants[1].Coalesced != 1 {
		t.Errorf("bravo row %+v", snap.Tenants[1])
	}
	tot := snap.Totals
	if tot.Admitted != 4 || tot.Shed != 4 || tot.Completed != 3 || tot.Cancelled != 1 || tot.Coalesced != 1 {
		t.Errorf("totals %+v", tot)
	}
	if snap.Cache != nil {
		t.Errorf("cache gauges present without a callback: %v", snap.Cache)
	}
}

// TestServiceMetricsSameTenantSameRow: Tenant is get-or-create, so two
// lookups share one row and concurrent increments are not lost.
func TestServiceMetricsSameTenantSameRow(t *testing.T) {
	sm := NewServiceMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sm.Tenant("t").Admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := sm.Snapshot().Totals.Admitted; got != 800 {
		t.Errorf("admitted = %d, want 800", got)
	}
}

// TestServiceMetricsCacheGauges: the callback's gauges ride along in the
// snapshot, and clearing the callback removes them.
func TestServiceMetricsCacheGauges(t *testing.T) {
	sm := NewServiceMetrics()
	sm.SetCacheGauges(func() map[string]uint64 {
		return map[string]uint64{"entries": 7, "evictions": 2}
	})
	snap := sm.Snapshot()
	if snap.Cache["entries"] != 7 || snap.Cache["evictions"] != 2 {
		t.Errorf("cache gauges %v", snap.Cache)
	}
	sm.SetCacheGauges(nil)
	if snap := sm.Snapshot(); snap.Cache != nil {
		t.Errorf("cache gauges survive a nil callback: %v", snap.Cache)
	}
}

// TestRegistryServiceSection: a registered service appears under
// "service" in the JSON dump; an unregistered one leaves the section out.
func TestRegistryServiceSection(t *testing.T) {
	reg := NewRegistry()
	var plain strings.Builder
	if err := reg.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), `"service"`) {
		t.Errorf("service section without a registered service:\n%s", plain.String())
	}

	sm := NewServiceMetrics()
	sm.Tenant("team-a").Shed.Add(9)
	reg.RegisterService(sm)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Service *ServiceSnapshot `json:"service"`
	}
	if err := json.Unmarshal([]byte(b.String()), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Service == nil || dump.Service.Totals.Shed != 9 {
		t.Errorf("service section missing or wrong: %+v", dump.Service)
	}
}

// TestStartShutdown: Start serves the debug surface with the standard
// timeouts and Shutdown drains it within the deadline.
func TestStartShutdown(t *testing.T) {
	reg := NewRegistry()
	srv, err := reg.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics.json", srv.Addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics.json status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics.json", srv.Addr)); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

// TestServeCompat: the legacy Serve form still returns a working address
// and stop function (cmd/tilenode depends on it).
func TestServeCompat(t *testing.T) {
	reg := NewRegistry()
	addr, stop, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestHTTPTimeouts pins the timeout profile: every server must bound
// reads, and the write timeout must outlast pprof's 30-second profile
// window.
func TestHTTPTimeouts(t *testing.T) {
	var srv http.Server
	HTTPTimeouts(&srv)
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("unbounded read/idle timeouts: header=%v read=%v idle=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
	if srv.WriteTimeout <= 30*time.Second {
		t.Errorf("write timeout %v would cut off a default pprof profile", srv.WriteTimeout)
	}
}
