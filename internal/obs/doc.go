// Package obs is the unified observability layer shared by the simulated
// and the real execution paths of the reproduction.
//
// The paper's whole argument is about where time goes: eq. 4 decomposes
// every tile step into CPU-resident terms (A1 fill-MPI-send, A2 compute,
// A3 fill-MPI-recv) and communication terms (B1 wire-rx, B2/B3 kernel
// copies, B4 wire-tx), and the overlapped schedule wins exactly when the
// B side hides behind the A side. This package turns both execution
// substrates into numbers that make that argument checkable:
//
//   - Simulator side (this file): Analyze aggregates the per-activity
//     interval log of a simnet run into a Report — busy/idle/queue-wait per
//     CPU and NIC port, the cluster-wide overlap efficiency
//     (hidden-communication-time / total-communication-time), and the fault
//     counters (retransmits, pauses) attached by internal/sim. The paper's
//     "100% processor utilization" claim and the question "what fraction of
//     the wire time did the schedule actually hide?" both read directly off
//     a Report.
//
//   - Runtime side (comm.go, server.go): InstrumentComm wraps any mp.Comm
//     with per-peer traffic counters, blocking-wait histograms and TCP
//     dial/retry/error counters, exposed over expvar + net/http/pprof and
//     dumpable as a JSON snapshot at teardown.
//
// OBSERVABILITY.md documents every metric and maps it back to the paper's
// A1–A3/B1–B4 terms.
package obs
