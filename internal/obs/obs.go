package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/simnet"
)

// ResourceKind classifies a simulated resource for phase accounting.
type ResourceKind int

const (
	// KindCPU is a processor's CPU: everything it runs is A-side (or a
	// kernel copy demoted to the CPU on DMA-less hardware).
	KindCPU ResourceKind = iota
	// KindNIC is a half-duplex communication channel shared by rx and tx
	// (the CapNone/CapDMA node model).
	KindNIC
	// KindNICIn is a dedicated receive port (CapFullDuplex).
	KindNICIn
	// KindNICOut is a dedicated transmit port (CapFullDuplex).
	KindNICOut
	// KindBus is the single shared medium of the SharedBus interconnect.
	KindBus
	// KindUplink is one upward switch-to-switch link of a hierarchical
	// interconnect (simnet.Fabric).
	KindUplink
	// KindDownlink is one downward switch-to-switch link of a hierarchical
	// interconnect.
	KindDownlink
	// KindOther is a resource the classifier does not recognize; it gets
	// per-resource stats but takes no part in the overlap accounting.
	KindOther
)

func (k ResourceKind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindNIC:
		return "nic"
	case KindNICIn:
		return "rx"
	case KindNICOut:
		return "tx"
	case KindBus:
		return "bus"
	case KindUplink:
		return "up"
	case KindDownlink:
		return "down"
	default:
		return "other"
	}
}

// comm reports whether busy time on this kind of resource counts as
// communication time in the overlap accounting.
func (k ResourceKind) comm() bool {
	switch k {
	case KindNIC, KindNICIn, KindNICOut, KindBus, KindUplink, KindDownlink:
		return true
	default:
		return false
	}
}

// shared reports whether the resource serves the whole cluster rather than
// one node: its busy time is hidden whenever any CPU is busy.
func (k ResourceKind) shared() bool {
	switch k {
	case KindBus, KindUplink, KindDownlink:
		return true
	default:
		return false
	}
}

// Interval is one activity execution on a serial resource: it became ready
// at Ready (all dataflow predecessors done), started at Start ≥ Ready after
// queueing behind the resource, and finished at End.
type Interval struct {
	Ready, Start, End float64
}

// Track is one resource's full execution history.
type Track struct {
	Name string
	Kind ResourceKind
	// Node is the owning processor's rank; for fabric links it is the
	// link's index within its level's direction group; -1 for the bus and
	// unclassified resources.
	Node int64
	// Level is the hierarchy tier of a fabric link (KindUplink,
	// KindDownlink); 0 for everything else.
	Level int
	// Intervals must be non-overlapping (the resource is serial); Analyze
	// sorts them by start time.
	Intervals []Interval
}

// ResourceStats is the per-resource row of a Report. The accounting identity
// Busy + Idle == Makespan holds exactly for every resource in the form
// Idle == Makespan − Busy: Idle is defined as that float64 subtraction, so
// the equality is bit-exact with no tolerance. (The re-added sum Busy + Idle
// can still round one ulp away from Makespan when the operands tie at a
// half-ulp; assert the subtraction form.)
type ResourceStats struct {
	Name string
	Kind ResourceKind
	Node int64
	// Level is the hierarchy tier of a fabric link; 0 otherwise.
	Level int
	// Busy is the total time the resource executed activities.
	Busy float64
	// Idle is Makespan − Busy (exactly): the time the resource sat
	// unoccupied.
	Idle float64
	// QueueWait sums, over the activities this resource ran, the time each
	// spent ready but blocked behind the resource (Start − Ready) — the
	// contention the schedule induced on this resource.
	QueueWait float64
	// Activities is how many activities the resource executed.
	Activities int
}

// Report is the phase accounting of one simulated schedule.
type Report struct {
	Makespan float64
	// Resources lists per-resource stats: CPUs first (by node), then NIC
	// ports (by node, rx before tx), then the bus, then unclassified.
	Resources []ResourceStats
	// CPUBusy is total busy time across CPU resources (the A side plus any
	// kernel copies demoted to CPUs on DMA-less hardware).
	CPUBusy float64
	// CommBusy is total busy time across NIC ports and the bus (the B side:
	// wire occupancy, DMA kernel copies, retransmission timeouts).
	CommBusy float64
	// HiddenComm is the portion of CommBusy during which the owning node's
	// CPU was simultaneously busy — communication the schedule overlapped
	// with computation. Bus time is hidden while any CPU is busy.
	HiddenComm float64
	// OverlapEfficiency = HiddenComm / CommBusy: 1.0 means every
	// communication second hid behind computation, 0 means all of it was
	// exposed. Zero when the schedule communicates nothing.
	OverlapEfficiency float64
	// MeanCPUUtilization is CPUBusy / (Makespan × #CPUs) — the quantity the
	// paper's Section 4 pushes toward 1 for the overlapped schedule.
	MeanCPUUtilization float64

	// LinkLevels aggregates the fabric link tracks per hierarchy tier,
	// lowest level first. Empty when the interconnect is flat.
	LinkLevels []LinkLevelStats

	// Fault counters, attached by internal/sim when a fault plan is active.
	// Retransmits counts lost transmission attempts that were re-sent,
	// Pauses counts transient node pauses injected into CPU program order.
	Retransmits int
	Pauses      int
	// LinkRetransmits breaks Retransmits down per directed processor pair
	// ("p2->p5"). Nil when no retransmission occurred.
	LinkRetransmits map[string]int
}

// LinkLevelStats aggregates one hierarchy tier's uplinks and downlinks: the
// per-level busy/idle/contention summary OBSERVABILITY.md calls the uplink
// occupancy view. The identity Idle == Links×Makespan − Busy holds exactly
// (Idle is defined as that subtraction).
type LinkLevelStats struct {
	// Level is the tier (0 = edge uplinks).
	Level int
	// Links counts the tier's link resources, both directions.
	Links int
	// Busy sums occupancy across the tier's links.
	Busy float64
	// Idle is Links×Makespan − Busy (exactly).
	Idle float64
	// QueueWait sums the time transfers sat ready but queued behind the
	// tier's links — the contention the topology induced.
	QueueWait float64
	// Activities counts hop traversals carried by the tier.
	Activities int
	// MaxBusy is the hottest single link's busy time: the gap between
	// MaxBusy and Busy/Links measures load imbalance across the tier.
	MaxBusy float64
}

// trackOrder ranks tracks for the canonical Resources ordering.
func trackOrder(k ResourceKind) int {
	switch k {
	case KindCPU:
		return 0
	case KindNIC, KindNICIn:
		return 1
	case KindNICOut:
		return 2
	case KindBus:
		return 3
	case KindUplink:
		return 4
	case KindDownlink:
		return 5
	default:
		return 6
	}
}

// Analyze computes the phase accounting of one simulated run: per-resource
// busy/idle/queue-wait and the cluster-wide overlap efficiency. The tracks
// may arrive in any order; the Report's rows come out in canonical order
// (CPUs, NIC ports, bus). Analyze is deterministic: the same tracks produce
// a bit-identical Report.
func Analyze(makespan float64, tracks []Track) *Report {
	r := &Report{Makespan: makespan}
	ts := make([]Track, len(tracks))
	copy(ts, tracks)
	sort.SliceStable(ts, func(i, j int) bool {
		oi, oj := trackOrder(ts[i].Kind), trackOrder(ts[j].Kind)
		if oi != oj {
			return oi < oj
		}
		if ts[i].Level != ts[j].Level {
			return ts[i].Level < ts[j].Level
		}
		return ts[i].Node < ts[j].Node
	})

	// Per-node CPU busy intervals, for the overlap pass.
	cpuBusy := map[int64][]Interval{}
	numCPUs := 0
	for i := range ts {
		tr := &ts[i]
		sort.SliceStable(tr.Intervals, func(a, b int) bool {
			return tr.Intervals[a].Start < tr.Intervals[b].Start
		})
		st := ResourceStats{Name: tr.Name, Kind: tr.Kind, Node: tr.Node, Level: tr.Level}
		for _, iv := range tr.Intervals {
			st.Busy += iv.End - iv.Start
			if w := iv.Start - iv.Ready; w > 0 {
				st.QueueWait += w
			}
			st.Activities++
		}
		st.Idle = makespan - st.Busy
		r.Resources = append(r.Resources, st)
		switch {
		case tr.Kind == KindCPU:
			r.CPUBusy += st.Busy
			cpuBusy[tr.Node] = tr.Intervals
			numCPUs++
		case tr.Kind.comm():
			r.CommBusy += st.Busy
		}
		if tr.Kind == KindUplink || tr.Kind == KindDownlink {
			for len(r.LinkLevels) <= tr.Level {
				r.LinkLevels = append(r.LinkLevels, LinkLevelStats{Level: len(r.LinkLevels)})
			}
			ll := &r.LinkLevels[tr.Level]
			ll.Links++
			ll.Busy += st.Busy
			ll.QueueWait += st.QueueWait
			ll.Activities += st.Activities
			if st.Busy > ll.MaxBusy {
				ll.MaxBusy = st.Busy
			}
		}
	}
	for i := range r.LinkLevels {
		ll := &r.LinkLevels[i]
		ll.Idle = float64(ll.Links)*makespan - ll.Busy
	}

	// allCPU is the union of every CPU's busy intervals — what bus
	// occupancy is overlapped against (the bus serves the whole cluster).
	var allCPU []Interval
	if len(cpuBusy) > 0 {
		var merged []Interval
		for _, ivs := range cpuBusy {
			merged = append(merged, ivs...)
		}
		sort.SliceStable(merged, func(a, b int) bool { return merged[a].Start < merged[b].Start })
		allCPU = union(merged)
	}

	for i := range ts {
		tr := &ts[i]
		if !tr.Kind.comm() {
			continue
		}
		against := allCPU
		if !tr.Kind.shared() {
			against = cpuBusy[tr.Node]
		}
		r.HiddenComm += overlap(tr.Intervals, against)
	}
	if r.CommBusy > 0 {
		r.OverlapEfficiency = r.HiddenComm / r.CommBusy
	}
	if makespan > 0 && numCPUs > 0 {
		r.MeanCPUUtilization = r.CPUBusy / (makespan * float64(numCPUs))
	}
	return r
}

// union merges a start-sorted interval list into a disjoint cover.
func union(ivs []Interval) []Interval {
	var out []Interval
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// overlap returns the total time the intervals of a spend inside the
// intervals of b. Both lists must be start-sorted; b must be disjoint
// (a union or a serial resource's history).
func overlap(a, b []Interval) float64 {
	total := 0.0
	j := 0
	for _, x := range a {
		for j > 0 && b[j-1].End > x.Start {
			j-- // a's intervals may share starts; rewind conservatively
		}
		for ; j < len(b) && b[j].End <= x.Start; j++ {
		}
		for k := j; k < len(b) && b[k].Start < x.End; k++ {
			lo, hi := b[k].Start, b[k].End
			if x.Start > lo {
				lo = x.Start
			}
			if x.End < hi {
				hi = x.End
			}
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// classify parses a simulated resource name as emitted by the sim builder
// ("cpu3", "comm3", "rx3", "tx3", "bus") or the fabric ("up0.3", "down1.2" —
// level, then the link's index within the level's direction group).
func classify(name string) (kind ResourceKind, node int64, level int) {
	for _, p := range []struct {
		prefix string
		kind   ResourceKind
	}{{"cpu", KindCPU}, {"comm", KindNIC}, {"rx", KindNICIn}, {"tx", KindNICOut}} {
		if rest, ok := strings.CutPrefix(name, p.prefix); ok {
			if n, err := strconv.ParseInt(rest, 10, 64); err == nil {
				return p.kind, n, 0
			}
		}
	}
	for _, p := range []struct {
		prefix string
		kind   ResourceKind
	}{{"up", KindUplink}, {"down", KindDownlink}} {
		if rest, ok := strings.CutPrefix(name, p.prefix); ok {
			if l, i, ok := parseLink(rest); ok {
				return p.kind, i, l
			}
		}
	}
	if name == "bus" {
		return KindBus, -1, 0
	}
	return KindOther, -1, 0
}

// parseLink parses the "<level>.<index>" tail of a fabric link name.
func parseLink(s string) (level int, index int64, ok bool) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return 0, 0, false
	}
	l, err := strconv.Atoi(s[:dot])
	if err != nil || l < 0 {
		return 0, 0, false
	}
	i, err := strconv.ParseInt(s[dot+1:], 10, 64)
	if err != nil || i < 0 {
		return 0, 0, false
	}
	return l, i, true
}

// TracksFromTrace rebuilds per-resource tracks from a labeled simulation
// trace (a traced run's simnet.Result.Trace), classifying resources by
// their builder-given names. It is the bridge for callers that already hold
// a full trace; metric-only simulations use the engine's interval log
// instead (see internal/sim).
func TracksFromTrace(entries []simnet.TraceEntry) []Track {
	idx := map[string]int{}
	var tracks []Track
	for _, e := range entries {
		i, ok := idx[e.Resource]
		if !ok {
			kind, node, level := classify(e.Resource)
			i = len(tracks)
			idx[e.Resource] = i
			tracks = append(tracks, Track{Name: e.Resource, Kind: kind, Node: node, Level: level})
		}
		tracks[i].Intervals = append(tracks[i].Intervals,
			Interval{Ready: e.Ready, Start: e.Start, End: e.End})
	}
	return tracks
}

// WriteText renders the report as an aligned text table: one row per
// resource plus the cluster-level summary lines.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-8s %12s %12s %12s %8s %6s\n",
		"resource", "busy(s)", "idle(s)", "queue(s)", "busy%", "acts"); err != nil {
		return err
	}
	for _, st := range r.Resources {
		pct := 0.0
		if r.Makespan > 0 {
			pct = 100 * st.Busy / r.Makespan
		}
		if _, err := fmt.Fprintf(w, "%-8s %12.6f %12.6f %12.6f %7.1f%% %6d\n",
			st.Name, st.Busy, st.Idle, st.QueueWait, pct, st.Activities); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"makespan %.6fs | cpu-busy %.6fs (mean util %.1f%%) | comm-busy %.6fs\n",
		r.Makespan, r.CPUBusy, 100*r.MeanCPUUtilization, r.CommBusy); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"overlap efficiency %.1f%% (hidden %.6fs of %.6fs comm)\n",
		100*r.OverlapEfficiency, r.HiddenComm, r.CommBusy); err != nil {
		return err
	}
	for _, ll := range r.LinkLevels {
		mean := 0.0
		if ll.Links > 0 {
			mean = ll.Busy / float64(ll.Links)
		}
		if _, err := fmt.Fprintf(w,
			"link level %d: %d links | busy %.6fs (mean %.6fs, hottest %.6fs) | queue %.6fs | %d hops\n",
			ll.Level, ll.Links, ll.Busy, mean, ll.MaxBusy, ll.QueueWait, ll.Activities); err != nil {
			return err
		}
	}
	if r.Retransmits > 0 || r.Pauses > 0 {
		links := make([]string, 0, len(r.LinkRetransmits))
		for k := range r.LinkRetransmits {
			links = append(links, k)
		}
		sort.Strings(links)
		var b strings.Builder
		for _, k := range links {
			fmt.Fprintf(&b, " %s×%d", k, r.LinkRetransmits[k])
		}
		if _, err := fmt.Fprintf(w, "faults: %d retransmits, %d pauses%s\n",
			r.Retransmits, r.Pauses, b.String()); err != nil {
			return err
		}
	}
	return nil
}
