package obs

import "sync"

// Recovery metrics: what a supervisor (internal/supervise) observed while
// keeping a world alive across rank crashes. One incident is recorded per
// failure+recovery cycle; the snapshot adds the derived aggregates the
// OBSERVABILITY.md recovery section documents (MTTR, wasted-work fraction,
// restart counts per rank).

// RecoveryIncident is one failure+recovery cycle.
type RecoveryIncident struct {
	// Epoch is the world generation that failed.
	Epoch uint32 `json:"epoch"`
	// Victim is the rank the supervisor blamed for the failure.
	Victim int `json:"victim"`
	// Cause is the victim's exit error, as text.
	Cause string `json:"cause,omitempty"`
	// DetectNs: first process exit → whole world confirmed down.
	DetectNs int64 `json:"detect_ns"`
	// BackoffNs: the deterministic restart delay charged to this incident.
	BackoffNs int64 `json:"backoff_ns"`
	// RestoreNs: world down → next epoch launched (includes BackoffNs).
	RestoreNs int64 `json:"restore_ns"`
	// MTTRNs: first process exit → next epoch launched.
	MTTRNs int64 `json:"mttr_ns"`
	// WastedTiles is the provable recomputation the incident causes: the
	// sum over ranks of checkpointed progress beyond the boundary the
	// rebuilt world restarts from.
	WastedTiles int64 `json:"wasted_tiles"`
}

// RecoveryMetrics collects a supervisor's recovery observations. Safe for
// concurrent use.
type RecoveryMetrics struct {
	mu          sync.Mutex
	size        int
	usefulTiles int64
	incidents   []RecoveryIncident
	restarts    []int64
	failure     string
}

// NewRecoveryMetrics returns a collector for a world of the given size.
// usefulTiles is the tile-execution count of a fault-free run (ranks ×
// tiles per rank); it anchors the wasted-work fraction. Zero disables the
// fraction.
func NewRecoveryMetrics(size int, usefulTiles int64) *RecoveryMetrics {
	return &RecoveryMetrics{size: size, usefulTiles: usefulTiles, restarts: make([]int64, size)}
}

// RecordIncident appends one failure+recovery cycle and charges the
// victim's restart counter.
func (m *RecoveryMetrics) RecordIncident(inc RecoveryIncident) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.incidents = append(m.incidents, inc)
	if inc.Victim >= 0 && inc.Victim < len(m.restarts) {
		m.restarts[inc.Victim]++
	}
}

// RecordFailure marks the supervised run as terminally failed (restart
// budget exhausted or deadline passed) with the typed error's text.
func (m *RecoveryMetrics) RecordFailure(cause string) {
	m.mu.Lock()
	m.failure = cause
	m.mu.Unlock()
}

// RecoverySnapshot is the JSON shape of the supervisor's recovery section.
type RecoverySnapshot struct {
	Size            int                `json:"size"`
	Incidents       []RecoveryIncident `json:"incidents,omitempty"`
	RestartsPerRank []int64            `json:"restarts_per_rank,omitempty"`
	TotalRestarts   int64              `json:"total_restarts"`
	UsefulTiles     int64              `json:"useful_tiles,omitempty"`
	WastedTiles     int64              `json:"wasted_tiles"`
	// WastedFraction = wasted / (useful + wasted): the share of all tile
	// executions that were recomputation forced by crashes.
	WastedFraction float64 `json:"wasted_fraction"`
	MeanDetectNs   int64   `json:"mean_detect_ns,omitempty"`
	MeanRestoreNs  int64   `json:"mean_restore_ns,omitempty"`
	MeanMTTRNs     int64   `json:"mean_mttr_ns,omitempty"`
	// Failure is the typed world-level failure, empty while recoverable.
	Failure string `json:"failure,omitempty"`
}

// Snapshot returns the current aggregates.
func (m *RecoveryMetrics) Snapshot() RecoverySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := RecoverySnapshot{
		Size:        m.size,
		Incidents:   append([]RecoveryIncident(nil), m.incidents...),
		UsefulTiles: m.usefulTiles,
		Failure:     m.failure,
	}
	if len(m.restarts) > 0 {
		s.RestartsPerRank = append([]int64(nil), m.restarts...)
		for _, n := range m.restarts {
			s.TotalRestarts += n
		}
	}
	var detect, restore, mttr int64
	for _, inc := range m.incidents {
		s.WastedTiles += inc.WastedTiles
		detect += inc.DetectNs
		restore += inc.RestoreNs
		mttr += inc.MTTRNs
	}
	if n := int64(len(m.incidents)); n > 0 {
		s.MeanDetectNs = detect / n
		s.MeanRestoreNs = restore / n
		s.MeanMTTRNs = mttr / n
	}
	if total := m.usefulTiles + s.WastedTiles; total > 0 {
		s.WastedFraction = float64(s.WastedTiles) / float64(total)
	}
	return s
}
