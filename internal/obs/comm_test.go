package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mp"
)

// ringTraffic runs a small all-pairs exchange on an in-process world with
// every rank double-wrapped: InstrumentComm outside, mp.WithCounters
// inside. Both layers see the exact same completed operations, so the
// snapshots must agree — the cross-check the acceptance criteria ask for.
func ringTraffic(t *testing.T, size int) ([]*CommMetrics, []*mp.CountingComm) {
	t.Helper()
	world, comms, err := mp.NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	defer world.Close()
	metrics := make([]*CommMetrics, size)
	counting := make([]*mp.CountingComm, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for rank := 0; rank < size; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			counting[rank] = mp.WithCounters(comms[rank])
			metrics[rank] = NewCommMetrics(rank, size)
			c := InstrumentComm(counting[rank], metrics[rank])
			defer c.Close()

			// Blocking sends to every other rank, sized by destination.
			for dst := 0; dst < size; dst++ {
				if dst == rank {
					continue
				}
				payload := bytes.Repeat([]byte{byte(rank)}, 10+dst)
				if err := c.Send(dst, rank, payload); err != nil {
					errs[rank] = err
					return
				}
			}
			// Non-blocking receives from every other rank, completed by Wait.
			reqs := make([]mp.Request, 0, size-1)
			for src := 0; src < size; src++ {
				if src == rank {
					continue
				}
				req, err := c.Irecv(src, src, make([]byte, 64))
				if err != nil {
					errs[rank] = err
					return
				}
				reqs = append(reqs, req)
			}
			if err := mp.WaitAll(reqs...); err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = c.Barrier()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return metrics, counting
}

func TestInstrumentCommMatchesCounters(t *testing.T) {
	const size = 4
	metrics, counting := ringTraffic(t, size)
	for rank := 0; rank < size; rank++ {
		snap := metrics[rank].Snapshot()
		ref := counting[rank].C.Snapshot()
		if snap.SendMsgs != ref.SendMsgs || snap.SendBytes != ref.SendBytes ||
			snap.RecvMsgs != ref.RecvMsgs || snap.RecvBytes != ref.RecvBytes ||
			snap.Barriers != ref.Barriers {
			t.Errorf("rank %d: snapshot %+v disagrees with CountingComm %+v", rank, snap, ref)
		}
		// Per-peer detail: rank sent 10+dst bytes to each dst.
		if len(snap.Peers) != size-1 {
			t.Fatalf("rank %d: %d peers with traffic, want %d", rank, len(snap.Peers), size-1)
		}
		for _, p := range snap.Peers {
			if p.SendMsgs != 1 || p.SendBytes != int64(10+p.Peer) {
				t.Errorf("rank %d -> %d: send %d msgs / %d bytes, want 1 / %d",
					rank, p.Peer, p.SendMsgs, p.SendBytes, 10+p.Peer)
			}
			if p.RecvMsgs != 1 || p.RecvBytes != int64(10+rank) {
				t.Errorf("rank %d <- %d: recv %d msgs / %d bytes, want 1 / %d",
					rank, p.Peer, p.RecvMsgs, p.RecvBytes, 10+rank)
			}
		}
		// Every Wait and the Barrier passed through the histogram.
		wantWaits := int64(size) // size-1 request Waits + 1 barrier
		if snap.WaitCount != wantWaits {
			t.Errorf("rank %d: %d waits recorded, want %d", rank, snap.WaitCount, wantWaits)
		}
		var histTotal int64
		for _, b := range snap.WaitHist {
			histTotal += b.Count
		}
		if histTotal != snap.WaitCount {
			t.Errorf("rank %d: histogram holds %d waits, count says %d", rank, histTotal, snap.WaitCount)
		}
	}
}

func TestWaitBucketBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {-time.Second, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1024, 10}, {time.Duration(1) << 50, waitBuckets - 1},
	}
	for _, tc := range cases {
		if got := waitBucket(tc.d); got != tc.want {
			t.Errorf("waitBucket(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestCommMetricsTCPEvents(t *testing.T) {
	m := NewCommMetrics(0, 2)
	for i := 0; i < 3; i++ {
		m.TCPEvent(mp.TCPEvent{Kind: mp.EvDialRetry, Peer: 1, Attempt: i, Err: io.EOF})
	}
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvDialOK, Peer: 1, Attempt: 3})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvAcceptOK, Peer: 1})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvHandshakeErr, Peer: -1, Err: io.EOF})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvWriteErr, Peer: 1, Err: io.EOF})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvHeartbeat, Peer: 1})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvHeartbeat, Peer: 1})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvPeerLost, Peer: 1, Err: io.EOF})
	m.TCPEvent(mp.TCPEvent{Kind: mp.EvAbort, Peer: 1, Err: io.EOF})
	got := m.Snapshot().TCP
	want := TCPCounts{DialRetries: 3, DialOKs: 1, AcceptOKs: 1, HandshakeErrs: 1, WriteErrs: 1,
		Heartbeats: 2, PeersLost: 1, Aborts: 1}
	if got != want {
		t.Errorf("TCP counts = %+v, want %+v", got, want)
	}
}

func TestCommMetricsCheckpoints(t *testing.T) {
	m := NewCommMetrics(0, 2)
	m.RecordCheckpoints(2, 4096)
	m.RecordCheckpoints(1, 2048)
	s := m.Snapshot()
	if s.Checkpoints != 3 || s.CheckpointBytes != 6144 {
		t.Errorf("checkpoints = %d/%d bytes, want 3/6144", s.Checkpoints, s.CheckpointBytes)
	}
}

// TestRegistryServe spins up the metrics endpoint on a loopback port and
// checks all three surfaces: /metrics.json round-trips the snapshot,
// /debug/vars carries the published "tilecomm" variable, and
// /debug/pprof/ answers.
func TestRegistryServe(t *testing.T) {
	metrics, _ := ringTraffic(t, 2)
	reg := NewRegistry()
	for _, m := range metrics {
		reg.Register(m)
	}
	addr, shutdown, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return body
	}

	var dump struct {
		Ranks []CommSnapshot `json:"ranks"`
	}
	if err := json.Unmarshal(get("/metrics.json"), &dump); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if len(dump.Ranks) != 2 || dump.Ranks[0].Rank != 0 || dump.Ranks[1].Rank != 1 {
		t.Fatalf("metrics.json ranks = %+v", dump.Ranks)
	}
	for _, s := range dump.Ranks {
		if s.SendMsgs != 1 || s.RecvMsgs != 1 {
			t.Errorf("rank %d: %d sends / %d recvs over HTTP, want 1 / 1", s.Rank, s.SendMsgs, s.RecvMsgs)
		}
	}
	if vars := string(get("/debug/vars")); !strings.Contains(vars, `"tilecomm"`) {
		t.Error("/debug/vars does not carry the tilecomm variable")
	}
	if prof := string(get("/debug/pprof/")); !strings.Contains(prof, "goroutine") {
		t.Error("/debug/pprof/ index looks wrong")
	}

	// WriteJSON (the teardown dump) must match what the endpoint served.
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump2 struct {
		Ranks []CommSnapshot `json:"ranks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump2); err != nil {
		t.Fatal(err)
	}
	if len(dump2.Ranks) != len(dump.Ranks) {
		t.Errorf("teardown dump has %d ranks, endpoint served %d", len(dump2.Ranks), len(dump.Ranks))
	}
}

// TestRegistryPublishTwice: Publish from two registries must not panic
// (expvar forbids duplicate names); the latest registry wins.
func TestRegistryPublishTwice(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Publish()
	b.Publish()
	m := NewCommMetrics(7, 8)
	b.Register(m)
	snaps := b.Snapshot()
	if len(snaps) != 1 || snaps[0].Rank != 7 {
		t.Errorf("snapshot = %+v", snaps)
	}
}
