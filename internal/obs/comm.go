package obs

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/mp"
)

// waitBuckets is the number of log2 histogram buckets for blocking-wait
// durations. Bucket i counts waits with duration in [2^i, 2^(i+1)) ns,
// bucket 0 additionally absorbs sub-nanosecond waits; the last bucket is
// open-ended. 40 buckets reach ~18 minutes, far beyond any sane wait.
const waitBuckets = 40

// waitBucket maps a wait duration to its histogram bucket.
func waitBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1 // floor(log2 ns)
	if b >= waitBuckets {
		b = waitBuckets - 1
	}
	return b
}

// peerCounters is the per-peer traffic tally. All fields are atomics so the
// decorated Comm stays safe for the concurrent use mp.Comm permits.
type peerCounters struct {
	sendMsgs, sendBytes atomic.Int64
	recvMsgs, recvBytes atomic.Int64
}

// CommMetrics collects live counters for one rank's mp.Comm endpoint:
// per-peer send/recv traffic, a log2 histogram of blocking-wait times
// (Recv, Request.Wait, Barrier), and TCP transport lifecycle counters fed
// by mp.TCPOptions.OnEvent. Create one with NewCommMetrics, wrap the
// endpoint with InstrumentComm, and read it out with Snapshot; Registry
// aggregates several (one per in-process rank) behind one HTTP endpoint.
type CommMetrics struct {
	rank, size int
	peers      []peerCounters // indexed by peer rank
	barriers   atomic.Int64

	waitHist    [waitBuckets]atomic.Int64
	waitCount   atomic.Int64
	waitTotalNs atomic.Int64

	tcpDialRetries  atomic.Int64
	tcpDialOKs      atomic.Int64
	tcpAcceptOKs    atomic.Int64
	tcpHandshakeErr atomic.Int64
	tcpWriteErr     atomic.Int64
	tcpHeartbeats   atomic.Int64
	tcpPeersLost    atomic.Int64
	tcpAborts       atomic.Int64
	tcpStaleEpochs  atomic.Int64

	checkpoints     atomic.Int64
	checkpointBytes atomic.Int64
}

// NewCommMetrics returns a metrics collector for the given rank in a world
// of the given size.
func NewCommMetrics(rank, size int) *CommMetrics {
	return &CommMetrics{rank: rank, size: size, peers: make([]peerCounters, size)}
}

// Rank returns the rank this collector was created for.
func (m *CommMetrics) Rank() int { return m.rank }

// TCPEvent tallies a transport lifecycle event; pass it as
// mp.TCPOptions.OnEvent when dialing the mesh. Safe for concurrent use.
func (m *CommMetrics) TCPEvent(ev mp.TCPEvent) {
	switch ev.Kind {
	case mp.EvDialRetry:
		m.tcpDialRetries.Add(1)
	case mp.EvDialOK:
		m.tcpDialOKs.Add(1)
	case mp.EvAcceptOK:
		m.tcpAcceptOKs.Add(1)
	case mp.EvHandshakeErr:
		m.tcpHandshakeErr.Add(1)
	case mp.EvWriteErr:
		m.tcpWriteErr.Add(1)
	case mp.EvHeartbeat:
		m.tcpHeartbeats.Add(1)
	case mp.EvPeerLost:
		m.tcpPeersLost.Add(1)
	case mp.EvAbort:
		m.tcpAborts.Add(1)
	case mp.EvStaleEpoch:
		m.tcpStaleEpochs.Add(1)
	}
}

// RecordCheckpoints tallies snapshot activity reported by the runner (count
// of checkpoints written and their total on-disk bytes). Safe for
// concurrent use.
func (m *CommMetrics) RecordCheckpoints(count int, bytes int64) {
	m.checkpoints.Add(int64(count))
	m.checkpointBytes.Add(bytes)
}

// recordWait adds one blocking-wait observation to the histogram.
func (m *CommMetrics) recordWait(d time.Duration) {
	m.waitHist[waitBucket(d)].Add(1)
	m.waitCount.Add(1)
	m.waitTotalNs.Add(d.Nanoseconds())
}

// PeerTraffic is the snapshot of traffic exchanged with one peer.
type PeerTraffic struct {
	Peer      int   `json:"peer"`
	SendMsgs  int64 `json:"send_msgs"`
	SendBytes int64 `json:"send_bytes"`
	RecvMsgs  int64 `json:"recv_msgs"`
	RecvBytes int64 `json:"recv_bytes"`
}

// WaitBucket is one non-empty histogram bucket: Count waits with duration
// in [LoNs, 2*LoNs) nanoseconds.
type WaitBucket struct {
	LoNs  int64 `json:"lo_ns"`
	Count int64 `json:"count"`
}

// TCPCounts is the snapshot of transport lifecycle counters.
type TCPCounts struct {
	DialRetries   int64 `json:"dial_retries"`
	DialOKs       int64 `json:"dial_oks"`
	AcceptOKs     int64 `json:"accept_oks"`
	HandshakeErrs int64 `json:"handshake_errs"`
	WriteErrs     int64 `json:"write_errs"`
	Heartbeats    int64 `json:"heartbeats,omitempty"`
	PeersLost     int64 `json:"peers_lost,omitempty"`
	Aborts        int64 `json:"aborts,omitempty"`
	StaleEpochs   int64 `json:"stale_epochs,omitempty"`
}

// CommSnapshot is a plain-value copy of a CommMetrics, shaped for JSON.
type CommSnapshot struct {
	Rank      int           `json:"rank"`
	Size      int           `json:"size"`
	SendMsgs  int64         `json:"send_msgs"`
	SendBytes int64         `json:"send_bytes"`
	RecvMsgs  int64         `json:"recv_msgs"`
	RecvBytes int64         `json:"recv_bytes"`
	Barriers  int64         `json:"barriers"`
	Peers     []PeerTraffic `json:"peers,omitempty"` // peers with traffic only
	WaitCount int64         `json:"wait_count"`
	WaitNs    int64         `json:"wait_total_ns"`
	WaitHist  []WaitBucket  `json:"wait_hist,omitempty"`
	TCP       TCPCounts     `json:"tcp"`
	// Checkpoint activity reported via RecordCheckpoints.
	Checkpoints     int64 `json:"checkpoints,omitempty"`
	CheckpointBytes int64 `json:"checkpoint_bytes,omitempty"`
}

// Snapshot returns the current counter values. The per-counter loads are
// individually atomic but not mutually consistent — a snapshot taken while
// traffic is in flight may see a message's count before its bytes. Take
// teardown snapshots after the endpoint quiesces.
func (m *CommMetrics) Snapshot() CommSnapshot {
	s := CommSnapshot{Rank: m.rank, Size: m.size}
	for p := range m.peers {
		pc := &m.peers[p]
		t := PeerTraffic{
			Peer:      p,
			SendMsgs:  pc.sendMsgs.Load(),
			SendBytes: pc.sendBytes.Load(),
			RecvMsgs:  pc.recvMsgs.Load(),
			RecvBytes: pc.recvBytes.Load(),
		}
		s.SendMsgs += t.SendMsgs
		s.SendBytes += t.SendBytes
		s.RecvMsgs += t.RecvMsgs
		s.RecvBytes += t.RecvBytes
		if t.SendMsgs != 0 || t.RecvMsgs != 0 {
			s.Peers = append(s.Peers, t)
		}
	}
	s.Barriers = m.barriers.Load()
	s.WaitCount = m.waitCount.Load()
	s.WaitNs = m.waitTotalNs.Load()
	for b := range m.waitHist {
		if n := m.waitHist[b].Load(); n != 0 {
			s.WaitHist = append(s.WaitHist, WaitBucket{LoNs: int64(1) << b, Count: n})
		}
	}
	s.TCP = TCPCounts{
		DialRetries:   m.tcpDialRetries.Load(),
		DialOKs:       m.tcpDialOKs.Load(),
		AcceptOKs:     m.tcpAcceptOKs.Load(),
		HandshakeErrs: m.tcpHandshakeErr.Load(),
		WriteErrs:     m.tcpWriteErr.Load(),
		Heartbeats:    m.tcpHeartbeats.Load(),
		PeersLost:     m.tcpPeersLost.Load(),
		Aborts:        m.tcpAborts.Load(),
		StaleEpochs:   m.tcpStaleEpochs.Load(),
	}
	s.Checkpoints = m.checkpoints.Load()
	s.CheckpointBytes = m.checkpointBytes.Load()
	return s
}

// InstrumentComm wraps c so every operation updates m: per-peer traffic on
// Send/Isend/Recv/Irecv, and the blocking-wait histogram on Recv,
// Request.Wait and Barrier. It generalizes mp.WithCounters — same drop-in
// contract, but with the per-peer / latency / transport detail the live
// metrics endpoint serves. Counting happens only on success, matching the
// simulator's convention that failed transfers contribute retransmits, not
// traffic.
func InstrumentComm(c mp.Comm, m *CommMetrics) mp.Comm {
	return &instrumentedComm{Comm: c, m: m}
}

type instrumentedComm struct {
	mp.Comm
	m *CommMetrics
}

func (c *instrumentedComm) Send(dst, tag int, data []byte) error {
	err := c.Comm.Send(dst, tag, data)
	if err == nil && dst >= 0 && dst < len(c.m.peers) {
		c.m.peers[dst].sendMsgs.Add(1)
		c.m.peers[dst].sendBytes.Add(int64(len(data)))
	}
	return err
}

func (c *instrumentedComm) Isend(dst, tag int, data []byte) (mp.Request, error) {
	req, err := c.Comm.Isend(dst, tag, data)
	if err == nil && dst >= 0 && dst < len(c.m.peers) {
		c.m.peers[dst].sendMsgs.Add(1)
		c.m.peers[dst].sendBytes.Add(int64(len(data)))
	}
	if err != nil {
		return nil, err
	}
	// Send-side waits still go in the histogram; bytes were counted above.
	return &instrumentedReq{Request: req, m: c.m}, nil
}

func (c *instrumentedComm) Recv(src, tag int, buf []byte) (mp.Status, error) {
	start := time.Now()
	st, err := c.Comm.Recv(src, tag, buf)
	c.m.recordWait(time.Since(start))
	if err == nil {
		c.countRecv(st)
	}
	return st, err
}

func (c *instrumentedComm) Irecv(src, tag int, buf []byte) (mp.Request, error) {
	req, err := c.Comm.Irecv(src, tag, buf)
	if err != nil {
		return nil, err
	}
	return &instrumentedReq{Request: req, m: c.m, recv: true, comm: c}, nil
}

func (c *instrumentedComm) Barrier() error {
	start := time.Now()
	err := c.Comm.Barrier()
	c.m.recordWait(time.Since(start))
	if err == nil {
		c.m.barriers.Add(1)
	}
	return err
}

func (c *instrumentedComm) countRecv(st mp.Status) {
	if st.Source >= 0 && st.Source < len(c.m.peers) {
		c.m.peers[st.Source].recvMsgs.Add(1)
		c.m.peers[st.Source].recvBytes.Add(int64(st.Bytes))
	}
}

// instrumentedReq wraps a Request: Wait durations feed the blocking-wait
// histogram; completed receives are counted once, whether the completion is
// observed via Wait or Test.
type instrumentedReq struct {
	mp.Request
	m       *CommMetrics
	recv    bool
	comm    *instrumentedComm
	counted atomic.Bool
}

func (r *instrumentedReq) Wait() (mp.Status, error) {
	start := time.Now()
	st, err := r.Request.Wait()
	r.m.recordWait(time.Since(start))
	if err == nil && r.recv && r.counted.CompareAndSwap(false, true) {
		r.comm.countRecv(st)
	}
	return st, err
}

func (r *instrumentedReq) Test() (bool, mp.Status, error) {
	done, st, err := r.Request.Test()
	if done && err == nil && r.recv && r.counted.CompareAndSwap(false, true) {
		r.comm.countRecv(st)
	}
	return done, st, err
}
