package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ServiceMetrics is the planning service's admission-side observability:
// per-tenant counters for every fate a request can meet (admitted, shed,
// coalesced, cancelled, panicked, completed) plus a pluggable gauge
// callback for the evaluation cache. It rides the same Registry/expvar/
// HTTP plumbing CommMetrics uses, so one /metrics.json read shows both
// where a cluster's time went and where a service's requests went.
//
// The import direction forces the cache indirection: sim imports obs for
// fault counters, so obs cannot import sim to read sim.CacheStats.
// SetCacheGauges accepts a plain func() map[string]uint64 instead; the
// service wires it to its cache at startup.
type ServiceMetrics struct {
	mu      sync.Mutex
	tenants map[string]*TenantCounters
	cacheFn atomic.Pointer[func() map[string]uint64]
}

// NewServiceMetrics returns an empty collector.
func NewServiceMetrics() *ServiceMetrics {
	return &ServiceMetrics{tenants: make(map[string]*TenantCounters)}
}

// TenantCounters counts one tenant's request fates. All fields are
// monotone; increment them directly. A request is Admitted exactly once
// when it passes admission control, then lands in exactly one of
// Completed, Cancelled or Panics; Shed requests were never admitted;
// Coalesced counts admitted requests whose answer was shared from a
// concurrent identical evaluation rather than computed.
type TenantCounters struct {
	Admitted  atomic.Uint64
	Shed      atomic.Uint64
	Coalesced atomic.Uint64
	Cancelled atomic.Uint64
	Panics    atomic.Uint64
	Completed atomic.Uint64
}

// TenantSnapshot is one tenant's counters at a point in time.
type TenantSnapshot struct {
	Tenant    string `json:"tenant"`
	Admitted  uint64 `json:"admitted"`
	Shed      uint64 `json:"shed"`
	Coalesced uint64 `json:"coalesced"`
	Cancelled uint64 `json:"cancelled"`
	Panics    uint64 `json:"panics"`
	Completed uint64 `json:"completed"`
}

// ServiceSnapshot is the full service section of a metrics dump: every
// tenant (sorted by name, so dumps are diffable), the cross-tenant totals,
// and the cache gauges if a callback is installed (keys sorted by
// encoding/json).
type ServiceSnapshot struct {
	Tenants []TenantSnapshot  `json:"tenants"`
	Totals  TenantSnapshot    `json:"totals"`
	Cache   map[string]uint64 `json:"cache,omitempty"`
}

// Tenant returns the counters for name, creating them on first use. The
// caller has already validated name (planapi bounds tenant labels), so an
// unknown tenant is a new row, not an error; the empty name is the
// anonymous tenant.
func (s *ServiceMetrics) Tenant(name string) *TenantCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil {
		t = &TenantCounters{}
		s.tenants[name] = t
	}
	return t
}

// SetCacheGauges installs (or replaces) the cache-gauge callback. The
// callback must be safe for concurrent use; it is invoked on every
// snapshot.
func (s *ServiceMetrics) SetCacheGauges(fn func() map[string]uint64) {
	if fn == nil {
		s.cacheFn.Store(nil)
		return
	}
	s.cacheFn.Store(&fn)
}

// Snapshot captures every tenant's counters, the totals, and the cache
// gauges. Tenants are sorted by name for deterministic output.
func (s *ServiceMetrics) Snapshot() ServiceSnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	rows := make(map[string]*TenantCounters, len(s.tenants))
	for name, t := range s.tenants {
		names = append(names, name)
		rows[name] = t
	}
	s.mu.Unlock()
	sort.Strings(names)

	out := ServiceSnapshot{Tenants: make([]TenantSnapshot, 0, len(names))}
	out.Totals.Tenant = "total"
	for _, name := range names {
		t := rows[name]
		snap := TenantSnapshot{
			Tenant:    name,
			Admitted:  t.Admitted.Load(),
			Shed:      t.Shed.Load(),
			Coalesced: t.Coalesced.Load(),
			Cancelled: t.Cancelled.Load(),
			Panics:    t.Panics.Load(),
			Completed: t.Completed.Load(),
		}
		out.Tenants = append(out.Tenants, snap)
		out.Totals.Admitted += snap.Admitted
		out.Totals.Shed += snap.Shed
		out.Totals.Coalesced += snap.Coalesced
		out.Totals.Cancelled += snap.Cancelled
		out.Totals.Panics += snap.Panics
		out.Totals.Completed += snap.Completed
	}
	if fn := s.cacheFn.Load(); fn != nil {
		out.Cache = (*fn)()
	}
	return out
}
