package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simnet"
)

// twoNodeTracks models a tiny cluster: cpu0 busy [0,4] and [6,8], its NIC
// transmitting [2,5] (2s hidden behind cpu0, 1s exposed), cpu1 busy [1,3],
// its NIC receiving [5,7] (fully exposed — cpu1 is idle then), and a bus
// occupied [2,3] (hidden: some CPU is busy throughout).
func twoNodeTracks() []Track {
	return []Track{
		{Name: "tx0", Kind: KindNICOut, Node: 0, Intervals: []Interval{{Ready: 2, Start: 2, End: 5}}},
		{Name: "cpu0", Kind: KindCPU, Node: 0, Intervals: []Interval{{0, 0, 4}, {4, 6, 8}}},
		{Name: "cpu1", Kind: KindCPU, Node: 1, Intervals: []Interval{{0, 1, 3}}},
		{Name: "rx1", Kind: KindNICIn, Node: 1, Intervals: []Interval{{5, 5, 7}}},
		{Name: "bus", Kind: KindBus, Node: -1, Intervals: []Interval{{2, 2, 3}}},
	}
}

func TestAnalyzeAccountingIdentity(t *testing.T) {
	const makespan = 8.0
	r := Analyze(makespan, twoNodeTracks())
	if len(r.Resources) != 5 {
		t.Fatalf("got %d resource rows, want 5", len(r.Resources))
	}
	for _, st := range r.Resources {
		if st.Busy+st.Idle != makespan {
			t.Errorf("%s: busy %g + idle %g != makespan %g", st.Name, st.Busy, st.Idle, makespan)
		}
	}
	// Canonical ordering: CPUs by node, then NIC ports, then bus.
	wantOrder := []string{"cpu0", "cpu1", "rx1", "tx0", "bus"}
	for i, st := range r.Resources {
		if st.Name != wantOrder[i] {
			t.Errorf("resource[%d] = %s, want %s", i, st.Name, wantOrder[i])
		}
	}
}

func TestAnalyzeOverlap(t *testing.T) {
	r := Analyze(8, twoNodeTracks())
	// CPU busy: cpu0 (4+2) + cpu1 (2) = 8.
	if r.CPUBusy != 8 {
		t.Errorf("CPUBusy = %g, want 8", r.CPUBusy)
	}
	// Comm busy: tx0 3s + rx1 2s + bus 1s = 6.
	if r.CommBusy != 6 {
		t.Errorf("CommBusy = %g, want 6", r.CommBusy)
	}
	// Hidden: tx0 [2,5] vs cpu0 [0,4]∪[6,8] → 2s; rx1 [5,7] vs cpu1 [1,3]
	// → 0s; bus [2,3] vs any-CPU busy ([0,4]∪[6,8]) → 1s. Total 3.
	if r.HiddenComm != 3 {
		t.Errorf("HiddenComm = %g, want 3", r.HiddenComm)
	}
	if r.OverlapEfficiency != 0.5 {
		t.Errorf("OverlapEfficiency = %g, want 0.5", r.OverlapEfficiency)
	}
	// Mean CPU utilization: 8 busy / (8s × 2 CPUs) = 0.5.
	if r.MeanCPUUtilization != 0.5 {
		t.Errorf("MeanCPUUtilization = %g, want 0.5", r.MeanCPUUtilization)
	}
}

func TestAnalyzeQueueWait(t *testing.T) {
	tracks := []Track{
		{Name: "cpu0", Kind: KindCPU, Node: 0, Intervals: []Interval{
			{Ready: 0, Start: 0, End: 2},
			{Ready: 0, Start: 2, End: 3}, // queued 2s behind the first
		}},
	}
	r := Analyze(3, tracks)
	if r.Resources[0].QueueWait != 2 {
		t.Errorf("QueueWait = %g, want 2", r.Resources[0].QueueWait)
	}
	if r.Resources[0].Activities != 2 {
		t.Errorf("Activities = %d, want 2", r.Resources[0].Activities)
	}
}

func TestAnalyzeNoComm(t *testing.T) {
	r := Analyze(4, []Track{
		{Name: "cpu0", Kind: KindCPU, Node: 0, Intervals: []Interval{{0, 0, 4}}},
	})
	if r.OverlapEfficiency != 0 || r.CommBusy != 0 {
		t.Errorf("comm-free schedule: eff %g comm %g, want 0 0", r.OverlapEfficiency, r.CommBusy)
	}
	if r.MeanCPUUtilization != 1 {
		t.Errorf("util = %g, want 1", r.MeanCPUUtilization)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	r := Analyze(0, nil)
	if r.OverlapEfficiency != 0 || r.MeanCPUUtilization != 0 || len(r.Resources) != 0 {
		t.Errorf("empty analysis not zeroed: %+v", r)
	}
}

func TestUnion(t *testing.T) {
	got := union([]Interval{{0, 0, 2}, {0, 1, 3}, {0, 3, 4}, {0, 6, 7}})
	want := []Interval{{0, 0, 4}, {0, 6, 7}}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Errorf("union[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOverlapPartial(t *testing.T) {
	a := []Interval{{0, 1, 5}}
	b := []Interval{{0, 0, 2}, {0, 3, 4}, {0, 4.5, 10}}
	// [1,5] ∩ ([0,2]∪[3,4]∪[4.5,10]) = [1,2] + [3,4] + [4.5,5] = 2.5
	if got := overlap(a, b); got != 2.5 {
		t.Errorf("overlap = %g, want 2.5", got)
	}
	if got := overlap(a, nil); got != 0 {
		t.Errorf("overlap vs empty = %g, want 0", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name  string
		kind  ResourceKind
		node  int64
		level int
	}{
		{"cpu0", KindCPU, 0, 0}, {"cpu15", KindCPU, 15, 0},
		{"comm3", KindNIC, 3, 0}, {"rx2", KindNICIn, 2, 0}, {"tx7", KindNICOut, 7, 0},
		{"bus", KindBus, -1, 0}, {"weird", KindOther, -1, 0}, {"cpuX", KindOther, -1, 0},
		{"up0.3", KindUplink, 3, 0}, {"down1.12", KindDownlink, 12, 1},
		{"up2", KindOther, -1, 0}, {"up.3", KindOther, -1, 0}, {"upX.3", KindOther, -1, 0},
	}
	for _, c := range cases {
		k, n, l := classify(c.name)
		if k != c.kind || n != c.node || l != c.level {
			t.Errorf("classify(%q) = (%v, %d, %d), want (%v, %d, %d)",
				c.name, k, n, l, c.kind, c.node, c.level)
		}
	}
}

func TestAnalyzeLinkLevels(t *testing.T) {
	tracks := []Track{
		{Name: "cpu0", Kind: KindCPU, Node: 0, Intervals: []Interval{{0, 0, 10}}},
		{Name: "up0.0", Kind: KindUplink, Node: 0, Level: 0,
			Intervals: []Interval{{0, 0, 4}, {4, 5, 7}}},
		{Name: "up0.1", Kind: KindUplink, Node: 1, Level: 0,
			Intervals: []Interval{{0, 0, 2}}},
		{Name: "down0.0", Kind: KindDownlink, Node: 0, Level: 0,
			Intervals: []Interval{{0, 4, 6}}},
		{Name: "up1.0", Kind: KindUplink, Node: 0, Level: 1,
			Intervals: []Interval{{0, 1, 2}}},
	}
	r := Analyze(10, tracks)
	if len(r.LinkLevels) != 2 {
		t.Fatalf("got %d link levels, want 2", len(r.LinkLevels))
	}
	l0 := r.LinkLevels[0]
	if l0.Links != 3 || l0.Busy != 10 || l0.QueueWait != 5 || l0.Activities != 4 ||
		l0.MaxBusy != 6 || l0.Idle != 20 {
		t.Errorf("level 0 stats wrong: %+v", l0)
	}
	l1 := r.LinkLevels[1]
	if l1.Links != 1 || l1.Busy != 1 || l1.MaxBusy != 1 || l1.Idle != 9 {
		t.Errorf("level 1 stats wrong: %+v", l1)
	}
	// Link time is hidden against the union of all CPUs (links are shared).
	if r.CommBusy != 11 || r.HiddenComm != 11 || r.OverlapEfficiency != 1 {
		t.Errorf("overlap accounting wrong: comm=%g hidden=%g eff=%g",
			r.CommBusy, r.HiddenComm, r.OverlapEfficiency)
	}
	// Canonical order: CPUs, then uplinks by level then index, then downlinks.
	want := []string{"cpu0", "up0.0", "up0.1", "up1.0", "down0.0"}
	for i, st := range r.Resources {
		if st.Name != want[i] {
			t.Errorf("resource %d = %q, want %q", i, st.Name, want[i])
		}
	}
}

func TestTracksFromTrace(t *testing.T) {
	entries := []simnet.TraceEntry{
		{Resource: "cpu0", Label: "compute", Start: 0, End: 2, Ready: 0},
		{Resource: "comm0", Label: "wire-tx", Start: 2, End: 3, Ready: 2},
		{Resource: "cpu0", Label: "compute", Start: 2, End: 4, Ready: 1},
	}
	tracks := TracksFromTrace(entries)
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks, want 2", len(tracks))
	}
	if tracks[0].Name != "cpu0" || tracks[0].Kind != KindCPU || len(tracks[0].Intervals) != 2 {
		t.Errorf("cpu track wrong: %+v", tracks[0])
	}
	if tracks[1].Name != "comm0" || tracks[1].Kind != KindNIC || tracks[1].Node != 0 {
		t.Errorf("comm track wrong: %+v", tracks[1])
	}
	if iv := tracks[0].Intervals[1]; iv.Ready != 1 || iv.Start != 2 || iv.End != 4 {
		t.Errorf("interval not carried over: %+v", iv)
	}
}

func TestWriteText(t *testing.T) {
	r := Analyze(8, twoNodeTracks())
	r.Retransmits = 3
	r.Pauses = 1
	r.LinkRetransmits = map[string]int{"p0->p1": 3}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cpu0", "bus", "overlap efficiency 50.0%",
		"3 retransmits", "1 pauses", "p0->p1×3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}
