// Package schedule implements linear time schedules for tiled iteration
// spaces (Sections 2.5, 3 and 4 of the paper).
//
// A linear schedule Π assigns tile j^S the execution step
//
//	t(j^S) = ⌊(Π·j^S + t₀) / dispΠ⌋ ,  t₀ = −min{Π·j : j ∈ J^S},
//	dispΠ = min{Π·d : d ∈ D^S}
//
// Two schedules matter here:
//
//   - the non-overlapping optimal schedule Π = (1, 1, …, 1) for the unit
//     dependence matrix of the tiled space (Hodzic & Shang), in which each
//     step is a full receive→compute→send triplet, and
//   - the overlapping schedule with coefficient 1 along the processor
//     mapping dimension and 2 along every other dimension
//     (t = 2j₁+…+2j_{i−1}+j_i+2j_{i+1}+…+2j_n), which permits computation
//     at step k to overlap the send of step k−1's results and the receive
//     of step k+1's inputs (Section 4, after Andronikos et al.'s UET-UCT
//     optimality result).
package schedule
