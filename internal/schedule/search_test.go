package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/space"
)

func TestOptimalLinearUnitDeps(t *testing.T) {
	// For unit dependences on any box, Π = (1,…,1) is optimal (Section 3).
	s := space.MustRect(6, 4, 3)
	l, length, err := OptimalLinear(s, deps.Unit(3), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Pi.Equal(ilmath.V(1, 1, 1)) {
		t.Errorf("Π = %v, want (1,1,1)", l.Pi)
	}
	if length != 5+3+2+1 {
		t.Errorf("length = %d, want 11", length)
	}
}

func TestOptimalLinearExploitsDisp(t *testing.T) {
	// D = {(2,0),(0,2)}: Π = (1,1) has dispΠ = 2, halving the step count —
	// the search must find a schedule of length ⌈(u1+u2)/2⌉+1.
	s := space.MustRect(9, 9)
	d := deps.MustNewSet(ilmath.V(2, 0), ilmath.V(0, 2))
	_, length, err := OptimalLinear(s, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if length != 9 { // (8+8)/2 + 1
		t.Errorf("length = %d, want 9", length)
	}
}

func TestOptimalLinearSkewedDeps(t *testing.T) {
	// D = {(1,-1),(1,0),(1,1)} (wavefront): Π must weight dim 0 enough to
	// stay valid, e.g. (1,0) or (2,1). On a wide box the optimum is (1,0)
	// with length u1+1.
	s := space.MustRect(10, 100)
	d := deps.MustNewSet(ilmath.V(1, -1), ilmath.V(1, 0), ilmath.V(1, 1))
	l, length, err := OptimalLinear(s, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Valid(d) {
		t.Fatal("search returned invalid schedule")
	}
	if length != 10 {
		t.Errorf("length = %d (Π = %v), want 10", length, l.Pi)
	}
}

func TestOptimalLinearNoValidSchedule(t *testing.T) {
	// With maxCoef too small to satisfy Π·d ≥ 1 for d = (1,-3) and (0,1),
	// coefficients in [0,1] admit... Π=(1,0) gives Π·(0,1)=0 invalid;
	// Π=(1,1): Π·(1,-3) = -2 invalid; Π=(0,1): Π·(1,-3) = -3. None valid.
	s := space.MustRect(4, 4)
	d := deps.MustNewSet(ilmath.V(1, -3), ilmath.V(0, 1))
	if _, _, err := OptimalLinear(s, d, 1); err == nil {
		t.Error("expected no valid schedule with maxCoef 1")
	}
	// With maxCoef 4, Π = (4,1) works.
	l, _, err := OptimalLinear(s, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Valid(d) {
		t.Error("returned schedule invalid")
	}
}

func TestOptimalLinearArgValidation(t *testing.T) {
	s := space.MustRect(4, 4)
	if _, _, err := OptimalLinear(s, deps.Unit(2), 0); err == nil {
		t.Error("maxCoef 0 accepted")
	}
	if _, _, err := OptimalLinear(s, deps.Unit(3), 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestUETMakespan(t *testing.T) {
	if got := UETMakespan(space.MustRect(4, 4, 37)); got != 3+3+36+1 {
		t.Errorf("UET = %d, want 43", got)
	}
	neg := space.MustNew(ilmath.V(-2, 0), ilmath.V(2, 3))
	if got := UETMakespan(neg); got != 4+3+1 {
		t.Errorf("UET = %d, want 8", got)
	}
}

func TestUETUCTMakespanFor(t *testing.T) {
	s := space.MustRect(4, 4, 37)
	// Map along k (dim 2): 2·3 + 2·3 + 36 + 1 = 49.
	if got, err := UETUCTMakespanFor(s, 2); err != nil || got != 49 {
		t.Errorf("UETUCT(map 2) = %d, %v; want 49", got, err)
	}
	// Map along i: 3 + 2·3 + 2·36 + 1 = 82.
	if got, _ := UETUCTMakespanFor(s, 0); got != 82 {
		t.Errorf("UETUCT(map 0) = %d, want 82", got)
	}
	if _, err := UETUCTMakespanFor(s, 5); err == nil {
		t.Error("out-of-range mapDim accepted")
	}
}

func TestUETUCTOptimalIsLargestDim(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		s := space.MustRect(r.Int63n(20)+1, r.Int63n(20)+1, r.Int63n(20)+1)
		dim, length := OptimalOverlapMapping(s)
		// The returned length must equal the min over all mapping dims, and
		// the largest dimension must achieve it.
		if length != UETUCTMakespan(s) {
			t.Fatalf("OptimalOverlapMapping length %d != UETUCTMakespan %d", length, UETUCTMakespan(s))
		}
		largest := s.LargestDim()
		tl, _ := UETUCTMakespanFor(s, largest)
		if tl != length {
			t.Fatalf("largest-dim mapping %d not optimal for %v (got %d via dim %d)",
				tl, s, length, dim)
		}
	}
}

// TestOverlapScheduleMatchesUETUCT: the paper's overlapping linear schedule
// realizes exactly the UET-UCT optimal makespan of Andronikos et al. for
// every mapping dimension.
func TestOverlapScheduleMatchesUETUCT(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		s := space.MustRect(r.Int63n(12)+1, r.Int63n(12)+1, r.Int63n(12)+1)
		for d := 0; d < 3; d++ {
			ov, err := Overlapping(3, d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ov.Length(s, deps.Unit(3))
			if err != nil {
				t.Fatal(err)
			}
			want, _ := UETUCTMakespanFor(s, d)
			if got != want {
				t.Fatalf("overlap schedule length %d != UET-UCT %d for %v map %d", got, want, s, d)
			}
		}
	}
}

// TestNonOverlapScheduleMatchesUET: Π = (1,…,1) realizes the UET wavefront
// makespan.
func TestNonOverlapScheduleMatchesUET(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		s := space.MustRect(r.Int63n(12)+1, r.Int63n(12)+1)
		got, err := NonOverlapping(2).Length(s, deps.Unit(2))
		if err != nil {
			t.Fatal(err)
		}
		if got != UETMakespan(s) {
			t.Fatalf("non-overlap length %d != UET %d for %v", got, UETMakespan(s), s)
		}
	}
}
