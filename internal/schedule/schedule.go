package schedule

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/space"
)

// Linear is a linear time schedule defined by the row vector Π.
type Linear struct {
	Pi ilmath.Vec
}

// NewLinear builds a linear schedule from Π. Π must be non-empty.
func NewLinear(pi ilmath.Vec) (*Linear, error) {
	if pi.Dim() == 0 {
		return nil, fmt.Errorf("schedule: empty Π")
	}
	return &Linear{Pi: pi.Clone()}, nil
}

// NonOverlapping returns the optimal linear schedule Π = (1,…,1) for the
// tiled space with unit dependence vectors (Section 3).
func NonOverlapping(n int) *Linear {
	pi := make(ilmath.Vec, n)
	for i := range pi {
		pi[i] = 1
	}
	return &Linear{Pi: pi}
}

// Overlapping returns the modified linear schedule of Section 4 with
// processor mapping along dimension mapDim: coefficient 1 at mapDim and 2
// elsewhere.
func Overlapping(n, mapDim int) (*Linear, error) {
	if mapDim < 0 || mapDim >= n {
		return nil, fmt.Errorf("schedule: mapDim %d out of range [0,%d)", mapDim, n)
	}
	pi := make(ilmath.Vec, n)
	for i := range pi {
		pi[i] = 2
	}
	pi[mapDim] = 1
	return &Linear{Pi: pi}, nil
}

// Dim returns the dimension of the schedule vector.
func (l *Linear) Dim() int { return l.Pi.Dim() }

// Disp returns dispΠ = min{Π·d : d ∈ D}, the schedule displacement. A valid
// schedule requires Disp ≥ 1.
func (l *Linear) Disp(d *deps.Set) (int64, error) {
	if d.Dim() != l.Dim() {
		return 0, fmt.Errorf("schedule: dependence dimension %d != schedule dimension %d", d.Dim(), l.Dim())
	}
	min := l.Pi.Dot(d.At(0))
	for i := 1; i < d.Len(); i++ {
		if v := l.Pi.Dot(d.At(i)); v < min {
			min = v
		}
	}
	return min, nil
}

// Valid reports whether Π is a valid schedule for dependence set d:
// Π·d ≥ 1 for every dependence vector.
func (l *Linear) Valid(d *deps.Set) bool {
	disp, err := l.Disp(d)
	return err == nil && disp >= 1
}

// minMaxOver returns the minimum and maximum of Π·j over the box s, using
// the per-component sign of Π.
func (l *Linear) minMaxOver(s *space.Space) (min, max int64) {
	for i, c := range l.Pi {
		a, b := c*s.Lower[i], c*s.Upper[i]
		if a > b {
			a, b = b, a
		}
		min += a
		max += b
	}
	return min, max
}

// T0 returns t₀ = −min{Π·j : j ∈ s}, the offset that makes the first step 0.
func (l *Linear) T0(s *space.Space) int64 {
	min, _ := l.minMaxOver(s)
	return -min
}

// Time returns the execution step of point j in space s under dependence
// set d: ⌊(Π·j + t₀)/dispΠ⌋.
func (l *Linear) Time(j ilmath.Vec, s *space.Space, d *deps.Set) (int64, error) {
	disp, err := l.Disp(d)
	if err != nil {
		return 0, err
	}
	if disp < 1 {
		return 0, fmt.Errorf("schedule: Π = %v invalid for %v (dispΠ = %d)", l.Pi, d, disp)
	}
	return floorDiv(l.Pi.Dot(j)+l.T0(s), disp), nil
}

// Length returns the number of time steps P needed to execute space s under
// dependence set d: t(last) − t(first) + 1.
func (l *Linear) Length(s *space.Space, d *deps.Set) (int64, error) {
	disp, err := l.Disp(d)
	if err != nil {
		return 0, err
	}
	if disp < 1 {
		return 0, fmt.Errorf("schedule: Π = %v invalid for %v (dispΠ = %d)", l.Pi, d, disp)
	}
	min, max := l.minMaxOver(s)
	return floorDiv(max-min, disp) + 1, nil
}

// ByTime groups every point of s by its execution step, returning the
// wavefronts in increasing time order. Intended for tiled spaces (volumes up
// to a few hundred thousand tiles), not raw iteration spaces.
func (l *Linear) ByTime(s *space.Space, d *deps.Set) ([][]ilmath.Vec, error) {
	length, err := l.Length(s, d)
	if err != nil {
		return nil, err
	}
	disp, _ := l.Disp(d)
	t0 := l.T0(s)
	waves := make([][]ilmath.Vec, length)
	s.Points(func(j ilmath.Vec) bool {
		t := floorDiv(l.Pi.Dot(j)+t0, disp)
		waves[t] = append(waves[t], j.Clone())
		return true
	})
	return waves, nil
}

// String renders the schedule vector.
func (l *Linear) String() string { return "Π=" + l.Pi.String() }

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
