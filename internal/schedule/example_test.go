package schedule_test

import (
	"fmt"
	"log"

	"repro/internal/deps"
	"repro/internal/schedule"
	"repro/internal/space"
)

// Example compares the two schedule lengths of the paper's Examples 1 and
// 3 on the 1000×100 tiled space: Π = (1,1) needs 1099 steps, the
// overlapping Π = (1,2) needs 1198 — but each overlapped step hides its
// communication.
func Example() {
	tiled := space.MustRect(1000, 100)
	unit := deps.Unit(2)
	pNo, err := schedule.NonOverlapping(2).Length(tiled, unit)
	if err != nil {
		log.Fatal(err)
	}
	ov, err := schedule.Overlapping(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	pOv, err := ov.Length(tiled, unit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-overlapping %v: P = %d\n", schedule.NonOverlapping(2), pNo)
	fmt.Printf("overlapping     %v: P = %d\n", ov, pOv)
	// Output:
	// non-overlapping Π=(1, 1): P = 1099
	// overlapping     Π=(1, 2): P = 1198
}

// ExampleOptimalLinear searches for the time-optimal schedule vector of a
// dependence set whose displacement allows two wavefronts per step.
func ExampleOptimalLinear() {
	sp := space.MustRect(9, 9)
	d := deps.MustNewSet([]int64{2, 0}, []int64{0, 2})
	pi, length, err := schedule.OptimalLinear(sp, d, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v, %d steps\n", pi, length)
	// Output:
	// Π=(1, 1), 9 steps
}
