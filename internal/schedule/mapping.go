package schedule

import (
	"fmt"

	"repro/internal/ilmath"
	"repro/internal/space"
)

// Mapping assigns tiles to processors: all tiles along dimension MapDim of
// the tiled space execute on the same processor (Section 3 for the
// non-overlapping case; Section 4 chooses MapDim as the *largest* dimension,
// per the UET-UCT space-optimality result of Andronikos et al.).
//
// A processor is identified by the tile coordinates with the mapping
// dimension removed; ProcSpace is the resulting (n−1)-dimensional space
// (or a single-point 1-D space when the tiled space itself is 1-D).
type Mapping struct {
	MapDim    int
	TileSpace *space.Space
	ProcSpace *space.Space
}

// NewMapping builds a processor mapping for the given tiled space along
// dimension mapDim.
func NewMapping(ts *space.Space, mapDim int) (*Mapping, error) {
	if mapDim < 0 || mapDim >= ts.Dim() {
		return nil, fmt.Errorf("schedule: mapDim %d out of range [0,%d)", mapDim, ts.Dim())
	}
	ps, err := projectOut(ts, mapDim)
	if err != nil {
		return nil, err
	}
	return &Mapping{MapDim: mapDim, TileSpace: ts, ProcSpace: ps}, nil
}

// LargestDimMapping builds the paper's mapping: along the dimension of the
// tiled space with the largest extent.
func LargestDimMapping(ts *space.Space) (*Mapping, error) {
	return NewMapping(ts, ts.LargestDim())
}

// projectOut removes dimension d from a space. Projecting a 1-D space yields
// the single-point space [0..0], i.e. one processor.
func projectOut(s *space.Space, d int) (*space.Space, error) {
	if s.Dim() == 1 {
		return space.MustRect(1), nil
	}
	lo := make(ilmath.Vec, 0, s.Dim()-1)
	up := make(ilmath.Vec, 0, s.Dim()-1)
	for i := 0; i < s.Dim(); i++ {
		if i == d {
			continue
		}
		lo = append(lo, s.Lower[i])
		up = append(up, s.Upper[i])
	}
	return space.New(lo, up)
}

// NumProcs returns the number of processors used.
func (m *Mapping) NumProcs() int64 { return m.ProcSpace.Volume() }

// ProcCoord returns the processor coordinates of tile tc (tile coordinates
// with the mapping dimension projected out).
func (m *Mapping) ProcCoord(tc ilmath.Vec) ilmath.Vec {
	if len(tc) != m.TileSpace.Dim() {
		panic(fmt.Sprintf("schedule: tile coordinate dimension %d != %d", len(tc), m.TileSpace.Dim()))
	}
	if m.TileSpace.Dim() == 1 {
		return ilmath.V(0)
	}
	pc := make(ilmath.Vec, 0, len(tc)-1)
	for i, x := range tc {
		if i == m.MapDim {
			continue
		}
		pc = append(pc, x)
	}
	return pc
}

// ProcRank returns the linear rank of the processor executing tile tc,
// in [0, NumProcs).
func (m *Mapping) ProcRank(tc ilmath.Vec) int64 {
	return m.ProcSpace.Linearize(m.ProcCoord(tc))
}

// LocalStep returns the position of tile tc within its processor's local
// sequence (its coordinate along the mapping dimension, offset to zero).
func (m *Mapping) LocalStep(tc ilmath.Vec) int64 {
	return tc[m.MapDim] - m.TileSpace.Lower[m.MapDim]
}

// TilesPerProc returns the number of tiles each processor executes (the
// extent of the mapping dimension).
func (m *Mapping) TilesPerProc() int64 { return m.TileSpace.Extent(m.MapDim) }

// TileCoord reconstructs the full tile coordinate from a processor
// coordinate and a local step.
func (m *Mapping) TileCoord(proc ilmath.Vec, step int64) ilmath.Vec {
	tc := make(ilmath.Vec, 0, m.TileSpace.Dim())
	pi := 0
	for d := 0; d < m.TileSpace.Dim(); d++ {
		if d == m.MapDim {
			tc = append(tc, m.TileSpace.Lower[d]+step)
			continue
		}
		if m.TileSpace.Dim() == 1 {
			break
		}
		tc = append(tc, proc[pi])
		pi++
	}
	return tc
}

// String summarizes the mapping.
func (m *Mapping) String() string {
	return fmt.Sprintf("map dim %d: %d procs × %d tiles", m.MapDim, m.NumProcs(), m.TilesPerProc())
}
