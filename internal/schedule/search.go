package schedule

import (
	"fmt"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/space"
)

// OptimalLinear searches exhaustively over schedule vectors with
// coefficients in [0, maxCoef] for the valid linear schedule of minimum
// length over space s with dependence set d (Shang & Fortes' time-optimal
// linear schedule, by enumeration — fine for the small dimensions of loop
// nests). Ties prefer lexicographically smaller Π.
func OptimalLinear(s *space.Space, d *deps.Set, maxCoef int64) (*Linear, int64, error) {
	if maxCoef < 1 {
		return nil, 0, fmt.Errorf("schedule: maxCoef must be >= 1")
	}
	n := s.Dim()
	if d.Dim() != n {
		return nil, 0, fmt.Errorf("schedule: dependence dimension %d != space dimension %d", d.Dim(), n)
	}
	var best *Linear
	var bestLen int64
	pi := make(ilmath.Vec, n)
	var rec func(dim int) error
	rec = func(dim int) error {
		if dim == n {
			l := &Linear{Pi: pi.Clone()}
			if !l.Valid(d) {
				return nil
			}
			length, err := l.Length(s, d)
			if err != nil {
				return err
			}
			if best == nil || length < bestLen {
				best = l
				bestLen = length
			}
			return nil
		}
		for c := int64(0); c <= maxCoef; c++ {
			pi[dim] = c
			if err := rec(dim + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, 0, err
	}
	if best == nil {
		return nil, 0, fmt.Errorf("schedule: no valid Π with coefficients <= %d for %v", maxCoef, d)
	}
	return best, bestLen, nil
}

// UETMakespan returns the optimal makespan of a unit-execution-time grid
// task graph over space s (unit dependences, free communication): the
// wavefront count Σ(u_d − l_d) + 1.
func UETMakespan(s *space.Space) int64 {
	var t int64 = 1
	for d := 0; d < s.Dim(); d++ {
		t += s.Upper[d] - s.Lower[d]
	}
	return t
}

// UETUCTMakespanFor returns the makespan of the UET-UCT (unit execution,
// unit communication) schedule of Andronikos et al. [1] when all points
// along dimension mapDim are assigned to the same processor:
//
//	2·Σ_{d≠mapDim}(u_d − l_d) + (u_mapDim − l_mapDim) + 1
func UETUCTMakespanFor(s *space.Space, mapDim int) (int64, error) {
	if mapDim < 0 || mapDim >= s.Dim() {
		return 0, fmt.Errorf("schedule: mapDim %d out of range", mapDim)
	}
	var t int64 = 1
	for d := 0; d < s.Dim(); d++ {
		e := s.Upper[d] - s.Lower[d]
		if d == mapDim {
			t += e
		} else {
			t += 2 * e
		}
	}
	return t, nil
}

// UETUCTMakespan returns the optimal UET-UCT makespan over all mapping
// choices — attained by mapping along the largest dimension, the result the
// paper's overlapping schedule builds on.
func UETUCTMakespan(s *space.Space) int64 {
	best, _ := UETUCTMakespanFor(s, 0)
	for d := 1; d < s.Dim(); d++ {
		if t, _ := UETUCTMakespanFor(s, d); t < best {
			best = t
		}
	}
	return best
}

// OptimalOverlapMapping returns the mapping dimension minimizing the
// overlapped schedule length (ties to the first), together with that
// length. It equals the largest-extent dimension.
func OptimalOverlapMapping(s *space.Space) (int, int64) {
	bestDim := 0
	bestLen, _ := UETUCTMakespanFor(s, 0)
	for d := 1; d < s.Dim(); d++ {
		if t, _ := UETUCTMakespanFor(s, d); t < bestLen {
			bestDim, bestLen = d, t
		}
	}
	return bestDim, bestLen
}
