package schedule

import (
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/space"
)

func TestNonOverlapping(t *testing.T) {
	l := NonOverlapping(3)
	if !l.Pi.Equal(ilmath.V(1, 1, 1)) {
		t.Errorf("Pi = %v", l.Pi)
	}
}

func TestOverlapping(t *testing.T) {
	l, err := Overlapping(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Pi.Equal(ilmath.V(2, 2, 1)) {
		t.Errorf("Pi = %v", l.Pi)
	}
	if _, err := Overlapping(3, 3); err == nil {
		t.Error("out-of-range mapDim accepted")
	}
	if _, err := Overlapping(3, -1); err == nil {
		t.Error("negative mapDim accepted")
	}
}

func TestNewLinear(t *testing.T) {
	if _, err := NewLinear(ilmath.V()); err == nil {
		t.Error("empty Π accepted")
	}
	l, err := NewLinear(ilmath.V(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Pi.Equal(ilmath.V(1, 2)) {
		t.Error("Pi not stored")
	}
}

func TestDispAndValid(t *testing.T) {
	u := deps.Unit(2)
	no := NonOverlapping(2)
	if d, _ := no.Disp(u); d != 1 {
		t.Errorf("Disp = %d, want 1", d)
	}
	if !no.Valid(u) {
		t.Error("Π=(1,1) invalid for unit deps")
	}
	ov, _ := Overlapping(2, 0)
	if d, _ := ov.Disp(u); d != 1 {
		t.Errorf("overlap Disp = %d, want 1 (along mapping dim)", d)
	}
	// Π=(1,-1) is invalid for dependence (0,1).
	bad, _ := NewLinear(ilmath.V(1, -1))
	if bad.Valid(u) {
		t.Error("Π=(1,-1) should be invalid for unit deps")
	}
	// Dimension mismatch.
	if _, err := no.Disp(deps.Unit(3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestTimeExample1NonOverlap(t *testing.T) {
	// Paper Example 1: tiled space [0..999]x[0..99], Π=(1,1),
	// P = 999 + 99 + 1 = 1099.
	ts := space.MustNew(ilmath.V(0, 0), ilmath.V(999, 99))
	u := deps.Unit(2)
	no := NonOverlapping(2)
	p, err := no.Length(ts, u)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1099 {
		t.Errorf("schedule length = %d, want 1099 (paper Example 1)", p)
	}
	// First and last steps.
	if tt, _ := no.Time(ilmath.V(0, 0), ts, u); tt != 0 {
		t.Errorf("Time(origin) = %d", tt)
	}
	if tt, _ := no.Time(ilmath.V(999, 99), ts, u); tt != 1098 {
		t.Errorf("Time(last) = %d", tt)
	}
}

func TestTimeExample3Overlap(t *testing.T) {
	// Paper Example 3: same tiled space, Π=(1,2) (mapping along dim 0),
	// P = 999 + 2·99 + 1 = 1198.
	ts := space.MustNew(ilmath.V(0, 0), ilmath.V(999, 99))
	u := deps.Unit(2)
	ov, err := Overlapping(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ov.Pi.Equal(ilmath.V(1, 2)) {
		t.Fatalf("Pi = %v, want (1,2)", ov.Pi)
	}
	p, err := ov.Length(ts, u)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1198 {
		t.Errorf("schedule length = %d, want 1198 (paper Example 3)", p)
	}
}

func TestOverlapLengthFormulaPaper(t *testing.T) {
	// Section 4: P(g) = 2u₁+2u₂+…+u_map+…+2u_n + 1 for 0-based tile space.
	// Fig 12, experiment i: tile space 4x4x(16384/444 -> 37 complete),
	// here we just check the formula on a 4x4x37 example: mapping dim 2,
	// P = 2·3 + 2·3 + 36 + 1 = 49.
	ts := space.MustRect(4, 4, 37)
	u := deps.Unit(3)
	ov, _ := Overlapping(3, 2)
	p, err := ov.Length(ts, u)
	if err != nil {
		t.Fatal(err)
	}
	if p != 49 {
		t.Errorf("P = %d, want 49", p)
	}
}

func TestTimeInvalidSchedule(t *testing.T) {
	bad, _ := NewLinear(ilmath.V(0, 0))
	ts := space.MustRect(3, 3)
	if _, err := bad.Time(ilmath.V(0, 0), ts, deps.Unit(2)); err == nil {
		t.Error("Time with disp 0 did not error")
	}
	if _, err := bad.Length(ts, deps.Unit(2)); err == nil {
		t.Error("Length with disp 0 did not error")
	}
	if _, err := bad.ByTime(ts, deps.Unit(2)); err == nil {
		t.Error("ByTime with disp 0 did not error")
	}
}

func TestNegativeBoundsT0(t *testing.T) {
	ts := space.MustNew(ilmath.V(-3, -2), ilmath.V(3, 2))
	no := NonOverlapping(2)
	if t0 := no.T0(ts); t0 != 5 {
		t.Errorf("T0 = %d, want 5", t0)
	}
	// Earliest point gets step 0.
	if tt, _ := no.Time(ilmath.V(-3, -2), ts, deps.Unit(2)); tt != 0 {
		t.Errorf("Time(min corner) = %d, want 0", tt)
	}
}

func TestByTimeWavefronts(t *testing.T) {
	ts := space.MustRect(3, 3)
	u := deps.Unit(2)
	no := NonOverlapping(2)
	waves, err := no.ByTime(ts, u)
	if err != nil {
		t.Fatal(err)
	}
	// Anti-diagonal wavefronts of a 3x3 grid: sizes 1,2,3,2,1.
	wantSizes := []int{1, 2, 3, 2, 1}
	if len(waves) != len(wantSizes) {
		t.Fatalf("got %d waves, want %d", len(waves), len(wantSizes))
	}
	total := 0
	for i, w := range waves {
		if len(w) != wantSizes[i] {
			t.Errorf("wave %d has %d tiles, want %d", i, len(w), wantSizes[i])
		}
		total += len(w)
	}
	if total != 9 {
		t.Errorf("waves cover %d tiles, want 9", total)
	}
}

// TestCausality: for every dependence d and every tile j, the producer j−d
// must be scheduled strictly earlier. This is the fundamental correctness
// property of both schedules.
func TestCausality(t *testing.T) {
	ts := space.MustRect(5, 4, 3)
	u := deps.Unit(3)
	schedules := map[string]*Linear{
		"nonoverlap": NonOverlapping(3),
	}
	for m := 0; m < 3; m++ {
		ov, _ := Overlapping(3, m)
		schedules["overlap-map"+string(rune('0'+m))] = ov
	}
	for name, l := range schedules {
		ts.Points(func(j ilmath.Vec) bool {
			tj, err := l.Time(j, ts, u)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < u.Len(); k++ {
				prev := j.Sub(u.At(k))
				if !ts.Contains(prev) {
					continue
				}
				tp, _ := l.Time(prev, ts, u)
				if tp >= tj {
					t.Fatalf("%s: causality violated: t(%v)=%d !< t(%v)=%d", name, prev, tp, j, tj)
				}
			}
			return true
		})
	}
}

// TestOverlapCrossProcessorGap: under the overlapping schedule, dependences
// that cross processors (non-mapping dimensions) must leave a gap of ≥ 2
// steps so that the send (one step) and receive (next step) fit; dependences
// along the mapping dimension need only 1 step (no communication).
func TestOverlapCrossProcessorGap(t *testing.T) {
	ts := space.MustRect(4, 4, 8)
	u := deps.Unit(3)
	mapDim := 2
	ov, _ := Overlapping(3, mapDim)
	ts.Points(func(j ilmath.Vec) bool {
		tj, _ := ov.Time(j, ts, u)
		for k := 0; k < u.Len(); k++ {
			d := u.At(k)
			prev := j.Sub(d)
			if !ts.Contains(prev) {
				continue
			}
			tp, _ := ov.Time(prev, ts, u)
			gap := tj - tp
			if d[mapDim] == 1 && gap != 1 {
				t.Fatalf("same-processor gap = %d, want 1", gap)
			}
			if d[mapDim] == 0 && gap < 2 {
				t.Fatalf("cross-processor gap = %d, want >= 2", gap)
			}
		}
		return true
	})
}

func TestMappingBasics(t *testing.T) {
	ts := space.MustRect(4, 4, 37)
	m, err := LargestDimMapping(ts)
	if err != nil {
		t.Fatal(err)
	}
	if m.MapDim != 2 {
		t.Errorf("MapDim = %d, want 2", m.MapDim)
	}
	if m.NumProcs() != 16 {
		t.Errorf("NumProcs = %d, want 16", m.NumProcs())
	}
	if m.TilesPerProc() != 37 {
		t.Errorf("TilesPerProc = %d, want 37", m.TilesPerProc())
	}
	tc := ilmath.V(2, 3, 11)
	if !m.ProcCoord(tc).Equal(ilmath.V(2, 3)) {
		t.Errorf("ProcCoord = %v", m.ProcCoord(tc))
	}
	if m.LocalStep(tc) != 11 {
		t.Errorf("LocalStep = %d", m.LocalStep(tc))
	}
	if got := m.TileCoord(ilmath.V(2, 3), 11); !got.Equal(tc) {
		t.Errorf("TileCoord round trip = %v, want %v", got, tc)
	}
}

func TestMappingRanksAreBijective(t *testing.T) {
	ts := space.MustRect(3, 5, 7)
	m, err := NewMapping(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProcs() != 21 {
		t.Fatalf("NumProcs = %d, want 21", m.NumProcs())
	}
	seen := make(map[int64]ilmath.Vec)
	ts.Points(func(tc ilmath.Vec) bool {
		r := m.ProcRank(tc)
		if r < 0 || r >= m.NumProcs() {
			t.Fatalf("rank %d out of range", r)
		}
		if prev, ok := seen[r]; ok {
			// Same rank must mean same processor coordinate.
			if !m.ProcCoord(tc).Equal(m.ProcCoord(prev)) {
				t.Fatalf("rank collision between %v and %v", tc, prev)
			}
		} else {
			seen[r] = tc.Clone()
		}
		return true
	})
	if int64(len(seen)) != m.NumProcs() {
		t.Errorf("only %d ranks used, want %d", len(seen), m.NumProcs())
	}
}

func TestMapping1D(t *testing.T) {
	ts := space.MustRect(9)
	m, err := NewMapping(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumProcs() != 1 {
		t.Errorf("NumProcs = %d, want 1 for 1-D space", m.NumProcs())
	}
	if m.ProcRank(ilmath.V(5)) != 0 {
		t.Error("rank of 1-D tile should be 0")
	}
	if got := m.TileCoord(ilmath.V(0), 5); !got.Equal(ilmath.V(5)) {
		t.Errorf("TileCoord = %v", got)
	}
}

func TestMappingErrors(t *testing.T) {
	ts := space.MustRect(3, 3)
	if _, err := NewMapping(ts, 2); err == nil {
		t.Error("out-of-range mapDim accepted")
	}
	m, _ := NewMapping(ts, 0)
	defer func() {
		if recover() == nil {
			t.Error("ProcCoord with wrong dimension did not panic")
		}
	}()
	m.ProcCoord(ilmath.V(0, 0, 0))
}

func TestMappingNegativeLowerBounds(t *testing.T) {
	ts := space.MustNew(ilmath.V(-2, 0), ilmath.V(2, 9))
	m, err := LargestDimMapping(ts)
	if err != nil {
		t.Fatal(err)
	}
	if m.MapDim != 1 {
		t.Fatalf("MapDim = %d", m.MapDim)
	}
	tc := ilmath.V(-2, 0)
	if m.LocalStep(tc) != 0 {
		t.Errorf("LocalStep = %d, want 0", m.LocalStep(tc))
	}
	if got := m.TileCoord(ilmath.V(-2), 0); !got.Equal(tc) {
		t.Errorf("TileCoord = %v, want %v", got, tc)
	}
}

func TestFloorDivSchedule(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3}, {0, 3, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
