package codegen

import (
	"strings"
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/schedule"
	"repro/internal/space"
	"repro/internal/tiling"
)

func TestSequentialTiledText(t *testing.T) {
	sp := space.MustRect(100, 40)
	tl := tiling.MustRectangular(10, 8)
	src, err := SequentialTiled(sp, tl, "A[i0][i1] = A[i0-1][i1] + A[i0][i1-1]")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"for t0 := int64(0); t0 <= 9; t0++",
		"for t1 := int64(0); t1 <= 4; t1++",
		"for i0 := max(int64(0), t0*10); i0 <= min(int64(99), t0*10+9); i0++",
		"for i1 := max(int64(0), t1*8); i1 <= min(int64(39), t1*8+7); i1++",
		"A[i0][i1]",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q:\n%s", want, src)
		}
	}
	// Balanced braces.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces")
	}
}

func TestSequentialTiledErrors(t *testing.T) {
	sp := space.MustRect(10, 10)
	skew, err := tiling.SkewedRectangular(
		deps.MustNewSet(ilmath.V(1, -1), ilmath.V(1, 0)), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SequentialTiled(sp, skew, "x"); err == nil {
		t.Error("skewed tiling accepted by rectangular emitter")
	}
	if _, err := SequentialTiled(space.MustRect(4), tiling.MustRectangular(2, 2), "x"); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestProcPseudocode(t *testing.T) {
	b := ProcB(32)
	for _, want := range []string{"MPI_Recv", "compute(k)", "MPI_Send", "k < 32"} {
		if !strings.Contains(b, want) {
			t.Errorf("ProcB missing %q", want)
		}
	}
	// Blocking order: recv before compute before send.
	if !(strings.Index(b, "MPI_Recv") < strings.Index(b, "compute") &&
		strings.Index(b, "compute") < strings.Index(b, "MPI_Send")) {
		t.Error("ProcB phases out of order")
	}
	nb := ProcNB(32)
	for _, want := range []string{"MPI_Isend", "MPI_Irecv", "compute(k)", "MPI_Wait", "k-1", "k+1"} {
		if !strings.Contains(nb, want) {
			t.Errorf("ProcNB missing %q", want)
		}
	}
	// Overlapped order: isend and irecv both before compute (paper's ProcNB).
	if !(strings.Index(nb, "MPI_Isend") < strings.Index(nb, "compute") &&
		strings.Index(nb, "MPI_Irecv") < strings.Index(nb, "compute")) {
		t.Error("ProcNB phases out of order")
	}
}

func TestTiledOrderLegalRectangular(t *testing.T) {
	sp := space.MustRect(20, 12)
	tl := tiling.MustRectangular(4, 3)
	d := deps.Example1Deps()
	err := CheckOrder(sp, d, func(visit func(ilmath.Vec)) error {
		return TiledOrder(sp, tl, func(j ilmath.Vec) { visit(j.Clone()) })
	})
	if err != nil {
		t.Errorf("tiled order illegal: %v", err)
	}
}

func TestTiledOrderLegalSkewed(t *testing.T) {
	// Wavefront deps need the skewed tiling; its tiled order must be legal.
	d := deps.MustNewSet(ilmath.V(1, -1), ilmath.V(1, 0), ilmath.V(1, 1))
	sp := space.MustRect(12, 10)
	tl, err := tiling.SkewedRectangular(d, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = CheckOrder(sp, d, func(visit func(ilmath.Vec)) error {
		return TiledOrder(sp, tl, func(j ilmath.Vec) { visit(j.Clone()) })
	})
	if err != nil {
		t.Errorf("skewed tiled order illegal: %v", err)
	}
}

func TestTiledOrderIllegalTilingDetected(t *testing.T) {
	// Rectangular tiles over wavefront deps are an ILLEGAL tiling; the
	// order checker must catch the violation.
	d := deps.MustNewSet(ilmath.V(1, -1), ilmath.V(1, 0), ilmath.V(1, 1))
	sp := space.MustRect(12, 10)
	tl := tiling.MustRectangular(3, 3)
	if tl.Legal(d) {
		t.Fatal("precondition: tiling should be illegal")
	}
	err := CheckOrder(sp, d, func(visit func(ilmath.Vec)) error {
		return TiledOrder(sp, tl, func(j ilmath.Vec) { visit(j.Clone()) })
	})
	if err == nil {
		t.Error("illegal tiling's order passed the checker")
	}
}

func TestWavefrontOrderLegalBothSchedules(t *testing.T) {
	sp := space.MustRect(24, 16)
	tl := tiling.MustRectangular(4, 4)
	d := deps.Example1Deps()
	td, err := tl.TileDeps(d)
	if err != nil {
		t.Fatal(err)
	}
	for name, l := range map[string]*schedule.Linear{
		"non-overlap": schedule.NonOverlapping(2),
		"overlap":     mustOverlap(t, 2, 0),
	} {
		err := CheckOrder(sp, d, func(visit func(ilmath.Vec)) error {
			return WavefrontOrder(sp, tl, l, td, func(j ilmath.Vec) { visit(j.Clone()) })
		})
		if err != nil {
			t.Errorf("%s wavefront order illegal: %v", name, err)
		}
	}
}

func mustOverlap(t *testing.T, n, mapDim int) *schedule.Linear {
	t.Helper()
	l, err := schedule.Overlapping(n, mapDim)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCheckOrderRejectsDuplicates(t *testing.T) {
	sp := space.MustRect(2, 2)
	err := CheckOrder(sp, deps.Unit(2), func(visit func(ilmath.Vec)) error {
		visit(ilmath.V(0, 0))
		visit(ilmath.V(0, 0))
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate not caught: %v", err)
	}
}

func TestCheckOrderRejectsIncomplete(t *testing.T) {
	sp := space.MustRect(2, 2)
	err := CheckOrder(sp, deps.Unit(2), func(visit func(ilmath.Vec)) error {
		visit(ilmath.V(0, 0))
		return nil
	})
	if err == nil {
		t.Error("incomplete order not caught")
	}
}

func TestCheckOrderRejectsOutside(t *testing.T) {
	sp := space.MustRect(2, 2)
	err := CheckOrder(sp, deps.Unit(2), func(visit func(ilmath.Vec)) error {
		visit(ilmath.V(5, 5))
		return nil
	})
	if err == nil {
		t.Error("outside point not caught")
	}
}

func TestCheckOrderSequentialIsLegal(t *testing.T) {
	// The original lexicographic order is trivially legal for any
	// lex-positive dependence set.
	sp := space.MustRect(6, 6)
	for _, d := range []*deps.Set{
		deps.Example1Deps(),
		deps.MustNewSet(ilmath.V(1, -1), ilmath.V(0, 1)),
	} {
		err := CheckOrder(sp, d, func(visit func(ilmath.Vec)) error {
			sp.Points(func(j ilmath.Vec) bool {
				visit(j.Clone())
				return true
			})
			return nil
		})
		if err != nil {
			t.Errorf("sequential order illegal for %v: %v", d, err)
		}
	}
}

func TestEmitProgramParses(t *testing.T) {
	sp := space.MustRect(100, 40)
	tl := tiling.MustRectangular(10, 8)
	src, err := EmitProgram(sp, tl,
		"at(i0-1, i1-1) + at(i0-1, i1) + at(i0, i1-1)", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProgram(src); err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{"package main", "func idx", "func at", "func main()", "for t0 :="} {
		if !strings.Contains(src, want) {
			t.Errorf("program missing %q", want)
		}
	}
}

func TestEmitProgram3D(t *testing.T) {
	sp := space.MustRect(8, 8, 16)
	tl := tiling.MustRectangular(4, 4, 8)
	src, err := EmitProgram(sp, tl,
		"at(i0-1, i1, i2) + at(i0, i1-1, i2) + at(i0, i1, i2-1)", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProgram(src); err != nil {
		t.Fatalf("3-D program does not parse: %v", err)
	}
}

func TestEmitProgramErrors(t *testing.T) {
	if _, err := EmitProgram(space.MustRect(4), tiling.MustRectangular(2, 2), "x", 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCheckProgramCatchesBadSyntax(t *testing.T) {
	if err := CheckProgram("package main\nfunc {"); err == nil {
		t.Error("syntax error not caught")
	}
}
