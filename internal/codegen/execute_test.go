package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ilmath"
	"repro/internal/space"
	"repro/internal/stencil"
	"repro/internal/tiling"
)

// TestEmittedProgramComputesCorrectly compiles and runs the generated tiled
// program with the real Go toolchain and compares its final array value
// against the sequential reference executor — the full-circle proof that
// the emitted loop nest is not just legal but computes the same function.
func TestEmittedProgramComputesCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the Go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	sp := space.MustRect(30, 20)
	tl := tiling.MustRectangular(7, 6) // deliberately non-dividing sides
	src, err := EmitProgram(sp, tl,
		"at(i0-1, i1-1) + at(i0-1, i1) + at(i0, i1-1)", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s\n--- source ---\n%s", err, out, src)
	}
	got, err := strconv.ParseFloat(strings.TrimSpace(string(out)), 64)
	if err != nil {
		t.Fatalf("unparseable program output %q", out)
	}
	// Reference: the same kernel via the sequential executor.
	ref, err := stencil.RunSequential(sp, stencil.Sum2D{}, stencil.ConstBoundary(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.At(ilmath.V(29, 19))
	if got != want {
		t.Errorf("generated program computed %g, reference %g", got, want)
	}
}
