package codegen

import (
	"fmt"
	"strings"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/schedule"
	"repro/internal/space"
	"repro/internal/tiling"
)

// SequentialTiled renders the sequentially-executed tiled loop nest for a
// rectangular tiling of sp: n tile loops around n intra-tile loops with
// clipping against the original bounds, the standard strip-mine-and-
// interchange form of the supernode transformation.
func SequentialTiled(sp *space.Space, t *tiling.Tiling, body string) (string, error) {
	sides, err := t.RectSides()
	if err != nil {
		return "", err
	}
	if sp.Dim() != t.Dim() {
		return "", fmt.Errorf("codegen: dimension mismatch")
	}
	ts, err := t.TileSpace(sp)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	indent := 0
	emit := func(format string, args ...any) {
		b.WriteString(strings.Repeat("\t", indent))
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	for d := 0; d < sp.Dim(); d++ {
		emit("for t%d := int64(%d); t%d <= %d; t%d++ {", d, ts.Lower[d], d, ts.Upper[d], d)
		indent++
	}
	for d := 0; d < sp.Dim(); d++ {
		emit("for i%d := max(int64(%d), t%d*%d); i%d <= min(int64(%d), t%d*%d+%d); i%d++ {",
			d, sp.Lower[d], d, sides[d], d, sp.Upper[d], d, sides[d], sides[d]-1, d)
		indent++
	}
	emit("%s", body)
	for indent > 0 {
		indent--
		emit("}")
	}
	return b.String(), nil
}

// ProcB renders the paper's blocking per-processor pseudocode for the 3-D
// experiment: the receive→compute→send triplet per k tile (Section 5).
func ProcB(kTiles int64) string {
	var b strings.Builder
	b.WriteString("// ProcB(i, j): blocking schedule of processor (i, j)\n")
	fmt.Fprintf(&b, "for k := 0; k < %d; k++ {\n", kTiles)
	b.WriteString("\tMPI_Recv(T(i-1, j), results(T(i-1, j), k))\n")
	b.WriteString("\tMPI_Recv(T(i, j-1), results(T(i, j-1), k))\n")
	b.WriteString("\tcompute(k)\n")
	b.WriteString("\tMPI_Send(T(i+1, j), results(T(i, j), k))\n")
	b.WriteString("\tMPI_Send(T(i, j+1), results(T(i, j), k))\n")
	b.WriteString("}\n")
	return b.String()
}

// ProcNB renders the paper's non-blocking (overlapped) per-processor
// pseudocode: sends of tile k−1, receives for tile k+1, compute of tile k.
func ProcNB(kTiles int64) string {
	var b strings.Builder
	b.WriteString("// ProcNB(i, j): overlapped schedule of processor (i, j)\n")
	fmt.Fprintf(&b, "for k := 0; k < %d; k++ {\n", kTiles)
	b.WriteString("\tMPI_Isend(T(i+1, j), results(T(i, j), k-1), &s1)\n")
	b.WriteString("\tMPI_Isend(T(i, j+1), results(T(i, j), k-1), &s2)\n")
	b.WriteString("\tMPI_Irecv(T(i-1, j), results(T(i-1, j), k+1), &r1)\n")
	b.WriteString("\tMPI_Irecv(T(i, j-1), results(T(i, j-1), k+1), &r2)\n")
	b.WriteString("\tcompute(k)\n")
	b.WriteString("\tMPI_Wait(s1); MPI_Wait(s2); MPI_Wait(r1); MPI_Wait(r2)\n")
	b.WriteString("}\n")
	return b.String()
}

// TiledOrder invokes visit with every point of sp in the execution order of
// the sequentially-tiled nest: tiles in lexicographic tile-coordinate
// order, points within a tile in lexicographic order. Works for arbitrary
// (including skewed) tilings.
func TiledOrder(sp *space.Space, t *tiling.Tiling, visit func(ilmath.Vec)) error {
	tiles, err := t.NonEmptyTiles(sp)
	if err != nil {
		return err
	}
	for _, tc := range tiles {
		if _, err := t.TilePoints(sp, tc, visit); err != nil {
			return err
		}
	}
	return nil
}

// WavefrontOrder invokes visit with every point of sp in the order implied
// by a linear schedule of the tiled space: tiles grouped by time step
// (steps ascending, tiles within a step in enumeration order), points
// within a tile in lexicographic order. This is the parallel execution
// order whose legality the schedule guarantees.
func WavefrontOrder(sp *space.Space, t *tiling.Tiling, l *schedule.Linear, td *deps.Set, visit func(ilmath.Vec)) error {
	tiles, err := t.NonEmptyTiles(sp)
	if err != nil {
		return err
	}
	// Group tiles by schedule step.
	box, err := t.TileSpaceBounds(sp)
	if err != nil {
		return err
	}
	byStep := map[int64][]ilmath.Vec{}
	var minStep, maxStep int64
	for i, tc := range tiles {
		step, err := l.Time(tc, box, td)
		if err != nil {
			return err
		}
		byStep[step] = append(byStep[step], tc)
		if i == 0 || step < minStep {
			minStep = step
		}
		if i == 0 || step > maxStep {
			maxStep = step
		}
	}
	for s := minStep; s <= maxStep; s++ {
		for _, tc := range byStep[s] {
			if _, err := t.TilePoints(sp, tc, visit); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckOrder verifies that an execution order (produced via TiledOrder or
// WavefrontOrder) is a legal reordering of the original loop nest: every
// point appears exactly once, and every dependence predecessor j − d inside
// the space is visited before j. It returns nil if legal.
func CheckOrder(sp *space.Space, d *deps.Set, order func(visit func(ilmath.Vec)) error) error {
	pos := make(map[string]int64, sp.Volume())
	var idx int64
	var firstErr error
	err := order(func(j ilmath.Vec) {
		if firstErr != nil {
			return
		}
		k := j.String()
		if _, dup := pos[k]; dup {
			firstErr = fmt.Errorf("codegen: point %v visited twice", j)
			return
		}
		if !sp.Contains(j) {
			firstErr = fmt.Errorf("codegen: point %v outside the space", j)
			return
		}
		pos[k] = idx
		idx++
	})
	if err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	if idx != sp.Volume() {
		return fmt.Errorf("codegen: order visited %d of %d points", idx, sp.Volume())
	}
	var depErr error
	sp.Points(func(j ilmath.Vec) bool {
		pj := pos[j.String()]
		for i := 0; i < d.Len(); i++ {
			prev := j.Sub(d.At(i))
			if !sp.Contains(prev) {
				continue
			}
			if pos[prev.String()] >= pj {
				depErr = fmt.Errorf("codegen: dependence violated: %v executed at %d, consumer %v at %d",
					prev, pos[prev.String()], j, pj)
				return false
			}
		}
		return true
	})
	return depErr
}
