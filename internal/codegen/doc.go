// Package codegen emits the tiled loop nests the transformation implies —
// the sequential 2n-deep tiled nest and the paper's SPMD pseudocode
// variants ProcB (blocking, Section 5) and ProcNB (non-blocking/overlapped)
// — and provides an execution-order checker proving that a tiling is a
// legal reordering of the original loop nest.
package codegen
