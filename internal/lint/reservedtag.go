package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// AnalyzerReservedTag fences off the transport's control plane. The mp
// layer multiplexes user messages and protocol traffic over one tag
// space by reserving the negative tags: −1 is the AnySource/AnyTag
// wildcard, −2/−3 the barrier, −4 the abort-tree poison, −5 the
// heartbeat probe and −6 the goodbye handshake. A negative tag literal
// outside internal/mp either collides with that control plane (a forged
// heartbeat or goodbye would confuse the failure detector) or silently
// relies on transport internals; either way the call is rejected at
// runtime at best and protocol-corrupting at worst.
//
// The rule: in every package except internal/mp, a Send/Recv/Isend/Irecv
// style call (two leading int parameters and a []byte payload) must not
// pass a negative constant in the source/destination or tag position
// unless it is spelled as one of mp's own named constants (mp.AnySource,
// mp.AnyTag).
var AnalyzerReservedTag = &Analyzer{
	Name: "reservedtag",
	Doc:  "negative message-tag literals (control plane: −2…−6, wildcards) appear only inside internal/mp",
	Run:  runReservedTag,
}

func runReservedTag(p *Package) []Diagnostic {
	if pathMatches(p.Path, "internal/mp") {
		return nil
	}
	var out []Diagnostic
	inspect(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 3 {
			return true
		}
		if !isPointToPointCall(p, call) {
			return true
		}
		for i, what := range []string{"source/destination rank", "tag"} {
			arg := call.Args[i]
			v, ok := negativeConstant(p, arg)
			if !ok || mpNamedConstant(p, arg) {
				continue
			}
			wildcard := "mp.AnySource"
			if i == 1 {
				wildcard = "mp.AnyTag"
			}
			out = append(out, diag(p, "reservedtag", arg.Pos(),
				"negative %s literal %s outside internal/mp: reserved control tags (heartbeat, goodbye, abort) and wildcards are the transport's; use %s or a tag >= 0", what, v, wildcard))
		}
		return true
	})
	return out
}

// isPointToPointCall reports whether call is a Send/Recv/Isend/Irecv
// style method call: matched by name plus the (int, int, []byte...)
// shape so wrappers (obs.InstrumentComm, mp.CountingComm, fixtures)
// are covered without needing the concrete mp.Comm type.
func isPointToPointCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Send", "Recv", "Isend", "Irecv":
	default:
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() < 3 {
		return false
	}
	for i := 0; i < 2; i++ {
		b, ok := sig.Params().At(i).Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			return false
		}
	}
	sl, ok := sig.Params().At(2).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && elem.Kind() == types.Byte
}

// negativeConstant reports whether e folds to a negative integer
// constant, returning its printed value.
func negativeConstant(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return "", false
	}
	if constant.Sign(tv.Value) >= 0 {
		return "", false
	}
	return tv.Value.String(), true
}

// mpNamedConstant reports whether e is an identifier/selector resolving
// to a constant declared by internal/mp itself (AnySource, AnyTag).
func mpNamedConstant(p *Package, e ast.Expr) bool {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	c, ok := p.Info.Uses[id].(*types.Const)
	return ok && isMPPackage(c.Pkg())
}
