package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerUnwaitedHandle enforces the paper's overlap contract on
// non-blocking communication: ProcNB's correctness argument (and the
// A1–A3/B1–B4 cost accounting) assumes every Isend/Irecv started in one
// tile step is completed by a matching Wait before its buffer is reused —
// a handle that is started and then dropped silently degrades the
// compute/send/receive triplet into an unfinished send or a receive whose
// ghost cells are never awaited.
//
// The rule: the result of any call returning an mp.Request must be
// consumed — its Wait/Test called, passed to a function (mp.WaitAll,
// append, a helper), stored into a field/slice/map, propagated by
// assignment, or returned. Discarding the handle (blank identifier or a
// bare expression statement) or binding it to a variable that is never
// consumed is a diagnostic. The check is object-based and deliberately
// conservative: any consuming use anywhere in the file clears the
// variable.
var AnalyzerUnwaitedHandle = &Analyzer{
	Name: "unwaitedhandle",
	Doc:  "every mp non-blocking request handle must reach a Wait/WaitAll, be stored, or be returned",
	Run:  runUnwaitedHandle,
}

// isMPPackage reports whether pkg is the message-passing layer.
func isMPPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "internal/mp" || strings.HasSuffix(p, "/internal/mp")
}

// isRequestType reports whether t is mp.Request.
func isRequestType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Request" && isMPPackage(n.Obj().Pkg())
}

// producesRequest reports whether call's (first) result is an mp.Request.
func producesRequest(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return tup.Len() > 0 && isRequestType(tup.At(0).Type())
	}
	return isRequestType(tv.Type)
}

func runUnwaitedHandle(p *Package) []Diagnostic {
	var out []Diagnostic

	// Pass 1: find request producers and how their results are bound.
	tracked := map[types.Object]*ast.CallExpr{} // handle var -> producing call
	inspect(p, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && producesRequest(p, call) {
				out = append(out, diag(p, "unwaitedhandle", call.Pos(),
					"request handle discarded: the overlap schedule requires every Isend/Irecv to reach a Wait"))
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !producesRequest(p, call) || len(s.Lhs) == 0 {
				return true
			}
			switch lhs := s.Lhs[0].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					out = append(out, diag(p, "unwaitedhandle", call.Pos(),
						"request handle discarded with _: the overlap schedule requires every Isend/Irecv to reach a Wait"))
					return true
				}
				obj := p.Info.Defs[lhs]
				if obj == nil {
					obj = p.Info.Uses[lhs]
				}
				if obj != nil {
					if _, seen := tracked[obj]; !seen {
						tracked[obj] = call
					}
				}
			default:
				// Field, index or dereference store: the handle escapes
				// into a structure; its consumer is elsewhere.
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return out
	}

	// Pass 2: hunt for a consuming use of each tracked handle variable.
	consumed := map[types.Object]bool{}
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if id, ok := n.(*ast.Ident); ok && len(stack) > 0 {
				obj := p.Info.Uses[id]
				if obj != nil {
					if _, want := tracked[obj]; want && consumingUse(id, stack) {
						consumed[obj] = true
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	for obj, call := range tracked {
		if !consumed[obj] {
			out = append(out, diag(p, "unwaitedhandle", call.Pos(),
				"request handle %q is never consumed (no Wait/Test, no WaitAll, not stored or returned)", obj.Name()))
		}
	}
	return out
}

// consumingUse reports whether the identifier use at the top of stack
// counts as consuming the handle. Comparisons (nil checks) and plain
// reassignments do not; method calls, call arguments, stores, sends and
// returns do.
func consumingUse(id *ast.Ident, stack []ast.Node) bool {
	parent := stack[len(stack)-1]
	switch par := parent.(type) {
	case *ast.SelectorExpr:
		// req.Wait(), req.Test(), even a bare field access: the handle's
		// own API is being exercised.
		return par.X == id
	case *ast.CallExpr:
		for _, a := range par.Args {
			if a == id {
				return true
			}
		}
		return par.Fun == id
	case *ast.ReturnStmt:
		return true
	case *ast.AssignStmt:
		for _, r := range par.Rhs {
			if r == id {
				return true // value propagated to another binding
			}
		}
		return false // left-hand side: reassignment, not consumption
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.SendStmt:
		return par.Value == id
	case *ast.UnaryExpr:
		return par.Op.String() == "&" // address taken: escapes
	case *ast.RangeStmt:
		return par.X == id
	default:
		return false
	}
}
