// Package lint is tilevet's analyzer suite: a self-contained static
// checker (stdlib go/ast + go/parser + go/types only, no module
// dependencies) that mechanically enforces the repo's domain contracts —
// the invariants the paper's overlapped schedule and the sweeps'
// bit-identical reproducibility rest on, which PRs 1–4 enforced only by
// convention and chaos tests.
//
// Four analyzers ship (see their files for the precise rules and the
// paper contract each one guards):
//
//   - unwaitedhandle: every non-blocking mp request handle must be
//     consumed (Wait/Test/WaitAll, stored, or returned) — a leaked handle
//     silently breaks the compute/send/receive overlap triplet.
//   - determinism: the simulation/replay packages must not read wall
//     clocks, the global rand source, or emit map-iteration order.
//   - reservedtag: negative message-tag literals (the transport's control
//     plane: barrier, abort, heartbeat −5, goodbye −6) stay inside
//     internal/mp.
//   - blockingdeadline: cmd/ binaries construct communicators only
//     through the deadline-bearing option structs from the failure model.
//
// # Suppressions
//
// A finding that is a deliberate, justified exception is silenced with a
// directive on the flagged line or the line above:
//
//	//tilevet:allow determinism -- wall-clock Stats.Elapsed never feeds the grid
//
// The reason after "--" is mandatory and directives that suppress nothing
// are themselves diagnostics, so the exception list cannot rot.
package lint
