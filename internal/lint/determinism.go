package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerDeterminism guards the repo's bit-identical replay guarantees:
// sweep results are memoized and compared bit-for-bit across worker
// counts (DESIGN.md §6), fault plans replay from a seed (§7), and
// checkpoint restarts must reproduce the exact grid (§8). All of that
// collapses if simulation or accounting code reads a wall clock, draws
// from the process-global rand source, or lets Go's randomized map
// iteration order leak into results, orderings, or emitted output.
//
// In the deterministic core packages (internal/sim, internal/simnet,
// internal/fault, internal/experiments, internal/estimate,
// internal/runner) the analyzer forbids:
//
//   - time.Now / time.Since / time.Until — wall clocks. The simulator's
//     clock is its event queue; real elapsed-time measurements that never
//     feed results carry a //tilevet:allow justification.
//   - package-level math/rand (and math/rand/v2) draws — the global
//     source is shared, unseeded, and irreproducible. Explicit
//     rand.New(rand.NewSource(seed)) instances are fine.
//   - ranging over a map unless the loop body is order-insensitive:
//     only stores into other maps, delete calls, integer accumulation,
//     or collecting the keys into a slice (for sorting) are allowed.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clocks, global rand, or map-iteration-order leaks in the deterministic core packages",
	Run:  runDeterminism,
}

// deterministicScope lists the package-path suffixes holding the
// bit-identical core.
var deterministicScope = []string{
	"internal/sim",
	"internal/simnet",
	"internal/topo",
	"internal/fault",
	"internal/experiments",
	"internal/estimate",
	"internal/runner",
}

// pathMatches reports whether path is, or ends with a "/"-separated, suf.
func pathMatches(path, suf string) bool {
	return path == suf || strings.HasSuffix(path, "/"+suf)
}

func inDeterministicScope(path string) bool {
	for _, s := range deterministicScope {
		if pathMatches(path, s) {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand package-level functions that build
// explicit, seedable sources rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Package) []Diagnostic {
	if !inDeterministicScope(p.Path) {
		return nil
	}
	var out []Diagnostic
	inspect(p, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.Ident:
			obj := p.Info.Uses[node]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on explicit sources (e.g. *rand.Rand) are fine
			}
			switch obj.Pkg().Path() {
			case "time":
				switch obj.Name() {
				case "Now", "Since", "Until":
					out = append(out, diag(p, "determinism", node.Pos(),
						"time.%s reads the wall clock: the deterministic core must be bit-identical across runs (simulated time only)", obj.Name()))
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[obj.Name()] && !strings.Contains(obj.Name(), ".") {
					out = append(out, diag(p, "determinism", node.Pos(),
						"rand.%s draws from the process-global source: use rand.New(rand.NewSource(seed)) so sweeps replay", obj.Name()))
				}
			}
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[node.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !orderInsensitiveBody(p, node) {
				out = append(out, diag(p, "determinism", node.Pos(),
					"map iteration order flows out of this loop: collect and sort the keys, or confine the body to map stores / integer accumulation"))
			}
		}
		return true
	})
	return out
}

// orderInsensitiveBody reports whether every statement of a range-over-map
// body is insensitive to iteration order: stores into maps, deletes,
// integer accumulation, or appending the range key to a slice (the
// collect-then-sort idiom).
func orderInsensitiveBody(p *Package, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(p, rs.Key)
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(p, s, keyObj) {
				return false
			}
		case *ast.IncDecStmt:
			if !isIntegerExpr(p, s.X) {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call.Fun, "delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func orderInsensitiveAssign(p *Package, s *ast.AssignStmt, keyObj types.Object) bool {
	switch s.Tok {
	case token.ASSIGN:
		// Stores where every destination is a map slot are commutative
		// across iterations (one store per distinct key).
		allMapStores := true
		for _, l := range s.Lhs {
			ix, ok := l.(*ast.IndexExpr)
			if !ok || !isMapExpr(p, ix.X) {
				allMapStores = false
				break
			}
		}
		if allMapStores {
			return true
		}
		// keys = append(keys, k): collecting the keys for a later sort —
		// the canonical deterministic-iteration idiom.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 && keyObj != nil {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") && len(call.Args) == 2 {
				if id, ok := call.Args[1].(*ast.Ident); ok && p.Info.Uses[id] == keyObj {
					return true
				}
			}
		}
		return false
	case token.ADD_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (rounding is order-dependent).
		return len(s.Lhs) == 1 && isIntegerExpr(p, s.Lhs[0])
	default:
		return false
	}
}

func rangeVarObj(p *Package, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

func isMapExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isIntegerExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(p *Package, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
