package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerBlockingDeadline enforces the failure model (DESIGN.md §8) at
// the process edge: a cmd/ binary whose blocking mp operations have no
// deadline hangs forever when a peer dies, which is exactly the failure
// mode the deadline/abort/heartbeat machinery of the failure-handling PR
// exists to rule out. Library and test code may build deadline-less
// worlds (unit tests want waits to block), but the deployable binaries
// must always thread the deadline knob.
//
// The rules, applied only to packages under cmd/:
//
//   - mp.Launch and mp.NewWorld are forbidden — they hardwire a world
//     with no deadline. Use mp.LaunchOpts / mp.NewWorldOpts.
//   - mp.ConnectTCP must not be passed a nil options literal.
//   - every mp.WorldOptions / mp.TCPOptions composite literal must spell
//     out its Deadline field explicitly, so a reviewer sees the chosen
//     bound (possibly a flag value; zero is an explicit "forever") at the
//     construction site.
//
// Additionally, in the planning service (cmd/tileserve) every HTTP
// handler — any func with the (http.ResponseWriter, *http.Request)
// signature, named or literal — must derive a deadline-bearing context
// (context.WithTimeout or context.WithDeadline) in its body. A handler
// that does work under the bare request context inherits "forever" from
// any client that keeps its connection open, which is the overload the
// service's admission control exists to rule out (DESIGN.md §11).
var AnalyzerBlockingDeadline = &Analyzer{
	Name: "blockingdeadline",
	Doc:  "cmd/ binaries reach mp only through deadline-bearing communicator options",
	Run:  runBlockingDeadline,
}

// inCmdScope reports whether path contains a cmd/ segment.
func inCmdScope(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func runBlockingDeadline(p *Package) []Diagnostic {
	if !inCmdScope(p.Path) {
		return nil
	}
	var out []Diagnostic
	inspect(p, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			fn := mpFuncCallee(p, node)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "Launch", "NewWorld":
				out = append(out, diag(p, "blockingdeadline", node.Pos(),
					"mp.%s builds a world with no deadline: cmd binaries must use mp.%sOpts with WorldOptions.Deadline (failure model)", fn.Name(), fn.Name()))
			case "ConnectTCP":
				if len(node.Args) == 4 && isNilIdent(p, node.Args[3]) {
					out = append(out, diag(p, "blockingdeadline", node.Args[3].Pos(),
						"mp.ConnectTCP with nil options has no deadline: pass a TCPOptions with Deadline set (failure model)"))
				}
			}
		case *ast.CompositeLit:
			name, ok := mpOptionsLiteral(p, node)
			if !ok {
				return true
			}
			if !setsField(node, "Deadline") {
				out = append(out, diag(p, "blockingdeadline", node.Pos(),
					"mp.%s literal without an explicit Deadline field: cmd binaries must thread the deadline knob (failure model)", name))
			}
		}
		return true
	})
	if strings.Contains(p.Path, "cmd/tileserve") {
		out = append(out, runHandlerDeadline(p)...)
	}
	return out
}

// runHandlerDeadline enforces the handler-deadline rule on the planning
// service: every function with the http.Handler signature must call
// context.WithTimeout or context.WithDeadline somewhere in its body.
func runHandlerDeadline(p *Package) []Diagnostic {
	var out []Diagnostic
	check := func(name string, pos token.Pos, sig *types.Signature, body *ast.BlockStmt) {
		if body == nil || sig == nil || !isHTTPHandlerSig(sig) {
			return
		}
		if !derivesDeadline(p, body) {
			out = append(out, diag(p, "blockingdeadline", pos,
				"HTTP handler %s never derives a deadline-bearing context: call context.WithTimeout or context.WithDeadline before doing work (overload safety)", name))
		}
	}
	inspect(p, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncDecl:
			if fn, ok := p.Info.Defs[node.Name].(*types.Func); ok {
				check(node.Name.Name, node.Pos(), fn.Type().(*types.Signature), node.Body)
			}
		case *ast.FuncLit:
			if tv, ok := p.Info.Types[node]; ok {
				sig, _ := tv.Type.(*types.Signature)
				check("literal", node.Pos(), sig, node.Body)
			}
		}
		return true
	})
	return out
}

// isHTTPHandlerSig reports whether sig is
// func(http.ResponseWriter, *http.Request) — the net/http handler shape.
func isHTTPHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	if !isNetHTTPType(sig.Params().At(0).Type(), "ResponseWriter") {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNetHTTPType(ptr.Elem(), "Request")
}

func isNetHTTPType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// derivesDeadline reports whether body (including nested literals) calls
// context.WithTimeout or context.WithDeadline.
func derivesDeadline(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "WithTimeout" || fn.Name() == "WithDeadline" {
			found = true
		}
		return true
	})
	return found
}

// mpFuncCallee returns the internal/mp package-level function a call
// invokes, or nil.
func mpFuncCallee(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || !isMPPackage(fn.Pkg()) {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // methods are not the constructors we police
	}
	return fn
}

func isNilIdent(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// mpOptionsLiteral reports whether lit is an mp.WorldOptions or
// mp.TCPOptions composite literal, returning the type name.
func mpOptionsLiteral(p *Package, lit *ast.CompositeLit) (string, bool) {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return "", false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !isMPPackage(named.Obj().Pkg()) {
		return "", false
	}
	name := named.Obj().Name()
	if name != "WorldOptions" && name != "TCPOptions" {
		return "", false
	}
	return name, true
}

// setsField reports whether a struct composite literal gives field name a
// value, either keyed or via a full positional literal.
func setsField(lit *ast.CompositeLit, name string) bool {
	keyed := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	// A positional literal must list every field, Deadline included.
	return !keyed && len(lit.Elts) > 0
}
