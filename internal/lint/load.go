package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package as the analyzers see it: parsed
// non-test sources (with comments, for the suppression directives) plus
// full go/types information resolved against the real module tree, so an
// analyzer can ask "is this mp.Request?" rather than pattern-match on
// names.
type Package struct {
	// Path is the import path the package was checked under. Fixture
	// packages under testdata are loaded with a spoofed in-module path so
	// path-scoped analyzers treat them like the package they impersonate.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Position returns pos relative to the loader's module root, which keeps
// diagnostics stable across checkouts (CI logs, golden files).
func (p *Package) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved by recursively
// loading their source directories, everything else is delegated to the
// compiler's export data (importer.Default). go.mod stays dependency-free.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // keyed by import path
}

// NewLoader creates a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root %s: %w", abs, err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	return &Loader{
		ModuleRoot: abs,
		ModulePath: mod,
		fset:       token.NewFileSet(),
		std:        importer.Default(),
		pkgs:       map[string]*Package{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer so a package under load can resolve its
// own module's packages from source; stdlib goes through export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load loads (or returns the cached) package with the given in-module
// import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

// LoadDir type-checks the package in dir under the spoofed import path
// asPath. Used by tests to load fixture packages from testdata as if they
// lived at a real in-module path (path-scoped analyzers key off it).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	l.pkgs[path] = nil // cycle marker
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// LoadModule loads every package of the module: each directory under the
// root that contains non-test Go sources, skipping testdata trees and
// hidden directories. Returned in deterministic import-path order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(dir)
		if base == "testdata" || (strings.HasPrefix(base, ".") && dir != l.ModuleRoot) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.ModuleRoot, dir)
				if err != nil {
					return err
				}
				p := l.ModulePath
				if rel != "." {
					p += "/" + filepath.ToSlash(rel)
				}
				paths = append(paths, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
