package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col CI logs.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string // one-line contract statement, shown by tilevet -list
	Run  func(p *Package) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerUnwaitedHandle,
		AnalyzerDeterminism,
		AnalyzerReservedTag,
		AnalyzerBlockingDeadline,
		AnalyzerBoundedRetry,
	}
}

// directive is one parsed //tilevet:allow comment.
type directive struct {
	pos       token.Position
	analyzers map[string]bool
	hasReason bool
	used      bool
}

const directivePrefix = "//tilevet:allow"

// parseDirectives collects the suppression directives of a package, keyed
// by filename and the source line(s) they cover: a directive at line L
// silences findings on L (trailing comment) and L+1 (comment above).
func parseDirectives(p *Package) map[string]map[int]*directive {
	out := map[string]map[int]*directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := &directive{pos: pos, analyzers: map[string]bool{}}
				names, reason, found := strings.Cut(rest, "--")
				d.hasReason = found && strings.TrimSpace(reason) != ""
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.analyzers[n] = true
					}
				}
				if out[pos.Filename] == nil {
					out[pos.Filename] = map[int]*directive{}
				}
				out[pos.Filename][pos.Line] = d
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages, applies suppression
// directives, and appends framework diagnostics for malformed or unused
// directives. Results are sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		dirs := parseDirectives(p)
		lookup := func(d Diagnostic) *directive {
			byLine := dirs[d.Pos.Filename]
			if byLine == nil {
				return nil
			}
			for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
				if dir := byLine[line]; dir != nil && dir.analyzers[d.Analyzer] {
					return dir
				}
			}
			return nil
		}
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if dir := lookup(d); dir != nil {
					dir.used = true
					continue
				}
				out = append(out, d)
			}
		}
		for _, byLine := range dirs {
			for _, dir := range byLine {
				switch {
				case !dir.hasReason:
					out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "tilevet",
						Message: `suppression directive needs a justification: //tilevet:allow <analyzer> -- <reason>`})
				case !dir.used && len(analyzers) == len(Analyzers()):
					// Only judge staleness when the full suite ran; a
					// partial run cannot tell an unused directive from one
					// aimed at an analyzer that was filtered out.
					out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "tilevet",
						Message: "suppression directive matches no finding; delete it"})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// Relativize rewrites diagnostic filenames relative to root (stable CI
// output); positions outside root are left absolute.
func Relativize(root string, diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		out[i] = d
	}
	return out
}

// diag is a convenience constructor used by the analyzers.
func diag(p *Package, name string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Analyzer: name, Message: fmt.Sprintf(format, args...)}
}

// inspect walks every file of the package.
func inspect(p *Package, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
