// Package good writes HTTP handlers the way the planning service must:
// every handler derives a deadline-bearing context before doing work.
// Type-checked under a spoofed cmd/tileserve path.
package good

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

func handleTimeout(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	_ = ctx
	fmt.Fprintln(w, r.URL.Path)
}

func mount(mux *http.ServeMux) {
	mux.HandleFunc("/anon", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithDeadline(r.Context(), time.Now().Add(time.Second))
		defer cancel()
		_ = ctx
		fmt.Fprintln(w, r.URL.Path)
	})
}

// notAHandler has a different signature and is exempt.
func notAHandler(w http.ResponseWriter) {
	fmt.Fprintln(w, "ok")
}
