// Package bad builds deadline-less communicators the way a cmd/ binary
// must not. Type-checked under a spoofed cmd/ path.
package bad

import "repro/internal/mp"

func spawnWorld(n int) error {
	return mp.Launch(n, func(c mp.Comm) error { return c.Barrier() })
}

func dialMesh(rank, n int, addrs []string) (mp.Comm, error) {
	return mp.ConnectTCP(rank, n, addrs, nil)
}

func buildOpts() mp.WorldOptions {
	return mp.WorldOptions{RendezvousThreshold: -1}
}
