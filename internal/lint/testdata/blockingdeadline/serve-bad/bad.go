// Package bad writes HTTP handlers the way the planning service must not:
// doing work under the bare request context, which a slow client can hold
// open forever. Type-checked under a spoofed cmd/tileserve path.
package bad

import (
	"fmt"
	"net/http"
)

func handlePlain(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, r.URL.Path)
}

func mount(mux *http.ServeMux) {
	mux.HandleFunc("/anon", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, r.URL.Path)
	})
}
