// Package good threads the deadline knob through every communicator
// construction site. Type-checked under a spoofed cmd/ path.
package good

import (
	"time"

	"repro/internal/mp"
)

func spawnWorld(n int, d time.Duration) error {
	opts := mp.WorldOptions{RendezvousThreshold: -1, Deadline: d}
	return mp.LaunchOpts(n, opts, func(c mp.Comm) error { return c.Barrier() })
}

func dialMesh(rank, n int, addrs []string, d time.Duration) (mp.Comm, error) {
	return mp.ConnectTCP(rank, n, addrs, &mp.TCPOptions{Deadline: d})
}
