// Package good sticks to non-negative tags and mp's own named wildcards.
// Type-checked under a spoofed internal/runner path.
package good

import "repro/internal/mp"

func listen(c mp.Comm, buf []byte) error {
	if _, err := c.Recv(mp.AnySource, mp.AnyTag, buf); err != nil {
		return err
	}
	return c.Send(0, 7, buf)
}
