// Package bad passes negative source/tag constants to point-to-point
// calls outside internal/mp: collisions with the transport's control
// plane. Type-checked under a spoofed internal/runner path.
package bad

import "repro/internal/mp"

const goodbye = -6

func forge(c mp.Comm, buf []byte) {
	_ = c.Send(1, -5, nil)         // the heartbeat control tag
	_, _ = c.Recv(-1, 0, buf)      // raw wildcard literal, not mp.AnySource
	_, _ = c.Recv(0, goodbye, buf) // a local constant still folds to −6
}
