// Package good consumes every non-blocking request handle it starts.
package good

import "repro/internal/mp"

type mailbox struct{ pending mp.Request }

func waited(c mp.Comm, data []byte) error {
	req, err := c.Isend(1, 0, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func waitAll(c mp.Comm, data []byte) error {
	var reqs []mp.Request
	for t := 0; t < 4; t++ {
		req, err := c.Isend(1, t, data)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return mp.WaitAll(reqs...)
}

func stored(c mp.Comm, m *mailbox, buf []byte) error {
	var err error
	m.pending, err = c.Irecv(0, 0, buf)
	return err
}

func returned(c mp.Comm, buf []byte) (mp.Request, error) {
	return c.Irecv(mp.AnySource, mp.AnyTag, buf)
}

func propagated(c mp.Comm, buf []byte) error {
	next, err := c.Irecv(0, 1, buf)
	if err != nil {
		return err
	}
	cur := next // propagation counts as consumption
	_, err = cur.Wait()
	return err
}
