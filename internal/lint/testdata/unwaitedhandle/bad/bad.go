// Package bad leaks non-blocking request handles in every way the
// unwaitedhandle analyzer flags.
package bad

import "repro/internal/mp"

func leakDiscard(c mp.Comm, data []byte) {
	c.Isend(1, 0, data) // handle dropped on the floor
}

func leakBlank(c mp.Comm, buf []byte) {
	_, _ = c.Irecv(0, 0, buf) // handle discarded with _
}

func leakUnconsumed(c mp.Comm, data []byte) error {
	req, err := c.Isend(1, 0, data)
	if err != nil {
		return err
	}
	if req == nil { // a nil check is not consumption
		return nil
	}
	return nil
}
