// Package good shows the bounded shapes the boundedretry analyzer
// accepts. Type-checked under a spoofed cmd/ path.
package good

import (
	"fmt"
	"time"
)

func dialPeer() error { return nil }

func launchRank(int) error { return nil }

// reconnectBudget is bounded by a counted loop header: the loop variable
// is the attempt budget.
func reconnectBudget(maxAttempts int) error {
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err = dialPeer(); err == nil {
			return nil
		}
	}
	return err
}

// reconnectDeadline is bounded by an explicit deadline check.
func reconnectDeadline(deadline time.Time) error {
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("dial: deadline exceeded")
		}
		if dialPeer() == nil {
			return nil
		}
	}
}

// superviseUntilStopped is bounded by its done channel.
func superviseUntilStopped(done <-chan struct{}, rank int) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if launchRank(rank) == nil {
			return
		}
	}
}
