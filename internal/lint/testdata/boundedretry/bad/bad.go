// Package bad retries without a budget or deadline the way a cmd/ binary
// must not. Type-checked under a spoofed cmd/ path.
package bad

func dialPeer() error { return nil }

func launchRank(int) error { return nil }

// reconnectForever loops on a dial with nothing to stop it.
func reconnectForever() {
	for {
		if dialPeer() == nil {
			return
		}
	}
}

// superviseForever restarts a rank until it succeeds, however long that
// takes and however often it fails.
func superviseForever(rank int) {
	for launchRank(rank) != nil {
	}
}
