// Package bad commits every determinism sin the analyzer knows: wall
// clocks, the global rand source, and map-iteration order reaching
// emitted output. It is type-checked under a spoofed internal/sim path.
package bad

import (
	"fmt"
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since)
}

func jitter() float64 {
	return rand.Float64()
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // iteration order reaches output
	}
}

func collectValues(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // element order is iteration order
	}
	return vals
}
