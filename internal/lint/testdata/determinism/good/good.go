// Package good shows the sanctioned forms: seeded sources, order-
// insensitive map loops, the collect-then-sort idiom, and a justified
// suppression. It is type-checked under a spoofed internal/sim path.
package good

import (
	"math/rand"
	"sort"
	"time"
)

func draws(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k // map-to-map store is order-insensitive
	}
	return inv
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom
	}
	sort.Strings(keys)
	return keys
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation commutes
	}
	return n
}

func wallClock() time.Time {
	//tilevet:allow determinism -- fixture: proves a justified suppression is honored
	return time.Now()
}
