package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expect.txt files")

// fixtures maps each analyzer to its positive (bad) and negative (good)
// testdata packages, and the in-module import path the fixture is
// type-checked under (path-scoped analyzers key off it).
var fixtures = []struct {
	analyzer *Analyzer
	dir      string // under testdata/
	spoof    string // import path the fixture impersonates
	findings bool   // whether the analyzer must fire
}{
	{AnalyzerUnwaitedHandle, "unwaitedhandle/bad", "repro/internal/fixture", true},
	{AnalyzerUnwaitedHandle, "unwaitedhandle/good", "repro/internal/fixture", false},
	{AnalyzerDeterminism, "determinism/bad", "repro/internal/sim", true},
	{AnalyzerDeterminism, "determinism/good", "repro/internal/sim", false},
	{AnalyzerReservedTag, "reservedtag/bad", "repro/internal/runner", true},
	{AnalyzerReservedTag, "reservedtag/good", "repro/internal/runner", false},
	{AnalyzerBlockingDeadline, "blockingdeadline/bad", "repro/cmd/fixture", true},
	{AnalyzerBlockingDeadline, "blockingdeadline/good", "repro/cmd/fixture", false},
	{AnalyzerBlockingDeadline, "blockingdeadline/serve-bad", "repro/cmd/tileserve", true},
	{AnalyzerBlockingDeadline, "blockingdeadline/serve-good", "repro/cmd/tileserve", false},
	{AnalyzerBoundedRetry, "boundedretry/bad", "repro/cmd/fixture", true},
	{AnalyzerBoundedRetry, "boundedretry/good", "repro/cmd/fixture", false},
}

// runFixture type-checks one testdata package under its spoofed path and
// runs a single analyzer (suppression directives apply; the unused-
// directive check does not, since the suite is partial).
func runFixture(t *testing.T, dir, spoof string, a *Analyzer) []Diagnostic {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(abs, spoof)
	if err != nil {
		t.Fatal(err)
	}
	return Relativize(abs, Run([]*Package{pkg}, []*Analyzer{a}))
}

// TestFixtures checks every analyzer against its golden diagnostics: the
// bad fixture must reproduce expect.txt exactly, the good fixture must be
// silent. Regenerate goldens with: go test ./internal/lint -update
func TestFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			diags := runFixture(t, fx.dir, fx.spoof, fx.analyzer)
			if fx.findings && len(diags) == 0 {
				t.Fatalf("analyzer %s reported nothing on its positive fixture", fx.analyzer.Name)
			}
			var lines []string
			for _, d := range diags {
				lines = append(lines, d.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}
			expectPath := filepath.Join("testdata", fx.dir, "expect.txt")
			if *update {
				if got == "" {
					os.Remove(expectPath)
					return
				}
				if err := os.WriteFile(expectPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := ""
			if data, err := os.ReadFile(expectPath); err == nil {
				want = string(data)
			} else if fx.findings {
				t.Fatalf("missing golden %s (run with -update)", expectPath)
			}
			if got != want {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", fx.dir, got, want)
			}
		})
	}
}

// TestModuleClean is the in-process gate: the full suite over the whole
// module at HEAD must report zero diagnostics, so a contract violation
// anywhere in the tree fails plain `go test ./...` (tier-1), not just
// `make lint`.
func TestModuleClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("module load found only %d packages; loader is skipping code", len(pkgs))
	}
	for _, d := range Relativize(root, Run(pkgs, Analyzers())) {
		t.Errorf("%s", d)
	}
}

// TestSuppressionNeedsReason: a directive without a justification is
// itself a finding, so the exception list cannot silently grow.
func TestSuppressionNeedsReason(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func stamp() time.Time {
	//tilevet:allow determinism
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(dir, "repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerDeterminism})
	var reasons, clock int
	for _, d := range diags {
		switch {
		case d.Analyzer == "tilevet" && strings.Contains(d.Message, "justification"):
			reasons++
		case d.Analyzer == "determinism":
			clock++
		}
	}
	if reasons != 1 {
		t.Errorf("want 1 missing-justification finding, got %d (%v)", reasons, diags)
	}
	if clock != 0 {
		t.Errorf("reasonless directive should still suppress while being reported itself; got %d clock findings", clock)
	}
}

// TestUnusedSuppression: with the full suite running, a directive that
// suppresses nothing is reported as stale.
func TestUnusedSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package p

//tilevet:allow determinism -- stale: nothing here trips the analyzer
var x = 1
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(dir, "repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, Analyzers())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "matches no finding") {
		t.Errorf("want exactly one stale-directive finding, got %v", diags)
	}
}
