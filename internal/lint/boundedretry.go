package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// AnalyzerBoundedRetry enforces the recovery model (DESIGN.md §13) where
// restart loops live: in the deployable binaries under cmd/ and in the
// supervisor itself. A loop that keeps launching, dialing or retrying with
// no attempt budget and no deadline turns a persistent failure into an
// infinite restart storm — exactly what the supervisor's typed
// *BudgetError/*DeadlineError failures exist to rule out. Any retrying
// loop must make its bound visible: a counted loop header, or a reference
// to a budget/attempt counter, deadline, timeout, or done channel inside
// the loop.
//
// Counted loops (both Init and Post present) pass outright — the loop
// variable is the budget. Everything else that calls a retry-shaped
// function (start/launch/retry/restart/spawn/dial/connect, any casing)
// must reference a bound-shaped name (deadline/budget/attempt/timeout/
// done/remaining/expire) in its condition or body.
var AnalyzerBoundedRetry = &Analyzer{
	Name: "boundedretry",
	Doc:  "restart/retry loops in cmd/ and internal/supervise carry an attempt budget or deadline",
	Run:  runBoundedRetry,
}

var (
	retryVerbRE = regexp.MustCompile(`(?i)(start|launch|retry|restart|spawn|dial|connect)`)
	// Deliberately no "restart"/"retry" here: a call named retryX must not
	// excuse its own loop.
	boundHintRE = regexp.MustCompile(`(?i)(deadline|budget|attempt|timeout|done|remaining|expire)`)
)

func runBoundedRetry(p *Package) []Diagnostic {
	if !inCmdScope(p.Path) && !strings.HasSuffix(p.Path, "internal/supervise") {
		return nil
	}
	var out []Diagnostic
	inspect(p, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Init != nil && loop.Post != nil {
			return true
		}
		verb := firstRetryCall(loop.Cond, loop.Body)
		if verb == "" || loopReferencesBound(loop) {
			return true
		}
		out = append(out, diag(p, "boundedretry", loop.Pos(),
			"unbounded retry loop (calls %s): carry an attempt budget or deadline so a persistent failure converges to a typed error (recovery model)", verb))
		return true
	})
	return out
}

// firstRetryCall returns the name of the first retry-shaped call in the
// loop's condition or body, or "".
func firstRetryCall(nodes ...ast.Node) string {
	name := ""
	check := func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if retryVerbRE.MatchString(id.Name) {
			name = id.Name
		}
		return true
	}
	for _, node := range nodes {
		if node == nil || name != "" {
			continue
		}
		ast.Inspect(node, check)
	}
	return name
}

// loopReferencesBound reports whether the loop's condition or body mentions
// a bound-shaped identifier (deadline, budget, attempt counter, timeout,
// done channel, ...) — the visible evidence that the retrying is bounded.
func loopReferencesBound(loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && boundHintRE.MatchString(id.Name) {
			found = true
		}
		return true
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	ast.Inspect(loop.Body, check)
	return found
}
