package planapi

import (
	"strings"
	"testing"
)

// FuzzPlanRequestDecode throws arbitrary bytes at the strict decoder. The
// invariant under fuzzing is the admission contract: DecodeRequest either
// returns an error, or returns a request that passes Validate, resolves to
// a simulatable grid/mode/machine, and stays within every work bound — a
// fuzzer-found input must never buy more simulator work than the limits
// allow. Seeds cover the valid shape plus the truncation/trailing/unknown
// classes the table tests pin.
func FuzzPlanRequestDecode(f *testing.F) {
	seeds := []string{
		validJSON(),
		`{"version":1,"space":[16,16,1024],"procs":[4,4],"mode":"blocking","machine":"example1","exact":true}`,
		`{"version":1,"space":[16,16,1024],"procs":[4,4]}`,
		// Truncations of a valid body at awkward byte offsets.
		validJSON()[:10],
		validJSON()[:len(validJSON())-1],
		`{"version":1,"space":[16,16`,
		// Unknown field, trailing data, wrong types, hostile numbers.
		`{"version":1,"space":[16,16,1024],"procs":[4,4],"bogus":1}`,
		validJSON() + validJSON(),
		`{"version":"1","space":[16,16,1024],"procs":[4,4]}`,
		`{"version":1,"space":[16,16,9223372036854775807],"procs":[4,4]}`,
		`{"version":1,"space":[16,16,-1024],"procs":[4,4]}`,
		`null`, `[]`, `{}`, ``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeRequest(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("DecodeRequest accepted a request Validate rejects: %v\nbody: %q", verr, data)
		}
		g, gerr := q.Grid()
		if gerr != nil {
			t.Fatalf("accepted request has no grid: %v\nbody: %q", gerr, data)
		}
		if _, merr := q.SimMode(); merr != nil {
			t.Fatalf("accepted request has no mode: %v\nbody: %q", merr, data)
		}
		if _, merr := q.MachineModel(); merr != nil {
			t.Fatalf("accepted request has no machine: %v\nbody: %q", merr, data)
		}
		if worst := g.PI * g.PJ * g.K; worst <= 0 || worst > MaxWorstCaseTiles {
			t.Fatalf("accepted request breaks the work bound: PI*PJ*K = %d\nbody: %q", worst, data)
		}
		if q.Key() == "" {
			t.Fatalf("accepted request has empty key\nbody: %q", data)
		}
	})
}
