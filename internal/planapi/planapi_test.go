package planapi

import (
	"context"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sim"
)

func validJSON() string {
	return `{"version":1,"space":[16,16,1024],"procs":[4,4],"tenant":"team-a"}`
}

// TestDecodeValid: a well-formed request round-trips through the strict
// decoder with defaults resolved by the accessors, not mutated in place.
func TestDecodeValid(t *testing.T) {
	q, err := DecodeRequest(strings.NewReader(validJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Version != 1 || q.Space[2] != 1024 || q.Tenant != "team-a" {
		t.Fatalf("decoded %+v", q)
	}
	mode, err := q.SimMode()
	if err != nil || mode != sim.Overlapped {
		t.Fatalf("default mode = %v, %v; want overlapped", mode, err)
	}
	m, err := q.MachineModel()
	if err != nil {
		t.Fatal(err)
	}
	if want := model.PentiumCluster(); m != want {
		t.Fatalf("default machine = %+v, want pentium cluster", m)
	}
	g, err := q.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if g != (model.Grid3D{I: 16, J: 16, K: 1024, PI: 4, PJ: 4}) {
		t.Fatalf("grid = %+v", g)
	}
}

// TestDecodeRejects: every malformed shape the strict decoder must refuse.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty", ``, "decode"},
		{"truncated", `{"version":1,"space":[16,16`, "decode"},
		{"unknown field", `{"version":1,"space":[16,16,1024],"procs":[4,4],"bogus":1}`, "bogus"},
		{"trailing data", validJSON() + `{"version":1}`, "trailing"},
		{"trailing garbage", validJSON() + `xyz`, "trailing"},
		{"wrong version", `{"version":2,"space":[16,16,1024],"procs":[4,4]}`, "version 2"},
		{"missing version", `{"space":[16,16,1024],"procs":[4,4]}`, "version 0"},
		{"space 2d", `{"version":1,"space":[16,16],"procs":[4,4]}`, "space"},
		{"space 4d", `{"version":1,"space":[16,16,8,8],"procs":[4,4]}`, "space"},
		{"no procs", `{"version":1,"space":[16,16,1024]}`, "procs"},
		{"procs 1d", `{"version":1,"space":[16,16,1024],"procs":[4]}`, "procs"},
		{"zero extent", `{"version":1,"space":[0,16,1024],"procs":[4,4]}`, "planapi"},
		{"negative extent", `{"version":1,"space":[-16,16,1024],"procs":[4,4]}`, "planapi"},
		{"indivisible", `{"version":1,"space":[15,16,1024],"procs":[4,4]}`, "planapi"},
		{"I too large", `{"version":1,"space":[8192,16,1024],"procs":[4,4]}`, "limit"},
		{"K too large", `{"version":1,"space":[16,16,2097152],"procs":[4,4]}`, "limit"},
		{"zero procs", `{"version":1,"space":[16,16,1024],"procs":[0,4]}`, "processor"},
		{"too many procs", `{"version":1,"space":[1024,1024,64],"procs":[512,2]}`, "processor"},
		{"work bound", `{"version":1,"space":[16,16,1048576],"procs":[16,16]}`, "tile count"},
		{"bad mode", `{"version":1,"space":[16,16,1024],"procs":[4,4],"mode":"eager"}`, "mode"},
		{"bad machine", `{"version":1,"space":[16,16,1024],"procs":[4,4],"machine":"cray"}`, "machine"},
		{"tenant charset", `{"version":1,"space":[16,16,1024],"procs":[4,4],"tenant":"a b"}`, "tenant"},
		{"tenant too long", `{"version":1,"space":[16,16,1024],"procs":[4,4],"tenant":"` +
			strings.Repeat("x", MaxTenantLen+1) + `"}`, "tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("decoded %q without error", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeSizeLimit: a body over MaxBodyBytes fails even if it would
// otherwise be valid JSON, and the decoder never slurps the excess.
func TestDecodeSizeLimit(t *testing.T) {
	pad := strings.Repeat(" ", MaxBodyBytes)
	if _, err := DecodeRequest(strings.NewReader(pad + validJSON())); err == nil {
		t.Fatal("oversized body accepted")
	}
}

// TestModeAndMachineEnums pins the accepted enum values.
func TestModeAndMachineEnums(t *testing.T) {
	base := PlanRequest{Version: 1, Space: []int64{16, 16, 1024}, Procs: []int64{4, 4}}
	for _, mode := range []string{"", "overlapped", "blocking"} {
		q := base
		q.Mode = mode
		if err := q.Validate(); err != nil {
			t.Errorf("mode %q rejected: %v", mode, err)
		}
	}
	for _, machine := range []string{"", "example1", "pentium"} {
		q := base
		q.Machine = machine
		if err := q.Validate(); err != nil {
			t.Errorf("machine %q rejected: %v", machine, err)
		}
	}
}

// TestKeyIgnoresTenant: tenant is accounting metadata, so two requests
// differing only in tenant coalesce; any answer-affecting field splits the
// key.
func TestKeyIgnoresTenant(t *testing.T) {
	a := PlanRequest{Version: 1, Space: []int64{16, 16, 1024}, Procs: []int64{4, 4}, Tenant: "a"}
	b := a
	b.Tenant = "b"
	if a.Key() != b.Key() {
		t.Errorf("tenant split the key: %q != %q", a.Key(), b.Key())
	}
	// Defaults and explicit spellings of the same request share a key.
	c := a
	c.Mode, c.Machine = "overlapped", "pentium"
	if a.Key() != c.Key() {
		t.Errorf("default spelling split the key: %q != %q", a.Key(), c.Key())
	}
	for name, mut := range map[string]func(*PlanRequest){
		"mode":    func(q *PlanRequest) { q.Mode = "blocking" },
		"machine": func(q *PlanRequest) { q.Machine = "example1" },
		"exact":   func(q *PlanRequest) { q.Exact = true },
		"space":   func(q *PlanRequest) { q.Space = []int64{16, 16, 512} },
		"procs":   func(q *PlanRequest) { q.Procs = []int64{2, 8} },
	} {
		d := a
		d.Space = append([]int64(nil), a.Space...)
		d.Procs = append([]int64(nil), a.Procs...)
		mut(&d)
		if a.Key() == d.Key() {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

// TestSweepMatchesTileplan: the served query must be constructed exactly
// like `tileplan -optimum` builds its offline sweep, and answer
// bit-identically to it.
func TestSweepMatchesTileplan(t *testing.T) {
	q, err := DecodeRequest(strings.NewReader(validJSON()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := q.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	g := model.Grid3D{I: 16, J: 16, K: 1024, PI: 4, PJ: 4}
	wantHeights := experiments.Ladder(4, g.K/4)
	if len(s.Heights) != len(wantHeights) {
		t.Fatalf("heights %v != tileplan ladder %v", s.Heights, wantHeights)
	}
	for i := range wantHeights {
		if s.Heights[i] != wantHeights[i] {
			t.Fatalf("heights %v != tileplan ladder %v", s.Heights, wantHeights)
		}
	}
	if s.Cap != sim.CapDMA || s.Grid != g || s.Exact {
		t.Fatalf("sweep %+v does not match tileplan construction", s)
	}

	// Answer parity against the offline construction, both modes.
	s.Cache = sim.NewCache()
	ref := experiments.Sweep{
		ID: "tileplan", Title: "tileplan -optimum",
		Grid: g, Heights: experiments.Ladder(4, g.K/4),
		Machine: model.PentiumCluster(), Cap: sim.CapDMA,
		Cache: sim.NewCache(),
	}
	for _, mode := range []sim.Mode{sim.Overlapped, sim.Blocking} {
		got, err := s.OptimumDetailCtx(context.Background(), mode)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.OptimumDetailCtx(context.Background(), mode)
		if err != nil {
			t.Fatal(err)
		}
		if got.V != want.V || got.T != want.T || got.Tier != want.Tier {
			t.Errorf("%v: served (V=%d t=%g tier=%v) != tileplan (V=%d t=%g tier=%v)",
				mode, got.V, got.T, got.Tier, want.V, want.T, want.Tier)
		}
	}
}

// TestSeedForMatchesGrid: SeedFor reports the same closed-form seed
// tileplan prints.
func TestSeedForMatchesGrid(t *testing.T) {
	g := model.Grid3D{I: 16, J: 16, K: 1024, PI: 4, PJ: 4}
	m := model.PentiumCluster()
	wantOv, _, err := g.OptimalVOverlapAnalytic(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := SeedFor(g, m, sim.Overlapped); got != wantOv {
		t.Errorf("overlapped seed %g != %g", got, wantOv)
	}
	wantBl, _, err := g.OptimalVBlockingAnalytic(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := SeedFor(g, m, sim.Blocking); got != wantBl {
		t.Errorf("blocking seed %g != %g", got, wantBl)
	}
}

// TestResultRoundTrip: EncodeResult/DecodeResult are inverses.
func TestResultRoundTrip(t *testing.T) {
	res := PlanResult{
		Version: 1, Mode: "overlapped", V: 16, G: 256, TSeconds: 0.125,
		Tier: "certified", Probes: 5, SeedV: 14.7,
	}
	var b strings.Builder
	if err := EncodeResult(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(b.String(), "\n") {
		t.Error("encoded result not newline-terminated")
	}
	got, err := DecodeResult(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Errorf("round trip %+v != %+v", got, res)
	}
}
