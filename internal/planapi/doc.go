// Package planapi is the serializable, versioned API boundary in front of
// internal/experiments: the wire contract a planning service (cmd/tileserve)
// speaks, and the strict validation that keeps an untrusted request from
// buying unbounded simulator work.
//
// The contract is deliberately narrow for version 1: one request asks for
// the optimum tile height of one (space, procs, machine, schedule) point —
// exactly the query `tileplan -optimum` answers offline — and the response
// carries the answer plus the provenance the tiered search reports (which
// tier, how many probes, why the exact tier ran). Every limit a request
// must respect is a named constant below, so the admission story is
// auditable: a decoded request is either fully valid and worth at most
// MaxWorstCaseTiles of DAG construction per DES evaluation, or rejected
// before any simulator state is touched.
package planapi
