package planapi

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sim"
)

// Version is the wire version this package speaks. Requests must carry it
// verbatim; anything else is rejected so a future v2 can change semantics
// without silently misreading v1 clients.
const Version = 1

// Request-validation bounds. These exist to cap the simulator work and
// memory one admitted request can demand — the DES cost of a point is
// dominated by its tile count, and the optimum ladder reaches down to
// height 1, where the tile count is PI·PJ·K.
const (
	// MaxBodyBytes bounds a request body; a valid v1 request is well under
	// 1 KiB, so anything larger is noise or abuse.
	MaxBodyBytes = 64 << 10
	// MaxExtentIJ bounds the I and J space extents.
	MaxExtentIJ = 1 << 12
	// MaxExtentK bounds the K (tiling) extent.
	MaxExtentK = 1 << 20
	// MaxProcs bounds the processor grid size PI·PJ.
	MaxProcs = 1 << 8
	// MaxWorstCaseTiles bounds PI·PJ·K — the tile count of the worst rung
	// (height 1) the optimum ladder can ask the simulator for.
	MaxWorstCaseTiles = 1 << 22
	// MaxTenantLen bounds the advisory tenant label.
	MaxTenantLen = 64
)

// PlanRequest is one optimum-tile-height query: the paper's "which g
// minimizes completion time" question for a 3-D rectangular space on a
// PI×PJ processor grid. The zero value is invalid; requests are built by
// clients and checked with Validate (DecodeRequest does both).
type PlanRequest struct {
	// Version must equal Version.
	Version int `json:"version"`
	// Space is the iteration-space extents [I, J, K].
	Space []int64 `json:"space"`
	// Procs is the processor grid [PI, PJ]. PI must divide I and PJ divide J.
	Procs []int64 `json:"procs"`
	// Machine names the machine model: "example1" or "pentium" (default
	// "pentium", the paper's calibrated testbed).
	Machine string `json:"machine,omitempty"`
	// Mode selects the schedule: "overlapped" (default) or "blocking".
	Mode string `json:"mode,omitempty"`
	// Exact forces the exhaustive tier, skipping the analytic fast path —
	// the audit escape hatch, same as `tileplan -optimum -exact`.
	Exact bool `json:"exact,omitempty"`
	// Tenant is an advisory label for per-tenant accounting; it never
	// changes the answer. Restricted to [A-Za-z0-9._-].
	Tenant string `json:"tenant,omitempty"`
}

// PlanResult is the answer to a PlanRequest.
type PlanResult struct {
	Version int    `json:"version"`
	Mode    string `json:"mode"`
	// V is the optimal tile height, G the tile volume at that height, and
	// TSeconds its simulated completion time.
	V        int64   `json:"v"`
	G        int64   `json:"g"`
	TSeconds float64 `json:"t_seconds"`
	// Tier, Probes and FallbackReason are the tiered search's provenance:
	// which tier answered, how many DES probes the tiered stage issued, and
	// why the exact tier ran if it did.
	Tier           string `json:"tier"`
	Probes         int    `json:"probes"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	// SeedV is the analytic closed-form optimum that seeded the search
	// (0 when the closed form has no solution).
	SeedV float64 `json:"seed_v,omitempty"`
}

// DecodeRequest reads exactly one JSON-encoded PlanRequest from r,
// rejecting unknown fields, trailing data, bodies over MaxBodyBytes, and
// anything Validate rejects. It never reads more than MaxBodyBytes+1 bytes
// regardless of what the stream offers.
func DecodeRequest(r io.Reader) (PlanRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	var q PlanRequest
	if err := dec.Decode(&q); err != nil {
		return PlanRequest{}, fmt.Errorf("planapi: decode: %w", err)
	}
	if dec.More() {
		return PlanRequest{}, fmt.Errorf("planapi: trailing data after request body")
	}
	if err := q.Validate(); err != nil {
		return PlanRequest{}, err
	}
	return q, nil
}

// Validate checks every v1 invariant: version, shape, positivity,
// divisibility, the work bounds, and the enum fields. A request that
// passes resolves to a simulatable grid within the documented limits.
func (q PlanRequest) Validate() error {
	if q.Version != Version {
		return fmt.Errorf("planapi: version %d not supported (want %d)", q.Version, Version)
	}
	if len(q.Space) != 3 {
		return fmt.Errorf("planapi: space must be [I, J, K], got %d extents", len(q.Space))
	}
	if len(q.Procs) != 2 {
		return fmt.Errorf("planapi: procs must be [PI, PJ], got %d extents", len(q.Procs))
	}
	i, j, k := q.Space[0], q.Space[1], q.Space[2]
	pi, pj := q.Procs[0], q.Procs[1]
	if i > MaxExtentIJ || j > MaxExtentIJ {
		return fmt.Errorf("planapi: space extent %dx%d exceeds the %d limit", i, j, MaxExtentIJ)
	}
	if k > MaxExtentK {
		return fmt.Errorf("planapi: K=%d exceeds the %d limit", k, MaxExtentK)
	}
	if pi <= 0 || pj <= 0 || pi*pj > MaxProcs {
		return fmt.Errorf("planapi: processor grid %dx%d outside (0, %d] processors", pi, pj, MaxProcs)
	}
	g, err := q.Grid()
	if err != nil {
		return err
	}
	if worst := pi * pj * k; worst > MaxWorstCaseTiles {
		return fmt.Errorf("planapi: worst-case tile count PI*PJ*K = %d exceeds the %d limit", worst, MaxWorstCaseTiles)
	}
	_ = g
	if _, err := q.SimMode(); err != nil {
		return err
	}
	if _, err := q.MachineModel(); err != nil {
		return err
	}
	if len(q.Tenant) > MaxTenantLen {
		return fmt.Errorf("planapi: tenant label longer than %d bytes", MaxTenantLen)
	}
	for _, c := range []byte(q.Tenant) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("planapi: tenant label contains %q (want [A-Za-z0-9._-])", c)
		}
	}
	return nil
}

// Grid resolves the request's space/procs to a model.Grid3D, applying the
// model-level divisibility and positivity checks.
func (q PlanRequest) Grid() (model.Grid3D, error) {
	if len(q.Space) != 3 || len(q.Procs) != 2 {
		return model.Grid3D{}, fmt.Errorf("planapi: malformed space/procs")
	}
	g := model.Grid3D{
		I: q.Space[0], J: q.Space[1], K: q.Space[2],
		PI: q.Procs[0], PJ: q.Procs[1],
	}
	if err := g.Validate(); err != nil {
		return model.Grid3D{}, fmt.Errorf("planapi: %w", err)
	}
	return g, nil
}

// SimMode resolves the schedule name ("" defaults to overlapped).
func (q PlanRequest) SimMode() (sim.Mode, error) {
	switch q.Mode {
	case "", "overlapped":
		return sim.Overlapped, nil
	case "blocking":
		return sim.Blocking, nil
	default:
		return 0, fmt.Errorf("planapi: unknown mode %q (want overlapped or blocking)", q.Mode)
	}
}

// MachineModel resolves the machine name ("" defaults to pentium, the
// paper's calibrated cluster).
func (q PlanRequest) MachineModel() (model.Machine, error) {
	name := q.Machine
	if name == "" {
		name = "pentium"
	}
	m, err := model.NamedMachine(name)
	if err != nil {
		return model.Machine{}, fmt.Errorf("planapi: %w", err)
	}
	return m, nil
}

// Key returns the request's answer-determining identity: two requests with
// equal keys have bit-identical answers (Tenant is excluded — it is
// accounting metadata). The planning service coalesces concurrent
// identical requests on this key.
func (q PlanRequest) Key() string {
	mode := q.Mode
	if mode == "" {
		mode = "overlapped"
	}
	machine := q.Machine
	if machine == "" {
		machine = "pentium"
	}
	return fmt.Sprintf("v%d|%dx%dx%d|%dx%d|%s|%s|exact=%t",
		q.Version, q.Space[0], q.Space[1], q.Space[2], q.Procs[0], q.Procs[1],
		machine, mode, q.Exact)
}

// Sweep builds the experiments.Sweep answering this request, constructed
// exactly like `tileplan -optimum` builds its offline query — same height
// ladder, machine resolution, capability, and Exact flag — so a served
// answer is bit-identical to the CLI's. The caller attaches a sim.Cache
// before running.
func (q PlanRequest) Sweep() (experiments.Sweep, error) {
	g, err := q.Grid()
	if err != nil {
		return experiments.Sweep{}, err
	}
	m, err := q.MachineModel()
	if err != nil {
		return experiments.Sweep{}, err
	}
	return experiments.Sweep{
		ID: "planapi", Title: "planapi request",
		Grid:    g,
		Heights: experiments.Ladder(4, g.K/4),
		Machine: m,
		Cap:     sim.CapDMA,
		Exact:   q.Exact,
	}, nil
}

// SeedFor returns the analytic closed-form optimum for the request's mode
// on grid g — the seed the service reports in PlanResult.SeedV. Zero when
// the closed form has no solution.
func SeedFor(g model.Grid3D, m model.Machine, mode sim.Mode) float64 {
	var seed float64
	var err error
	if mode == sim.Blocking {
		seed, _, err = g.OptimalVBlockingAnalytic(m)
	} else {
		seed, _, err = g.OptimalVOverlapAnalytic(m)
	}
	if err != nil {
		return 0
	}
	return seed
}

// EncodeResult writes res as a single JSON object followed by a newline.
func EncodeResult(w io.Writer, res PlanResult) error {
	return json.NewEncoder(w).Encode(res)
}

// DecodeResult reads one PlanResult — the client-side counterpart of
// EncodeResult, used by tests and smoke drivers.
func DecodeResult(r io.Reader) (PlanResult, error) {
	var res PlanResult
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		return PlanResult{}, fmt.Errorf("planapi: decode result: %w", err)
	}
	return res, nil
}
