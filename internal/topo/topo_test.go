package topo

import "testing"

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		ok   bool
	}{
		{"flat", Flat(), true},
		{"two-level", TwoLevel(32, 4, 5e-6, 2), true},
		{"fat-tree", FatTree(16, 8, 2, 4, 5e-6, 2), true},
		{"negative-levels", Spec{Levels: -1}, false},
		{"too-deep", Spec{Levels: MaxLevels + 1}, false},
		{"radix-1", TwoLevel(1, 4, 0, 1), false},
		{"zero-bw", TwoLevel(8, 0, 0, 1), false},
		{"negative-latency", TwoLevel(8, 1, -1, 1), false},
		{"zero-uplinks", TwoLevel(8, 1, 0, 0), false},
		{"junk-beyond-levels", Spec{Levels: 1, L: [MaxLevels]Level{
			{Radix: 8, BW: 1, Uplinks: 1}, {Radix: 4}}}, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRouting(t *testing.T) {
	s := FatTree(4, 2, 2, 4, 1e-6, 2) // 4 nodes/edge, 2 edges/agg
	if g := s.GroupSize(0); g != 4 {
		t.Errorf("GroupSize(0) = %d, want 4", g)
	}
	if g := s.GroupSize(1); g != 8 {
		t.Errorf("GroupSize(1) = %d, want 8", g)
	}
	if n := s.Switches(0, 10); n != 3 {
		t.Errorf("Switches(0, 10) = %d, want 3 (last partially populated)", n)
	}
	if n := s.Switches(1, 10); n != 2 {
		t.Errorf("Switches(1, 10) = %d, want 2", n)
	}
	cases := []struct {
		a, b int64
		lvl  int
	}{
		{0, 3, 0}, // same edge switch
		{0, 4, 1}, // same aggregation switch, different edge
		{0, 8, 2}, // different aggregation: across the core
		{5, 6, 0},
		{7, 8, 2},
	}
	for _, c := range cases {
		if got := s.CommonLevel(c.a, c.b); got != c.lvl {
			t.Errorf("CommonLevel(%d, %d) = %d, want %d", c.a, c.b, got, c.lvl)
		}
	}
}

func TestUplinkIndexDeterministicAndSpread(t *testing.T) {
	s := TwoLevel(8, 4, 0, 4)
	seen := map[int]int{}
	for from := int64(0); from < 32; from++ {
		for to := int64(0); to < 32; to++ {
			i := s.UplinkIndex(0, from, to)
			if i < 0 || i >= 4 {
				t.Fatalf("UplinkIndex out of range: %d", i)
			}
			if j := s.UplinkIndex(0, from, to); j != i {
				t.Fatalf("UplinkIndex not deterministic: %d then %d", i, j)
			}
			seen[i]++
		}
	}
	if len(seen) != 4 {
		t.Errorf("flows used %d of 4 uplinks; want all 4 (got %v)", len(seen), seen)
	}
}

func TestSpecComparable(t *testing.T) {
	a := TwoLevel(32, 4, 5e-6, 2)
	b := TwoLevel(32, 4, 5e-6, 2)
	if a != b {
		t.Error("identical specs compare unequal")
	}
	if a == Flat() {
		t.Error("hierarchical spec compares equal to flat")
	}
	// Usable as a map key (the property the sim cache relies on).
	m := map[Spec]int{a: 1, Flat(): 2}
	if m[b] != 1 {
		t.Error("spec map lookup failed")
	}
}

func TestString(t *testing.T) {
	if got := Flat().String(); got != "flat" {
		t.Errorf("Flat().String() = %q", got)
	}
	if got := TwoLevel(32, 4, 5e-6, 2).String(); got != "radix32×bw4×2" {
		t.Errorf("TwoLevel String() = %q", got)
	}
}
