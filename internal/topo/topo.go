package topo

import "fmt"

// MaxLevels bounds the switch hierarchy depth. Three levels (edge,
// aggregation, core) cover every fat-tree in production use; the bound is
// what lets Spec stay a fixed-size comparable value usable as a cache-key
// field.
const MaxLevels = 3

// Level describes one tier of switches.
type Level struct {
	// Radix is how many children each switch at this level has: compute
	// nodes at level 0, level-(l−1) switches above. Must be ≥ 2.
	Radix int
	// BW is the bandwidth of one uplink leaving this level, as a multiple
	// of a node's own link bandwidth: a message of wire time t on the node
	// link occupies the uplink for t/BW. Must be > 0.
	BW float64
	// Latency is the fixed time added per traversal of a link at this
	// level (switch forwarding plus cable flight time), in seconds.
	Latency float64
	// Uplinks is how many parallel uplinks each switch at this level has
	// toward the level above; flows spread over them deterministically
	// (ECMP by source/destination rank). Must be ≥ 1.
	Uplinks int
}

// Spec is a hierarchical interconnect: Levels tiers of switches between the
// compute nodes and an implicit full-bandwidth core. The zero Spec means
// "flat": every node hangs off one non-blocking switch, the machine model
// the reproduction started with. Spec is a plain comparable value so it can
// ride inside simulation cache keys.
type Spec struct {
	// Levels is how many switch tiers are modeled (0 = flat). Switches at
	// the top modeled level all connect to one implicit non-blocking core.
	Levels int
	// L[0:Levels] describes the tiers bottom-up: L[0] is the edge tier
	// whose switches the nodes plug into.
	L [MaxLevels]Level
}

// Flat returns the zero Spec: one non-blocking switch, no hierarchy.
func Flat() Spec { return Spec{} }

// TwoLevel builds the common cluster shape: nodes grouped radix-per-edge
// switch, edge switches uplinked (uplinks parallel links, each bw× a node
// link, latency seconds per hop) into a non-blocking core.
func TwoLevel(radix int, bw float64, latency float64, uplinks int) Spec {
	return Spec{
		Levels: 1,
		L: [MaxLevels]Level{
			{Radix: radix, BW: bw, Latency: latency, Uplinks: uplinks},
		},
	}
}

// FatTree builds a three-tier (edge, aggregation, core) topology. radix0
// nodes share an edge switch; radix1 edge switches share an aggregation
// switch; aggregation switches connect to the implicit core. Bandwidth
// typically grows toward the core (bw1 ≥ bw0) to keep the tree from
// thinning too fast.
func FatTree(radix0, radix1 int, bw0, bw1 float64, latency float64, uplinks int) Spec {
	return Spec{
		Levels: 2,
		L: [MaxLevels]Level{
			{Radix: radix0, BW: bw0, Latency: latency, Uplinks: uplinks},
			{Radix: radix1, BW: bw1, Latency: latency, Uplinks: uplinks},
		},
	}
}

// Flat reports whether the spec is the flat single-switch machine.
func (s Spec) Flat() bool { return s.Levels == 0 }

// Validate checks the spec's shape.
func (s Spec) Validate() error {
	if s.Levels < 0 || s.Levels > MaxLevels {
		return fmt.Errorf("topo: %d levels out of range [0, %d]", s.Levels, MaxLevels)
	}
	for l := 0; l < s.Levels; l++ {
		lv := s.L[l]
		if lv.Radix < 2 {
			return fmt.Errorf("topo: level %d radix %d < 2", l, lv.Radix)
		}
		if lv.BW <= 0 {
			return fmt.Errorf("topo: level %d bandwidth factor %g <= 0", l, lv.BW)
		}
		if lv.Latency < 0 {
			return fmt.Errorf("topo: level %d latency %g < 0", l, lv.Latency)
		}
		if lv.Uplinks < 1 {
			return fmt.Errorf("topo: level %d uplinks %d < 1", l, lv.Uplinks)
		}
	}
	for l := s.Levels; l < MaxLevels; l++ {
		if s.L[l] != (Level{}) {
			return fmt.Errorf("topo: level %d set beyond Levels=%d", l, s.Levels)
		}
	}
	return nil
}

// GroupSize returns how many nodes share a switch at the given level: the
// product of the radixes of levels 0..level. Level must be in [0, Levels).
func (s Spec) GroupSize(level int) int64 {
	g := int64(1)
	for l := 0; l <= level; l++ {
		g *= int64(s.L[l].Radix)
	}
	return g
}

// Switches returns how many switches the given level needs for a machine of
// `nodes` compute nodes (the last switch may be partially populated).
func (s Spec) Switches(level int, nodes int64) int64 {
	g := s.GroupSize(level)
	return (nodes + g - 1) / g
}

// SwitchOf returns which level-`level` switch node n hangs under.
func (s Spec) SwitchOf(level int, n int64) int64 {
	return n / s.GroupSize(level)
}

// CommonLevel returns the lowest level at which nodes a and b share a
// switch: 0 means same edge switch (no uplink hops), Levels means the
// message must cross the implicit core (climbing every modeled tier).
func (s Spec) CommonLevel(a, b int64) int {
	for l := 0; l < s.Levels; l++ {
		if s.SwitchOf(l, a) == s.SwitchOf(l, b) {
			return l
		}
	}
	return s.Levels
}

// UplinkIndex picks which of the level's parallel uplinks the (from, to)
// flow rides: deterministic ECMP by a multiplicative hash of the rank pair,
// so the same flow always uses the same uplink (replays are bit-identical)
// while distinct flows spread across the link group.
func (s Spec) UplinkIndex(level int, from, to int64) int {
	n := s.L[level].Uplinks
	if n <= 1 {
		return 0
	}
	// Fibonacci hashing on the packed pair: cheap, stateless, and spreads
	// consecutive rank pairs across uplinks far better than a plain mod.
	h := uint64(from)<<32 ^ uint64(to)
	h *= 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(n))
}

// String renders the spec compactly ("flat", "radix32×bw4.0", ...).
func (s Spec) String() string {
	if s.Flat() {
		return "flat"
	}
	out := ""
	for l := 0; l < s.Levels; l++ {
		if l > 0 {
			out += "/"
		}
		out += fmt.Sprintf("radix%d×bw%g×%d", s.L[l].Radix, s.L[l].BW, s.L[l].Uplinks)
	}
	return out
}
