// Package topo describes hierarchical machine interconnects as plain
// comparable values.
//
// A Spec is up to MaxLevels tiers of switches between the compute nodes and
// an implicit non-blocking core: level 0 groups nodes under edge switches,
// higher levels group switches under fatter ones. Each Level carries the
// three numbers the completion-time model needs — radix (who shares a
// switch), uplink bandwidth relative to a node link (how much the tree
// thins), and per-hop latency — plus the number of parallel uplinks a
// switch spreads its flows over.
//
// The zero Spec is the flat single-switch machine the reproduction started
// with, so every existing call site keeps its old meaning. Spec is a fixed
// layout of scalars on purpose: it is comparable, which lets it ride inside
// the simulation cache key (internal/sim) verbatim, and it is pure data,
// which keeps the routing arithmetic (CommonLevel, SwitchOf, UplinkIndex)
// deterministic — the same (from, to) pair always takes the same path over
// the same links, so simulations replay bit-identically.
//
// internal/simnet turns a Spec into discrete-event resources (the Fabric);
// internal/mp uses group sizes as collective-schedule hints; DESIGN.md §12
// documents the contention semantics.
package topo
