package estimate

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// vCurve is the analytic shape every synthetic test uses: a smooth convex
// curve T(v) = a/v + b·v with its continuous minimum at √(a/b).
func vCurve(a, b float64) func(v int64) float64 {
	return func(v int64) float64 { return a/float64(v) + b*float64(v) }
}

// argminOf probes every height and returns the earliest minimum — the
// reference the tiered search must reproduce.
func argminOf(heights []int64, f func(v int64) float64) (int64, float64) {
	best, bestT := int64(-1), 0.0
	for _, v := range heights {
		if t := f(v); best < 0 || t < bestT {
			best, bestT = v, t
		}
	}
	return best, bestT
}

func ladder(lo, hi int64) []int64 {
	var vs []int64
	for v := lo; v <= hi; v *= 2 {
		vs = append(vs, v)
	}
	return vs
}

func probeOf(f func(v int64) float64) func(v int64) (float64, error) {
	return func(v int64) (float64, error) { return f(v), nil }
}

func TestOptimumCertifiedPerfectModel(t *testing.T) {
	curve := vCurve(4096, 1) // continuous minimum at v=64
	heights := ladder(1, 1024)
	cfg := Config{
		Heights: heights,
		SeedV:   64,
		Model:   curve,
		Probe:   probeOf(curve),
	}
	out, err := Optimum(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantT := argminOf(heights, curve)
	if out.V != wantV || out.T != wantT {
		t.Errorf("got V=%d T=%g, want V=%d T=%g", out.V, out.T, wantV, wantT)
	}
	if out.Tier != TierCertified || out.FallbackReason != "" {
		t.Errorf("perfect model not certified: %+v", out)
	}
	// The whole point: far fewer probes than the ladder has rungs.
	if out.Probes >= len(heights)/2 {
		t.Errorf("certified search used %d probes on a %d-rung ladder", out.Probes, len(heights))
	}
}

// TestOptimumCertifiedBiasedModel: a constant-factor model bias within the
// raw tolerance is calibrated away by the residual check, so the fast path
// still certifies.
func TestOptimumCertifiedBiasedModel(t *testing.T) {
	curve := vCurve(4096, 1)
	biased := func(v int64) float64 { return 1.2 * curve(v) }
	heights := ladder(1, 1024)
	out, err := Optimum(context.Background(), Config{Heights: heights, SeedV: 64, Model: biased, Probe: probeOf(curve)})
	if err != nil {
		t.Fatal(err)
	}
	wantV, _ := argminOf(heights, curve)
	if out.V != wantV || out.Tier != TierCertified {
		t.Errorf("biased-but-calibratable model: %+v, want certified V=%d", out, wantV)
	}
}

// TestOptimumFallbackLargeBias: a bias beyond the raw tolerance fails
// certification even though calibration would fix it — the model is no
// longer trusted to describe the simulator — and the exact tier answers.
func TestOptimumFallbackLargeBias(t *testing.T) {
	curve := vCurve(4096, 1)
	biased := func(v int64) float64 { return 2 * curve(v) }
	heights := ladder(1, 1024)
	out, err := Optimum(context.Background(), Config{Heights: heights, SeedV: 64, Model: biased, Probe: probeOf(curve)})
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantT := argminOf(heights, curve)
	if out.V != wantV || out.T != wantT {
		t.Errorf("fallback answer wrong: %+v", out)
	}
	if out.Tier != TierExact || out.FallbackReason != "tol" {
		t.Errorf("expected tol fallback: %+v", out)
	}
}

// TestOptimumFallbackShapeError: a probe curve whose shape deviates from
// the model (deterministic sawtooth on top of the trend) trips the
// calibrated residual check; the exact tier still finds the true argmin of
// the jittery curve.
func TestOptimumFallbackShapeError(t *testing.T) {
	curve := vCurve(4096, 1)
	jittery := func(v int64) float64 {
		return curve(v) * (1 + 0.15*float64(v%3)) // 0%, 15%, 30% bumps
	}
	heights := ladder(1, 1024)
	out, err := Optimum(context.Background(), Config{Heights: heights, SeedV: 64, Model: curve, Probe: probeOf(jittery)})
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantT := argminOf(heights, jittery)
	if out.V != wantV || out.T != wantT {
		t.Errorf("fallback answer wrong: %+v, want V=%d T=%g", out, wantV, wantT)
	}
	if out.Tier != TierExact {
		t.Errorf("shape error certified: %+v", out)
	}
	if out.FallbackReason != "resid" && out.FallbackReason != "tol" {
		t.Errorf("unexpected reason %q", out.FallbackReason)
	}
}

// TestOptimumFallbackTie: a flat curve ties the bracket probes, which
// leaves the walk without a descent direction; the exact tier owes the
// earliest minimum.
func TestOptimumFallbackTie(t *testing.T) {
	flat := func(v int64) float64 { return 1 }
	heights := ladder(1, 256)
	out, err := Optimum(context.Background(), Config{Heights: heights, SeedV: 16, Model: flat, Probe: probeOf(flat)})
	if err != nil {
		t.Fatal(err)
	}
	if out.V != heights[0] || out.Tier != TierExact || out.FallbackReason != "tie" {
		t.Errorf("tied curve: %+v, want exact earliest minimum V=%d", out, heights[0])
	}
}

func TestOptimumDegenerateInputs(t *testing.T) {
	curve := vCurve(256, 1)
	cases := []struct {
		name   string
		cfg    Config
		reason string
	}{
		{"no seed", Config{Heights: ladder(1, 64), Model: curve, Probe: probeOf(curve)}, "seed"},
		{"nan seed", Config{Heights: ladder(1, 64), SeedV: math.NaN(), Model: curve, Probe: probeOf(curve)}, "seed"},
		{"inf seed", Config{Heights: ladder(1, 64), SeedV: math.Inf(1), Model: curve, Probe: probeOf(curve)}, "seed"},
		{"one rung", Config{Heights: []int64{16}, SeedV: 16, Model: curve, Probe: probeOf(curve)}, "ladder"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := Optimum(context.Background(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if out.Tier != TierExact || out.FallbackReason != tc.reason {
				t.Errorf("got %+v, want exact fallback with reason %q", out, tc.reason)
			}
			wantV, wantT := argminOf(dedupeSorted(tc.cfg.Heights), curve)
			if out.V != wantV || out.T != wantT {
				t.Errorf("fallback answer V=%d T=%g, want V=%d T=%g", out.V, out.T, wantV, wantT)
			}
		})
	}
}

func TestOptimumErrors(t *testing.T) {
	curve := vCurve(256, 1)
	if _, err := Optimum(context.Background(), Config{Heights: ladder(1, 64), SeedV: 8, Probe: probeOf(curve)}); err == nil {
		t.Error("missing Model accepted")
	}
	if _, err := Optimum(context.Background(), Config{Heights: ladder(1, 64), SeedV: 8, Model: curve}); err == nil {
		t.Error("missing Probe accepted")
	}
	if _, err := Optimum(context.Background(), Config{Model: curve, Probe: probeOf(curve), SeedV: 8}); err == nil {
		t.Error("empty ladder accepted")
	}
	boom := errors.New("probe failed")
	_, err := Optimum(context.Background(), Config{
		Heights: ladder(1, 64), SeedV: 8, Model: curve,
		Probe: func(v int64) (float64, error) { return 0, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("probe error not propagated: %v", err)
	}
}

// TestOptimumUsesCallerExact: a supplied Exact replaces the sequential
// fallback scan.
func TestOptimumUsesCallerExact(t *testing.T) {
	flat := func(v int64) float64 { return 1 }
	out, err := Optimum(context.Background(), Config{
		Heights: ladder(1, 64), SeedV: 8, Model: flat, Probe: probeOf(flat),
		Exact: func() (int64, float64, error) { return 42, 4.2, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.V != 42 || out.T != 4.2 || out.Tier != TierExact {
		t.Errorf("caller Exact ignored: %+v", out)
	}
	boom := errors.New("exact failed")
	_, err = Optimum(context.Background(), Config{
		Heights: ladder(1, 64), SeedV: 8, Model: flat, Probe: probeOf(flat),
		Exact: func() (int64, float64, error) { return 0, 0, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("exact error not propagated: %v", err)
	}
}

// TestOptimumSeedOutsideLadder: seeds below the first and above the last
// rung bracket the corresponding edge and still land on the true argmin.
func TestOptimumSeedOutsideLadder(t *testing.T) {
	heights := ladder(8, 512)
	for _, tc := range []struct {
		name string
		a, b float64 // curve params
		seed float64
	}{
		{"seed below", 16, 1, 0.5},       // minimum at v=4, below the ladder
		{"seed above", 1 << 22, 1, 4096}, // minimum at v=2048, above the ladder
	} {
		t.Run(tc.name, func(t *testing.T) {
			curve := vCurve(tc.a, tc.b)
			out, err := Optimum(context.Background(), Config{Heights: heights, SeedV: tc.seed, Model: curve, Probe: probeOf(curve)})
			if err != nil {
				t.Fatal(err)
			}
			wantV, _ := argminOf(heights, curve)
			if out.V != wantV {
				t.Errorf("got V=%d, want edge argmin %d (outcome %+v)", out.V, wantV, out)
			}
		})
	}
}

// TestOptimumUnsortedDuplicatedHeights: the ladder is normalized before
// use, so order and duplicates don't change the answer.
func TestOptimumUnsortedDuplicatedHeights(t *testing.T) {
	curve := vCurve(4096, 1)
	messy := []int64{256, 16, 64, 16, 1, 1024, 4, 256, 4}
	out, err := Optimum(context.Background(), Config{Heights: messy, SeedV: 64, Model: curve, Probe: probeOf(curve)})
	if err != nil {
		t.Fatal(err)
	}
	wantV, _ := argminOf(dedupeSorted(messy), curve)
	if out.V != wantV {
		t.Errorf("got V=%d, want %d", out.V, wantV)
	}
}

// TestOptimumElisionSkipsFarRungs: on a steep certifiable curve the walk
// must elide the neighbors it can price analytically instead of probing
// them — the probe count stays near the bracket size even as the ladder
// grows.
func TestOptimumElisionSkipsFarRungs(t *testing.T) {
	curve := vCurve(1<<20, 1) // minimum at v=1024
	heights := ladder(1, 1<<14)
	out, err := Optimum(context.Background(), Config{Heights: heights, SeedV: 1024, Model: curve, Probe: probeOf(curve)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Tier != TierCertified {
		t.Fatalf("not certified: %+v", out)
	}
	if out.Probes > 4 {
		t.Errorf("elision failed: %d probes for a sharp certified minimum", out.Probes)
	}
}

func TestTierString(t *testing.T) {
	if TierCertified.String() != "certified" || TierExact.String() != "exact" {
		t.Error("tier names wrong")
	}
	if !strings.Contains(Tier(7).String(), "7") {
		t.Error("unknown tier not numbered")
	}
}

func TestDedupeSorted(t *testing.T) {
	got := dedupeSorted([]int64{5, 3, 5, 1, 3, 9})
	want := []int64{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := dedupeSorted(nil); len(out) != 0 {
		t.Errorf("dedupe(nil) = %v", out)
	}
}

// TestOptimumCancelledMidProbe: cancelling the context between probes
// aborts the tiered search with the bare context error. The probe itself
// pulls the trigger after its first evaluation, so the cancellation lands
// deterministically mid-search.
func TestOptimumCancelledMidProbe(t *testing.T) {
	curve := vCurve(4096, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	probes := 0
	probe := func(v int64) (float64, error) {
		probes++
		cancel() // the next probe attempt must refuse to run
		return curve(v), nil
	}
	_, err := Optimum(ctx, Config{Heights: ladder(1, 1024), SeedV: 64, Model: curve, Probe: probe})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if probes != 1 {
		t.Errorf("probes after cancellation = %d, want exactly 1", probes)
	}
}

// TestOptimumDeadContextNoProbes: an already-expired deadline never reaches
// the probe function at all.
func TestOptimumDeadContextNoProbes(t *testing.T) {
	curve := vCurve(4096, 1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	probes := 0
	probe := func(v int64) (float64, error) { probes++; return curve(v), nil }
	_, err := Optimum(ctx, Config{Heights: ladder(1, 1024), SeedV: 64, Model: curve, Probe: probe})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if probes != 0 {
		t.Errorf("dead context still probed %d times", probes)
	}
}
