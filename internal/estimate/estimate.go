package estimate

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Default certification constants, tuned on the paper's Fig. 9-11 spaces
// and a randomized machine population: the calibrated residual is the
// sharp gate (model-vs-DES shape error stays below ~3% where the affine
// machine model holds), the raw tolerance is the blunt one that rejects
// regimes the model does not describe at all.
const (
	DefaultTol      = 0.30 // max |model − probe| / probe over probed rungs
	DefaultResidTol = 0.06 // same, after geometric-mean ratio calibration
	DefaultMargin   = 2.0  // elision safety margin, in units of ResidTol
)

// Tier identifies which tier produced an Outcome.
type Tier int

const (
	// TierCertified means the analytic-seeded probe search certified its
	// candidate: the answer cost only the recorded probes.
	TierCertified Tier = iota
	// TierExact means the exact sweep produced the answer, either because
	// certification failed or because the caller forced it.
	TierExact
)

func (t Tier) String() string {
	switch t {
	case TierCertified:
		return "certified"
	case TierExact:
		return "exact"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Config describes one tiered optimum query. Model and Probe price a tile
// height analytically and by simulation respectively; both must be
// deterministic for a given height. The search never looks outside
// Heights.
type Config struct {
	// Heights is the candidate ladder. It is copied, sorted, and deduped;
	// the search returns one of these values.
	Heights []int64
	// SeedV is the closed-form optimum seeding the bracket. A non-positive
	// or non-finite seed sends the query straight to the exact tier.
	SeedV float64
	// Model prices a height with the analytic cost model (seconds).
	Model func(v int64) float64
	// Probe prices a height on the simulator (seconds). Errors abort the
	// query — the exact tier would hit the same failure.
	Probe func(v int64) (float64, error)
	// Exact computes the reference answer for the fallback tier. When nil,
	// the fallback probes every height sequentially and returns the
	// earliest height of minimal time — the same tie-break as the
	// experiments package's exact search.
	Exact func() (v int64, t float64, err error)

	// Tol, ResidTol and Margin override the certification constants; zero
	// or negative values select the defaults.
	Tol      float64
	ResidTol float64
	Margin   float64
}

// Outcome reports a tiered query's answer and how it was obtained.
type Outcome struct {
	V    int64   // optimal tile height
	T    float64 // its simulated completion time
	Tier Tier
	// Probes counts the DES probes the tiered stage issued, plus the
	// fallback's own probes when Config.Exact was nil. A caller-supplied
	// Exact does its own accounting (e.g. via sim.CacheStats).
	Probes int
	// FallbackReason says why the exact tier ran: "seed" (unusable
	// analytic seed), "ladder" (fewer than two candidate heights), "tie"
	// (bracket probes tied), "tol" / "resid" (certification tolerance
	// exceeded). Empty for certified answers.
	FallbackReason string
}

// probeRec is one probed (height, time) pair. Probes are kept in issue
// order in a slice — not ranged from a map — so every derived quantity
// (calibration ratio, certification maxima) is computed in a fixed order.
type probeRec struct {
	v int64
	t float64
}

// Optimum answers one tiered optimum query. Cancellation of ctx is checked
// before every probe (the unit of DES work), so a cancelled or expired
// context aborts the search mid-ladder with ctx.Err() rather than running
// the remaining probes; completed probes stay wherever Config.Probe cached
// them, so a later uncancelled query reuses them bit-identically.
func Optimum(ctx context.Context, cfg Config) (Outcome, error) {
	if cfg.Model == nil || cfg.Probe == nil {
		return Outcome{}, fmt.Errorf("estimate: Config.Model and Config.Probe are required")
	}
	tol, residTol, margin := cfg.Tol, cfg.ResidTol, cfg.Margin
	if tol <= 0 {
		tol = DefaultTol
	}
	if residTol <= 0 {
		residTol = DefaultResidTol
	}
	if margin <= 0 {
		margin = DefaultMargin
	}
	heights := dedupeSorted(cfg.Heights)

	var (
		recs   []probeRec
		seen   = make(map[int64]float64, 8)
		nProbe int
	)
	probe := func(v int64) (float64, error) {
		if t, ok := seen[v]; ok {
			return t, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		t, err := cfg.Probe(v)
		if err != nil {
			return 0, err
		}
		seen[v] = t
		recs = append(recs, probeRec{v, t})
		nProbe++
		return t, nil
	}
	fallback := func(reason string) (Outcome, error) {
		if cfg.Exact != nil {
			v, t, err := cfg.Exact()
			if err != nil {
				return Outcome{}, err
			}
			return Outcome{V: v, T: t, Tier: TierExact, Probes: nProbe, FallbackReason: reason}, nil
		}
		best, bestT := int64(-1), 0.0
		for _, v := range heights {
			t, err := probe(v)
			if err != nil {
				return Outcome{}, err
			}
			if best < 0 || t < bestT {
				best, bestT = v, t
			}
		}
		return Outcome{V: best, T: bestT, Tier: TierExact, Probes: nProbe, FallbackReason: reason}, nil
	}

	if len(heights) < 2 {
		if len(heights) == 0 {
			return Outcome{}, fmt.Errorf("estimate: no candidate heights")
		}
		return fallback("ladder")
	}
	if !(cfg.SeedV > 0) || math.IsInf(cfg.SeedV, 1) {
		return fallback("seed")
	}

	// Tier 1: bracket the two ladder rungs straddling the analytic seed
	// (the edge rungs when the seed falls outside the ladder).
	i := sort.Search(len(heights), func(i int) bool { return float64(heights[i]) >= cfg.SeedV })
	lo, hi := i-1, i
	switch {
	case i == 0:
		lo, hi = 0, 1
	case i == len(heights):
		lo, hi = len(heights)-2, len(heights)-1
	}

	// Tier 2: probe the bracket and walk downhill along the ladder.
	tLo, err := probe(heights[lo])
	if err != nil {
		return Outcome{}, err
	}
	tHi, err := probe(heights[hi])
	if err != nil {
		return Outcome{}, err
	}
	best := lo
	if tHi == tLo {
		// A tied bracket gives the walk no descent direction; the exact
		// tier owes the caller the earliest-minimum answer.
		return fallback("tie")
	}
	if tHi < tLo {
		best = hi
	}

	// stay reports whether the walk should NOT move to neighbor index j:
	// either j is off the ladder, or j is certifiably no better than the
	// incumbent. A probed neighbor is compared directly — ties keep the
	// walk moving down but not up, matching the exact tier's
	// earliest-minimum tie-break. An unprobed neighbor whose calibrated
	// prediction exceeds the incumbent by the safety margin is elided
	// (certified worse without simulating); otherwise it is probed. The
	// calibration ratio rho rescales the model through the incumbent's
	// probe, so elision only trusts the model's local shape, not its
	// absolute scale. All float comparisons are written so that a NaN
	// prediction fails them and forces a real probe.
	stay := func(j int, movingUp bool) (bool, error) {
		if j < 0 || j >= len(heights) {
			return true, nil
		}
		v := heights[j]
		tBest := seen[heights[best]]
		if t, ok := seen[v]; ok {
			if movingUp {
				return !(t < tBest), nil
			}
			return t > tBest, nil
		}
		rho := tBest / cfg.Model(heights[best])
		if pred := rho * cfg.Model(v); pred > tBest*(1+margin*residTol) {
			return true, nil
		}
		t, err := probe(v)
		if err != nil {
			return false, err
		}
		if movingUp {
			return !(t < tBest), nil
		}
		return t > tBest, nil
	}
	for steps := 0; steps < len(heights); steps++ {
		stayDown, err := stay(best-1, false)
		if err != nil {
			return Outcome{}, err
		}
		if !stayDown {
			best--
			continue
		}
		stayUp, err := stay(best+1, true)
		if err != nil {
			return Outcome{}, err
		}
		if !stayUp {
			best++
			continue
		}
		break
	}

	// Tier 3: certify. Recompute the calibration ratio as the geometric
	// mean over every probe, then require both the raw and the calibrated
	// model-vs-DES disagreement to stay within tolerance at every probed
	// rung. The checks are written as !(err <= tol) so a NaN from a
	// degenerate model fails certification instead of passing it.
	logSum := 0.0
	for _, r := range recs {
		logSum += math.Log(r.t / cfg.Model(r.v))
	}
	rho := math.Exp(logSum / float64(len(recs)))
	for _, r := range recs {
		pred := cfg.Model(r.v)
		if e := math.Abs(pred-r.t) / r.t; !(e <= tol) {
			return fallback("tol")
		}
		if e := math.Abs(rho*pred-r.t) / r.t; !(e <= residTol) {
			return fallback("resid")
		}
	}
	return Outcome{V: heights[best], T: seen[heights[best]], Tier: TierCertified, Probes: nProbe}, nil
}

// dedupeSorted returns a sorted copy of vs with duplicates removed.
func dedupeSorted(vs []int64) []int64 {
	out := append([]int64(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
