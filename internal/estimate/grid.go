package estimate

import (
	"context"

	"repro/internal/model"
	"repro/internal/sim"
)

// ForGrid wires a Config to the Grid3D stack: the mode's closed form
// (OptimalVOverlapAnalytic / OptimalVBlockingAnalytic) seeds the bracket,
// the matching eq. 3/4 prediction prices unprobed heights, and probes run
// through the memoized simulator under ctx, so repeated queries and later
// sweeps share DES work and a cancelled caller stops issuing probes. If
// the closed form has no solution for the configuration, the seed is left
// unusable and Optimum routes the query to the exact tier. The caller may
// still set Config.Exact and the certification overrides on the returned
// value.
func ForGrid(ctx context.Context, g model.Grid3D, m model.Machine, mode sim.Mode, cap sim.Capability, c *sim.Cache, heights []int64) Config {
	cfg := Config{Heights: heights}
	if mode == sim.Blocking {
		cfg.Model = func(v int64) float64 { return g.PredictNonOverlap(v, m) }
		if v, _, err := g.OptimalVBlockingAnalytic(m); err == nil {
			cfg.SeedV = v
		}
	} else {
		cfg.Model = func(v int64) float64 { return g.PredictOverlap(v, m) }
		if v, _, err := g.OptimalVOverlapAnalytic(m); err == nil {
			cfg.SeedV = v
		}
	}
	cfg.Probe = func(v int64) (float64, error) {
		r, err := c.SimulateGridCtx(ctx, g, v, m, mode, cap, sim.GridOpts{})
		if err != nil {
			return 0, err
		}
		return r.Makespan, nil
	}
	return cfg
}
