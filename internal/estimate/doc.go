// Package estimate implements the tiered optimum-tile-height search: an
// analytical fast path over the eq. 3/4 cost models with a certified
// fallback to the exact discrete-event sweep.
//
// The exact optimum search simulates every rung of the height ladder — a
// dozen-plus DES runs per query. This package answers the same query with
// a handful of targeted probes:
//
//	tier 1 (analytic): the closed-form V* = √(K·a/(C·b)) seeds a bracket
//	  of two adjacent ladder rungs around the predicted optimum.
//	tier 2 (probe): the bracket rungs are simulated; from the better one a
//	  neighbor walk descends the ladder. Unprobed neighbors whose
//	  calibrated model prediction exceeds the incumbent by a safety margin
//	  are elided without simulating; the rest are probed.
//	tier 3 (certify): the analytic predictions at every probed rung are
//	  compared against their DES results — both raw and after a one-ratio
//	  geometric-mean calibration. If either disagreement exceeds its
//	  tolerance, or the search hit a degenerate case (tied bracket, no
//	  usable seed), the result is discarded and
//	tier 4 (exact): the full exact sweep runs instead, so answers are
//	  never worse than today's exhaustive search.
//
// Certification assumes the DES makespan curve is unimodal over the
// ladder, which is what the paper's T(g) = P(g)·(A1+A2+A3) analysis
// predicts; the tolerance checks exist to catch the configurations where
// the model (and therefore the unimodality argument) stops describing the
// simulator, and route them to the exact tier.
package estimate
