package core

import (
	"fmt"
	"strings"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/tiling"
)

// Problem is a perfectly nested loop with constant bounds and uniform
// dependences (the paper's algorithm model, Section 2.1).
type Problem struct {
	Space *space.Space
	Deps  *deps.Set
}

// NewProblem validates and builds a Problem.
func NewProblem(s *space.Space, d *deps.Set) (*Problem, error) {
	if s == nil || d == nil {
		return nil, fmt.Errorf("core: nil space or dependence set")
	}
	if s.Dim() != d.Dim() {
		return nil, fmt.Errorf("core: space dimension %d != dependence dimension %d", s.Dim(), d.Dim())
	}
	return &Problem{Space: s, Deps: d}, nil
}

// PlanOptions controls tiling and scheduling choices. The zero value asks
// for everything the paper derives automatically: tile volume from the
// Hodzic–Shang rule g = c·t_s/t_c, communication-minimal rectangular shape,
// mapping along the largest tiled dimension.
type PlanOptions struct {
	// TileSides fixes the rectangular tile side lengths explicitly.
	TileSides ilmath.Vec
	// TileVolume fixes the tile volume budget g (ignored when TileSides is
	// set). When both are zero the Hodzic–Shang optimum is used.
	TileVolume int64
	// Neighbors is the c parameter of the Hodzic–Shang rule (default n−1,
	// the number of communicating directions after mapping).
	Neighbors int
	// MapDim forces the processor-mapping dimension (default: the largest
	// dimension of the tiled space, per the UET-UCT result).
	MapDim *int
}

// Plan is a fully determined tiled execution: the transformation, the tiled
// space, both time schedules, the processor mapping and the machine model.
type Plan struct {
	Problem *Problem
	Machine model.Machine

	Tiling     *tiling.Tiling
	TileSpace  *space.Space
	TileDeps   *deps.Set
	DepVolumes []tiling.TileDepVolume
	Mapping    *schedule.Mapping

	NonOverlap *schedule.Linear // Π = (1,…,1)
	Overlap    *schedule.Linear // Π = (2,…,2) with 1 at the mapping dim
}

// Plan derives a full execution plan for the problem on machine m.
func (p *Problem) Plan(m model.Machine, opts PlanOptions) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := p.Space.Dim()

	sides := opts.TileSides
	if sides == nil {
		g := opts.TileVolume
		if g <= 0 {
			c := opts.Neighbors
			if c <= 0 {
				c = n - 1
				if c == 0 {
					c = 1
				}
			}
			g = int64(m.HodzicShangOptimalG(c))
			if g < 1 {
				g = 1
			}
		}
		var err error
		sides, err = tiling.OptimalRectSides(p.Deps, g)
		if err != nil {
			return nil, fmt.Errorf("core: choosing tile shape: %w", err)
		}
	}
	// Tiles must contain every dependence (|HD| < 1): grow sides to at
	// least maxComponent+1 where needed.
	mc := p.Deps.MaxComponent()
	for i := range sides {
		if sides[i] <= mc[i] {
			sides[i] = mc[i] + 1
		}
	}
	tl, err := tiling.Rectangular(sides...)
	if err != nil {
		return nil, err
	}
	if !tl.Legal(p.Deps) {
		return nil, fmt.Errorf("core: tiling %v illegal for %v", sides, p.Deps)
	}
	ts, err := tl.TileSpace(p.Space)
	if err != nil {
		return nil, err
	}
	td, err := tl.TileDeps(p.Deps)
	if err != nil {
		return nil, err
	}
	dv, err := tl.TileDepVolumes(p.Deps)
	if err != nil {
		return nil, err
	}
	mapDim := ts.LargestDim()
	if opts.MapDim != nil {
		mapDim = *opts.MapDim
	}
	mapping, err := schedule.NewMapping(ts, mapDim)
	if err != nil {
		return nil, err
	}
	ov, err := schedule.Overlapping(n, mapDim)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Problem:    p,
		Machine:    m,
		Tiling:     tl,
		TileSpace:  ts,
		TileDeps:   td,
		DepVolumes: dv,
		Mapping:    mapping,
		NonOverlap: schedule.NonOverlapping(n),
		Overlap:    ov,
	}, nil
}

// stepShape derives the per-step message sizes of an interior processor the
// way the paper's analytic model does (formula (2)): one message per
// non-mapping dimension whose boundary surface is crossed, carrying the
// row's full communication volume g·Σ_j(H·D)_{i,j}. Dependences crossing
// several surfaces (diagonals) are folded into each crossed row, exactly as
// the formula counts them — the simulator, in contrast, ships the exact
// per-direction decomposition (see Plan.topology), which is where theory
// and "experiment" may legitimately diverge by the corner messages.
func (pl *Plan) stepShape() model.StepShape {
	rows, err := pl.Tiling.RowCommVolume(pl.Problem.Deps)
	if err != nil {
		// Legality was established at planning time; a failure here would
		// be a programming error.
		panic(err)
	}
	var sends []int64
	for i, r := range rows {
		if i == pl.Mapping.MapDim || r.Sign() == 0 {
			continue
		}
		sends = append(sends, r.Floor()*pl.Machine.BytesPerElem)
	}
	recvs := append([]int64(nil), sends...)
	return model.StepShape{
		ComputePoints: pl.Tiling.VolumeInt(),
		SendBytes:     sends,
		RecvBytes:     recvs,
	}
}

// Prediction holds the analytic completion times of both schedules.
type Prediction struct {
	PNonOverlap int64 // schedule length, Π = (1,…,1)
	POverlap    int64 // schedule length, overlapped Π
	NonOverlap  float64
	Overlap     float64
	// Improvement = 1 − Overlap/NonOverlap.
	Improvement  float64
	ComputeBound bool // which side of eq. 4's max dominates
}

// Predict evaluates eq. 3 and eq. 4 for the plan.
func (pl *Plan) Predict() (Prediction, error) {
	unit := deps.Unit(pl.TileSpace.Dim())
	pNo, err := pl.NonOverlap.Length(pl.TileSpace, unit)
	if err != nil {
		return Prediction{}, err
	}
	pOv, err := pl.Overlap.Length(pl.TileSpace, unit)
	if err != nil {
		return Prediction{}, err
	}
	shape := pl.stepShape()
	tNo := pl.Machine.TotalNonOverlapped(pNo, shape)
	tOv := pl.Machine.TotalOverlapped(pOv, shape)
	return Prediction{
		PNonOverlap:  pNo,
		POverlap:     pOv,
		NonOverlap:   tNo,
		Overlap:      tOv,
		Improvement:  1 - tOv/tNo,
		ComputeBound: pl.Machine.ComputeBound(shape),
	}, nil
}

// SimResult pairs the simulated makespans of both schedules.
type SimResult struct {
	NonOverlap sim.Result
	Overlap    sim.Result
	// Improvement = 1 − Overlap/NonOverlap makespans.
	Improvement float64
}

// SimulateOne runs a single (mode, capability) configuration on the
// discrete-event simulator. Set traced to capture a full activity timeline
// (costly on large plans).
func (pl *Plan) SimulateOne(mode sim.Mode, cap sim.Capability, traced bool) (sim.Result, error) {
	topo, err := pl.topology()
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Simulate(sim.Config{
		Topo:    topo,
		Deps:    pl.TileDeps,
		Machine: pl.Machine,
		Mode:    mode,
		Cap:     cap,
		Trace:   traced,
	})
}

// Simulate runs both schedules on the discrete-event cluster simulator with
// the given hardware capability for the overlapped runtime (the blocking
// baseline always runs copies on the CPU, as blocking primitives do).
func (pl *Plan) Simulate(cap sim.Capability) (SimResult, error) {
	rNo, err := pl.SimulateOne(sim.Blocking, sim.CapNone, false)
	if err != nil {
		return SimResult{}, err
	}
	rOv, err := pl.SimulateOne(sim.Overlapped, cap, false)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		NonOverlap:  rNo,
		Overlap:     rOv,
		Improvement: 1 - rOv.Makespan/rNo.Makespan,
	}, nil
}

// topology adapts the plan for the simulator, with exact per-tile volumes
// (boundary tiles are clipped) and exact per-direction message sizes.
func (pl *Plan) topology() (sim.Topology, error) {
	volByDir := make(map[string]int64, len(pl.DepVolumes))
	for _, v := range pl.DepVolumes {
		volByDir[v.Dir.String()] = v.Points
	}
	b := pl.Machine.BytesPerElem
	sp := pl.Problem.Space
	tl := pl.Tiling
	return sim.Topology{
		TileSpace: pl.TileSpace,
		Map:       pl.Mapping,
		TileVolume: func(tc ilmath.Vec) int64 {
			sub, err := tl.TileIterations(sp, tc)
			if err != nil || sub == nil {
				return 0
			}
			return sub.Volume()
		},
		MsgBytes: func(from, to ilmath.Vec) int64 {
			return volByDir[to.Sub(from).String()] * b
		},
	}, nil
}

// Describe renders a human-readable plan summary.
func (pl *Plan) Describe() string {
	var b strings.Builder
	sides, _ := pl.Tiling.RectSides()
	fmt.Fprintf(&b, "iteration space : %v (%d points)\n", pl.Problem.Space, pl.Problem.Space.Volume())
	fmt.Fprintf(&b, "dependences     : %v\n", pl.Problem.Deps)
	fmt.Fprintf(&b, "tile sides      : %v (g = %d)\n", sides, pl.Tiling.VolumeInt())
	fmt.Fprintf(&b, "tiled space     : %v (%d tiles)\n", pl.TileSpace, pl.TileSpace.Volume())
	fmt.Fprintf(&b, "tiled deps      : %v\n", pl.TileDeps)
	fmt.Fprintf(&b, "mapping         : dim %d -> %d processors × %d tiles each\n",
		pl.Mapping.MapDim, pl.Mapping.NumProcs(), pl.Mapping.TilesPerProc())
	fmt.Fprintf(&b, "schedules       : non-overlap %v, overlap %v\n", pl.NonOverlap, pl.Overlap)
	if pred, err := pl.Predict(); err == nil {
		fmt.Fprintf(&b, "predicted       : non-overlap %.6g s (P=%d), overlap %.6g s (P=%d), improvement %.1f%%\n",
			pred.NonOverlap, pred.PNonOverlap, pred.Overlap, pred.POverlap, pred.Improvement*100)
	}
	return b.String()
}
