package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/model"
	"repro/internal/space"
)

// Example reproduces the paper's Example 1/3 numbers through the planning
// API: tile the 10000×1000 loop with the derived 10×10 squares and compare
// the two schedules analytically.
func Example() {
	problem, err := core.NewProblem(space.MustRect(10000, 1000), deps.Example1Deps())
	if err != nil {
		log.Fatal(err)
	}
	plan, err := problem.Plan(model.Example1Machine(), core.PlanOptions{Neighbors: 1})
	if err != nil {
		log.Fatal(err)
	}
	sides, _ := plan.Tiling.RectSides()
	pred, err := plan.Predict()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tile sides %v, g = %d\n", sides, plan.Tiling.VolumeInt())
	fmt.Printf("non-overlapping: P = %d, T = %.6f s\n", pred.PNonOverlap, pred.NonOverlap)
	fmt.Printf("overlapping:     P = %d, T = %.6f s\n", pred.POverlap, pred.Overlap)
	// Output:
	// tile sides (10, 10), g = 100
	// non-overlapping: P = 1099, T = 0.400036 s
	// overlapping:     P = 1198, T = 0.273144 s
}
