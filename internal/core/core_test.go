package core

import (
	"strings"
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/space"
)

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil, deps.Unit(2)); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := NewProblem(space.MustRect(4, 4), nil); err == nil {
		t.Error("nil deps accepted")
	}
	if _, err := NewProblem(space.MustRect(4, 4), deps.Unit(3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewProblem(space.MustRect(4, 4), deps.Unit(2)); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func example1Problem(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem(space.MustRect(10000, 1000), deps.Example1Deps())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanExample1Defaults(t *testing.T) {
	// With the Example-1 machine the Hodzic–Shang rule gives g = 100 and
	// the optimal rectangular shape is square: 10×10 tiles, map along the
	// larger tiled dimension (dim 0).
	p := example1Problem(t)
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{Neighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	sides, err := plan.Tiling.RectSides()
	if err != nil {
		t.Fatal(err)
	}
	if !sides.Equal(ilmath.V(10, 10)) {
		t.Errorf("sides = %v, want (10, 10)", sides)
	}
	if plan.Mapping.MapDim != 0 {
		t.Errorf("mapDim = %d, want 0", plan.Mapping.MapDim)
	}
	if plan.TileSpace.Volume() != 1000*100 {
		t.Errorf("tile space volume = %d", plan.TileSpace.Volume())
	}
	if !plan.Overlap.Pi.Equal(ilmath.V(1, 2)) {
		t.Errorf("overlap Π = %v, want (1,2)", plan.Overlap.Pi)
	}
}

func TestPlanExplicitSides(t *testing.T) {
	p := example1Problem(t)
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{TileSides: ilmath.V(20, 5)})
	if err != nil {
		t.Fatal(err)
	}
	sides, _ := plan.Tiling.RectSides()
	if !sides.Equal(ilmath.V(20, 5)) {
		t.Errorf("sides = %v", sides)
	}
}

func TestPlanGrowsTinyTiles(t *testing.T) {
	// Sides smaller than the dependences must be grown to contain them.
	p := example1Problem(t)
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{TileSides: ilmath.V(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	sides, _ := plan.Tiling.RectSides()
	if sides[0] < 2 || sides[1] < 2 {
		t.Errorf("sides %v do not contain dependences", sides)
	}
}

func TestPlanVolumeBudget(t *testing.T) {
	p := example1Problem(t)
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{TileVolume: 400})
	if err != nil {
		t.Fatal(err)
	}
	if g := plan.Tiling.VolumeInt(); g > 400 {
		t.Errorf("tile volume %d exceeds budget 400", g)
	}
	sides, _ := plan.Tiling.RectSides()
	if sides[0] != sides[1] {
		t.Errorf("symmetric deps should give square tiles, got %v", sides)
	}
}

func TestPlanForcedMapDim(t *testing.T) {
	p := example1Problem(t)
	one := 1
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{MapDim: &one})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mapping.MapDim != 1 {
		t.Errorf("mapDim = %d, want forced 1", plan.Mapping.MapDim)
	}
	if !plan.Overlap.Pi.Equal(ilmath.V(2, 1)) {
		t.Errorf("overlap Π = %v, want (2,1)", plan.Overlap.Pi)
	}
}

func TestPredictExample1(t *testing.T) {
	p := example1Problem(t)
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{Neighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pred.PNonOverlap != 1099 {
		t.Errorf("P(non-overlap) = %d, want 1099 (paper)", pred.PNonOverlap)
	}
	if pred.POverlap != 1198 {
		t.Errorf("P(overlap) = %d, want 1198 (paper)", pred.POverlap)
	}
	if pred.Overlap >= pred.NonOverlap {
		t.Errorf("overlap %g not better than non-overlap %g", pred.Overlap, pred.NonOverlap)
	}
	if pred.Improvement < 0.2 || pred.Improvement > 0.6 {
		t.Errorf("improvement %.0f%% outside plausible band", pred.Improvement*100)
	}
	// Plan-level message sizes follow formula (2): one 80-byte message each
	// way per step, so the eq.-3 total is the paper's 0.400036 s exactly.
	if !almostEq(pred.NonOverlap, 0.400036, 1e-9) {
		t.Errorf("non-overlap total %g s, want 0.400036 s (paper Example 1)", pred.NonOverlap)
	}
}

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}

func TestSimulateSmallPlanAgreesWithPrediction(t *testing.T) {
	// Unit dependences: theory and simulator use identical message
	// decompositions, so makespans should land within ~25% of each other
	// (the residual gap is pipeline fill/drain, which eq. 3/4 ignore).
	p, err := NewProblem(space.MustRect(400, 80), deps.Unit(2))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{TileSides: ilmath.V(10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	simr, err := plan.Simulate(sim.CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if simr.Overlap.Makespan >= simr.NonOverlap.Makespan {
		t.Errorf("simulated overlap %g not faster than blocking %g",
			simr.Overlap.Makespan, simr.NonOverlap.Makespan)
	}
	rel := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	if rel(simr.NonOverlap.Makespan, pred.NonOverlap) > 0.25 {
		t.Errorf("blocking: simulated %g vs predicted %g diverge",
			simr.NonOverlap.Makespan, pred.NonOverlap)
	}
	if rel(simr.Overlap.Makespan, pred.Overlap) > 0.25 {
		t.Errorf("overlap: simulated %g vs predicted %g diverge",
			simr.Overlap.Makespan, pred.Overlap)
	}
}

func TestSimulateDiagonalDepsLooseAgreement(t *testing.T) {
	// With diagonal dependences the simulator pays a real startup for the
	// corner message that formula (2) folds into the face rows, so it runs
	// slower than the prediction — but within 2× and with overlap still
	// winning.
	p, err := NewProblem(space.MustRect(400, 80), deps.Example1Deps())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{TileSides: ilmath.V(10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	simr, err := plan.Simulate(sim.CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if simr.Overlap.Makespan >= simr.NonOverlap.Makespan {
		t.Error("overlap not faster under diagonal deps")
	}
	if simr.NonOverlap.Makespan < pred.NonOverlap {
		t.Errorf("simulated blocking %g faster than model %g: corner messages should cost extra",
			simr.NonOverlap.Makespan, pred.NonOverlap)
	}
	if simr.NonOverlap.Makespan > 2*pred.NonOverlap {
		t.Errorf("simulated blocking %g more than 2x the model %g",
			simr.NonOverlap.Makespan, pred.NonOverlap)
	}
}

func TestDescribe(t *testing.T) {
	p := example1Problem(t)
	plan, err := p.Plan(model.Example1Machine(), PlanOptions{Neighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Describe()
	for _, want := range []string{"tile sides", "(10, 10)", "tiled space", "mapping", "improvement"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestPlanInvalidMachine(t *testing.T) {
	p := example1Problem(t)
	bad := model.Example1Machine()
	bad.Tc = 0
	if _, err := p.Plan(bad, PlanOptions{}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestPlan3DStencil(t *testing.T) {
	p, err := NewProblem(space.MustRect(16, 16, 512), deps.Stencil3D())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(model.PentiumCluster(), PlanOptions{TileSides: ilmath.V(4, 4, 32)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mapping.MapDim != 2 {
		t.Errorf("mapDim = %d, want 2 (largest)", plan.Mapping.MapDim)
	}
	if plan.Mapping.NumProcs() != 16 {
		t.Errorf("procs = %d, want 16", plan.Mapping.NumProcs())
	}
	pred, err := plan.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Improvement <= 0 {
		t.Errorf("no improvement on 3-D stencil: %+v", pred)
	}
	simr, err := plan.Simulate(sim.CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if simr.Improvement <= 0 {
		t.Errorf("no simulated improvement: %+v", simr.Improvement)
	}
}
