package core

import (
	"strings"
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/space"
)

func wavefrontProblem(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem(space.MustRect(24, 18),
		deps.MustNewSet(ilmath.V(1, -1), ilmath.V(1, 0), ilmath.V(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanSkewedWavefront(t *testing.T) {
	p := wavefrontProblem(t)
	sp, err := p.PlanSkewed(ilmath.V(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Tiling.IsRectangular() {
		t.Error("skewed plan produced rectangular tiling")
	}
	if !sp.Tiling.Legal(p.Deps) {
		t.Error("plan tiling illegal")
	}
	if sp.Tiling.VolumeInt() != 9 {
		t.Errorf("tile volume = %d, want 9", sp.Tiling.VolumeInt())
	}
	if len(sp.Tiles) == 0 {
		t.Fatal("no tiles")
	}
	// All points covered.
	var total int64
	for _, tc := range sp.Tiles {
		n, err := sp.Tiling.TilePoints(p.Space, tc, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != p.Space.Volume() {
		t.Errorf("tiles cover %d of %d points", total, p.Space.Volume())
	}
	if !sp.Schedule.Valid(sp.TileDeps) {
		t.Error("searched schedule invalid for tiled deps")
	}
	if sp.Length <= 0 {
		t.Errorf("schedule length %d", sp.Length)
	}
}

func TestPlanSkewedLegalOrder(t *testing.T) {
	p := wavefrontProblem(t)
	sp, err := p.PlanSkewed(ilmath.V(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.CheckLegalOrder(); err != nil {
		t.Errorf("skewed plan order illegal: %v", err)
	}
}

func TestPlanSkewedGrowsTinySides(t *testing.T) {
	// 1x1 sides cannot contain the skewed dependences; the planner must
	// grow them.
	p := wavefrontProblem(t)
	sp, err := p.PlanSkewed(ilmath.V(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Tiling.ContainsDeps(p.Deps) {
		t.Error("grown tiling still does not contain dependences")
	}
}

func TestPlanSkewedNonNegativeDepsNoSkew(t *testing.T) {
	// For already non-negative dependences the skew is the identity and
	// the plan reduces to a rectangular tiling.
	p, err := NewProblem(space.MustRect(20, 20), deps.Example1Deps())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.PlanSkewed(ilmath.V(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Skew.Equal(ilmath.Identity(2)) {
		t.Errorf("skew = %v, want identity", sp.Skew)
	}
	if !sp.Tiling.IsRectangular() {
		t.Error("identity skew should give rectangular tiles")
	}
	if err := sp.CheckLegalOrder(); err != nil {
		t.Errorf("order illegal: %v", err)
	}
}

func TestPlanSkewedValidation(t *testing.T) {
	p := wavefrontProblem(t)
	if _, err := p.PlanSkewed(ilmath.V(3)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := p.PlanSkewed(ilmath.V(0, 3)); err == nil {
		t.Error("zero side accepted")
	}
}

func TestPlanSkewedDescribe(t *testing.T) {
	p := wavefrontProblem(t)
	sp, err := p.PlanSkewed(ilmath.V(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	out := sp.Describe()
	for _, want := range []string{"skew S", "tiling H", "tiled space", "tile schedule"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
}

func TestPlanSkewed3D(t *testing.T) {
	p, err := NewProblem(space.MustRect(10, 8, 6),
		deps.MustNewSet(ilmath.V(1, -1, 0), ilmath.V(1, 0, -1), ilmath.V(1, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.PlanSkewed(ilmath.V(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.CheckLegalOrder(); err != nil {
		t.Errorf("3-D skewed order illegal: %v", err)
	}
}

func TestPlanSkewedSimulate(t *testing.T) {
	p, err := NewProblem(space.MustRect(240, 60),
		deps.MustNewSet(ilmath.V(1, -1), ilmath.V(1, 0), ilmath.V(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := p.PlanSkewed(ilmath.V(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	m := model.Example1Machine()
	simr, err := sp.Simulate(m, sim.CapDMA)
	if err != nil {
		t.Fatal(err)
	}
	if simr.Overlap.Makespan <= 0 || simr.NonOverlap.Makespan <= 0 {
		t.Fatalf("non-positive makespans: %+v", simr)
	}
	if simr.Overlap.Makespan >= simr.NonOverlap.Makespan {
		t.Errorf("overlap %g not faster than blocking %g on skewed plan",
			simr.Overlap.Makespan, simr.NonOverlap.Makespan)
	}
	// Lower bound: total real compute work divided by processors cannot be
	// beaten.
	var points int64
	for _, tc := range sp.Tiles {
		n, err := sp.Tiling.TilePoints(p.Space, tc, nil)
		if err != nil {
			t.Fatal(err)
		}
		points += n
	}
	if points != p.Space.Volume() {
		t.Fatalf("tiles cover %d of %d points", points, p.Space.Volume())
	}
	minWork := float64(points) * m.Tc / float64(sp.TileBox.Extent(1-sp.TileBox.LargestDim()))
	_ = minWork // processor count depends on mapping; just assert positive spans above
}

func TestPlanSkewedSimulateRejectsBadMachine(t *testing.T) {
	p := wavefrontProblem(t)
	sp, err := p.PlanSkewed(ilmath.V(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := model.Example1Machine()
	bad.Tc = -1
	if _, err := sp.Simulate(bad, sim.CapDMA); err == nil {
		t.Error("invalid machine accepted")
	}
}
