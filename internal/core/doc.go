// Package core is the top-level API of the library: it turns a loop nest
// description (iteration space + uniform dependences) into a tiled,
// scheduled, cost-modeled execution plan, and evaluates that plan either
// analytically (the paper's eq. 3/4 models) or on the discrete-event
// cluster simulator.
//
// Typical use:
//
//	p, _ := core.NewProblem(space.MustRect(10000, 1000), deps.Example1Deps())
//	plan, _ := p.Plan(model.Example1Machine(), core.PlanOptions{})
//	pred := plan.Predict()            // eq. 3 vs eq. 4 totals
//	simr, _ := plan.Simulate(...)     // discrete-event makespans
//
// The real (wall-clock, message-passing) execution path lives in
// internal/runner and is demonstrated by the examples.
package core
