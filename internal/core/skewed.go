package core

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/tiling"
)

// SkewedPlan is the planning result for dependence sets that rectangular
// tiles cannot legally cover (negative components): a unimodular skew plus
// parallelepiped tiles, the tiled-space structure, and a searched optimal
// linear tile schedule. Unlike Plan it carries no machine model — the
// skewed path is about transformation legality and schedule structure;
// analytic timing (eqs. 3/4) assumes the uniform nearest-neighbor message
// pattern of the rectangular case.
type SkewedPlan struct {
	Problem *Problem
	Skew    *ilmath.Mat
	Tiling  *tiling.Tiling

	TileBox    *space.Space // bounding box of the tiled space
	Tiles      []ilmath.Vec // the non-empty tiles, lexicographic
	TileDeps   *deps.Set
	DepVolumes []tiling.TileDepVolume

	Schedule *schedule.Linear // searched optimal Π for the tiled space
	Length   int64            // its schedule length over the bounding box
}

// PlanSkewed derives a skewed tiled execution for the problem with the
// given tile sides (in the skewed basis).
func (p *Problem) PlanSkewed(sides ilmath.Vec) (*SkewedPlan, error) {
	if sides.Dim() != p.Space.Dim() {
		return nil, fmt.Errorf("core: %d sides for %d dimensions", sides.Dim(), p.Space.Dim())
	}
	skew, err := tiling.SkewingFor(p.Deps)
	if err != nil {
		return nil, err
	}
	// Grow sides until the tiles contain every skewed dependence.
	grown := sides.Clone()
	var tl *tiling.Tiling
	for {
		tl, err = tiling.SkewedRectangular(p.Deps, grown...)
		if err != nil {
			return nil, err
		}
		if tl.ContainsDeps(p.Deps) {
			break
		}
		mx := skew.Mul(p.Deps.Matrix())
		changed := false
		for i := range grown {
			for c := 0; c < mx.Cols; c++ {
				if mx.At(i, c) >= grown[i] {
					grown[i] = mx.At(i, c) + 1
					changed = true
				}
			}
		}
		if !changed {
			return nil, fmt.Errorf("core: cannot grow tiles to contain dependences")
		}
	}
	box, err := tl.TileSpaceBounds(p.Space)
	if err != nil {
		return nil, err
	}
	tiles, err := tl.NonEmptyTiles(p.Space)
	if err != nil {
		return nil, err
	}
	td, err := tl.TileDeps(p.Deps)
	if err != nil {
		return nil, err
	}
	dv, err := tl.TileDepVolumes(p.Deps)
	if err != nil {
		return nil, err
	}
	lin, length, err := schedule.OptimalLinear(box, td, 2)
	if err != nil {
		return nil, err
	}
	return &SkewedPlan{
		Problem:    p,
		Skew:       skew,
		Tiling:     tl,
		TileBox:    box,
		Tiles:      tiles,
		TileDeps:   td,
		DepVolumes: dv,
		Schedule:   lin,
		Length:     length,
	}, nil
}

// CheckLegalOrder verifies (exhaustively, point by point) that both the
// sequential tiled order and the scheduled wavefront order are legal
// reorderings of the original loop nest. Intended for moderate spaces.
func (sp *SkewedPlan) CheckLegalOrder() error {
	if err := codegen.CheckOrder(sp.Problem.Space, sp.Problem.Deps, func(visit func(ilmath.Vec)) error {
		return codegen.TiledOrder(sp.Problem.Space, sp.Tiling, func(j ilmath.Vec) { visit(j.Clone()) })
	}); err != nil {
		return fmt.Errorf("core: tiled order: %w", err)
	}
	if err := codegen.CheckOrder(sp.Problem.Space, sp.Problem.Deps, func(visit func(ilmath.Vec)) error {
		return codegen.WavefrontOrder(sp.Problem.Space, sp.Tiling, sp.Schedule, sp.TileDeps,
			func(j ilmath.Vec) { visit(j.Clone()) })
	}); err != nil {
		return fmt.Errorf("core: wavefront order: %w", err)
	}
	return nil
}

// Describe renders a human-readable summary.
func (sp *SkewedPlan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iteration space : %v (%d points)\n", sp.Problem.Space, sp.Problem.Space.Volume())
	fmt.Fprintf(&b, "dependences     : %v\n", sp.Problem.Deps)
	fmt.Fprintf(&b, "skew S          :\n%v\n", sp.Skew)
	fmt.Fprintf(&b, "tiling H        :\n%v\n", sp.Tiling.H())
	fmt.Fprintf(&b, "tile volume     : %d\n", sp.Tiling.VolumeInt())
	fmt.Fprintf(&b, "tiled space     : %d non-empty tiles in %v\n", len(sp.Tiles), sp.TileBox)
	fmt.Fprintf(&b, "tiled deps      : %v\n", sp.TileDeps)
	fmt.Fprintf(&b, "tile schedule   : %v, %d steps\n", sp.Schedule, sp.Length)
	return b.String()
}

// Simulate runs both schedules for the skewed plan on the discrete-event
// simulator. The tiled space is the bounding box of the skewed tiled space;
// empty corner tiles carry zero volume and zero-byte (skipped) messages, so
// only the real tiles cost anything. Mapping follows the largest bounding-
// box dimension. Interior-tile transfer volumes approximate the boundary
// pairs (clipped tiles ship slightly less in reality).
func (sp *SkewedPlan) Simulate(m model.Machine, cap sim.Capability) (SimResult, error) {
	if err := m.Validate(); err != nil {
		return SimResult{}, err
	}
	// Per-tile point counts (0 outside the non-empty set).
	counts := make(map[string]int64, len(sp.Tiles))
	for _, tc := range sp.Tiles {
		n, err := sp.Tiling.TilePoints(sp.Problem.Space, tc, nil)
		if err != nil {
			return SimResult{}, err
		}
		counts[tc.String()] = n
	}
	volByDir := make(map[string]int64, len(sp.DepVolumes))
	for _, v := range sp.DepVolumes {
		volByDir[v.Dir.String()] = v.Points
	}
	mapping, err := schedule.NewMapping(sp.TileBox, sp.TileBox.LargestDim())
	if err != nil {
		return SimResult{}, err
	}
	topo := sim.Topology{
		TileSpace:  sp.TileBox,
		Map:        mapping,
		TileVolume: func(tc ilmath.Vec) int64 { return counts[tc.String()] },
		MsgBytes: func(from, to ilmath.Vec) int64 {
			if counts[from.String()] == 0 || counts[to.String()] == 0 {
				return 0
			}
			return volByDir[to.Sub(from).String()] * m.BytesPerElem
		},
	}
	base := sim.Config{Topo: topo, Deps: sp.TileDeps, Machine: m}
	blk := base
	blk.Mode = sim.Blocking
	blk.Cap = sim.CapNone
	rNo, err := sim.Simulate(blk)
	if err != nil {
		return SimResult{}, err
	}
	ovl := base
	ovl.Mode = sim.Overlapped
	ovl.Cap = cap
	rOv, err := sim.Simulate(ovl)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{
		NonOverlap:  rNo,
		Overlap:     rOv,
		Improvement: 1 - rOv.Makespan/rNo.Makespan,
	}, nil
}
