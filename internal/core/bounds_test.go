package core

import (
	"math/rand"
	"testing"

	"repro/internal/deps"
	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/space"
)

// TestPropSimulatedMakespanBounds checks, on random small unit-dependence
// problems, that both schedules' simulated makespans are bracketed by
// fundamental bounds:
//
//   - lower: the dependence-chain critical path (Σ per-dimension tile
//     counts − n + 1 tiles of pure compute), and one processor's total
//     compute work;
//   - upper: fully serializing every activity in the cluster (all compute
//     plus every message's full phase chain).
func TestPropSimulatedMakespanBounds(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	m := model.Example1Machine()
	for trial := 0; trial < 25; trial++ {
		e1 := r.Int63n(4) + 2 // tiles per dim: 2..5
		e2 := r.Int63n(4) + 2
		s1 := r.Int63n(6) + 3 // tile sides: 3..8
		s2 := r.Int63n(6) + 3
		sp := space.MustRect(e1*s1, e2*s2)
		p, err := NewProblem(sp, deps.Unit(2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.Plan(m, PlanOptions{TileSides: ilmath.V(s1, s2)})
		if err != nil {
			t.Fatal(err)
		}
		g := float64(plan.Tiling.VolumeInt()) * m.Tc

		// Lower bounds.
		chainTiles := float64(e1 + e2 - 1)
		chainLower := chainTiles * g
		perProcWork := float64(plan.Mapping.TilesPerProc()) * g

		// Upper bound: everything serialized.
		numTiles := float64(plan.TileSpace.Volume())
		msgs := 0.0
		for _, v := range plan.DepVolumes {
			cross := false
			for d, x := range v.Dir {
				if d != plan.Mapping.MapDim && x != 0 {
					cross = true
				}
			}
			if cross {
				// messages = one per tile pair along that direction; bound
				// loosely by numTiles each.
				msgs += numTiles
			}
		}
		perMsg := m.FillMPI(1000) + m.FillKernel(1000)*2 + m.Wire(1000)*2 + m.FillMPI(1000)
		upper := numTiles*g + msgs*perMsg

		for _, mode := range []sim.Mode{sim.Blocking, sim.Overlapped} {
			res, err := plan.SimulateOne(mode, sim.CapDMA, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < chainLower {
				t.Errorf("trial %d %v: makespan %g below chain bound %g (space %v, tiles %dx%d)",
					trial, mode, res.Makespan, chainLower, sp, s1, s2)
			}
			if res.Makespan < perProcWork {
				t.Errorf("trial %d %v: makespan %g below per-proc work %g",
					trial, mode, res.Makespan, perProcWork)
			}
			if res.Makespan > upper {
				t.Errorf("trial %d %v: makespan %g above serialization bound %g",
					trial, mode, res.Makespan, upper)
			}
		}
	}
}

// TestPropOverlapNeverLosesWhenComputeBound: when the plan is compute-bound
// (A-side dominates) and tiles-per-proc is large relative to the pipeline
// skew, the overlapped schedule must win in simulation.
func TestPropOverlapNeverLosesWhenComputeBound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := model.Example1Machine()
	for trial := 0; trial < 15; trial++ {
		tilesAlong := r.Int63n(20) + 30 // deep pipeline
		procs := r.Int63n(3) + 2
		sp := space.MustRect(tilesAlong*10, procs*10)
		p, err := NewProblem(sp, deps.Unit(2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.Plan(m, PlanOptions{TileSides: ilmath.V(10, 10)})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := plan.Predict()
		if err != nil {
			t.Fatal(err)
		}
		if !pred.ComputeBound {
			continue
		}
		simr, err := plan.Simulate(sim.CapDMA)
		if err != nil {
			t.Fatal(err)
		}
		if simr.Overlap.Makespan >= simr.NonOverlap.Makespan {
			t.Errorf("trial %d: compute-bound overlap %g not faster than blocking %g (space %v)",
				trial, simr.Overlap.Makespan, simr.NonOverlap.Makespan, sp)
		}
	}
}

// TestPropPredictionTracksSimulation: on unit-dependence problems the
// analytic predictions stay within 40% of the simulated makespans across
// random shapes (they share the message decomposition; divergence is
// pipeline fill/drain and resource contention the closed form ignores).
func TestPropPredictionTracksSimulation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := model.Example1Machine()
	for trial := 0; trial < 15; trial++ {
		sp := space.MustRect((r.Int63n(10)+5)*10, (r.Int63n(5)+2)*10)
		p, err := NewProblem(sp, deps.Unit(2))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := p.Plan(m, PlanOptions{TileSides: ilmath.V(10, 10)})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := plan.Predict()
		if err != nil {
			t.Fatal(err)
		}
		simr, err := plan.Simulate(sim.CapDMA)
		if err != nil {
			t.Fatal(err)
		}
		rel := func(a, b float64) float64 {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d / b
		}
		if rel(pred.NonOverlap, simr.NonOverlap.Makespan) > 0.4 {
			t.Errorf("trial %d: blocking prediction %g vs sim %g (space %v)",
				trial, pred.NonOverlap, simr.NonOverlap.Makespan, sp)
		}
		if rel(pred.Overlap, simr.Overlap.Makespan) > 0.4 {
			t.Errorf("trial %d: overlap prediction %g vs sim %g (space %v)",
				trial, pred.Overlap, simr.Overlap.Makespan, sp)
		}
	}
}
