// Package deps models uniform (constant) loop-carried data dependences.
//
// A dependence vector d means iteration j depends on iteration j − d; for the
// sequential loop order to be a valid execution order every dependence vector
// must be lexicographically positive. The dependence set D of an algorithm is
// represented as the column matrix D used throughout the paper (legality of a
// tiling H is HD ≥ 0).
package deps
