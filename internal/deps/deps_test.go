package deps

import (
	"testing"
	"testing/quick"

	"repro/internal/ilmath"
)

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewSet(ilmath.V(1, 0), ilmath.V(1)); err == nil {
		t.Error("mixed dimensions accepted")
	}
	if _, err := NewSet(ilmath.V(0, 0)); err == nil {
		t.Error("zero vector accepted")
	}
	if _, err := NewSet(ilmath.V(-1, 2)); err == nil {
		t.Error("lexicographically negative vector accepted")
	}
	if _, err := NewSet(ilmath.V(0, -1)); err == nil {
		t.Error("lexicographically negative vector accepted")
	}
	if _, err := NewSet(ilmath.V(1, -5)); err != nil {
		t.Errorf("lex-positive vector with negative tail rejected: %v", err)
	}
}

func TestSetAccessors(t *testing.T) {
	s := MustNewSet(ilmath.V(1, 1), ilmath.V(0, 1))
	if s.Dim() != 2 || s.Len() != 2 {
		t.Errorf("Dim/Len = %d/%d", s.Dim(), s.Len())
	}
	if !s.At(0).Equal(ilmath.V(1, 1)) {
		t.Error("At(0) wrong")
	}
	// Mutating the returned vector must not affect the set.
	v := s.At(0)
	v[0] = 99
	if !s.At(0).Equal(ilmath.V(1, 1)) {
		t.Error("At leaks internal storage")
	}
	vs := s.Vectors()
	vs[1][0] = 99
	if !s.At(1).Equal(ilmath.V(0, 1)) {
		t.Error("Vectors leaks internal storage")
	}
}

func TestMatrixColumns(t *testing.T) {
	s := Example1Deps()
	m := s.Matrix()
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("Matrix shape %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if !m.Col(0).Equal(ilmath.V(1, 1)) || !m.Col(1).Equal(ilmath.V(1, 0)) || !m.Col(2).Equal(ilmath.V(0, 1)) {
		t.Errorf("Matrix columns wrong:\n%v", m)
	}
}

func TestMaxComponent(t *testing.T) {
	s := MustNewSet(ilmath.V(1, -2, 0), ilmath.V(0, 3, 1))
	if got := s.MaxComponent(); !got.Equal(ilmath.V(1, 3, 1)) {
		t.Errorf("MaxComponent = %v", got)
	}
}

func TestIsNonNegative(t *testing.T) {
	if !Example1Deps().IsNonNegative() {
		t.Error("Example1Deps should be non-negative")
	}
	if MustNewSet(ilmath.V(1, -1)).IsNonNegative() {
		t.Error("set with negative component reported non-negative")
	}
}

func TestContains(t *testing.T) {
	s := Example1Deps()
	if !s.Contains(ilmath.V(1, 0)) {
		t.Error("Contains false negative")
	}
	if s.Contains(ilmath.V(2, 0)) {
		t.Error("Contains false positive")
	}
}

func TestUnit(t *testing.T) {
	u := Unit(3)
	if u.Len() != 3 || u.Dim() != 3 {
		t.Fatalf("Unit(3) shape wrong")
	}
	want := [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for i, w := range want {
		if !u.At(i).Equal(ilmath.V(w...)) {
			t.Errorf("Unit(3)[%d] = %v", i, u.At(i))
		}
	}
}

func TestPaperSets(t *testing.T) {
	if Example1Deps().Len() != 3 || Example1Deps().Dim() != 2 {
		t.Error("Example1Deps wrong shape")
	}
	if Stencil3D().Len() != 3 || Stencil3D().Dim() != 3 {
		t.Error("Stencil3D wrong shape")
	}
	if got := Example1Deps().String(); got != "{(1, 1), (1, 0), (0, 1)}" {
		t.Errorf("String = %q", got)
	}
}

// TestPropUnitMaxComponent checks that Unit(n) has all-ones MaxComponent.
func TestPropUnitMaxComponent(t *testing.T) {
	f := func(n uint8) bool {
		d := int(n%6) + 1
		mc := Unit(d).MaxComponent()
		for _, x := range mc {
			if x != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropAllVectorsLexPositive: any successfully constructed set contains
// only lexicographically positive vectors.
func TestPropAllVectorsLexPositive(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		v1 := ilmath.V(a%10, b%10)
		v2 := ilmath.V(c%10, d%10)
		s, err := NewSet(v1, v2)
		if err != nil {
			return true // rejection is fine
		}
		for _, v := range s.Vectors() {
			if !v.LexPositive() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
