package deps

import (
	"fmt"
	"strings"

	"repro/internal/ilmath"
)

// Set is an ordered collection of uniform dependence vectors of equal
// dimension.
type Set struct {
	dim  int
	vecs []ilmath.Vec
}

// NewSet validates and builds a dependence set. Every vector must have the
// same dimension, be nonzero, and be lexicographically positive (otherwise
// the sequential loop nest itself would be illegal).
func NewSet(vecs ...ilmath.Vec) (*Set, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("deps: empty dependence set")
	}
	dim := vecs[0].Dim()
	s := &Set{dim: dim, vecs: make([]ilmath.Vec, 0, len(vecs))}
	for i, d := range vecs {
		if d.Dim() != dim {
			return nil, fmt.Errorf("deps: vector %d has dimension %d, want %d", i, d.Dim(), dim)
		}
		if d.IsZero() {
			return nil, fmt.Errorf("deps: vector %d is zero", i)
		}
		if !d.LexPositive() {
			return nil, fmt.Errorf("deps: vector %d = %v is not lexicographically positive", i, d)
		}
		s.vecs = append(s.vecs, d.Clone())
	}
	return s, nil
}

// MustNewSet is NewSet but panics on error.
func MustNewSet(vecs ...ilmath.Vec) *Set {
	s, err := NewSet(vecs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the dimension n of the vectors.
func (s *Set) Dim() int { return s.dim }

// Len returns the number m of dependence vectors.
func (s *Set) Len() int { return len(s.vecs) }

// At returns a copy of the i-th dependence vector.
func (s *Set) At(i int) ilmath.Vec { return s.vecs[i].Clone() }

// Vectors returns copies of all dependence vectors in order.
func (s *Set) Vectors() []ilmath.Vec {
	out := make([]ilmath.Vec, len(s.vecs))
	for i, d := range s.vecs {
		out[i] = d.Clone()
	}
	return out
}

// Matrix returns the n×m dependence matrix D whose columns are the
// dependence vectors, as used in the legality condition HD ≥ 0.
func (s *Set) Matrix() *ilmath.Mat {
	return ilmath.MatFromCols(s.vecs...)
}

// MaxComponent returns, per dimension, the maximum component over all
// dependence vectors; tiles must be at least this large along each dimension
// for the unit-dependence tiled space assumption |HD| < 1 to hold.
func (s *Set) MaxComponent() ilmath.Vec {
	m := ilmath.NewVec(s.dim)
	for _, d := range s.vecs {
		for k := 0; k < s.dim; k++ {
			if d[k] > m[k] {
				m[k] = d[k]
			}
		}
	}
	return m
}

// IsNonNegative reports whether every component of every vector is ≥ 0.
// Non-negative dependence sets admit rectangular tilings of any side length.
func (s *Set) IsNonNegative() bool {
	for _, d := range s.vecs {
		if !d.IsNonNegative() {
			return false
		}
	}
	return true
}

// Contains reports whether v is one of the dependence vectors.
func (s *Set) Contains(v ilmath.Vec) bool {
	for _, d := range s.vecs {
		if d.Equal(v) {
			return true
		}
	}
	return false
}

// Unit returns the n-dimensional unit dependence set {e_1, …, e_n}, the
// dependence structure of the tiled space J^S when |HD| < 1 holds.
func Unit(n int) *Set {
	vecs := make([]ilmath.Vec, n)
	for i := range vecs {
		v := ilmath.NewVec(n)
		v[i] = 1
		vecs[i] = v
	}
	return MustNewSet(vecs...)
}

// String renders the set as "{(1, 0), (0, 1)}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, d := range s.vecs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Common dependence sets used by the paper's examples.

// Example1Deps is D = {(1,1), (1,0), (0,1)} from the 2-D loop of Example 1.
func Example1Deps() *Set {
	return MustNewSet(ilmath.V(1, 1), ilmath.V(1, 0), ilmath.V(0, 1))
}

// Stencil3D is D = {(1,0,0), (0,1,0), (0,0,1)}, the dependence set of the
// experimental kernel A(i,j,k) = √A(i−1,j,k)+√A(i,j−1,k)+√A(i,j,k−1).
func Stencil3D() *Set {
	return MustNewSet(ilmath.V(1, 0, 0), ilmath.V(0, 1, 0), ilmath.V(0, 0, 1))
}
