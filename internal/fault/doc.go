// Package fault provides deterministic, seeded fault injection for both
// execution paths of the reproduction: the discrete-event cluster simulator
// (internal/sim) and the real TCP runtime (internal/mp, cmd/tilenode).
//
// A Plan describes per-resource perturbations — CPU straggler factors,
// link slowdowns, per-message wire jitter, message loss with a
// timeout/backoff retransmission model, and transient node pauses. Every
// decision is a pure function of (Seed, stream, identifiers) through a
// SplitMix64-style hash: there is no global state and no sequential RNG
// stream, so the same Plan yields bit-identical perturbations no matter in
// which order — or on how many goroutines — the questions are asked. That
// is what makes faulted simulations replayable across Engine.Reset reuse
// and across parallel and sequential sweeps.
//
// All perturbation magnitudes scale with Intensity and the per-entity hash
// values do not depend on Intensity, so raising Intensity only ever raises
// each individual perturbation: a degradation sweep moves every fault
// monotonically, not to a fresh random universe per step.
package fault
