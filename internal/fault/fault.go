package fault

import (
	"fmt"
	"math"
)

// Stream identifiers keep the per-purpose hash families disjoint: the same
// (proc) id asked for a CPU factor and a pause probability must see
// independent values.
const (
	streamCPU uint64 = 1 + iota
	streamLink
	streamWire
	streamLoss
	streamPause
	streamPauseDur
)

// Plan is a replayable fault-injection specification. The zero value is the
// null plan: no perturbation of any kind (Active() == false), and a
// simulation run under it is byte-identical to an unfaulted one.
//
// Plan is a plain comparable value so it can key memo caches directly.
type Plan struct {
	// Seed selects the random universe; two plans with different seeds
	// draw independent perturbations.
	Seed uint64
	// Intensity in [0, 1] scales every perturbation; 0 disables all of
	// them regardless of the knobs below.
	Intensity float64

	// CPUStraggle is the maximum fractional CPU slowdown at intensity 1:
	// a processor's CPU work is inflated by a factor in
	// [1, 1+Intensity·CPUStraggle].
	CPUStraggle float64
	// LinkSlowdown is the maximum fractional inflation of everything
	// riding a communication port (wire occupancy, DMA copies,
	// retransmission timeouts) at intensity 1, drawn once per port.
	LinkSlowdown float64
	// WireJitter is the maximum fractional per-transmission-attempt
	// jitter on the wire time of a message at intensity 1.
	WireJitter float64
	// LossProb is the per-attempt probability that a message transmission
	// is lost at intensity 1 (effective probability Intensity·LossProb).
	LossProb float64
	// MaxResend caps how many times one message is retransmitted; after
	// the cap the transmission succeeds (the model degrades, it does not
	// deadlock).
	MaxResend int
	// TimeoutWire is the retransmission timeout expressed as a multiple
	// of the message's nominal wire time.
	TimeoutWire float64
	// BackoffFactor multiplies the timeout on every further retransmission
	// (exponential backoff). Values below 1 are treated as 1 (constant
	// timeout).
	BackoffFactor float64
	// PauseProb is the probability, per (processor, step), of a transient
	// node pause at intensity 1.
	PauseProb float64
	// PauseMean scales pause durations: a triggered pause lasts
	// Intensity·PauseMean·u seconds with u in [0.5, 1.5).
	PauseMean float64
}

// Default returns the canonical plan used by the degradation sweeps: all
// fault classes enabled with magnitudes that stress but do not drown the
// schedules (at intensity 1: CPUs up to 1.5x slower, links up to 1.5x
// slower, 10% message loss with up to 4 retransmits, 2% pause chance of a
// few hundred microseconds per tile step).
func Default(seed uint64, intensity float64) Plan {
	return Plan{
		Seed:          seed,
		Intensity:     intensity,
		CPUStraggle:   0.5,
		LinkSlowdown:  0.5,
		WireJitter:    0.5,
		LossProb:      0.10,
		MaxResend:     4,
		TimeoutWire:   3,
		BackoffFactor: 2,
		PauseProb:     0.02,
		PauseMean:     500e-6,
	}
}

// Active reports whether the plan perturbs anything at all.
func (p Plan) Active() bool { return p.Intensity > 0 }

// Validate checks the plan for internal consistency. The zero plan is
// valid.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Intensity", p.Intensity},
		{"CPUStraggle", p.CPUStraggle},
		{"LinkSlowdown", p.LinkSlowdown},
		{"WireJitter", p.WireJitter},
		{"LossProb", p.LossProb},
		{"TimeoutWire", p.TimeoutWire},
		{"BackoffFactor", p.BackoffFactor},
		{"PauseProb", p.PauseProb},
		{"PauseMean", p.PauseMean},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("fault: %s must be finite and non-negative, got %g", f.name, f.v)
		}
	}
	if p.Intensity > 1 {
		return fmt.Errorf("fault: Intensity must be in [0, 1], got %g", p.Intensity)
	}
	if p.MaxResend < 0 {
		return fmt.Errorf("fault: MaxResend must be non-negative, got %d", p.MaxResend)
	}
	if p.Intensity*p.LossProb >= 1 {
		return fmt.Errorf("fault: effective loss probability %g must be below 1",
			p.Intensity*p.LossProb)
	}
	if p.BackoffFactor != 0 && p.BackoffFactor < 1 {
		return fmt.Errorf("fault: BackoffFactor must be 0 or >= 1, got %g", p.BackoffFactor)
	}
	return nil
}

func (p Plan) String() string {
	return fmt.Sprintf("fault(seed=%d intensity=%g)", p.Seed, p.Intensity)
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix, the
// standard seeding primitive of the xoshiro family.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Unit hashes (seed, ids...) to a uniform float64 in [0, 1). It is the
// shared stateless randomness primitive: exported so the mp layer's
// FaultyComm draws from the same replayable family.
func Unit(seed uint64, ids ...int64) float64 {
	h := splitmix64(seed)
	for _, id := range ids {
		h = splitmix64(h ^ uint64(id))
	}
	return float64(h>>11) / (1 << 53)
}

// unit is Unit under one of the plan's streams.
func (p Plan) unit(stream uint64, ids ...int64) float64 {
	h := splitmix64(p.Seed ^ splitmix64(stream))
	for _, id := range ids {
		h = splitmix64(h ^ uint64(id))
	}
	return float64(h>>11) / (1 << 53)
}

// CPUFactor returns processor proc's CPU slowdown factor, in
// [1, 1+Intensity·CPUStraggle]. A factor of 1.2 means every CPU-resident
// duration on that node takes 20% longer.
func (p Plan) CPUFactor(proc int64) float64 {
	if p.Intensity <= 0 || p.CPUStraggle <= 0 {
		return 1
	}
	return 1 + p.Intensity*p.CPUStraggle*p.unit(streamCPU, proc)
}

// LinkFactor returns the slowdown factor of one communication port,
// identified by an arbitrary integer id (the sim layer uses 2·proc and
// 2·proc+1 for the rx and tx ports and −1 for a shared bus). Everything
// occupying the port — wire time, DMA copies, retransmission timeouts —
// inflates by it.
func (p Plan) LinkFactor(port int64) float64 {
	if p.Intensity <= 0 || p.LinkSlowdown <= 0 {
		return 1
	}
	return 1 + p.Intensity*p.LinkSlowdown*p.unit(streamLink, port)
}

// WireFactor returns the jitter factor of one transmission attempt of the
// message fromRank→toRank, in [1, 1+Intensity·WireJitter]. Each
// retransmission attempt jitters independently.
func (p Plan) WireFactor(fromRank, toRank int64, attempt int) float64 {
	if p.Intensity <= 0 || p.WireJitter <= 0 {
		return 1
	}
	return 1 + p.Intensity*p.WireJitter*p.unit(streamWire, fromRank, toRank, int64(attempt))
}

// Resends returns how many transmission attempts of the message
// fromRank→toRank are lost before one succeeds (0 = first attempt gets
// through), capped at MaxResend. For a fixed seed the count is monotone
// non-decreasing in Intensity: attempt i fails iff its fixed hash value is
// below Intensity·LossProb.
func (p Plan) Resends(fromRank, toRank int64) int {
	loss := p.Intensity * p.LossProb
	if loss <= 0 || p.MaxResend <= 0 {
		return 0
	}
	n := 0
	for n < p.MaxResend && p.unit(streamLoss, fromRank, toRank, int64(n)) < loss {
		n++
	}
	return n
}

// RetryDelay returns the retransmission timeout that follows lost attempt
// number `attempt` (0-based) of a message whose nominal wire time is
// `wire`: TimeoutWire·wire, doubled (BackoffFactor) per further attempt.
func (p Plan) RetryDelay(wire float64, attempt int) float64 {
	bf := p.BackoffFactor
	if bf < 1 {
		bf = 1
	}
	d := p.TimeoutWire * wire
	for i := 0; i < attempt; i++ {
		d *= bf
	}
	return d
}

// Pause returns the duration of the transient pause processor proc suffers
// before its step-th tile, or 0 (the common case: pauses trigger with
// probability Intensity·PauseProb per step).
func (p Plan) Pause(proc, step int64) float64 {
	trigger := p.Intensity * p.PauseProb
	if trigger <= 0 || p.PauseMean <= 0 {
		return 0
	}
	if p.unit(streamPause, proc, step) >= trigger {
		return 0
	}
	return p.Intensity * p.PauseMean * (0.5 + p.unit(streamPauseDur, proc, step))
}
