package fault

import (
	"math"
	"testing"
)

func TestZeroPlanIsInert(t *testing.T) {
	var p Plan
	if p.Active() {
		t.Error("zero plan reports Active")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("zero plan invalid: %v", err)
	}
	if f := p.CPUFactor(3); f != 1 {
		t.Errorf("CPUFactor = %g, want 1", f)
	}
	if f := p.LinkFactor(3); f != 1 {
		t.Errorf("LinkFactor = %g, want 1", f)
	}
	if f := p.WireFactor(1, 2, 0); f != 1 {
		t.Errorf("WireFactor = %g, want 1", f)
	}
	if n := p.Resends(1, 2); n != 0 {
		t.Errorf("Resends = %d, want 0", n)
	}
	if d := p.Pause(0, 0); d != 0 {
		t.Errorf("Pause = %g, want 0", d)
	}
}

func TestZeroIntensityIsInert(t *testing.T) {
	p := Default(42, 0)
	if p.Active() {
		t.Error("zero-intensity plan reports Active")
	}
	for proc := int64(0); proc < 8; proc++ {
		if f := p.CPUFactor(proc); f != 1 {
			t.Errorf("CPUFactor(%d) = %g, want 1", proc, f)
		}
		if n := p.Resends(proc, proc+1); n != 0 {
			t.Errorf("Resends = %d, want 0", n)
		}
		if d := p.Pause(proc, 0); d != 0 {
			t.Errorf("Pause = %g, want 0", d)
		}
	}
}

// TestReplayable checks that two identical plans produce bit-identical
// decisions, and that the decisions do not depend on evaluation order —
// the property that makes parallel sweeps reproducible.
func TestReplayable(t *testing.T) {
	a := Default(7, 0.6)
	b := Default(7, 0.6)
	// Evaluate in opposite orders.
	n := int64(64)
	fwd := make([]float64, n)
	for i := int64(0); i < n; i++ {
		fwd[i] = a.CPUFactor(i) + a.LinkFactor(i) + float64(a.Resends(i, i+1)) +
			a.WireFactor(i, i+1, 2) + a.Pause(i, i%5)
	}
	for i := n - 1; i >= 0; i-- {
		got := b.CPUFactor(i) + b.LinkFactor(i) + float64(b.Resends(i, i+1)) +
			b.WireFactor(i, i+1, 2) + b.Pause(i, i%5)
		if got != fwd[i] {
			t.Fatalf("id %d: reverse-order evaluation %v != forward %v", i, got, fwd[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := Default(1, 1), Default(2, 1)
	same := 0
	for i := int64(0); i < 32; i++ {
		if a.CPUFactor(i) == b.CPUFactor(i) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 agree on %d/32 CPU factors", same)
	}
}

func TestFactorRanges(t *testing.T) {
	p := Default(11, 1)
	for i := int64(0); i < 256; i++ {
		if f := p.CPUFactor(i); f < 1 || f >= 1+p.CPUStraggle {
			t.Fatalf("CPUFactor(%d) = %g out of [1, %g)", i, f, 1+p.CPUStraggle)
		}
		if f := p.LinkFactor(i); f < 1 || f >= 1+p.LinkSlowdown {
			t.Fatalf("LinkFactor(%d) = %g out of range", i, f)
		}
		if n := p.Resends(i, i+1); n < 0 || n > p.MaxResend {
			t.Fatalf("Resends = %d out of [0, %d]", n, p.MaxResend)
		}
		if d := p.Pause(i, 0); d < 0 || d > p.Intensity*p.PauseMean*1.5 {
			t.Fatalf("Pause = %g out of range", d)
		}
	}
}

// TestMonotoneInIntensity checks that every perturbation grows (weakly)
// with intensity for a fixed seed — the property underpinning the
// degradation sweep's monotone makespans.
func TestMonotoneInIntensity(t *testing.T) {
	intensities := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	for id := int64(0); id < 64; id++ {
		prevCPU, prevRes, prevPause := 0.0, -1, -1.0
		for _, in := range intensities {
			p := Default(99, in)
			if f := p.CPUFactor(id); f < prevCPU {
				t.Fatalf("CPUFactor(%d) decreased at intensity %g: %g < %g", id, in, f, prevCPU)
			} else {
				prevCPU = f
			}
			if n := p.Resends(id, id+1); n < prevRes {
				t.Fatalf("Resends(%d) decreased at intensity %g: %d < %d", id, in, n, prevRes)
			} else {
				prevRes = n
			}
			if d := p.Pause(id, 3); d < prevPause {
				t.Fatalf("Pause(%d) decreased at intensity %g: %g < %g", id, in, d, prevPause)
			} else {
				prevPause = d
			}
		}
	}
}

func TestRetryDelayBackoff(t *testing.T) {
	p := Default(1, 1)
	wire := 1e-3
	d0 := p.RetryDelay(wire, 0)
	if want := p.TimeoutWire * wire; d0 != want {
		t.Errorf("RetryDelay(0) = %g, want %g", d0, want)
	}
	for a := 1; a < 4; a++ {
		if got, want := p.RetryDelay(wire, a), p.RetryDelay(wire, a-1)*p.BackoffFactor; math.Abs(got-want) > 1e-18 {
			t.Errorf("RetryDelay(%d) = %g, want %g", a, got, want)
		}
	}
	// BackoffFactor 0 degrades to a constant timeout.
	p.BackoffFactor = 0
	if p.RetryDelay(wire, 3) != p.RetryDelay(wire, 0) {
		t.Error("BackoffFactor 0 should mean constant timeout")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Plan)
	}{
		{"negative intensity", func(p *Plan) { p.Intensity = -0.1 }},
		{"intensity above 1", func(p *Plan) { p.Intensity = 1.5 }},
		{"NaN jitter", func(p *Plan) { p.WireJitter = math.NaN() }},
		{"negative loss", func(p *Plan) { p.LossProb = -1 }},
		{"certain loss", func(p *Plan) { p.Intensity = 1; p.LossProb = 1 }},
		{"negative resend cap", func(p *Plan) { p.MaxResend = -1 }},
		{"fractional backoff", func(p *Plan) { p.BackoffFactor = 0.5 }},
		{"negative pause", func(p *Plan) { p.PauseMean = -1e-6 }},
	}
	for _, tc := range cases {
		p := Default(1, 0.5)
		tc.mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, p)
		}
	}
	if err := Default(123, 1).Validate(); err != nil {
		t.Errorf("Default plan invalid: %v", err)
	}
}

func TestUnitRange(t *testing.T) {
	for i := int64(0); i < 1000; i++ {
		u := Unit(5, i)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of [0,1): %g", u)
		}
	}
	if Unit(5, 1, 2) == Unit(5, 2, 1) {
		t.Error("Unit should be order-sensitive in its ids")
	}
}
