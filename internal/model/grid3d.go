package model

import "fmt"

// Grid3D describes the paper's Section 5 experimental setup: an I×J×K
// iteration space of the 3-D stencil, executed on a PI×PJ processor grid.
// The k axis is the largest dimension, so all tiles along k map to the same
// processor; tiles have shape (I/PI)×(J/PJ)×V where V is the tile height.
type Grid3D struct {
	I, J, K int64 // iteration space extents
	PI, PJ  int64 // processor grid extents
}

// Validate checks the configuration: the processor grid must evenly divide
// the i and j extents (the paper always uses 4×4 over 16×16 or 32×32).
func (c Grid3D) Validate() error {
	if c.I <= 0 || c.J <= 0 || c.K <= 0 || c.PI <= 0 || c.PJ <= 0 {
		return fmt.Errorf("model: non-positive Grid3D extent %+v", c)
	}
	if c.I%c.PI != 0 || c.J%c.PJ != 0 {
		return fmt.Errorf("model: processor grid %dx%d does not divide space %dx%d", c.PI, c.PJ, c.I, c.J)
	}
	return nil
}

// TileI and TileJ return the tile footprint in the i and j dimensions.
func (c Grid3D) TileI() int64 { return c.I / c.PI }

// TileJ returns the tile side along j.
func (c Grid3D) TileJ() int64 { return c.J / c.PJ }

// KTiles returns the number of tiles along the k axis for tile height v
// (the last tile may be partial).
func (c Grid3D) KTiles(v int64) int64 { return (c.K + v - 1) / v }

// TileVolume returns g = (I/PI)·(J/PJ)·v.
func (c Grid3D) TileVolume(v int64) int64 { return c.TileI() * c.TileJ() * v }

// FaceBytesI returns the size in bytes of the message crossing an i-boundary
// (a j×k tile face of one tile: TileJ·v elements).
func (c Grid3D) FaceBytesI(v, bytesPerElem int64) int64 { return c.TileJ() * v * bytesPerElem }

// FaceBytesJ returns the size in bytes of the message crossing a j-boundary.
func (c Grid3D) FaceBytesJ(v, bytesPerElem int64) int64 { return c.TileI() * v * bytesPerElem }

// InteriorStep returns the StepShape of an interior processor (two sends,
// two receives — one per grid neighbor direction) for tile height v.
func (c Grid3D) InteriorStep(v int64, m Machine) StepShape {
	bi := c.FaceBytesI(v, m.BytesPerElem)
	bj := c.FaceBytesJ(v, m.BytesPerElem)
	return StepShape{
		ComputePoints: c.TileVolume(v),
		SendBytes:     []int64{bi, bj},
		RecvBytes:     []int64{bi, bj},
	}
}

// PNonOverlap returns the exact schedule length of the non-overlapping
// schedule Π = (1,1,1) on the (PI)×(PJ)×KTiles tile space:
// (PI−1) + (PJ−1) + (KTiles−1) + 1.
func (c Grid3D) PNonOverlap(v int64) int64 {
	return (c.PI - 1) + (c.PJ - 1) + (c.KTiles(v) - 1) + 1
}

// POverlap returns the exact schedule length of the overlapping schedule
// Π = (2,2,1) with mapping along k: 2(PI−1) + 2(PJ−1) + (KTiles−1) + 1.
func (c Grid3D) POverlap(v int64) int64 {
	return 2*(c.PI-1) + 2*(c.PJ-1) + (c.KTiles(v) - 1) + 1
}

// PPaperOverlap returns the paper's Section 5 approximation of the
// overlapped schedule length, P(g) = 2·i_max + 2·j_max + k_max/V, which it
// plugs into eq. 5 for the theoretical column of Fig. 12 (≈53, 76, 41 for
// the three experiments).
func (c Grid3D) PPaperOverlap(v int64) float64 {
	return float64(2*c.PI) + float64(2*c.PJ) + float64(c.K)/float64(v)
}

// PredictNonOverlap evaluates eq. 3 for tile height v.
func (c Grid3D) PredictNonOverlap(v int64, m Machine) float64 {
	return m.TotalNonOverlapped(c.PNonOverlap(v), c.InteriorStep(v, m))
}

// PredictOverlap evaluates eq. 4 for tile height v with the exact schedule
// length.
func (c Grid3D) PredictOverlap(v int64, m Machine) float64 {
	return m.TotalOverlapped(c.POverlap(v), c.InteriorStep(v, m))
}

// PredictOverlapPaper evaluates eq. 5 the way the paper's Fig. 12 does:
// the approximate P(g) times the CPU-side step cost A1+A2+A3.
func (c Grid3D) PredictOverlapPaper(v int64, m Machine) float64 {
	cpu, _ := m.OverlappedStepParts(c.InteriorStep(v, m))
	return c.PPaperOverlap(v) * cpu
}

// SweepPoint is one point of a tile-height sweep.
type SweepPoint struct {
	V          int64
	G          int64   // tile volume
	NonOverlap float64 // predicted eq. 3 time
	Overlap    float64 // predicted eq. 4 time
}

// Sweep evaluates both predictions for every tile height in vs.
func (c Grid3D) Sweep(vs []int64, m Machine) []SweepPoint {
	out := make([]SweepPoint, 0, len(vs))
	for _, v := range vs {
		out = append(out, SweepPoint{
			V:          v,
			G:          c.TileVolume(v),
			NonOverlap: c.PredictNonOverlap(v, m),
			Overlap:    c.PredictOverlap(v, m),
		})
	}
	return out
}

// OptimalV scans tile heights 1..K and returns the height minimizing the
// given predictor together with the predicted time.
func (c Grid3D) OptimalV(m Machine, predict func(v int64, m Machine) float64) (int64, float64) {
	bestV, bestT := int64(1), predict(1, m)
	for v := int64(2); v <= c.K; v++ {
		if t := predict(v, m); t < bestT {
			bestV, bestT = v, t
		}
	}
	return bestV, bestT
}

// Fig12Experiments returns the three iteration spaces of the paper's
// Section 5 experiments, all on a 4×4 processor grid.
func Fig12Experiments() []Grid3D {
	return []Grid3D{
		{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}, // experiment i
		{I: 16, J: 16, K: 32768, PI: 4, PJ: 4}, // experiment ii
		{I: 32, J: 32, K: 4096, PI: 4, PJ: 4},  // experiment iii
	}
}
