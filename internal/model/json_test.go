package model

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMachineJSONRoundTrip(t *testing.T) {
	for _, m := range []Machine{Example1Machine(), PentiumCluster()} {
		var buf bytes.Buffer
		if err := WriteMachine(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMachine(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("round trip changed machine: %+v vs %+v", got, m)
		}
	}
}

func TestReadMachineRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"zero tc":       `{"tc":0,"ts":1,"tt":1,"bytes_per_elem":4}`,
		"unknown field": `{"tc":1,"ts":1,"tt":1,"bytes_per_elem":4,"bogus":1}`,
		"not json":      `tc = 1`,
		"negative fill": `{"tc":1,"ts":1,"tt":1,"bytes_per_elem":4,"fill_mpi_base":-1}`,
	}
	for name, body := range cases {
		if _, err := ReadMachine(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadMachineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	var buf bytes.Buffer
	if err := WriteMachine(&buf, PentiumCluster()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMachine(path)
	if err != nil {
		t.Fatal(err)
	}
	if m != PentiumCluster() {
		t.Error("loaded machine differs")
	}
	if _, err := LoadMachine(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNamedMachine(t *testing.T) {
	if m, err := NamedMachine("example1"); err != nil || m != Example1Machine() {
		t.Error("example1 lookup failed")
	}
	if m, err := NamedMachine("pentium"); err != nil || m != PentiumCluster() {
		t.Error("pentium lookup failed")
	}
	if _, err := NamedMachine("cray"); err == nil {
		t.Error("unknown machine accepted")
	}
}
