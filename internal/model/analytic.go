package model

import (
	"fmt"
	"math"
)

// The closed-form tile-height optimum for the Grid3D experiments.
//
// With affine buffer-fill costs, one interior processor's step cost is an
// affine function of the tile height V, and the schedule length is
// P(V) ≈ C + K/V, so the total
//
//	T(V) = (C + K/V)·(a + b·V) = C·a + C·b·V + K·a/V + K·b
//
// is minimized at V* = √(K·a / (C·b)) — the continuous analogue of the
// paper's "obtain the optimal overall time when T'(g) = 0" (Section 4).
// The paper lacks analytic forms for A_i(g), B_i(g) and falls back to
// experimental values; the affine machine model closes that gap, which is
// exactly the future work its Conclusions call for.

// overlapStepCoeffs returns (a, b) such that the compute-bound overlapped
// step cost is a + b·V for an interior processor of c.
func overlapStepCoeffs(c Grid3D, m Machine) (a, b float64) {
	// Two sends and two receives per step: 4 MPI buffer fills on the CPU.
	a = 4 * m.FillMPIBase
	perByteBytes := 2 * float64(c.TileI()+c.TileJ()) * float64(m.BytesPerElem) // sent+received bytes per unit V
	b = perByteBytes*m.FillMPIPerByte + float64(c.TileI()*c.TileJ())*m.Tc
	return a, b
}

// blockingStepCoeffs returns (a, b) such that the blocking step cost is
// a + b·V for an interior processor of c.
func blockingStepCoeffs(c Grid3D, m Machine) (a, b float64) {
	a = 4 * (m.FillMPIBase + m.FillKernelBase)
	perByteBytes := 2 * float64(c.TileI()+c.TileJ()) * float64(m.BytesPerElem)
	wireBytes := float64(c.TileI()+c.TileJ()) * float64(m.BytesPerElem) // sends counted once
	b = perByteBytes*(m.FillMPIPerByte+m.FillKernelPerByte) +
		wireBytes*m.Tt +
		float64(c.TileI()*c.TileJ())*m.Tc
	return a, b
}

// optimalVClosedForm minimizes (C + K/V)(a + bV).
func optimalVClosedForm(k, cSteps, a, b float64) (float64, error) {
	if a <= 0 || b <= 0 || k <= 0 || cSteps <= 0 {
		return 0, fmt.Errorf("model: non-positive closed-form inputs (a=%g b=%g K=%g C=%g)", a, b, k, cSteps)
	}
	return math.Sqrt(k * a / (cSteps * b)), nil
}

// OptimalVOverlapAnalytic returns the closed-form optimal tile height and
// the predicted completion time for the overlapped schedule, assuming the
// compute-bound case (eq. 5). Use Grid3D.OptimalV for the exact discrete
// optimum; the closed form shows where it comes from.
func (c Grid3D) OptimalVOverlapAnalytic(m Machine) (vOpt float64, tOpt float64, err error) {
	a, b := overlapStepCoeffs(c, m)
	cSteps := float64(2*(c.PI-1) + 2*(c.PJ-1) + 1)
	v, err := optimalVClosedForm(float64(c.K), cSteps, a, b)
	if err != nil {
		return 0, 0, err
	}
	t := (cSteps + float64(c.K)/v) * (a + b*v)
	return v, t, nil
}

// OptimalVBlockingAnalytic is the blocking-schedule analogue.
func (c Grid3D) OptimalVBlockingAnalytic(m Machine) (vOpt float64, tOpt float64, err error) {
	a, b := blockingStepCoeffs(c, m)
	cSteps := float64((c.PI - 1) + (c.PJ - 1) + 1)
	v, err := optimalVClosedForm(float64(c.K), cSteps, a, b)
	if err != nil {
		return 0, 0, err
	}
	t := (cSteps + float64(c.K)/v) * (a + b*v)
	return v, t, nil
}

// PredictedImprovementAtOptima returns 1 − T_ov(V*_ov)/T_bl(V*_bl) from the
// closed forms: the analytic counterpart of the Fig. 12 improvement row.
func (c Grid3D) PredictedImprovementAtOptima(m Machine) (float64, error) {
	_, tOv, err := c.OptimalVOverlapAnalytic(m)
	if err != nil {
		return 0, err
	}
	_, tBl, err := c.OptimalVBlockingAnalytic(m)
	if err != nil {
		return 0, err
	}
	return 1 - tOv/tBl, nil
}

// CrossoverWireSpeed finds, by bisection, the per-byte wire time t_t above
// which the overlapped schedule stops beating the blocking one at their
// respective analytic optima — the comm-bound boundary of Section 4's case
// 2, where the overlapped schedule's longer P(g) is no longer paid back.
// It searches t_t in [lo, hi]; if overlap wins everywhere in the range it
// returns hi, if it loses everywhere it returns lo.
func (c Grid3D) CrossoverWireSpeed(m Machine, lo, hi float64) (float64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("model: bad wire-speed range [%g, %g]", lo, hi)
	}
	gain := func(tt float64) float64 {
		mm := m
		mm.Tt = tt
		// Discrete optima under eq. 3 / eq. 4 (the max() handles the
		// comm-bound switch).
		_, tOv := c.OptimalV(mm, c.PredictOverlap)
		_, tBl := c.OptimalV(mm, c.PredictNonOverlap)
		return 1 - tOv/tBl
	}
	if gain(lo) <= 0 {
		return lo, nil
	}
	if gain(hi) > 0 {
		return hi, nil
	}
	for i := 0; i < 40 && hi/lo > 1.001; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over decades
		if gain(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
