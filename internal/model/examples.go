package model

import (
	"repro/internal/deps"
	"repro/internal/schedule"
	"repro/internal/space"
	"repro/internal/tiling"
)

// ExampleResult collects the quantities of the paper's worked examples so
// tests and the CLI can compare against the printed values.
type ExampleResult struct {
	G          int64   // tile size
	VComm      int64   // communication volume, formula (2)
	P          int64   // schedule length
	StepTime   float64 // per-step time, seconds
	Total      float64 // total completion time, seconds
	TotalInTc  float64 // total in units of t_c (the paper reports 400036·t_c etc.)
	MapDim     int
	TileSpace  *space.Space
	SchedulePi []int64
}

// Example1 reproduces the paper's Example 1 (Section 3) end-to-end from the
// library primitives: the 10000×1000 2-D loop, 10×10 square tiles, the
// non-overlapping schedule Π = (1,1), and the eq. 3 total
// T = 1099 · 364·t_c = 400036·t_c ≈ 0.4 s.
func Example1() (ExampleResult, error) {
	m := Example1Machine()
	sp := space.MustRect(10000, 1000)
	d := deps.Example1Deps()

	// g = c·t_s/t_c = 100 (c = 1 neighbor), square tiles 10×10.
	g := int64(m.HodzicShangOptimalG(1)) // = 100
	sides, err := tiling.OptimalRectSides(d, g)
	if err != nil {
		return ExampleResult{}, err
	}
	tl, err := tiling.Rectangular(sides...)
	if err != nil {
		return ExampleResult{}, err
	}
	ts, err := tl.TileSpace(sp)
	if err != nil {
		return ExampleResult{}, err
	}
	mapDim := ts.LargestDim() // dim 0 (999 > 99)
	vcomm, err := tl.CommVolumeMapped(d, mapDim)
	if err != nil {
		return ExampleResult{}, err
	}
	lin := schedule.NonOverlapping(2)
	p, err := lin.Length(ts, deps.Unit(2))
	if err != nil {
		return ExampleResult{}, err
	}
	// One send + one receive per step of V_comm points each.
	bytes := vcomm.Int() * m.BytesPerElem
	step := StepShape{
		ComputePoints: tl.VolumeInt(),
		SendBytes:     []int64{bytes},
		RecvBytes:     []int64{bytes},
	}
	stepTime := m.NonOverlappedStep(step)
	total := m.TotalNonOverlapped(p, step)
	return ExampleResult{
		G:          tl.VolumeInt(),
		VComm:      vcomm.Int(),
		P:          p,
		StepTime:   stepTime,
		Total:      total,
		TotalInTc:  total / m.Tc,
		MapDim:     mapDim,
		TileSpace:  ts,
		SchedulePi: lin.Pi,
	}, nil
}

// Example3 reproduces the paper's Example 3 (Section 4): the same problem
// under the overlapping schedule Π = (1,2) with mapping along dimension 0.
// The schedule length becomes P = 999 + 2·99 + 1 = 1198 and, with
// T_fill_MPI_buffer = t_s/2 per message, the CPU path dominates:
// per step A1+A2+A3 = 50 + 100 + 50 = 200·t_c, so
// T = 1198·200·t_c = 239600·t_c ≈ 0.24 s — the paper's headline result.
//
// (The paper's inline arithmetic prints "1198(25t_c+25t_c+100t_c) =
// 179700·t_c = 0.24 secs"; 1198·150 = 179700·t_c is 0.18 s, inconsistent
// with its own "0.24 secs" — the headline 0.24 s matches the consistent
// A1 = A3 = t_s/2 = 50·t_c accounting used here.)
func Example3() (ExampleResult, error) {
	m := Example1Machine()
	sp := space.MustRect(10000, 1000)
	d := deps.Example1Deps()

	tl, err := tiling.Rectangular(10, 10)
	if err != nil {
		return ExampleResult{}, err
	}
	ts, err := tl.TileSpace(sp)
	if err != nil {
		return ExampleResult{}, err
	}
	mapDim := ts.LargestDim()
	vcomm, err := tl.CommVolumeMapped(d, mapDim)
	if err != nil {
		return ExampleResult{}, err
	}
	lin, err := schedule.Overlapping(2, mapDim)
	if err != nil {
		return ExampleResult{}, err
	}
	p, err := lin.Length(ts, deps.Unit(2))
	if err != nil {
		return ExampleResult{}, err
	}
	bytes := vcomm.Int() * m.BytesPerElem
	step := StepShape{
		ComputePoints: tl.VolumeInt(),
		SendBytes:     []int64{bytes},
		RecvBytes:     []int64{bytes},
	}
	stepTime := m.OverlappedStep(step)
	total := m.TotalOverlapped(p, step)
	return ExampleResult{
		G:          tl.VolumeInt(),
		VComm:      vcomm.Int(),
		P:          p,
		StepTime:   stepTime,
		Total:      total,
		TotalInTc:  total / m.Tc,
		MapDim:     mapDim,
		TileSpace:  ts,
		SchedulePi: lin.Pi,
	}, nil
}
