package model

import (
	"math"
	"testing"

	"repro/internal/ilmath"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestMachineValidate(t *testing.T) {
	good := Example1Machine()
	if err := good.Validate(); err != nil {
		t.Errorf("Example1Machine invalid: %v", err)
	}
	if err := PentiumCluster().Validate(); err != nil {
		t.Errorf("PentiumCluster invalid: %v", err)
	}
	bad := good
	bad.Tc = 0
	if bad.Validate() == nil {
		t.Error("zero Tc accepted")
	}
	bad = good
	bad.Ts = -1
	if bad.Validate() == nil {
		t.Error("negative Ts accepted")
	}
	bad = good
	bad.BytesPerElem = 0
	if bad.Validate() == nil {
		t.Error("zero BytesPerElem accepted")
	}
	bad = good
	bad.FillMPIPerByte = -1
	if bad.Validate() == nil {
		t.Error("negative fill accepted")
	}
}

func TestFillFunctions(t *testing.T) {
	m := Machine{
		Tc: 1, Ts: 1, Tt: 2, BytesPerElem: 4,
		FillMPIBase: 10, FillMPIPerByte: 1,
		FillKernelBase: 5, FillKernelPerByte: 0.5,
	}
	if m.FillMPI(100) != 110 {
		t.Errorf("FillMPI = %g", m.FillMPI(100))
	}
	if m.FillKernel(100) != 55 {
		t.Errorf("FillKernel = %g", m.FillKernel(100))
	}
	if m.Wire(100) != 200 {
		t.Errorf("Wire = %g", m.Wire(100))
	}
}

func TestStepShapeTotals(t *testing.T) {
	s := StepShape{ComputePoints: 10, SendBytes: []int64{3, 4}, RecvBytes: []int64{5}}
	if s.TotalSendBytes() != 7 || s.TotalRecvBytes() != 5 {
		t.Error("byte totals wrong")
	}
}

func TestNonOverlappedStepExample1Arithmetic(t *testing.T) {
	// Paper Example 1: step = 2·t_s + b·V_comm·t_t + g·t_c
	//                       = 200·t_c + 64·t_c + 100·t_c = 364·t_c.
	m := Example1Machine()
	s := StepShape{ComputePoints: 100, SendBytes: []int64{80}, RecvBytes: []int64{80}}
	got := m.NonOverlappedStep(s) / m.Tc
	if !almostEq(got, 364, 1e-9) {
		t.Errorf("step = %g·t_c, want 364·t_c", got)
	}
}

func TestOverlappedStepPartsExample3(t *testing.T) {
	// Example 3: A = 50 + 100 + 50 = 200·t_c; B = 50 + 50 + 2·(80·0.8) = 228·t_c
	// (one 80-byte message each way; our accounting counts both wire
	// directions, B1 and B4).
	m := Example1Machine()
	s := StepShape{ComputePoints: 100, SendBytes: []int64{80}, RecvBytes: []int64{80}}
	cpu, comm := m.OverlappedStepParts(s)
	if !almostEq(cpu/m.Tc, 200, 1e-9) {
		t.Errorf("cpu side = %g·t_c, want 200·t_c", cpu/m.Tc)
	}
	if !almostEq(comm/m.Tc, 228, 1e-9) {
		t.Errorf("comm side = %g·t_c, want 228·t_c", comm/m.Tc)
	}
	if m.OverlappedStep(s) != comm {
		t.Error("OverlappedStep should take the max side")
	}
	if m.ComputeBound(s) {
		t.Error("this shape is wire-bound, not compute-bound")
	}
}

func TestComputeBoundLargeTile(t *testing.T) {
	m := Example1Machine()
	// Huge tile: compute dominates.
	s := StepShape{ComputePoints: 100000, SendBytes: []int64{80}, RecvBytes: []int64{80}}
	if !m.ComputeBound(s) {
		t.Error("large tile should be compute-bound")
	}
}

func TestTotals(t *testing.T) {
	m := Example1Machine()
	s := StepShape{ComputePoints: 100, SendBytes: []int64{80}, RecvBytes: []int64{80}}
	if got := m.TotalNonOverlapped(10, s); !almostEq(got, 10*m.NonOverlappedStep(s), 1e-12) {
		t.Error("TotalNonOverlapped != P·step")
	}
	if got := m.TotalOverlapped(10, s); !almostEq(got, 10*m.OverlappedStep(s), 1e-12) {
		t.Error("TotalOverlapped != P·step")
	}
}

func TestHodzicShangOptimalG(t *testing.T) {
	m := Example1Machine()
	if g := m.HodzicShangOptimalG(1); !almostEq(g, 100, 1e-12) {
		t.Errorf("g = %g, want 100 (Example 1)", g)
	}
	if g := m.HodzicShangOptimalG(2); !almostEq(g, 200, 1e-12) {
		t.Errorf("g = %g, want 200", g)
	}
}

func TestOptimalGEq5(t *testing.T) {
	m := Example1Machine()
	// n = 2, F = 100·t_c ⟹ g_opt = 100.
	g, err := m.OptimalGEq5(2, 100*m.Tc)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(g, 100, 1e-12) {
		t.Errorf("g_opt = %g, want 100", g)
	}
	// n = 3 halves it.
	g3, _ := m.OptimalGEq5(3, 100*m.Tc)
	if !almostEq(g3, 50, 1e-12) {
		t.Errorf("g_opt(n=3) = %g, want 50", g3)
	}
	if _, err := m.OptimalGEq5(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := m.OptimalGEq5(2, 0); err == nil {
		t.Error("zero fill accepted")
	}
}

// TestOptimalGEq5IsMinimum verifies the closed form against a numeric scan
// of T(g) = P₀·g^{−1/n}·(F + g·t_c).
func TestOptimalGEq5IsMinimum(t *testing.T) {
	m := Example1Machine()
	n := 2
	fill := 100 * m.Tc
	gOpt, err := m.OptimalGEq5(n, fill)
	if err != nil {
		t.Fatal(err)
	}
	T := func(g float64) float64 {
		return math.Pow(g, -1/float64(n)) * (fill + g*m.Tc)
	}
	tOpt := T(gOpt)
	for _, g := range []float64{gOpt / 4, gOpt / 2, gOpt * 2, gOpt * 4} {
		if T(g) < tOpt {
			t.Errorf("T(%g) = %g < T(g_opt) = %g", g, T(g), tOpt)
		}
	}
}

func TestExample1MatchesPaper(t *testing.T) {
	r, err := Example1()
	if err != nil {
		t.Fatal(err)
	}
	if r.G != 100 {
		t.Errorf("g = %d, want 100", r.G)
	}
	if r.VComm != 20 {
		t.Errorf("V_comm = %d, want 20", r.VComm)
	}
	if r.P != 1099 {
		t.Errorf("P = %d, want 1099", r.P)
	}
	if r.MapDim != 0 {
		t.Errorf("mapDim = %d, want 0", r.MapDim)
	}
	if !almostEq(r.TotalInTc, 400036, 1e-9) {
		t.Errorf("T = %g·t_c, want 400036·t_c (paper: 0.4 s)", r.TotalInTc)
	}
	if !almostEq(r.Total, 0.400036, 1e-9) {
		t.Errorf("T = %g s, want 0.400036 s", r.Total)
	}
	if !ilmath.Vec(r.SchedulePi).Equal(ilmath.V(1, 1)) {
		t.Errorf("Π = %v, want (1,1)", r.SchedulePi)
	}
}

func TestExample3MatchesPaper(t *testing.T) {
	r, err := Example3()
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1198 {
		t.Errorf("P = %d, want 1198", r.P)
	}
	if !ilmath.Vec(r.SchedulePi).Equal(ilmath.V(1, 2)) {
		t.Errorf("Π = %v, want (1,2)", r.SchedulePi)
	}
	// Wire-inclusive step = 228·t_c (see TestOverlappedStepPartsExample3);
	// the headline comparison: overlap total must be well below the
	// non-overlap 0.4 s, around the paper's ~0.24 s.
	if r.Total >= 0.3 {
		t.Errorf("overlap total %g s not clearly below non-overlap 0.4 s", r.Total)
	}
	if r.Total < 0.2 {
		t.Errorf("overlap total %g s implausibly low", r.Total)
	}
	// Improvement vs Example 1 ≈ 30-45%.
	e1, _ := Example1()
	imp := 1 - r.Total/e1.Total
	if imp < 0.25 || imp > 0.5 {
		t.Errorf("improvement = %.0f%%, want 25-50%% (paper: ~40%%)", imp*100)
	}
}

func TestGrid3DValidate(t *testing.T) {
	good := Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if (Grid3D{I: 15, J: 16, K: 10, PI: 4, PJ: 4}).Validate() == nil {
		t.Error("non-dividing grid accepted")
	}
	if (Grid3D{I: 0, J: 16, K: 10, PI: 4, PJ: 4}).Validate() == nil {
		t.Error("zero extent accepted")
	}
}

func TestGrid3DGeometry(t *testing.T) {
	c := Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	if c.TileI() != 4 || c.TileJ() != 4 {
		t.Error("tile footprint wrong")
	}
	if c.KTiles(444) != 37 { // ceil(16384/444) = 37
		t.Errorf("KTiles = %d, want 37", c.KTiles(444))
	}
	if c.TileVolume(444) != 7104 {
		t.Errorf("TileVolume = %d, want 7104 (paper g_optimal)", c.TileVolume(444))
	}
	if c.FaceBytesI(444, 4) != 7104 {
		t.Errorf("FaceBytesI = %d, want 7104 (paper packet size)", c.FaceBytesI(444, 4))
	}
}

func TestGrid3DScheduleLengths(t *testing.T) {
	c := Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	// Exact: 2·3 + 2·3 + 37 = 49; paper's approximation: 8+8+36.9 ≈ 52.9.
	if p := c.POverlap(444); p != 49 {
		t.Errorf("POverlap = %d, want 49", p)
	}
	if p := c.PPaperOverlap(444); math.Abs(p-52.9) > 0.1 {
		t.Errorf("PPaperOverlap = %g, want ≈52.9 (paper rounds to 53)", p)
	}
	if p := c.PNonOverlap(444); p != 43 {
		t.Errorf("PNonOverlap = %d, want 43", p)
	}
}

func TestGrid3DPredictOverlapBeatsNonOverlapAtOptimum(t *testing.T) {
	m := PentiumCluster()
	for _, c := range Fig12Experiments() {
		vOv, tOv := c.OptimalV(m, c.PredictOverlap)
		vNo, tNo := c.OptimalV(m, c.PredictNonOverlap)
		if tOv >= tNo {
			t.Errorf("%+v: overlap optimum %g (V=%d) not better than non-overlap %g (V=%d)",
				c, tOv, vOv, tNo, vNo)
		}
		imp := 1 - tOv/tNo
		if imp < 0.10 || imp > 0.60 {
			t.Errorf("%+v: improvement %.0f%% outside plausible band (paper: 32-38%%)", c, imp*100)
		}
	}
}

func TestGrid3DSweepUShape(t *testing.T) {
	// The time-vs-V curve must be U-shaped: the optimum is interior, with
	// strictly worse times at the extremes.
	m := PentiumCluster()
	c := Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	vOpt, tOpt := c.OptimalV(m, c.PredictOverlap)
	if vOpt <= 4 {
		t.Errorf("optimal V = %d suspiciously small", vOpt)
	}
	if vOpt >= c.K/4 {
		t.Errorf("optimal V = %d suspiciously large", vOpt)
	}
	if c.PredictOverlap(4, m) <= tOpt || c.PredictOverlap(c.K/4, m) <= tOpt {
		t.Error("extremes of sweep not worse than optimum: curve not U-shaped")
	}
}

func TestGrid3DSweep(t *testing.T) {
	m := PentiumCluster()
	c := Grid3D{I: 16, J: 16, K: 1024, PI: 4, PJ: 4}
	pts := c.Sweep([]int64{4, 16, 64, 256}, m)
	if len(pts) != 4 {
		t.Fatalf("Sweep returned %d points", len(pts))
	}
	for _, p := range pts {
		if p.G != 16*p.V {
			t.Errorf("G = %d for V = %d", p.G, p.V)
		}
		if p.Overlap <= 0 || p.NonOverlap <= 0 {
			t.Error("non-positive prediction")
		}
	}
}

func TestFig12ExperimentsValid(t *testing.T) {
	exps := Fig12Experiments()
	if len(exps) != 3 {
		t.Fatalf("want 3 experiments")
	}
	for _, c := range exps {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v invalid: %v", c, err)
		}
		if c.PI*c.PJ != 16 {
			t.Errorf("%+v does not use 16 processors", c)
		}
	}
}
