package model

import "fmt"

// Machine describes the target architecture parameters of Section 2.6 plus
// the overlap decomposition of Section 4 (Fig. 4):
//
//   - Tc: time for a single iteration's computation (t_c),
//   - Ts: communication startup per message (t_s); in the overlapped path it
//     splits into the non-overlappable MPI buffer fill (A1/A3) and the
//     overlappable kernel buffer fill (B2/B3),
//   - Tt: transmission time per byte (t_t),
//   - BytesPerElem: bytes per array element (b).
//
// The buffer-fill times grow with message size; both are modeled affinely
// (base + perByte·bytes), which is what the paper's measurements of
// T_fill_MPI_buffer at different packet sizes show to first order.
type Machine struct {
	Tc           float64
	Ts           float64
	Tt           float64
	BytesPerElem int64

	FillMPIBase       float64 // per-message, non-overlappable (A1, A3)
	FillMPIPerByte    float64
	FillKernelBase    float64 // per-message, overlappable (B2, B3)
	FillKernelPerByte float64
}

// Validate checks the machine parameters for sanity.
func (m Machine) Validate() error {
	if m.Tc <= 0 {
		return fmt.Errorf("model: Tc must be positive, got %g", m.Tc)
	}
	if m.Ts < 0 || m.Tt < 0 {
		return fmt.Errorf("model: negative communication parameter (Ts=%g, Tt=%g)", m.Ts, m.Tt)
	}
	if m.BytesPerElem <= 0 {
		return fmt.Errorf("model: BytesPerElem must be positive, got %d", m.BytesPerElem)
	}
	if m.FillMPIBase < 0 || m.FillMPIPerByte < 0 || m.FillKernelBase < 0 || m.FillKernelPerByte < 0 {
		return fmt.Errorf("model: negative buffer-fill parameter")
	}
	return nil
}

// FillMPI returns the time the CPU spends filling the MPI system buffer for
// one message of the given size (T_fill_MPI_buffer). This work cannot be
// overlapped with computation.
func (m Machine) FillMPI(bytes int64) float64 {
	return m.FillMPIBase + float64(bytes)*m.FillMPIPerByte
}

// FillKernel returns the kernel-buffer copy time for one message
// (T_fill_kernel_buffer). With DMA support this work overlaps computation.
func (m Machine) FillKernel(bytes int64) float64 {
	return m.FillKernelBase + float64(bytes)*m.FillKernelPerByte
}

// Wire returns the wire transmission time of one message (T_transmit).
func (m Machine) Wire(bytes int64) float64 {
	return float64(bytes) * m.Tt
}

// Example1Machine returns the hypothetical architecture of the paper's
// Example 1: t_c = 1 µs, t_s = 100·t_c, t_t = 0.8·t_c per byte, 4-byte
// floats. The startup splits evenly between the MPI buffer fill and the
// kernel buffer fill (T_fill_MPI_buffer = t_s/2, Example 3).
func Example1Machine() Machine {
	tc := 1e-6
	return Machine{
		Tc:             tc,
		Ts:             100 * tc,
		Tt:             0.8 * tc,
		BytesPerElem:   4,
		FillMPIBase:    50 * tc,
		FillKernelBase: 50 * tc,
	}
}

// PentiumCluster returns a machine calibrated to the paper's testbed: 16
// Pentium III/500 nodes, Linux 2.2.14, MPICH over FastEthernet.
//
//   - t_c = 0.441 µs: measured by the authors for one iteration of the
//     3-D sqrt stencil (Section 5).
//   - T_fill_MPI_buffer ≈ 88 ns/byte: a per-byte fit through the paper's
//     measurements (0.627 ms at 7104-byte packets for experiment i,
//     0.745 ms at 8608 bytes for ii; experiment iii measured 0.37 ms at
//     5248 bytes, which this fit overestimates ~25% — the per-experiment
//     harness can override with the measured value, exactly as the paper
//     plugs its measured T_fill into eq. 5).
//   - t_t = 0.08 µs/byte (100 Mbps FastEthernet ≈ 12.5 MB/s payload).
//   - T_fill_MPI_buffer = 300 µs + 45 ns/byte: affine fit anchored to the
//     paper's measurement for experiment i (0.627 ms at 7104-byte packets;
//     this fit gives 0.620 ms) with a substantial base term, which is what
//     places the optimal tile height V in the several-hundreds range the
//     paper measures (V_opt = 444/538/164).
//   - T_fill_kernel_buffer = 150 µs + 100 ns/byte: the kernel-side TCP stack
//     copy, overlappable with DMA; comparable in magnitude to the MPI-side
//     copy on this class of hardware. With this value the simulated blocking
//     optima land at 0.380/0.695/0.290 s versus the paper's measured
//     0.377/0.695/0.324 s.
//   - t_s = 450 µs: the nominal flat one-way startup (≈ the two fill bases),
//     used only by the Hodzic–Shang g = c·t_s/t_c rule of thumb.
func PentiumCluster() Machine {
	return Machine{
		Tc:                0.441e-6,
		Ts:                450e-6,
		Tt:                0.08e-6,
		BytesPerElem:      4,
		FillMPIBase:       300e-6,
		FillMPIPerByte:    45e-9,
		FillKernelBase:    150e-6,
		FillKernelPerByte: 100e-9,
	}
}
