package model

import "fmt"

// StepShape describes what one processor does during one time step of the
// tiled schedule: the number of iteration points it computes and the sizes
// of the messages it exchanges with its neighbors.
type StepShape struct {
	ComputePoints int64   // g, iteration points computed in the tile
	SendBytes     []int64 // one entry per outgoing message
	RecvBytes     []int64 // one entry per incoming message
}

// TotalSendBytes returns the sum of outgoing message sizes.
func (s StepShape) TotalSendBytes() int64 { return sum(s.SendBytes) }

// TotalRecvBytes returns the sum of incoming message sizes.
func (s StepShape) TotalRecvBytes() int64 { return sum(s.RecvBytes) }

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// NonOverlappedStep returns the duration of one receive→compute→send triplet
// of the non-overlapping schedule (Section 3):
//
//	T_step = T_comp + T_comm,  T_comm = T_startup + T_transmit
//
// Every send and every receive pays the full startup serially — the MPI
// buffer fill plus the kernel buffer fill, the same decomposition the
// overlapped path splits into A- and B-sides — and the wire time of each
// exchanged message is counted once for the send–receive pair, matching the
// paper's Example 1 accounting (there T_startup = t_s per message with
// t_s = T_fill_MPI_buffer + T_fill_kernel_buffer, Example 3).
func (m Machine) NonOverlappedStep(s StepShape) float64 {
	var startup float64
	for _, b := range s.SendBytes {
		startup += m.FillMPI(b) + m.FillKernel(b)
	}
	for _, b := range s.RecvBytes {
		startup += m.FillMPI(b) + m.FillKernel(b)
	}
	transmit := m.Wire(s.TotalSendBytes())
	return startup + transmit + float64(s.ComputePoints)*m.Tc
}

// OverlappedStepParts returns the two sides of the max() in eq. 4 for one
// step of the overlapping schedule:
//
//	cpu  = A1 + A2 + A3: MPI buffer fills for sends (A1) and receives (A3)
//	       around the tile computation A2 = g·t_c — the serial CPU path;
//	comm = B1 + B2 + B3 + B4: receive wire time (B1), kernel buffer fills
//	       for receives (B2) and sends (B3), send wire time (B4) — the
//	       overlappable communication path.
func (m Machine) OverlappedStepParts(s StepShape) (cpu, comm float64) {
	for _, b := range s.SendBytes {
		cpu += m.FillMPI(b)     // A1
		comm += m.FillKernel(b) // B3
	}
	for _, b := range s.RecvBytes {
		cpu += m.FillMPI(b)     // A3
		comm += m.FillKernel(b) // B2
	}
	cpu += float64(s.ComputePoints) * m.Tc // A2
	comm += m.Wire(s.TotalRecvBytes())     // B1
	comm += m.Wire(s.TotalSendBytes())     // B4
	return cpu, comm
}

// OverlappedStep returns max(A1+A2+A3, B1+B2+B3+B4), the duration of one
// step under the overlapping schedule (eq. 4).
func (m Machine) OverlappedStep(s StepShape) float64 {
	cpu, comm := m.OverlappedStepParts(s)
	if cpu > comm {
		return cpu
	}
	return comm
}

// ComputeBound reports whether the CPU path dominates (case 1 of Section 4,
// leading to eq. 5).
func (m Machine) ComputeBound(s StepShape) bool {
	cpu, comm := m.OverlappedStepParts(s)
	return cpu >= comm
}

// TotalNonOverlapped evaluates eq. 3: T = P(g)·(T_comp + T_comm).
func (m Machine) TotalNonOverlapped(p int64, s StepShape) float64 {
	return float64(p) * m.NonOverlappedStep(s)
}

// TotalOverlapped evaluates eq. 4: T = P(g)·max(A-side, B-side).
func (m Machine) TotalOverlapped(p int64, s StepShape) float64 {
	return float64(p) * m.OverlappedStep(s)
}

// HodzicShangOptimalG returns the optimal tile size g = c·t_s/t_c of
// expression (11) in Hodzic & Shang, where c is the number of neighboring
// processors (Example 1 uses c = 1).
func (m Machine) HodzicShangOptimalG(c int) float64 {
	return float64(c) * m.Ts / m.Tc
}

// OptimalGEq5 solves dT/dg = 0 for the compute-bound overlapped case
// (eq. 5) with constant per-step fill cost F = A1 + A3:
//
//	T(g) = P₀·g^(−1/n)·(F + g·t_c)
//	T'(g) = 0  ⟹  g_opt = F / ((n−1)·t_c)
//
// valid for n ≥ 2 (for n = 1 the expression has no interior optimum:
// T decreases monotonically in g). It returns an error for n < 2 or
// non-positive F.
func (m Machine) OptimalGEq5(n int, fillSum float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("model: OptimalGEq5 requires n >= 2, got %d", n)
	}
	if fillSum <= 0 {
		return 0, fmt.Errorf("model: non-positive fill cost %g", fillSum)
	}
	return fillSum / (float64(n-1) * m.Tc), nil
}
