// Package model implements the completion-time cost models of Sections 3
// and 4 of the paper: the non-overlapping model T = P(g)(T_comp + T_comm)
// (eq. 3), the overlapping model T = P(g)·max(A1+A2+A3, B1+B2+B3+B4)
// (eq. 4/5), and the tile-size optimization built on them.
//
// All times are in seconds.
package model
