package model

import (
	"math"
	"testing"
)

func TestOptimalVOverlapAnalyticNearNumericScan(t *testing.T) {
	m := PentiumCluster()
	for _, c := range Fig12Experiments() {
		vA, tA, err := c.OptimalVOverlapAnalytic(m)
		if err != nil {
			t.Fatal(err)
		}
		vN, tN := c.OptimalV(m, c.PredictOverlap)
		// The closed form assumes the compute-bound case, while the exact
		// discrete scan's eq.-4 max() switches to the B-side at large V and
		// pulls the optimum left along a very flat valley — so V can differ
		// by tens of percent while T stays within 10%.
		if math.Abs(vA-float64(vN))/float64(vN) > 0.45 {
			t.Errorf("%+v: analytic V* = %.0f vs numeric %d", c, vA, vN)
		}
		if math.Abs(tA-tN)/tN > 0.10 {
			t.Errorf("%+v: analytic T* = %g vs numeric %g", c, tA, tN)
		}
	}
}

func TestOptimalVBlockingAnalyticNearNumericScan(t *testing.T) {
	m := PentiumCluster()
	for _, c := range Fig12Experiments() {
		vA, tA, err := c.OptimalVBlockingAnalytic(m)
		if err != nil {
			t.Fatal(err)
		}
		vN, tN := c.OptimalV(m, c.PredictNonOverlap)
		if math.Abs(vA-float64(vN))/float64(vN) > 0.25 {
			t.Errorf("%+v: analytic V* = %.0f vs numeric %d", c, vA, vN)
		}
		if math.Abs(tA-tN)/tN > 0.10 {
			t.Errorf("%+v: analytic T* = %g vs numeric %g", c, tA, tN)
		}
	}
}

func TestClosedFormIsStationary(t *testing.T) {
	// T(V*) must not exceed T at nearby heights (true minimum).
	m := PentiumCluster()
	c := Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	a, b := overlapStepCoeffs(c, m)
	cSteps := float64(2*(c.PI-1) + 2*(c.PJ-1) + 1)
	v, err := optimalVClosedForm(float64(c.K), cSteps, a, b)
	if err != nil {
		t.Fatal(err)
	}
	T := func(x float64) float64 { return (cSteps + float64(c.K)/x) * (a + b*x) }
	for _, f := range []float64{0.5, 0.8, 1.25, 2} {
		if T(v*f) < T(v) {
			t.Errorf("T(%g·V*) = %g < T(V*) = %g", f, T(v*f), T(v))
		}
	}
}

func TestPredictedImprovementAtOptima(t *testing.T) {
	m := PentiumCluster()
	for _, c := range Fig12Experiments() {
		imp, err := c.PredictedImprovementAtOptima(m)
		if err != nil {
			t.Fatal(err)
		}
		if imp < 0.10 || imp > 0.60 {
			t.Errorf("%+v: analytic improvement %.0f%% outside plausible band", c, imp*100)
		}
	}
}

func TestClosedFormValidation(t *testing.T) {
	if _, err := optimalVClosedForm(0, 1, 1, 1); err == nil {
		t.Error("zero K accepted")
	}
	if _, err := optimalVClosedForm(1, 1, 0, 1); err == nil {
		t.Error("zero base cost accepted")
	}
}

func TestAnalyticVGrowsWithBaseCost(t *testing.T) {
	// Higher per-message base cost pushes the optimum to taller tiles
	// (fewer, larger messages) — the V* = √(K·a/(C·b)) dependence.
	c := Grid3D{I: 16, J: 16, K: 16384, PI: 4, PJ: 4}
	m1 := PentiumCluster()
	m2 := m1
	m2.FillMPIBase *= 4
	v1, _, err := c.OptimalVOverlapAnalytic(m1)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := c.OptimalVOverlapAnalytic(m2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Errorf("V* did not grow with base cost: %g -> %g", v1, v2)
	}
	// And approximately like √4 = 2 when base dominates the a-term.
	if v2/v1 < 1.5 || v2/v1 > 2.5 {
		t.Errorf("V* ratio %g, want ≈2", v2/v1)
	}
}

func TestCrossoverWireSpeed(t *testing.T) {
	m := PentiumCluster()
	// Use a small space so the discrete optimum scans stay fast.
	c := Grid3D{I: 16, J: 16, K: 1024, PI: 4, PJ: 4}
	tt, err := c.CrossoverWireSpeed(m, 1e-9, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// At the paper's 100 Mbps (0.08 µs/B) the overlap wins; at very slow
	// wires it must not. The crossover lies strictly between.
	if tt <= m.Tt {
		t.Errorf("crossover %g at or below the calibrated wire speed %g", tt, m.Tt)
	}
	if tt >= 1e-4 {
		t.Errorf("no crossover found below 1e-4 s/B")
	}
	// Verify the sign flip around the crossover.
	check := func(ttv float64) float64 {
		mm := m
		mm.Tt = ttv
		_, tOv := c.OptimalV(mm, c.PredictOverlap)
		_, tBl := c.OptimalV(mm, c.PredictNonOverlap)
		return 1 - tOv/tBl
	}
	if check(tt/3) <= 0 {
		t.Errorf("overlap should win well below the crossover")
	}
	if check(tt*3) > 0 {
		t.Errorf("overlap should lose well above the crossover")
	}
	if _, err := c.CrossoverWireSpeed(m, 1, 0.5); err == nil {
		t.Error("bad range accepted")
	}
}
