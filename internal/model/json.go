package model

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// machineJSON is the on-disk form of a Machine, with all times in seconds.
type machineJSON struct {
	Tc                float64 `json:"tc"`
	Ts                float64 `json:"ts"`
	Tt                float64 `json:"tt"`
	BytesPerElem      int64   `json:"bytes_per_elem"`
	FillMPIBase       float64 `json:"fill_mpi_base"`
	FillMPIPerByte    float64 `json:"fill_mpi_per_byte"`
	FillKernelBase    float64 `json:"fill_kernel_base"`
	FillKernelPerByte float64 `json:"fill_kernel_per_byte"`
}

// MarshalJSON implements json.Marshaler.
func (m Machine) MarshalJSON() ([]byte, error) {
	return json.Marshal(machineJSON{
		Tc: m.Tc, Ts: m.Ts, Tt: m.Tt, BytesPerElem: m.BytesPerElem,
		FillMPIBase: m.FillMPIBase, FillMPIPerByte: m.FillMPIPerByte,
		FillKernelBase: m.FillKernelBase, FillKernelPerByte: m.FillKernelPerByte,
	})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting unknown fields and
// validating the result.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var j machineJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return err
	}
	out := Machine{
		Tc: j.Tc, Ts: j.Ts, Tt: j.Tt, BytesPerElem: j.BytesPerElem,
		FillMPIBase: j.FillMPIBase, FillMPIPerByte: j.FillMPIPerByte,
		FillKernelBase: j.FillKernelBase, FillKernelPerByte: j.FillKernelPerByte,
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*m = out
	return nil
}

// LoadMachine reads a Machine from a JSON file.
func LoadMachine(path string) (Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return Machine{}, err
	}
	defer f.Close()
	return ReadMachine(f)
}

// ReadMachine decodes a Machine from JSON.
func ReadMachine(r io.Reader) (Machine, error) {
	var m Machine
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Machine{}, fmt.Errorf("model: decoding machine: %w", err)
	}
	return m, nil
}

// WriteMachine encodes a Machine as indented JSON.
func WriteMachine(w io.Writer, m Machine) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// NamedMachine resolves the built-in machine names used by the CLIs.
func NamedMachine(name string) (Machine, error) {
	switch name {
	case "example1":
		return Example1Machine(), nil
	case "pentium":
		return PentiumCluster(), nil
	default:
		return Machine{}, fmt.Errorf("model: unknown machine %q (want example1 or pentium, or use a JSON file)", name)
	}
}
