package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestChromeTraceGolden locks the exporter's byte-exact output — field order,
// number formatting, separators — against a checked-in golden file, so any
// change to the emitted JSON shows up as a reviewable testdata diff (external
// tooling may be parsing these files positionally). Run
// `go test ./internal/trace -run ChromeTraceGolden -update` to regenerate
// after an intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace output drifted from golden file:\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
	// The golden bytes must also be schema-valid trace-event JSON: every
	// event carries the required keys with the right types, metadata events
	// name threads, complete events carry non-negative microsecond spans.
	var events []map[string]any
	if err := json.Unmarshal(want, &events); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	for _, e := range events {
		switch e["ph"] {
		case "M":
			if e["name"] != "thread_name" {
				t.Errorf("metadata event with name %v", e["name"])
			}
			args, ok := e["args"].(map[string]any)
			if !ok || args["name"] == "" {
				t.Errorf("metadata event lacks args.name: %v", e)
			}
		case "X":
			if _, ok := e["name"].(string); !ok {
				t.Errorf("complete event lacks a name: %v", e)
			}
			if ts, ok := e["ts"].(float64); !ok || ts < 0 {
				t.Errorf("bad ts in %v", e)
			}
			if dur, ok := e["dur"].(float64); !ok || dur < 0 {
				t.Errorf("bad dur in %v", e)
			}
		default:
			t.Errorf("unexpected phase %v in %v", e["ph"], e)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := e[key].(float64); !ok {
				t.Errorf("event lacks numeric %s: %v", key, e)
			}
		}
	}
}
