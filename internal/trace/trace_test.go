package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func sampleTimeline() *Timeline {
	return &Timeline{
		Makespan: 10,
		Entries: []simnet.TraceEntry{
			{Resource: "cpu0", Label: "compute(0, 0)", Start: 0, End: 4},
			{Resource: "cpu0", Label: "isend(0, 0)->(1, 0)", Start: 4, End: 5},
			{Resource: "comm0", Label: "wire-tx(0, 0)->(1, 0)", Start: 5, End: 7},
			{Resource: "cpu1", Label: "recv(1, 0)<-(0, 0)", Start: 7, End: 8},
			{Resource: "cpu1", Label: "compute(1, 0)", Start: 8, End: 10},
		},
	}
}

func TestResources(t *testing.T) {
	tl := sampleTimeline()
	got := tl.Resources()
	want := []string{"comm0", "cpu0", "cpu1"}
	if len(got) != len(want) {
		t.Fatalf("resources = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resources[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestResourcesLexicographic locks the documented ordering contract: plain
// string sort, independent of first-appearance order, with multi-digit names
// ordered lexicographically ("cpu10" before "cpu2").
func TestResourcesLexicographic(t *testing.T) {
	tl := &Timeline{Entries: []simnet.TraceEntry{
		{Resource: "cpu2", Start: 0, End: 1},
		{Resource: "cpu10", Start: 0, End: 1},
		{Resource: "bus", Start: 1, End: 2},
		{Resource: "cpu2", Start: 1, End: 2},
	}}
	got := tl.Resources()
	want := []string{"bus", "cpu10", "cpu2"}
	if len(got) != len(want) {
		t.Fatalf("resources = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resources[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGanttRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 resources + axis
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "C") || !strings.Contains(lines[1], "S") {
		t.Errorf("cpu0 row missing compute/send glyphs: %s", lines[1])
	}
	if !strings.Contains(lines[0], "w") {
		t.Errorf("comm0 row missing wire glyph: %s", lines[0])
	}
	if !strings.Contains(lines[2], "R") {
		t.Errorf("cpu1 row missing recv glyph: %s", lines[2])
	}
	if !strings.Contains(out, "10s") {
		t.Errorf("axis missing makespan: %s", lines[3])
	}
}

func TestGanttEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	tl := &Timeline{}
	if err := tl.Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty timeline not reported")
	}
}

func TestGanttNarrowWidthClamped(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().Gantt(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output for narrow width")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv has %d lines, want 6", len(lines))
	}
	if lines[0] != "resource,label,start,end" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "cpu0,compute(0, 0),0,4") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestBusyFraction(t *testing.T) {
	bf := sampleTimeline().BusyFraction()
	if bf["cpu0"] != 0.5 { // (4 + 1) / 10
		t.Errorf("cpu0 busy = %g, want 0.5", bf["cpu0"])
	}
	if bf["comm0"] != 0.2 {
		t.Errorf("comm0 busy = %g, want 0.2", bf["comm0"])
	}
	if len((&Timeline{}).BusyFraction()) != 0 {
		t.Error("empty timeline busy fractions not empty")
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]byte{
		"compute(0)": 'C', "isendX": 'S', "sendY": 'S',
		"irecvZ": 'R', "recvW": 'R', "wire-tx": 'w', "kcopy-rx": 'k', "other": '#',
	}
	for label, want := range cases {
		if got := classify(label); got != want {
			t.Errorf("classify(%q) = %c, want %c", label, got, want)
		}
	}
}

func TestSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().SVG(&buf, 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "cpu0", "comm0", "<rect", "compute(0, 0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// One background rect per resource plus one rect per entry.
	if got := strings.Count(out, "<rect"); got != 3+5 {
		t.Errorf("rect count = %d, want 8", got)
	}
	// Narrow width is clamped without error.
	buf.Reset()
	if err := sampleTimeline().SVG(&buf, 1); err != nil {
		t.Fatal(err)
	}
	// Empty timeline renders a valid document.
	buf.Reset()
	if err := (&Timeline{}).SVG(&buf, 200); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("empty timeline svg invalid")
	}
}

func TestPhaseBreakdown(t *testing.T) {
	pb := sampleTimeline().PhaseBreakdown()
	if pb["compute"] != 6 { // 4 + 2
		t.Errorf("compute = %g, want 6", pb["compute"])
	}
	if pb["send"] != 1 || pb["recv"] != 1 || pb["wire"] != 2 {
		t.Errorf("breakdown = %v", pb)
	}
	if len((&Timeline{}).PhaseBreakdown()) != 0 {
		t.Error("empty timeline breakdown not empty")
	}
}

func TestChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTimeline().ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 3 metadata events + 5 activities.
	if len(events) != 8 {
		t.Fatalf("got %d events, want 8", len(events))
	}
	var completes int
	for _, e := range events {
		if e["ph"] == "X" {
			completes++
			if e["dur"].(float64) <= 0 {
				t.Errorf("non-positive duration in %v", e)
			}
		}
	}
	if completes != 5 {
		t.Errorf("got %d complete events, want 5", completes)
	}
}
