// Package trace renders simulation timelines in several formats: ASCII Gantt
// charts and standalone SVG documents for quick inspection, CSV for external
// plotting, the Chrome/Perfetto trace-event JSON format for interactive
// exploration (ChromeTrace; `tilebench trace` is the CLI entry point), and a
// per-phase busy-time breakdown (PhaseBreakdown) mirroring the paper's Fig. 4
// decomposition. All of them visualize the receive/compute/send structure of
// the two schedules (the paper's Figs. 1 and 2); aggregate phase accounting —
// overlap efficiency, per-resource busy/idle — lives in internal/obs.
package trace
