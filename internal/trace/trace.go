package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simnet"
)

// Timeline is a set of trace entries plus the horizon they cover.
type Timeline struct {
	Entries  []simnet.TraceEntry
	Makespan float64
}

// New builds a Timeline from a simulation result.
func New(r simnet.Result) *Timeline {
	return &Timeline{Entries: r.Trace, Makespan: r.Makespan}
}

// Resources returns the distinct resource names sorted lexicographically —
// a deterministic order for identical entry sets, independent of appearance
// order. Note the sort is plain string ordering, so "cpu10" precedes "cpu2";
// every renderer in this package keys rows by name, and the obs package owns
// numerically-aware ordering. Locked by TestResourcesLexicographic.
func (t *Timeline) Resources() []string {
	seen := map[string]bool{}
	var names []string
	for _, e := range t.Entries {
		if !seen[e.Resource] {
			seen[e.Resource] = true
			names = append(names, e.Resource)
		}
	}
	sort.Strings(names)
	return names
}

// classify maps an activity label to a single Gantt glyph.
func classify(label string) byte {
	switch {
	case strings.HasPrefix(label, "compute"):
		return 'C'
	case strings.HasPrefix(label, "isend"), strings.HasPrefix(label, "send"):
		return 'S'
	case strings.HasPrefix(label, "irecv"), strings.HasPrefix(label, "recv"):
		return 'R'
	case strings.HasPrefix(label, "wire"):
		return 'w'
	case strings.HasPrefix(label, "kcopy"):
		return 'k'
	default:
		return '#'
	}
}

// Gantt writes an ASCII Gantt chart of the timeline, one row per resource,
// `width` columns spanning [0, Makespan]. Legend: C compute, S send-side
// CPU, R receive-side CPU, w wire, k kernel copy, '.' idle.
func (t *Timeline) Gantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	if t.Makespan <= 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	names := t.Resources()
	rows := make(map[string][]byte, len(names))
	for _, n := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		rows[n] = row
	}
	scale := float64(width) / t.Makespan
	for _, e := range t.Entries {
		row := rows[e.Resource]
		lo := int(e.Start * scale)
		hi := int(e.End * scale)
		if hi >= width {
			hi = width - 1
		}
		if lo > hi {
			lo = hi
		}
		g := classify(e.Label)
		for i := lo; i <= hi; i++ {
			row[i] = g
		}
	}
	maxName := 0
	for _, n := range names {
		if len(n) > maxName {
			maxName = len(n)
		}
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", maxName, n, rows[n]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s\n", maxName, "", width-1, fmt.Sprintf("%.4gs", t.Makespan))
	return err
}

// CSV writes the raw entries as "resource,label,start,end" rows with a
// header, for external plotting.
func (t *Timeline) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "resource,label,start,end"); err != nil {
		return err
	}
	for _, e := range t.Entries {
		if _, err := fmt.Fprintf(w, "%s,%s,%.9g,%.9g\n", e.Resource, e.Label, e.Start, e.End); err != nil {
			return err
		}
	}
	return nil
}

// BusyFraction returns, per resource, the fraction of the makespan it was
// occupied.
func (t *Timeline) BusyFraction() map[string]float64 {
	out := map[string]float64{}
	if t.Makespan <= 0 {
		return out
	}
	for _, e := range t.Entries {
		out[e.Resource] += (e.End - e.Start) / t.Makespan
	}
	return out
}

// svgPalette maps Gantt glyphs to fill colors.
var svgPalette = map[byte]string{
	'C': "#4878d0", // compute
	'S': "#ee854a", // send-side CPU
	'R': "#6acc64", // recv-side CPU
	'w': "#d65f5f", // wire
	'k': "#956cb4", // kernel copy
	'#': "#8c8c8c",
}

// SVG writes the timeline as a standalone SVG document: one row per
// resource, activities as colored rectangles. width is the drawing width in
// pixels (rows are 22 px tall).
func (t *Timeline) SVG(w io.Writer, width int) error {
	if width < 100 {
		width = 100
	}
	names := t.Resources()
	const rowH, labelW, pad = 22, 90, 4
	height := len(names)*rowH + 30
	if _, err := fmt.Fprintf(w,
		"<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" font-family=\"monospace\" font-size=\"11\">\n",
		width+labelW+2*pad, height); err != nil {
		return err
	}
	row := make(map[string]int, len(names))
	for i, n := range names {
		row[n] = i
		fmt.Fprintf(w, "  <text x=\"%d\" y=\"%d\">%s</text>\n", pad, i*rowH+15, n)
		fmt.Fprintf(w, "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#f5f5f5\"/>\n",
			labelW, i*rowH+2, width, rowH-4)
	}
	if t.Makespan > 0 {
		scale := float64(width) / t.Makespan
		for _, e := range t.Entries {
			x := labelW + int(e.Start*scale)
			wd := int((e.End - e.Start) * scale)
			if wd < 1 {
				wd = 1
			}
			fmt.Fprintf(w, "  <rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"><title>%s [%.6g, %.6g]</title></rect>\n",
				x, row[e.Resource]*rowH+2, wd, rowH-4, svgPalette[classify(e.Label)], e.Label, e.Start, e.End)
		}
	}
	fmt.Fprintf(w, "  <text x=\"%d\" y=\"%d\">0 .. %.6gs</text>\n", labelW, len(names)*rowH+20, t.Makespan)
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}

// PhaseBreakdown aggregates total busy time per activity class (compute,
// send-side CPU, recv-side CPU, kernel copies, wire) across all resources —
// the "where does the time go" summary behind the paper's Fig. 4
// decomposition.
func (t *Timeline) PhaseBreakdown() map[string]float64 {
	names := map[byte]string{
		'C': "compute", 'S': "send", 'R': "recv", 'k': "kernel-copy", 'w': "wire", '#': "other",
	}
	out := map[string]float64{}
	for _, e := range t.Entries {
		out[names[classify(e.Label)]] += e.End - e.Start
	}
	return out
}

// ChromeTrace writes the timeline in the Chrome/Perfetto trace-event JSON
// format (one complete-event per activity, one "thread" per resource), so a
// simulated schedule can be inspected interactively in ui.perfetto.dev or
// chrome://tracing. Timestamps are emitted in microseconds.
func (t *Timeline) ChromeTrace(w io.Writer) error {
	names := t.Resources()
	tid := make(map[string]int, len(names))
	for i, n := range names {
		tid[n] = i + 1
	}
	if _, err := fmt.Fprint(w, "["); err != nil {
		return err
	}
	// Thread-name metadata events.
	for i, n := range names {
		if i > 0 {
			if _, err := fmt.Fprint(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`,
			tid[n], n); err != nil {
			return err
		}
	}
	for _, e := range t.Entries {
		if _, err := fmt.Fprintf(w,
			`,{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}`,
			e.Label, tid[e.Resource], e.Start*1e6, (e.End-e.Start)*1e6); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "]")
	return err
}
