package mp

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzFrameDecode drives the TCP frame decoder with arbitrary bytes: a
// corrupt or truncated frame must return an error — never panic, and never
// allocate anywhere near the length a hostile header claims.
func FuzzFrameDecode(f *testing.F) {
	// Seed corpus: a valid empty frame, a valid payload frame, a truncated
	// payload, a negative length, an oversized length, and a bad source.
	frame := func(src, tag, n int32, payload []byte) []byte {
		var hdr [12]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(src))
		binary.BigEndian.PutUint32(hdr[4:8], uint32(tag))
		binary.BigEndian.PutUint32(hdr[8:12], uint32(n))
		return append(hdr[:], payload...)
	}
	f.Add(frame(1, 0, 0, nil))
	f.Add(frame(2, 7, 5, []byte("hello")))
	f.Add(frame(2, 7, 500, []byte("truncated")))
	f.Add(frame(0, ctlAbort, 6, append([]byte{0, 0, 0, 3}, "x"...)))
	f.Add(frame(1, 0, -1, nil))
	f.Add(frame(1, 0, 1<<30, nil))
	f.Add(frame(-1, 0, 0, nil))
	f.Add(frame(99, 0, 0, nil))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	const worldSize = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		src, _, payload, err := decodeFrame(bytes.NewReader(data), worldSize)
		if err != nil {
			return
		}
		if src < 0 || src >= worldSize {
			t.Fatalf("decodeFrame accepted out-of-range source %d", src)
		}
		if len(data) < 12 {
			t.Fatalf("decodeFrame succeeded on a %d-byte input (header is 12)", len(data))
		}
		want := int(int32(binary.BigEndian.Uint32(data[8:12])))
		if len(payload) != want {
			t.Fatalf("payload length %d != declared %d", len(payload), want)
		}
		if !bytes.Equal(payload, data[12:12+want]) {
			t.Fatal("payload does not match input bytes")
		}
	})
}
