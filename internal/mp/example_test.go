package mp_test

import (
	"fmt"
	"log"

	"repro/internal/mp"
)

// ExampleLaunch runs a two-rank exchange on the in-process fabric: rank 0
// sends, rank 1 receives and reduces with rank 0 via AllReduce.
func ExampleLaunch() {
	err := mp.Launch(2, func(c mp.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("tile faces")); err != nil {
				return err
			}
		} else {
			buf := make([]byte, 32)
			st, err := c.Recv(0, 7, buf)
			if err != nil {
				return err
			}
			fmt.Printf("rank 1 got %q from rank %d\n", buf[:st.Bytes], st.Source)
		}
		sum, err := mp.AllReduce(c, []float64{float64(c.Rank() + 1)}, mp.OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("allreduce sum = %g\n", sum[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// rank 1 got "tile faces" from rank 0
	// allreduce sum = 3
}
