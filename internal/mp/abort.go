package mp

import "sync"

// aborter is the once-only abort latch shared by all blocking machinery of
// a communicator. The first abort stores the error and closes the channel;
// blocked operations select on done() and pick the error up via cause().
type aborter struct {
	mu  sync.Mutex
	ch  chan struct{}
	err *AbortError
}

func newAborter() *aborter { return &aborter{ch: make(chan struct{})} }

// abort latches e; only the first call wins. Reports whether this call was
// the one that latched.
func (a *aborter) abort(e *AbortError) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return false
	}
	a.err = e
	close(a.ch)
	return true
}

// done returns a channel closed once the communicator is aborted.
func (a *aborter) done() <-chan struct{} { return a.ch }

// cause returns the latched abort error, or nil while not aborted.
func (a *aborter) cause() *AbortError {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// abortChildren returns the ranks this rank must forward an abort to, on
// the binomial dissemination tree rooted at origin: the same log-depth tree
// the collectives use, so the poison reaches all ranks in ⌈log2 size⌉ hops.
// Virtual rank v's children are v+2^k for every power of two 2^k > v.
func abortChildren(rank, origin, size int) []int {
	v := vrank(rank, origin, size)
	var out []int
	for mask := 1; mask < size; mask <<= 1 {
		if v < mask && v+mask < size {
			out = append(out, arank(v+mask, origin, size))
		}
	}
	return out
}
