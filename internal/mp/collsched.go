package mp

import "fmt"

// Pluggable collective schedules. The binomial-tree collectives of
// collectives.go minimize the number of rounds for short messages; for long
// payloads the bandwidth term dominates and round-scheduled algorithms
// (scatter + recursive-doubling allgather for broadcast, recursive-halving
// reduce-scatter for reductions — the direction of Träff's optimal-depth
// round schedules) move ~2n bytes per rank in 2⌈log₂p⌉ rounds instead of
// n⌈log₂p⌉. On a hierarchical machine (internal/topo), a leaders-first
// two-stage schedule keeps all cross-switch traffic in one phase.
//
// Every schedule is a drop-in replacement: payloads and — crucially —
// reduction results are bit-identical to the binomial schedule's. Floating
// point reduction is not associative, so this is a property of the combine
// trees, not of arithmetic: the round-scheduled reduce-scatter combines
// partials over exactly the balanced vrank-range tree the binomial reduce
// builds (pairs, then pairs of pairs, always op(lowerRankPartial,
// higherRankPartial)), and the two-stage hierarchical reduction over
// power-of-two groups evaluates that same tree with the rounds merely
// reordered. Shapes where the trees would diverge never engage: the
// selection rules below fall back to binomial, so callers can switch
// schedules per topology without ever changing results. DESIGN.md §12
// documents the rules; the property tests in collsched_test.go enforce the
// bit-identity rank by rank.

// Schedule selects the communication structure of a collective.
type Schedule int

const (
	// ScheduleAuto picks per call: hierarchical when the topology hint
	// qualifies, round-scheduled for power-of-two sizes with non-degenerate
	// blocks, binomial otherwise.
	ScheduleAuto Schedule = iota
	// ScheduleBinomial is the classic binomial tree of collectives.go:
	// ⌈log₂p⌉ rounds, full payload per round. Always eligible.
	ScheduleBinomial
	// ScheduleRound is the round-scheduled long-message family: broadcast
	// as binomial scatter + recursive-doubling allgather, reduce as
	// recursive-halving reduce-scatter + gather, allreduce as
	// reduce-scatter + allgather (halving-doubling). 2⌈log₂p⌉ rounds,
	// ~2n bytes per rank. Engages only when Size() is a power of two;
	// otherwise the call falls back to binomial.
	ScheduleRound
	// ScheduleHierarchical is the topology-aware two-stage schedule over
	// CollectiveOpts.GroupSize-sized rank groups (one group per edge
	// switch): broadcast runs the cross-switch leader stage first and then
	// fans out inside every switch; reduction concentrates inside each
	// switch and then combines leaders. Engages only when GroupSize and
	// Size()/GroupSize are both powers of two (the shape where the
	// two-stage combine tree is bit-identical to the flat binomial one);
	// otherwise the call falls back to binomial.
	ScheduleHierarchical
)

func (s Schedule) String() string {
	switch s {
	case ScheduleAuto:
		return "auto"
	case ScheduleBinomial:
		return "binomial"
	case ScheduleRound:
		return "round"
	case ScheduleHierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// CollectiveOpts carries the schedule choice and the topology hint.
type CollectiveOpts struct {
	Schedule Schedule
	// GroupSize is the topology hint for ScheduleHierarchical (and Auto):
	// how many consecutive ranks share an edge switch (topo.Spec.GroupSize
	// of level 0). Groups are formed in the root-rotated virtual rank
	// space, so the stage structure is independent of the root. 0 means no
	// hint.
	GroupSize int
}

// Reserved tag bases for the scheduled collectives (one 4096-tag band each,
// continuing the collectives.go bands).
const (
	tagRoundBcastS = 1<<28 + 3*4096 + iota*4096 // scatter phase
	tagRoundBcastG                              // allgather phase
	tagRoundRedS                                // reduce-scatter phase
	tagRoundRedG                                // gather phase
	tagHierL                                    // hierarchical leader stage
	tagHierI                                    // hierarchical intra stage
)

// pow2 reports whether n is a positive power of two.
func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// hierEligible reports whether the two-stage schedule may engage: proper
// power-of-two groups partitioning a power-of-two world evaluate the same
// combine tree as the flat binomial schedule.
func hierEligible(size, g int) bool {
	return g > 1 && g < size && size%g == 0 && pow2(g) && pow2(size/g)
}

// pick resolves Auto against the communicator size and topology hint.
func (o CollectiveOpts) pick(size int) Schedule {
	switch o.Schedule {
	case ScheduleAuto:
		if hierEligible(size, o.GroupSize) {
			return ScheduleHierarchical
		}
		if pow2(size) && size > 1 {
			return ScheduleRound
		}
		return ScheduleBinomial
	default:
		return o.Schedule
	}
}

// BcastOpts is Bcast under an explicit schedule choice. All ranks must pass
// the same opts.
func BcastOpts(c Comm, root int, buf []byte, o CollectiveOpts) error {
	size := c.Size()
	if err := checkRank(root, size, "root"); err != nil {
		return err
	}
	if size == 1 {
		return nil
	}
	switch o.pick(size) {
	case ScheduleRound:
		if pow2(size) {
			return roundBcast(c, root, buf)
		}
	case ScheduleHierarchical:
		if hierEligible(size, o.GroupSize) {
			return hierBcast(c, root, buf, o.GroupSize)
		}
	}
	return Bcast(c, root, buf)
}

// ReduceOpts is Reduce under an explicit schedule choice. The result on root
// is bit-identical across schedules for any (even non-associative) op.
func ReduceOpts(c Comm, root int, in []float64, op ReduceOp, o CollectiveOpts) ([]float64, error) {
	size := c.Size()
	if err := checkRank(root, size, "root"); err != nil {
		return nil, err
	}
	if op == nil {
		return nil, fmt.Errorf("mp: nil reduce op")
	}
	switch o.pick(size) {
	case ScheduleRound:
		if pow2(size) && size > 1 {
			return roundReduce(c, root, in, op)
		}
	case ScheduleHierarchical:
		if hierEligible(size, o.GroupSize) {
			return hierReduce(c, root, in, op, o.GroupSize)
		}
	}
	return Reduce(c, root, in, op)
}

// AllReduceOpts is AllReduce under an explicit schedule choice; every rank
// receives bits identical to the binomial AllReduce's.
func AllReduceOpts(c Comm, in []float64, op ReduceOp, o CollectiveOpts) ([]float64, error) {
	size := c.Size()
	if op == nil {
		return nil, fmt.Errorf("mp: nil reduce op")
	}
	switch o.pick(size) {
	case ScheduleRound:
		if pow2(size) && size > 1 {
			return roundAllReduce(c, in, op)
		}
	case ScheduleHierarchical:
		if hierEligible(size, o.GroupSize) {
			res, err := hierReduce(c, 0, in, op, o.GroupSize)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, 8*len(in))
			if c.Rank() == 0 {
				packFloats(buf, res)
			}
			if err := hierBcast(c, 0, buf, o.GroupSize); err != nil {
				return nil, err
			}
			return unpackFloats(buf), nil
		}
	}
	return AllReduce(c, in, op)
}

// roundBcast broadcasts by binomial scatter + recursive-doubling allgather.
// size must be a power of two. Block i of a length-n payload is
// buf[i·n/p : (i+1)·n/p] — integer offsets, monotone, exhaustive — so no
// length is unrepresentable and short payloads degrade to empty blocks.
func roundBcast(c Comm, root int, buf []byte) error {
	size := c.Size()
	v := vrank(c.Rank(), root, size)
	n := len(buf)
	off := func(i int) int { return i * n / size }

	// Scatter (masks descending): a holder v (multiple of 2·mask) owns
	// blocks [v, v+2·mask) and hands the upper half to v+mask.
	for mask := size >> 1; mask >= 1; mask >>= 1 {
		if v&(2*mask-1) == 0 {
			peer := v + mask
			s, e := off(peer), off(v+2*mask)
			if err := c.Send(arank(peer, root, size), tagRoundBcastS, buf[s:e]); err != nil {
				return err
			}
		} else if v&(mask-1) == 0 {
			peer := v - mask
			s, e := off(v), off(v+mask)
			st, err := c.Recv(arank(peer, root, size), tagRoundBcastS, buf[s:e])
			if err != nil {
				return err
			}
			if st.Bytes != e-s {
				return fmt.Errorf("mp: bcast scatter size mismatch: got %d, want %d", st.Bytes, e-s)
			}
		}
	}
	// Allgather (recursive doubling, masks ascending): v holds the
	// contiguous blocks [v&^(mask−1), +mask) and swaps ranges with v^mask.
	for mask := 1; mask < size; mask <<= 1 {
		peer := v ^ mask
		base := v &^ (mask - 1)
		pbase := peer &^ (mask - 1)
		sLo, sHi := off(base), off(base+mask)
		rLo, rHi := off(pbase), off(pbase+mask)
		st, err := Sendrecv(c,
			arank(peer, root, size), tagRoundBcastG, buf[sLo:sHi],
			arank(peer, root, size), tagRoundBcastG, buf[rLo:rHi])
		if err != nil {
			return err
		}
		if st.Bytes != rHi-rLo {
			return fmt.Errorf("mp: bcast allgather size mismatch: got %d, want %d", st.Bytes, rHi-rLo)
		}
	}
	return nil
}

// reduceScatter runs the recursive-halving reduce-scatter on acc (in the
// root-rotated vrank space) and returns the block index (in block units)
// this rank ends up owning — the bit-reversal of v. The combine tree per
// element is exactly the binomial reduce's balanced tree: at mask the two
// halves of a rank pair carry op-combined partials of the contiguous vrank
// ranges [.., v) and [v, ..), and the lower rank's partial is always the
// first operand.
func reduceScatter(c Comm, root, tag int, acc []float64, op ReduceOp) (int, error) {
	size := c.Size()
	v := vrank(c.Rank(), root, size)
	n := len(acc)
	off := func(i int) int { return i * n / size }
	sendBuf := make([]byte, 8*((n+1)/2+1))
	recvBuf := make([]byte, 8*((n+1)/2+1))

	lo, sz := 0, size // owned block range, in block units
	for mask := 1; mask < size; mask <<= 1 {
		half := sz / 2
		peer := v ^ mask
		keepLo, sendLo := lo, lo+half
		if v&mask != 0 {
			keepLo, sendLo = lo+half, lo
		}
		sLo, sHi := off(sendLo), off(sendLo+half)
		kLo, kHi := off(keepLo), off(keepLo+half)
		packFloats(sendBuf[:8*(sHi-sLo)], acc[sLo:sHi])
		ap := arank(peer, root, size)
		st, err := Sendrecv(c, ap, tag, sendBuf[:8*(sHi-sLo)], ap, tag, recvBuf[:8*(kHi-kLo)])
		if err != nil {
			return 0, err
		}
		if st.Bytes != 8*(kHi-kLo) {
			return 0, fmt.Errorf("mp: reduce-scatter size mismatch: got %d, want %d", st.Bytes, 8*(kHi-kLo))
		}
		other := unpackFloats(recvBuf[:8*(kHi-kLo)])
		if v&mask == 0 {
			// This rank is the lower half of the pair: its partial covers
			// the lower vrank range and stays the first operand.
			for i := range other {
				acc[kLo+i] = op(acc[kLo+i], other[i])
			}
		} else {
			for i := range other {
				acc[kLo+i] = op(other[i], acc[kLo+i])
			}
		}
		lo, sz = keepLo, half
	}
	return lo, nil
}

// roundReduce reduces by recursive-halving reduce-scatter followed by a
// binomial gather of the scattered blocks onto the root. size must be a
// power of two. The result bits on root equal the binomial Reduce's.
func roundReduce(c Comm, root int, in []float64, op ReduceOp) ([]float64, error) {
	size := c.Size()
	v := vrank(c.Rank(), root, size)
	acc := append([]float64(nil), in...)
	n := len(in)
	off := func(i int) int { return i * n / size }

	lo, err := reduceScatter(c, root, tagRoundRedS, acc, op)
	if err != nil {
		return nil, err
	}
	// Gather (masks descending). Invariant: before the mask step, every
	// live vrank w < 2·mask owns the contiguous blocks [lo(w), lo(w)+sz)
	// with sz = p/(2·mask) blocks, and lo(w+mask) == lo(w)+sz — the
	// bit-reversal permutation of the scatter makes the upper partner's
	// range land exactly after the lower's, so appends stay contiguous.
	buf := make([]byte, 8*n)
	sz := 1
	for mask := size >> 1; mask >= 1; mask >>= 1 {
		if v >= mask && v < 2*mask {
			sLo, sHi := off(lo), off(lo+sz)
			packFloats(buf[:8*(sHi-sLo)], acc[sLo:sHi])
			return nil, c.Send(arank(v-mask, root, size), tagRoundRedG, buf[:8*(sHi-sLo)])
		}
		if v < mask {
			rLo, rHi := off(lo+sz), off(lo+2*sz)
			st, err := c.Recv(arank(v+mask, root, size), tagRoundRedG, buf[:8*(rHi-rLo)])
			if err != nil {
				return nil, err
			}
			if st.Bytes != 8*(rHi-rLo) {
				return nil, fmt.Errorf("mp: reduce gather size mismatch: got %d, want %d", st.Bytes, 8*(rHi-rLo))
			}
			copy(acc[rLo:rHi], unpackFloats(buf[:8*(rHi-rLo)]))
			sz *= 2
		}
	}
	return acc, nil
}

// roundAllReduce is the halving-doubling allreduce: reduce-scatter, then an
// allgather that retraces the scatter's splits in reverse so every append
// stays contiguous. size must be a power of two; every rank's result bits
// equal the binomial AllReduce's.
func roundAllReduce(c Comm, in []float64, op ReduceOp) ([]float64, error) {
	size := c.Size()
	v := c.Rank() // root 0: vrank == rank
	acc := append([]float64(nil), in...)
	n := len(in)
	off := func(i int) int { return i * n / size }

	lo, err := reduceScatter(c, 0, tagRoundRedS, acc, op)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8*n)
	sz := 1
	for mask := size >> 1; mask >= 1; mask >>= 1 {
		peer := v ^ mask
		sLo, sHi := off(lo), off(lo+sz)
		var rLo, rHi int
		if v&mask == 0 {
			// The partner kept the upper half at the scatter's mask step,
			// so its range sits immediately above ours.
			rLo, rHi = off(lo+sz), off(lo+2*sz)
		} else {
			rLo, rHi = off(lo-sz), off(lo)
			lo -= sz
		}
		packFloats(buf[:8*(sHi-sLo)], acc[sLo:sHi])
		st, err := Sendrecv(c, peer, tagRoundRedG, buf[:8*(sHi-sLo)],
			peer, tagRoundRedG, buf[8*(sHi-sLo):8*(sHi-sLo)+8*(rHi-rLo)])
		if err != nil {
			return nil, err
		}
		if st.Bytes != 8*(rHi-rLo) {
			return nil, fmt.Errorf("mp: allreduce allgather size mismatch: got %d, want %d", st.Bytes, 8*(rHi-rLo))
		}
		copy(acc[rLo:rHi], unpackFloats(buf[8*(sHi-sLo):8*(sHi-sLo)+8*(rHi-rLo)]))
		sz *= 2
	}
	return acc, nil
}

// bcastSpan runs a binomial broadcast over the vrank arithmetic span
// base+i·stride, i ∈ [0, count), rooted at span member 0. Ranks outside the
// span return immediately.
func bcastSpan(c Comm, root, base, stride, count, tag int, buf []byte) error {
	size := c.Size()
	me := vrank(c.Rank(), root, size)
	if me < base || (me-base)%stride != 0 {
		return nil
	}
	i := (me - base) / stride
	if i >= count {
		return nil
	}
	a := func(j int) int { return arank(base+j*stride, root, size) }
	for mask := 1; mask < count; mask <<= 1 {
		if i < mask {
			if peer := i + mask; peer < count {
				if err := c.Send(a(peer), tag, buf); err != nil {
					return err
				}
			}
		} else if i < mask<<1 {
			st, err := c.Recv(a(i-mask), tag, buf)
			if err != nil {
				return err
			}
			if st.Bytes != len(buf) {
				return fmt.Errorf("mp: bcast size mismatch: got %d, buffer %d", st.Bytes, len(buf))
			}
		}
	}
	return nil
}

// reduceSpan runs a binomial reduction over the span base+i·stride into
// member 0's acc (modified in place). Non-member ranks and members that
// hand off their partial return done=false.
func reduceSpan(c Comm, root, base, stride, count, tag int, acc []float64, op ReduceOp) (done bool, err error) {
	size := c.Size()
	me := vrank(c.Rank(), root, size)
	if me < base || (me-base)%stride != 0 {
		return false, nil
	}
	i := (me - base) / stride
	if i >= count {
		return false, nil
	}
	a := func(j int) int { return arank(base+j*stride, root, size) }
	buf := make([]byte, 8*len(acc))
	for mask := 1; mask < count; mask <<= 1 {
		if i&mask != 0 {
			packFloats(buf, acc)
			return false, c.Send(a(i-mask), tag, buf)
		}
		if peer := i + mask; peer < count {
			st, err := c.Recv(a(peer), tag, buf)
			if err != nil {
				return false, err
			}
			if st.Bytes != len(buf) {
				return false, fmt.Errorf("mp: reduce size mismatch from rank %d", st.Source)
			}
			other := unpackFloats(buf)
			for j := range acc {
				acc[j] = op(acc[j], other[j])
			}
		}
	}
	return true, nil
}

// hierBcast broadcasts in two stages over g-rank groups of the vrank space:
// the leader stage moves the payload across switches first (vranks 0, g,
// 2g, …, a binomial tree over group leaders — the long-haul hops all start
// immediately), then every leader fans out inside its own switch.
func hierBcast(c Comm, root int, buf []byte, g int) error {
	size := c.Size()
	v := vrank(c.Rank(), root, size)
	if err := bcastSpan(c, root, 0, g, size/g, tagHierL, buf); err != nil {
		return err
	}
	group := v / g
	return bcastSpan(c, root, group*g, 1, g, tagHierI, buf)
}

// hierReduce reduces in two stages: inside every switch onto the group
// leader, then across leaders onto the root. Over power-of-two groups of a
// power-of-two world this evaluates exactly the binomial reduce's combine
// tree — the intra stage is its low-mask rounds, the leader stage its
// high-mask rounds — so the root's bits match the flat schedule's.
func hierReduce(c Comm, root int, in []float64, op ReduceOp, g int) ([]float64, error) {
	size := c.Size()
	v := vrank(c.Rank(), root, size)
	acc := append([]float64(nil), in...)
	group := v / g
	lead, err := reduceSpan(c, root, group*g, 1, g, tagHierI, acc, op)
	if err != nil {
		return nil, err
	}
	if !lead {
		return nil, nil
	}
	done, err := reduceSpan(c, root, 0, g, size/g, tagHierL, acc, op)
	if err != nil || !done {
		return nil, err
	}
	return acc, nil
}
