package mp

import (
	"fmt"
	"sync"
	"time"
)

// World is an in-process communicator fabric: Size ranks backed by
// goroutines in one address space, with a shared mailbox per rank.
type World struct {
	n      int
	opts   WorldOptions
	boxes  []*mailbox
	comms  []*inprocComm
	bar    barrier
	ab     *aborter
	mu     sync.Mutex
	closed bool
}

// WorldOptions tunes the in-process fabric.
type WorldOptions struct {
	// RendezvousThreshold switches sends of payloads strictly larger than
	// this many bytes to rendezvous (synchronous) mode: the send request
	// completes only when the receiver matches it, like MPICH's large-
	// message protocol. Negative (the default via NewWorld) means always
	// eager; 0 means every send is rendezvous.
	RendezvousThreshold int
	// Deadline, when positive, bounds every blocking wait (Recv,
	// Request.Wait, Barrier) on every rank: a wait that exceeds it fails
	// with ErrDeadline. Zero (the default) means waits block forever.
	Deadline time.Duration
}

// NewWorld creates an all-eager fabric with n ranks and returns the
// per-rank endpoints.
func NewWorld(n int) (*World, []Comm, error) {
	return NewWorldOpts(n, WorldOptions{RendezvousThreshold: -1})
}

// NewWorldOpts is NewWorld with explicit options.
func NewWorldOpts(n int, opts WorldOptions) (*World, []Comm, error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("mp: world size must be positive, got %d", n)
	}
	w := &World{n: n, opts: opts, boxes: make([]*mailbox, n), comms: make([]*inprocComm, n), ab: newAborter()}
	w.bar.init(n)
	comms := make([]Comm, n)
	for i := 0; i < n; i++ {
		w.boxes[i] = &mailbox{}
		w.comms[i] = &inprocComm{world: w, rank: i}
		comms[i] = w.comms[i]
	}
	return w, comms, nil
}

// Close shuts down the fabric; pending receives fail with ErrClosed.
func (w *World) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	for _, mb := range w.boxes {
		mb.close()
	}
	w.bar.close()
	return nil
}

// abort poisons every mailbox and the barrier with e; shared memory plays
// the role of the TCP transport's dissemination tree.
func (w *World) abort(e *AbortError) {
	if !w.ab.abort(e) {
		return
	}
	for _, mb := range w.boxes {
		mb.poison(e)
	}
	w.bar.fail(e)
}

// Launch runs fn on every rank of a fresh n-rank world, one goroutine per
// rank, and waits for all to finish. It returns the first non-nil error by
// rank order. The world is closed before returning.
func Launch(n int, fn func(c Comm) error) error {
	return LaunchOpts(n, WorldOptions{RendezvousThreshold: -1}, fn)
}

// LaunchOpts is Launch on a world with explicit options.
func LaunchOpts(n int, opts WorldOptions, fn func(c Comm) error) error {
	w, comms, err := NewWorldOpts(n, opts)
	if err != nil {
		return err
	}
	defer w.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(comms[rank])
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("mp: rank %d: %w", i, e)
		}
	}
	return nil
}

// inprocComm is one rank's endpoint of a World.
type inprocComm struct {
	world  *World
	rank   int
	mu     sync.Mutex
	closed bool
}

func (c *inprocComm) Rank() int { return c.rank }
func (c *inprocComm) Size() int { return c.world.n }

func (c *inprocComm) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *inprocComm) Send(dst, tag int, data []byte) error {
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c *inprocComm) Isend(dst, tag int, data []byte) (Request, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if err := checkRank(dst, c.world.n, "destination"); err != nil {
		return nil, err
	}
	if err := checkTag(tag, false); err != nil {
		return nil, err
	}
	// Copy the payload so the caller may reuse its buffer immediately (the
	// MPI system-buffer copy of the paper's A1/B3).
	cp := make([]byte, len(data))
	copy(cp, data)
	e := &envelope{src: c.rank, tag: tag, data: cp}
	if t := c.world.opts.RendezvousThreshold; t >= 0 && len(data) > t {
		// Rendezvous mode: the request completes when the receiver matches.
		e.matched = newSendOp()
		e.matched.deadline = c.world.opts.Deadline
		if err := c.world.boxes[dst].deliver(e); err != nil {
			return nil, err
		}
		return e.matched, nil
	}
	err := c.world.boxes[dst].deliver(e)
	return sendReq{err: err}, err
}

func (c *inprocComm) Recv(src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

func (c *inprocComm) Irecv(src, tag int, buf []byte) (Request, error) {
	if c.isClosed() {
		return nil, ErrClosed
	}
	if err := checkSource(src, c.world.n); err != nil {
		return nil, err
	}
	if err := checkTag(tag, true); err != nil {
		return nil, err
	}
	op := newRecvOp(src, tag, buf)
	op.deadline = c.world.opts.Deadline
	if err := c.world.boxes[c.rank].post(op); err != nil {
		return nil, err
	}
	return op, nil
}

func (c *inprocComm) Barrier() error {
	if c.isClosed() {
		return ErrClosed
	}
	return c.world.bar.await(c.world.opts.Deadline)
}

func (c *inprocComm) Abort(cause error) error {
	if c.isClosed() {
		return ErrClosed
	}
	c.world.abort(&AbortError{Rank: c.rank, Cause: cause})
	return nil
}

func (c *inprocComm) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// barrier is a reusable n-party barrier. A latched failure (close or abort)
// releases current waiters and fails all future arrivals.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	failErr error
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

// await blocks until all n parties arrive. With a positive deadline the
// wait is bounded: on expiry this party withdraws its arrival (so a phantom
// arrival cannot complete a later generation) and returns ErrDeadline.
func (b *barrier) await(deadline time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failErr != nil {
		return b.failErr
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	var expired bool
	if deadline > 0 {
		timer := time.AfterFunc(deadline, func() {
			b.mu.Lock()
			expired = true
			b.cond.Broadcast()
			b.mu.Unlock()
		})
		defer timer.Stop()
	}
	for gen == b.gen && b.failErr == nil {
		if expired {
			b.count--
			return ErrDeadline
		}
		b.cond.Wait()
	}
	if b.failErr != nil && gen == b.gen {
		return b.failErr
	}
	return nil
}

// fail latches err (first failure wins) and releases every waiter.
func (b *barrier) fail(err error) {
	b.mu.Lock()
	if b.failErr == nil {
		b.failErr = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) close() { b.fail(ErrClosed) }
