package mp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// ErrInjected is the error returned by operations a FaultyComm decided to
// fail — a stand-in for a connection reset by a dead peer.
var ErrInjected = errors.New("mp: injected fault (connection reset)")

// Fault-decision streams, kept disjoint per purpose like fault.Plan's.
const (
	faultyStreamDrop int64 = 1 + iota
	faultyStreamDelay
	faultyStreamDelayDur
)

// FaultyComm wraps a Comm and deterministically injects communication
// faults: per-operation delivery delays, silently dropped sends, and
// injected connection-reset errors after a chosen operation count. It has
// the same drop-in shape as CountingComm and exists so robustness of code
// built on mp (runner, tilenode) is testable without real packet loss.
//
// Decisions derive from fault.Unit hashes of (Seed, rank, operation index):
// the same seed and call sequence replays the same fault pattern. Delays
// are real wall-clock sleeps (this layer runs real code, not the
// simulator), so only their selection — not their precise timing — is
// deterministic.
type FaultyComm struct {
	Comm
	// Seed selects the fault pattern.
	Seed uint64
	// DelayProb is the probability an operation is delayed; Delay is the
	// maximum injected delay.
	DelayProb float64
	Delay     time.Duration
	// DropProb is the probability a Send/Isend is silently dropped: the
	// call reports success, the receiver never sees the message. Only for
	// tests that expect to time out or count deliveries — a dropped
	// message deadlocks a peer blocked in Recv.
	DropProb float64
	// ResetAfter, when positive, fails every operation past the first
	// ResetAfter with ErrInjected — a rank dying mid-run.
	ResetAfter int64

	ops atomic.Int64
}

// WithFaults wraps c with a fault injector.
func WithFaults(c Comm, seed uint64) *FaultyComm {
	return &FaultyComm{Comm: c, Seed: seed}
}

// next advances the operation counter and applies the reset and delay
// decisions shared by every operation type.
func (f *FaultyComm) next() (idx int64, err error) {
	idx = f.ops.Add(1)
	if f.ResetAfter > 0 && idx > f.ResetAfter {
		return idx, fmt.Errorf("%w after %d ops", ErrInjected, f.ResetAfter)
	}
	if f.DelayProb > 0 && f.Delay > 0 &&
		fault.Unit(f.Seed, faultyStreamDelay, int64(f.Rank()), idx) < f.DelayProb {
		u := fault.Unit(f.Seed, faultyStreamDelayDur, int64(f.Rank()), idx)
		time.Sleep(time.Duration(u * float64(f.Delay)))
	}
	return idx, nil
}

// dropped decides whether send operation idx is lost.
func (f *FaultyComm) dropped(idx int64) bool {
	return f.DropProb > 0 &&
		fault.Unit(f.Seed, faultyStreamDrop, int64(f.Rank()), idx) < f.DropProb
}

// Ops returns how many operations passed through the injector.
func (f *FaultyComm) Ops() int64 { return f.ops.Load() }

// Send implements Comm.
func (f *FaultyComm) Send(dst, tag int, data []byte) error {
	idx, err := f.next()
	if err != nil {
		return err
	}
	if f.dropped(idx) {
		return nil
	}
	return f.Comm.Send(dst, tag, data)
}

// Isend implements Comm.
func (f *FaultyComm) Isend(dst, tag int, data []byte) (Request, error) {
	idx, err := f.next()
	if err != nil {
		return nil, err
	}
	if f.dropped(idx) {
		return sendReq{}, nil // completes immediately; the bytes evaporate
	}
	return f.Comm.Isend(dst, tag, data)
}

// Recv implements Comm.
func (f *FaultyComm) Recv(src, tag int, buf []byte) (Status, error) {
	if _, err := f.next(); err != nil {
		return Status{}, err
	}
	return f.Comm.Recv(src, tag, buf)
}

// Irecv implements Comm.
func (f *FaultyComm) Irecv(src, tag int, buf []byte) (Request, error) {
	if _, err := f.next(); err != nil {
		return nil, err
	}
	return f.Comm.Irecv(src, tag, buf)
}

// Barrier implements Comm.
func (f *FaultyComm) Barrier() error {
	if _, err := f.next(); err != nil {
		return err
	}
	return f.Comm.Barrier()
}
