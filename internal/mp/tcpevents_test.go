package mp

import (
	"sync"
	"testing"
	"time"
)

// eventLog collects TCPEvents concurrently; OnEvent is called from dial,
// accept, and send goroutines simultaneously.
type eventLog struct {
	mu     sync.Mutex
	events []TCPEvent
}

func (l *eventLog) record(ev TCPEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) count(kind TCPEventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func (l *eventLog) find(kind TCPEventKind) (TCPEvent, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return TCPEvent{}, false
}

// TestTCPEventsConnect: a mesh-up where the dialer starts before the
// listener must surface the retries as EvDialRetry (with increasing
// attempt numbers and non-nil errors), then EvDialOK on the dialer and
// EvAcceptOK on the listener.
func TestTCPEventsConnect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	logs := [2]eventLog{}
	comms := make([]Comm, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	run := func(rank int, delay time.Duration) {
		defer wg.Done()
		time.Sleep(delay)
		opts := &TCPOptions{
			DialTimeout: 10 * time.Second,
			DialBackoff: 5 * time.Millisecond,
			OnEvent:     logs[rank].record,
		}
		comms[rank], errs[rank] = ConnectTCP(rank, 2, addrs, opts)
	}
	wg.Add(2)
	go run(1, 0)                    // dialer starts immediately and must retry
	go run(0, 200*time.Millisecond) // listener shows up late
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		defer comms[rank].Close()
	}

	if n := logs[1].count(EvDialRetry); n == 0 {
		t.Error("dialer recorded no EvDialRetry despite the late listener")
	}
	retry, _ := logs[1].find(EvDialRetry)
	if retry.Peer != 0 || retry.Err == nil {
		t.Errorf("EvDialRetry = %+v, want Peer 0 and a non-nil Err", retry)
	}
	ok, found := logs[1].find(EvDialOK)
	if !found {
		t.Fatal("dialer recorded no EvDialOK")
	}
	if ok.Peer != 0 || ok.Attempt < 1 || ok.Err != nil {
		t.Errorf("EvDialOK = %+v, want Peer 0, Attempt >= 1, nil Err", ok)
	}
	acc, found := logs[0].find(EvAcceptOK)
	if !found {
		t.Fatal("listener recorded no EvAcceptOK")
	}
	if acc.Peer != 1 || acc.Err != nil {
		t.Errorf("EvAcceptOK = %+v, want Peer 1, nil Err", acc)
	}
	// A clean same-machine mesh-up must not report transport failures.
	for rank := range logs {
		for _, kind := range []TCPEventKind{EvHandshakeErr, EvWriteErr} {
			if n := logs[rank].count(kind); n != 0 {
				t.Errorf("rank %d recorded %d %v events on a clean mesh-up", rank, n, kind)
			}
		}
	}
}

// TestTCPEventsWriteErr: a frame write on a dead connection must emit
// EvWriteErr naming the destination before Send returns the error.
func TestTCPEventsWriteErr(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var log eventLog
	comms := make([]Comm, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			opts := &TCPOptions{DialTimeout: 5 * time.Second}
			if rank == 0 {
				opts.OnEvent = log.record
			}
			comms[rank], errs[rank] = ConnectTCP(rank, 2, addrs, opts)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		defer comms[rank].Close()
	}

	// Kill the underlying socket out from under rank 0, then Send: the
	// frame write must fail and be reported.
	c0 := comms[0].(*tcpComm)
	c0.conns[1].conn.Close()
	if err := c0.Send(1, 7, []byte("doomed")); err == nil {
		t.Fatal("Send on a closed connection succeeded")
	}
	ev, found := log.find(EvWriteErr)
	if !found {
		t.Fatal("no EvWriteErr recorded for the failed Send")
	}
	if ev.Peer != 1 || ev.Err == nil {
		t.Errorf("EvWriteErr = %+v, want Peer 1 and a non-nil Err", ev)
	}
}

// TestTCPEventKindString: the String form is what ends up in logs and
// metric keys; lock the names.
func TestTCPEventKindString(t *testing.T) {
	want := map[TCPEventKind]string{
		EvDialRetry:    "dial-retry",
		EvDialOK:       "dial-ok",
		EvAcceptOK:     "accept-ok",
		EvHandshakeErr: "handshake-err",
		EvWriteErr:     "write-err",
	}
	for kind, name := range want {
		if got := kind.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", kind, got, name)
		}
	}
	if got := TCPEventKind(99).String(); got == "" {
		t.Error("unknown kind should still stringify")
	}
}
