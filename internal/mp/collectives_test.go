package mp

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < n; root += max(1, n/3) {
			payload := []byte(fmt.Sprintf("broadcast from %d of %d", root, n))
			err := Launch(n, func(c Comm) error {
				buf := make([]byte, len(payload))
				if c.Rank() == root {
					copy(buf, payload)
				}
				if err := Bcast(c, root, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), buf)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBcastBadRoot(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		return Bcast(c, 5, []byte{1})
	})
	if err == nil {
		t.Error("bad root accepted")
	}
}

func TestReduceSum(t *testing.T) {
	const n = 7
	err := Launch(n, func(c Comm) error {
		in := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
		res, err := Reduce(c, 0, in, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if res != nil {
				return fmt.Errorf("non-root got a result")
			}
			return nil
		}
		// Σr = 21, Σ1 = 7, Σr² = 91 for r in 0..6.
		want := []float64{21, 7, 91}
		for i := range want {
			if res[i] != want[i] {
				return fmt.Errorf("res[%d] = %g, want %g", i, res[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceNonZeroRoot(t *testing.T) {
	const n = 4
	err := Launch(n, func(c Comm) error {
		res, err := Reduce(c, 2, []float64{1}, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() == 2 && res[0] != 4 {
			return fmt.Errorf("sum = %g, want 4", res[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	const n = 5
	err := Launch(n, func(c Comm) error {
		in := []float64{float64(c.Rank())}
		mx, err := Reduce(c, 0, in, OpMax)
		if err != nil {
			return err
		}
		mn, err := Reduce(c, 0, in, OpMin)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if mx[0] != 4 || mn[0] != 0 {
				return fmt.Errorf("max %g min %g", mx[0], mn[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceNilOp(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		_, err := Reduce(c, 0, []float64{1}, nil)
		if err == nil {
			return fmt.Errorf("nil op accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	const n = 6
	err := Launch(n, func(c Comm) error {
		res, err := AllReduce(c, []float64{float64(c.Rank() + 1)}, OpSum)
		if err != nil {
			return err
		}
		if res[0] != 21 { // 1+2+…+6
			return fmt.Errorf("rank %d allreduce = %g, want 21", c.Rank(), res[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBytesSized(t *testing.T) {
	const n = 5
	err := Launch(n, func(c Comm) error {
		block := []byte{byte(c.Rank()), byte(c.Rank() * 2), byte(c.Rank() * 3)}
		out, err := GatherBytesSized(c, 0, block, 3)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got blocks")
			}
			return nil
		}
		for r := 0; r < n; r++ {
			want := []byte{byte(r), byte(r * 2), byte(r * 3)}
			if !bytes.Equal(out[r], want) {
				return fmt.Errorf("block %d = %v, want %v", r, out[r], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherBytesVariableSizes(t *testing.T) {
	const n = 4
	err := Launch(n, func(c Comm) error {
		block := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		out, err := GatherBytes(c, 0, block)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		for r := 0; r < n; r++ {
			if len(out[r]) != r+1 {
				return fmt.Errorf("block %d has %d bytes, want %d", r, len(out[r]), r+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherSizedMismatch(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		_, err := GatherBytesSized(c, 0, []byte{1, 2}, 3)
		if err == nil {
			return fmt.Errorf("size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Repeated collectives with the same tags must not interfere (FIFO
	// non-overtaking keeps rounds ordered).
	const n = 4
	err := Launch(n, func(c Comm) error {
		for round := 0; round < 20; round++ {
			buf := []byte{byte(round)}
			if c.Rank() != 0 {
				buf[0] = 0xFF
			}
			if err := Bcast(c, 0, buf); err != nil {
				return err
			}
			if buf[0] != byte(round) {
				return fmt.Errorf("round %d: got %d", round, buf[0])
			}
			sum, err := AllReduce(c, []float64{float64(round)}, OpSum)
			if err != nil {
				return err
			}
			if sum[0] != float64(round*n) {
				return fmt.Errorf("round %d: sum %g", round, sum[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackFloats(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	buf := make([]byte, 8*len(xs))
	packFloats(buf, xs)
	got := unpackFloats(buf)
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("roundtrip[%d] = %g, want %g", i, got[i], xs[i])
		}
	}
}

func TestCollectivesOverTCP(t *testing.T) {
	err := launchTCP(t, 4, func(c Comm) error {
		sum, err := AllReduce(c, []float64{1}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 4 {
			return fmt.Errorf("allreduce over tcp = %g", sum[0])
		}
		buf := []byte{0}
		if c.Rank() == 1 {
			buf[0] = 42
		}
		if err := Bcast(c, 1, buf); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("bcast over tcp = %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const n = 5
	err := Launch(n, func(c Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		buf := make([]byte, 1)
		st, err := Sendrecv(c, next, 1, []byte{byte(c.Rank())}, prev, 1, buf)
		if err != nil {
			return err
		}
		if st.Source != prev || buf[0] != byte(prev) {
			return fmt.Errorf("rank %d got %d from %d", c.Rank(), buf[0], st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRingUnderRendezvous(t *testing.T) {
	// The classic deadlock scenario: every rank sends right and receives
	// left with synchronous sends. Sendrecv's non-blocking issue order
	// must keep the ring alive.
	const n = 4
	err := LaunchOpts(n, WorldOptions{RendezvousThreshold: 0}, func(c Comm) error {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() + n - 1) % n
		buf := make([]byte, 1)
		_, err := Sendrecv(c, next, 1, []byte{byte(c.Rank())}, prev, 1, buf)
		if err != nil {
			return err
		}
		if buf[0] != byte(prev) {
			return fmt.Errorf("wrong payload")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvProcNull(t *testing.T) {
	// Edge ranks pass -1 like MPI_PROC_NULL: only the active side runs.
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			_, err := Sendrecv(c, 1, 1, []byte{42}, -1, 1, nil)
			return err
		}
		buf := make([]byte, 1)
		st, err := Sendrecv(c, -1, 1, nil, 0, 1, buf)
		if err != nil {
			return err
		}
		if st.Bytes != 1 || buf[0] != 42 {
			return fmt.Errorf("bad receive")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	const n = 6
	err := Launch(n, func(c Comm) error {
		block := []byte{byte(c.Rank()), byte(c.Rank() * 10)}
		out, err := AllGather(c, block, 2)
		if err != nil {
			return err
		}
		if len(out) != n {
			return fmt.Errorf("got %d blocks", len(out))
		}
		for r := 0; r < n; r++ {
			if out[r][0] != byte(r) || out[r][1] != byte(r*10) {
				return fmt.Errorf("rank %d sees wrong block for %d: %v", c.Rank(), r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
