package mp

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// chaoticOp is deliberately non-commutative and non-associative: any change
// in the combine tree's shape or operand order changes the result bits, so
// bit-equality across schedules proves the trees are identical.
var chaoticOp ReduceOp = func(a, b float64) float64 { return a - b/3 }

// schedCases enumerates the schedule/hint combinations the property tests
// sweep, including shapes where the non-binomial schedules must fall back.
func schedCases(size int) []CollectiveOpts {
	return []CollectiveOpts{
		{Schedule: ScheduleBinomial},
		{Schedule: ScheduleRound},
		{Schedule: ScheduleHierarchical, GroupSize: 2},
		{Schedule: ScheduleHierarchical, GroupSize: 4},
		{Schedule: ScheduleHierarchical, GroupSize: 3}, // never eligible: fallback
		{Schedule: ScheduleAuto, GroupSize: size / 2},
		{Schedule: ScheduleAuto},
	}
}

// TestScheduledBcastDeliversEverywhere: every schedule delivers the root's
// exact payload on every rank, over power-of-two and fallback sizes, odd
// payload lengths (including empty and shorter-than-size) and all roots.
func TestScheduledBcastDeliversEverywhere(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, plen := range []int{0, 1, 5, n, 37, 256} {
			payload := make([]byte, plen)
			for i := range payload {
				payload[i] = byte(i*31 + n)
			}
			for root := 0; root < n; root += max(1, n/3) {
				for _, o := range schedCases(n) {
					o := o
					err := Launch(n, func(c Comm) error {
						buf := make([]byte, len(payload))
						if c.Rank() == root {
							copy(buf, payload)
						}
						if err := BcastOpts(c, root, buf, o); err != nil {
							return err
						}
						if !bytes.Equal(buf, payload) {
							return fmt.Errorf("rank %d got wrong payload under %v", c.Rank(), o.Schedule)
						}
						return nil
					})
					if err != nil {
						t.Fatalf("n=%d len=%d root=%d opts=%+v: %v", n, plen, root, o, err)
					}
				}
			}
		}
	}
}

// TestScheduledReduceBitIdentical: the root's result bits under every
// schedule equal the binomial schedule's, for a non-associative op — the
// acceptance property that lets topology-driven schedule switches never
// change numerics.
func TestScheduledReduceBitIdentical(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8, 16} {
		for _, vlen := range []int{1, 3, 8, 17} {
			for root := 0; root < n; root += max(1, n/2) {
				for _, o := range schedCases(n) {
					o := o
					err := Launch(n, func(c Comm) error {
						in := make([]float64, vlen)
						for i := range in {
							in[i] = float64(c.Rank()*vlen+i)*1.25 + 0.1
						}
						want, err := Reduce(c, root, in, chaoticOp)
						if err != nil {
							return err
						}
						got, err := ReduceOpts(c, root, in, chaoticOp, o)
						if err != nil {
							return err
						}
						if c.Rank() != root {
							if got != nil {
								return fmt.Errorf("non-root rank %d got a result", c.Rank())
							}
							return nil
						}
						for i := range want {
							if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
								return fmt.Errorf("%v: elem %d = %x, binomial %x",
									o.Schedule, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
							}
						}
						return nil
					})
					if err != nil {
						t.Fatalf("n=%d len=%d root=%d opts=%+v: %v", n, vlen, root, o, err)
					}
				}
			}
		}
	}
}

// TestScheduledAllReduceBitIdentical: every rank's allreduce result bits
// match the binomial AllReduce's under every schedule.
func TestScheduledAllReduceBitIdentical(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8, 16} {
		for _, vlen := range []int{1, 4, 13} {
			for _, o := range schedCases(n) {
				o := o
				err := Launch(n, func(c Comm) error {
					in := make([]float64, vlen)
					for i := range in {
						in[i] = math.Sqrt(float64(c.Rank()+1)) * float64(i+1)
					}
					want, err := AllReduce(c, in, chaoticOp)
					if err != nil {
						return err
					}
					got, err := AllReduceOpts(c, in, chaoticOp, o)
					if err != nil {
						return err
					}
					for i := range want {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							return fmt.Errorf("rank %d %v: elem %d = %x, binomial %x",
								c.Rank(), o.Schedule, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
						}
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d len=%d opts=%+v: %v", n, vlen, o, err)
				}
			}
		}
	}
}

// TestScheduledCollectivesUnderFaultDelays: random message delays perturb
// timing but not results — the schedules' matching discipline (reserved
// tags + non-overtaking) keeps payloads and reduction bits intact.
func TestScheduledCollectivesUnderFaultDelays(t *testing.T) {
	const n = 8
	for _, o := range []CollectiveOpts{
		{Schedule: ScheduleRound},
		{Schedule: ScheduleHierarchical, GroupSize: 4},
	} {
		o := o
		err := Launch(n, func(c Comm) error {
			f := WithFaults(c, uint64(11+c.Rank()))
			f.DelayProb = 0.4
			f.Delay = time.Millisecond
			in := []float64{float64(c.Rank()) + 0.5, -float64(c.Rank() * 3)}
			want, err := AllReduce(c, in, chaoticOp) // fault-free reference
			if err != nil {
				return err
			}
			got, err := AllReduceOpts(f, in, chaoticOp, o)
			if err != nil {
				return err
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					return fmt.Errorf("rank %d: delayed %v result drifted", c.Rank(), o.Schedule)
				}
			}
			payload := []byte("delayed but intact")
			buf := make([]byte, len(payload))
			if c.Rank() == 2 {
				copy(buf, payload)
			}
			if err := BcastOpts(f, 2, buf, o); err != nil {
				return err
			}
			if !bytes.Equal(buf, payload) {
				return fmt.Errorf("rank %d: delayed bcast corrupted", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("opts=%+v: %v", o, err)
		}
	}
}

// TestScheduledCollectivesAbortPoison: an abort fired mid-collective
// unblocks every rank of the round and hierarchical schedules with
// ErrAborted — the scheduled paths inherit the Comm contract because they
// are built purely from Send/Recv/Sendrecv.
func TestScheduledCollectivesAbortPoison(t *testing.T) {
	const n = 8
	for _, o := range []CollectiveOpts{
		{Schedule: ScheduleRound},
		{Schedule: ScheduleHierarchical, GroupSize: 4},
	} {
		o := o
		cause := errors.New("deliberate failure")
		err := Launch(n, func(c Comm) error {
			if c.Rank() == n-1 {
				return c.Abort(cause)
			}
			_, err := AllReduceOpts(c, []float64{1, 2, 3}, OpSum, o)
			if !errors.Is(err, ErrAborted) || !errors.Is(err, cause) {
				return fmt.Errorf("rank %d: got %v, want ErrAborted wrapping the cause", c.Rank(), err)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("opts=%+v: %v", o, err)
		}
	}
}
