// Package mp is a from-scratch message-passing layer standing in for MPI
// (the paper's substrate; no mature MPI binding exists for Go, so the
// reproduction builds its own).
//
// It provides the primitives the paper's pseudocode uses — blocking
// Send/Recv (ProcB) and non-blocking Isend/Irecv + Wait (ProcNB) — with
// MPI-style matching on (source, tag) including wildcards, FIFO
// non-overtaking order per (source, tag), and a Barrier.
//
// Two transports implement Comm:
//
//   - the in-process transport (NewWorld/Launch): ranks are goroutines
//     sharing a matching fabric; this is the default substrate for the
//     examples and the wall-clock comparison of the two schedules;
//   - the TCP transport (ConnectTCP): ranks are separate processes meshed
//     over TCP sockets via the net package, for multi-process runs.
//
// Like MPI, the collective operations and Barrier require every rank to
// participate: a rank that errors out and returns early while its peers sit
// in a barrier deadlocks the world until it is closed. Structure per-rank
// code so that validation failures happen on every rank (deterministic
// configuration checks before the first collective), as runner does.
package mp

import (
	"errors"
	"fmt"
)

// Wildcards for Recv/Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mp: communicator closed")

// ErrTruncated is returned when an incoming message is larger than the
// receive buffer (like MPI_ERR_TRUNCATE).
var ErrTruncated = errors.New("mp: message truncated (receive buffer too small)")

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Request is a handle on a non-blocking operation.
type Request interface {
	// Wait blocks until the operation completes and returns its status.
	// For sends the Status is zero-valued.
	Wait() (Status, error)
	// Test reports whether the operation has completed without blocking.
	Test() (bool, Status, error)
}

// Comm is one rank's endpoint of a communicator.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to dst with the given tag, blocking until the
	// message is buffered for delivery (eager/buffered semantics, like
	// MPI_Send on small messages).
	Send(dst, tag int, data []byte) error
	// Recv blocks until a matching message arrives and copies it into buf.
	// src may be AnySource, tag may be AnyTag.
	Recv(src, tag int, buf []byte) (Status, error)
	// Isend starts a non-blocking send.
	Isend(dst, tag int, data []byte) (Request, error)
	// Irecv posts a non-blocking receive into buf.
	Irecv(src, tag int, buf []byte) (Request, error)
	// Barrier blocks until every rank has entered the barrier.
	Barrier() error
	// Close releases the endpoint. Further operations fail with ErrClosed.
	Close() error
}

// WaitAll waits on every request, returning the first error encountered
// (after waiting on all of them, like MPI_Waitall).
func WaitAll(reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func checkRank(rank, size int, what string) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mp: %s rank %d out of range [0,%d)", what, rank, size)
	}
	return nil
}

func checkSource(src, size int) error {
	if src == AnySource {
		return nil
	}
	return checkRank(src, size, "source")
}

func checkTag(tag int, allowAny bool) error {
	if tag >= 0 {
		return nil
	}
	if allowAny && tag == AnyTag {
		return nil
	}
	return fmt.Errorf("mp: invalid tag %d (tags must be >= 0)", tag)
}
