// Package mp is a from-scratch message-passing layer standing in for MPI
// (the paper's substrate; no mature MPI binding exists for Go, so the
// reproduction builds its own).
//
// It provides the primitives the paper's pseudocode uses — blocking
// Send/Recv (ProcB) and non-blocking Isend/Irecv + Wait (ProcNB) — with
// MPI-style matching on (source, tag) including wildcards, FIFO
// non-overtaking order per (source, tag), and a Barrier.
//
// Two transports implement Comm:
//
//   - the in-process transport (NewWorld/Launch): ranks are goroutines
//     sharing a matching fabric; this is the default substrate for the
//     examples and the wall-clock comparison of the two schedules;
//   - the TCP transport (ConnectTCP): ranks are separate processes meshed
//     over TCP sockets via the net package, for multi-process runs.
//
// # Failure handling
//
// Like MPI, the collective operations and Barrier require every rank to
// participate, but unlike classical MPI a stuck or dead peer does not wedge
// the world forever. Three mechanisms bound every blocking operation:
//
//   - Deadlines: a per-communicator default deadline (WorldOptions.Deadline,
//     TCPOptions.Deadline) bounds each blocking wait — Recv, Request.Wait,
//     Barrier — which then fails with ErrDeadline instead of blocking
//     forever. A deadline-expired receive is withdrawn from the matching
//     queue; the message it would have matched stays deliverable to a later
//     receive.
//
//   - Cooperative abort: any rank may call Comm.Abort(cause). The abort is
//     disseminated over a log-depth binomial tree (on the TCP transport;
//     in-process it is a shared-memory poison), and every rank's pending and
//     future operations — point-to-point, collectives, and Barrier — fail
//     with an *AbortError carrying the origin rank and cause
//     (errors.Is(err, ErrAborted) reports true). Runner code calls Abort on
//     any mid-run error so peers unblock promptly instead of deadlocking.
//
//   - Failure detection (TCP): TCPOptions.Heartbeat starts a liveness probe
//     on a reserved control tag; a peer silent for HeartbeatMiss intervals
//     triggers an abort naming it. Connection loss is an even faster signal:
//     with AbortOnDisconnect (implied by heartbeats), a peer that vanishes
//     without the shutdown handshake aborts the world immediately.
//
// Deterministic configuration validation should still happen on every rank
// before the first collective (as runner does): a validation failure is then
// reported identically everywhere without any abort traffic.
package mp

import (
	"errors"
	"fmt"
)

// Wildcards for Recv/Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mp: communicator closed")

// ErrTruncated is returned when an incoming message is larger than the
// receive buffer (like MPI_ERR_TRUNCATE).
var ErrTruncated = errors.New("mp: message truncated (receive buffer too small)")

// ErrDeadline is returned by blocking operations that exceeded the
// communicator's configured deadline (WorldOptions.Deadline or
// TCPOptions.Deadline). The operation is withdrawn: a receive that timed
// out no longer matches incoming messages.
var ErrDeadline = errors.New("mp: deadline exceeded")

// ErrAborted is the sentinel matched (via errors.Is) by the *AbortError
// returned from every operation after a communicator abort.
var ErrAborted = errors.New("mp: world aborted")

// AbortError reports that the world was aborted: Rank is the origin rank
// that called Abort (or that a failure detector declared dead), Cause the
// reason it gave. errors.Is(err, ErrAborted) reports true for it.
type AbortError struct {
	Rank  int
	Cause error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("mp: world aborted by rank %d: %v", e.Rank, e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrAborted) match any AbortError.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Request is a handle on a non-blocking operation.
type Request interface {
	// Wait blocks until the operation completes and returns its status.
	// For sends the Status is zero-valued.
	Wait() (Status, error)
	// Test reports whether the operation has completed without blocking.
	Test() (bool, Status, error)
}

// Comm is one rank's endpoint of a communicator.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to dst with the given tag, blocking until the
	// message is buffered for delivery (eager/buffered semantics, like
	// MPI_Send on small messages).
	Send(dst, tag int, data []byte) error
	// Recv blocks until a matching message arrives and copies it into buf.
	// src may be AnySource, tag may be AnyTag.
	Recv(src, tag int, buf []byte) (Status, error)
	// Isend starts a non-blocking send.
	Isend(dst, tag int, data []byte) (Request, error)
	// Irecv posts a non-blocking receive into buf.
	Irecv(src, tag int, buf []byte) (Request, error)
	// Barrier blocks until every rank has entered the barrier.
	Barrier() error
	// Abort poisons the whole communicator: every rank's pending and
	// future blocking operations fail with an *AbortError carrying this
	// rank and the given cause. Only the first abort wins; later calls are
	// no-ops. Safe to call from any goroutine, including while other
	// operations on the same endpoint block.
	Abort(cause error) error
	// Close releases the endpoint. Further operations fail with ErrClosed.
	Close() error
}

// WaitAll waits on every request, returning the first error encountered
// (after waiting on all of them, like MPI_Waitall).
func WaitAll(reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func checkRank(rank, size int, what string) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mp: %s rank %d out of range [0,%d)", what, rank, size)
	}
	return nil
}

func checkSource(src, size int) error {
	if src == AnySource {
		return nil
	}
	return checkRank(src, size, "source")
}

func checkTag(tag int, allowAny bool) error {
	if tag >= 0 {
		return nil
	}
	if allowAny && tag == AnyTag {
		return nil
	}
	return fmt.Errorf("mp: invalid tag %d (tags must be >= 0)", tag)
}
