package mp

import (
	"errors"
	"fmt"
)

// Wildcards for Recv/Irecv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mp: communicator closed")

// ErrTruncated is returned when an incoming message is larger than the
// receive buffer (like MPI_ERR_TRUNCATE).
var ErrTruncated = errors.New("mp: message truncated (receive buffer too small)")

// ErrDeadline is returned by blocking operations that exceeded the
// communicator's configured deadline (WorldOptions.Deadline or
// TCPOptions.Deadline). The operation is withdrawn: a receive that timed
// out no longer matches incoming messages.
var ErrDeadline = errors.New("mp: deadline exceeded")

// ErrAborted is the sentinel matched (via errors.Is) by the *AbortError
// returned from every operation after a communicator abort.
var ErrAborted = errors.New("mp: world aborted")

// ErrStaleEpoch is the sentinel matched (via errors.Is) by the *EpochError
// a connect handshake returns when the two endpoints belong to different
// world generations (TCPOptions.Epoch).
var ErrStaleEpoch = errors.New("mp: stale world epoch")

// AbortError reports that the world was aborted: Rank is the origin rank
// that called Abort (or that a failure detector declared dead), Cause the
// reason it gave. errors.Is(err, ErrAborted) reports true for it.
type AbortError struct {
	Rank  int
	Cause error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("mp: world aborted by rank %d: %v", e.Rank, e.Cause)
}

func (e *AbortError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrAborted) match any AbortError.
func (e *AbortError) Is(target error) bool { return target == ErrAborted }

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Request is a handle on a non-blocking operation.
type Request interface {
	// Wait blocks until the operation completes and returns its status.
	// For sends the Status is zero-valued.
	Wait() (Status, error)
	// Test reports whether the operation has completed without blocking.
	Test() (bool, Status, error)
}

// Comm is one rank's endpoint of a communicator.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to dst with the given tag, blocking until the
	// message is buffered for delivery (eager/buffered semantics, like
	// MPI_Send on small messages).
	Send(dst, tag int, data []byte) error
	// Recv blocks until a matching message arrives and copies it into buf.
	// src may be AnySource, tag may be AnyTag.
	Recv(src, tag int, buf []byte) (Status, error)
	// Isend starts a non-blocking send.
	Isend(dst, tag int, data []byte) (Request, error)
	// Irecv posts a non-blocking receive into buf.
	Irecv(src, tag int, buf []byte) (Request, error)
	// Barrier blocks until every rank has entered the barrier.
	Barrier() error
	// Abort poisons the whole communicator: every rank's pending and
	// future blocking operations fail with an *AbortError carrying this
	// rank and the given cause. Only the first abort wins; later calls are
	// no-ops. Safe to call from any goroutine, including while other
	// operations on the same endpoint block.
	Abort(cause error) error
	// Close releases the endpoint. Further operations fail with ErrClosed.
	Close() error
}

// WaitAll waits on every request, returning the first error encountered
// (after waiting on all of them, like MPI_Waitall).
func WaitAll(reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func checkRank(rank, size int, what string) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mp: %s rank %d out of range [0,%d)", what, rank, size)
	}
	return nil
}

func checkSource(src, size int) error {
	if src == AnySource {
		return nil
	}
	return checkRank(src, size, "source")
}

func checkTag(tag int, allowAny bool) error {
	if tag >= 0 {
		return nil
	}
	if allowAny && tag == AnyTag {
		return nil
	}
	return fmt.Errorf("mp: invalid tag %d (tags must be >= 0)", tag)
}
