package mp

import "sync"

// envelope is a message in flight.
type envelope struct {
	src  int
	tag  int
	data []byte // owned copy
	// matched, when non-nil, is signalled once a receive consumes the
	// envelope — the completion hook for rendezvous-mode sends.
	matched *sendOp
}

// sendOp is the waitable handle of a rendezvous send: it completes when the
// receiver matches the message, like MPI's synchronous-mode MPI_Ssend.
type sendOp struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
	err  error
}

func newSendOp() *sendOp {
	op := &sendOp{}
	op.cond = sync.NewCond(&op.mu)
	return op
}

func (op *sendOp) complete(err error) {
	op.mu.Lock()
	if !op.done {
		op.done = true
		op.err = err
		op.cond.Broadcast()
	}
	op.mu.Unlock()
}

// Wait implements Request for rendezvous sends.
func (op *sendOp) Wait() (Status, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	for !op.done {
		op.cond.Wait()
	}
	return Status{}, op.err
}

// Test implements Request for rendezvous sends.
func (op *sendOp) Test() (bool, Status, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if !op.done {
		return false, Status{}, nil
	}
	return true, Status{}, op.err
}

// recvOp is a posted receive awaiting a match.
type recvOp struct {
	src int // AnySource allowed
	tag int // AnyTag allowed
	buf []byte

	mu     sync.Mutex
	done   bool
	status Status
	err    error
	cond   *sync.Cond
}

func newRecvOp(src, tag int, buf []byte) *recvOp {
	op := &recvOp{src: src, tag: tag, buf: buf}
	op.cond = sync.NewCond(&op.mu)
	return op
}

func (op *recvOp) matches(e *envelope) bool {
	if op.src != AnySource && op.src != e.src {
		return false
	}
	if op.tag != AnyTag && op.tag != e.tag {
		return false
	}
	return true
}

// complete copies the envelope into the buffer and wakes the waiter.
func (op *recvOp) complete(e *envelope) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if len(e.data) > len(op.buf) {
		op.err = ErrTruncated
	} else {
		copy(op.buf, e.data)
	}
	op.status = Status{Source: e.src, Tag: e.tag, Bytes: len(e.data)}
	op.done = true
	op.cond.Broadcast()
}

func (op *recvOp) fail(err error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if !op.done {
		op.err = err
		op.done = true
		op.cond.Broadcast()
	}
}

// Wait implements Request for receives.
func (op *recvOp) Wait() (Status, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	for !op.done {
		op.cond.Wait()
	}
	return op.status, op.err
}

// Test implements Request for receives.
func (op *recvOp) Test() (bool, Status, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if !op.done {
		return false, Status{}, nil
	}
	return true, op.status, op.err
}

// mailbox performs MPI-style (source, tag) matching for one rank.
// Unexpected messages queue in arrival order; posted receives queue in post
// order; matching always prefers the oldest candidate, which yields the
// non-overtaking guarantee per (source, tag) pair.
type mailbox struct {
	mu         sync.Mutex
	unexpected []*envelope
	posted     []*recvOp
	closed     bool
}

// deliver hands an incoming envelope to the oldest matching posted receive,
// or queues it as unexpected.
func (mb *mailbox) deliver(e *envelope) error {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		if e.matched != nil {
			e.matched.complete(ErrClosed)
		}
		return ErrClosed
	}
	for i, op := range mb.posted {
		if op.matches(e) {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			mb.mu.Unlock()
			op.complete(e)
			if e.matched != nil {
				e.matched.complete(nil)
			}
			return nil
		}
	}
	mb.unexpected = append(mb.unexpected, e)
	mb.mu.Unlock()
	return nil
}

// post registers a receive, matching it immediately against queued
// unexpected messages if possible.
func (mb *mailbox) post(op *recvOp) error {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return ErrClosed
	}
	for i, e := range mb.unexpected {
		if op.matches(e) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			mb.mu.Unlock()
			op.complete(e)
			if e.matched != nil {
				e.matched.complete(nil)
			}
			return nil
		}
	}
	mb.posted = append(mb.posted, op)
	mb.mu.Unlock()
	return nil
}

// close fails all pending receives and unmatched rendezvous senders.
func (mb *mailbox) close() {
	mb.mu.Lock()
	pend := mb.posted
	unm := mb.unexpected
	mb.posted = nil
	mb.unexpected = nil
	mb.closed = true
	mb.mu.Unlock()
	for _, op := range pend {
		op.fail(ErrClosed)
	}
	for _, e := range unm {
		if e.matched != nil {
			e.matched.complete(ErrClosed)
		}
	}
}

// sendReq is the trivial already-complete Request returned by eager sends.
type sendReq struct{ err error }

func (s sendReq) Wait() (Status, error)       { return Status{}, s.err }
func (s sendReq) Test() (bool, Status, error) { return true, Status{}, s.err }
