package mp

import (
	"sync"
	"time"
)

// envelope is a message in flight.
type envelope struct {
	src  int
	tag  int
	data []byte // owned copy
	// matched, when non-nil, is signalled once a receive consumes the
	// envelope — the completion hook for rendezvous-mode sends.
	matched *sendOp
}

// sendOp is the waitable handle of a rendezvous send: it completes when the
// receiver matches the message, like MPI's synchronous-mode MPI_Ssend.
// Completion is published by closing ch, so waiters can select against a
// deadline timer or an abort latch; err is stable once ch is closed.
type sendOp struct {
	deadline time.Duration // 0 = wait forever

	mu   sync.Mutex
	done bool
	ch   chan struct{}
	err  error
}

func newSendOp() *sendOp {
	return &sendOp{ch: make(chan struct{})}
}

func (op *sendOp) complete(err error) {
	op.mu.Lock()
	if !op.done {
		op.done = true
		op.err = err
		close(op.ch)
	}
	op.mu.Unlock()
}

// Wait implements Request for rendezvous sends. With a deadline configured
// it returns ErrDeadline once the deadline passes; the send itself stays
// pending (the message remains deliverable) and a later Wait can still
// observe its completion.
func (op *sendOp) Wait() (Status, error) {
	select {
	case <-op.ch:
		return Status{}, op.err
	default:
	}
	if op.deadline <= 0 {
		<-op.ch
		return Status{}, op.err
	}
	timer := time.NewTimer(op.deadline)
	defer timer.Stop()
	select {
	case <-op.ch:
		return Status{}, op.err
	case <-timer.C:
		return Status{}, ErrDeadline
	}
}

// Test implements Request for rendezvous sends.
func (op *sendOp) Test() (bool, Status, error) {
	select {
	case <-op.ch:
		return true, Status{}, op.err
	default:
		return false, Status{}, nil
	}
}

// recvOp is a posted receive awaiting a match. Like sendOp it publishes
// completion by closing ch; status/err are stable once ch is closed. mb
// points back at the mailbox the op is posted in so a deadline expiry can
// withdraw it from the matching queue.
type recvOp struct {
	src int // AnySource allowed
	tag int // AnyTag allowed
	buf []byte

	mb       *mailbox
	deadline time.Duration // 0 = wait forever

	mu     sync.Mutex
	done   bool
	ch     chan struct{}
	status Status
	err    error
}

func newRecvOp(src, tag int, buf []byte) *recvOp {
	return &recvOp{src: src, tag: tag, buf: buf, ch: make(chan struct{})}
}

func (op *recvOp) matches(e *envelope) bool {
	if op.src != AnySource && op.src != e.src {
		return false
	}
	if op.tag != AnyTag && op.tag != e.tag {
		return false
	}
	return true
}

// complete copies the envelope into the buffer and wakes the waiter.
func (op *recvOp) complete(e *envelope) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.done {
		return
	}
	if len(e.data) > len(op.buf) {
		op.err = ErrTruncated
	} else {
		copy(op.buf, e.data)
	}
	op.status = Status{Source: e.src, Tag: e.tag, Bytes: len(e.data)}
	op.done = true
	close(op.ch)
}

func (op *recvOp) fail(err error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if !op.done {
		op.err = err
		op.done = true
		close(op.ch)
	}
}

// result reads the settled outcome; callers must only reach it once ch is
// (about to be) closed — it blocks for the tiny deliver→complete window.
func (op *recvOp) result() (Status, error) {
	<-op.ch
	return op.status, op.err
}

// Wait implements Request for receives, honoring the op's deadline: on
// expiry the receive is withdrawn from the mailbox and fails with
// ErrDeadline. A withdrawal that loses the race against an in-flight match
// returns the match instead.
func (op *recvOp) Wait() (Status, error) {
	select {
	case <-op.ch:
		return op.status, op.err
	default:
	}
	if op.deadline <= 0 {
		return op.result()
	}
	timer := time.NewTimer(op.deadline)
	defer timer.Stop()
	select {
	case <-op.ch:
		return op.status, op.err
	case <-timer.C:
		op.mb.cancel(op, ErrDeadline)
		return op.result()
	}
}

// Test implements Request for receives.
func (op *recvOp) Test() (bool, Status, error) {
	select {
	case <-op.ch:
		return true, op.status, op.err
	default:
		return false, Status{}, nil
	}
}

// mailbox performs MPI-style (source, tag) matching for one rank.
// Unexpected messages queue in arrival order; posted receives queue in post
// order; matching always prefers the oldest candidate, which yields the
// non-overtaking guarantee per (source, tag) pair.
type mailbox struct {
	mu         sync.Mutex
	unexpected []*envelope
	posted     []*recvOp
	failErr    error // ErrClosed or an *AbortError; nil while healthy
}

// deliver hands an incoming envelope to the oldest matching posted receive,
// or queues it as unexpected.
func (mb *mailbox) deliver(e *envelope) error {
	mb.mu.Lock()
	if mb.failErr != nil {
		err := mb.failErr
		mb.mu.Unlock()
		if e.matched != nil {
			e.matched.complete(err)
		}
		return err
	}
	for i, op := range mb.posted {
		if op.matches(e) {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			mb.mu.Unlock()
			op.complete(e)
			if e.matched != nil {
				e.matched.complete(nil)
			}
			return nil
		}
	}
	mb.unexpected = append(mb.unexpected, e)
	mb.mu.Unlock()
	return nil
}

// post registers a receive, matching it immediately against queued
// unexpected messages if possible.
func (mb *mailbox) post(op *recvOp) error {
	mb.mu.Lock()
	if mb.failErr != nil {
		err := mb.failErr
		mb.mu.Unlock()
		return err
	}
	op.mb = mb
	for i, e := range mb.unexpected {
		if op.matches(e) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			mb.mu.Unlock()
			op.complete(e)
			if e.matched != nil {
				e.matched.complete(nil)
			}
			return nil
		}
	}
	mb.posted = append(mb.posted, op)
	mb.mu.Unlock()
	return nil
}

// cancel withdraws a posted receive and fails it with err (the deadline
// path). It reports false when the op was no longer posted — i.e. a match
// completed it concurrently, which then takes precedence.
func (mb *mailbox) cancel(op *recvOp, err error) bool {
	mb.mu.Lock()
	for i, o := range mb.posted {
		if o == op {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			mb.mu.Unlock()
			op.fail(err)
			return true
		}
	}
	mb.mu.Unlock()
	return false
}

// poison fails every pending receive and unmatched rendezvous sender with
// err, and makes all future deliver/post calls fail the same way. The first
// poison wins (close() and Abort() both route here).
func (mb *mailbox) poison(err error) {
	mb.mu.Lock()
	if mb.failErr != nil {
		mb.mu.Unlock()
		return
	}
	mb.failErr = err
	pend := mb.posted
	unm := mb.unexpected
	mb.posted = nil
	mb.unexpected = nil
	mb.mu.Unlock()
	for _, op := range pend {
		op.fail(err)
	}
	for _, e := range unm {
		if e.matched != nil {
			e.matched.complete(err)
		}
	}
}

// close fails all pending receives and unmatched rendezvous senders.
func (mb *mailbox) close() { mb.poison(ErrClosed) }

// sendReq is the trivial already-complete Request returned by eager sends.
type sendReq struct{ err error }

func (s sendReq) Wait() (Status, error)       { return Status{}, s.err }
func (s sendReq) Test() (bool, Status, error) { return true, Status{}, s.err }
