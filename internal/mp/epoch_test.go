package mp

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// dialRank0 dials addrs[0] with retries until the listener is up.
func dialRank0(t *testing.T, addr string) net.Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not reach rank 0 listener: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeHello performs the dialer half of the connect handshake by hand and
// returns the epoch the acceptor answered with.
func writeHello(t *testing.T, conn net.Conn, rank int, epoch uint32) uint32 {
	t.Helper()
	var hello [helloLen]byte
	binary.BigEndian.PutUint32(hello[0:4], uint32(int32(rank)))
	binary.BigEndian.PutUint32(hello[4:8], epoch)
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatalf("hello write: %v", err)
	}
	var ack [ackLen]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatalf("ack read: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	return binary.BigEndian.Uint32(ack[:])
}

// writeRawFrame writes one wire frame (src|tag|len|payload) by hand.
func writeRawFrame(t *testing.T, conn net.Conn, src, tag int, payload []byte) {
	t.Helper()
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(int32(src)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(tag)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(len(payload))))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatalf("frame header write: %v", err)
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			t.Fatalf("frame payload write: %v", err)
		}
	}
}

// TestTCPStaleEpochDialerRefused: a dialer from an older world generation
// (e.g. a process that outlived its crash and found the rebuilt listener)
// must be refused without failing the new world's mesh-up: the acceptor
// answers with its own epoch, closes the connection, emits EvStaleEpoch,
// and keeps waiting for the real peer.
func TestTCPStaleEpochDialerRefused(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var evMu sync.Mutex
	var stale []TCPEvent
	opts := func() *TCPOptions {
		return &TCPOptions{Epoch: 3, OnEvent: func(ev TCPEvent) {
			if ev.Kind == EvStaleEpoch {
				evMu.Lock()
				stale = append(stale, ev)
				evMu.Unlock()
			}
		}}
	}
	done := make(chan struct{})
	var c0 Comm
	var err0 error
	go func() {
		c0, err0 = ConnectTCP(0, 2, addrs, opts())
		close(done)
	}()

	// The ghost: poses as rank 1 but carries the pre-crash epoch 2.
	ghost := dialRank0(t, addrs[0])
	if got := writeHello(t, ghost, 1, 2); got != 3 {
		t.Fatalf("ack epoch = %d, want the acceptor's epoch 3", got)
	}
	// The acceptor must hang up on the ghost rather than serve it.
	ghost.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ghost.Read(make([]byte, 1)); err == nil {
		t.Fatal("stale-epoch connection left open")
	}
	ghost.Close()

	// The real rank 1, same epoch: mesh-up must still succeed.
	c1, err := ConnectTCP(1, 2, addrs, opts())
	if err != nil {
		t.Fatalf("real rank 1 refused after ghost: %v", err)
	}
	<-done
	if err0 != nil {
		t.Fatalf("rank 0 mesh-up failed: %v", err0)
	}
	if err := c0.Send(1, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recv(0, 1, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}
	evMu.Lock()
	n := len(stale)
	var firstErr error
	if n > 0 {
		firstErr = stale[0].Err
	}
	evMu.Unlock()
	if n == 0 {
		t.Fatal("no EvStaleEpoch emitted for the ghost dialer")
	}
	if !errors.Is(firstErr, ErrStaleEpoch) {
		t.Fatalf("EvStaleEpoch.Err = %v, want ErrStaleEpoch", firstErr)
	}
	var ee *EpochError
	if !errors.As(firstErr, &ee) || ee.Local != 3 || ee.Remote != 2 {
		t.Fatalf("EvStaleEpoch.Err = %#v, want *EpochError{Local:3, Remote:2}", firstErr)
	}
	c1.Close()
	c0.Close()
}

// TestTCPStaleEpochDialFailsTyped: the dialer side of an epoch mismatch
// must fail fast with an error matching ErrStaleEpoch — a supervisor can
// then tell "I am the ghost" apart from ordinary connect failures.
func TestTCPStaleEpochDialFailsTyped(t *testing.T) {
	addrs := freeAddrs(t, 2)
	done := make(chan struct{})
	var c0 Comm
	var err0 error
	go func() {
		c0, err0 = ConnectTCP(0, 2, addrs, &TCPOptions{Epoch: 5})
		close(done)
	}()

	// Rank 1 from the previous generation dials the rebuilt rank 0.
	_, err := ConnectTCP(1, 2, addrs, &TCPOptions{Epoch: 4, DialTimeout: 5 * time.Second})
	if err == nil {
		t.Fatal("stale dialer connected across epochs")
	}
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale dial error = %v, want ErrStaleEpoch", err)
	}

	// Complete rank 0's mesh by hand so it can shut down cleanly.
	conn := dialRank0(t, addrs[0])
	if got := writeHello(t, conn, 1, 5); got != 5 {
		t.Fatalf("ack epoch = %d, want 5", got)
	}
	<-done
	if err0 != nil {
		t.Fatalf("rank 0 mesh-up failed: %v", err0)
	}
	c0.Close()
	conn.Close()
}

// TestTCPStaleControlFrameDropped: defense in depth behind the handshake
// check — a reserved-tag frame whose epoch prefix disagrees with the local
// epoch is dropped (with EvStaleEpoch) instead of being acted on. A stale
// ctlAbort must not poison the world.
func TestTCPStaleControlFrameDropped(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var evMu sync.Mutex
	var kinds []TCPEventKind
	done := make(chan struct{})
	var c0 Comm
	var err0 error
	go func() {
		c0, err0 = ConnectTCP(0, 2, addrs, &TCPOptions{OnEvent: func(ev TCPEvent) {
			evMu.Lock()
			kinds = append(kinds, ev.Kind)
			evMu.Unlock()
		}})
		close(done)
	}()

	conn := dialRank0(t, addrs[0])
	writeHello(t, conn, 1, 0) // correct epoch: the connection itself is live
	<-done
	if err0 != nil {
		t.Fatalf("rank 0 mesh-up failed: %v", err0)
	}

	// A stale abort: correct frame format, wrong epoch prefix.
	abortPayload := encodeAbort(&AbortError{Rank: 1, Cause: errors.New("ghost abort")})
	stale := make([]byte, 4+len(abortPayload))
	binary.BigEndian.PutUint32(stale[0:4], 99)
	copy(stale[4:], abortPayload)
	writeRawFrame(t, conn, 1, ctlAbort, stale)

	// A current-epoch goodbye right behind it proves ordering: by the time
	// the goodbye is processed the stale abort has been seen and dropped.
	good := make([]byte, 4)
	binary.BigEndian.PutUint32(good[0:4], 0)
	writeRawFrame(t, conn, 1, ctlGoodbye, good)

	c := c0.(*tcpComm)
	deadline := time.Now().Add(5 * time.Second)
	for !c.departed[1].Load() {
		if time.Now().After(deadline) {
			t.Fatal("goodbye never processed")
		}
		time.Sleep(time.Millisecond)
	}
	if e := c.ab.cause(); e != nil {
		t.Fatalf("stale-epoch abort poisoned the world: %v", e)
	}
	evMu.Lock()
	sawStale := false
	for _, k := range kinds {
		if k == EvStaleEpoch {
			sawStale = true
		}
	}
	evMu.Unlock()
	if !sawStale {
		t.Fatal("dropped stale control frame emitted no EvStaleEpoch")
	}
	conn.Close()
	c0.Close()
}

// TestTCPGoodbyeRacesAbort is the regression test for a clean Close racing
// an in-flight Abort: rank 1 latches an abort locally (as if the
// propagation toward rank 0 were still in the network) and then closes.
// Before the fix, Close skipped the goodbye on an aborted world, so rank 0
// saw a bare EOF with no departure flag and misreported the clean close as
// a peer-lost crash — inflating the obs peers_lost counter and, with
// AbortOnDisconnect, blaming rank 1 for a crash that never happened.
func TestTCPGoodbyeRacesAbort(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var evMu sync.Mutex
	var lost []TCPEvent
	comms := make([]Comm, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			opts := &TCPOptions{AbortOnDisconnect: true}
			if rank == 0 {
				opts.OnEvent = func(ev TCPEvent) {
					if ev.Kind == EvPeerLost {
						evMu.Lock()
						lost = append(lost, ev)
						evMu.Unlock()
					}
				}
			}
			comms[rank], errs[rank] = ConnectTCP(rank, 2, addrs, opts)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}

	// Latch the abort on rank 1 only (forward=false models the poison
	// still being in flight toward rank 0), then close rank 1 cleanly.
	c1 := comms[1].(*tcpComm)
	c1.doAbort(&AbortError{Rank: 1, Cause: errors.New("simulated in-flight abort")}, false)
	if err := comms[1].Close(); err != nil {
		t.Fatal(err)
	}

	// Rank 0 must register the departure, not a crash.
	c0 := comms[0].(*tcpComm)
	deadline := time.Now().Add(5 * time.Second)
	for !c0.departed[1].Load() {
		if time.Now().After(deadline) {
			t.Fatal("rank 0 never saw the goodbye")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the EOF land after the goodbye
	evMu.Lock()
	nLost := len(lost)
	evMu.Unlock()
	if nLost != 0 {
		t.Fatalf("clean close on an aborted world reported EvPeerLost %d time(s): %v", nLost, lost[0].Err)
	}
	if e := c0.ab.cause(); e != nil {
		t.Fatalf("rank 0 aborted by the clean close: %v", e)
	}
	comms[0].Close()
}
