package mp

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewWorldValidation(t *testing.T) {
	if _, _, err := NewWorld(0); err == nil {
		t.Error("zero-size world accepted")
	}
	if _, _, err := NewWorld(-3); err == nil {
		t.Error("negative-size world accepted")
	}
	w, comms, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(comms) != 4 {
		t.Fatalf("got %d comms", len(comms))
	}
	for i, c := range comms {
		if c.Rank() != i || c.Size() != 4 {
			t.Errorf("comm %d has rank %d size %d", i, c.Rank(), c.Size())
		}
	}
}

func TestBlockingSendRecv(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		buf := make([]byte, 16)
		st, err := c.Recv(0, 7, buf)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Bytes != 5 {
			return fmt.Errorf("bad status %+v", st)
		}
		if !bytes.Equal(buf[:st.Bytes], []byte("hello")) {
			return fmt.Errorf("bad payload %q", buf[:st.Bytes])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingOverlap(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 1, []byte{42})
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(0, 1, buf)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if buf[0] != 42 || st.Bytes != 1 {
			return fmt.Errorf("bad receive %v %+v", buf, st)
		}
		// Wait twice is allowed and idempotent.
		if _, err := req.Wait(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvPostedBeforeSend(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 1 {
			buf := make([]byte, 8)
			req, err := c.Irecv(0, 3, buf)
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // ensure posted before send
				return err
			}
			st, err := req.Wait()
			if err != nil {
				return err
			}
			if st.Bytes != 3 || !bytes.Equal(buf[:3], []byte("abc")) {
				return fmt.Errorf("bad data")
			}
			return nil
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.Send(1, 3, []byte("abc"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("five")); err != nil {
				return err
			}
			return c.Send(1, 6, []byte("six6"))
		}
		buf := make([]byte, 8)
		// Receive tag 6 first even though 5 arrived first.
		st, err := c.Recv(0, 6, buf)
		if err != nil {
			return err
		}
		if !bytes.Equal(buf[:st.Bytes], []byte("six6")) {
			return fmt.Errorf("tag 6 got %q", buf[:st.Bytes])
		}
		st, err = c.Recv(0, 5, buf)
		if err != nil {
			return err
		}
		if !bytes.Equal(buf[:st.Bytes], []byte("five")) {
			return fmt.Errorf("tag 5 got %q", buf[:st.Bytes])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcards(t *testing.T) {
	err := Launch(3, func(c Comm) error {
		switch c.Rank() {
		case 0, 1:
			return c.Send(2, c.Rank()+10, []byte{byte(c.Rank())})
		default:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 1)
				st, err := c.Recv(AnySource, AnyTag, buf)
				if err != nil {
					return err
				}
				if st.Tag != st.Source+10 || int(buf[0]) != st.Source {
					return fmt.Errorf("mismatched wildcard recv %+v", st)
				}
				seen[st.Source] = true
			}
			if !seen[0] || !seen[1] {
				return fmt.Errorf("missing source")
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingOrder(t *testing.T) {
	const n = 100
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(0, 1, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("too long for buffer"))
		}
		buf := make([]byte, 4)
		_, err := c.Recv(0, 1, buf)
		if err != ErrTruncated {
			return fmt.Errorf("want ErrTruncated, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArgumentValidation(t *testing.T) {
	w, comms, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := comms[0]
	if _, err := c.Isend(5, 0, nil); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := c.Isend(1, -1, nil); err == nil {
		t.Error("negative tag accepted for send")
	}
	if _, err := c.Irecv(5, 0, nil); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := c.Irecv(AnySource, -7, nil); err == nil {
		t.Error("invalid negative tag accepted for recv")
	}
	if _, err := c.Irecv(AnySource, AnyTag, nil); err != nil {
		t.Errorf("wildcards rejected: %v", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var phase atomic.Int32
	err := Launch(4, func(c Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			phase.Store(1)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if phase.Load() != 1 {
			return fmt.Errorf("rank %d passed barrier before phase set", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	var counter atomic.Int32
	err := Launch(3, func(c Comm) error {
		for round := 0; round < 10; round++ {
			counter.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := counter.Load(); got != int32((round+1)*3) {
				return fmt.Errorf("round %d: counter %d", round, got)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClosedWorldFailsPendingRecv(t *testing.T) {
	w, comms, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	req, err := comms[0].Irecv(1, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := req.Wait(); err != ErrClosed {
			t.Errorf("want ErrClosed, got %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	wg.Wait()
	if _, err := comms[0].Irecv(1, 0, buf); err != ErrClosed {
		t.Errorf("post after close: want ErrClosed, got %v", err)
	}
}

func TestCommCloseStopsEndpoint(t *testing.T) {
	w, comms, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	comms[0].Close()
	if _, err := comms[0].Isend(1, 0, nil); err != ErrClosed {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if err := comms[0].Barrier(); err != ErrClosed {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestLaunchPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("boom")
	err := Launch(3, func(c Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if err == nil {
		t.Fatal("Launch swallowed the error")
	}
}

func TestRequestTest(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
			return c.Send(1, 1, []byte{9})
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(0, 1, buf)
		if err != nil {
			return err
		}
		done, _, err := req.Test()
		if err != nil {
			return err
		}
		if done {
			return fmt.Errorf("Test reported done before send")
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for {
			done, st, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Bytes != 1 || buf[0] != 9 {
					return fmt.Errorf("bad data after Test completion")
				}
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAll(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			r1, err := c.Isend(1, 1, []byte{1})
			if err != nil {
				return err
			}
			r2, err := c.Isend(1, 2, []byte{2})
			if err != nil {
				return err
			}
			return WaitAll(r1, nil, r2)
		}
		b1, b2 := make([]byte, 1), make([]byte, 1)
		r1, err := c.Irecv(0, 1, b1)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(0, 2, b2)
		if err != nil {
			return err
		}
		if err := WaitAll(r1, r2); err != nil {
			return err
		}
		if b1[0] != 1 || b2[0] != 2 {
			return fmt.Errorf("bad payloads %v %v", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestManyToManyStress exchanges messages between all rank pairs
// concurrently, verifying payload integrity.
func TestManyToManyStress(t *testing.T) {
	const n = 8
	const rounds = 20
	err := Launch(n, func(c Comm) error {
		for r := 0; r < rounds; r++ {
			var reqs []Request
			bufs := make([][]byte, n)
			for peer := 0; peer < n; peer++ {
				if peer == c.Rank() {
					continue
				}
				payload := []byte(fmt.Sprintf("r%d from %d", r, c.Rank()))
				req, err := c.Isend(peer, r, payload)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
				bufs[peer] = make([]byte, 64)
				rr, err := c.Irecv(peer, r, bufs[peer])
				if err != nil {
					return err
				}
				reqs = append(reqs, rr)
			}
			if err := WaitAll(reqs...); err != nil {
				return err
			}
			for peer := 0; peer < n; peer++ {
				if peer == c.Rank() {
					continue
				}
				want := fmt.Sprintf("r%d from %d", r, peer)
				if string(bufs[peer][:len(want)]) != want {
					return fmt.Errorf("corrupt payload from %d", peer)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSenderBufferReuse: Isend must copy the payload so the caller can
// immediately overwrite its buffer (buffered-send semantics).
func TestSenderBufferReuse(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() == 0 {
			data := []byte{1, 2, 3}
			req, err := c.Isend(1, 1, data)
			if err != nil {
				return err
			}
			data[0], data[1], data[2] = 9, 9, 9 // clobber immediately
			_, err = req.Wait()
			if err != nil {
				return err
			}
			return c.Barrier()
		}
		buf := make([]byte, 3)
		if _, err := c.Recv(0, 1, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, []byte{1, 2, 3}) {
			return fmt.Errorf("payload was not copied at send time: %v", buf)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
