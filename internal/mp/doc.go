// Package mp is a from-scratch message-passing layer standing in for MPI
// (the paper's substrate; no mature MPI binding exists for Go, so the
// reproduction builds its own).
//
// It provides the primitives the paper's pseudocode uses — blocking
// Send/Recv (ProcB) and non-blocking Isend/Irecv + Wait (ProcNB) — with
// MPI-style matching on (source, tag) including wildcards, FIFO
// non-overtaking order per (source, tag), and a Barrier.
//
// Two transports implement Comm:
//
//   - the in-process transport (NewWorld/Launch): ranks are goroutines
//     sharing a matching fabric; this is the default substrate for the
//     examples and the wall-clock comparison of the two schedules;
//   - the TCP transport (ConnectTCP): ranks are separate processes meshed
//     over TCP sockets via the net package, for multi-process runs.
//
// # Collective schedules
//
// The collectives come in pluggable schedules (CollectiveOpts): the
// log-depth binomial tree is the default, and BcastOpts / ReduceOpts /
// AllReduceOpts additionally offer round-based schedules in the style of
// Träff's optimal-depth constructions (scatter + recursive doubling for
// broadcast, recursive-halving reduce-scatter + gather for reduce) and a
// two-stage hierarchical schedule that follows a switch hierarchy
// (intra-group first, then across group leaders — GroupSize is the
// topology hint, typically topo.Spec.GroupSize(0)). Schedule selection
// never changes results: every reduction schedule evaluates the exact
// expression tree of the binomial schedule, so even non-associative
// floating-point reductions are bit-identical across schedules (the
// property tests in collsched_test.go sweep this, and DESIGN.md §12
// explains why the trees coincide). Shapes a schedule cannot serve
// (non-power-of-two worlds, indivisible groups) fall back to binomial
// transparently, and all schedules inherit the Comm contract below —
// reserved tags, non-overtaking matching, deadline and abort semantics.
//
// # Failure handling
//
// Like MPI, the collective operations and Barrier require every rank to
// participate, but unlike classical MPI a stuck or dead peer does not wedge
// the world forever. Three mechanisms bound every blocking operation:
//
//   - Deadlines: a per-communicator default deadline (WorldOptions.Deadline,
//     TCPOptions.Deadline) bounds each blocking wait — Recv, Request.Wait,
//     Barrier — which then fails with ErrDeadline instead of blocking
//     forever. A deadline-expired receive is withdrawn from the matching
//     queue; the message it would have matched stays deliverable to a later
//     receive.
//
//   - Cooperative abort: any rank may call Comm.Abort(cause). The abort is
//     disseminated over a log-depth binomial tree (on the TCP transport;
//     in-process it is a shared-memory poison), and every rank's pending and
//     future operations — point-to-point, collectives, and Barrier — fail
//     with an *AbortError carrying the origin rank and cause
//     (errors.Is(err, ErrAborted) reports true). Runner code calls Abort on
//     any mid-run error so peers unblock promptly instead of deadlocking.
//
//   - Failure detection (TCP): TCPOptions.Heartbeat starts a liveness probe
//     on a reserved control tag; a peer silent for HeartbeatMiss intervals
//     triggers an abort naming it. Connection loss is an even faster signal:
//     with AbortOnDisconnect (implied by heartbeats), a peer that vanishes
//     without the shutdown handshake aborts the world immediately.
//
// Deterministic configuration validation should still happen on every rank
// before the first collective (as runner does): a validation failure is then
// reported identically everywhere without any abort traffic.
package mp
