package mp

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestFaultyDropsAreSilent: dropped sends report success but never reach
// the transport (counted beneath the injector).
func TestFaultyDropsAreSilent(t *testing.T) {
	err := Launch(2, func(c Comm) error {
		if c.Rank() != 0 {
			return nil // never receives: rank 0's sends are all dropped
		}
		counted := WithCounters(c)
		f := WithFaults(counted, 1)
		f.DropProb = 1
		for i := 0; i < 5; i++ {
			if err := f.Send(1, 1, []byte{byte(i)}); err != nil {
				return fmt.Errorf("dropped send errored: %w", err)
			}
			req, err := f.Isend(1, 1, []byte{byte(i)})
			if err != nil {
				return fmt.Errorf("dropped isend errored: %w", err)
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		if n := counted.C.SendMsgs.Load(); n != 0 {
			return fmt.Errorf("%d messages leaked past DropProb=1", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultyResetAfter: operations past the budget fail with ErrInjected,
// and the failure is reported, not hung.
func TestFaultyResetAfter(t *testing.T) {
	err := Launch(1, func(c Comm) error {
		f := WithFaults(c, 2)
		f.ResetAfter = 3
		for i := 0; i < 3; i++ {
			if err := f.Send(0, 1, []byte{1}); err != nil {
				return fmt.Errorf("op %d failed before the budget: %w", i, err)
			}
			buf := make([]byte, 1)
			// Receives burn ops too: budget 3 = 3 sends, so drain with the
			// underlying comm.
			if _, err := c.Recv(0, 1, buf); err != nil {
				return err
			}
		}
		if err := f.Send(0, 1, []byte{1}); !errors.Is(err, ErrInjected) {
			return fmt.Errorf("post-budget send: got %v, want ErrInjected", err)
		}
		if _, err := f.Irecv(0, 1, make([]byte, 1)); !errors.Is(err, ErrInjected) {
			return fmt.Errorf("post-budget irecv: got %v, want ErrInjected", err)
		}
		if err := f.Barrier(); !errors.Is(err, ErrInjected) {
			return fmt.Errorf("post-budget barrier: got %v, want ErrInjected", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultyDropPatternReplayable: the same seed reproduces the same
// drop pattern; a different seed gives a different one.
func TestFaultyDropPatternReplayable(t *testing.T) {
	pattern := func(seed uint64) []bool {
		var out []bool
		err := Launch(1, func(c Comm) error {
			counted := WithCounters(c)
			f := WithFaults(counted, seed)
			f.DropProb = 0.5
			buf := make([]byte, 1)
			for i := 0; i < 32; i++ {
				before := counted.C.SendMsgs.Load()
				if err := f.Send(0, 1, []byte{1}); err != nil {
					return err
				}
				delivered := counted.C.SendMsgs.Load() > before
				out = append(out, delivered)
				if delivered {
					if _, err := c.Recv(0, 1, buf); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	cDiff := pattern(8)
	same := true
	for i := range a {
		if a[i] != cDiff[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 32-op drop patterns")
	}
}

// TestFaultyDelayStillDelivers: delays slow messages down but nothing is
// lost or corrupted.
func TestFaultyDelayStillDelivers(t *testing.T) {
	const n = 20
	err := Launch(2, func(c Comm) error {
		f := WithFaults(c, 3)
		f.DelayProb = 0.5
		f.Delay = time.Millisecond
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := f.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < n; i++ {
			if _, err := f.Recv(0, 1, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d corrupted or reordered: got %d", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
