package mp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Failure-handling tests: deadlines, cooperative abort, heartbeat/liveness
// detection, and the mp-level chaos scenario. All deadlines are short (the
// slowest bound asserted is 2s of wall clock, reached only on failure).

const testDeadline = 100 * time.Millisecond

// wantWithin fails unless err matches target and the elapsed time stayed
// within the (generous, CI-safe) bound.
func wantWithin(t *testing.T, what string, start time.Time, err, target error, bound time.Duration) {
	t.Helper()
	if !errors.Is(err, target) {
		t.Fatalf("%s: got error %v, want %v", what, err, target)
	}
	if el := time.Since(start); el > bound {
		t.Fatalf("%s: took %v, want < %v", what, el, bound)
	}
}

func TestInprocRecvDeadline(t *testing.T) {
	w, comms, err := NewWorldOpts(2, WorldOptions{RendezvousThreshold: -1, Deadline: testDeadline})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	start := time.Now()
	_, err = comms[0].Recv(1, 0, make([]byte, 8))
	wantWithin(t, "Recv with silent peer", start, err, ErrDeadline, 2*time.Second)
}

// TestInprocLateMessageAfterDeadline: a deadline-expired receive is
// withdrawn from the matching queue, so a message arriving later is not
// swallowed by the dead operation — a fresh receive still gets it.
func TestInprocLateMessageAfterDeadline(t *testing.T) {
	w, comms, err := NewWorldOpts(2, WorldOptions{RendezvousThreshold: -1, Deadline: testDeadline})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := comms[0].Recv(1, 7, make([]byte, 8)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("first Recv: got %v, want ErrDeadline", err)
	}
	if err := comms[1].Send(0, 7, []byte("late")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	st, err := comms[0].Recv(1, 7, buf)
	if err != nil {
		t.Fatalf("second Recv: %v", err)
	}
	if string(buf[:st.Bytes]) != "late" {
		t.Fatalf("second Recv got %q", buf[:st.Bytes])
	}
}

// TestInprocWaitDeadlineSticky: once a Wait fails with ErrDeadline the
// request stays failed — repeated Waits report the same outcome (Wait
// idempotency, which the overlapped runner relies on).
func TestInprocWaitDeadlineSticky(t *testing.T) {
	w, comms, err := NewWorldOpts(2, WorldOptions{RendezvousThreshold: -1, Deadline: testDeadline})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	req, err := comms[0].Irecv(1, 0, make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := req.Wait(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("first Wait: %v", err)
	}
	if _, err := req.Wait(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("second Wait: %v", err)
	}
	if done, _, err := req.Test(); !done || !errors.Is(err, ErrDeadline) {
		t.Fatalf("Test after deadline: done=%v err=%v", done, err)
	}
}

func TestInprocBarrierDeadline(t *testing.T) {
	w, comms, err := NewWorldOpts(2, WorldOptions{RendezvousThreshold: -1, Deadline: testDeadline})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	start := time.Now()
	err = comms[0].Barrier()
	wantWithin(t, "Barrier with absent peer", start, err, ErrDeadline, 2*time.Second)
}

// TestInprocRendezvousSendDeadline: a rendezvous send whose receiver never
// shows up times out at Wait instead of blocking forever.
func TestInprocRendezvousSendDeadline(t *testing.T) {
	w, comms, err := NewWorldOpts(2, WorldOptions{RendezvousThreshold: 0, Deadline: testDeadline})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	req, err := comms[0].Isend(1, 3, []byte("unwanted"))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = req.Wait()
	wantWithin(t, "rendezvous Wait with absent receiver", start, err, ErrDeadline, 2*time.Second)
}

// TestInprocAbortUnblocksAll: one rank aborts while its peers block in
// Recv, Barrier, and a collective; every peer fails promptly with an
// *AbortError naming the origin rank — no deadlock.
func TestInprocAbortUnblocksAll(t *testing.T) {
	const n = 4
	w, comms, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cause := errors.New("tile 7 exploded")
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := comms[rank]
			switch rank {
			case 0:
				_, errs[rank] = c.Recv(2, 0, make([]byte, 8))
			case 1:
				errs[rank] = c.Barrier()
			case 3:
				_, errs[rank] = AllReduce(c, []float64{1}, OpSum)
			case 2:
				time.Sleep(20 * time.Millisecond) // let the others block
				errs[rank] = c.Abort(cause)
			}
		}(i)
	}
	wg.Wait()
	if time.Since(start) > 2*time.Second {
		t.Fatalf("abort took %v to unblock the world", time.Since(start))
	}
	if errs[2] != nil {
		t.Fatalf("Abort returned %v", errs[2])
	}
	for _, rank := range []int{0, 1, 3} {
		var ae *AbortError
		if !errors.As(errs[rank], &ae) {
			t.Fatalf("rank %d: got %v, want *AbortError", rank, errs[rank])
		}
		if ae.Rank != 2 || !errors.Is(ae, ErrAborted) || !errors.Is(errs[rank], cause) {
			t.Errorf("rank %d: AbortError = %+v, want origin 2 wrapping %v", rank, ae, cause)
		}
	}
	// The world stays poisoned: future operations fail the same way.
	if err := comms[0].Send(1, 0, []byte("x")); !errors.Is(err, ErrAborted) {
		t.Errorf("Send after abort: %v, want ErrAborted", err)
	}
}

// TestInprocChaos is the mp-level chaos scenario: eight ranks ping-pong
// continuously, one aborts partway through, and every rank must unwind
// with ErrAborted — deterministically, with no timing dependence.
func TestInprocChaos(t *testing.T) {
	const n, rounds, abortAt = 8, 10000, 1000
	errs := make([]error, n)
	w, comms, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := comms[rank]
			peer := rank ^ 1 // pairs (0,1), (2,3), ...
			buf := make([]byte, 8)
			for r := 0; r < rounds; r++ {
				if rank == 3 && r == abortAt {
					errs[rank] = c.Abort(fmt.Errorf("chaos at round %d", r))
					return
				}
				if rank < peer {
					if errs[rank] = c.Send(peer, r, buf); errs[rank] != nil {
						return
					}
					if _, errs[rank] = c.Recv(peer, r, buf); errs[rank] != nil {
						return
					}
				} else {
					if _, errs[rank] = c.Recv(peer, r, buf); errs[rank] != nil {
						return
					}
					if errs[rank] = c.Send(peer, r, buf); errs[rank] != nil {
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if errs[3] != nil {
		t.Fatalf("aborting rank: %v", errs[3])
	}
	for rank, err := range errs {
		if rank == 3 {
			continue
		}
		if !errors.Is(err, ErrAborted) {
			t.Errorf("rank %d: got %v, want ErrAborted", rank, err)
		}
	}
}

func TestTCPRecvDeadline(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			c, err := ConnectTCP(rank, 2, addrs, &TCPOptions{Deadline: testDeadline})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			if rank == 0 {
				start := time.Now()
				_, err := c.Recv(1, 0, make([]byte, 8))
				if !errors.Is(err, ErrDeadline) {
					errs[rank] = fmt.Errorf("Recv: got %v, want ErrDeadline", err)
				} else if el := time.Since(start); el > 2*time.Second {
					errs[rank] = fmt.Errorf("Recv deadline took %v", el)
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestTCPBarrierDeadline(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			c, err := ConnectTCP(rank, 2, addrs, &TCPOptions{Deadline: testDeadline})
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			if rank == 0 {
				start := time.Now()
				err := c.Barrier() // rank 1 never enters
				if !errors.Is(err, ErrDeadline) {
					errs[rank] = fmt.Errorf("Barrier: got %v, want ErrDeadline", err)
				} else if el := time.Since(start); el > 2*time.Second {
					errs[rank] = fmt.Errorf("Barrier deadline took %v", el)
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// TestTCPAbortPropagates: on a 4-rank mesh the abort poison must travel the
// dissemination tree and unblock every rank's pending Recv and Barrier with
// the origin's identity, then goroutines must drain on Close.
func TestTCPAbortPropagates(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 4
	cause := errors.New("deliberate failure")
	err := launchTCP(t, n, func(c Comm) error {
		if c.Rank() == 3 {
			time.Sleep(50 * time.Millisecond) // let peers block first
			return c.Abort(cause)
		}
		_, err := c.Recv(3, 0, make([]byte, 8))
		var ae *AbortError
		if !errors.As(err, &ae) {
			return fmt.Errorf("Recv: got %v, want *AbortError", err)
		}
		if ae.Rank != 3 {
			return fmt.Errorf("abort origin = %d, want 3", ae.Rank)
		}
		// Collectives and Barrier must observe the abort too.
		if err := c.Barrier(); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Barrier after abort: %v, want ErrAborted", err)
		}
		if err := Bcast(c, 0, make([]byte, 4)); !errors.Is(err, ErrAborted) {
			return fmt.Errorf("Bcast after abort: %v, want ErrAborted", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// No goroutine leak: readers, heartbeats and waiters all drained.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestTCPAbortOnDisconnect: with AbortOnDisconnect, a peer vanishing
// without the goodbye handshake (a crash, not a Close) aborts the world
// naming that peer.
func TestTCPAbortOnDisconnect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	comms := make([]Comm, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			comms[rank], errs[rank] = ConnectTCP(rank, 2, addrs, &TCPOptions{AbortOnDisconnect: true})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	defer comms[0].Close()
	// Simulate rank 1 dying: its socket closes with no goodbye frame.
	c1 := comms[1].(*tcpComm)
	c1.conns[0].conn.Close()
	start := time.Now()
	_, err := comms[0].Recv(1, 0, make([]byte, 8))
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("Recv after peer crash: got %v, want *AbortError", err)
	}
	if ae.Rank != 1 {
		t.Errorf("abort origin = %d, want 1 (the vanished peer)", ae.Rank)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("disconnect abort took %v", el)
	}
	comms[1].Close()
}

// TestTCPCleanCloseIsNotACrash: the goodbye handshake must keep a normal
// staggered shutdown abort-free even with AbortOnDisconnect set.
func TestTCPCleanCloseIsNotACrash(t *testing.T) {
	addrs := freeAddrs(t, 2)
	comms := make([]Comm, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			defer wg.Done()
			comms[rank], errs[rank] = ConnectTCP(rank, 2, addrs, &TCPOptions{AbortOnDisconnect: true})
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	// Rank 1 leaves politely; rank 0 must still be able to talk to itself
	// and observe no abort.
	if err := comms[1].Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let rank 0's reader see the EOF
	c0 := comms[0].(*tcpComm)
	if e := c0.ab.cause(); e != nil {
		t.Fatalf("clean Close aborted the peer: %v", e)
	}
	comms[0].Close()
}

// TestTCPHeartbeatDetectsMutePeer: a peer that is connected but totally
// silent (hung, not crashed — the socket stays open) must be declared dead
// by the heartbeat prober within miss×interval, aborting the world.
func TestTCPHeartbeatDetectsMutePeer(t *testing.T) {
	addrs := freeAddrs(t, 2)
	// The mute peer: completes the rank-1 handshake by hand, then never
	// writes another byte and never reads. (ConnectTCP rank 0 accepts from
	// rank 1; the real transport would heartbeat.)
	dialErr := make(chan error, 1)
	var muteConn net.Conn
	var muteMu sync.Mutex
	go func() {
		var conn net.Conn
		var err error
		deadline := time.Now().Add(5 * time.Second)
		for {
			conn, err = net.DialTimeout("tcp", addrs[0], time.Second)
			if err == nil || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err != nil {
			dialErr <- err
			return
		}
		var hello [helloLen]byte
		binary.BigEndian.PutUint32(hello[0:4], uint32(int32(1)))
		binary.BigEndian.PutUint32(hello[4:8], 0) // epoch 0 matches the default
		if _, err := conn.Write(hello[:]); err != nil {
			dialErr <- err
			return
		}
		muteMu.Lock()
		muteConn = conn
		muteMu.Unlock()
		dialErr <- nil
	}()

	c, err := ConnectTCP(0, 2, addrs, &TCPOptions{
		Heartbeat:     20 * time.Millisecond,
		HeartbeatMiss: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := <-dialErr; err != nil {
		t.Fatal(err)
	}
	defer func() {
		muteMu.Lock()
		if muteConn != nil {
			muteConn.Close()
		}
		muteMu.Unlock()
	}()

	start := time.Now()
	_, err = c.Recv(1, 0, make([]byte, 8))
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("Recv from mute peer: got %v, want *AbortError", err)
	}
	if ae.Rank != 1 {
		t.Errorf("abort origin = %d, want 1 (the mute peer)", ae.Rank)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("heartbeat detection took %v (limit 3×20ms)", el)
	}
}

// TestAbortChildrenCoversWorld: the dissemination tree must reach every
// rank from any origin in at most ⌈log2 size⌉ hops.
func TestAbortChildrenCoversWorld(t *testing.T) {
	for size := 1; size <= 33; size++ {
		for origin := 0; origin < size; origin += 1 + size/5 {
			seen := make([]bool, size)
			depth := 0
			frontier := []int{origin}
			seen[origin] = true
			for len(frontier) > 0 {
				var next []int
				for _, r := range frontier {
					for _, ch := range abortChildren(r, origin, size) {
						if seen[ch] {
							t.Fatalf("size %d origin %d: rank %d poisoned twice", size, origin, ch)
						}
						seen[ch] = true
						next = append(next, ch)
					}
				}
				frontier = next
				if len(next) > 0 {
					depth++
				}
			}
			for r, ok := range seen {
				if !ok {
					t.Fatalf("size %d origin %d: rank %d never reached", size, origin, r)
				}
			}
			maxDepth := 0
			for 1<<maxDepth < size {
				maxDepth++
			}
			if depth > maxDepth {
				t.Errorf("size %d origin %d: tree depth %d > ⌈log2⌉ = %d", size, origin, depth, maxDepth)
			}
		}
	}
}

// Zero-cost check: the deadline/abort machinery must not slow the hot
// path when disabled. Compare with BenchmarkInprocPingPongDeadline.
func benchPingPong(b *testing.B, opts WorldOptions) {
	w, comms, err := NewWorldOpts(2, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for i := 0; i < b.N; i++ {
			if _, err := comms[1].Recv(0, 0, buf); err != nil {
				b.Error(err)
				return
			}
			if err := comms[1].Send(0, 1, buf); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := comms[0].Send(1, 0, buf); err != nil {
			b.Fatal(err)
		}
		if _, err := comms[0].Recv(1, 1, buf); err != nil {
			b.Fatal(err)
		}
	}
	wg.Wait()
}

func BenchmarkInprocPingPong(b *testing.B) {
	benchPingPong(b, WorldOptions{RendezvousThreshold: -1})
}

func BenchmarkInprocPingPongDeadline(b *testing.B) {
	benchPingPong(b, WorldOptions{RendezvousThreshold: -1, Deadline: 10 * time.Second})
}
