package mp

import (
	"fmt"
	"testing"
)

func TestCountingCommBlocking(t *testing.T) {
	snaps := make([]Snapshot, 2)
	err := Launch(2, func(raw Comm) error {
		c := WithCounters(raw)
		defer func() { snaps[raw.Rank()] = c.C.Snapshot() }()
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte("abcde")); err != nil {
				return err
			}
			return c.Barrier()
		}
		buf := make([]byte, 8)
		if _, err := c.Recv(0, 1, buf); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps[0].SendMsgs != 1 || snaps[0].SendBytes != 5 || snaps[0].RecvMsgs != 0 {
		t.Errorf("sender counters: %+v", snaps[0])
	}
	if snaps[1].RecvMsgs != 1 || snaps[1].RecvBytes != 5 || snaps[1].SendMsgs != 0 {
		t.Errorf("receiver counters: %+v", snaps[1])
	}
	if snaps[0].Barriers != 1 || snaps[1].Barriers != 1 {
		t.Errorf("barrier counters: %+v %+v", snaps[0], snaps[1])
	}
}

func TestCountingCommNonBlocking(t *testing.T) {
	snaps := make([]Snapshot, 2)
	err := Launch(2, func(raw Comm) error {
		c := WithCounters(raw)
		defer func() { snaps[raw.Rank()] = c.C.Snapshot() }()
		if c.Rank() == 0 {
			req, err := c.Isend(1, 1, []byte{1, 2, 3})
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 3)
		req, err := c.Irecv(0, 1, buf)
		if err != nil {
			return err
		}
		// Wait twice: the receive must be counted exactly once.
		if _, err := req.Wait(); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if done, _, err := req.Test(); !done || err != nil {
			return fmt.Errorf("Test after Wait: %v %v", done, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps[0].SendMsgs != 1 || snaps[0].SendBytes != 3 {
		t.Errorf("sender counters: %+v", snaps[0])
	}
	if snaps[1].RecvMsgs != 1 || snaps[1].RecvBytes != 3 {
		t.Errorf("receiver counters (double Wait must count once): %+v", snaps[1])
	}
}

// TestCountingMatchesTilingPrediction: the counted traffic of a real 2-rank
// exchange matches the bytes handed to the transport.
func TestCountingAggregates(t *testing.T) {
	const rounds = 10
	snaps := make([]Snapshot, 2)
	err := Launch(2, func(raw Comm) error {
		c := WithCounters(raw)
		defer func() { snaps[raw.Rank()] = c.C.Snapshot() }()
		peer := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			sreq, err := c.Isend(peer, i, make([]byte, 100))
			if err != nil {
				return err
			}
			buf := make([]byte, 100)
			if _, err := c.Recv(peer, i, buf); err != nil {
				return err
			}
			if _, err := sreq.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range snaps {
		if s.SendMsgs != rounds || s.SendBytes != rounds*100 ||
			s.RecvMsgs != rounds || s.RecvBytes != rounds*100 {
			t.Errorf("rank %d counters: %+v", r, s)
		}
	}
}
