package mp

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
)

// freeAddrs reserves n distinct loopback ports by listening and closing.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// launchTCP runs fn on n TCP-connected ranks (one goroutine per rank,
// separate sockets — the same code path a multi-process deployment uses).
func launchTCP(t *testing.T, n int, fn func(c Comm) error) error {
	t.Helper()
	addrs := freeAddrs(t, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := ConnectTCP(rank, n, addrs, nil)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = fn(c)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("rank %d: %w", i, e)
		}
	}
	return nil
}

func TestTCPValidation(t *testing.T) {
	if _, err := ConnectTCP(0, 0, nil, nil); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := ConnectTCP(3, 2, []string{"a", "b"}, nil); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := ConnectTCP(0, 2, []string{"only-one"}, nil); err == nil {
		t.Error("short address list accepted")
	}
}

func TestTCPSendRecv(t *testing.T) {
	err := launchTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, []byte("over tcp"))
		}
		buf := make([]byte, 32)
		st, err := c.Recv(0, 4, buf)
		if err != nil {
			return err
		}
		if !bytes.Equal(buf[:st.Bytes], []byte("over tcp")) {
			return fmt.Errorf("got %q", buf[:st.Bytes])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPSelfSend(t *testing.T) {
	err := launchTCP(t, 2, func(c Comm) error {
		if err := c.Send(c.Rank(), 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		buf := make([]byte, 1)
		st, err := c.Recv(c.Rank(), 1, buf)
		if err != nil {
			return err
		}
		if st.Source != c.Rank() || buf[0] != byte(c.Rank()) {
			return fmt.Errorf("self-send mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPNonBlockingAndWildcard(t *testing.T) {
	err := launchTCP(t, 3, func(c Comm) error {
		if c.Rank() != 2 {
			req, err := c.Isend(2, 9, []byte{byte(10 + c.Rank())})
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		got := map[byte]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(AnySource, AnyTag, buf); err != nil {
				return err
			}
			got[buf[0]] = true
		}
		if !got[10] || !got[11] {
			return fmt.Errorf("missing payloads: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPBarrier(t *testing.T) {
	err := launchTCP(t, 4, func(c Comm) error {
		for round := 0; round < 5; round++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPOrdering(t *testing.T) {
	const n = 50
	err := launchTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(0, 1, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("out of order at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	err := launchTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, payload)
		}
		buf := make([]byte, len(payload))
		st, err := c.Recv(0, 1, buf)
		if err != nil {
			return err
		}
		if st.Bytes != len(payload) || !bytes.Equal(buf, payload) {
			return fmt.Errorf("large payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
