package mp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n distinct loopback ports by listening and closing.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// launchTCP runs fn on n TCP-connected ranks (one goroutine per rank,
// separate sockets — the same code path a multi-process deployment uses).
func launchTCP(t *testing.T, n int, fn func(c Comm) error) error {
	t.Helper()
	addrs := freeAddrs(t, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := ConnectTCP(rank, n, addrs, nil)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			errs[rank] = fn(c)
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return fmt.Errorf("rank %d: %w", i, e)
		}
	}
	return nil
}

func TestTCPValidation(t *testing.T) {
	if _, err := ConnectTCP(0, 0, nil, nil); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := ConnectTCP(3, 2, []string{"a", "b"}, nil); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := ConnectTCP(0, 2, []string{"only-one"}, nil); err == nil {
		t.Error("short address list accepted")
	}
}

func TestTCPSendRecv(t *testing.T) {
	err := launchTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, []byte("over tcp"))
		}
		buf := make([]byte, 32)
		st, err := c.Recv(0, 4, buf)
		if err != nil {
			return err
		}
		if !bytes.Equal(buf[:st.Bytes], []byte("over tcp")) {
			return fmt.Errorf("got %q", buf[:st.Bytes])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPSelfSend(t *testing.T) {
	err := launchTCP(t, 2, func(c Comm) error {
		if err := c.Send(c.Rank(), 1, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		buf := make([]byte, 1)
		st, err := c.Recv(c.Rank(), 1, buf)
		if err != nil {
			return err
		}
		if st.Source != c.Rank() || buf[0] != byte(c.Rank()) {
			return fmt.Errorf("self-send mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPNonBlockingAndWildcard(t *testing.T) {
	err := launchTCP(t, 3, func(c Comm) error {
		if c.Rank() != 2 {
			req, err := c.Isend(2, 9, []byte{byte(10 + c.Rank())})
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		got := map[byte]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(AnySource, AnyTag, buf); err != nil {
				return err
			}
			got[buf[0]] = true
		}
		if !got[10] || !got[11] {
			return fmt.Errorf("missing payloads: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPBarrier(t *testing.T) {
	err := launchTCP(t, 4, func(c Comm) error {
		for round := 0; round < 5; round++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPOrdering(t *testing.T) {
	const n = 50
	err := launchTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			if _, err := c.Recv(0, 1, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("out of order at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTCPBadHandshakeNoLeak: a peer whose hello claims an out-of-range
// rank must fail ConnectTCP, and the failure must close both the listener
// and the accepted connection — nothing leaks, nothing hangs.
func TestTCPBadHandshakeNoLeak(t *testing.T) {
	addrs := freeAddrs(t, 2)
	done := make(chan error, 1)
	go func() {
		c, err := ConnectTCP(0, 2, addrs, &TCPOptions{DialTimeout: 5 * time.Second})
		if err == nil {
			c.Close()
		}
		done <- err
	}()

	// Pose as the missing rank 1, but claim an impossible rank in the hello.
	var conn net.Conn
	var err error
	for i := 0; i < 200; i++ {
		conn, err = net.DialTimeout("tcp", addrs[0], time.Second)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("could not reach rank 0 listener: %v", err)
	}
	var hello [helloLen]byte
	binary.BigEndian.PutUint32(hello[0:4], uint32(int32(7))) // size is 2
	binary.BigEndian.PutUint32(hello[4:8], 0)                // epoch 0 matches the default
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ConnectTCP accepted an out-of-range peer rank")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ConnectTCP hung after bad handshake")
	}
	// The listener must be gone: a fresh dial may be refused outright or
	// accepted by the kernel backlog and then closed — either way no new
	// handshake is served.
	if c2, err := net.DialTimeout("tcp", addrs[0], time.Second); err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c2.Read(make([]byte, 1)); err == nil {
			t.Error("listener still serving after failed handshake")
		}
		c2.Close()
	}
	// The accepted connection must have been closed server-side: the read
	// returns EOF/reset rather than blocking until the deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("bad-handshake connection left open (read err: %v)", err)
	}
	conn.Close()
}

// TestTCPLateRankRecovery: the exponential-backoff dial loop must ride out
// a peer that starts listening well after the dialer.
func TestTCPLateRankRecovery(t *testing.T) {
	addrs := freeAddrs(t, 2)
	opts := &TCPOptions{DialTimeout: 10 * time.Second, DialBackoff: 5 * time.Millisecond}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	run := func(rank int, delay time.Duration) {
		defer wg.Done()
		time.Sleep(delay)
		c, err := ConnectTCP(rank, 2, addrs, opts)
		if err != nil {
			errs[rank] = err
			return
		}
		defer c.Close()
		if rank == 1 {
			errs[rank] = c.Send(0, 1, []byte("late"))
			return
		}
		buf := make([]byte, 8)
		st, err := c.Recv(1, 1, buf)
		if err == nil && string(buf[:st.Bytes]) != "late" {
			err = fmt.Errorf("got %q", buf[:st.Bytes])
		}
		errs[rank] = err
	}
	wg.Add(2)
	go run(1, 0)                    // dialer starts immediately
	go run(0, 300*time.Millisecond) // listener shows up late
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	}
}

// TestTCPConnectCancel: closing the Cancel channel must abort a mesh-up
// promptly — both a rank blocked in Accept and one stuck redialing —
// instead of letting it wait out the full dial timeout.
func TestTCPConnectCancel(t *testing.T) {
	for _, tc := range []struct {
		name string
		rank int // rank 0 of 2 blocks accepting; rank 1 blocks dialing
	}{
		{"accepting", 0},
		{"dialing", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addrs := freeAddrs(t, 2)
			cancel := make(chan struct{})
			done := make(chan error, 1)
			go func() {
				c, err := ConnectTCP(tc.rank, 2, addrs,
					&TCPOptions{DialTimeout: 30 * time.Second, Cancel: cancel})
				if err == nil {
					c.Close()
				}
				done <- err
			}()
			time.Sleep(50 * time.Millisecond)
			close(cancel)
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("canceled ConnectTCP reported success")
				}
				if !strings.Contains(err.Error(), "cancel") {
					t.Errorf("error does not mention cancellation: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("ConnectTCP ignored Cancel and hung")
			}
		})
	}
}

func TestTCPLargePayload(t *testing.T) {
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	err := launchTCP(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, payload)
		}
		buf := make([]byte, len(payload))
		st, err := c.Recv(0, 1, buf)
		if err != nil {
			return err
		}
		if st.Bytes != len(payload) || !bytes.Equal(buf, payload) {
			return fmt.Errorf("large payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
