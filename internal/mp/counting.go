package mp

import "sync/atomic"

// Counters accumulates traffic statistics for one endpoint. All fields are
// safe for concurrent use.
type Counters struct {
	SendMsgs  atomic.Int64
	SendBytes atomic.Int64
	RecvMsgs  atomic.Int64
	RecvBytes atomic.Int64
	Barriers  atomic.Int64
}

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	SendMsgs, SendBytes int64
	RecvMsgs, RecvBytes int64
	Barriers            int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		SendMsgs:  c.SendMsgs.Load(),
		SendBytes: c.SendBytes.Load(),
		RecvMsgs:  c.RecvMsgs.Load(),
		RecvBytes: c.RecvBytes.Load(),
		Barriers:  c.Barriers.Load(),
	}
}

// CountingComm wraps a Comm and counts every operation — drop-in
// instrumentation for measuring an algorithm's communication volume (the
// V_comm the tiling theory predicts).
type CountingComm struct {
	Comm
	C Counters
}

// WithCounters wraps c.
func WithCounters(c Comm) *CountingComm {
	return &CountingComm{Comm: c}
}

// Send implements Comm.
func (c *CountingComm) Send(dst, tag int, data []byte) error {
	err := c.Comm.Send(dst, tag, data)
	if err == nil {
		c.C.SendMsgs.Add(1)
		c.C.SendBytes.Add(int64(len(data)))
	}
	return err
}

// Isend implements Comm.
func (c *CountingComm) Isend(dst, tag int, data []byte) (Request, error) {
	req, err := c.Comm.Isend(dst, tag, data)
	if err == nil {
		c.C.SendMsgs.Add(1)
		c.C.SendBytes.Add(int64(len(data)))
	}
	return req, err
}

// Recv implements Comm.
func (c *CountingComm) Recv(src, tag int, buf []byte) (Status, error) {
	st, err := c.Comm.Recv(src, tag, buf)
	if err == nil {
		c.C.RecvMsgs.Add(1)
		c.C.RecvBytes.Add(int64(st.Bytes))
	}
	return st, err
}

// Irecv implements Comm; the receive is counted when the request completes
// successfully.
func (c *CountingComm) Irecv(src, tag int, buf []byte) (Request, error) {
	req, err := c.Comm.Irecv(src, tag, buf)
	if err != nil {
		return nil, err
	}
	return &countingRecvReq{Request: req, ctr: &c.C}, nil
}

// Barrier implements Comm.
func (c *CountingComm) Barrier() error {
	err := c.Comm.Barrier()
	if err == nil {
		c.C.Barriers.Add(1)
	}
	return err
}

type countingRecvReq struct {
	Request
	ctr     *Counters
	counted atomic.Bool
}

func (r *countingRecvReq) Wait() (Status, error) {
	st, err := r.Request.Wait()
	if err == nil && r.counted.CompareAndSwap(false, true) {
		r.ctr.RecvMsgs.Add(1)
		r.ctr.RecvBytes.Add(int64(st.Bytes))
	}
	return st, err
}

func (r *countingRecvReq) Test() (bool, Status, error) {
	done, st, err := r.Request.Test()
	if done && err == nil && r.counted.CompareAndSwap(false, true) {
		r.ctr.RecvMsgs.Add(1)
		r.ctr.RecvBytes.Add(int64(st.Bytes))
	}
	return done, st, err
}
