package mp

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRendezvousSendWaitsForReceiver(t *testing.T) {
	var recvPosted atomic.Bool
	err := LaunchOpts(2, WorldOptions{RendezvousThreshold: 0}, func(c Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 1, []byte("rendezvous payload"))
			if err != nil {
				return err
			}
			// The request must not be complete before the receiver posts.
			done, _, err := req.Test()
			if err != nil {
				return err
			}
			if done && !recvPosted.Load() {
				return fmt.Errorf("rendezvous send completed before receive was posted")
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if !recvPosted.Load() {
				return fmt.Errorf("Wait returned before the receive was posted")
			}
			return nil
		}
		time.Sleep(30 * time.Millisecond) // let the sender observe pending
		buf := make([]byte, 32)
		recvPosted.Store(true)
		st, err := c.Recv(0, 1, buf)
		if err != nil {
			return err
		}
		if !bytes.Equal(buf[:st.Bytes], []byte("rendezvous payload")) {
			return fmt.Errorf("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousThresholdBoundary(t *testing.T) {
	// Threshold 10: a 10-byte payload is eager (completes immediately), an
	// 11-byte payload is rendezvous.
	err := LaunchOpts(2, WorldOptions{RendezvousThreshold: 10}, func(c Comm) error {
		if c.Rank() == 0 {
			small, err := c.Isend(1, 1, make([]byte, 10))
			if err != nil {
				return err
			}
			if done, _, _ := small.Test(); !done {
				return fmt.Errorf("10-byte send should be eager")
			}
			big, err := c.Isend(1, 2, make([]byte, 11))
			if err != nil {
				return err
			}
			if done, _, _ := big.Test(); done {
				return fmt.Errorf("11-byte send should be rendezvous")
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			_, err = big.Wait()
			return err
		}
		buf := make([]byte, 16)
		if _, err := c.Recv(0, 1, buf); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err := c.Recv(0, 2, buf)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousBlockingSend(t *testing.T) {
	// Blocking Send under rendezvous completes only after the receive —
	// exercised by a ping-pong that would deadlock if ordering were wrong.
	err := LaunchOpts(2, WorldOptions{RendezvousThreshold: 0}, func(c Comm) error {
		peer := 1 - c.Rank()
		for i := 0; i < 5; i++ {
			if c.Rank() == 0 {
				if err := c.Send(peer, i, []byte{byte(i)}); err != nil {
					return err
				}
				buf := make([]byte, 1)
				if _, err := c.Recv(peer, i, buf); err != nil {
					return err
				}
			} else {
				buf := make([]byte, 1)
				if _, err := c.Recv(peer, i, buf); err != nil {
					return err
				}
				if err := c.Send(peer, i, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousCloseFailsUnmatchedSender(t *testing.T) {
	w, comms, err := NewWorldOpts(2, WorldOptions{RendezvousThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	req, err := comms[0].Isend(1, 1, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := req.Wait()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	if err := <-done; err != ErrClosed {
		t.Errorf("unmatched rendezvous sender got %v, want ErrClosed", err)
	}
}

func TestCollectivesUnderRendezvous(t *testing.T) {
	// All collectives must still complete when every payload is
	// rendezvous: their send/recv pairings are properly ordered.
	err := LaunchOpts(5, WorldOptions{RendezvousThreshold: 0}, func(c Comm) error {
		sum, err := AllReduce(c, []float64{1}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 5 {
			return fmt.Errorf("allreduce = %g", sum[0])
		}
		buf := []byte{0}
		if c.Rank() == 2 {
			buf[0] = 7
		}
		if err := Bcast(c, 2, buf); err != nil {
			return err
		}
		if buf[0] != 7 {
			return fmt.Errorf("bcast = %d", buf[0])
		}
		blocks, err := GatherBytes(c, 0, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if c.Rank() == 0 && len(blocks) != 5 {
			return fmt.Errorf("gather blocks = %d", len(blocks))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
