package mp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Internal control tags used by the TCP transport; user tags are >= 0.
const (
	ctlBarrierArrive  = -2
	ctlBarrierRelease = -3
	// ctlAbort disseminates a world abort over the binomial tree: payload
	// is the 4-byte origin rank followed by the cause string.
	ctlAbort = -4
	// ctlHeartbeat is the liveness probe; any frame proves liveness, the
	// probe only guarantees silence has a bound.
	ctlHeartbeat = -5
	// ctlGoodbye announces a clean departure: the peer's subsequent
	// connection teardown must not be mistaken for a crash.
	ctlGoodbye = -6
)

// maxFrameLen bounds a frame payload (64 MiB): a corrupt or hostile length
// header fails the frame instead of forcing a huge allocation.
const maxFrameLen = 64 << 20

// TCPOptions tunes ConnectTCP.
type TCPOptions struct {
	// DialTimeout bounds how long a rank retries connecting to its peers
	// while the mesh comes up; it also bounds each handshake read/write.
	// Default 10s.
	DialTimeout time.Duration
	// DialBackoff is the initial retry backoff after a failed dial; it
	// doubles per attempt up to a 500ms cap, with ±25% deterministic
	// jitter so a cluster of late dialers doesn't stampede the listener.
	// Default 10ms.
	DialBackoff time.Duration
	// IOTimeout, when positive, bounds every post-handshake frame write;
	// a peer that stops draining its socket then fails the writer instead
	// of wedging it forever. Reads stay unbounded (an idle rank
	// legitimately waits arbitrarily long for the next message).
	IOTimeout time.Duration
	// Deadline, when positive, bounds every blocking wait (Recv,
	// Request.Wait, Barrier): a wait that exceeds it fails with
	// ErrDeadline. Zero means waits block forever.
	Deadline time.Duration
	// Heartbeat, when positive, starts a liveness probe: every interval
	// the rank pings each peer on a reserved control tag and checks when
	// it last heard from them; a peer silent for more than
	// HeartbeatMiss×Heartbeat triggers a world abort naming that peer.
	// Enabling heartbeats implies AbortOnDisconnect.
	Heartbeat time.Duration
	// HeartbeatMiss is how many silent intervals declare a peer dead.
	// Default 3.
	HeartbeatMiss int
	// AbortOnDisconnect makes a lost connection (without the clean
	// shutdown handshake Close performs) abort the world immediately,
	// naming the vanished peer — the fast failure signal for a killed
	// process, complementing the heartbeat's coverage of hangs.
	AbortOnDisconnect bool
	// Cancel, when non-nil, aborts a ConnectTCP still meshing up as soon
	// as the channel is closed: the listener and any half-built
	// connections are torn down and ConnectTCP returns an error. This is
	// how a launcher stops surviving ranks from waiting out the full dial
	// timeout for a rank that already failed.
	Cancel <-chan struct{}
	// OnEvent, when non-nil, observes transport lifecycle events: dial
	// retries and successes, accepted handshakes, handshake failures,
	// post-handshake frame-write errors, heartbeats, lost peers, and
	// aborts. It is called synchronously from the dial/accept goroutines
	// and the send path, so it must be safe for concurrent use and must
	// not block; obs.InstrumentComm uses it to feed the runtime TCP
	// counters.
	OnEvent func(TCPEvent)
	// Epoch is the world generation this endpoint belongs to. A supervisor
	// rebuilding a crashed world bumps the epoch on every relaunch; the
	// epoch is stamped into the connect handshake (a dialer from another
	// generation is refused without failing the mesh-up) and into every
	// reserved-tag control frame (a stale pre-crash abort, heartbeat or
	// goodbye is dropped instead of poisoning the rebuilt world). Zero is
	// a valid epoch: unsupervised runs never have more than one.
	Epoch uint32
}

// TCPEventKind classifies a TCPEvent.
type TCPEventKind int

const (
	// EvDialRetry: a dial attempt to Peer failed with Err and will be
	// retried after backoff (Attempt counts from 0).
	EvDialRetry TCPEventKind = iota
	// EvDialOK: the dial to Peer succeeded on attempt Attempt.
	EvDialOK
	// EvAcceptOK: an inbound connection completed its handshake as Peer.
	EvAcceptOK
	// EvHandshakeErr: a handshake read/write failed (Peer is -1 on the
	// accept side, where the peer's rank was never learned).
	EvHandshakeErr
	// EvWriteErr: a post-handshake frame write to Peer failed with Err.
	EvWriteErr
	// EvHeartbeat: a liveness probe arrived from Peer.
	EvHeartbeat
	// EvPeerLost: the connection to Peer died (or its heartbeats stopped)
	// without a clean goodbye; Err describes how.
	EvPeerLost
	// EvAbort: the world aborted; Peer is the origin rank, Err the cause.
	EvAbort
	// EvStaleEpoch: a handshake or control frame stamped with another
	// world generation was rejected (Peer is the claimed rank, or -1 when
	// unknown; Err names the epochs).
	EvStaleEpoch
)

func (k TCPEventKind) String() string {
	switch k {
	case EvDialRetry:
		return "dial-retry"
	case EvDialOK:
		return "dial-ok"
	case EvAcceptOK:
		return "accept-ok"
	case EvHandshakeErr:
		return "handshake-err"
	case EvWriteErr:
		return "write-err"
	case EvHeartbeat:
		return "heartbeat"
	case EvPeerLost:
		return "peer-lost"
	case EvAbort:
		return "abort"
	case EvStaleEpoch:
		return "stale-epoch"
	default:
		return fmt.Sprintf("TCPEventKind(%d)", int(k))
	}
}

// TCPEvent is one transport lifecycle observation delivered to
// TCPOptions.OnEvent.
type TCPEvent struct {
	Kind TCPEventKind
	// Peer is the peer rank the event concerns, or -1 when unknown.
	Peer int
	// Attempt is the dial attempt number, counted from 0 (dial events
	// only).
	Attempt int
	// Err is the failure for error-kind events, nil otherwise.
	Err error
}

const (
	defaultDialTimeout   = 10 * time.Second
	defaultDialBackoff   = 10 * time.Millisecond
	maxDialBackoff       = 500 * time.Millisecond
	defaultHeartbeatMiss = 3

	// helloLen is the handshake a dialer sends: rank (int32) | epoch
	// (uint32). The acceptor answers with ackLen bytes: its own epoch.
	helloLen = 8
	ackLen   = 4
)

// EpochError reports a connect handshake between two world generations: a
// process from a pre-crash epoch reached a rebuilt world (or vice versa).
// errors.Is(err, ErrStaleEpoch) reports true for it.
type EpochError struct {
	Local, Remote uint32
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("mp: epoch mismatch (local %d, remote %d)", e.Local, e.Remote)
}

// Is makes errors.Is(err, ErrStaleEpoch) match any EpochError.
func (e *EpochError) Is(target error) bool { return target == ErrStaleEpoch }

// tuneConn applies socket options to a mesh connection: TCP_NODELAY
// explicitly on (the transport writes whole frames and latency matters;
// Nagle coalescing only delays the tail of a frame).
func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// ConnectTCP joins rank `rank` of a `size`-rank communicator meshed over
// TCP. addrs[i] must be the listen address ("host:port") of rank i; every
// rank must use the same list. Rank i accepts connections from all higher
// ranks and dials all lower ranks, forming a full mesh.
//
// Failures during mesh-up tear the endpoint down completely: the listener
// and every connection accepted or dialed so far are closed before the
// error is returned, so a failed handshake leaks nothing.
func ConnectTCP(rank, size int, addrs []string, opts *TCPOptions) (Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mp: world size must be positive, got %d", size)
	}
	if err := checkRank(rank, size, "own"); err != nil {
		return nil, err
	}
	if len(addrs) != size {
		return nil, fmt.Errorf("mp: got %d addresses for %d ranks", len(addrs), size)
	}
	timeout := defaultDialTimeout
	if opts != nil && opts.DialTimeout > 0 {
		timeout = opts.DialTimeout
	}
	backoff0 := defaultDialBackoff
	if opts != nil && opts.DialBackoff > 0 {
		backoff0 = opts.DialBackoff
	}

	c := &tcpComm{
		rank:     rank,
		size:     size,
		conns:    make([]*peerConn, size),
		box:      &mailbox{},
		ab:       newAborter(),
		hbMiss:   defaultHeartbeatMiss,
		hbStop:   make(chan struct{}),
		departed: make([]atomic.Bool, size),
		lastSeen: make([]atomic.Int64, size),
	}
	if opts != nil {
		c.ioTimeout = opts.IOTimeout
		c.onEvent = opts.OnEvent
		c.deadline = opts.Deadline
		c.hbInterval = opts.Heartbeat
		if opts.HeartbeatMiss > 0 {
			c.hbMiss = opts.HeartbeatMiss
		}
		c.abortOnDisconnect = opts.AbortOnDisconnect || opts.Heartbeat > 0
		c.epoch = opts.Epoch
	}
	c.barCond = sync.NewCond(&c.barMu)

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("mp: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	c.listener = ln

	// Mesh-up failure machinery: the first error (or an external cancel)
	// closes `abort` and the listener, which unblocks the accept loop and
	// stops the dialers; the error path then closes every connection
	// registered so far via c.Close().
	var (
		wg        sync.WaitGroup
		abortOnce sync.Once
	)
	errCh := make(chan error, size+1)
	abort := make(chan struct{})
	fail := func(err error) {
		errCh <- err
		abortOnce.Do(func() {
			close(abort)
			ln.Close()
		})
	}
	meshDone := make(chan struct{})
	if opts != nil && opts.Cancel != nil {
		cancel := opts.Cancel
		go func() {
			select {
			case <-cancel:
				fail(fmt.Errorf("mp: rank %d: connect canceled", rank))
			case <-meshDone:
			case <-abort:
			}
		}()
	}

	// Accept from higher ranks and dial lower ranks concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for accepted := 0; accepted < size-rank-1; {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-abort: // tear-down in progress; not a new failure
				default:
					fail(fmt.Errorf("mp: rank %d accept: %w", rank, err))
				}
				return
			}
			tuneConn(conn)
			// The handshake must arrive within the dial budget; a
			// connected-but-mute peer must not wedge the mesh forever.
			conn.SetReadDeadline(time.Now().Add(timeout))
			var hello [helloLen]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: -1, Err: err})
				fail(fmt.Errorf("mp: rank %d handshake read: %w", rank, err))
				return
			}
			conn.SetReadDeadline(time.Time{})
			peer := int(int32(binary.BigEndian.Uint32(hello[0:4])))
			peerEpoch := binary.BigEndian.Uint32(hello[4:8])
			if err := checkRank(peer, size, "peer"); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: peer, Err: err})
				fail(err)
				return
			}
			// Answer with our own epoch before judging the peer's, so a
			// stale dialer learns why it was refused instead of seeing EOF.
			var ack [ackLen]byte
			binary.BigEndian.PutUint32(ack[:], c.epoch)
			conn.SetWriteDeadline(time.Now().Add(timeout))
			if _, err := conn.Write(ack[:]); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: peer, Err: err})
				fail(fmt.Errorf("mp: rank %d handshake ack write: %w", rank, err))
				return
			}
			conn.SetWriteDeadline(time.Time{})
			if peerEpoch != c.epoch {
				// A dialer from another world generation — typically a
				// process that outlived its crash and found our rebuilt
				// listener. Refuse it without failing the mesh-up: the
				// peer we are actually waiting for is still to come.
				conn.Close()
				c.event(TCPEvent{Kind: EvStaleEpoch, Peer: peer,
					Err: &EpochError{Local: c.epoch, Remote: peerEpoch}})
				continue
			}
			if err := c.setConn(peer, conn); err != nil {
				fail(err)
				return
			}
			c.event(TCPEvent{Kind: EvAcceptOK, Peer: peer})
			accepted++
		}
	}()
	for i := 0; i < rank; i++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			deadline := time.Now().Add(timeout)
			backoff := backoff0
			var conn net.Conn
			var err error
			for attempt := int64(0); ; attempt++ {
				select {
				case <-abort:
					return
				default:
				}
				conn, err = net.DialTimeout("tcp", addrs[peer], time.Second)
				if err == nil {
					c.event(TCPEvent{Kind: EvDialOK, Peer: peer, Attempt: int(attempt)})
					break
				}
				if time.Now().After(deadline) {
					fail(fmt.Errorf("mp: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err))
					return
				}
				c.event(TCPEvent{Kind: EvDialRetry, Peer: peer, Attempt: int(attempt), Err: err})
				// Capped exponential backoff with deterministic ±25% jitter
				// keyed on (rank, peer, attempt).
				u := fault.Unit(uint64(rank)+1, int64(peer), attempt)
				sleep := time.Duration(float64(backoff) * (0.75 + 0.5*u))
				select {
				case <-abort:
					return
				case <-time.After(sleep):
				}
				if backoff *= 2; backoff > maxDialBackoff {
					backoff = maxDialBackoff
				}
			}
			tuneConn(conn)
			conn.SetWriteDeadline(time.Now().Add(timeout))
			var hello [helloLen]byte
			binary.BigEndian.PutUint32(hello[0:4], uint32(int32(rank)))
			binary.BigEndian.PutUint32(hello[4:8], c.epoch)
			if _, err := conn.Write(hello[:]); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: peer, Err: err})
				fail(fmt.Errorf("mp: rank %d handshake write: %w", rank, err))
				return
			}
			conn.SetWriteDeadline(time.Time{})
			conn.SetReadDeadline(time.Now().Add(timeout))
			var ack [ackLen]byte
			if _, err := io.ReadFull(conn, ack[:]); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: peer, Err: err})
				fail(fmt.Errorf("mp: rank %d handshake ack read: %w", rank, err))
				return
			}
			conn.SetReadDeadline(time.Time{})
			if remote := binary.BigEndian.Uint32(ack[:]); remote != c.epoch {
				err := &EpochError{Local: c.epoch, Remote: remote}
				conn.Close()
				c.event(TCPEvent{Kind: EvStaleEpoch, Peer: peer, Err: err})
				fail(fmt.Errorf("mp: rank %d dial rank %d: %w", rank, peer, err))
				return
			}
			if err := c.setConn(peer, conn); err != nil {
				fail(err)
				return
			}
		}(i)
	}
	wg.Wait()
	close(meshDone)
	select {
	case err := <-errCh:
		c.Close()
		return nil, err
	default:
	}
	// Everyone is provably alive right now; liveness tracking starts here.
	now := time.Now().UnixNano()
	for i := range c.lastSeen {
		c.lastSeen[i].Store(now)
	}
	// Start one reader per peer, plus the optional liveness prober.
	for i, pc := range c.conns {
		if pc == nil {
			continue
		}
		c.readers.Add(1)
		go c.readLoop(i, pc)
	}
	if c.hbInterval > 0 && size > 1 {
		c.readers.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// peerConn wraps one TCP connection with a write lock.
type peerConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

type tcpComm struct {
	rank, size int
	epoch      uint32
	listener   net.Listener
	conns      []*peerConn
	box        *mailbox
	readers    sync.WaitGroup
	ioTimeout  time.Duration
	onEvent    func(TCPEvent)

	// Failure handling.
	ab                *aborter
	deadline          time.Duration
	hbInterval        time.Duration
	hbMiss            int
	hbStop            chan struct{}
	hbStopOnce        sync.Once
	abortOnDisconnect bool
	departed          []atomic.Bool  // peer sent ctlGoodbye
	lastSeen          []atomic.Int64 // UnixNano of last frame per peer

	mu        sync.Mutex
	closed    bool
	closeOnce sync.Once

	// Barrier state: rank 0 coordinates.
	barMu      sync.Mutex
	barCond    *sync.Cond
	barArrived int
	barGen     int
}

// setConn registers a completed handshake. A duplicate claim for the same
// rank or a comm already torn down closes the connection instead of
// leaking it.
func (c *tcpComm) setConn(peer int, conn net.Conn) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return ErrClosed
	}
	if c.conns[peer] != nil {
		conn.Close()
		return fmt.Errorf("mp: rank %d: duplicate connection claiming rank %d", c.rank, peer)
	}
	c.conns[peer] = &peerConn{conn: conn}
	return nil
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// frame layout: src int32 | tag int32 | len int32 | payload.
func (c *tcpComm) writeFrame(dst, tag int, data []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	pc := c.conns[dst]
	c.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("mp: no connection to rank %d", dst)
	}
	return c.writeFrameConn(pc, dst, tag, data)
}

// writeFrameConn writes one frame on an already-resolved connection; Close
// uses it directly for the goodbye frames after marking the comm closed.
// Reserved-tag (control) frames carry a 4-byte epoch prefix in front of
// their payload so a peer from another world generation can reject them:
// the handshake already fences whole connections, the prefix fences any
// frame that was in flight when the worlds changed over.
func (c *tcpComm) writeFrameConn(pc *peerConn, dst, tag int, data []byte) error {
	if tag < 0 {
		stamped := make([]byte, 4+len(data))
		binary.BigEndian.PutUint32(stamped[0:4], c.epoch)
		copy(stamped[4:], data)
		data = stamped
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(int32(c.rank)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(tag)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(len(data))))
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if c.ioTimeout > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(c.ioTimeout))
		defer pc.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := pc.conn.Write(hdr[:]); err != nil {
		c.event(TCPEvent{Kind: EvWriteErr, Peer: dst, Err: err})
		return err
	}
	if len(data) > 0 {
		if _, err := pc.conn.Write(data); err != nil {
			c.event(TCPEvent{Kind: EvWriteErr, Peer: dst, Err: err})
			return err
		}
	}
	return nil
}

// event delivers ev to the registered observer, if any.
func (c *tcpComm) event(ev TCPEvent) {
	if c.onEvent != nil {
		c.onEvent(ev)
	}
}

// decodeFrame reads and validates one frame. A corrupt header (source out
// of range, negative or oversized length) fails with an error rather than
// panicking, and a large length claim on a truncated stream grows its
// buffer incrementally instead of trusting the header with one huge
// allocation.
func decodeFrame(r io.Reader, size int) (src, tag int, payload []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	src = int(int32(binary.BigEndian.Uint32(hdr[0:4])))
	tag = int(int32(binary.BigEndian.Uint32(hdr[4:8])))
	n := int64(int32(binary.BigEndian.Uint32(hdr[8:12])))
	if src < 0 || src >= size {
		return 0, 0, nil, fmt.Errorf("mp: frame source %d out of range [0,%d)", src, size)
	}
	if n < 0 || n > maxFrameLen {
		return 0, 0, nil, fmt.Errorf("mp: frame length %d out of range [0,%d]", n, int64(maxFrameLen))
	}
	switch {
	case n == 0:
	case n <= 64<<10: // common case: one exact allocation
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, 0, nil, err
		}
	default:
		var buf bytes.Buffer
		if _, err := io.CopyN(&buf, r, n); err != nil {
			return 0, 0, nil, err
		}
		payload = buf.Bytes()
	}
	return src, tag, payload, nil
}

func (c *tcpComm) readLoop(peer int, pc *peerConn) {
	defer c.readers.Done()
	for {
		src, tag, data, err := decodeFrame(pc.conn, c.size)
		if err != nil {
			c.peerGone(peer, err)
			return
		}
		c.lastSeen[peer].Store(time.Now().UnixNano())
		if tag < 0 {
			// Control frames carry an epoch prefix (see writeFrameConn).
			// A mismatch means the frame was written by an endpoint of a
			// different world generation: drop it rather than letting a
			// pre-crash abort or goodbye poison the rebuilt world.
			if len(data) < 4 {
				c.event(TCPEvent{Kind: EvStaleEpoch, Peer: peer,
					Err: fmt.Errorf("mp: control frame tag %d missing epoch prefix", tag)})
				continue
			}
			if got := binary.BigEndian.Uint32(data[0:4]); got != c.epoch {
				c.event(TCPEvent{Kind: EvStaleEpoch, Peer: peer,
					Err: &EpochError{Local: c.epoch, Remote: got}})
				continue
			}
			c.handleControl(src, tag, data[4:])
			continue
		}
		_ = c.box.deliver(&envelope{src: src, tag: tag, data: data})
	}
}

// peerGone handles a dead connection: silently during teardown or after a
// clean goodbye, otherwise it is a crash signal — reported, and (when the
// failure-detection options ask for it) escalated to a world abort.
func (c *tcpComm) peerGone(peer int, err error) {
	if c.isClosed() || c.ab.cause() != nil || c.departed[peer].Load() {
		return
	}
	c.event(TCPEvent{Kind: EvPeerLost, Peer: peer, Err: err})
	if c.abortOnDisconnect {
		c.doAbort(&AbortError{
			Rank:  peer,
			Cause: fmt.Errorf("mp: connection to rank %d lost: %w", peer, err),
		}, true)
	}
}

func (c *tcpComm) handleControl(src, tag int, payload []byte) {
	switch tag {
	case ctlBarrierArrive: // only rank 0 receives these
		c.barMu.Lock()
		c.barArrived++
		c.barCond.Broadcast()
		c.barMu.Unlock()
	case ctlBarrierRelease: // non-zero ranks
		c.barMu.Lock()
		c.barGen++
		c.barCond.Broadcast()
		c.barMu.Unlock()
	case ctlAbort:
		origin, cause := decodeAbort(payload)
		c.doAbort(&AbortError{Rank: origin, Cause: errors.New(cause)}, true)
	case ctlHeartbeat:
		c.event(TCPEvent{Kind: EvHeartbeat, Peer: src})
	case ctlGoodbye:
		c.departed[src].Store(true)
	}
}

func encodeAbort(e *AbortError) []byte {
	cause := "unknown"
	if e.Cause != nil {
		cause = e.Cause.Error()
	}
	buf := make([]byte, 4+len(cause))
	binary.BigEndian.PutUint32(buf[0:4], uint32(int32(e.Rank)))
	copy(buf[4:], cause)
	return buf
}

func decodeAbort(payload []byte) (origin int, cause string) {
	if len(payload) < 4 {
		return -1, "malformed abort"
	}
	return int(int32(binary.BigEndian.Uint32(payload[0:4]))), string(payload[4:])
}

// doAbort latches the abort, unblocks every local waiter (mailbox and
// barrier), and — when forwarding — passes the poison to this rank's
// children on the binomial tree rooted at the origin, reaching all ranks
// in ⌈log2 size⌉ hops.
func (c *tcpComm) doAbort(e *AbortError, forward bool) {
	if !c.ab.abort(e) {
		return
	}
	c.event(TCPEvent{Kind: EvAbort, Peer: e.Rank, Err: e.Cause})
	c.box.poison(e)
	c.barMu.Lock()
	c.barCond.Broadcast()
	c.barMu.Unlock()
	if !forward {
		return
	}
	payload := encodeAbort(e)
	for _, child := range abortChildren(c.rank, e.Rank, c.size) {
		// Best effort: a child whose connection is already dead will learn
		// of the abort from its own disconnect signal or deadline.
		_ = c.writeFrame(child, ctlAbort, payload)
	}
}

func (c *tcpComm) Abort(cause error) error {
	if c.isClosed() {
		return ErrClosed
	}
	c.doAbort(&AbortError{Rank: c.rank, Cause: cause}, true)
	return nil
}

// heartbeatLoop probes every live peer each interval and declares the
// world aborted when one has been silent too long. Any received frame
// counts as liveness; the probe only bounds the silence.
func (c *tcpComm) heartbeatLoop() {
	defer c.readers.Done()
	ticker := time.NewTicker(c.hbInterval)
	defer ticker.Stop()
	limit := time.Duration(c.hbMiss) * c.hbInterval
	for {
		select {
		case <-c.hbStop:
			return
		case <-c.ab.done():
			return
		case now := <-ticker.C:
			for p := range c.conns {
				if p == c.rank || c.conns[p] == nil || c.departed[p].Load() {
					continue
				}
				_ = c.writeFrame(p, ctlHeartbeat, nil)
				silent := now.Sub(time.Unix(0, c.lastSeen[p].Load()))
				if silent > limit {
					err := fmt.Errorf("mp: rank %d heartbeat timeout (silent %v > %v)", p, silent.Round(time.Millisecond), limit)
					c.event(TCPEvent{Kind: EvPeerLost, Peer: p, Err: err})
					c.doAbort(&AbortError{Rank: p, Cause: err}, true)
					return
				}
			}
		}
	}
}

func (c *tcpComm) Send(dst, tag int, data []byte) error {
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c *tcpComm) Isend(dst, tag int, data []byte) (Request, error) {
	if e := c.ab.cause(); e != nil {
		return nil, e
	}
	if err := checkRank(dst, c.size, "destination"); err != nil {
		return nil, err
	}
	if err := checkTag(tag, false); err != nil {
		return nil, err
	}
	if dst == c.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		err := c.box.deliver(&envelope{src: c.rank, tag: tag, data: cp})
		return sendReq{err: err}, err
	}
	err := c.writeFrame(dst, tag, data)
	return sendReq{err: err}, err
}

func (c *tcpComm) Recv(src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

func (c *tcpComm) Irecv(src, tag int, buf []byte) (Request, error) {
	if err := checkSource(src, c.size); err != nil {
		return nil, err
	}
	if err := checkTag(tag, true); err != nil {
		return nil, err
	}
	op := newRecvOp(src, tag, buf)
	op.deadline = c.deadline
	if err := c.box.post(op); err != nil {
		return nil, err
	}
	return op, nil
}

// Barrier: ranks send an arrive frame to rank 0; rank 0 waits for size−1
// arrivals plus itself, then broadcasts release frames. The wait observes
// both the communicator deadline and aborts.
func (c *tcpComm) Barrier() error {
	if e := c.ab.cause(); e != nil {
		return e
	}
	if c.size == 1 {
		return nil
	}
	var expired bool
	if c.deadline > 0 {
		timer := time.AfterFunc(c.deadline, func() {
			c.barMu.Lock()
			expired = true
			c.barCond.Broadcast()
			c.barMu.Unlock()
		})
		defer timer.Stop()
	}
	if c.rank == 0 {
		c.barMu.Lock()
		for c.barArrived < c.size-1 {
			if e := c.ab.cause(); e != nil {
				c.barMu.Unlock()
				return e
			}
			if expired {
				c.barMu.Unlock()
				return ErrDeadline
			}
			c.barCond.Wait()
		}
		c.barArrived -= c.size - 1
		c.barMu.Unlock()
		for i := 1; i < c.size; i++ {
			if err := c.writeFrame(i, ctlBarrierRelease, nil); err != nil {
				return err
			}
		}
		return nil
	}
	c.barMu.Lock()
	gen := c.barGen
	c.barMu.Unlock()
	if err := c.writeFrame(0, ctlBarrierArrive, nil); err != nil {
		return err
	}
	c.barMu.Lock()
	defer c.barMu.Unlock()
	for c.barGen == gen {
		if e := c.ab.cause(); e != nil {
			return e
		}
		if expired {
			return ErrDeadline
		}
		c.barCond.Wait()
	}
	return nil
}

func (c *tcpComm) Close() error {
	c.closeOnce.Do(func() {
		// Stop probing before the connections go away.
		c.hbStopOnce.Do(func() { close(c.hbStop) })
		// Polite departure: tell live peers this endpoint is leaving so
		// the connection teardown below is not mistaken for a crash.
		// Sent even when the world is aborted: abort propagation may
		// still be in flight, and a peer that has not latched it yet
		// would otherwise see a bare EOF and misreport this clean close
		// as a peer-lost crash.
		c.mu.Lock()
		conns := append([]*peerConn(nil), c.conns...)
		c.mu.Unlock()
		for p, pc := range conns {
			if pc != nil && p != c.rank {
				_ = c.writeFrameConn(pc, p, ctlGoodbye, nil)
			}
		}
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		if c.listener != nil {
			c.listener.Close()
		}
		for _, pc := range conns {
			if pc != nil {
				pc.conn.Close()
			}
		}
		c.box.close()
		c.readers.Wait()
	})
	return nil
}
