package mp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/fault"
)

// Internal control tags used by the TCP transport; user tags are >= 0.
const (
	ctlBarrierArrive  = -2
	ctlBarrierRelease = -3
)

// TCPOptions tunes ConnectTCP.
type TCPOptions struct {
	// DialTimeout bounds how long a rank retries connecting to its peers
	// while the mesh comes up; it also bounds each handshake read/write.
	// Default 10s.
	DialTimeout time.Duration
	// DialBackoff is the initial retry backoff after a failed dial; it
	// doubles per attempt up to a 500ms cap, with ±25% deterministic
	// jitter so a cluster of late dialers doesn't stampede the listener.
	// Default 10ms.
	DialBackoff time.Duration
	// IOTimeout, when positive, bounds every post-handshake frame write;
	// a peer that stops draining its socket then fails the writer instead
	// of wedging it forever. Reads stay unbounded (an idle rank
	// legitimately waits arbitrarily long for the next message).
	IOTimeout time.Duration
	// Cancel, when non-nil, aborts a ConnectTCP still meshing up as soon
	// as the channel is closed: the listener and any half-built
	// connections are torn down and ConnectTCP returns an error. This is
	// how a launcher stops surviving ranks from waiting out the full dial
	// timeout for a rank that already failed.
	Cancel <-chan struct{}
	// OnEvent, when non-nil, observes transport lifecycle events: dial
	// retries and successes, accepted handshakes, handshake failures, and
	// post-handshake frame-write errors. It is called synchronously from
	// the dial/accept goroutines and the send path, so it must be safe for
	// concurrent use and must not block; obs.InstrumentComm uses it to feed
	// the runtime TCP counters.
	OnEvent func(TCPEvent)
}

// TCPEventKind classifies a TCPEvent.
type TCPEventKind int

const (
	// EvDialRetry: a dial attempt to Peer failed with Err and will be
	// retried after backoff (Attempt counts from 0).
	EvDialRetry TCPEventKind = iota
	// EvDialOK: the dial to Peer succeeded on attempt Attempt.
	EvDialOK
	// EvAcceptOK: an inbound connection completed its handshake as Peer.
	EvAcceptOK
	// EvHandshakeErr: a handshake read/write failed (Peer is -1 on the
	// accept side, where the peer's rank was never learned).
	EvHandshakeErr
	// EvWriteErr: a post-handshake frame write to Peer failed with Err.
	EvWriteErr
)

func (k TCPEventKind) String() string {
	switch k {
	case EvDialRetry:
		return "dial-retry"
	case EvDialOK:
		return "dial-ok"
	case EvAcceptOK:
		return "accept-ok"
	case EvHandshakeErr:
		return "handshake-err"
	case EvWriteErr:
		return "write-err"
	default:
		return fmt.Sprintf("TCPEventKind(%d)", int(k))
	}
}

// TCPEvent is one transport lifecycle observation delivered to
// TCPOptions.OnEvent.
type TCPEvent struct {
	Kind TCPEventKind
	// Peer is the peer rank the event concerns, or -1 when unknown.
	Peer int
	// Attempt is the dial attempt number, counted from 0 (dial events
	// only).
	Attempt int
	// Err is the failure for error-kind events, nil otherwise.
	Err error
}

const (
	defaultDialTimeout = 10 * time.Second
	defaultDialBackoff = 10 * time.Millisecond
	maxDialBackoff     = 500 * time.Millisecond
)

// tuneConn applies socket options to a mesh connection: TCP_NODELAY
// explicitly on (the transport writes whole frames and latency matters;
// Nagle coalescing only delays the tail of a frame).
func tuneConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// ConnectTCP joins rank `rank` of a `size`-rank communicator meshed over
// TCP. addrs[i] must be the listen address ("host:port") of rank i; every
// rank must use the same list. Rank i accepts connections from all higher
// ranks and dials all lower ranks, forming a full mesh.
//
// Failures during mesh-up tear the endpoint down completely: the listener
// and every connection accepted or dialed so far are closed before the
// error is returned, so a failed handshake leaks nothing.
func ConnectTCP(rank, size int, addrs []string, opts *TCPOptions) (Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mp: world size must be positive, got %d", size)
	}
	if err := checkRank(rank, size, "own"); err != nil {
		return nil, err
	}
	if len(addrs) != size {
		return nil, fmt.Errorf("mp: got %d addresses for %d ranks", len(addrs), size)
	}
	timeout := defaultDialTimeout
	if opts != nil && opts.DialTimeout > 0 {
		timeout = opts.DialTimeout
	}
	backoff0 := defaultDialBackoff
	if opts != nil && opts.DialBackoff > 0 {
		backoff0 = opts.DialBackoff
	}

	c := &tcpComm{
		rank:  rank,
		size:  size,
		conns: make([]*peerConn, size),
		box:   &mailbox{},
	}
	if opts != nil {
		c.ioTimeout = opts.IOTimeout
		c.onEvent = opts.OnEvent
	}
	c.barCond = sync.NewCond(&c.barMu)

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("mp: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	c.listener = ln

	// Mesh-up failure machinery: the first error (or an external cancel)
	// closes `abort` and the listener, which unblocks the accept loop and
	// stops the dialers; the error path then closes every connection
	// registered so far via c.Close().
	var (
		wg        sync.WaitGroup
		abortOnce sync.Once
	)
	errCh := make(chan error, size+1)
	abort := make(chan struct{})
	fail := func(err error) {
		errCh <- err
		abortOnce.Do(func() {
			close(abort)
			ln.Close()
		})
	}
	meshDone := make(chan struct{})
	if opts != nil && opts.Cancel != nil {
		cancel := opts.Cancel
		go func() {
			select {
			case <-cancel:
				fail(fmt.Errorf("mp: rank %d: connect canceled", rank))
			case <-meshDone:
			case <-abort:
			}
		}()
	}

	// Accept from higher ranks and dial lower ranks concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := rank + 1; i < size; i++ {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-abort: // tear-down in progress; not a new failure
				default:
					fail(fmt.Errorf("mp: rank %d accept: %w", rank, err))
				}
				return
			}
			tuneConn(conn)
			// The handshake must arrive within the dial budget; a
			// connected-but-mute peer must not wedge the mesh forever.
			conn.SetReadDeadline(time.Now().Add(timeout))
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: -1, Err: err})
				fail(fmt.Errorf("mp: rank %d handshake read: %w", rank, err))
				return
			}
			conn.SetReadDeadline(time.Time{})
			peer := int(int32(binary.BigEndian.Uint32(hello[:])))
			if err := checkRank(peer, size, "peer"); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: peer, Err: err})
				fail(err)
				return
			}
			if err := c.setConn(peer, conn); err != nil {
				fail(err)
				return
			}
			c.event(TCPEvent{Kind: EvAcceptOK, Peer: peer})
		}
	}()
	for i := 0; i < rank; i++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			deadline := time.Now().Add(timeout)
			backoff := backoff0
			var conn net.Conn
			var err error
			for attempt := int64(0); ; attempt++ {
				select {
				case <-abort:
					return
				default:
				}
				conn, err = net.DialTimeout("tcp", addrs[peer], time.Second)
				if err == nil {
					c.event(TCPEvent{Kind: EvDialOK, Peer: peer, Attempt: int(attempt)})
					break
				}
				if time.Now().After(deadline) {
					fail(fmt.Errorf("mp: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err))
					return
				}
				c.event(TCPEvent{Kind: EvDialRetry, Peer: peer, Attempt: int(attempt), Err: err})
				// Capped exponential backoff with deterministic ±25% jitter
				// keyed on (rank, peer, attempt).
				u := fault.Unit(uint64(rank)+1, int64(peer), attempt)
				sleep := time.Duration(float64(backoff) * (0.75 + 0.5*u))
				select {
				case <-abort:
					return
				case <-time.After(sleep):
				}
				if backoff *= 2; backoff > maxDialBackoff {
					backoff = maxDialBackoff
				}
			}
			tuneConn(conn)
			conn.SetWriteDeadline(time.Now().Add(timeout))
			var hello [4]byte
			binary.BigEndian.PutUint32(hello[:], uint32(int32(rank)))
			if _, err := conn.Write(hello[:]); err != nil {
				conn.Close()
				c.event(TCPEvent{Kind: EvHandshakeErr, Peer: peer, Err: err})
				fail(fmt.Errorf("mp: rank %d handshake write: %w", rank, err))
				return
			}
			conn.SetWriteDeadline(time.Time{})
			if err := c.setConn(peer, conn); err != nil {
				fail(err)
				return
			}
		}(i)
	}
	wg.Wait()
	close(meshDone)
	select {
	case err := <-errCh:
		c.Close()
		return nil, err
	default:
	}
	// Start one reader per peer.
	for i, pc := range c.conns {
		if pc == nil {
			continue
		}
		c.readers.Add(1)
		go c.readLoop(i, pc)
	}
	return c, nil
}

// peerConn wraps one TCP connection with a write lock.
type peerConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

type tcpComm struct {
	rank, size int
	listener   net.Listener
	conns      []*peerConn
	box        *mailbox
	readers    sync.WaitGroup
	ioTimeout  time.Duration
	onEvent    func(TCPEvent)

	mu     sync.Mutex
	closed bool

	// Barrier state: rank 0 coordinates.
	barMu      sync.Mutex
	barCond    *sync.Cond
	barArrived int
	barGen     int
}

// setConn registers a completed handshake. A duplicate claim for the same
// rank or a comm already torn down closes the connection instead of
// leaking it.
func (c *tcpComm) setConn(peer int, conn net.Conn) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return ErrClosed
	}
	if c.conns[peer] != nil {
		conn.Close()
		return fmt.Errorf("mp: rank %d: duplicate connection claiming rank %d", c.rank, peer)
	}
	c.conns[peer] = &peerConn{conn: conn}
	return nil
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

// frame layout: src int32 | tag int32 | len int32 | payload.
func (c *tcpComm) writeFrame(dst, tag int, data []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	pc := c.conns[dst]
	c.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("mp: no connection to rank %d", dst)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(int32(c.rank)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(tag)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(len(data))))
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if c.ioTimeout > 0 {
		pc.conn.SetWriteDeadline(time.Now().Add(c.ioTimeout))
		defer pc.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := pc.conn.Write(hdr[:]); err != nil {
		c.event(TCPEvent{Kind: EvWriteErr, Peer: dst, Err: err})
		return err
	}
	if len(data) > 0 {
		if _, err := pc.conn.Write(data); err != nil {
			c.event(TCPEvent{Kind: EvWriteErr, Peer: dst, Err: err})
			return err
		}
	}
	return nil
}

// event delivers ev to the registered observer, if any.
func (c *tcpComm) event(ev TCPEvent) {
	if c.onEvent != nil {
		c.onEvent(ev)
	}
}

func (c *tcpComm) readLoop(peer int, pc *peerConn) {
	defer c.readers.Done()
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(pc.conn, hdr[:]); err != nil {
			return // connection closed
		}
		src := int(int32(binary.BigEndian.Uint32(hdr[0:4])))
		tag := int(int32(binary.BigEndian.Uint32(hdr[4:8])))
		n := int(int32(binary.BigEndian.Uint32(hdr[8:12])))
		data := make([]byte, n)
		if _, err := io.ReadFull(pc.conn, data); err != nil {
			return
		}
		if tag < 0 {
			c.handleControl(src, tag)
			continue
		}
		_ = c.box.deliver(&envelope{src: src, tag: tag, data: data})
	}
}

func (c *tcpComm) handleControl(src, tag int) {
	switch tag {
	case ctlBarrierArrive: // only rank 0 receives these
		c.barMu.Lock()
		c.barArrived++
		c.barCond.Broadcast()
		c.barMu.Unlock()
	case ctlBarrierRelease: // non-zero ranks
		c.barMu.Lock()
		c.barGen++
		c.barCond.Broadcast()
		c.barMu.Unlock()
	}
}

func (c *tcpComm) Send(dst, tag int, data []byte) error {
	req, err := c.Isend(dst, tag, data)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c *tcpComm) Isend(dst, tag int, data []byte) (Request, error) {
	if err := checkRank(dst, c.size, "destination"); err != nil {
		return nil, err
	}
	if err := checkTag(tag, false); err != nil {
		return nil, err
	}
	if dst == c.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		err := c.box.deliver(&envelope{src: c.rank, tag: tag, data: cp})
		return sendReq{err: err}, err
	}
	err := c.writeFrame(dst, tag, data)
	return sendReq{err: err}, err
}

func (c *tcpComm) Recv(src, tag int, buf []byte) (Status, error) {
	req, err := c.Irecv(src, tag, buf)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

func (c *tcpComm) Irecv(src, tag int, buf []byte) (Request, error) {
	if err := checkSource(src, c.size); err != nil {
		return nil, err
	}
	if err := checkTag(tag, true); err != nil {
		return nil, err
	}
	op := newRecvOp(src, tag, buf)
	if err := c.box.post(op); err != nil {
		return nil, err
	}
	return op, nil
}

// Barrier: ranks send an arrive frame to rank 0; rank 0 waits for size−1
// arrivals plus itself, then broadcasts release frames.
func (c *tcpComm) Barrier() error {
	if c.size == 1 {
		return nil
	}
	if c.rank == 0 {
		c.barMu.Lock()
		for c.barArrived < c.size-1 {
			c.barCond.Wait()
		}
		c.barArrived -= c.size - 1
		c.barMu.Unlock()
		for i := 1; i < c.size; i++ {
			if err := c.writeFrame(i, ctlBarrierRelease, nil); err != nil {
				return err
			}
		}
		return nil
	}
	c.barMu.Lock()
	gen := c.barGen
	c.barMu.Unlock()
	if err := c.writeFrame(0, ctlBarrierArrive, nil); err != nil {
		return err
	}
	c.barMu.Lock()
	for c.barGen == gen {
		c.barCond.Wait()
	}
	c.barMu.Unlock()
	return nil
}

func (c *tcpComm) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*peerConn(nil), c.conns...)
	c.mu.Unlock()
	if c.listener != nil {
		c.listener.Close()
	}
	for _, pc := range conns {
		if pc != nil {
			pc.conn.Close()
		}
	}
	c.box.close()
	c.readers.Wait()
	return nil
}
