package mp

import (
	"fmt"
	"math"
)

// Collective operations in the style of MPI, built on the point-to-point
// primitives. Like MPI collectives they must be called by every rank of the
// communicator, in the same order; distinct collectives are kept apart by
// reserved tags plus the transport's non-overtaking guarantee.

// Reserved tag bases for collectives (user tags should stay below 1<<28).
const (
	tagBcast = 1<<28 + iota*4096
	tagReduce
	tagGather
)

// ReduceOp combines two float64 values.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin ReduceOp = func(a, b float64) float64 { return math.Min(a, b) }
)

// vrank maps rank into the tree rooted at root.
func vrank(rank, root, size int) int { return (rank - root + size) % size }

// arank maps a virtual rank back to an actual rank.
func arank(v, root, size int) int { return (v + root) % size }

// Bcast broadcasts buf from root to every rank over a binomial tree. On
// non-root ranks buf is overwritten; its length must match the root's.
func Bcast(c Comm, root int, buf []byte) error {
	size := c.Size()
	if err := checkRank(root, size, "root"); err != nil {
		return err
	}
	if size == 1 {
		return nil
	}
	v := vrank(c.Rank(), root, size)
	// Binomial tree: in round m (mask = 1<<m), virtual ranks < mask send to
	// rank+mask; ranks in [mask, 2·mask) receive from rank−mask.
	received := v == 0
	for mask := 1; mask < size; mask <<= 1 {
		if v < mask {
			// Potential sender this round.
			peer := v + mask
			if peer < size && received {
				if err := c.Send(arank(peer, root, size), tagBcast, buf); err != nil {
					return err
				}
			}
		} else if v < mask<<1 {
			// Receiver this round.
			peer := v - mask
			st, err := c.Recv(arank(peer, root, size), tagBcast, buf)
			if err != nil {
				return err
			}
			if st.Bytes != len(buf) {
				return fmt.Errorf("mp: bcast size mismatch: got %d, buffer %d", st.Bytes, len(buf))
			}
			received = true
		}
	}
	return nil
}

// Reduce combines the in slices of all ranks elementwise with op, leaving
// the result on root (returned there; nil elsewhere). All ranks must pass
// slices of equal length.
func Reduce(c Comm, root int, in []float64, op ReduceOp) ([]float64, error) {
	size := c.Size()
	if err := checkRank(root, size, "root"); err != nil {
		return nil, err
	}
	if op == nil {
		return nil, fmt.Errorf("mp: nil reduce op")
	}
	acc := append([]float64(nil), in...)
	v := vrank(c.Rank(), root, size)
	// Reverse binomial tree: in round mask, virtual ranks with bit mask set
	// send their accumulator to v-mask and drop out.
	buf := make([]byte, 8*len(in))
	for mask := 1; mask < size; mask <<= 1 {
		if v&mask != 0 {
			packFloats(buf, acc)
			return nil, c.Send(arank(v-mask, root, size), tagReduce, buf)
		}
		peer := v + mask
		if peer < size {
			st, err := c.Recv(arank(peer, root, size), tagReduce, buf)
			if err != nil {
				return nil, err
			}
			if st.Bytes != len(buf) {
				return nil, fmt.Errorf("mp: reduce size mismatch from rank %d", st.Source)
			}
			other := unpackFloats(buf)
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	return acc, nil
}

// AllReduce is Reduce to rank 0 followed by Bcast: every rank receives the
// combined result.
func AllReduce(c Comm, in []float64, op ReduceOp) ([]float64, error) {
	res, err := Reduce(c, 0, in, op)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 8*len(in))
	if c.Rank() == 0 {
		packFloats(buf, res)
	}
	if err := Bcast(c, 0, buf); err != nil {
		return nil, err
	}
	return unpackFloats(buf), nil
}

// GatherBytes collects every rank's block on root. On root the result has
// Size() entries indexed by rank (including root's own block); on other
// ranks it is nil. Blocks may have different lengths: each sender prefixes
// its payload with a size message so the root can allocate exactly.
func GatherBytes(c Comm, root int, block []byte) ([][]byte, error) {
	size := c.Size()
	if err := checkRank(root, size, "root"); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		var hdr [8]byte
		n := uint64(len(block))
		for i := 0; i < 8; i++ {
			hdr[i] = byte(n >> (56 - 8*i))
		}
		if err := c.Send(root, tagGather, hdr[:]); err != nil {
			return nil, err
		}
		return nil, c.Send(root, tagGather, block)
	}
	out := make([][]byte, size)
	out[root] = append([]byte(nil), block...)
	for rank := 0; rank < size; rank++ {
		if rank == root {
			continue
		}
		var hdr [8]byte
		if _, err := c.Recv(rank, tagGather, hdr[:]); err != nil {
			return nil, err
		}
		var n uint64
		for i := 0; i < 8; i++ {
			n = n<<8 | uint64(hdr[i])
		}
		buf := make([]byte, n)
		st, err := c.Recv(rank, tagGather, buf)
		if err != nil {
			return nil, err
		}
		if uint64(st.Bytes) != n {
			return nil, fmt.Errorf("mp: gather from rank %d: %d bytes, header said %d", rank, st.Bytes, n)
		}
		out[rank] = buf
	}
	return out, nil
}

// GatherBytesSized is GatherBytes for equal, known block sizes — the common
// case (and the one runner uses). Every rank must pass a block of exactly
// blockLen bytes.
func GatherBytesSized(c Comm, root int, block []byte, blockLen int) ([][]byte, error) {
	if len(block) != blockLen {
		return nil, fmt.Errorf("mp: block is %d bytes, want %d", len(block), blockLen)
	}
	size := c.Size()
	if err := checkRank(root, size, "root"); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGather, block)
	}
	out := make([][]byte, size)
	out[root] = append([]byte(nil), block...)
	for rank := 0; rank < size; rank++ {
		if rank == root {
			continue
		}
		buf := make([]byte, blockLen)
		st, err := c.Recv(rank, tagGather, buf)
		if err != nil {
			return nil, err
		}
		if st.Bytes != blockLen {
			return nil, fmt.Errorf("mp: gather from rank %d: %d bytes, want %d", rank, st.Bytes, blockLen)
		}
		out[rank] = buf
	}
	return out, nil
}

func packFloats(buf []byte, xs []float64) {
	for i, x := range xs {
		u := math.Float64bits(x)
		o := i * 8
		buf[o] = byte(u >> 56)
		buf[o+1] = byte(u >> 48)
		buf[o+2] = byte(u >> 40)
		buf[o+3] = byte(u >> 32)
		buf[o+4] = byte(u >> 24)
		buf[o+5] = byte(u >> 16)
		buf[o+6] = byte(u >> 8)
		buf[o+7] = byte(u)
	}
}

func unpackFloats(buf []byte) []float64 {
	xs := make([]float64, len(buf)/8)
	for i := range xs {
		o := i * 8
		u := uint64(buf[o])<<56 | uint64(buf[o+1])<<48 | uint64(buf[o+2])<<40 | uint64(buf[o+3])<<32 |
			uint64(buf[o+4])<<24 | uint64(buf[o+5])<<16 | uint64(buf[o+6])<<8 | uint64(buf[o+7])
		xs[i] = math.Float64frombits(u)
	}
	return xs
}

// Sendrecv performs a simultaneous exchange: send `send` to dst while
// receiving into recvBuf from src, without deadlock regardless of
// transport mode (the send is issued non-blocking first). Either side may
// be disabled by passing dst or src as -1 (like MPI_PROC_NULL).
func Sendrecv(c Comm, dst, sendTag int, send []byte, src, recvTag int, recvBuf []byte) (Status, error) {
	var sreq Request
	var err error
	if dst >= 0 {
		if sreq, err = c.Isend(dst, sendTag, send); err != nil {
			return Status{}, err
		}
	}
	var st Status
	if src >= 0 {
		if st, err = c.Recv(src, recvTag, recvBuf); err != nil {
			return Status{}, err
		}
	}
	if sreq != nil {
		if _, err := sreq.Wait(); err != nil {
			return Status{}, err
		}
	}
	return st, nil
}

// AllGather collects every rank's equal-size block on every rank, indexed
// by rank: Gather to rank 0 followed by a broadcast of the concatenation.
func AllGather(c Comm, block []byte, blockLen int) ([][]byte, error) {
	blocks, err := GatherBytesSized(c, 0, block, blockLen)
	if err != nil {
		return nil, err
	}
	size := c.Size()
	flat := make([]byte, size*blockLen)
	if c.Rank() == 0 {
		for r, b := range blocks {
			copy(flat[r*blockLen:], b)
		}
	}
	if err := Bcast(c, 0, flat); err != nil {
		return nil, err
	}
	out := make([][]byte, size)
	for r := 0; r < size; r++ {
		out[r] = flat[r*blockLen : (r+1)*blockLen]
	}
	return out, nil
}
