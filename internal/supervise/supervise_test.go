package supervise

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeProc is a scripted rank instance: it exits with err after delay, or
// immediately when killed.
type fakeProc struct {
	delay time.Duration
	err   error

	once sync.Once
	done chan struct{}
}

func newFakeProc(delay time.Duration, err error) *fakeProc {
	return &fakeProc{delay: delay, err: err, done: make(chan struct{})}
}

func (p *fakeProc) Wait() error {
	select {
	case <-time.After(p.delay):
		return p.err
	case <-p.done:
		return errors.New("killed")
	}
}

func (p *fakeProc) Kill() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// script builds a Launch function from a table: crashes[rank] lists, per
// attempt, whether that rank fails (true) or runs clean. Missing entries
// run clean. All launches are recorded.
type script struct {
	mu       sync.Mutex
	crashes  map[int][]bool
	launches []Spec
	failErr  error
}

func (s *script) launch(sp Spec) (Proc, error) {
	s.mu.Lock()
	s.launches = append(s.launches, sp)
	s.mu.Unlock()
	plan := s.crashes[sp.Rank]
	if sp.Attempt < len(plan) && plan[sp.Attempt] {
		err := s.failErr
		if err == nil {
			err = fmt.Errorf("scripted crash (rank %d attempt %d)", sp.Rank, sp.Attempt)
		}
		// The crasher exits fast; clean peers take a bit longer, like
		// survivors that need a heartbeat interval to notice.
		return newFakeProc(time.Millisecond, err), nil
	}
	return newFakeProc(20*time.Millisecond, nil), nil
}

func (s *script) specs() []Spec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Spec(nil), s.launches...)
}

func TestRunCleanWorld(t *testing.T) {
	s := &script{crashes: map[int][]bool{}}
	res, err := Run(Config{Size: 3, Launch: s.launch, MaxRestarts: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 1 || len(res.Incidents) != 0 {
		t.Fatalf("clean world: %d epochs, %d incidents", res.Epochs, len(res.Incidents))
	}
	for _, sp := range s.specs() {
		if sp.Epoch != 1 || sp.Restore || sp.Attempt != 0 {
			t.Fatalf("clean-world launch spec %+v", sp)
		}
	}
}

func TestRunRecoversWithEpochBumpAndRestore(t *testing.T) {
	// Rank 1 crashes on attempts 0 and 1, then runs clean.
	s := &script{crashes: map[int][]bool{1: {true, true, false}}}
	var incidents []Incident
	res, err := Run(Config{
		Size: 3, Launch: s.launch, MaxRestarts: 2,
		Backoff: time.Millisecond, Grace: 50 * time.Millisecond,
		OnIncident: func(inc Incident) { incidents = append(incidents, inc) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 3 || len(res.Incidents) != 2 {
		t.Fatalf("want 3 epochs / 2 incidents, got %d / %d", res.Epochs, len(res.Incidents))
	}
	if len(incidents) != 2 {
		t.Fatalf("OnIncident saw %d incidents", len(incidents))
	}
	if res.RestartsPerRank[1] != 2 || res.RestartsPerRank[0] != 0 || res.RestartsPerRank[2] != 0 {
		t.Fatalf("restart accounting: %v", res.RestartsPerRank)
	}
	for i, inc := range res.Incidents {
		if inc.Victim != 1 {
			t.Errorf("incident %d blamed rank %d, want 1", i, inc.Victim)
		}
		if inc.Epoch != uint32(i+1) {
			t.Errorf("incident %d at epoch %d, want %d", i, inc.Epoch, i+1)
		}
		if inc.MTTR < inc.Restore || inc.Restore < inc.Backoff {
			t.Errorf("incident %d latencies inconsistent: %+v", i, inc)
		}
	}
	// Deterministic exponential backoff: 1ms then 2ms.
	if res.Incidents[0].Backoff != time.Millisecond || res.Incidents[1].Backoff != 2*time.Millisecond {
		t.Errorf("backoffs %v, %v — want 1ms, 2ms", res.Incidents[0].Backoff, res.Incidents[1].Backoff)
	}
	// Epochs bump every relaunch; restore is on from the first relaunch.
	byAttempt := map[int][]Spec{}
	for _, sp := range s.specs() {
		byAttempt[sp.Attempt] = append(byAttempt[sp.Attempt], sp)
	}
	for attempt, sps := range byAttempt {
		for _, sp := range sps {
			if sp.Epoch != uint32(attempt+1) {
				t.Errorf("attempt %d launched with epoch %d", attempt, sp.Epoch)
			}
			if sp.Restore != (attempt > 0) {
				t.Errorf("attempt %d launched with restore=%v", attempt, sp.Restore)
			}
		}
	}
}

func TestRunBudgetExhaustionTyped(t *testing.T) {
	// Rank 2 always crashes; budget is 2 restarts.
	s := &script{crashes: map[int][]bool{2: {true, true, true, true, true, true}}}
	res, err := Run(Config{Size: 3, Launch: s.launch, MaxRestarts: 2, Backoff: time.Millisecond})
	if err == nil {
		t.Fatal("persistently failing rank did not fail the run")
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error %v does not match ErrBudgetExhausted", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Rank != 2 || be.Restarts != 2 {
		t.Fatalf("budget error %#v, want rank 2 after 2 restarts", err)
	}
	// Budget of 2 restarts = 3 launches of the failing epoch.
	if res.Epochs != 3 {
		t.Fatalf("launched %d epochs before giving up, want 3", res.Epochs)
	}
}

func TestRunDeadlineTyped(t *testing.T) {
	// Every epoch crashes; generous budget, tight deadline: the run must
	// fail with the typed deadline error, promptly.
	s := &script{crashes: map[int][]bool{0: {true, true, true, true, true, true, true, true}}}
	start := time.Now()
	_, err := Run(Config{
		Size: 2, Launch: s.launch, MaxRestarts: 100,
		Backoff: 30 * time.Millisecond, Deadline: 80 * time.Millisecond,
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error %v does not match ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline failure took %v", elapsed)
	}
}

func TestRunZeroBudgetMeansFirstCrashTerminal(t *testing.T) {
	s := &script{crashes: map[int][]bool{0: {true}}}
	res, err := Run(Config{Size: 2, Launch: s.launch})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error %v does not match ErrBudgetExhausted", err)
	}
	if res.Epochs != 1 {
		t.Fatalf("zero budget launched %d epochs", res.Epochs)
	}
}

func TestRunLaunchErrorTearsDownEpoch(t *testing.T) {
	bad := errors.New("no such binary")
	var launched []*fakeProc
	var mu sync.Mutex
	cfg := Config{
		Size: 3,
		Launch: func(sp Spec) (Proc, error) {
			if sp.Rank == 2 {
				return nil, bad
			}
			p := newFakeProc(time.Hour, nil) // would hang forever unless killed
			mu.Lock()
			launched = append(launched, p)
			mu.Unlock()
			return p, nil
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, bad) {
			t.Fatalf("launch failure not propagated: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung on a failed launch")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(launched) != 2 {
		t.Fatalf("launched %d ranks before the failure, want 2", len(launched))
	}
}

func TestBackoffSchedule(t *testing.T) {
	base, ceil := 100*time.Millisecond, 400*time.Millisecond
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond}
	for k, w := range want {
		if got := backoffFor(base, ceil, k+1); got != w {
			t.Errorf("backoffFor(k=%d) = %v, want %v", k+1, got, w)
		}
	}
	if got := backoffFor(0, ceil, 3); got != 0 {
		t.Errorf("zero base gave %v", got)
	}
}

func TestClassifyVictimFallsBackToChronology(t *testing.T) {
	// Crashed() only recognizes *exec.ExitError signal deaths, which a unit
	// test cannot fabricate; with no crash-like exit the supervisor must
	// blame the chronologically first failure. (The crash-preferred path is
	// exercised end to end by the tilenode chaos drill.)
	t0 := time.Now()
	exits := []rankExit{
		{rank: 2, err: errors.New("late"), at: t0.Add(time.Second)},
		{rank: 1, err: errors.New("early"), at: t0},
		{rank: 0, err: nil, at: t0.Add(2 * time.Second)},
	}
	if v := classifyVictim(exits); v.rank != 1 {
		t.Fatalf("fallback blamed rank %d, want 1", v.rank)
	}
}
