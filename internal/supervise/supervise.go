// Package supervise owns rank lifecycles end to end: it launches one
// process (or surrogate) per rank, watches for failures, tears the world
// down, and relaunches every rank under a bumped epoch with restore
// enabled — turning the manual notice/relaunch/-restore loop into
// automatic recovery.
//
// Detection is layered: inside a world the mp heartbeats abort surviving
// ranks when a peer goes silent, so a single crash makes every process
// exit; the supervisor's own detection is the observation of those exits.
// Every relaunch carries a fresh epoch (stamped into the mp connect
// handshake and reserved-tag traffic), so a process that outlived its
// declared death cannot poison the rebuilt world.
//
// Recovery is bounded: each rank carries a restart budget, restarts back
// off exponentially with a deterministic schedule, and an optional overall
// deadline caps the whole supervised run — a persistently failing rank
// converges to a clean typed failure (*BudgetError, *DeadlineError)
// instead of a restart loop.
package supervise

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"time"

	"repro/internal/runner"
)

// Sentinels matched (via errors.Is) by the typed failures below.
var (
	// ErrBudgetExhausted: some rank crashed more than Config.MaxRestarts
	// times; the supervisor refuses to restart it again.
	ErrBudgetExhausted = errors.New("supervise: restart budget exhausted")
	// ErrDeadline: the supervised run (including restarts and backoff)
	// exceeded Config.Deadline.
	ErrDeadline = errors.New("supervise: deadline exceeded")
)

// BudgetError is the typed world-level failure for a rank that used up its
// restart budget. errors.Is(err, ErrBudgetExhausted) matches it.
type BudgetError struct {
	Rank     int   // the rank that kept failing
	Restarts int   // restarts already spent on it
	Cause    error // its final exit error
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("supervise: rank %d exhausted its restart budget (%d restarts): %v",
		e.Rank, e.Restarts, e.Cause)
}

func (e *BudgetError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrBudgetExhausted) match any BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// DeadlineError is the typed world-level failure for a supervised run that
// outlived its configured deadline. errors.Is(err, ErrDeadline) matches it.
type DeadlineError struct {
	Deadline time.Duration // the configured cap
	Epoch    uint32        // the epoch in flight when time ran out
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("supervise: run exceeded its %v deadline (epoch %d)", e.Deadline, e.Epoch)
}

// Is makes errors.Is(err, ErrDeadline) match any DeadlineError.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// Proc is one supervised rank's running instance. Wait must be safe to
// call exactly once and block until exit; Kill must be safe to call
// concurrently with Wait and after exit.
type Proc interface {
	// Wait blocks until the instance exits. nil means a clean exit.
	Wait() error
	// Kill force-terminates the instance (SIGKILL semantics).
	Kill() error
}

// Spec tells Launch what to start.
type Spec struct {
	// Rank in [0, Size).
	Rank int
	// Epoch is the world generation; stamp it into mp.TCPOptions.Epoch.
	Epoch uint32
	// Restore: the rank must resume from checkpoints (true on every epoch
	// after the first, and on the first when the caller asked for it).
	Restore bool
	// Attempt counts world launches so far (0 for the first epoch).
	Attempt int
}

// Config drives Run.
type Config struct {
	// Size is the number of ranks.
	Size int
	// Launch starts one rank. Called Size times per epoch.
	Launch func(Spec) (Proc, error)
	// MaxRestarts is the per-rank restart budget (0 means no recovery:
	// the first crash is terminal).
	MaxRestarts int
	// Backoff is the base restart delay; restart k of a rank waits
	// Backoff × 2^(k−1), capped at MaxBackoff. Deterministic — no jitter —
	// so budget exhaustion lands within a computable bound.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default: 16×Backoff).
	MaxBackoff time.Duration
	// Grace bounds teardown: after a failure, peers that have not exited
	// on their own within Grace are killed (default 5s).
	Grace time.Duration
	// Deadline caps the whole supervised run, restarts and backoff
	// included (0 = unbounded).
	Deadline time.Duration
	// FirstEpoch is the epoch of the first launch (default 1, so the mp
	// zero-value epoch never collides with a supervised world).
	FirstEpoch uint32
	// Restore makes even the first epoch restore from checkpoints.
	Restore bool
	// CheckpointDir, when set, is scanned between epochs to account the
	// provable wasted recomputation per incident (see Incident).
	CheckpointDir string
	// OnIncident, when non-nil, observes each failure+recovery cycle as
	// it completes (before the next epoch launches).
	OnIncident func(Incident)
}

func (cfg *Config) validate() error {
	if cfg.Size <= 0 {
		return fmt.Errorf("supervise: non-positive world size %d", cfg.Size)
	}
	if cfg.Launch == nil {
		return fmt.Errorf("supervise: nil Launch")
	}
	if cfg.MaxRestarts < 0 {
		return fmt.Errorf("supervise: negative restart budget %d", cfg.MaxRestarts)
	}
	if cfg.Backoff < 0 || cfg.MaxBackoff < 0 || cfg.Grace < 0 || cfg.Deadline < 0 {
		return fmt.Errorf("supervise: negative duration in config")
	}
	return nil
}

// Incident is one observed failure+recovery cycle.
type Incident struct {
	// Epoch that failed.
	Epoch uint32
	// Victim is the rank blamed: the chronologically first crash-like
	// exit, falling back to the first failure of any kind.
	Victim int
	// Cause is the victim's exit error.
	Cause error
	// Detect: first exit → whole world confirmed down.
	Detect time.Duration
	// Backoff charged before the relaunch.
	Backoff time.Duration
	// Restore: world down → next epoch launched (includes Backoff).
	Restore time.Duration
	// MTTR: first exit → next epoch launched.
	MTTR time.Duration
	// WastedTiles is the provable recomputation: the sum over ranks of
	// checkpoint boundaries beyond the minimum the rebuilt world restarts
	// from. 0 when Config.CheckpointDir is unset.
	WastedTiles int64
}

// Result summarizes a supervised run.
type Result struct {
	// Epochs launched (incidents + 1 on success).
	Epochs int
	// Incidents, in order.
	Incidents []Incident
	// RestartsPerRank counts how many restarts each rank was blamed for.
	RestartsPerRank []int
	// Elapsed is the whole supervised run, recovery included.
	Elapsed time.Duration
}

// Crashed reports whether a Proc exit looks like a crash (killed by a
// signal) rather than an orderly error exit — used to prefer the true
// victim over survivors that exited non-zero because the world aborted.
func Crashed(err error) bool {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled()
}

// rankExit is one observed process exit.
type rankExit struct {
	rank int
	err  error
	at   time.Time
}

// Run supervises a world to completion: launch all ranks, and on any
// failure tear the epoch down, charge the victim's budget, back off, and
// relaunch everything one epoch higher with restore enabled. Returns the
// accumulated Result; the error is nil on success, a *BudgetError or
// *DeadlineError on a typed world-level failure, or the launch error when
// a rank cannot even be started.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Grace == 0 {
		cfg.Grace = 5 * time.Second
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 16 * cfg.Backoff
	}
	if cfg.FirstEpoch == 0 {
		cfg.FirstEpoch = 1
	}

	res := &Result{RestartsPerRank: make([]int, cfg.Size)}
	start := time.Now()
	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = start.Add(cfg.Deadline)
	}
	epoch := cfg.FirstEpoch

	for attempt := 0; ; attempt++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Elapsed = time.Since(start)
			return res, &DeadlineError{Deadline: cfg.Deadline, Epoch: epoch}
		}
		procs := make([]Proc, cfg.Size)
		for r := 0; r < cfg.Size; r++ {
			p, err := cfg.Launch(Spec{
				Rank:    r,
				Epoch:   epoch,
				Restore: cfg.Restore || attempt > 0,
				Attempt: attempt,
			})
			if err != nil {
				// A rank that cannot even start leaves no world to tear
				// down beyond the ranks already running this epoch.
				for _, q := range procs[:r] {
					_ = q.Kill()
				}
				for _, q := range procs[:r] {
					_ = q.Wait()
				}
				res.Elapsed = time.Since(start)
				return res, fmt.Errorf("supervise: launch rank %d (epoch %d): %w", r, epoch, err)
			}
			procs[r] = p
		}
		res.Epochs++

		exits := waitAll(procs, cfg.Grace)
		first, ok := firstFailure(exits)
		if !ok {
			res.Elapsed = time.Since(start)
			return res, nil // every rank exited clean: done
		}
		downAt := lastExit(exits)
		victim := classifyVictim(exits)

		res.RestartsPerRank[victim.rank]++
		if res.RestartsPerRank[victim.rank] > cfg.MaxRestarts {
			res.Elapsed = time.Since(start)
			return res, &BudgetError{
				Rank:     victim.rank,
				Restarts: res.RestartsPerRank[victim.rank] - 1,
				Cause:    victim.err,
			}
		}

		backoff := backoffFor(cfg.Backoff, cfg.MaxBackoff, res.RestartsPerRank[victim.rank])
		if !deadline.IsZero() && time.Now().Add(backoff).After(deadline) {
			res.Elapsed = time.Since(start)
			return res, &DeadlineError{Deadline: cfg.Deadline, Epoch: epoch}
		}
		time.Sleep(backoff)

		inc := Incident{
			Epoch:       epoch,
			Victim:      victim.rank,
			Cause:       victim.err,
			Detect:      downAt.Sub(first.at),
			Backoff:     backoff,
			WastedTiles: wastedTiles(cfg.CheckpointDir, cfg.Size),
		}
		relaunchAt := time.Now()
		inc.Restore = relaunchAt.Sub(downAt)
		inc.MTTR = relaunchAt.Sub(first.at)
		res.Incidents = append(res.Incidents, inc)
		if cfg.OnIncident != nil {
			cfg.OnIncident(inc)
		}
		epoch++
	}
}

// waitAll collects every process exit. After the first failure, peers get
// Grace to exit on their own (the in-world abort machinery usually beats
// this comfortably); stragglers are killed so a wedged survivor cannot
// stall recovery.
func waitAll(procs []Proc, grace time.Duration) []rankExit {
	n := len(procs)
	ch := make(chan rankExit, n)
	for r, p := range procs {
		go func(r int, p Proc) {
			err := p.Wait()
			ch <- rankExit{rank: r, err: err, at: time.Now()}
		}(r, p)
	}
	exits := make([]rankExit, 0, n)
	var killTimer *time.Timer
	var killC <-chan time.Time
	for len(exits) < n {
		select {
		case e := <-ch:
			exits = append(exits, e)
			if e.err != nil && killTimer == nil {
				killTimer = time.NewTimer(grace)
				killC = killTimer.C
			}
		case <-killC:
			killC = nil
			for _, p := range procs {
				_ = p.Kill() // idempotent on the already-dead
			}
		}
	}
	if killTimer != nil {
		killTimer.Stop()
	}
	return exits
}

// firstFailure returns the chronologically first non-nil exit.
func firstFailure(exits []rankExit) (rankExit, bool) {
	var first rankExit
	found := false
	for _, e := range exits {
		if e.err == nil {
			continue
		}
		if !found || e.at.Before(first.at) {
			first, found = e, true
		}
	}
	return first, found
}

// lastExit returns the time the world was confirmed fully down.
func lastExit(exits []rankExit) time.Time {
	var last time.Time
	for _, e := range exits {
		if e.at.After(last) {
			last = e.at
		}
	}
	return last
}

// classifyVictim blames the failure on a rank: the chronologically first
// crash-like exit (a SIGKILLed victim's Wait returns almost instantly,
// while survivors need at least a heartbeat detection interval), falling
// back to the chronologically first failure of any kind.
func classifyVictim(exits []rankExit) rankExit {
	var firstCrash, firstFail rankExit
	haveCrash, haveFail := false, false
	for _, e := range exits {
		if e.err == nil {
			continue
		}
		if !haveFail || e.at.Before(firstFail.at) {
			firstFail, haveFail = e, true
		}
		if Crashed(e.err) && (!haveCrash || e.at.Before(firstCrash.at)) {
			firstCrash, haveCrash = e, true
		}
	}
	if haveCrash {
		return firstCrash
	}
	return firstFail
}

// backoffFor is the deterministic restart delay for the k-th restart of a
// rank (k ≥ 1): base × 2^(k−1), capped at ceil.
func backoffFor(base, ceil time.Duration, k int) time.Duration {
	if base <= 0 || k <= 0 {
		return 0
	}
	d := base
	for i := 1; i < k; i++ {
		d *= 2
		if d >= ceil {
			return ceil
		}
	}
	if d > ceil {
		return ceil
	}
	return d
}

// wastedTiles scans the checkpoint directory and returns the provable
// recomputation the next restore will cause: each rank re-executes the
// tiles between the agreed minimum boundary and its own newest one. Name
// scans only (cheap, like the launcher's kill gate); the restore itself
// re-validates contents.
func wastedTiles(dir string, size int) int64 {
	if dir == "" {
		return 0
	}
	latest := make([]int64, size)
	minLatest := int64(-1)
	for r := 0; r < size; r++ {
		t, _, err := runner.LatestCheckpoint(dir, r)
		if err != nil {
			return 0
		}
		latest[r] = t
		if minLatest < 0 || t < minLatest {
			minLatest = t
		}
	}
	var wasted int64
	for _, t := range latest {
		wasted += t - minLatest
	}
	return wasted
}

// CmdProc adapts an *exec.Cmd (already Started) to Proc.
type CmdProc struct{ Cmd *exec.Cmd }

// Wait waits for the command to exit.
func (p CmdProc) Wait() error { return p.Cmd.Wait() }

// Kill force-terminates the process; a nil or already-finished process is
// not an error.
func (p CmdProc) Kill() error {
	if p.Cmd.Process == nil {
		return nil
	}
	err := p.Cmd.Process.Kill()
	if errors.Is(err, os.ErrProcessDone) {
		return nil
	}
	return err
}
