package runner

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/stencil"
)

// TestRandomConfigurations3D sweeps random (space, grid, V, mode)
// combinations through the 3-D executor, each verified bit-exact against
// the sequential reference — the broad-coverage safety net behind the
// hand-picked cases.
func TestRandomConfigurations3D(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		pi := r.Int63n(3) + 1
		pj := r.Int63n(3) + 1
		ti := r.Int63n(3) + 1
		tj := r.Int63n(3) + 1
		k := r.Int63n(40) + 4
		v := r.Int63n(k) + 1
		mode := Mode(r.Intn(2))
		cfg := Config{
			Grid:   model.Grid3D{I: pi * ti, J: pj * tj, K: k, PI: pi, PJ: pj},
			V:      v,
			Kernel: stencil.Sqrt3D{},
			Mode:   mode,
		}
		n := int(pi * pj)
		var grid *stencil.Grid
		var mu sync.Mutex
		err := mp.Launch(n, func(c mp.Comm) error {
			l, _, err := Run(c, cfg)
			if err != nil {
				return err
			}
			g, err := Gather(c, cfg, l)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				grid = g
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg.Grid, err)
		}
		diff, err := VerifySequential(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Fatalf("trial %d: %v on %+v V=%d differs by %g", trial, mode, cfg.Grid, v, diff)
		}
	}
}

// TestRandomConfigurations2D does the same for the 2-D strip executor.
func TestRandomConfigurations2D(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 12; trial++ {
		i1 := r.Int63n(80) + 10
		i2 := r.Int63n(40) + 6
		s1 := r.Int63n(i1) + 1
		ranks := int(r.Int63n(5) + 1)
		if int64(ranks) > i2 {
			ranks = int(i2)
		}
		mode := Mode(r.Intn(2))
		cfg := Config2D{I1: i1, I2: i2, S1: s1, Kernel: stencil.Sum2D{}, Mode: mode}
		var grid *stencil.Grid
		var mu sync.Mutex
		err := mp.Launch(ranks, func(c mp.Comm) error {
			l, _, err := Run2D(c, cfg)
			if err != nil {
				return err
			}
			g, err := Gather2D(c, cfg, l)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				grid = g
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (%dx%d S1=%d ranks=%d): %v", trial, i1, i2, s1, ranks, err)
		}
		diff, err := VerifySequential2D(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Fatalf("trial %d: %v differs by %g", trial, mode, diff)
		}
	}
}
