package runner

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ilmath"
	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/space"
	"repro/internal/stencil"
)

// Mode selects the execution scheme.
type Mode int

const (
	// Blocking implements ProcB: per tile, blocking receives, compute,
	// blocking sends.
	Blocking Mode = iota
	// Overlapped implements ProcNB: per tile, non-blocking sends of the
	// previous tile's faces and non-blocking receives of the next tile's
	// ghosts around the compute.
	Overlapped
)

func (m Mode) String() string {
	if m == Blocking {
		return "blocking"
	}
	return "overlapped"
}

// Config describes one run.
type Config struct {
	Grid     model.Grid3D
	V        int64 // tile height along k
	Kernel   stencil.Kernel
	Boundary stencil.Boundary
	Mode     Mode
}

// Stats reports what one rank did.
type Stats struct {
	Elapsed   time.Duration
	Tiles     int
	MsgsSent  int
	MsgsRecvd int
	BytesSent int64
	// Checkpoints counts snapshots written; CheckpointBytes their total
	// on-disk size (2-D executor only).
	Checkpoints     int
	CheckpointBytes int64
	// Restore reports how a restore-enabled run started (2-D executor only).
	Restore RestoreInfo
}

// Local is one rank's subdomain after a run.
type Local struct {
	Rank         int
	PIdx, PJdx   int64 // processor grid coordinates
	BaseI, BaseJ int64 // global origin of the subdomain
	TI, TJ, K    int64
	Data         []float64 // (TI+1)×(TJ+1)×K including ghost layers at −1
}

func (l *Local) idx(li, lj, k int64) int64 {
	return ((li+1)*(l.TJ+1)+(lj+1))*l.K + k
}

// At returns the local value at subdomain-relative coordinates
// (li ∈ [−1, TI), lj ∈ [−1, TJ), k ∈ [0, K)).
func (l *Local) At(li, lj, k int64) float64 { return l.Data[l.idx(li, lj, k)] }

func (l *Local) set(li, lj, k int64, v float64) { l.Data[l.idx(li, lj, k)] = v }

// Validate checks a Config against a communicator size.
func (cfg Config) Validate(commSize int) error {
	if err := cfg.Grid.Validate(); err != nil {
		return err
	}
	if cfg.V <= 0 || cfg.V > cfg.Grid.K {
		return fmt.Errorf("runner: tile height %d out of range (0, %d]", cfg.V, cfg.Grid.K)
	}
	if cfg.Kernel == nil {
		return fmt.Errorf("runner: nil kernel")
	}
	if cfg.Kernel.Deps().Dim() != 3 {
		return fmt.Errorf("runner: kernel %s is not 3-D", cfg.Kernel.Name())
	}
	// Only nearest-neighbor unit dependences are supported: the runner's
	// ghost exchange carries exactly the i-, j- and k-faces.
	for _, d := range cfg.Kernel.Deps().Vectors() {
		if !d.Equal(ilmath.V(1, 0, 0)) && !d.Equal(ilmath.V(0, 1, 0)) && !d.Equal(ilmath.V(0, 0, 1)) {
			return fmt.Errorf("runner: unsupported dependence %v (unit vectors only)", d)
		}
	}
	if int64(commSize) != cfg.Grid.PI*cfg.Grid.PJ {
		return fmt.Errorf("runner: communicator has %d ranks, grid wants %d×%d = %d",
			commSize, cfg.Grid.PI, cfg.Grid.PJ, cfg.Grid.PI*cfg.Grid.PJ)
	}
	if cfg.Mode != Blocking && cfg.Mode != Overlapped {
		return fmt.Errorf("runner: unknown mode %d", int(cfg.Mode))
	}
	return nil
}

// message tags: two directions per k-tile index (tile tags are 2t+dir; the
// final gather uses the mp collective's reserved tag space).
const (
	dirWest  = 0 // ghosts arriving from (pi−1, pj)
	dirNorth = 1 // ghosts arriving from (pi, pj−1)
)

func tileTag(t int64, dir int) int { return int(2*t) + dir }

// Run executes the configured schedule on communicator c and returns this
// rank's subdomain and statistics. All ranks must call Run with identical
// configurations.
func Run(c mp.Comm, cfg Config) (*Local, Stats, error) {
	if err := cfg.Validate(c.Size()); err != nil {
		return nil, Stats{}, err
	}
	if cfg.Boundary == nil {
		cfg.Boundary = stencil.ConstBoundary(1)
	}
	g := cfg.Grid
	rank := c.Rank()
	l := &Local{
		Rank: rank,
		PIdx: int64(rank) / g.PJ,
		PJdx: int64(rank) % g.PJ,
		TI:   g.TileI(),
		TJ:   g.TileJ(),
		K:    g.K,
	}
	l.BaseI = l.PIdx * l.TI
	l.BaseJ = l.PJdx * l.TJ
	l.Data = make([]float64, (l.TI+1)*(l.TJ+1)*l.K)

	r := &run{cfg: cfg, c: c, l: l}
	if err := c.Barrier(); err != nil {
		return nil, Stats{}, err
	}
	//tilevet:allow determinism -- Stats.Elapsed is the paper's measured wall-clock output; it never feeds the computed grid
	start := time.Now()
	var err error
	switch cfg.Mode {
	case Blocking:
		err = r.runBlocking()
	case Overlapped:
		err = r.runOverlapped()
	}
	if err != nil {
		abortComm(c, err)
		return nil, Stats{}, fmt.Errorf("runner: rank %d: %w", rank, err)
	}
	if err := c.Barrier(); err != nil {
		return nil, Stats{}, err
	}
	r.stats.Elapsed = time.Since(start) //tilevet:allow determinism -- wall-clock measurement, reporting only
	return l, r.stats, nil
}

// run carries the per-rank execution state.
type run struct {
	cfg   Config
	c     mp.Comm
	l     *Local
	stats Stats
}

func (r *run) westRank() int  { return int((r.l.PIdx-1)*r.cfg.Grid.PJ + r.l.PJdx) }
func (r *run) eastRank() int  { return int((r.l.PIdx+1)*r.cfg.Grid.PJ + r.l.PJdx) }
func (r *run) northRank() int { return int(r.l.PIdx*r.cfg.Grid.PJ + r.l.PJdx - 1) }
func (r *run) southRank() int { return int(r.l.PIdx*r.cfg.Grid.PJ + r.l.PJdx + 1) }

func (r *run) hasWest() bool  { return r.l.PIdx > 0 }
func (r *run) hasEast() bool  { return r.l.PIdx < r.cfg.Grid.PI-1 }
func (r *run) hasNorth() bool { return r.l.PJdx > 0 }
func (r *run) hasSouth() bool { return r.l.PJdx < r.cfg.Grid.PJ-1 }

// tileRange returns [k0, k0+v) for k-tile t.
func (r *run) tileRange(t int64) (k0, v int64) {
	k0 = t * r.cfg.V
	v = r.cfg.V
	if k0+v > r.cfg.Grid.K {
		v = r.cfg.Grid.K - k0
	}
	return k0, v
}

func (r *run) numTiles() int64 { return r.cfg.Grid.KTiles(r.cfg.V) }

// packWestFace packs this rank's own east-most i-plane (li = TI−1) of the
// given k range; it is the ghost plane the east neighbor needs.
func (r *run) packEastFace(k0, v int64) []byte {
	buf := make([]byte, 8*r.l.TJ*v)
	o := 0
	for lj := int64(0); lj < r.l.TJ; lj++ {
		for k := k0; k < k0+v; k++ {
			putF64(buf[o:], r.l.At(r.l.TI-1, lj, k))
			o += 8
		}
	}
	return buf
}

func (r *run) packSouthFace(k0, v int64) []byte {
	buf := make([]byte, 8*r.l.TI*v)
	o := 0
	for li := int64(0); li < r.l.TI; li++ {
		for k := k0; k < k0+v; k++ {
			putF64(buf[o:], r.l.At(li, r.l.TJ-1, k))
			o += 8
		}
	}
	return buf
}

// unpackWestGhost stores a received west ghost plane into the li = −1 layer.
func (r *run) unpackWestGhost(buf []byte, k0, v int64) {
	o := 0
	for lj := int64(0); lj < r.l.TJ; lj++ {
		for k := k0; k < k0+v; k++ {
			r.l.set(-1, lj, k, getF64(buf[o:]))
			o += 8
		}
	}
}

func (r *run) unpackNorthGhost(buf []byte, k0, v int64) {
	o := 0
	for li := int64(0); li < r.l.TI; li++ {
		for k := k0; k < k0+v; k++ {
			r.l.set(li, -1, k, getF64(buf[o:]))
			o += 8
		}
	}
}

// computeTile evaluates the kernel over the local tile [k0, k0+v).
func (r *run) computeTile(k0, v int64) {
	l := r.l
	b := r.cfg.Boundary
	get := func(q ilmath.Vec) float64 {
		li, lj, k := q[0]-l.BaseI, q[1]-l.BaseJ, q[2]
		if k < 0 {
			return b(q)
		}
		if li == -1 {
			if r.hasWest() {
				return l.At(-1, lj, k)
			}
			return b(q)
		}
		if lj == -1 {
			if r.hasNorth() {
				return l.At(li, -1, k)
			}
			return b(q)
		}
		return l.At(li, lj, k)
	}
	for k := k0; k < k0+v; k++ {
		for li := int64(0); li < l.TI; li++ {
			for lj := int64(0); lj < l.TJ; lj++ {
				j := ilmath.V(l.BaseI+li, l.BaseJ+lj, k)
				l.set(li, lj, k, r.cfg.Kernel.Eval(j, get))
			}
		}
	}
	r.stats.Tiles++
}

// runBlocking is ProcB: for each tile, blocking receives, compute, blocking
// sends.
func (r *run) runBlocking() error {
	for t := int64(0); t < r.numTiles(); t++ {
		k0, v := r.tileRange(t)
		if r.hasWest() {
			buf := make([]byte, 8*r.l.TJ*v)
			if _, err := r.c.Recv(r.westRank(), tileTag(t, dirWest), buf); err != nil {
				return err
			}
			r.unpackWestGhost(buf, k0, v)
			r.stats.MsgsRecvd++
		}
		if r.hasNorth() {
			buf := make([]byte, 8*r.l.TI*v)
			if _, err := r.c.Recv(r.northRank(), tileTag(t, dirNorth), buf); err != nil {
				return err
			}
			r.unpackNorthGhost(buf, k0, v)
			r.stats.MsgsRecvd++
		}
		r.computeTile(k0, v)
		if r.hasEast() {
			buf := r.packEastFace(k0, v)
			if err := r.c.Send(r.eastRank(), tileTag(t, dirWest), buf); err != nil {
				return err
			}
			r.stats.MsgsSent++
			r.stats.BytesSent += int64(len(buf))
		}
		if r.hasSouth() {
			buf := r.packSouthFace(k0, v)
			if err := r.c.Send(r.southRank(), tileTag(t, dirNorth), buf); err != nil {
				return err
			}
			r.stats.MsgsSent++
			r.stats.BytesSent += int64(len(buf))
		}
	}
	return nil
}

// runOverlapped is ProcNB: at tile t the rank sends the faces produced by
// tile t−1, has receives posted ahead for tile t+1, and computes tile t in
// between, exactly as the paper's non-blocking pseudocode.
func (r *run) runOverlapped() error {
	type ghostRecv struct {
		req mp.Request
		buf []byte
	}
	post := func(t int64) (west, north *ghostRecv, err error) {
		_, v := r.tileRange(t)
		if r.hasWest() {
			g := &ghostRecv{buf: make([]byte, 8*r.l.TJ*v)}
			g.req, err = r.c.Irecv(r.westRank(), tileTag(t, dirWest), g.buf)
			if err != nil {
				return nil, nil, err
			}
			west = g
		}
		if r.hasNorth() {
			g := &ghostRecv{buf: make([]byte, 8*r.l.TI*v)}
			g.req, err = r.c.Irecv(r.northRank(), tileTag(t, dirNorth), g.buf)
			if err != nil {
				return nil, nil, err
			}
			north = g
		}
		return west, north, nil
	}
	sendFaces := func(t int64) ([]mp.Request, error) {
		k0, v := r.tileRange(t)
		var reqs []mp.Request
		if r.hasEast() {
			buf := r.packEastFace(k0, v)
			req, err := r.c.Isend(r.eastRank(), tileTag(t, dirWest), buf)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
			r.stats.MsgsSent++
			r.stats.BytesSent += int64(len(buf))
		}
		if r.hasSouth() {
			buf := r.packSouthFace(k0, v)
			req, err := r.c.Isend(r.southRank(), tileTag(t, dirNorth), buf)
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
			r.stats.MsgsSent++
			r.stats.BytesSent += int64(len(buf))
		}
		return reqs, nil
	}

	// Prologue: pre-post the receives for tile 0.
	curWest, curNorth, err := post(0)
	if err != nil {
		return err
	}
	n := r.numTiles()
	for t := int64(0); t < n; t++ {
		k0, v := r.tileRange(t)
		// Non-blocking sends of the previous tile's results.
		var sendReqs []mp.Request
		if t > 0 {
			if sendReqs, err = sendFaces(t - 1); err != nil {
				return err
			}
		}
		// Post receives for the next tile.
		var nextWest, nextNorth *ghostRecv
		if t+1 < n {
			if nextWest, nextNorth, err = post(t + 1); err != nil {
				return err
			}
		}
		// Wait for this tile's ghosts, then compute.
		if curWest != nil {
			if _, err := curWest.req.Wait(); err != nil {
				return err
			}
			r.unpackWestGhost(curWest.buf, k0, v)
			r.stats.MsgsRecvd++
		}
		if curNorth != nil {
			if _, err := curNorth.req.Wait(); err != nil {
				return err
			}
			r.unpackNorthGhost(curNorth.buf, k0, v)
			r.stats.MsgsRecvd++
		}
		r.computeTile(k0, v)
		if err := mp.WaitAll(sendReqs...); err != nil {
			return err
		}
		curWest, curNorth = nextWest, nextNorth
	}
	// Epilogue: ship the last tile's faces.
	reqs, err := sendFaces(n - 1)
	if err != nil {
		return err
	}
	return mp.WaitAll(reqs...)
}

// Gather assembles the full grid on rank 0 via the mp gather collective
// (other ranks return nil).
func Gather(c mp.Comm, cfg Config, l *Local) (*stencil.Grid, error) {
	g := cfg.Grid
	blockLen := int(8 * l.TI * l.TJ * l.K)
	block := make([]byte, blockLen)
	o := 0
	for li := int64(0); li < l.TI; li++ {
		for lj := int64(0); lj < l.TJ; lj++ {
			for k := int64(0); k < l.K; k++ {
				putF64(block[o:], l.At(li, lj, k))
				o += 8
			}
		}
	}
	blocks, err := mp.GatherBytesSized(c, 0, block, blockLen)
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	sp, err := space.Rect(g.I, g.J, g.K)
	if err != nil {
		return nil, err
	}
	out := stencil.NewGrid(sp)
	for rank, buf := range blocks {
		pi, pj := int64(rank)/g.PJ, int64(rank)%g.PJ
		o := 0
		for li := int64(0); li < l.TI; li++ {
			for lj := int64(0); lj < l.TJ; lj++ {
				for k := int64(0); k < l.K; k++ {
					out.Set(ilmath.V(pi*l.TI+li, pj*l.TJ+lj, k), getF64(buf[o:]))
					o += 8
				}
			}
		}
	}
	return out, nil
}

// VerifySequential runs the kernel sequentially over the full space and
// returns the maximum absolute difference against the gathered grid.
func VerifySequential(g *stencil.Grid, cfg Config) (float64, error) {
	sp, err := space.Rect(cfg.Grid.I, cfg.Grid.J, cfg.Grid.K)
	if err != nil {
		return 0, err
	}
	ref, err := stencil.RunSequential(sp, cfg.Kernel, cfg.Boundary)
	if err != nil {
		return 0, err
	}
	return stencil.MaxAbsDiff(g, ref)
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	b[0] = byte(u >> 56)
	b[1] = byte(u >> 48)
	b[2] = byte(u >> 40)
	b[3] = byte(u >> 32)
	b[4] = byte(u >> 24)
	b[5] = byte(u >> 16)
	b[6] = byte(u >> 8)
	b[7] = byte(u)
}

func getF64(b []byte) float64 {
	u := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	return math.Float64frombits(u)
}
