package runner

import (
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/stencil"
	"repro/internal/tiling"
)

// TestMeasuredTrafficMatchesTileDepVolumes2D closes the loop between the
// tiling theory and the real executor: the bytes the 2-D runner actually
// ships per tile must equal the exact per-direction transfer volumes
// computed by tiling.TileDepVolumes (s1 face points toward (0,1) plus the
// single corner point toward (1,1), shipped together).
func TestMeasuredTrafficMatchesTileDepVolumes2D(t *testing.T) {
	const (
		i1, i2 = 120, 60
		s1     = 10
		ranks  = 6 // strips of 10 columns
	)
	cfg := Config2D{I1: i1, I2: i2, S1: s1, Kernel: stencil.Sum2D{}, Mode: Overlapped}

	// Theory: exact per-tile transfer volume across the strip boundary.
	tl, err := tiling.Rectangular(s1, i2/ranks)
	if err != nil {
		t.Fatal(err)
	}
	vols, err := tl.TileDepVolumes(stencil.Sum2D{}.Deps())
	if err != nil {
		t.Fatal(err)
	}
	var crossPoints int64 // points crossing dim-1 boundaries (mapping is along dim 0)
	for _, v := range vols {
		if v.Dir[1] != 0 {
			crossPoints += v.Points
		}
	}
	if crossPoints != s1+1 {
		t.Fatalf("theory: cross volume = %d points/tile, want %d", crossPoints, s1+1)
	}

	// Practice: run with counting comms and compare.
	tilesPerRank := int64(i1 / s1)
	snaps := make([]mp.Snapshot, ranks)
	var mu sync.Mutex
	err = mp.Launch(ranks, func(raw mp.Comm) error {
		c := mp.WithCounters(raw)
		_, _, err := Run2D(c, cfg)
		mu.Lock()
		snaps[raw.Rank()] = c.C.Snapshot()
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := tilesPerRank * crossPoints * 8
	for r := 0; r < ranks-1; r++ { // every rank but the last sends east
		if snaps[r].SendBytes != wantBytes {
			t.Errorf("rank %d sent %d bytes, theory predicts %d", r, snaps[r].SendBytes, wantBytes)
		}
		if snaps[r].SendMsgs != tilesPerRank {
			t.Errorf("rank %d sent %d msgs, want %d", r, snaps[r].SendMsgs, tilesPerRank)
		}
	}
	if snaps[ranks-1].SendBytes != 0 {
		t.Errorf("last rank sent %d bytes, want 0", snaps[ranks-1].SendBytes)
	}
	for r := 1; r < ranks; r++ {
		if snaps[r].RecvBytes != wantBytes {
			t.Errorf("rank %d received %d bytes, theory predicts %d", r, snaps[r].RecvBytes, wantBytes)
		}
	}
}

// TestMeasuredTrafficMatchesFaceVolumes3D does the same for the 3-D grid
// executor: per tile, an interior rank ships exactly the two faces the
// row-communication volumes predict.
func TestMeasuredTrafficMatchesFaceVolumes3D(t *testing.T) {
	cfg := Config{
		Grid:   model.Grid3D{I: 12, J: 12, K: 64, PI: 3, PJ: 3},
		V:      8, // divides K: all tiles full, so per-tile volumes are uniform
		Kernel: stencil.Sqrt3D{},
		Mode:   Overlapped,
	}
	tl, err := tiling.Rectangular(cfg.Grid.TileI(), cfg.Grid.TileJ(), cfg.V)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tl.RowCommVolume(stencil.Sqrt3D{}.Deps())
	if err != nil {
		t.Fatal(err)
	}
	// Mapping along k (dim 2): faces crossing dims 0 and 1 are messages.
	perTilePoints := rows[0].Int() + rows[1].Int()
	kTiles := cfg.Grid.KTiles(cfg.V)

	n := int(cfg.Grid.PI * cfg.Grid.PJ)
	snaps := make([]mp.Snapshot, n)
	var mu sync.Mutex
	err = mp.Launch(n, func(raw mp.Comm) error {
		c := mp.WithCounters(raw)
		_, _, err := Run(c, cfg)
		mu.Lock()
		snaps[raw.Rank()] = c.C.Snapshot()
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 (corner, sends east and south): exactly the two faces.
	want := kTiles * perTilePoints * 8
	if snaps[0].SendBytes != want {
		t.Errorf("rank 0 sent %d bytes, RowCommVolume predicts %d", snaps[0].SendBytes, want)
	}
	// The interior-most rank both sends and receives two faces per tile.
	interior := int(1*cfg.Grid.PJ + 1) // rank (1,1)
	if snaps[interior].SendBytes != want || snaps[interior].RecvBytes != want {
		t.Errorf("interior rank traffic %d/%d bytes, want %d each",
			snaps[interior].SendBytes, snaps[interior].RecvBytes, want)
	}
}
