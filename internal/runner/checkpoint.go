package runner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/mp"
)

// Checkpoint/restart for the 2-D executor.
//
// Every rank snapshots its full tile-frontier state — the local block
// including the ghost column, plus the index of the next tile to execute —
// at deterministic tile boundaries (after tile t whenever (t+1) is a
// multiple of Every). All generations are kept, so after a crash the ranks
// can agree on the highest boundary every one of them reached: restore
// takes an AllReduce(min) over the per-rank latest valid snapshot and each
// rank reloads its file at exactly that tile. A rank with no (or only
// corrupt) snapshots reports 0, which forces a fresh start for everyone —
// the protocol never resumes from an inconsistent frontier.
//
// File layout (all integers big-endian):
//
//	offset  size  field
//	0       4     magic "TLCP"
//	4       4     version (currently 1)
//	8       4     CRC-32 (IEEE) over bytes [12, EOF)
//	12      4     rank
//	16      4     comm size
//	20      8     I1
//	28      8     I2
//	36      8     S1
//	44      8     Base2
//	52      8     Width
//	60      8     next tile index
//	68      8     payload length (must be 8×(Width+1)×I1)
//	76      —     payload: Local2D.Data as big-endian float64
//
// Files are written to a temporary name and renamed into place, so a crash
// mid-write can never leave a truncated file under a valid checkpoint name;
// the CRC catches every other corruption.

const (
	ckMagic   = "TLCP"
	ckVersion = 1
	ckHdrLen  = 76
)

// CheckpointConfig enables periodic snapshots and restart for Run2D.
type CheckpointConfig struct {
	// Dir is the directory checkpoint files are written to (shared or
	// per-rank; file names embed the rank). Empty disables checkpointing.
	Dir string
	// Every checkpoints after every Every-th tile. Zero disables.
	Every int64
	// Restore makes Run2D resume from the latest snapshot boundary all
	// ranks reached, falling back to a fresh start when there is none.
	Restore bool
}

func (cc CheckpointConfig) enabled() bool { return cc.Dir != "" && cc.Every > 0 }

func (cc CheckpointConfig) validate() error {
	if cc.Every < 0 {
		return fmt.Errorf("runner: negative checkpoint interval %d", cc.Every)
	}
	if (cc.Every > 0 || cc.Restore) && cc.Dir == "" {
		return fmt.Errorf("runner: checkpointing requested without a directory")
	}
	return nil
}

// RestoreReason classifies how a restore-enabled run chose its start tile.
type RestoreReason int

const (
	// RestoreNotRequested: the run started without Checkpoint.Restore.
	RestoreNotRequested RestoreReason = iota
	// RestoreResumed: the run resumed from an agreed checkpoint boundary.
	RestoreResumed
	// RestoreFreshNoSnapshot: this rank had no snapshot files at all.
	RestoreFreshNoSnapshot
	// RestoreFreshAllCorrupt: snapshot files existed but every generation
	// failed to load (CRC, geometry or truncation) — from-scratch fallback.
	RestoreFreshAllCorrupt
	// RestoreFreshPeerBehind: this rank had a usable snapshot but some peer
	// proposed tile 0, so the AllReduce(min) forced a fresh start.
	RestoreFreshPeerBehind
)

func (r RestoreReason) String() string {
	switch r {
	case RestoreNotRequested:
		return "not-requested"
	case RestoreResumed:
		return "resumed"
	case RestoreFreshNoSnapshot:
		return "fresh-no-snapshot"
	case RestoreFreshAllCorrupt:
		return "fresh-all-corrupt"
	case RestoreFreshPeerBehind:
		return "fresh-peer-behind"
	}
	return fmt.Sprintf("RestoreReason(%d)", int(r))
}

// RestoreInfo reports how a restore-enabled run started; returned inside
// Stats so a supervisor can account recovery cost without re-scanning disk.
type RestoreInfo struct {
	// Requested mirrors CheckpointConfig.Restore.
	Requested bool
	// Reason classifies the outcome; a fresh fallback is an outcome, not an
	// error — only divergence (an agreed generation this rank cannot load)
	// fails the run.
	Reason RestoreReason
	// StartTile is the first tile executed (0 = from scratch).
	StartTile int64
	// WastedTiles is the provable recomputation this restart causes for
	// this rank: tiles it had already executed — witnessed by its own
	// newest valid snapshot — at or beyond the agreed start. The true loss
	// (progress past the last snapshot) is unknowable after a crash; this
	// is the deterministic lower bound.
	WastedTiles int64
}

// CheckpointFile returns the snapshot path for a rank at a tile boundary
// (nextTile is the first tile NOT yet executed).
func CheckpointFile(dir string, rank int, nextTile int64) string {
	return filepath.Join(dir, fmt.Sprintf("ck-r%04d-t%08d.bin", rank, nextTile))
}

// checkpointTiles lists the boundaries rank has snapshot files for,
// ascending. Existence only — validity is the loader's business.
func checkpointTiles(dir string, rank int) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var tiles []int64
	for _, e := range entries {
		var r int
		var t int64
		if n, _ := fmt.Sscanf(e.Name(), "ck-r%04d-t%08d.bin", &r, &t); n == 2 && r == rank {
			tiles = append(tiles, t)
		}
	}
	sort.Slice(tiles, func(i, j int) bool { return tiles[i] < tiles[j] })
	return tiles, nil
}

// LatestCheckpoint reports the newest snapshot boundary present on disk for
// a rank (0 when there is none yet). It checks names only, not contents —
// cheap enough for a launcher to poll.
func LatestCheckpoint(dir string, rank int) (nextTile int64, path string, err error) {
	tiles, err := checkpointTiles(dir, rank)
	if err != nil || len(tiles) == 0 {
		return 0, "", err
	}
	t := tiles[len(tiles)-1]
	return t, CheckpointFile(dir, rank, t), nil
}

// writeCheckpoint snapshots l atomically (temp file + rename).
func writeCheckpoint(dir string, commSize int, cfg Config2D, l *Local2D, nextTile int64) (int64, error) {
	payloadLen := int64(8 * len(l.Data))
	buf := make([]byte, ckHdrLen+payloadLen)
	copy(buf[0:4], ckMagic)
	binary.BigEndian.PutUint32(buf[4:8], ckVersion)
	binary.BigEndian.PutUint32(buf[12:16], uint32(int32(l.Rank)))
	binary.BigEndian.PutUint32(buf[16:20], uint32(int32(commSize)))
	binary.BigEndian.PutUint64(buf[20:28], uint64(cfg.I1))
	binary.BigEndian.PutUint64(buf[28:36], uint64(cfg.I2))
	binary.BigEndian.PutUint64(buf[36:44], uint64(cfg.S1))
	binary.BigEndian.PutUint64(buf[44:52], uint64(l.Base2))
	binary.BigEndian.PutUint64(buf[52:60], uint64(l.Width))
	binary.BigEndian.PutUint64(buf[60:68], uint64(nextTile))
	binary.BigEndian.PutUint64(buf[68:76], uint64(payloadLen))
	for i, v := range l.Data {
		putF64(buf[ckHdrLen+8*i:], v)
	}
	binary.BigEndian.PutUint32(buf[8:12], crc32.ChecksumIEEE(buf[12:]))

	path := CheckpointFile(dir, l.Rank, nextTile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("runner: checkpoint create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("runner: checkpoint write: %w", err)
	}
	// The snapshot is a crash artifact by definition: its durability must
	// not depend on the crash timing, so the data is synced before the
	// rename and the directory after — otherwise a power cut could leave a
	// valid-looking name pointing at unwritten blocks.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("runner: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("runner: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("runner: checkpoint rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("runner: checkpoint dir sync: %w", err)
	}
	return int64(len(buf)), nil
}

// syncDir fsyncs a directory so a just-completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// removeOrphanTemps deletes this rank's leftover checkpoint temp files: a
// crash between create and rename leaks one `.tmp` per attempt, and since
// the temp name is derived from the target, retries at the same boundary
// truncate it but differing boundaries accumulate forever. Called at run
// start, when any temp bearing this rank's name is provably dead.
func removeOrphanTemps(dir string, rank int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		// Sscanf reports success on the two integers even when the literal
		// tail mismatches, so the .tmp suffix must be checked separately —
		// otherwise finished checkpoints would match too.
		if !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		var r int
		var t int64
		if n, _ := fmt.Sscanf(e.Name(), "ck-r%04d-t%08d.bin.tmp", &r, &t); n == 2 && r == rank {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// loadCheckpoint validates the snapshot at path against the run's geometry
// and fills l.Data from it, returning the stored next-tile index.
func loadCheckpoint(path string, commSize int, cfg Config2D, l *Local2D) (int64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(buf) < ckHdrLen {
		return 0, fmt.Errorf("runner: checkpoint %s: truncated header (%d bytes)", path, len(buf))
	}
	if string(buf[0:4]) != ckMagic {
		return 0, fmt.Errorf("runner: checkpoint %s: bad magic %q", path, buf[0:4])
	}
	if v := binary.BigEndian.Uint32(buf[4:8]); v != ckVersion {
		return 0, fmt.Errorf("runner: checkpoint %s: unsupported version %d", path, v)
	}
	if got, want := crc32.ChecksumIEEE(buf[12:]), binary.BigEndian.Uint32(buf[8:12]); got != want {
		return 0, fmt.Errorf("runner: checkpoint %s: CRC mismatch (file %08x, computed %08x)", path, want, got)
	}
	rank := int(int32(binary.BigEndian.Uint32(buf[12:16])))
	size := int(int32(binary.BigEndian.Uint32(buf[16:20])))
	i1 := int64(binary.BigEndian.Uint64(buf[20:28]))
	i2 := int64(binary.BigEndian.Uint64(buf[28:36]))
	s1 := int64(binary.BigEndian.Uint64(buf[36:44]))
	base2 := int64(binary.BigEndian.Uint64(buf[44:52]))
	width := int64(binary.BigEndian.Uint64(buf[52:60]))
	nextTile := int64(binary.BigEndian.Uint64(buf[60:68]))
	payloadLen := int64(binary.BigEndian.Uint64(buf[68:76]))
	if rank != l.Rank || size != commSize ||
		i1 != cfg.I1 || i2 != cfg.I2 || s1 != cfg.S1 ||
		base2 != l.Base2 || width != l.Width {
		return 0, fmt.Errorf("runner: checkpoint %s: geometry mismatch (rank %d/%d size %d space %dx%d s1 %d strip %d+%d)",
			path, rank, l.Rank, size, i1, i2, s1, base2, width)
	}
	if nextTile <= 0 || nextTile > cfg.tiles1() {
		return 0, fmt.Errorf("runner: checkpoint %s: next tile %d out of range", path, nextTile)
	}
	if payloadLen != int64(8*len(l.Data)) || int64(len(buf)) != ckHdrLen+payloadLen {
		return 0, fmt.Errorf("runner: checkpoint %s: payload length %d, want %d", path, payloadLen, 8*len(l.Data))
	}
	for i := range l.Data {
		l.Data[i] = getF64(buf[ckHdrLen+8*i:])
	}
	return nextTile, nil
}

// latestValid returns the newest snapshot boundary whose file actually
// loads and matches the run's geometry (0 when none does) plus the typed
// reason for a zero answer. A corrupt generation is skipped in favor of an
// older one; l is left holding the winning snapshot's data (or untouched
// when there is none).
func latestValid(dir string, commSize int, cfg Config2D, l *Local2D) (int64, RestoreReason) {
	tiles, err := checkpointTiles(dir, l.Rank)
	if err != nil || len(tiles) == 0 {
		return 0, RestoreFreshNoSnapshot
	}
	for i := len(tiles) - 1; i >= 0; i-- {
		t, err := loadCheckpoint(CheckpointFile(dir, l.Rank, tiles[i]), commSize, cfg, l)
		if err == nil {
			return t, RestoreResumed
		}
	}
	return 0, RestoreFreshAllCorrupt
}

// restore2D agrees on a global restart tile: every rank proposes its latest
// valid snapshot boundary and the minimum wins, so the frontier is one
// every rank can actually resume from. A fresh start (no snapshot, all
// generations corrupt, or a peer with nothing) is a typed outcome, not an
// error; only divergence — an agreed generation this rank cannot load — is.
// On return l holds the agreed snapshot's data (zeroed on a fresh start).
func restore2D(c mp.Comm, cfg Config2D, l *Local2D) (RestoreInfo, error) {
	info := RestoreInfo{Requested: true}
	mine, reason := latestValid(cfg.Checkpoint.Dir, c.Size(), cfg, l)
	agreed, err := mp.AllReduce(c, []float64{float64(mine)}, mp.OpMin)
	if err != nil {
		return info, err
	}
	start := int64(agreed[0])
	if start <= 0 {
		// Someone has nothing to resume from: fresh start. Discard any
		// snapshot latestValid left in l. Everything this rank had proven
		// done is recomputed from tile 0.
		if mine > 0 {
			for i := range l.Data {
				l.Data[i] = 0
			}
			reason = RestoreFreshPeerBehind
			info.WastedTiles = mine
		}
		info.Reason = reason
		return info, nil
	}
	info.Reason = RestoreResumed
	info.StartTile = start
	info.WastedTiles = mine - start
	if start == mine {
		return info, nil
	}
	// Roll back to the agreed (older) generation; it must load cleanly.
	if _, err := loadCheckpoint(CheckpointFile(cfg.Checkpoint.Dir, l.Rank, start), c.Size(), cfg, l); err != nil {
		return info, fmt.Errorf("runner: rank %d cannot load agreed checkpoint at tile %d: %w", l.Rank, start, err)
	}
	return info, nil
}

// maybeCheckpoint snapshots after tile t when t+1 lands on a configured
// boundary (and the run is not already over).
func (r *run2d) maybeCheckpoint(t int64) error {
	cc := r.cfg.Checkpoint
	if !cc.enabled() || (t+1)%cc.Every != 0 || t+1 >= r.cfg.tiles1() {
		return nil
	}
	n, err := writeCheckpoint(cc.Dir, r.c.Size(), r.cfg, r.l, t+1)
	if err != nil {
		return err
	}
	r.stats.Checkpoints++
	r.stats.CheckpointBytes += n
	return nil
}

// abortComm escalates a mid-run failure to a world abort so peers blocked
// on this rank unwind promptly instead of waiting out their deadlines. An
// error that already came from the failure machinery (the world is aborted
// or closed) needs no escalation.
func abortComm(c mp.Comm, err error) {
	if err == nil || errors.Is(err, mp.ErrAborted) || errors.Is(err, mp.ErrClosed) {
		return
	}
	_ = c.Abort(err)
}
