package runner

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mp"
	"repro/internal/stencil"
)

// gridsByteIdentical compares two gathered grids bit-for-bit (the restart
// guarantee is exact, not within-epsilon).
func gridsByteIdentical(t *testing.T, got, want *stencil.Grid) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("grid sizes differ: %d vs %d", len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("grids differ at linear index %d: %x vs %x",
				i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

func TestCheckpointFileNaming(t *testing.T) {
	path := CheckpointFile("d", 3, 12)
	if path != filepath.Join("d", "ck-r0003-t00000012.bin") {
		t.Fatalf("unexpected checkpoint path %q", path)
	}
}

func TestLatestCheckpointEmpty(t *testing.T) {
	tile, path, err := LatestCheckpoint(t.TempDir(), 0)
	if err != nil || tile != 0 || path != "" {
		t.Fatalf("empty dir: tile=%d path=%q err=%v", tile, path, err)
	}
	// A directory that does not exist yet is also "no checkpoints", not an
	// error — the launcher polls before the ranks create anything.
	tile, _, err = LatestCheckpoint(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil || tile != 0 {
		t.Fatalf("missing dir: tile=%d err=%v", tile, err)
	}
}

// checkpointAll2D runs cfg on n ranks and returns the gathered grid.
func checkpointAll2D(t *testing.T, n int, cfg Config2D) *stencil.Grid {
	t.Helper()
	grid, _ := runAll2D(t, n, cfg)
	return grid
}

func TestCheckpointRestoreByteIdentical(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		t.Run(mode.String(), func(t *testing.T) {
			const n = 4
			ref := checkpointAll2D(t, n, base2D(mode))

			// A checkpointing run leaves snapshots behind...
			dir := t.TempDir()
			cfg := base2D(mode)
			cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
			grid, stats := runAll2D(t, n, cfg)
			gridsByteIdentical(t, grid, ref)
			for rank, st := range stats {
				if st.Checkpoints == 0 || st.CheckpointBytes == 0 {
					t.Fatalf("rank %d wrote no checkpoints: %+v", rank, st)
				}
				if tile, _, err := LatestCheckpoint(dir, rank); err != nil || tile == 0 {
					t.Fatalf("rank %d has no snapshot on disk (tile=%d err=%v)", rank, tile, err)
				}
			}

			// ...and a restore run resumes from the newest boundary,
			// recomputing only the tail, yet the result is bit-identical.
			cfg.Checkpoint.Restore = true
			restored, rstats := runAll2D(t, n, cfg)
			gridsByteIdentical(t, restored, ref)
			full := base2D(mode).tiles1()
			for rank, st := range rstats {
				if int64(st.Tiles) >= full {
					t.Errorf("rank %d recomputed all %d tiles — restore did not resume", rank, st.Tiles)
				}
			}
		})
	}
}

// TestCheckpointCorruptGenerationFallsBack: a bit-flipped newest snapshot
// must be rejected by the CRC and restore must fall back to the previous
// generation — still bit-identical.
func TestCheckpointCorruptGenerationFallsBack(t *testing.T) {
	const n = 4
	ref := checkpointAll2D(t, n, base2D(Blocking))
	dir := t.TempDir()
	cfg := base2D(Blocking)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, n, cfg); grid == nil {
		t.Fatal("no grid")
	}
	// Flip one payload byte in rank 1's newest snapshot.
	tile, path, err := LatestCheckpoint(dir, 1)
	if err != nil || tile == 0 {
		t.Fatalf("no snapshot to corrupt: tile=%d err=%v", tile, err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint.Restore = true
	restored, stats := runAll2D(t, n, cfg)
	gridsByteIdentical(t, restored, ref)
	// Every rank resumed from the boundary before the corrupt one.
	for rank, st := range stats {
		if want := base2D(Blocking).tiles1() - (tile - cfg.Checkpoint.Every); int64(st.Tiles) != want {
			t.Errorf("rank %d recomputed %d tiles, want %d (fallback generation)", rank, st.Tiles, want)
		}
	}
}

// TestCheckpointAllCorruptMeansFreshStart: when one rank has nothing valid
// at all, the AllReduce(min) forces a clean fresh start for everyone.
func TestCheckpointAllCorruptMeansFreshStart(t *testing.T) {
	const n = 2
	ref := checkpointAll2D(t, n, base2D(Overlapped))
	dir := t.TempDir()
	cfg := base2D(Overlapped)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, n, cfg); grid == nil {
		t.Fatal("no grid")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ck-r0001-") {
			if err := os.Truncate(filepath.Join(dir, e.Name()), 5); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg.Checkpoint.Restore = true
	restored, stats := runAll2D(t, n, cfg)
	gridsByteIdentical(t, restored, ref)
	full := base2D(Overlapped).tiles1()
	for rank, st := range stats {
		if int64(st.Tiles) != full {
			t.Errorf("rank %d computed %d tiles, want full %d (fresh start)", rank, st.Tiles, full)
		}
	}
}

// TestCheckpointGeometryMismatchRejected: a snapshot from a different run
// shape must not load.
func TestCheckpointGeometryMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := base2D(Blocking)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, 2, cfg); grid == nil {
		t.Fatal("no grid")
	}
	other := cfg
	other.S1 = 5 // different tiling: snapshots are incompatible
	other.Checkpoint.Restore = true
	restored, stats := runAll2D(t, 2, other)
	want, _ := runAll2D(t, 2, func() Config2D { c := base2D(Blocking); c.S1 = 5; return c }())
	gridsByteIdentical(t, restored, want)
	for rank, st := range stats {
		if int64(st.Tiles) != other.tiles1() {
			t.Errorf("rank %d resumed from an incompatible snapshot (%d tiles)", rank, st.Tiles)
		}
	}
}

func TestCheckpointConfigValidate(t *testing.T) {
	cfg := base2D(Blocking)
	cfg.Checkpoint = CheckpointConfig{Every: 2} // no dir
	if cfg.Validate(2) == nil {
		t.Error("checkpoint interval without directory accepted")
	}
	cfg.Checkpoint = CheckpointConfig{Restore: true}
	if cfg.Validate(2) == nil {
		t.Error("restore without directory accepted")
	}
	cfg.Checkpoint = CheckpointConfig{Dir: "d", Every: -1}
	if cfg.Validate(2) == nil {
		t.Error("negative interval accepted")
	}
}

// TestRunnerAbortsWorldOnError: a rank failing mid-run poisons the world so
// its peers unwind with ErrAborted instead of waiting forever. The failure
// is injected by giving one rank a deadline-bearing comm and no partner
// traffic is NOT possible in lockstep runs, so instead use a faulty config:
// rank 1 runs with a mismatched tag space via a wrapper that fails Send.
func TestRunnerAbortsWorldOnError(t *testing.T) {
	const n = 3
	cfg := base2D(Blocking)
	err := mp.Launch(n, func(c mp.Comm) error {
		if c.Rank() == 1 {
			c = failingComm{Comm: c}
		}
		_, _, err := Run2D(c, cfg)
		return err
	})
	if err == nil {
		t.Fatal("run with failing rank succeeded")
	}
	// The launcher reports the first failing rank; whichever it is, the
	// error chain must be either the injected failure or the abort.
	if !strings.Contains(err.Error(), "injected send failure") &&
		!strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected failure chain: %v", err)
	}
}

type failingComm struct{ mp.Comm }

type errInjected struct{}

func (errInjected) Error() string { return "injected send failure" }

func (f failingComm) Send(dst, tag int, data []byte) error {
	return errInjected{}
}

func (f failingComm) Isend(dst, tag int, data []byte) (mp.Request, error) {
	return nil, errInjected{}
}

// TestCheckpointAllGenerationsCorruptTypedReason: when EVERY generation of
// EVERY rank is corrupt, restore must fall back to a from-scratch run with
// the typed RestoreFreshAllCorrupt reason — not an error — and still
// produce the byte-identical grid.
func TestCheckpointAllGenerationsCorruptTypedReason(t *testing.T) {
	const n = 2
	ref := checkpointAll2D(t, n, base2D(Blocking))
	dir := t.TempDir()
	cfg := base2D(Blocking)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, n, cfg); grid == nil {
		t.Fatal("no grid")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ck-") && strings.HasSuffix(e.Name(), ".bin") {
			if err := os.Truncate(filepath.Join(dir, e.Name()), 20); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no snapshots to corrupt")
	}
	cfg.Checkpoint.Restore = true
	restored, stats := runAll2D(t, n, cfg)
	gridsByteIdentical(t, restored, ref)
	full := base2D(Blocking).tiles1()
	for rank, st := range stats {
		if int64(st.Tiles) != full {
			t.Errorf("rank %d computed %d tiles, want full %d (fresh start)", rank, st.Tiles, full)
		}
		ri := st.Restore
		if !ri.Requested || ri.Reason != RestoreFreshAllCorrupt || ri.StartTile != 0 {
			t.Errorf("rank %d restore info = %+v, want requested fresh-all-corrupt at tile 0", rank, ri)
		}
	}
}

// TestCheckpointRestoreReasonsAndWaste: the typed outcome and the provable
// wasted-tile count across the three interesting shapes — a clean resume,
// a rank rolled back past a corrupt newest generation, and a peer-forced
// fresh start.
func TestCheckpointRestoreReasonsAndWaste(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	cfg := base2D(Blocking)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, n, cfg); grid == nil {
		t.Fatal("no grid")
	}
	tile, path, err := LatestCheckpoint(dir, 1)
	if err != nil || tile == 0 {
		t.Fatalf("no snapshot: tile=%d err=%v", tile, err)
	}

	// Clean resume: everyone restarts at the newest boundary, and the
	// recomputation is exactly what the snapshots prove was already done —
	// nothing, since every rank restarts at its own newest generation.
	cfg.Checkpoint.Restore = true
	_, stats := runAll2D(t, n, cfg)
	for rank, st := range stats {
		ri := st.Restore
		if ri.Reason != RestoreResumed || ri.StartTile != tile || ri.WastedTiles != 0 {
			t.Errorf("rank %d clean resume info = %+v, want resumed at %d with 0 wasted", rank, ri, tile)
		}
	}

	// Corrupt rank 1's newest generation: the world rolls back one
	// boundary, so every OTHER rank provably recomputes Every tiles.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats = runAll2D(t, n, cfg)
	for rank, st := range stats {
		ri := st.Restore
		wantWaste := cfg.Checkpoint.Every
		if rank == 1 {
			wantWaste = 0 // its own newest valid IS the agreed boundary
		}
		if ri.Reason != RestoreResumed || ri.StartTile != tile-cfg.Checkpoint.Every || ri.WastedTiles != wantWaste {
			t.Errorf("rank %d rollback info = %+v, want resumed at %d with %d wasted",
				rank, ri, tile-cfg.Checkpoint.Every, wantWaste)
		}
	}

	// Wipe rank 2 entirely: a peer with nothing forces tile 0 on everyone;
	// survivors waste everything their snapshots had proven.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ck-r0002-") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	// (The rollback run above re-checkpointed, so every surviving rank's
	// newest valid generation is the full boundary `tile` again.)
	_, stats = runAll2D(t, n, cfg)
	for rank, st := range stats {
		ri := st.Restore
		switch rank {
		case 2:
			if ri.Reason != RestoreFreshNoSnapshot || ri.WastedTiles != 0 {
				t.Errorf("rank 2 info = %+v, want fresh-no-snapshot", ri)
			}
		default:
			if ri.Reason != RestoreFreshPeerBehind || ri.WastedTiles != tile {
				t.Errorf("rank %d info = %+v, want fresh-peer-behind wasting %d", rank, ri, tile)
			}
		}
		if ri.StartTile != 0 {
			t.Errorf("rank %d start tile %d, want 0", rank, ri.StartTile)
		}
	}
}

// TestCheckpointRestoreUnderFaultPlan: a fault plan active at restore time
// (injected delivery delays riding the restore AllReduce and the resumed
// tile traffic) must not break the agreement or the bit-exactness.
func TestCheckpointRestoreUnderFaultPlan(t *testing.T) {
	const n = 4
	ref := checkpointAll2D(t, n, base2D(Overlapped))
	dir := t.TempDir()
	cfg := base2D(Overlapped)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, n, cfg); grid == nil {
		t.Fatal("no grid")
	}
	cfg.Checkpoint.Restore = true
	var mu sync.Mutex
	var grid *stencil.Grid
	stats := make([]Stats, n)
	err := mp.Launch(n, func(c mp.Comm) error {
		f := mp.WithFaults(c, 29)
		f.DelayProb = 0.4
		f.Delay = time.Millisecond
		l, st, err := Run2D(f, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		stats[c.Rank()] = st
		mu.Unlock()
		g, err := Gather2D(f, cfg, l)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			grid = g
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gridsByteIdentical(t, grid, ref)
	for rank, st := range stats {
		if st.Restore.Reason != RestoreResumed {
			t.Errorf("rank %d under faults: restore reason %v, want resumed", rank, st.Restore.Reason)
		}
	}
}

// TestCheckpointOrphanTempCleanup: stale .tmp files left by a crash
// mid-write are removed at the next run's start, and the cleanup must not
// touch finished snapshots or other ranks' temps.
func TestCheckpointOrphanTempCleanup(t *testing.T) {
	const n = 2
	dir := t.TempDir()
	orphan0 := filepath.Join(dir, "ck-r0000-t00000099.bin.tmp")
	orphan9 := filepath.Join(dir, "ck-r0009-t00000004.bin.tmp") // rank outside this world
	for _, p := range []string{orphan0, orphan9} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg := base2D(Blocking)
	cfg.Checkpoint = CheckpointConfig{Dir: dir, Every: 2}
	if grid, _ := runAll2D(t, n, cfg); grid == nil {
		t.Fatal("no grid")
	}
	if _, err := os.Stat(orphan0); !os.IsNotExist(err) {
		t.Errorf("rank 0's orphan temp survived the run (err=%v)", err)
	}
	if _, err := os.Stat(orphan9); err != nil {
		t.Errorf("another rank's temp was removed: %v", err)
	}
	if tile, _, err := LatestCheckpoint(dir, 0); err != nil || tile == 0 {
		t.Errorf("finished snapshots missing after cleanup: tile=%d err=%v", tile, err)
	}
}
