package runner

import (
	"fmt"
	"time"

	"repro/internal/ilmath"
	"repro/internal/mp"
	"repro/internal/space"
	"repro/internal/stencil"
)

// The 2-D executor runs the paper's Example 1 loop shape for real: an
// I1×I2 iteration space with dependences ⊆ {(1,1),(1,0),(0,1)}, tiled
// s1×s2, mapped along dimension 0 (each rank owns a strip of s2 columns and
// executes its column of tiles bottom-up, the paper's "all tiles along a
// certain dimension are mapped to the same processor").
//
// Cross-rank communication flows only left-to-right: the ghost needed by
// rank p's tile t is rank p−1's rightmost column over the tile's rows plus
// one row above it (for the diagonal dependence) — s1+1 values per tile,
// the corner riding the face message exactly as real stencil codes do.

// Config2D describes one 2-D run.
type Config2D struct {
	I1, I2   int64 // iteration space extents
	S1       int64 // tile side along dim 0 (local steps: ceil(I1/S1))
	Kernel   stencil.Kernel
	Boundary stencil.Boundary
	Mode     Mode
	// Checkpoint enables periodic snapshots and restart (see checkpoint.go).
	Checkpoint CheckpointConfig
}

// Local2D is one rank's strip after a run.
type Local2D struct {
	Rank    int
	Base2   int64 // first owned column
	Width   int64 // owned columns (the last rank's strip may be narrower)
	I1      int64
	Data    []float64 // (Width+1) columns × I1 rows; column −1 is the ghost
	useWest bool
}

func (l *Local2D) idx(i1, c int64) int64 { return (c+1)*l.I1 + i1 }

// At returns the value at row i1 of local column c (c = −1 is the ghost).
func (l *Local2D) At(i1, c int64) float64 { return l.Data[l.idx(i1, c)] }

func (l *Local2D) set(i1, c int64, v float64) { l.Data[l.idx(i1, c)] = v }

// Validate checks the configuration against the communicator size: ranks
// partition the I2 columns into ⌈I2/width⌉ strips of equal width (the last
// possibly narrower), so commSize must equal ⌈I2/S2⌉ for the implied S2 =
// ⌈I2/commSize⌉.
func (cfg Config2D) Validate(commSize int) error {
	if cfg.I1 <= 0 || cfg.I2 <= 0 {
		return fmt.Errorf("runner: non-positive space %dx%d", cfg.I1, cfg.I2)
	}
	if cfg.S1 <= 0 || cfg.S1 > cfg.I1 {
		return fmt.Errorf("runner: tile side S1=%d out of range (0,%d]", cfg.S1, cfg.I1)
	}
	if cfg.Kernel == nil {
		return fmt.Errorf("runner: nil kernel")
	}
	if cfg.Kernel.Deps().Dim() != 2 {
		return fmt.Errorf("runner: kernel %s is not 2-D", cfg.Kernel.Name())
	}
	for _, d := range cfg.Kernel.Deps().Vectors() {
		ok := d.Equal(ilmath.V(1, 0)) || d.Equal(ilmath.V(0, 1)) || d.Equal(ilmath.V(1, 1))
		if !ok {
			return fmt.Errorf("runner: unsupported 2-D dependence %v", d)
		}
	}
	if commSize <= 0 || int64(commSize) > cfg.I2 {
		return fmt.Errorf("runner: %d ranks for %d columns", commSize, cfg.I2)
	}
	if cfg.Mode != Blocking && cfg.Mode != Overlapped {
		return fmt.Errorf("runner: unknown mode %d", int(cfg.Mode))
	}
	return cfg.Checkpoint.validate()
}

// stripWidth returns the column strip geometry for a rank: a balanced
// partition (the first I2 mod size ranks get one extra column), which
// guarantees every rank at least one column whenever size ≤ I2 — a
// ceil-based split could leave trailing ranks empty and deadlock the
// barrier.
func (cfg Config2D) stripWidth(rank, size int) (base, width int64) {
	q := cfg.I2 / int64(size)
	r := cfg.I2 % int64(size)
	if int64(rank) < r {
		return int64(rank) * (q + 1), q + 1
	}
	return r*(q+1) + (int64(rank)-r)*q, q
}

// tiles1 returns the number of local steps (tiles along dim 0).
func (cfg Config2D) tiles1() int64 { return (cfg.I1 + cfg.S1 - 1) / cfg.S1 }

// tileRows returns [r0, r0+h) for local tile t.
func (cfg Config2D) tileRows(t int64) (r0, h int64) {
	r0 = t * cfg.S1
	h = cfg.S1
	if r0+h > cfg.I1 {
		h = cfg.I1 - r0
	}
	return r0, h
}

// Run2D executes the configured schedule; all ranks must call it with
// identical configurations.
func Run2D(c mp.Comm, cfg Config2D) (*Local2D, Stats, error) {
	if err := cfg.Validate(c.Size()); err != nil {
		return nil, Stats{}, err
	}
	if cfg.Boundary == nil {
		cfg.Boundary = stencil.ConstBoundary(1)
	}
	rank := c.Rank()
	base, width := cfg.stripWidth(rank, c.Size())
	if width <= 0 {
		return nil, Stats{}, fmt.Errorf("runner: rank %d owns no columns (too many ranks)", rank)
	}
	l := &Local2D{
		Rank:    rank,
		Base2:   base,
		Width:   width,
		I1:      cfg.I1,
		Data:    make([]float64, (width+1)*cfg.I1),
		useWest: rank > 0,
	}
	r := &run2d{cfg: cfg, c: c, l: l}
	if cfg.Checkpoint.Dir != "" {
		removeOrphanTemps(cfg.Checkpoint.Dir, rank)
	}
	// Agree on a restart tile before any compute: the AllReduce inside
	// restore2D doubles as the first synchronization point.
	var startTile int64
	if cfg.Checkpoint.Restore {
		info, err := restore2D(c, cfg, l)
		if err != nil {
			abortComm(c, err)
			return nil, Stats{}, fmt.Errorf("runner: rank %d restore: %w", rank, err)
		}
		r.stats.Restore = info
		startTile = info.StartTile
	}
	if err := c.Barrier(); err != nil {
		return nil, Stats{}, err
	}
	//tilevet:allow determinism -- Stats.Elapsed is the paper's measured wall-clock output; it never feeds the computed grid
	start := time.Now()
	var err error
	if cfg.Mode == Blocking {
		err = r.runBlocking(startTile)
	} else {
		err = r.runOverlapped(startTile)
	}
	if err != nil {
		abortComm(c, err)
		// Partial stats travel with the error: a supervisor accounting
		// wasted work wants to know how far this attempt got.
		return nil, r.stats, fmt.Errorf("runner: rank %d: %w", rank, err)
	}
	if err := c.Barrier(); err != nil {
		return nil, r.stats, err
	}
	r.stats.Elapsed = time.Since(start) //tilevet:allow determinism -- wall-clock measurement, reporting only
	return l, r.stats, nil
}

type run2d struct {
	cfg   Config2D
	c     mp.Comm
	l     *Local2D
	stats Stats
}

func (r *run2d) hasWest() bool { return r.l.Rank > 0 }
func (r *run2d) hasEast() bool {
	base, width := r.cfg.stripWidth(r.l.Rank, r.c.Size())
	return base+width < r.cfg.I2
}

// ghostLen is the message length for tile t: h rows plus one row above
// (for the diagonal dependence), clipped at the space's lower edge.
func (r *run2d) ghostLen(t int64) int64 {
	_, h := r.cfg.tileRows(t)
	return h + 1
}

// packEast packs this rank's rightmost column for consumer tile t: rows
// r0−1 … r0+h−1 (the r0−1 entry is the corner for the diagonal; at t = 0 it
// is filled with the boundary value since row −1 is outside the space).
func (r *run2d) packEast(t int64) []byte {
	r0, h := r.cfg.tileRows(t)
	buf := make([]byte, 8*(h+1))
	right := r.l.Width - 1
	if r0 == 0 {
		putF64(buf, r.cfg.Boundary(ilmath.V(-1, r.l.Base2+right)))
	} else {
		putF64(buf, r.l.At(r0-1, right))
	}
	for i := int64(0); i < h; i++ {
		putF64(buf[8*(i+1):], r.l.At(r0+i, right))
	}
	return buf
}

// unpackWest stores a received ghost column piece for tile t into the ghost
// column (rows r0−1 … r0+h−1; the r0−1 slot lives at ghost row r0−1, except
// for t = 0 where it is discarded in favor of the boundary).
func (r *run2d) unpackWest(buf []byte, t int64) {
	r0, h := r.cfg.tileRows(t)
	if r0 > 0 {
		r.l.set(r0-1, -1, getF64(buf))
	}
	for i := int64(0); i < h; i++ {
		r.l.set(r0+i, -1, getF64(buf[8*(i+1):]))
	}
}

func (r *run2d) computeTile(t int64) {
	r0, h := r.cfg.tileRows(t)
	l := r.l
	b := r.cfg.Boundary
	get := func(q ilmath.Vec) float64 {
		i1, c := q[0], q[1]-l.Base2
		if i1 < 0 || q[1] < 0 {
			return b(q)
		}
		if c == -1 {
			if r.hasWest() {
				return l.At(i1, -1)
			}
			return b(q)
		}
		return l.At(i1, c)
	}
	for i1 := r0; i1 < r0+h; i1++ {
		for c := int64(0); c < l.Width; c++ {
			j := ilmath.V(i1, l.Base2+c)
			l.set(i1, c, r.cfg.Kernel.Eval(j, get))
		}
	}
	r.stats.Tiles++
}

func (r *run2d) runBlocking(start int64) error {
	n := r.cfg.tiles1()
	for t := start; t < n; t++ {
		if r.hasWest() {
			buf := make([]byte, 8*r.ghostLen(t))
			if _, err := r.c.Recv(r.l.Rank-1, int(t), buf); err != nil {
				return err
			}
			r.unpackWest(buf, t)
			r.stats.MsgsRecvd++
		}
		r.computeTile(t)
		if r.hasEast() {
			buf := r.packEast(t)
			if err := r.c.Send(r.l.Rank+1, int(t), buf); err != nil {
				return err
			}
			r.stats.MsgsSent++
			r.stats.BytesSent += int64(len(buf))
		}
		if err := r.maybeCheckpoint(t); err != nil {
			return err
		}
	}
	return nil
}

func (r *run2d) runOverlapped(start int64) error {
	n := r.cfg.tiles1()
	type ghost struct {
		req mp.Request
		buf []byte
	}
	post := func(t int64) (*ghost, error) {
		if !r.hasWest() {
			return nil, nil
		}
		g := &ghost{buf: make([]byte, 8*r.ghostLen(t))}
		var err error
		g.req, err = r.c.Irecv(r.l.Rank-1, int(t), g.buf)
		return g, err
	}
	cur, err := post(start)
	if err != nil {
		return err
	}
	var sendReq mp.Request
	for t := start; t < n; t++ {
		// Send the results of tile t−1 (non-blocking). On a restored run
		// tile start−1's face was consumed by the neighbor before its
		// checkpoint, so the first send is tile start's face, next loop.
		if t > start && r.hasEast() {
			buf := r.packEast(t - 1)
			if sendReq, err = r.c.Isend(r.l.Rank+1, int(t-1), buf); err != nil {
				return err
			}
			r.stats.MsgsSent++
			r.stats.BytesSent += int64(len(buf))
		}
		// Post the receive for tile t+1.
		var next *ghost
		if t+1 < n {
			if next, err = post(t + 1); err != nil {
				return err
			}
		}
		// Wait for this tile's ghost and compute.
		if cur != nil {
			if _, err := cur.req.Wait(); err != nil {
				return err
			}
			r.unpackWest(cur.buf, t)
			r.stats.MsgsRecvd++
		}
		r.computeTile(t)
		if sendReq != nil {
			if _, err := sendReq.Wait(); err != nil {
				return err
			}
			sendReq = nil
		}
		if err := r.maybeCheckpoint(t); err != nil {
			return err
		}
		cur = next
	}
	// Epilogue: ship the last tile's results.
	if r.hasEast() {
		buf := r.packEast(n - 1)
		req, err := r.c.Isend(r.l.Rank+1, int(n-1), buf)
		if err != nil {
			return err
		}
		r.stats.MsgsSent++
		r.stats.BytesSent += int64(len(buf))
		if _, err := req.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Gather2D assembles the full grid on rank 0 (others return nil).
func Gather2D(c mp.Comm, cfg Config2D, l *Local2D) (*stencil.Grid, error) {
	blockLen := int(8 * (1 + l.Width*l.I1)) // width header + data
	block := make([]byte, blockLen)
	putF64(block, float64(l.Width))
	o := 8
	for c2 := int64(0); c2 < l.Width; c2++ {
		for i1 := int64(0); i1 < l.I1; i1++ {
			putF64(block[o:], l.At(i1, c2))
			o += 8
		}
	}
	blocks, err := mp.GatherBytes(c, 0, block)
	if err != nil {
		return nil, err
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	sp, err := space.Rect(cfg.I1, cfg.I2)
	if err != nil {
		return nil, err
	}
	out := stencil.NewGrid(sp)
	for rank, buf := range blocks {
		base, _ := cfg.stripWidth(rank, c.Size())
		width := int64(getF64(buf))
		o := 8
		for c2 := int64(0); c2 < width; c2++ {
			for i1 := int64(0); i1 < cfg.I1; i1++ {
				out.Set(ilmath.V(i1, base+c2), getF64(buf[o:]))
				o += 8
			}
		}
	}
	return out, nil
}

// VerifySequential2D compares a gathered grid against a sequential run.
func VerifySequential2D(g *stencil.Grid, cfg Config2D) (float64, error) {
	sp, err := space.Rect(cfg.I1, cfg.I2)
	if err != nil {
		return 0, err
	}
	ref, err := stencil.RunSequential(sp, cfg.Kernel, cfg.Boundary)
	if err != nil {
		return 0, err
	}
	return stencil.MaxAbsDiff(g, ref)
}
