package runner

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/stencil"
)

// TestRunUnderDelayFaults: injected message delays (mp.FaultyComm) slow
// the real execution down but must never change the computed grid — the
// runner's correctness depends only on message ordering, which the
// injector preserves.
func TestRunUnderDelayFaults(t *testing.T) {
	cfg := Config{
		Grid:   model.Grid3D{I: 4, J: 4, K: 32, PI: 2, PJ: 2},
		V:      8,
		Kernel: stencil.Sqrt3D{},
		Mode:   Overlapped,
	}
	err := mp.Launch(4, func(c mp.Comm) error {
		f := mp.WithFaults(c, 11)
		f.DelayProb = 0.5
		f.Delay = time.Millisecond
		local, _, err := Run(f, cfg)
		if err != nil {
			return err
		}
		grid, err := Gather(f, cfg, local)
		if err != nil {
			return err
		}
		if f.Rank() != 0 {
			return nil
		}
		if f.Ops() == 0 {
			return fmt.Errorf("no operations passed through the injector")
		}
		diff, err := VerifySequential(grid, cfg)
		if err != nil {
			return err
		}
		if diff != 0 {
			return fmt.Errorf("delay faults corrupted the result: max diff %g", diff)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
