// Package runner executes the paper's Section 5 experiment for real on the
// mp message-passing layer: the 3-D stencil over an I×J×K space, tiled
// (I/PI)×(J/PJ)×V with all k-tiles of a column mapped to one rank, under
// either the blocking receive→compute→send scheme (ProcB) or the
// non-blocking overlapped scheme (ProcNB) from the paper's pseudocode.
package runner
