package runner

import (
	"sync"
	"testing"

	"repro/internal/mp"
	"repro/internal/stencil"
)

// runAll2D executes cfg on n in-process ranks, returning rank 0's gathered
// grid and per-rank stats.
func runAll2D(t *testing.T, n int, cfg Config2D) (*stencil.Grid, []Stats) {
	t.Helper()
	stats := make([]Stats, n)
	var grid *stencil.Grid
	var mu sync.Mutex
	err := mp.Launch(n, func(c mp.Comm) error {
		l, st, err := Run2D(c, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		stats[c.Rank()] = st
		mu.Unlock()
		g, err := Gather2D(c, cfg, l)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			grid = g
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return grid, stats
}

func base2D(mode Mode) Config2D {
	return Config2D{I1: 60, I2: 40, S1: 10, Kernel: stencil.Sum2D{}, Mode: mode}
}

func TestRun2DValidate(t *testing.T) {
	cfg := base2D(Blocking)
	if err := cfg.Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.S1 = 0
	if bad.Validate(4) == nil {
		t.Error("zero S1 accepted")
	}
	bad = cfg
	bad.S1 = 100
	if bad.Validate(4) == nil {
		t.Error("S1 > I1 accepted")
	}
	bad = cfg
	bad.Kernel = stencil.Sqrt3D{}
	if bad.Validate(4) == nil {
		t.Error("3-D kernel accepted")
	}
	bad = cfg
	bad.Kernel = nil
	if bad.Validate(4) == nil {
		t.Error("nil kernel accepted")
	}
	if cfg.Validate(0) == nil {
		t.Error("zero ranks accepted")
	}
	if cfg.Validate(41) == nil {
		t.Error("more ranks than columns accepted")
	}
	bad = cfg
	bad.Mode = Mode(9)
	if bad.Validate(4) == nil {
		t.Error("bad mode accepted")
	}
}

func TestRun2DBlockingMatchesSequential(t *testing.T) {
	cfg := base2D(Blocking)
	grid, stats := runAll2D(t, 4, cfg)
	diff, err := VerifySequential2D(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("blocking 2-D run differs from sequential by %g", diff)
	}
	// 6 local tiles per rank; ranks 0..2 send, ranks 1..3 receive.
	if stats[0].Tiles != 6 || stats[0].MsgsSent != 6 || stats[0].MsgsRecvd != 0 {
		t.Errorf("rank 0 stats wrong: %+v", stats[0])
	}
	if stats[3].MsgsSent != 0 || stats[3].MsgsRecvd != 6 {
		t.Errorf("rank 3 stats wrong: %+v", stats[3])
	}
}

func TestRun2DOverlappedMatchesSequential(t *testing.T) {
	cfg := base2D(Overlapped)
	grid, _ := runAll2D(t, 4, cfg)
	diff, err := VerifySequential2D(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("overlapped 2-D run differs from sequential by %g", diff)
	}
}

func TestRun2DModesAgree(t *testing.T) {
	a, _ := runAll2D(t, 5, base2D(Blocking))
	b, _ := runAll2D(t, 5, base2D(Overlapped))
	diff, err := stencil.MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("modes disagree by %g", diff)
	}
}

func TestRun2DPartialTilesAndStrips(t *testing.T) {
	// I1 = 57 with S1 = 10: 6 tiles, the last of height 7.
	// I2 = 43 on 4 ranks: strips of 11, 11, 11, 10.
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg := Config2D{I1: 57, I2: 43, S1: 10, Kernel: stencil.Sum2D{}, Mode: mode}
		grid, stats := runAll2D(t, 4, cfg)
		diff, err := VerifySequential2D(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("%v with partial tiles differs by %g", mode, diff)
		}
		for r, st := range stats {
			if st.Tiles != 6 {
				t.Errorf("%v rank %d executed %d tiles", mode, r, st.Tiles)
			}
		}
	}
}

func TestRun2DSingleRank(t *testing.T) {
	cfg := base2D(Overlapped)
	grid, stats := runAll2D(t, 1, cfg)
	diff, err := VerifySequential2D(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("single-rank differs by %g", diff)
	}
	if stats[0].MsgsSent != 0 || stats[0].MsgsRecvd != 0 {
		t.Error("single rank exchanged messages")
	}
}

func TestRun2DCustomBoundary(t *testing.T) {
	cfg := base2D(Overlapped)
	cfg.Boundary = stencil.ConstBoundary(2.5)
	grid, _ := runAll2D(t, 4, cfg)
	diff, err := VerifySequential2D(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("custom boundary differs by %g", diff)
	}
}

func TestRun2DNoDiagonalKernel(t *testing.T) {
	// A kernel without the diagonal dependence also works (the corner slot
	// is shipped but unused).
	w, err := stencil.NewWeighted("plain2", stencil.Sum2D{}.Deps(), []float64{0.5, 0.25, 0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config2D{I1: 40, I2: 30, S1: 8, Kernel: w, Mode: Overlapped}
	grid, _ := runAll2D(t, 3, cfg)
	diff, err := VerifySequential2D(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-12 {
		t.Errorf("weighted kernel differs by %g", diff)
	}
}

func TestRun2DExample1Shape(t *testing.T) {
	// A scaled version of the paper's Example 1 (10000x1000 with 10x10
	// tiles): 400x100 over 10 ranks, S1 = 10.
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg := Config2D{I1: 400, I2: 100, S1: 10, Kernel: stencil.Sum2D{}, Mode: mode}
		grid, stats := runAll2D(t, 10, cfg)
		diff, err := VerifySequential2D(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("%v Example-1 shape differs by %g", mode, diff)
		}
		// 40 tiles per rank, message length S1+1 values.
		if stats[0].Tiles != 40 {
			t.Errorf("rank 0 tiles = %d", stats[0].Tiles)
		}
		if stats[0].BytesSent != 40*8*11 {
			t.Errorf("rank 0 sent %d bytes, want %d", stats[0].BytesSent, 40*8*11)
		}
	}
}

func TestRun2DS1EqualsI1(t *testing.T) {
	// One tile per rank: the pipeline degenerates to a single wavefront.
	cfg := Config2D{I1: 20, I2: 24, S1: 20, Kernel: stencil.Sum2D{}, Mode: Overlapped}
	grid, stats := runAll2D(t, 4, cfg)
	diff, err := VerifySequential2D(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("S1=I1 differs by %g", diff)
	}
	if stats[0].Tiles != 1 {
		t.Errorf("tiles = %d", stats[0].Tiles)
	}
}

// TestRun2DUnderRendezvous: the 2-D executor is likewise deadlock-free and
// exact when every send is synchronous.
func TestRun2DUnderRendezvous(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg := base2D(mode)
		var grid *stencil.Grid
		var mu sync.Mutex
		err := mp.LaunchOpts(4, mp.WorldOptions{RendezvousThreshold: 0}, func(c mp.Comm) error {
			l, _, err := Run2D(c, cfg)
			if err != nil {
				return err
			}
			g, err := Gather2D(c, cfg, l)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				grid = g
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v 2-D under rendezvous: %v", mode, err)
		}
		diff, err := VerifySequential2D(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("%v 2-D under rendezvous differs by %g", mode, diff)
		}
	}
}
