package runner

import (
	"math"
	"net"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mp"
	"repro/internal/stencil"
)

// runAll executes cfg on a fresh in-process world and returns rank 0's
// gathered grid plus per-rank stats.
func runAll(t *testing.T, cfg Config) (*stencil.Grid, []Stats) {
	t.Helper()
	n := int(cfg.Grid.PI * cfg.Grid.PJ)
	stats := make([]Stats, n)
	var grid *stencil.Grid
	var mu sync.Mutex
	err := mp.Launch(n, func(c mp.Comm) error {
		l, st, err := Run(c, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		stats[c.Rank()] = st
		mu.Unlock()
		g, err := Gather(c, cfg, l)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			grid = g
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return grid, stats
}

func baseConfig(mode Mode) Config {
	return Config{
		Grid:   model.Grid3D{I: 8, J: 8, K: 32, PI: 2, PJ: 2},
		V:      4,
		Kernel: stencil.Sqrt3D{},
		Mode:   mode,
	}
}

func TestValidate(t *testing.T) {
	cfg := baseConfig(Blocking)
	if err := cfg.Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := cfg.Validate(3); err == nil {
		t.Error("wrong communicator size accepted")
	}
	bad := cfg
	bad.V = 0
	if err := bad.Validate(4); err == nil {
		t.Error("zero V accepted")
	}
	bad = cfg
	bad.V = 33
	if err := bad.Validate(4); err == nil {
		t.Error("V > K accepted")
	}
	bad = cfg
	bad.Kernel = nil
	if err := bad.Validate(4); err == nil {
		t.Error("nil kernel accepted")
	}
	bad = cfg
	bad.Kernel = stencil.Sum2D{}
	if err := bad.Validate(4); err == nil {
		t.Error("2-D kernel accepted")
	}
	bad = cfg
	bad.Mode = Mode(7)
	if err := bad.Validate(4); err == nil {
		t.Error("bad mode accepted")
	}
	w, _ := stencil.NewWeighted("diag", stencil.Sum2D{}.Deps(), []float64{1, 1, 1}, false)
	_ = w // 2-D kernel covered above; diagonal 3-D below
}

func TestBlockingMatchesSequential(t *testing.T) {
	cfg := baseConfig(Blocking)
	grid, stats := runAll(t, cfg)
	diff, err := VerifySequential(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("blocking run differs from sequential by %g", diff)
	}
	// Every rank executed all its tiles.
	for r, st := range stats {
		if st.Tiles != 8 {
			t.Errorf("rank %d executed %d tiles, want 8", r, st.Tiles)
		}
	}
}

func TestOverlappedMatchesSequential(t *testing.T) {
	cfg := baseConfig(Overlapped)
	grid, _ := runAll(t, cfg)
	diff, err := VerifySequential(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("overlapped run differs from sequential by %g", diff)
	}
}

func TestModesAgreeExactly(t *testing.T) {
	a, _ := runAll(t, baseConfig(Blocking))
	b, _ := runAll(t, baseConfig(Overlapped))
	diff, err := stencil.MaxAbsDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("modes disagree by %g", diff)
	}
}

func TestPartialLastTile(t *testing.T) {
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg := baseConfig(mode)
		cfg.V = 5 // 32 = 5·6 + 2: partial last tile of height 2
		grid, stats := runAll(t, cfg)
		diff, err := VerifySequential(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("%v with partial tile differs by %g", mode, diff)
		}
		for r, st := range stats {
			if st.Tiles != 7 {
				t.Errorf("%v rank %d executed %d tiles, want 7", mode, r, st.Tiles)
			}
		}
	}
}

func TestVEqualsK(t *testing.T) {
	// One tile per processor: communication collapses to a single exchange.
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg := baseConfig(mode)
		cfg.V = 32
		grid, stats := runAll(t, cfg)
		diff, err := VerifySequential(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("%v V=K differs by %g", mode, diff)
		}
		// Interior/edge ranks: rank 0 (pi=0,pj=0) sends east+south = 2.
		if stats[0].MsgsSent != 2 {
			t.Errorf("%v rank 0 sent %d msgs, want 2", mode, stats[0].MsgsSent)
		}
		// Rank 3 (pi=1,pj=1) receives west+north = 2, sends none.
		if stats[3].MsgsSent != 0 || stats[3].MsgsRecvd != 2 {
			t.Errorf("%v rank 3 sent/recvd %d/%d, want 0/2", mode, stats[3].MsgsSent, stats[3].MsgsRecvd)
		}
	}
}

func TestVEquals1(t *testing.T) {
	// Finest tiling: maximal message count, still exact.
	cfg := baseConfig(Overlapped)
	cfg.V = 1
	grid, stats := runAll(t, cfg)
	diff, err := VerifySequential(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("V=1 differs by %g", diff)
	}
	if stats[0].MsgsSent != 64 { // 32 tiles × 2 neighbors
		t.Errorf("rank 0 sent %d msgs, want 64", stats[0].MsgsSent)
	}
}

func TestSingleProcessor(t *testing.T) {
	cfg := Config{
		Grid:   model.Grid3D{I: 4, J: 4, K: 16, PI: 1, PJ: 1},
		V:      4,
		Kernel: stencil.Sqrt3D{},
		Mode:   Overlapped,
	}
	grid, stats := runAll(t, cfg)
	diff, err := VerifySequential(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("single-proc differs by %g", diff)
	}
	if stats[0].MsgsSent != 0 || stats[0].MsgsRecvd != 0 {
		t.Error("single processor exchanged messages")
	}
}

func TestRowAndColumnGrids(t *testing.T) {
	// Degenerate processor grids: 1×4 and 4×1.
	for _, g := range []model.Grid3D{
		{I: 4, J: 8, K: 16, PI: 1, PJ: 4},
		{I: 8, J: 4, K: 16, PI: 4, PJ: 1},
	} {
		for _, mode := range []Mode{Blocking, Overlapped} {
			cfg := Config{Grid: g, V: 4, Kernel: stencil.Sqrt3D{}, Mode: mode}
			grid, _ := runAll(t, cfg)
			diff, err := VerifySequential(grid, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if diff != 0 {
				t.Errorf("%v on %+v differs by %g", mode, g, diff)
			}
		}
	}
}

func TestCustomBoundaryAndKernel(t *testing.T) {
	w, err := stencil.NewWeighted("lin3", stencil.Sqrt3D{}.Deps(), []float64{0.25, 0.5, 0.125}, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Grid:     model.Grid3D{I: 6, J: 6, K: 12, PI: 3, PJ: 2},
		V:        3,
		Kernel:   w,
		Boundary: stencil.ConstBoundary(2),
		Mode:     Overlapped,
	}
	grid, _ := runAll(t, cfg)
	diff, err := VerifySequential(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-12 {
		t.Errorf("weighted kernel differs by %g", diff)
	}
}

func TestBytesSentAccounting(t *testing.T) {
	cfg := baseConfig(Blocking)
	_, stats := runAll(t, cfg)
	// Rank 0: east face = TJ·K values, south face = TI·K values, 8 B each.
	want := int64(8 * (4*32 + 4*32))
	if stats[0].BytesSent != want {
		t.Errorf("rank 0 sent %d bytes, want %d", stats[0].BytesSent, want)
	}
}

func TestStatsElapsedPositive(t *testing.T) {
	_, stats := runAll(t, baseConfig(Overlapped))
	for r, st := range stats {
		if st.Elapsed <= 0 {
			t.Errorf("rank %d elapsed %v", r, st.Elapsed)
		}
	}
}

func TestValuesAreFinite(t *testing.T) {
	grid, _ := runAll(t, baseConfig(Overlapped))
	for i, v := range grid.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value at %d: %g", i, v)
		}
	}
}

func TestModeString(t *testing.T) {
	if Blocking.String() != "blocking" || Overlapped.String() != "overlapped" {
		t.Error("mode strings wrong")
	}
}

// TestTCPTransportEndToEnd runs the full stencil over the TCP transport,
// proving the runner is transport-agnostic.
func TestTCPTransportEndToEnd(t *testing.T) {
	cfg := Config{
		Grid:   model.Grid3D{I: 4, J: 4, K: 8, PI: 2, PJ: 2},
		V:      2,
		Kernel: stencil.Sqrt3D{},
		Mode:   Overlapped,
	}
	addrs := freeAddrs(t, 4)
	var grid *stencil.Grid
	var mu sync.Mutex
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := mp.ConnectTCP(rank, 4, addrs, nil)
			if err != nil {
				errs[rank] = err
				return
			}
			defer c.Close()
			l, _, err := Run(c, cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			g, err := Gather(c, cfg, l)
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				mu.Lock()
				grid = g
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	diff, err := VerifySequential(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("TCP run differs from sequential by %g", diff)
	}
}

// freeAddrs reserves n distinct loopback ports by listening and closing.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestOverlappedUnderRendezvous runs ProcNB on a fabric where EVERY send is
// synchronous (completes only when the receiver matches) — the adversarial
// transport for overlap schedules. The pre-posted receives of the
// overlapped discipline must keep the pipeline deadlock-free and the result
// exact. ProcB is included too: its strictly ordered recv→compute→send
// triplets also never cycle.
func TestOverlappedUnderRendezvous(t *testing.T) {
	cfg := baseConfig(Overlapped)
	for _, mode := range []Mode{Blocking, Overlapped} {
		cfg.Mode = mode
		var grid *stencil.Grid
		var mu sync.Mutex
		err := mp.LaunchOpts(4, mp.WorldOptions{RendezvousThreshold: 0}, func(c mp.Comm) error {
			l, _, err := Run(c, cfg)
			if err != nil {
				return err
			}
			g, err := Gather(c, cfg, l)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				grid = g
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v under rendezvous: %v", mode, err)
		}
		diff, err := VerifySequential(grid, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Errorf("%v under rendezvous differs by %g", mode, diff)
		}
	}
}
