package ilmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := V(1, -2, 3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	if got := v.String(); got != "(1, -2, 3)" {
		t.Errorf("String = %q", got)
	}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone is not independent")
	}
	if !v.Equal(V(1, -2, 3)) {
		t.Error("Equal failed on identical vectors")
	}
	if v.Equal(V(1, -2)) {
		t.Error("Equal true across dimensions")
	}
	if v.IsZero() {
		t.Error("IsZero true for nonzero vector")
	}
	if !NewVec(4).IsZero() {
		t.Error("IsZero false for zero vector")
	}
}

func TestVecArithmetic(t *testing.T) {
	v, w := V(1, 2, 3), V(4, 5, 6)
	if got := v.Add(w); !got.Equal(V(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(V(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(-2); !got.Equal(V(-2, -4, -6)) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); !got.Equal(V(-1, -2, -3)) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %d, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %d, want 6", got)
	}
}

func TestVecMinMaxArg(t *testing.T) {
	v := V(3, 9, -1, 9)
	if v.Max() != 9 {
		t.Errorf("Max = %d", v.Max())
	}
	if v.Min() != -1 {
		t.Errorf("Min = %d", v.Min())
	}
	if v.ArgMax() != 1 {
		t.Errorf("ArgMax = %d, want first max index 1", v.ArgMax())
	}
}

func TestVecPredicates(t *testing.T) {
	if !V(0, 1, 2).IsNonNegative() {
		t.Error("IsNonNegative false for nonnegative vector")
	}
	if V(0, -1).IsNonNegative() {
		t.Error("IsNonNegative true for negative component")
	}
	cases := []struct {
		v    Vec
		want bool
	}{
		{V(1, -5), true},
		{V(0, 0, 1), true},
		{V(0, -1, 5), false},
		{V(0, 0, 0), false},
		{V(-1), false},
	}
	for _, c := range cases {
		if got := c.v.LexPositive(); got != c.want {
			t.Errorf("LexPositive(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched dimensions did not panic")
		}
	}()
	V(1, 2).Add(V(1, 2, 3))
}

func TestAddCheckedOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	addChecked(math.MaxInt64, 1)
}

func TestMulCheckedOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	mulChecked(math.MaxInt64/2, 3)
}

func TestSubCheckedOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	subChecked(math.MinInt64, 1)
}

func TestGcdLcm(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm int64 }{
		{0, 0, 0, 0},
		{0, 5, 5, 0},
		{4, 6, 2, 12},
		{-4, 6, 2, 12},
		{4, -6, 2, 12},
		{-4, -6, 2, 12},
		{7, 13, 1, 91},
		{12, 12, 12, 12},
	}
	for _, c := range cases {
		if g := Gcd(c.a, c.b); g != c.gcd {
			t.Errorf("Gcd(%d,%d) = %d, want %d", c.a, c.b, g, c.gcd)
		}
		if l := Lcm(c.a, c.b); l != c.lcm {
			t.Errorf("Lcm(%d,%d) = %d, want %d", c.a, c.b, l, c.lcm)
		}
	}
}

func TestAbsInt64(t *testing.T) {
	if AbsInt64(-7) != 7 || AbsInt64(7) != 7 || AbsInt64(0) != 0 {
		t.Error("AbsInt64 wrong")
	}
}

// small bounds the magnitude of quick-generated ints so exact arithmetic
// cannot overflow inside property tests.
func small(x int64) int64 { return x % 1000 }

func TestPropGcdDividesBoth(t *testing.T) {
	f := func(a, b int64) bool {
		a, b = small(a), small(b)
		g := Gcd(a, b)
		if g == 0 {
			return a == 0 && b == 0
		}
		return a%g == 0 && b%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropGcdLcmProduct(t *testing.T) {
	f := func(a, b int64) bool {
		a, b = small(a), small(b)
		if a == 0 || b == 0 {
			return Lcm(a, b) == 0
		}
		return Gcd(a, b)*Lcm(a, b) == AbsInt64(a)*AbsInt64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropVecAddCommutative(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		v := V(small(a), small(b), small(c))
		w := V(small(d), small(e), small(g))
		return v.Add(w).Equal(w.Add(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropVecDotSymmetric(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		v := V(small(a), small(b), small(c))
		w := V(small(d), small(e), small(g))
		return v.Dot(w) == w.Dot(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubAddRoundTrip(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		v := V(small(a), small(b))
		w := V(small(c), small(d))
		return v.Sub(w).Add(w).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
