package ilmath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatConstructors(t *testing.T) {
	m := MatFromRows(V(1, 2), V(3, 4))
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("MatFromRows layout wrong: %v", m)
	}
	c := MatFromCols(V(1, 2), V(3, 4))
	if c.At(0, 1) != 3 || c.At(1, 0) != 2 {
		t.Errorf("MatFromCols layout wrong: %v", c)
	}
	if !Identity(2).Equal(MatFromRows(V(1, 0), V(0, 1))) {
		t.Error("Identity wrong")
	}
	if !Diag(2, 3).Equal(MatFromRows(V(2, 0), V(0, 3))) {
		t.Error("Diag wrong")
	}
}

func TestMatRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged MatFromRows did not panic")
		}
	}()
	MatFromRows(V(1, 2), V(3))
}

func TestMatRowColTranspose(t *testing.T) {
	m := MatFromRows(V(1, 2, 3), V(4, 5, 6))
	if !m.Row(1).Equal(V(4, 5, 6)) {
		t.Error("Row wrong")
	}
	if !m.Col(2).Equal(V(3, 6)) {
		t.Error("Col wrong")
	}
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 6 {
		t.Errorf("Transpose wrong: %v", mt)
	}
}

func TestMatMul(t *testing.T) {
	a := MatFromRows(V(1, 2), V(3, 4))
	b := MatFromRows(V(5, 6), V(7, 8))
	want := MatFromRows(V(19, 22), V(43, 50))
	if got := a.Mul(b); !got.Equal(want) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if got := a.MulVec(V(1, 1)); !got.Equal(V(3, 7)) {
		t.Errorf("MulVec = %v", got)
	}
	id := Identity(2)
	if !a.Mul(id).Equal(a) || !id.Mul(a).Equal(a) {
		t.Error("identity not neutral")
	}
}

func TestMatAddScale(t *testing.T) {
	a := MatFromRows(V(1, 2), V(3, 4))
	if got := a.Add(a); !got.Equal(a.Scale(2)) {
		t.Error("Add/Scale disagree")
	}
}

func TestMatDet(t *testing.T) {
	cases := []struct {
		m    *Mat
		want int64
	}{
		{Identity(3), 1},
		{Diag(2, 3, 4), 24},
		{MatFromRows(V(1, 2), V(3, 4)), -2},
		{MatFromRows(V(1, 2), V(2, 4)), 0},
		{MatFromRows(V(0, 1), V(1, 0)), -1},
		{MatFromRows(V(0, 2, 1), V(1, 0, 0), V(0, 0, 3)), -6},
		{MatFromRows(V(2, 0, 0), V(0, 0, 5), V(0, 7, 0)), -70},
		{NewMat(0, 0), 1},
		// 4x4 with known determinant.
		{MatFromRows(V(1, 0, 2, -1), V(3, 0, 0, 5), V(2, 1, 4, -3), V(1, 0, 5, 0)), 30},
	}
	for _, c := range cases {
		if got := c.m.Det(); got != c.want {
			t.Errorf("Det(%v) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestMatDetNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Det of non-square did not panic")
		}
	}()
	NewMat(2, 3).Det()
}

func randSmallMat(r *rand.Rand, n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, int64(r.Intn(11)-5))
		}
	}
	return m
}

// TestPropDetMultiplicative checks det(AB) = det(A)det(B) on random 3x3
// integer matrices, cross-validating the Bareiss integer determinant against
// itself under products.
func TestPropDetMultiplicative(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a := randSmallMat(r, 3)
		b := randSmallMat(r, 3)
		if a.Mul(b).Det() != a.Det()*b.Det() {
			t.Fatalf("det(AB) != det(A)det(B) for\nA=%v\nB=%v", a, b)
		}
	}
}

// TestPropDetTranspose checks det(Aᵀ) = det(A).
func TestPropDetTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randSmallMat(r, 4)
		if a.Det() != a.Transpose().Det() {
			t.Fatalf("det(A) != det(Aᵀ) for A=%v", a)
		}
	}
}

// TestPropDetAgreesWithRat cross-validates the integer Bareiss determinant
// against the rational Gaussian determinant.
func TestPropDetAgreesWithRat(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		a := randSmallMat(r, 4)
		ri := a.ToRat().Det()
		if !ri.IsInt() || ri.Int() != a.Det() {
			t.Fatalf("integer det %d disagrees with rational det %v for A=%v", a.Det(), ri, a)
		}
	}
}

func TestPropMatMulVecLinear(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		m := MatFromRows(V(small(a), small(b)), V(small(c), small(d)))
		v := V(small(e), small(g))
		// M(2v) == 2(Mv)
		return m.MulVec(v.Scale(2)).Equal(m.MulVec(v).Scale(2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
