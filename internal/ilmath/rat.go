package ilmath

import "fmt"

// Rat is an exact rational number p/q with q > 0 and gcd(|p|, q) = 1.
// The zero value is 0/1? No: the zero value has Q == 0 and is invalid;
// construct values with NewRat, RatInt, or the arithmetic methods.
type Rat struct {
	P int64 // numerator
	Q int64 // denominator, always > 0 after normalization
}

// NewRat returns the normalized rational p/q. It panics if q == 0.
func NewRat(p, q int64) Rat {
	if q == 0 {
		panic("ilmath: rational with zero denominator")
	}
	if q < 0 {
		p, q = subChecked(0, p), subChecked(0, q)
	}
	if p == 0 {
		return Rat{0, 1}
	}
	g := Gcd(p, q)
	return Rat{p / g, q / g}
}

// RatInt returns the rational n/1.
func RatInt(n int64) Rat { return Rat{n, 1} }

// RatZero and RatOne are the constants 0 and 1.
var (
	RatZero = Rat{0, 1}
	RatOne  = Rat{1, 1}
)

// valid panics if r is an uninitialized (zero-denominator) value.
func (r Rat) valid() {
	if r.Q == 0 {
		panic("ilmath: use of uninitialized Rat (zero denominator)")
	}
}

// Add returns r + s.
func (r Rat) Add(s Rat) Rat {
	r.valid()
	s.valid()
	// r.P/r.Q + s.P/s.Q = (r.P·(L/r.Q) + s.P·(L/s.Q)) / L with L = lcm.
	l := Lcm(r.Q, s.Q)
	a := mulChecked(r.P, l/r.Q)
	b := mulChecked(s.P, l/s.Q)
	return NewRat(addChecked(a, b), l)
}

// Sub returns r − s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns −r.
func (r Rat) Neg() Rat {
	r.valid()
	return Rat{subChecked(0, r.P), r.Q}
}

// Mul returns r·s.
func (r Rat) Mul(s Rat) Rat {
	r.valid()
	s.valid()
	// Cross-reduce before multiplying to keep intermediates small.
	g1 := Gcd(r.P, s.Q)
	g2 := Gcd(s.P, r.Q)
	if g1 == 0 {
		g1 = 1
	}
	if g2 == 0 {
		g2 = 1
	}
	p := mulChecked(r.P/g1, s.P/g2)
	q := mulChecked(r.Q/g2, s.Q/g1)
	return NewRat(p, q)
}

// Div returns r/s. It panics if s is zero.
func (r Rat) Div(s Rat) Rat {
	s.valid()
	if s.P == 0 {
		panic("ilmath: division by zero rational")
	}
	return r.Mul(Rat{s.Q, s.P}.normalizeSign())
}

func (r Rat) normalizeSign() Rat {
	if r.Q < 0 {
		return Rat{subChecked(0, r.P), subChecked(0, r.Q)}
	}
	return r
}

// Inv returns 1/r. It panics if r is zero.
func (r Rat) Inv() Rat { return RatOne.Div(r) }

// Cmp compares r and s, returning −1, 0 or +1.
func (r Rat) Cmp(s Rat) int {
	d := r.Sub(s)
	switch {
	case d.P < 0:
		return -1
	case d.P > 0:
		return 1
	default:
		return 0
	}
}

// Sign returns the sign of r: −1, 0 or +1.
func (r Rat) Sign() int {
	r.valid()
	switch {
	case r.P < 0:
		return -1
	case r.P > 0:
		return 1
	default:
		return 0
	}
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool {
	r.valid()
	return r.Q == 1
}

// Int returns the integer value of r. It panics if r is not an integer.
func (r Rat) Int() int64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("ilmath: %v is not an integer", r))
	}
	return r.P
}

// Floor returns ⌊r⌋, the greatest integer ≤ r.
func (r Rat) Floor() int64 {
	r.valid()
	q := r.P / r.Q
	if r.P%r.Q != 0 && r.P < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉, the least integer ≥ r.
func (r Rat) Ceil() int64 {
	r.valid()
	q := r.P / r.Q
	if r.P%r.Q != 0 && r.P > 0 {
		q++
	}
	return q
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Sign() < 0 {
		return r.Neg()
	}
	return r
}

// Float returns a float64 approximation of r.
func (r Rat) Float() float64 {
	r.valid()
	return float64(r.P) / float64(r.Q)
}

// String renders r as "p/q", or just "p" when r is an integer.
func (r Rat) String() string {
	if r.Q == 1 {
		return fmt.Sprintf("%d", r.P)
	}
	return fmt.Sprintf("%d/%d", r.P, r.Q)
}
