package ilmath

import (
	"fmt"
	"strings"
)

// RatMat is a dense matrix of exact rationals, used to represent tiling
// matrices H (whose entries are reciprocals of tile side lengths) and their
// inverses P = H⁻¹.
type RatMat struct {
	Rows, Cols int
	a          []Rat
}

// NewRatMat returns a zero Rows×Cols rational matrix.
func NewRatMat(rows, cols int) *RatMat {
	if rows < 0 || cols < 0 {
		panic("ilmath: negative matrix dimension")
	}
	m := &RatMat{Rows: rows, Cols: cols, a: make([]Rat, rows*cols)}
	for i := range m.a {
		m.a[i] = RatZero
	}
	return m
}

// RatIdentity returns the n×n rational identity matrix.
func RatIdentity(n int) *RatMat {
	m := NewRatMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, RatOne)
	}
	return m
}

// RatDiag returns the square diagonal rational matrix with diagonal d.
func RatDiag(d ...Rat) *RatMat {
	m := NewRatMat(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// At returns the element at row i, column j.
func (m *RatMat) At(i, j int) Rat {
	m.check(i, j)
	return m.a[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *RatMat) Set(i, j int, v Rat) {
	m.check(i, j)
	v.valid()
	m.a[i*m.Cols+j] = v
}

func (m *RatMat) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("ilmath: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Clone returns an independent copy of m.
func (m *RatMat) Clone() *RatMat {
	n := NewRatMat(m.Rows, m.Cols)
	copy(n.a, m.a)
	return n
}

// Equal reports whether m and n have identical shape and entries.
func (m *RatMat) Equal(n *RatMat) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.a {
		if m.a[i].Cmp(n.a[i]) != 0 {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m *RatMat) Row(i int) []Rat {
	if i < 0 || i >= m.Rows {
		panic("ilmath: row index out of range")
	}
	out := make([]Rat, m.Cols)
	copy(out, m.a[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *RatMat) Col(j int) []Rat {
	if j < 0 || j >= m.Cols {
		panic("ilmath: column index out of range")
	}
	out := make([]Rat, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Transpose returns mᵀ.
func (m *RatMat) Transpose() *RatMat {
	t := NewRatMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·n.
func (m *RatMat) Mul(n *RatMat) *RatMat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("ilmath: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewRatMat(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			s := RatZero
			for k := 0; k < m.Cols; k++ {
				s = s.Add(m.At(i, k).Mul(n.At(k, j)))
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// MulIntMat returns m·n where n is an integer matrix.
func (m *RatMat) MulIntMat(n *Mat) *RatMat { return m.Mul(n.ToRat()) }

// MulVec returns the matrix-vector product m·v for an integer vector v.
func (m *RatMat) MulVec(v Vec) []Rat {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("ilmath: cannot multiply %dx%d by vector of dim %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]Rat, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := RatZero
		for k := 0; k < m.Cols; k++ {
			s = s.Add(m.At(i, k).Mul(RatInt(v[k])))
		}
		out[i] = s
	}
	return out
}

// Det returns the determinant of a square rational matrix via Gaussian
// elimination with exact rational arithmetic.
func (m *RatMat) Det() Rat {
	if m.Rows != m.Cols {
		panic("ilmath: determinant of non-square matrix")
	}
	n := m.Rows
	if n == 0 {
		return RatOne
	}
	w := m.Clone()
	det := RatOne
	for k := 0; k < n; k++ {
		// Pivot.
		p := -1
		for i := k; i < n; i++ {
			if w.At(i, k).Sign() != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			return RatZero
		}
		if p != k {
			w.swapRows(k, p)
			det = det.Neg()
		}
		piv := w.At(k, k)
		det = det.Mul(piv)
		for i := k + 1; i < n; i++ {
			f := w.At(i, k).Div(piv)
			if f.Sign() == 0 {
				continue
			}
			for j := k; j < n; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(k, j))))
			}
		}
	}
	return det
}

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination with exact
// rational arithmetic. It returns an error if m is singular or non-square.
func (m *RatMat) Inverse() (*RatMat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("ilmath: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	w := m.Clone()
	inv := RatIdentity(n)
	for k := 0; k < n; k++ {
		p := -1
		for i := k; i < n; i++ {
			if w.At(i, k).Sign() != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			return nil, fmt.Errorf("ilmath: singular matrix (rank deficiency at column %d)", k)
		}
		if p != k {
			w.swapRows(k, p)
			inv.swapRows(k, p)
		}
		piv := w.At(k, k).Inv()
		for j := 0; j < n; j++ {
			w.Set(k, j, w.At(k, j).Mul(piv))
			inv.Set(k, j, inv.At(k, j).Mul(piv))
		}
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			f := w.At(i, k)
			if f.Sign() == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				w.Set(i, j, w.At(i, j).Sub(f.Mul(w.At(k, j))))
				inv.Set(i, j, inv.At(i, j).Sub(f.Mul(inv.At(k, j))))
			}
		}
	}
	return inv, nil
}

func (m *RatMat) swapRows(i, j int) {
	ri := m.a[i*m.Cols : (i+1)*m.Cols]
	rj := m.a[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// IsInteger reports whether every entry of m is an integer.
func (m *RatMat) IsInteger() bool {
	for _, x := range m.a {
		if !x.IsInt() {
			return false
		}
	}
	return true
}

// ToInt converts m to an integer matrix. It panics if any entry is not an
// integer; guard with IsInteger.
func (m *RatMat) ToInt() *Mat {
	out := NewMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(i, j, m.At(i, j).Int())
		}
	}
	return out
}

// FloorVec returns ⌊m·v⌋ applied componentwise, the core operation of the
// supernode transformation j ↦ ⌊Hj⌋.
func (m *RatMat) FloorVec(v Vec) Vec {
	rv := m.MulVec(v)
	out := make(Vec, len(rv))
	for i, r := range rv {
		out[i] = r.Floor()
	}
	return out
}

// String renders the matrix one row per line.
func (m *RatMat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(m.At(i, j).String())
		}
		b.WriteByte(']')
		if i < m.Rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
