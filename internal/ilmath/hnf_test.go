package ilmath

import (
	"math/rand"
	"testing"
)

func checkHNF(t *testing.T, a *Mat) (*Mat, *Mat) {
	t.Helper()
	h, u, err := HermiteNormalForm(a)
	if err != nil {
		t.Fatalf("HNF(%v): %v", a, err)
	}
	if !u.IsUnimodular() {
		t.Fatalf("U not unimodular for %v: det %d", a, u.Det())
	}
	if !a.Mul(u).Equal(h) {
		t.Fatalf("A·U != H for %v", a)
	}
	if !h.IsLowerTriangular() {
		t.Fatalf("H not lower triangular:\n%v", h)
	}
	for i := 0; i < h.Rows; i++ {
		if h.At(i, i) <= 0 {
			t.Fatalf("H diagonal not positive:\n%v", h)
		}
		for j := 0; j < i; j++ {
			if h.At(i, j) < 0 || h.At(i, j) >= h.At(i, i) {
				t.Fatalf("H[%d][%d] = %d not in [0, %d):\n%v", i, j, h.At(i, j), h.At(i, i), h)
			}
		}
	}
	if AbsInt64(h.Det()) != AbsInt64(a.Det()) {
		t.Fatalf("|det| changed: %d vs %d", h.Det(), a.Det())
	}
	return h, u
}

func TestHNFIdentityAndDiagonal(t *testing.T) {
	h, _ := checkHNF(t, Identity(3))
	if !h.Equal(Identity(3)) {
		t.Errorf("HNF(I) = %v", h)
	}
	h, _ = checkHNF(t, Diag(2, 3, 5))
	if !h.Equal(Diag(2, 3, 5)) {
		t.Errorf("HNF(diag) = %v", h)
	}
}

func TestHNFKnownExample(t *testing.T) {
	// A = [[2, 1], [0, 3]]: the column lattice has HNF [[1, 0], [?, 6]]…
	// compute: gcd of row 0 entries is 1 → H[0][0] = 1; |det| = 6 → H[1][1]
	// divides accordingly.
	a := MatFromRows(V(2, 1), V(0, 3))
	h, _ := checkHNF(t, a)
	if h.At(0, 0) != 1 || h.At(1, 1) != 6 {
		t.Errorf("HNF = %v, want diag structure (1, 6)", h)
	}
}

func TestHNFNegativeEntries(t *testing.T) {
	checkHNF(t, MatFromRows(V(-2, 1), V(4, -3)))
	checkHNF(t, MatFromRows(V(0, -1), V(1, 0)))
}

func TestHNFErrors(t *testing.T) {
	if _, _, err := HermiteNormalForm(NewMat(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	if _, _, err := HermiteNormalForm(MatFromRows(V(1, 2), V(2, 4))); err == nil {
		t.Error("singular accepted")
	}
}

func TestHNFRandomProperties(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	done := 0
	for done < 150 {
		a := NewMat(3, 3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a.Set(i, j, int64(r.Intn(9)-4))
			}
		}
		if a.Det() == 0 {
			continue
		}
		done++
		checkHNF(t, a)
	}
}

func TestHNFIdempotent(t *testing.T) {
	a := MatFromRows(V(3, 1, 0), V(1, 2, 0), V(0, 0, 4))
	h1, _ := checkHNF(t, a)
	h2, _ := checkHNF(t, h1)
	if !h1.Equal(h2) {
		t.Errorf("HNF not idempotent:\n%v\nvs\n%v", h1, h2)
	}
}

func TestSameLattice(t *testing.T) {
	// Column operations preserve the lattice: A and A·U have equal HNF.
	a := MatFromRows(V(4, 1), V(0, 3))
	u := MatFromRows(V(1, 1), V(0, 1)) // unimodular
	b := a.Mul(u)
	same, err := SameLattice(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("lattice changed under unimodular column op")
	}
	// Scaling a column changes the lattice.
	c := a.Clone()
	c.Set(0, 0, 8)
	same, err = SameLattice(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("different lattices reported equal")
	}
}

func TestSameLatticeSkewedTilings(t *testing.T) {
	// The tile-origin lattice of a skewed tiling P = S⁻¹·diag(s) differs
	// from the rectangular diag(s) lattice in general, but applying any
	// unimodular matrix on the right (reindexing tiles) never changes it.
	p := MatFromRows(V(6, 0), V(-6, 6)) // origins of the wavefront-skewed 6x6 tiling
	reindex := MatFromRows(V(1, 0), V(3, 1))
	same, err := SameLattice(p, p.Mul(reindex))
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("tile reindexing changed the origin lattice")
	}
}

func TestIsUnimodularIsLowerTriangular(t *testing.T) {
	if !Identity(4).IsUnimodular() {
		t.Error("identity not unimodular")
	}
	if Diag(2, 1).IsUnimodular() {
		t.Error("det-2 matrix reported unimodular")
	}
	if NewMat(2, 3).IsUnimodular() {
		t.Error("non-square reported unimodular")
	}
	if !MatFromRows(V(1, 0), V(5, 1)).IsLowerTriangular() {
		t.Error("lower triangular not detected")
	}
	if MatFromRows(V(1, 2), V(0, 1)).IsLowerTriangular() {
		t.Error("upper entry missed")
	}
}

func TestFloorDivInt(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3}, {6, 3, 2},
	}
	for _, c := range cases {
		if got := floorDivInt(c.a, c.b); got != c.want {
			t.Errorf("floorDivInt(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
