package ilmath

import "fmt"

// HermiteNormalForm computes the column-style Hermite Normal Form of a
// non-singular square integer matrix A: a unimodular U with
//
//	A·U = H,  H lower triangular, H[i][i] > 0, 0 ≤ H[i][j] < H[i][i] for j < i.
//
// The HNF is the canonical basis of the column lattice of A — for an
// integer tile-side matrix P, the lattice of tile origins {P·t : t ∈ Z^n}.
// Two tilings generate the same origin lattice iff their side matrices have
// equal HNF.
func HermiteNormalForm(a *Mat) (h *Mat, u *Mat, err error) {
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("ilmath: HNF of non-square matrix")
	}
	n := a.Rows
	if n == 0 {
		return NewMat(0, 0), NewMat(0, 0), nil
	}
	if a.Det() == 0 {
		return nil, nil, fmt.Errorf("ilmath: HNF of singular matrix")
	}
	h = a.Clone()
	u = Identity(n)

	// colOp applies an elementary column operation to both h and u.
	addCol := func(dst, src int, k int64) { // col[dst] += k·col[src]
		for i := 0; i < n; i++ {
			h.Set(i, dst, addChecked(h.At(i, dst), mulChecked(k, h.At(i, src))))
			u.Set(i, dst, addChecked(u.At(i, dst), mulChecked(k, u.At(i, src))))
		}
	}
	swapCols := func(x, y int) {
		for i := 0; i < n; i++ {
			hx, hy := h.At(i, x), h.At(i, y)
			h.Set(i, x, hy)
			h.Set(i, y, hx)
			ux, uy := u.At(i, x), u.At(i, y)
			u.Set(i, x, uy)
			u.Set(i, y, ux)
		}
	}
	negCol := func(x int) {
		for i := 0; i < n; i++ {
			h.Set(i, x, -h.At(i, x))
			u.Set(i, x, -u.At(i, x))
		}
	}

	for r := 0; r < n; r++ {
		// Reduce columns r..n-1 in row r to a single nonzero pivot at
		// column r via the Euclidean algorithm on column pairs.
		for {
			// Find the column (≥ r) with the smallest nonzero |entry|.
			piv := -1
			for c := r; c < n; c++ {
				if h.At(r, c) != 0 && (piv < 0 || AbsInt64(h.At(r, c)) < AbsInt64(h.At(r, piv))) {
					piv = c
				}
			}
			if piv < 0 {
				return nil, nil, fmt.Errorf("ilmath: HNF internal error, zero row %d", r)
			}
			if piv != r {
				swapCols(piv, r)
			}
			done := true
			for c := r + 1; c < n; c++ {
				if h.At(r, c) != 0 {
					q := h.At(r, c) / h.At(r, r)
					addCol(c, r, -q)
					if h.At(r, c) != 0 {
						done = false
					}
				}
			}
			if done {
				break
			}
		}
		if h.At(r, r) < 0 {
			negCol(r)
		}
		// Normalize earlier columns in this row: 0 ≤ H[r][j] < H[r][r].
		for j := 0; j < r; j++ {
			q := floorDivInt(h.At(r, j), h.At(r, r))
			if q != 0 {
				addCol(j, r, -q)
			}
		}
	}
	return h, u, nil
}

func floorDivInt(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// IsUnimodular reports whether m is square with determinant ±1.
func (m *Mat) IsUnimodular() bool {
	if !m.IsSquare() {
		return false
	}
	d := m.Det()
	return d == 1 || d == -1
}

// IsLowerTriangular reports whether every entry above the diagonal is zero.
func (m *Mat) IsLowerTriangular() bool {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if m.At(i, j) != 0 {
				return false
			}
		}
	}
	return true
}

// SameLattice reports whether the columns of a and b generate the same
// integer lattice (equal HNF).
func SameLattice(a, b *Mat) (bool, error) {
	ha, _, err := HermiteNormalForm(a)
	if err != nil {
		return false, err
	}
	hb, _, err := HermiteNormalForm(b)
	if err != nil {
		return false, err
	}
	return ha.Equal(hb), nil
}
