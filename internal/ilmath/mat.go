package ilmath

import (
	"fmt"
	"strings"
)

// Mat is a dense integer matrix stored in row-major order.
type Mat struct {
	Rows, Cols int
	a          []int64
}

// NewMat returns a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("ilmath: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, a: make([]int64, rows*cols)}
}

// MatFromRows builds a matrix whose rows are the given vectors.
// All rows must have equal dimension; an empty row list yields a 0×0 matrix.
func MatFromRows(rows ...Vec) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	c := len(rows[0])
	m := NewMat(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("ilmath: ragged rows in MatFromRows")
		}
		copy(m.a[i*c:(i+1)*c], r)
	}
	return m
}

// MatFromCols builds a matrix whose columns are the given vectors.
func MatFromCols(cols ...Vec) *Mat {
	if len(cols) == 0 {
		return NewMat(0, 0)
	}
	r := len(cols[0])
	m := NewMat(r, len(cols))
	for j, c := range cols {
		if len(c) != r {
			panic("ilmath: ragged columns in MatFromCols")
		}
		for i := 0; i < r; i++ {
			m.Set(i, j, c[i])
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns the square diagonal matrix with the given diagonal entries.
func Diag(d ...int64) *Mat {
	m := NewMat(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) int64 {
	m.check(i, j)
	return m.a[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v int64) {
	m.check(i, j)
	m.a[i*m.Cols+j] = v
}

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("ilmath: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Clone returns an independent copy of m.
func (m *Mat) Clone() *Mat {
	n := NewMat(m.Rows, m.Cols)
	copy(n.a, m.a)
	return n
}

// Equal reports whether m and n have identical shape and entries.
func (m *Mat) Equal(n *Mat) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != n.a[i] {
			return false
		}
	}
	return true
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) Vec {
	if i < 0 || i >= m.Rows {
		panic("ilmath: row index out of range")
	}
	return Vec(m.a[i*m.Cols : (i+1)*m.Cols]).Clone()
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) Vec {
	if j < 0 || j >= m.Cols {
		panic("ilmath: column index out of range")
	}
	v := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns m + n. It panics if shapes differ.
func (m *Mat) Add(n *Mat) *Mat {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("ilmath: shape mismatch in Add")
	}
	out := NewMat(m.Rows, m.Cols)
	for i := range m.a {
		out.a[i] = addChecked(m.a[i], n.a[i])
	}
	return out
}

// Scale returns k·m.
func (m *Mat) Scale(k int64) *Mat {
	out := NewMat(m.Rows, m.Cols)
	for i := range m.a {
		out.a[i] = mulChecked(m.a[i], k)
	}
	return out
}

// Mul returns the matrix product m·n. It panics on inner-dimension mismatch.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("ilmath: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMat(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			var s int64
			for k := 0; k < m.Cols; k++ {
				s = addChecked(s, mulChecked(m.At(i, k), n.At(k, j)))
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Mat) MulVec(v Vec) Vec {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("ilmath: cannot multiply %dx%d by vector of dim %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s int64
		for k := 0; k < m.Cols; k++ {
			s = addChecked(s, mulChecked(m.At(i, k), v[k]))
		}
		out[i] = s
	}
	return out
}

// IsSquare reports whether m is square.
func (m *Mat) IsSquare() bool { return m.Rows == m.Cols }

// Det returns the determinant of a square matrix, computed exactly by
// fraction-free Gaussian elimination (Bareiss algorithm).
func (m *Mat) Det() int64 {
	if !m.IsSquare() {
		panic("ilmath: determinant of non-square matrix")
	}
	n := m.Rows
	if n == 0 {
		return 1
	}
	w := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if w.At(k, k) == 0 {
			// Find a pivot row below and swap.
			p := -1
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					p = i
					break
				}
			}
			if p < 0 {
				return 0
			}
			w.swapRows(k, p)
			sign = -sign
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := subChecked(
					mulChecked(w.At(i, j), w.At(k, k)),
					mulChecked(w.At(i, k), w.At(k, j)),
				)
				w.Set(i, j, num/prev) // Bareiss: division is exact
			}
			w.Set(i, k, 0)
		}
		prev = w.At(k, k)
	}
	return mulChecked(sign, w.At(n-1, n-1))
}

func (m *Mat) swapRows(i, j int) {
	ri := m.a[i*m.Cols : (i+1)*m.Cols]
	rj := m.a[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// ToRat converts m to an exact rational matrix.
func (m *Mat) ToRat() *RatMat {
	r := NewRatMat(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Set(i, j, RatInt(m.At(i, j)))
		}
	}
	return r
}

// String renders the matrix one row per line.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte(']')
		if i < m.Rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
