// Package ilmath provides exact integer and rational linear algebra for
// loop-tiling transformations.
//
// Tiling matrices H and their inverses P = H⁻¹ must be manipulated exactly:
// legality tests such as HD ≥ 0 and ⌊HD⌋ = 0 are ill-conditioned under
// floating point when tile sides are large. All arithmetic in this package
// is exact, over int64 numerators/denominators with overflow checks.
package ilmath
