package ilmath

import "testing"

// Fuzz targets for the exact-arithmetic core. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzX` explores further.

func FuzzRatArithmetic(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4))
	f.Add(int64(-7), int64(3), int64(0), int64(5))
	f.Add(int64(99), int64(-98), int64(-1), int64(1))
	f.Fuzz(func(t *testing.T, p1, q1, p2, q2 int64) {
		// Bound magnitudes to avoid int64 overflow panics (checked
		// elsewhere): fuzz the algebra, not the overflow guard.
		p1, q1, p2, q2 = p1%1000, q1%1000, p2%1000, q2%1000
		if q1 == 0 || q2 == 0 {
			t.Skip()
		}
		a, b := NewRat(p1, q1), NewRat(p2, q2)
		// Normalization invariants.
		for _, r := range []Rat{a, b, a.Add(b), a.Mul(b), a.Sub(b)} {
			if r.Q <= 0 {
				t.Fatalf("denominator %d not positive", r.Q)
			}
			if g := Gcd(r.P, r.Q); !(g == 1 || (r.P == 0 && r.Q == 1)) {
				t.Fatalf("%v not reduced (gcd %d)", r, g)
			}
		}
		// Algebraic identities.
		if a.Add(b).Sub(b) != a {
			t.Fatalf("(a+b)-b != a for %v, %v", a, b)
		}
		if b.Sign() != 0 && a.Div(b).Mul(b) != a {
			t.Fatalf("(a/b)*b != a for %v, %v", a, b)
		}
		// Floor/Ceil bracket the value.
		if RatInt(a.Floor()).Cmp(a) > 0 || RatInt(a.Ceil()).Cmp(a) < 0 {
			t.Fatalf("floor/ceil do not bracket %v", a)
		}
	})
}

func FuzzHNF(f *testing.F) {
	f.Add(int64(1), int64(0), int64(0), int64(1))
	f.Add(int64(2), int64(1), int64(0), int64(3))
	f.Add(int64(-2), int64(1), int64(4), int64(-3))
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		a, b, c, d = a%20, b%20, c%20, d%20
		m := MatFromRows(V(a, b), V(c, d))
		if m.Det() == 0 {
			t.Skip()
		}
		h, u, err := HermiteNormalForm(m)
		if err != nil {
			t.Fatal(err)
		}
		if !u.IsUnimodular() {
			t.Fatalf("U not unimodular for %v", m)
		}
		if !m.Mul(u).Equal(h) {
			t.Fatalf("A·U != H for %v", m)
		}
		if !h.IsLowerTriangular() || h.At(0, 0) <= 0 || h.At(1, 1) <= 0 {
			t.Fatalf("H not canonical:\n%v", h)
		}
		if h.At(1, 0) < 0 || h.At(1, 0) >= h.At(1, 1) {
			t.Fatalf("H off-diagonal not reduced:\n%v", h)
		}
		if AbsInt64(h.Det()) != AbsInt64(m.Det()) {
			t.Fatalf("determinant changed")
		}
	})
}

func FuzzRatMatInverse(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(5))
	f.Add(int64(4), int64(0), int64(0), int64(4))
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		a, b, c, d = a%15, b%15, c%15, d%15
		m := MatFromRows(V(a, b), V(c, d))
		if m.Det() == 0 {
			t.Skip()
		}
		rm := m.ToRat()
		inv, err := rm.Inverse()
		if err != nil {
			t.Fatal(err)
		}
		if !rm.Mul(inv).Equal(RatIdentity(2)) {
			t.Fatalf("A·A⁻¹ != I for %v", m)
		}
	})
}
