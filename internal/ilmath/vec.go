package ilmath

import (
	"errors"
	"fmt"
	"strings"
)

// ErrOverflow is returned (or wrapped) when an exact integer operation would
// exceed the int64 range.
var ErrOverflow = errors.New("ilmath: integer overflow")

// Vec is a dense integer vector.
type Vec []int64

// NewVec returns a zero vector of dimension n.
func NewVec(n int) Vec {
	return make(Vec, n)
}

// V is a convenience constructor building a vector from its components.
func V(xs ...int64) Vec {
	v := make(Vec, len(xs))
	copy(v, xs)
	return v
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Dim returns the dimension (number of components) of v.
func (v Vec) Dim() int { return len(v) }

// Equal reports whether v and w have the same dimension and components.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every component of v is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Add returns v + w. It panics if dimensions differ.
func (v Vec) Add(w Vec) Vec {
	mustSameDim(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = addChecked(v[i], w[i])
	}
	return out
}

// Sub returns v − w. It panics if dimensions differ.
func (v Vec) Sub(w Vec) Vec {
	mustSameDim(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = subChecked(v[i], w[i])
	}
	return out
}

// Scale returns k·v.
func (v Vec) Scale(k int64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = mulChecked(v[i], k)
	}
	return out
}

// Neg returns −v.
func (v Vec) Neg() Vec { return v.Scale(-1) }

// Dot returns the inner product v·w. It panics if dimensions differ.
func (v Vec) Dot(w Vec) int64 {
	mustSameDim(len(v), len(w))
	var s int64
	for i := range v {
		s = addChecked(s, mulChecked(v[i], w[i]))
	}
	return s
}

// Sum returns the sum of the components of v.
func (v Vec) Sum() int64 {
	var s int64
	for _, x := range v {
		s = addChecked(s, x)
	}
	return s
}

// Max returns the maximum component of v. It panics on an empty vector.
func (v Vec) Max() int64 {
	if len(v) == 0 {
		panic("ilmath: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum component of v. It panics on an empty vector.
func (v Vec) Min() int64 {
	if len(v) == 0 {
		panic("ilmath: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximum component of v.
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		panic("ilmath: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// IsNonNegative reports whether every component of v is ≥ 0.
func (v Vec) IsNonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// LexPositive reports whether v is lexicographically positive: its first
// nonzero component is positive. The zero vector is not lexicographically
// positive.
func (v Vec) LexPositive() bool {
	for _, x := range v {
		if x > 0 {
			return true
		}
		if x < 0 {
			return false
		}
	}
	return false
}

// String renders v as "(x1, x2, …, xn)".
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(')')
	return b.String()
}

func mustSameDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("ilmath: dimension mismatch %d vs %d", a, b))
	}
}

// addChecked returns a+b, panicking with ErrOverflow on int64 overflow.
func addChecked(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		panic(fmt.Errorf("%w: %d + %d", ErrOverflow, a, b))
	}
	return s
}

func subChecked(a, b int64) int64 {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		panic(fmt.Errorf("%w: %d - %d", ErrOverflow, a, b))
	}
	return d
}

func mulChecked(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(fmt.Errorf("%w: %d * %d", ErrOverflow, a, b))
	}
	return p
}

// Gcd returns the greatest common divisor of a and b, always ≥ 0.
// Gcd(0, 0) = 0.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Lcm returns the least common multiple of a and b, always ≥ 0.
// Lcm(0, x) = 0.
func Lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	a, b = AbsInt64(a), AbsInt64(b)
	return mulChecked(a/Gcd(a, b), b)
}

// AbsInt64 returns |x|. It panics on math.MinInt64.
func AbsInt64(x int64) int64 {
	if x < 0 {
		return subChecked(0, x)
	}
	return x
}
